# Empty compiler generated dependencies file for alba_telemetry.
# This may be replaced when dependencies are built.
