file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_unseen_inputs.dir/bench_fig8_unseen_inputs.cpp.o"
  "CMakeFiles/bench_fig8_unseen_inputs.dir/bench_fig8_unseen_inputs.cpp.o.d"
  "bench_fig8_unseen_inputs"
  "bench_fig8_unseen_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_unseen_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
