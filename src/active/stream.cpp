#include "active/stream.hpp"

#include <algorithm>

#include "active/strategy.hpp"
#include "common/error.hpp"
#include "ml/metrics.hpp"

namespace alba {

StreamSampler::StreamSampler(std::unique_ptr<Classifier> model,
                             StreamSamplerConfig config)
    : model_(std::move(model)), config_(config) {
  ALBA_CHECK(model_ != nullptr);
  ALBA_CHECK(config_.uncertainty_threshold > 0.0 &&
             config_.uncertainty_threshold < 1.0)
      << "threshold must be in (0, 1)";
  ALBA_CHECK(config_.max_queries >= 0);
  ALBA_CHECK(config_.adapt_rate >= 0.0 && config_.adapt_rate < 1.0);
}

StreamResult StreamSampler::run(const LabeledData& seed,
                                const Matrix& stream_x, LabelOracle& oracle,
                                const Matrix& test_x,
                                std::span<const int> test_y) {
  ALBA_CHECK(!seed.empty()) << "the labeled seed set is empty";
  ALBA_CHECK(stream_x.rows() == oracle.pool_size());
  ALBA_CHECK(test_x.rows() == test_y.size());
  const int k = model_->num_classes();
  seed.validate_labels(k);

  LabeledData labeled = seed;
  model_->fit(labeled.x, labeled.y);

  StreamResult result;
  double threshold = config_.uncertainty_threshold;

  auto evaluate_now = [&](int queries) {
    const EvalResult ev = evaluate(test_y, model_->predict(test_x), k);
    QueryCurvePoint pt;
    pt.queries = queries;
    pt.f1 = ev.macro_f1;
    pt.false_alarm_rate = ev.false_alarm_rate;
    pt.anomaly_miss_rate = ev.anomaly_miss_rate;
    result.curve.push_back(pt);
  };
  evaluate_now(0);

  Matrix one(1, stream_x.cols());
  for (std::size_t i = 0; i < stream_x.rows(); ++i) {
    ++result.seen;
    if (result.queried >= static_cast<std::size_t>(config_.max_queries)) {
      break;  // budget exhausted; nothing more to learn from the stream
    }

    std::copy_n(stream_x.row(i).data(), stream_x.cols(), one.row(0).data());
    const Matrix probs = model_->predict_proba(one);
    const double uncertainty = uncertainty_score(probs.row(0));

    if (uncertainty >= threshold) {
      const int label = oracle.annotate(i);
      labeled.append(stream_x.row(i), label);
      ++result.queried;
      model_->fit(labeled.x, labeled.y);
      evaluate_now(static_cast<int>(result.queried));
      // After a query the model got sharper: demand more uncertainty
      // before the next one, damping the query rate.
      threshold = std::min(0.999, threshold / (1.0 - config_.adapt_rate));
    } else {
      // Long quiet spells decay the threshold so the sampler never starves.
      threshold *= 1.0 - config_.adapt_rate;
    }
  }

  result.final_f1 = result.curve.back().f1;
  result.final_threshold = threshold;
  return result;
}

}  // namespace alba
