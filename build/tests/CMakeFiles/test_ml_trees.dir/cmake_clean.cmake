file(REMOVE_RECURSE
  "CMakeFiles/test_ml_trees.dir/test_ml_trees.cpp.o"
  "CMakeFiles/test_ml_trees.dir/test_ml_trees.cpp.o.d"
  "test_ml_trees"
  "test_ml_trees.pdb"
  "test_ml_trees[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
