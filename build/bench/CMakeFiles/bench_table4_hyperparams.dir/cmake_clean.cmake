file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hyperparams.dir/bench_table4_hyperparams.cpp.o"
  "CMakeFiles/bench_table4_hyperparams.dir/bench_table4_hyperparams.cpp.o.d"
  "bench_table4_hyperparams"
  "bench_table4_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
