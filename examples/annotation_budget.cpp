// Annotation-budget planning: the operational question behind the paper —
// "how many samples does my admin have to label to reach a target
// diagnosis quality?" Sweeps all query strategies against a range of
// annotation budgets and prints the achieved F1 per (strategy, budget),
// plus the labels-to-target comparison that yields the paper's headline
// "28x fewer labels" style numbers.
//
// Build & run:  ./build/examples/annotation_budget
#include <cstdio>

#include "alba.hpp"

using namespace alba;

int main() {
  set_log_level(LogLevel::Warn);

  DatasetConfig config = volta_config();
  config.num_apps = 6;
  std::printf("building dataset...\n");
  const ExperimentData data = build_experiment_data(config);
  const SplitIndices split = make_split(data, 0.3, 21);
  const PreparedSplit prepared = prepare_split(data, split, config.select_k);

  const std::vector<QueryStrategy> strategies{
      QueryStrategy::Uncertainty, QueryStrategy::Margin,
      QueryStrategy::Entropy, QueryStrategy::Random, QueryStrategy::EqualApp};
  const std::vector<int> budgets{10, 25, 50, 100};
  const int max_budget = budgets.back();
  constexpr double kTarget = 0.95;

  std::vector<std::string> header{"strategy"};
  for (const int b : budgets) header.push_back(strformat("F1@%d", b));
  header.emplace_back("labels to F1>=0.95");
  TextTable table(header);

  for (const QueryStrategy strategy : strategies) {
    const ALSetup setup = make_al_setup(prepared, 22);
    ActiveLearnerConfig al_config;
    al_config.strategy = strategy;
    al_config.max_queries = max_budget;
    al_config.num_apps = static_cast<int>(data.num_apps);
    al_config.seed = 23;
    ActiveLearner learner(make_model_factory("rf", kNumClasses, 24)(
                              table4_optimum("rf", false)),
                          al_config);
    LabelOracle oracle(setup.pool_y, kNumClasses);
    const ActiveLearnerResult result =
        learner.run(setup.seed, setup.pool_x, oracle, setup.pool_app,
                    setup.test_x, setup.test_y);

    std::vector<std::string> row{std::string(strategy_name(strategy))};
    for (const int b : budgets) {
      row.push_back(strformat("%.3f", result.curve[static_cast<std::size_t>(b)].f1));
    }
    const int to_target = queries_to_reach(result.curve, kTarget);
    row.push_back(to_target >= 0 ? strformat("%d", to_target)
                                 : std::string("> ") +
                                       strformat("%d", max_budget));
    table.add_row(std::move(row));
    std::printf("  %-12s done (final F1 %.3f)\n",
                std::string(strategy_name(strategy)).c_str(), result.final_f1);
  }

  std::printf("\nAnnotation budget vs diagnosis quality "
              "(seed = one label per app x anomaly pair):\n%s",
              table.render().c_str());
  std::printf("\nreading guide: informativeness-driven strategies should hit "
              "the target with a\nfraction of the labels Random needs — the "
              "ratio is the paper's headline metric.\n");
  return 0;
}
