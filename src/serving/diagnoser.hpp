// The unified serving interface: one request/response contract implemented
// by every serving tier. The three tiers grew three incompatible entry
// points — DiagnosisService::diagnose returns a Diagnosis and throws,
// ServiceHost::diagnose returns a HostResult with typed shedding, and
// ServingFleet::diagnose returns a FleetResult wrapping a HostResult. A
// front end that feeds windows into serving (the streaming trigger in
// src/streaming, a replay tool, a test harness) had to special-case all
// three. Diagnoser collapses them:
//
//   DiagnoseRequest  — a borrowed window view plus a deadline;
//   DiagnosisResult  — a typed RequestStatus, the Diagnosis when Ok, and
//                      the provenance/timing fields every tier can fill
//                      (generation, replica, attempts, spilled, timings);
//   Diagnoser        — the abstract interface all three tiers implement.
//
// Contract, uniform across tiers:
//   * diagnose never throws on overload, deadline, drain, health, or
//     pipeline failure — those are statuses (a shape mismatch against the
//     bundle is still a programming error and may throw);
//   * status == Ok implies the result met its deadline and `diagnosis` is
//     meaningful; any other status leaves `diagnosis` default;
//   * a tier without a concept fills the neutral value (a bare
//     DiagnosisService reports generation 1, replica 0, attempts 1).
//
// The per-tier convenience overloads (HostResult, FleetResult) remain the
// Tier-2 surface for callers that need tier-specific fields; new code and
// anything generic over tiers should use this interface. The free
// diagnose_with_retry replaces ServiceHost::diagnose_with_retry (now
// deprecated) and works against any tier.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/backoff.hpp"
#include "common/deadline.hpp"

namespace alba {

class Matrix;

/// One window's diagnosis. `probs` has one entry per class, summing to 1;
/// `label` is its argmax and `confidence` the winning probability —
/// bit-identical to Classifier::predict on the offline pipeline's row.
struct Diagnosis {
  int label = 0;
  double confidence = 0.0;
  std::vector<double> probs;
  bool cache_hit = false;
};

/// Every way a served request can end. Ok is the only outcome carrying a
/// diagnosis; the four Rejected* values are the typed load-shedding
/// answers; Failed is a transient pipeline error (worth retrying, see
/// diagnose_with_retry).
enum class RequestStatus {
  Ok,
  RejectedQueueFull,   // admission queue at capacity
  RejectedDeadline,    // expired while queued, or finished past deadline
  RejectedDraining,    // tier is draining / shut down
  RejectedUnhealthy,   // health tripped; shed (probe trickle excepted)
  Failed,              // pipeline threw (e.g. extraction fault)
};

std::string_view to_string(RequestStatus status) noexcept;

/// True for the four load-shedding rejections (not Ok, not Failed).
bool is_rejection(RequestStatus status) noexcept;

/// Transient outcomes a caller should retry with backoff: a momentarily
/// full queue or a failed pipeline pass. Deadline/draining/unhealthy
/// rejections are deliberate shedding — retrying them defeats the tier.
bool is_retriable(RequestStatus status) noexcept;

/// One diagnosis request: a borrowed view of the raw T x M window plus the
/// deadline it must answer by. The window must stay alive for the duration
/// of the diagnose call (every tier's diagnose blocks, so a stack-owned
/// window is fine). A never() deadline lets tiers with a configured
/// default_deadline_ms apply it, matching their legacy overloads.
struct DiagnoseRequest {
  const Matrix* window = nullptr;
  Deadline deadline = Deadline::never();
};

/// One request's uniform outcome. `diagnosis` is meaningful only when
/// `status == Ok`; `generation` names the bundle that served it (0 = never
/// served); `replica`/`attempts`/`spilled` are fleet provenance (replica 0,
/// attempts 1, spilled false from single-instance tiers); timings cover
/// queue wait and service time where the tier tracks them.
struct DiagnosisResult {
  RequestStatus status = RequestStatus::Failed;
  Diagnosis diagnosis;
  std::string error;        // what() of the pipeline failure, for Failed
  std::uint64_t generation = 0;
  std::size_t replica = 0;
  std::size_t attempts = 1;
  bool spilled = false;
  double queue_ms = 0.0;    // admission -> dequeue (0 where untracked)
  double service_ms = 0.0;  // dequeue -> completion
  double total_ms = 0.0;    // admission -> completion (or rejection)

  bool ok() const noexcept { return status == RequestStatus::Ok; }
};

/// The tier-agnostic serving interface. Implementations: DiagnosisService
/// (bare pipeline), ServiceHost (overload-safe host), ServingFleet
/// (replicated fleet). See the contract at the top of this header.
class Diagnoser {
 public:
  virtual ~Diagnoser() = default;

  virtual DiagnosisResult diagnose(const DiagnoseRequest& request) = 0;
};

/// diagnose + seeded-backoff retry of retriable outcomes (Failed,
/// RejectedQueueFull) against any tier, bounded by the request's deadline.
/// Rejections that express deliberate shedding are returned immediately;
/// when the deadline (not the tier) ends the retry loop, the answer is
/// RejectedDeadline. `attempts` on the result counts diagnose calls made.
DiagnosisResult diagnose_with_retry(Diagnoser& diagnoser,
                                    const DiagnoseRequest& request,
                                    const BackoffConfig& backoff);

}  // namespace alba
