// Dense row-major double matrix — the storage type for feature matrices,
// network weights, and telemetry series snapshots.
//
// Design notes: row-major so a sample's feature vector is a contiguous
// `row()` span; bounds checked in debug builds only (`operator()` is on the
// tree-building hot path); no expression templates — the handful of kernels
// the library needs live in linalg/ops.hpp and are written directly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace alba {

class Matrix {
 public:
  Matrix() noexcept = default;

  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer-style data; all rows must be equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    ALBA_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    ALBA_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) noexcept {
    ALBA_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    ALBA_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Copies column c into a new vector (columns are strided).
  std::vector<double> col(std::size_t c) const;

  /// New matrix containing the selected rows, in the given order.
  Matrix select_rows(std::span<const std::size_t> indices) const;

  /// Like select_rows but writes into `out`, reusing its buffer when large
  /// enough — the allocation-free gather the active-learning scoring path
  /// uses for per-chunk scratch matrices.
  void select_rows_into(std::span<const std::size_t> indices, Matrix& out) const;

  /// New matrix containing the selected columns, in the given order.
  Matrix select_cols(std::span<const std::size_t> indices) const;

  /// Appends a row (must match cols(); first append fixes the width).
  void append_row(std::span<const double> values);

  Matrix transposed() const;

  void fill(double v) noexcept { data_.assign(data_.size(), v); }

  /// Reshapes to rows × cols without shrinking capacity; contents are
  /// unspecified afterwards (scratch-buffer reuse, not a resize-preserve).
  void reshape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace alba
