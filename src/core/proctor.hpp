// Proctor baseline (Aksar et al., "Proctor: a semi-supervised performance
// anomaly diagnosis framework", ISC 2021) as configured in Sec. IV-D/E-3 of
// the ALBADross paper: a deep autoencoder pretrained on the unlabeled pool
// learns a code-layer representation; a logistic-regression head is trained
// on the encoded labeled samples; new labels arrive through *random*
// queries. The pretrained encoder is shared across clone()s so the active
// learning loop only re-trains the head each query — which is why Proctor's
// F1 curve stays flat in Figs. 3/5 (random labels add little information).
#pragma once

#include <memory>

#include "ml/autoencoder.hpp"
#include "ml/classifier.hpp"
#include "ml/logreg.hpp"

namespace alba {

struct ProctorConfig {
  int num_classes = 2;
  AutoencoderConfig autoencoder;
  LogRegConfig head;  // num_classes is overwritten with the outer value
};

class ProctorClassifier final : public Classifier {
 public:
  explicit ProctorClassifier(ProctorConfig config, std::uint64_t seed = 0);

  /// Trains the autoencoder on (unlabeled) data. Must run before fit().
  /// Returns the final reconstruction MSE.
  double pretrain(const Matrix& unlabeled);

  bool pretrained() const noexcept { return encoder_ && encoder_->fitted(); }

  void fit(const Matrix& x, std::span<const int> y) override;
  Matrix predict_proba(const Matrix& x) const override;

  /// Shares the pretrained encoder; only the head is re-initialized.
  std::unique_ptr<Classifier> clone() const override;
  std::unique_ptr<Classifier> clone_reseeded(std::uint64_t seed) const override;
  std::string name() const override { return "proctor"; }
  int num_classes() const noexcept override { return config_.num_classes; }
  bool fitted() const noexcept override { return head_.fitted(); }

  const Autoencoder& encoder() const;

 private:
  ProctorConfig config_;
  std::uint64_t seed_;
  std::shared_ptr<Autoencoder> encoder_;
  LogisticRegression head_;
};

}  // namespace alba
