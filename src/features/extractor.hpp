// Feature-matrix assembly: runs preprocessing + a per-metric extractor over
// every sample (parallel over samples), producing the labeled feature
// matrix the ML layer consumes, then drops NaN and constant columns (the
// paper "drop[s] features with NaN or zero values" after extraction).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "features/mvts.hpp"
#include "features/preprocessing.hpp"
#include "features/tsfresh.hpp"
#include "linalg/matrix.hpp"
#include "telemetry/run_generator.hpp"

namespace alba {

/// Labeled feature matrix with sample provenance (which app/input/run/node
/// each row came from — the robustness experiments split on these).
struct FeatureMatrix {
  Matrix x;                          // samples × features
  std::vector<std::string> names;    // "metric|feature" per column
  std::vector<int> labels;           // anomaly class per row (0 = healthy)
  std::vector<int> app_ids;
  std::vector<int> input_ids;
  std::vector<int> run_ids;
  std::vector<int> node_ids;

  std::size_t num_samples() const noexcept { return x.rows(); }
  std::size_t num_features() const noexcept { return x.cols(); }

  /// Subset of rows, preserving provenance.
  FeatureMatrix select_rows(std::span<const std::size_t> indices) const;
};

enum class ExtractorKind { Mvts, Tsfresh };

std::string_view extractor_name(ExtractorKind kind) noexcept;
std::unique_ptr<FeatureExtractor> make_extractor(ExtractorKind kind);

/// Extracts features from every sample. Column j*F+f is feature f of
/// metric j.
FeatureMatrix extract_features(const std::vector<Sample>& samples,
                               const MetricRegistry& registry,
                               const FeatureExtractor& extractor,
                               const PreprocessConfig& preprocess);

/// Aggregated repair/degradation accounting from `extract_features_robust`.
struct ExtractionQuality {
  std::size_t cells_interpolated = 0;    // NaN cells repaired, all samples
  std::size_t metrics_quarantined = 0;   // per-sample metric quarantines
  std::size_t feature_failures = 0;      // per-metric extractor throws caught
  std::size_t rows_dropped = 0;          // samples removed entirely
  std::vector<std::size_t> dropped_samples;  // indices into `samples`
};

/// Degraded-telemetry variant of `extract_features`: preprocesses with
/// `preprocess_series_robust`, zero-fills the feature block of quarantined
/// metrics (behind the per-metric validity mask), catches a per-metric
/// extractor failure — zero-fill and count — instead of letting it abort
/// the whole matrix, and drops samples whose series is unusable (e.g.
/// truncated below the trim window). Throws only when no sample survives.
FeatureMatrix extract_features_robust(const std::vector<Sample>& samples,
                                      const MetricRegistry& registry,
                                      const FeatureExtractor& extractor,
                                      const PreprocessConfig& preprocess,
                                      ExtractionQuality& quality);

/// Removes columns that contain any non-finite value or are constant across
/// all samples. Returns the number of columns dropped.
std::size_t drop_unusable_columns(FeatureMatrix& fm);

/// Projects `fm` onto the named columns, in the given order — how freshly
/// extracted production samples are aligned with a training-time feature
/// space that had columns dropped/selected. Throws when a name is absent.
/// Non-finite values in the projected matrix are replaced with 0 (a fresh
/// run can produce a NaN feature the training data never did).
Matrix select_features_by_name(const FeatureMatrix& fm,
                               const std::vector<std::string>& names);

}  // namespace alba
