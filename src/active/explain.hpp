// Annotator assistance — the paper's planned "interactive dashboard"
// direction (Sec. VI): when the query strategy selects a sample, show the
// human which metrics make it unusual so labeling is faster and more
// reliable. A queried sample is explained by the features that deviate
// most from the labeled healthy profile (robust z-scores against the
// healthy samples' median/MAD), aggregated up to metric level.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/dataset.hpp"

namespace alba {

struct FeatureDeviation {
  std::string feature;   // "metric|feature" column name
  double z = 0.0;        // robust z-score vs the healthy profile
  double value = 0.0;    // the sample's value
  double healthy_median = 0.0;
};

struct MetricDeviation {
  std::string metric;       // metric part of the column names
  double max_abs_z = 0.0;   // strongest deviation among its features
  std::size_t features = 0; // features of this metric among the top-k
};

class QueryExplainer {
 public:
  /// Builds the healthy profile from the labeled data's healthy rows
  /// (label == healthy_label). Throws when no healthy samples exist yet —
  /// early in an ALBADross run the seed has none; callers should fall back
  /// to "no reference profile yet".
  QueryExplainer(const LabeledData& labeled,
                 std::vector<std::string> feature_names,
                 int healthy_label = 0);

  /// Top-k features of `sample` by |robust z| against the healthy profile.
  std::vector<FeatureDeviation> top_features(std::span<const double> sample,
                                             std::size_t k = 10) const;

  /// The same deviations grouped by metric (column names "metric|feature");
  /// what a dashboard would highlight.
  std::vector<MetricDeviation> top_metrics(std::span<const double> sample,
                                           std::size_t k = 5) const;

  std::size_t healthy_samples() const noexcept { return n_healthy_; }

 private:
  std::vector<std::string> names_;
  std::vector<double> median_;
  std::vector<double> mad_;  // median absolute deviation, floored
  std::size_t n_healthy_ = 0;
};

}  // namespace alba
