#include "ml/classifier.hpp"

#include "common/error.hpp"

namespace alba {

int argmax_label(std::span<const double> probs) noexcept {
  int best = 0;
  for (std::size_t c = 1; c < probs.size(); ++c) {
    if (probs[c] > probs[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::vector<int> Classifier::predict(const Matrix& x) const {
  const Matrix probs = predict_proba(x);
  std::vector<int> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = argmax_label(probs.row(i));
  }
  return out;
}

}  // namespace alba
