// Ablation: the active-learning base classifier. The paper grid-searches
// four models (Table IV) and runs its AL evaluation with the best (random
// forest); this bench runs the same uncertainty-sampling loop with each of
// the four at its Table IV optimum. Expected shape: the tree ensembles
// (RF, LGBM) dominate on label efficiency; logistic regression caps lower
// on this nonlinear feature space; the MLP is competitive but far more
// expensive per re-training round.
#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "ml/grid_search.hpp"

using namespace alba;
using namespace alba::bench;

int main(int argc, char** argv) {
  BenchFlags flags;
  flags.queries = 60;
  flags.repeats = 2;
  Cli cli("bench_ablation_models",
          "Ablation — AL base classifier (rf / lgbm / lr / mlp)");
  add_standard_flags(cli, flags);
  cli.parse(argc, argv);
  apply_logging(flags);

  std::printf("=== Ablation: active-learning base model (Volta) ===\n");
  const ExperimentData data = build_data(SystemKind::Volta, flags);

  TextTable table({"model", "starting F1", "labels to F1>=0.90", "final F1",
                   "time/run (s)"});

  for (const std::string& model : model_names()) {
    std::vector<QueryCurve> repeats;
    Timer timer;
    for (int r = 0; r < flags.repeats; ++r) {
      const ALSetup setup = standard_setup(data, flags.seed + 100u * r);
      ActiveLearnerConfig cfg;
      cfg.strategy = QueryStrategy::Uncertainty;
      cfg.max_queries = flags.queries;
      cfg.seed = flags.seed + r;
      ParamSet params = table4_optimum(model, false);
      if (model == "mlp") params["max_iter"] = "30";  // per-query refit cost
      ActiveLearner learner(
          make_model_factory(model, kNumClasses, flags.seed + r)(params), cfg);
      LabelOracle oracle(setup.pool_y, kNumClasses);
      repeats.push_back(learner
                            .run(setup.seed, setup.pool_x, oracle,
                                 setup.pool_app, setup.test_x, setup.test_y)
                            .curve);
    }
    const AggregatedCurve agg = aggregate_curves(repeats);
    table.add_row({model, strformat("%.3f", agg.f1_mean.front()),
                   strformat("%d", queries_to_reach(agg, 0.90)),
                   strformat("%.3f", agg.f1_mean.back()),
                   strformat("%.1f", timer.seconds() / flags.repeats)});
    std::printf("  %-5s done (%.1fs per run)\n", model.c_str(),
                timer.seconds() / flags.repeats);
  }

  std::printf("\n%s", table.render().c_str());
  std::printf("(each model at its Table IV optimum; MLP epochs reduced for "
              "per-query refits)\n");
  return 0;
}
