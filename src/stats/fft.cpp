#include "stats/fft.hpp"

#include <cmath>

#include "common/error.hpp"

namespace alba::stats {

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  ALBA_CHECK(n > 0 && (n & (n - 1)) == 0)
      << "FFT length must be a power of two, got " << n;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& c : data) c *= inv_n;
  }
}

std::vector<std::complex<double>> fft_real(std::span<const double> signal) {
  ALBA_CHECK(!signal.empty()) << "FFT of empty signal";
  const std::size_t n = next_pow2(signal.size());
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = signal[i];
  fft_inplace(data);
  return data;
}

}  // namespace alba::stats
