#include "preprocess/scalers.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace alba {

void MinMaxScaler::fit(const Matrix& x) {
  ALBA_CHECK(x.rows() > 0 && x.cols() > 0);
  mins_.assign(x.cols(), std::numeric_limits<double>::infinity());
  maxs_.assign(x.cols(), -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      mins_[j] = std::min(mins_[j], row[j]);
      maxs_[j] = std::max(maxs_[j], row[j]);
    }
  }
}

void MinMaxScaler::transform(Matrix& x) const {
  ALBA_CHECK(fitted()) << "MinMaxScaler::transform before fit";
  ALBA_CHECK(x.cols() == mins_.size())
      << "scaler fitted on " << mins_.size() << " columns, got " << x.cols();
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto row = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double span = maxs_[j] - mins_[j];
      const double v = span > 0.0 ? (row[j] - mins_[j]) / span : 0.0;
      row[j] = std::clamp(v, 0.0, 1.0);
    }
  }
}

void StandardScaler::fit(const Matrix& x) {
  ALBA_CHECK(x.rows() > 0 && x.cols() > 0);
  means_.assign(x.cols(), 0.0);
  stds_.assign(x.cols(), 0.0);
  const double inv_n = 1.0 / static_cast<double>(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) means_[j] += row[j];
  }
  for (auto& m : means_) m *= inv_n;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double d = row[j] - means_[j];
      stds_[j] += d * d;
    }
  }
  for (auto& s : stds_) s = std::sqrt(s * inv_n);
}

void StandardScaler::transform(Matrix& x) const {
  ALBA_CHECK(fitted()) << "StandardScaler::transform before fit";
  ALBA_CHECK(x.cols() == means_.size());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto row = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      row[j] = stds_[j] > 0.0 ? (row[j] - means_[j]) / stds_[j] : 0.0;
    }
  }
}

}  // namespace alba
