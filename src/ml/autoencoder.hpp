// Deep autoencoder — the representation learner inside the Proctor baseline
// (Aksar et al., ISC 2021): symmetric ReLU encoder/decoder around a linear
// code layer, mean-squared-error reconstruction loss, Adadelta optimizer
// (the paper trains Proctor's autoencoder with adadelta + MSE).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace alba {

struct AutoencoderConfig {
  std::vector<int> encoder_layers = {256};  // hidden sizes before the code
  int code_size = 64;
  int epochs = 30;
  int batch_size = 64;
  double rho = 0.95;       // Adadelta decay
  double eps = 1e-6;       // Adadelta epsilon
};

class Autoencoder {
 public:
  explicit Autoencoder(AutoencoderConfig config, std::uint64_t seed = 0);

  /// Trains on unlabeled data (rows = samples). Returns the final epoch's
  /// mean reconstruction MSE.
  double fit(const Matrix& x);

  /// Code-layer embedding of each row (n × code_size).
  Matrix encode(const Matrix& x) const;

  /// Full reconstruction (n × input_size).
  Matrix reconstruct(const Matrix& x) const;

  /// Per-sample reconstruction errors (mean squared, length n).
  std::vector<double> reconstruction_error(const Matrix& x) const;

  bool fitted() const noexcept { return !weights_.empty(); }
  const AutoencoderConfig& config() const noexcept { return config_; }

 private:
  Matrix forward(const Matrix& x, std::vector<Matrix>* activations,
                 std::size_t stop_after_layer) const;

  AutoencoderConfig config_;
  std::uint64_t seed_;
  std::size_t code_layer_ = 0;  // index of the layer whose output is the code
  std::vector<Matrix> weights_;
  std::vector<std::vector<double>> bias_;
};

}  // namespace alba
