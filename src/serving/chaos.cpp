#include "serving/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace alba {

ServingChaos::ServingChaos(ChaosConfig config) : config_(config) {
  ALBA_CHECK(config_.slow_extract_rate >= 0.0 &&
             config_.slow_extract_rate <= 1.0)
      << "slow_extract_rate must be in [0, 1]";
  ALBA_CHECK(config_.extract_fail_rate >= 0.0 &&
             config_.extract_fail_rate <= 1.0)
      << "extract_fail_rate must be in [0, 1]";
  ALBA_CHECK(config_.slow_extract_ms >= 0.0)
      << "slow_extract_ms must be non-negative";
}

std::function<void(const Matrix&)> ServingChaos::hook() {
  return [this](const Matrix& window) { on_extraction(window); };
}

void ServingChaos::on_extraction(const Matrix&) {
  const std::uint64_t event = events_.fetch_add(1);
  if (!config_.enabled()) return;
  // One independent stream per event index: the decision for event k does
  // not depend on which thread reached it or what other events did.
  Rng rng(Rng(config_.seed).split(event + 1).next());
  if (rng.bernoulli(config_.slow_extract_rate)) {
    slowdowns_.fetch_add(1);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(config_.slow_extract_ms));
  }
  if (rng.bernoulli(config_.extract_fail_rate)) {
    failures_.fetch_add(1);
    throw Error("chaos: injected extraction failure (event " +
                std::to_string(event) + ")");
  }
}

std::uint64_t ServingChaos::extractions_seen() const noexcept {
  return events_.load();
}
std::uint64_t ServingChaos::slowdowns_injected() const noexcept {
  return slowdowns_.load();
}
std::uint64_t ServingChaos::failures_injected() const noexcept {
  return failures_.load();
}

FleetChaos::FleetChaos(FleetChaosConfig config, std::size_t replica_count)
    : config_(std::move(config)) {
  ALBA_CHECK(replica_count > 0) << "FleetChaos needs at least one replica";
  for (const std::size_t t : config_.targets) {
    ALBA_CHECK(t < replica_count)
        << "chaos target " << t << " out of range (fleet has "
        << replica_count << " replicas)";
  }
  injectors_.resize(replica_count);
  for (std::size_t r = 0; r < replica_count; ++r) {
    const bool targeted =
        config_.targets.empty() ||
        std::find(config_.targets.begin(), config_.targets.end(), r) !=
            config_.targets.end();
    if (!targeted) continue;
    ChaosConfig per = config_.base;
    // Replica r's schedule depends only on (seed, r): stable across fleet
    // sizes and across which other replicas are targeted.
    per.seed = Rng(config_.seed).split(r + 1).next();
    injectors_[r] = std::make_unique<ServingChaos>(per);
  }
}

bool FleetChaos::targets_replica(std::size_t replica) const {
  return replica < injectors_.size() && injectors_[replica] != nullptr;
}

std::function<void(const Matrix&)> FleetChaos::hook_for(std::size_t replica) {
  ALBA_CHECK(replica < injectors_.size())
      << "replica " << replica << " out of range";
  if (!injectors_[replica]) return {};
  const auto inner = injectors_[replica]->hook();
  return [this, inner](const Matrix& window) {
    if (enabled_.load(std::memory_order_relaxed)) inner(window);
  };
}

void FleetChaos::set_enabled(bool enabled) noexcept {
  enabled_.store(enabled, std::memory_order_relaxed);
}

bool FleetChaos::enabled() const noexcept {
  return enabled_.load(std::memory_order_relaxed);
}

const ServingChaos* FleetChaos::injector(std::size_t replica) const {
  ALBA_CHECK(replica < injectors_.size())
      << "replica " << replica << " out of range";
  return injectors_[replica].get();
}

std::uint64_t FleetChaos::extractions_seen() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& inj : injectors_) {
    if (inj) sum += inj->extractions_seen();
  }
  return sum;
}

std::uint64_t FleetChaos::slowdowns_injected() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& inj : injectors_) {
    if (inj) sum += inj->slowdowns_injected();
  }
  return sum;
}

std::uint64_t FleetChaos::failures_injected() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& inj : injectors_) {
    if (inj) sum += inj->failures_injected();
  }
  return sum;
}

void write_poisoned_bundle(const std::string& src_path,
                           const std::string& dst_path, BundlePoison mode,
                           std::uint64_t seed) {
  std::ifstream in(src_path, std::ios::binary);
  ALBA_CHECK(in.good()) << "cannot open '" << src_path << "' for reading";
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  ALBA_CHECK(bytes.size() > 32)
      << "'" << src_path << "' is too small to be a bundle ("
      << bytes.size() << " bytes)";

  Rng rng(seed);
  switch (mode) {
    case BundlePoison::Truncate: {
      // Keep between the 16-byte header and ~90% of the file, so every
      // later section boundary gets exercised across seeds.
      const std::size_t keep =
          16 + rng.uniform_index((bytes.size() * 9) / 10 - 16);
      bytes.resize(keep);
      break;
    }
    case BundlePoison::BitFlip: {
      // Flip one bit somewhere past the magic/version header.
      const std::size_t at = 16 + rng.uniform_index(bytes.size() - 16);
      bytes[at] = static_cast<char>(
          static_cast<unsigned char>(bytes[at]) ^
          static_cast<unsigned char>(1u << rng.uniform_index(8)));
      break;
    }
    case BundlePoison::BadMagic:
      bytes[0] = static_cast<char>(
          static_cast<unsigned char>(bytes[0]) ^ 0xFFu);
      break;
  }

  std::ofstream out(dst_path, std::ios::binary | std::ios::trunc);
  ALBA_CHECK(out.good()) << "cannot open '" << dst_path << "' for writing";
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ALBA_CHECK(out.good()) << "write to '" << dst_path << "' failed";
}

}  // namespace alba
