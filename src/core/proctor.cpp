#include "core/proctor.hpp"

#include "common/error.hpp"

namespace alba {

namespace {
LogRegConfig head_config(const ProctorConfig& cfg) {
  LogRegConfig head = cfg.head;
  head.num_classes = cfg.num_classes;
  return head;
}
}  // namespace

ProctorClassifier::ProctorClassifier(ProctorConfig config, std::uint64_t seed)
    : config_(config),
      seed_(seed),
      encoder_(std::make_shared<Autoencoder>(config.autoencoder, seed)),
      head_(head_config(config), seed ^ 0x9E3779B9ULL) {
  ALBA_CHECK(config_.num_classes >= 2);
}

double ProctorClassifier::pretrain(const Matrix& unlabeled) {
  return encoder_->fit(unlabeled);
}

void ProctorClassifier::fit(const Matrix& x, std::span<const int> y) {
  ALBA_CHECK(pretrained())
      << "Proctor needs pretrain(unlabeled) before fit()";
  head_ = LogisticRegression(head_config(config_), seed_ ^ 0x9E3779B9ULL);
  head_.fit(encoder_->encode(x), y);
}

Matrix ProctorClassifier::predict_proba(const Matrix& x) const {
  ALBA_CHECK(fitted()) << "predict before fit";
  return head_.predict_proba(encoder_->encode(x));
}

std::unique_ptr<Classifier> ProctorClassifier::clone() const {
  auto copy = std::make_unique<ProctorClassifier>(config_, seed_);
  copy->encoder_ = encoder_;  // share the pretrained representation
  return copy;
}

std::unique_ptr<Classifier> ProctorClassifier::clone_reseeded(
    std::uint64_t seed) const {
  auto copy = std::make_unique<ProctorClassifier>(config_, seed);
  copy->encoder_ = encoder_;
  return copy;
}

const Autoencoder& ProctorClassifier::encoder() const { return *encoder_; }

}  // namespace alba
