// LightGBM-style multiclass gradient boosting (Ke et al., NeurIPS 2017):
// one regression tree per class per round fitted to softmax
// gradients/hessians, leaf-wise (best-gain-first) growth capped by
// `num_leaves`, optional depth cap, per-tree column subsampling
// (`colsample_bytree`) — the hyperparameters of the paper's Table IV grid.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "ml/binning.hpp"
#include "ml/classifier.hpp"

namespace alba {

class CompiledTreePredictor;

struct GbmConfig {
  int num_classes = 2;
  int n_estimators = 60;      // boosting rounds
  int num_leaves = 31;
  int max_depth = -1;         // -1 = unlimited
  double learning_rate = 0.1;
  double colsample_bytree = 1.0;
  int max_bins = BinnedMatrix::kMaxBins;  // Hist mode: bins per feature
  double reg_lambda = 1.0;    // L2 on leaf values
  int min_samples_leaf = 1;
  double min_gain = 1e-7;
  SplitAlgo split_algo = SplitAlgo::Exact;
};

class GbmClassifier final : public Classifier {
 public:
  explicit GbmClassifier(GbmConfig config, std::uint64_t seed = 0);

  void fit(const Matrix& x, std::span<const int> y) override;
  Matrix predict_proba(const Matrix& x) const override;
  Matrix predict_proba_reference(const Matrix& x) const override;
  void predict_proba_rows(const Matrix& x, std::span<const std::size_t> rows,
                          Matrix& out) const override;

  std::unique_ptr<Classifier> clone() const override;
  std::unique_ptr<Classifier> clone_reseeded(std::uint64_t seed) const override {
    return std::make_unique<GbmClassifier>(config_, seed);
  }
  std::string name() const override { return "lgbm"; }
  int num_classes() const noexcept override { return config_.num_classes; }
  bool fitted() const noexcept override { return !rounds_.empty(); }

  const GbmConfig& config() const noexcept { return config_; }
  std::size_t num_rounds() const noexcept { return rounds_.size(); }
  std::uint64_t seed() const noexcept { return seed_; }

  /// One regression tree in flat layout.
  struct RegNode {
    int feature = -1;        // -1 for leaves
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;      // leaf output
  };
  struct RegTree {
    std::vector<RegNode> nodes;
    double predict(std::span<const double> row) const noexcept;
  };

  /// Serialization accessors.
  const std::vector<std::vector<RegTree>>& rounds() const noexcept {
    return rounds_;
  }
  const std::vector<double>& base_score() const noexcept { return base_score_; }
  void restore(std::vector<std::vector<RegTree>> rounds,
               std::vector<double> base_score);

  /// Compiled flat-SoA predictor, built by fit()/restore(); null before
  /// fit or when compilation fell back to the reference traversal.
  const std::shared_ptr<const CompiledTreePredictor>& compiled()
      const noexcept {
    return compiled_;
  }

 private:
  RegTree fit_tree(const Matrix& x, std::span<const double> grad,
                   std::span<const double> hess,
                   std::span<const std::size_t> feature_pool) const;
  RegTree fit_tree_hist(const BinnedMatrix& binned,
                        std::span<const double> grad,
                        std::span<const double> hess,
                        std::span<const std::size_t> feature_pool) const;

  GbmConfig config_;
  std::uint64_t seed_;
  // rounds_[r][k] = tree for class k at boosting round r.
  std::vector<std::vector<RegTree>> rounds_;
  std::vector<double> base_score_;  // initial per-class log-odds
  std::shared_ptr<const CompiledTreePredictor> compiled_;
};

}  // namespace alba
