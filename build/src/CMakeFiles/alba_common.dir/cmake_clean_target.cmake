file(REMOVE_RECURSE
  "libalba_common.a"
)
