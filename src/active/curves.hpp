// Per-query metric curves and their aggregation across repeated train/test
// splits. Every figure in the paper's evaluation is one of these curves
// (F1 / false-alarm / miss-rate vs number of queried labels) with a 95%
// confidence band over 5 splits.
#pragma once

#include <vector>

namespace alba {

/// Metrics measured on the fixed test set after `queries` labels.
struct QueryCurvePoint {
  int queries = 0;  // additional labels beyond the initial seed set
  double f1 = 0.0;
  double false_alarm_rate = 0.0;
  double anomaly_miss_rate = 0.0;
};

using QueryCurve = std::vector<QueryCurvePoint>;

/// Mean curve with a symmetric 95% CI (normal approximation, the paper's
/// shaded band) across repeats. Repeats may have different lengths; each
/// point aggregates the repeats that reach it.
struct AggregatedCurve {
  std::vector<int> queries;
  std::vector<double> f1_mean, f1_lo, f1_hi;
  std::vector<double> far_mean, far_lo, far_hi;
  std::vector<double> amr_mean, amr_lo, amr_hi;
};

AggregatedCurve aggregate_curves(const std::vector<QueryCurve>& repeats);

/// First query count at which the mean F1 reaches `target`; -1 if never.
int queries_to_reach(const AggregatedCurve& curve, double target_f1);

/// Same on a single repeat.
int queries_to_reach(const QueryCurve& curve, double target_f1);

}  // namespace alba
