file(REMOVE_RECURSE
  "libalba_stats.a"
)
