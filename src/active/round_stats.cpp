#include "active/round_stats.hpp"

#include <ostream>
#include <sstream>

#include "common/csv.hpp"

namespace alba {

RoundStatsSummary summarize_rounds(std::span<const RoundStats> rounds) {
  RoundStatsSummary s;
  s.rounds = rounds.size();
  for (const RoundStats& r : rounds) {
    s.score_seconds += r.score_seconds;
    s.refit_seconds += r.refit_seconds;
    s.eval_seconds += r.eval_seconds;
  }
  return s;
}

std::string format_round_summary(std::span<const RoundStats> rounds) {
  const RoundStatsSummary s = summarize_rounds(rounds);
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << s.rounds << " rounds: score " << s.score_seconds << "s, refit "
     << s.refit_seconds << "s, eval " << s.eval_seconds << "s (total "
     << s.total_seconds() << "s)";
  return os.str();
}

std::string round_stats_csv_header() {
  return "label,round,labels_total,pool_size,batch,"
         "score_seconds,refit_seconds,eval_seconds";
}

std::string round_stats_csv_row(std::string_view label, const RoundStats& s) {
  std::ostringstream os;
  // Labels carry free-form sweep configuration ("batch=8,threads=4");
  // RFC-4180 quoting keeps embedded commas/quotes from shearing columns.
  os << csv_escape(std::string(label)) << ',' << s.round << ','
     << s.labels_total << ',' << s.pool_size << ',' << s.batch << ','
     << s.score_seconds << ',' << s.refit_seconds << ',' << s.eval_seconds;
  return os.str();
}

void write_round_stats_csv(std::ostream& os, std::string_view label,
                           std::span<const RoundStats> rounds) {
  os << round_stats_csv_header() << '\n';
  for (const RoundStats& r : rounds) {
    os << round_stats_csv_row(label, r) << '\n';
  }
}

}  // namespace alba
