#!/usr/bin/env bash
# Repo check: the tier-1 build + test suite, a serving smoke run (train a
# tiny model, export a bundle, serve 100 windows, assert bit-identical
# agreement with the offline pipeline), a serving chaos smoke (burst a
# ServiceHost under injected slow/failing extractions and poisoned bundle
# pushes; only typed shedding, deadline-honest Ok results, and rollback
# bit-identity are acceptable), a serving latency smoke (single-window
# sweep over batch x model x split algo; the small-batch threshold-SoA
# kernel must be >=3x the forced block path at batch=1 on RF+GBM with
# bit-identical probabilities; percentiles land in
# BENCH_serving_latency.json), an ML train smoke run (histogram vs exact
# split finders must agree on macro-F1 within the parity gate), an ML
# predict smoke run (compiled flat-SoA inference must match the
# object-traversal reference on every argmax, stay within 1e-9 on
# probabilities, and clear the 3x speedup gate at the 2000x2000 pool
# scale; timings plus the small/block batch-size sweep land in
# BENCH_ml_predict.json), an
# fleet smoke run (deterministic consistent-hash routing must beat
# round-robin on cache hit rate; timings land in BENCH_fleet.json), a
# fleet chaos smoke (kill-under-load conservation, poisoned-canary
# containment, guard-window rollback, promote, typed drain), a stream
# ingest smoke (replay a gapped/NaN-ridden 1 Hz feed, assert incremental
# vs batch feature parity on every emitted window and the 5x emit
# speedup gate; timings land in BENCH_stream.json), a wire smoke (stream
# a feed over the framed socket transport, assert row conservation,
# bit-identical windows vs the in-process replay, and diagnosis parity
# through a trained bundle; results land in BENCH_wire.json), a wire
# chaos smoke (seeded corrupt/duplicate/drop/slow-loris/backpressure/
# server-restart scenarios, each asserting every sent row ends exactly
# once in {ingested, typed-rejected} with nothing silently lost), an
# AddressSanitizer + UndefinedBehaviorSanitizer build of the full suite
# (the fault-injection paths shuffle NaNs and truncated buffers around —
# exactly where silent out-of-bounds reads would hide), then a
# ThreadSanitizer build of the concurrency-sensitive tests (thread pool,
# tree training incl. the shared BinnedMatrix, active-learning loop, the
# diagnosis service, its overload-safe host, and the replicated fleet)
# to catch races in the parallel training/scoring/serving paths.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier 1: build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)" > /dev/null
(cd build && ctest --output-on-failure -j"$(nproc)")

echo
echo "== serving smoke: export bundle + serve 100 windows =="
./build/bench/bench_serving --smoke

echo
echo "== serving chaos smoke: typed shedding + rollback under faults =="
./build/bench/bench_serving --chaos-smoke

echo
echo "== serving latency smoke: small-batch kernel >=3x at batch=1 =="
(cd build/bench && ./bench_serving --latency-smoke)

echo
echo "== ml smoke: hist/exact train parity + compiled predict gates =="
(cd build/bench && ./bench_micro_ml --smoke)

echo
echo "== fleet smoke: routing determinism + hash vs round-robin hit rate =="
(cd build/bench && ./bench_fleet --smoke)

echo
echo "== fleet chaos smoke: kill/canary/rollback containment gates =="
(cd build/bench && ./bench_fleet --chaos-smoke)

echo
echo "== stream smoke: incremental/batch parity + emit speedup gate =="
(cd build/bench && ./bench_stream_ingest --smoke)

echo
echo "== wire smoke: conservation + window/diagnosis parity over the socket =="
(cd build/bench && ./bench_wire --smoke)

echo
echo "== wire chaos smoke: row conservation under network faults =="
(cd build/bench && ./bench_wire --chaos-smoke)

echo
echo "== asan+ubsan: full test suite =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" > /dev/null
cmake --build build-asan -j"$(nproc)" --target \
  test_common test_thread_pool test_linalg test_stats_descriptive \
  test_stats_spectral test_anomaly test_telemetry test_features \
  test_preprocess test_ml_metrics test_binning test_ml_trees \
  test_compiled_tree test_ml_linear test_ml_tools test_active \
  test_active_ext test_core test_properties test_faults test_serving \
  test_service_host test_fleet test_streaming test_wire > /dev/null
(cd build-asan && ctest --output-on-failure -j"$(nproc)")

echo
echo "== tsan: thread pool + tree training + active learning + serving + fleet + streaming =="
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" > /dev/null
cmake --build build-tsan -j"$(nproc)" \
  --target test_thread_pool test_binning test_ml_trees test_compiled_tree \
  test_ml_tools test_active test_active_ext test_serving \
  test_service_host test_fleet test_streaming test_wire > /dev/null
for t in test_thread_pool test_binning test_ml_trees test_compiled_tree \
         test_ml_tools test_active test_active_ext test_serving \
         test_service_host test_fleet test_streaming test_wire; do
  echo "-- $t (tsan)"
  ./build-tsan/tests/"$t"
done

echo
echo "all checks passed"
