#include "stats/chi2.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace alba::stats {

double chi2_statistic(std::span<const double> observed,
                      std::span<const double> expected) {
  ALBA_CHECK(observed.size() == expected.size());
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) continue;  // sklearn: 0-expected bins contribute 0
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

std::vector<double> chi2_scores(const Matrix& x, std::span<const int> y) {
  ALBA_CHECK(x.rows() == y.size())
      << "chi2: " << x.rows() << " rows vs " << y.size() << " labels";
  ALBA_CHECK(x.rows() > 0);

  int num_classes = 0;
  for (int label : y) {
    ALBA_CHECK(label >= 0) << "chi2: negative class label " << label;
    num_classes = std::max(num_classes, label + 1);
  }
  const auto k = static_cast<std::size_t>(num_classes);
  const std::size_t n = x.rows();
  const std::size_t f = x.cols();

  // observed[c][j] = sum of feature j over samples of class c.
  Matrix observed(k, f, 0.0);
  std::vector<double> class_count(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = x.row(i);
    const auto c = static_cast<std::size_t>(y[i]);
    class_count[c] += 1.0;
    double* obs = observed.data() + c * f;
    for (std::size_t j = 0; j < f; ++j) {
      ALBA_CHECK(row[j] >= 0.0)
          << "chi2 requires non-negative features; feature " << j << " = "
          << row[j];
      obs[j] += row[j];
    }
  }

  // feature_total[j] = sum over all samples; expected[c][j] =
  // prior(c) * feature_total[j].
  std::vector<double> feature_total(f, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    const double* obs = observed.data() + c * f;
    for (std::size_t j = 0; j < f; ++j) feature_total[j] += obs[j];
  }

  std::vector<double> scores(f, 0.0);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < f; ++j) {
    double stat = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      const double expected = class_count[c] * inv_n * feature_total[j];
      if (expected <= 0.0) continue;
      const double d = observed(c, j) - expected;
      stat += d * d / expected;
    }
    scores[j] = stat;
  }
  return scores;
}

}  // namespace alba::stats
