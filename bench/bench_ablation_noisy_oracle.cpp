// Ablation (extension beyond the paper): imperfect annotators. The paper
// assumes the human answers every query correctly; in production, labels
// are noisy. Sweeps the oracle error rate and reports the degradation of
// the uncertainty strategy. Expected shape: graceful degradation — a few
// percent of wrong labels costs a few extra queries; tens of percent put a
// ceiling on the reachable F1 because the model keeps chasing contradictory
// evidence near the boundary.
#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "ml/grid_search.hpp"

using namespace alba;
using namespace alba::bench;

int main(int argc, char** argv) {
  BenchFlags flags;
  flags.queries = 80;
  flags.repeats = 2;
  Cli cli("bench_ablation_noisy_oracle",
          "Ablation — annotation error rate vs diagnosis quality");
  add_standard_flags(cli, flags);
  cli.parse(argc, argv);
  apply_logging(flags);

  std::printf("=== Ablation: noisy human annotator (Volta, uncertainty) ===\n");
  const ExperimentData data = build_data(SystemKind::Volta, flags);

  TextTable table({"oracle error rate", "labels to F1>=0.90", "final F1",
                   "final false alarm rate"});

  for (const double error : {0.0, 0.05, 0.10, 0.20}) {
    std::vector<QueryCurve> repeats;
    for (int r = 0; r < flags.repeats; ++r) {
      const ALSetup setup = standard_setup(data, flags.seed + 100u * r);
      ActiveLearnerConfig cfg;
      cfg.strategy = QueryStrategy::Uncertainty;
      cfg.max_queries = flags.queries;
      cfg.seed = flags.seed + r;
      ActiveLearner learner(
          make_model_factory("rf", kNumClasses, flags.seed + r)(
              table4_optimum("rf", false)),
          cfg);
      LabelOracle oracle(setup.pool_y, kNumClasses, error,
                         flags.seed ^ (0xBAD + r));
      repeats.push_back(learner
                            .run(setup.seed, setup.pool_x, oracle,
                                 setup.pool_app, setup.test_x, setup.test_y)
                            .curve);
    }
    const AggregatedCurve agg = aggregate_curves(repeats);
    table.add_row({strformat("%.0f%%", 100.0 * error),
                   strformat("%d", queries_to_reach(agg, 0.90)),
                   strformat("%.3f", agg.f1_mean.back()),
                   strformat("%.3f", agg.far_mean.back())});
    std::printf("  error %.0f%% done\n", 100.0 * error);
  }

  std::printf("\n%s", table.render().c_str());
  return 0;
}
