// The collector-side wire client: buffers telemetry rows, streams them to
// the ingest server as Row frames, and guarantees each offered row is
// delivered exactly once even across disconnects and server restarts.
//
// Reliability model:
//   * offer() assigns each row a dense per-node wire index and keeps the
//     row buffered until the server's cumulative Ack covers it (bounded by
//     max_inflight_rows — a full buffer pushes back on the caller rather
//     than growing without bound);
//   * on (re)connect the client sends Hello and waits for HelloAck, whose
//     resume_index says where the server's watermark stands: everything
//     below it is retroactively acked (it was disposed before the
//     connection died), everything at or above it is retransmitted. The
//     server's watermark survives connection churn and — via
//     IngestServer::snapshot() — a server restart, so nothing acked is
//     ever re-sent and nothing unacked is ever lost silently;
//   * heartbeats flow when the feed is quiet; silence past
//     heartbeat_timeout_ms is treated as a dead peer and triggers a
//     reconnect with seeded exponential backoff (common/backoff).
//
// The client is a poll-driven state machine, not a thread: step(now_ms)
// advances it — flushes pending bytes, drains acks, detects timeouts,
// reconnects when due. Time is a parameter, so tests and chaos scenarios
// drive it on a simulated clock while production callers pass
// steady-clock milliseconds. Not thread-safe; one owner steps it.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/backoff.hpp"
#include "common/rng.hpp"
#include "wire/frame.hpp"
#include "wire/transport.hpp"

namespace alba {

struct WireClientConfig {
  std::uint32_t node = 0;
  std::uint32_t metric_count = 0;      // validated by the server's Hello check
  double heartbeat_interval_ms = 1000.0;
  double heartbeat_timeout_ms = 5000.0;
  BackoffConfig reconnect;             // delays between connect attempts
  std::size_t max_inflight_rows = 4096;  // offer() refuses past this
  std::size_t max_rows_per_step = 256;   // send pacing per step()
};

struct WireClientStats {
  std::uint64_t rows_offered = 0;
  std::uint64_t rows_acked = 0;        // incl. rows covered by a resume point
  std::uint64_t row_frames_sent = 0;   // every transmission, retries included
  std::uint64_t retransmits = 0;       // row frames sent beyond the first try
  std::uint64_t connects = 0;          // successful connections established
  std::uint64_t connect_failures = 0;
  std::uint64_t disconnects = 0;       // eof/error/decode/heartbeat losses
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class WireClient {
 public:
  WireClient(Connector connector, WireClientConfig config);

  /// Buffers one row for delivery. Returns false (and buffers nothing)
  /// when max_inflight_rows rows are already awaiting ack — step() until
  /// acks drain, then retry.
  bool offer(std::uint64_t seq, double timestamp,
             std::span<const double> values);

  /// Advances the state machine at simulated/real time `now_ms`
  /// (monotonic across calls): connects when due, handshakes, sends rows
  /// and heartbeats, drains acks, detects dead peers.
  void step(double now_ms);

  /// Rows offered but not yet covered by the server's watermark.
  std::size_t unacked() const noexcept { return pending_.size(); }
  /// The server watermark as last observed (next wire index it expects).
  std::uint64_t acked_through() const noexcept { return acked_; }
  /// Connected, handshaken, every offered row acked, nothing buffered.
  bool idle() const noexcept;
  bool connected() const noexcept { return state_ == State::Streaming; }

  const WireClientStats& stats() const noexcept { return stats_; }

  /// Drops the connection (the buffered rows stay; a later step
  /// reconnects). Used by harnesses to force a client-side fault.
  void disconnect();

 private:
  enum class State { Disconnected, AwaitHelloAck, Streaming };

  struct PendingRow {
    std::uint64_t index = 0;
    std::uint64_t seq = 0;
    double timestamp = 0.0;
    std::vector<double> values;
    std::uint32_t sends = 0;
  };

  void enqueue_frame(const Frame& frame);
  void flush(double now_ms);
  void drain_reads(double now_ms);
  void handle_frame(const Frame& frame, double now_ms);
  void advance_ack(std::uint64_t next_index);
  void lose_connection(double now_ms);
  void try_connect(double now_ms);

  Connector connector_;
  WireClientConfig config_;
  Rng backoff_rng_;
  State state_ = State::Disconnected;
  std::unique_ptr<Connection> conn_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> outbuf_;
  std::size_t outbuf_head_ = 0;

  std::deque<PendingRow> pending_;   // unacked rows, index order
  std::uint64_t next_assign_ = 0;    // next wire index offer() hands out
  std::uint64_t acked_ = 0;          // server watermark (next expected)
  std::size_t send_cursor_ = 0;      // pending_ position of next unsent row

  int attempt_ = 0;                  // consecutive failed connects
  double next_attempt_ms_ = 0.0;
  double last_rx_ms_ = 0.0;
  double last_tx_ms_ = 0.0;
  std::uint64_t heartbeat_counter_ = 0;
  bool started_ = false;

  WireClientStats stats_;
};

}  // namespace alba
