// Reproduces Fig. 3: F1-score, false alarm rate, and anomaly miss rate of
// the three query strategies and the three baselines (Random, Equal App,
// Proctor) over the first N queries on the Volta dataset (TSFRESH
// features). Expected shape: uncertainty/margin/entropy reach 0.95 F1 with
// tens of labels while Random needs hundreds; false alarm rates of the AL
// strategies collapse to ~0 early; the miss rate bumps up while healthy
// samples are queried, then decays.
#include "bench_common.hpp"

using namespace alba;
using namespace alba::bench;

int main(int argc, char** argv) {
  BenchFlags flags;
  Cli cli("bench_fig3_volta_queries",
          "Fig. 3 — query curves of all methods on the Volta dataset");
  add_standard_flags(cli, flags);
  cli.parse(argc, argv);
  apply_logging(flags);

  std::printf("=== Fig. 3: anomaly diagnosis with active learning (Volta) ===\n");
  const ExperimentData data = build_data(SystemKind::Volta, flags);

  ExperimentOptions opt = make_options(flags);
  opt.methods = {"uncertainty", "margin",    "entropy",
                 "random",      "equal_app", "proctor"};
  const Timer timer;
  const QueryCurveResult result = run_query_curve_experiment(data, opt);

  std::printf("\n%s\n", render_query_curves(result.methods, 25).c_str());
  std::printf("starting F1 (seed set of %zu samples): %.3f\n",
              data.num_apps * kNumAnomalyTypes, result.starting_f1);
  std::printf("supervised reference on full AL training set (%zu samples): "
              "F1 %.3f\n",
              result.al_train_size, result.full_train_f1);
  for (const auto& m : result.methods) {
    std::printf("%-12s queries to F1>=0.95: %d (final F1 %.3f)\n",
                m.method.c_str(), queries_to_reach(m.aggregated, 0.95),
                m.aggregated.f1_mean.back());
  }
  std::printf("total experiment time: %.1fs\n", timer.seconds());

  const std::string csv = flags.out_dir + "/fig3_volta_curves.csv";
  write_curves_csv(csv, result.methods);
  std::printf("series written to %s\n", csv.c_str());
  return 0;
}
