#include "active/oracle.hpp"

#include "common/error.hpp"

namespace alba {

LabelOracle::LabelOracle(std::vector<int> true_labels, int num_classes,
                         double error_rate, std::uint64_t seed)
    : labels_(std::move(true_labels)),
      num_classes_(num_classes),
      error_rate_(error_rate),
      rng_(seed) {
  ALBA_CHECK(num_classes_ >= 2);
  ALBA_CHECK(error_rate_ >= 0.0 && error_rate_ < 1.0);
  for (const int label : labels_) {
    ALBA_CHECK(label >= 0 && label < num_classes_)
        << "oracle label " << label << " out of range";
  }
}

int LabelOracle::annotate(std::size_t index) {
  ALBA_CHECK(index < labels_.size()) << "oracle query out of range";
  ++queries_;
  const int truth = labels_[index];
  if (error_rate_ > 0.0 && rng_.bernoulli(error_rate_)) {
    // Wrong answer: uniform over the other classes.
    int wrong = static_cast<int>(rng_.uniform_index(
        static_cast<std::size_t>(num_classes_ - 1)));
    if (wrong >= truth) ++wrong;
    return wrong;
  }
  return truth;
}

int LabelOracle::true_label(std::size_t index) const {
  ALBA_CHECK(index < labels_.size());
  return labels_[index];
}

}  // namespace alba
