// Wire transport benchmark + CI gates: the framed socket layer
// (WireClient -> IngestServer -> StreamIngestor) under clean and hostile
// networks.
//
// The default sweep replays synthetic 1 Hz telemetry through the loopback
// transport across node counts and reports wire throughput (rows/sec),
// bytes on the wire, and windows triggered.
//
// --smoke runs the CI gate: a clean loopback replay asserting
//   * conservation — every offered row is acked and disposed exactly once
//     (watermark == ingested + typed-rejected, nothing lost);
//   * bit-identical windows — features and raw matrices match an
//     in-process StreamIngestor::push replay of the same feed;
//   * diagnosis parity — a trained RF bundle attached to the server
//     diagnoses a streamed run identically (label + bit-equal probas) to
//     DiagnosisService::diagnose on the same series in process;
//   * nonzero wire throughput.
//
// --chaos-smoke runs the resilience gate: seeded scenarios (frame
// corruption, duplicated frames, torn-frame drops with reconnect,
// slow-loris trickle, backpressure flood, server restart from snapshot)
// each asserting the conservation invariant — every sent row ends exactly
// once in {ingested, typed-rejected}, never double-ingested, never
// silently lost — plus the scenario's own expectations (typed decode
// errors, duplicate drops, timeouts, reconnects, sheds). Results (all
// modes) land in BENCH_wire.json for the CI artifact.
//
//   ./build/bench/bench_wire                 # the sweep
//   ./build/bench/bench_wire --smoke         # CI gate, exit 1 on failure
//   ./build/bench/bench_wire --chaos-smoke   # CI resilience gate
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "alba.hpp"
#include "common/rng.hpp"

using namespace alba;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool bits_equal(double a, double b) noexcept {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// Small registry so scenarios run in milliseconds of wall clock.
MetricRegistry bench_registry() {
  RegistryConfig rc;
  rc.cores = 2;
  rc.nics = 1;
  rc.filler_gauges = 1;
  return MetricRegistry(SystemKind::Volta, rc);
}

StreamIngestConfig bench_stream_config() {
  StreamIngestConfig cfg;
  cfg.window_length = 16;
  cfg.stride = 8;
  cfg.preprocess.trim_head = 2;
  cfg.preprocess.trim_tail = 2;
  return cfg;
}

// Synthetic 1 Hz rows: cumulative counters, sinusoid+noise gauges,
// occasional NaN cells (the same feed shape bench_stream_ingest uses).
std::vector<std::vector<double>> make_rows(const MetricRegistry& registry,
                                           std::size_t t_total,
                                           std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t m_count = registry.size();
  std::vector<double> level(m_count, 0.0);
  std::vector<std::vector<double>> rows(t_total,
                                        std::vector<double>(m_count));
  for (std::size_t t = 0; t < t_total; ++t) {
    for (std::size_t m = 0; m < m_count; ++m) {
      if (registry.metric(m).kind == MetricKind::Counter) {
        level[m] += rng.uniform(0.0, 5.0);
        rows[t][m] = level[m];
      } else {
        rows[t][m] = std::sin(0.3 * static_cast<double>(t) +
                              static_cast<double>(m)) +
                     0.1 * rng.normal();
      }
      if (rng.uniform() < 0.01) {
        rows[t][m] = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  return rows;
}

// ------------------------------------------------------ scenario runner ---

struct ScenarioSpec {
  std::string label;
  std::size_t nodes = 2;
  std::size_t rows_per_node = 150;
  WireChaosConfig chaos;        // zero rates = clean wire
  bool use_chaos = false;
  std::size_t disarm_at_step = 0;   // 0 = never armed
  std::size_t node_rows_per_poll = 100000;  // effectively unlimited
  double peer_timeout_ms = 10000.0;
  bool restart_server = false;      // kill + resume from snapshot midway
  std::size_t max_steps = 30000;
  // Post-run expectations (beyond conservation, which always applies).
  bool expect_window_parity = true;   // off when sheds can drop rows
  bool expect_decode_errors = false;
  bool expect_duplicates = false;
  bool expect_timeouts = false;
  bool expect_reconnects = false;
  bool expect_sheds = false;
};

struct ScenarioResult {
  std::string label;
  std::size_t nodes = 0;
  std::uint64_t offered = 0;
  std::uint64_t ingested = 0;
  std::uint64_t shed = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t bytes_sent = 0;
  std::size_t windows = 0;
  double wall_seconds = 0.0;
  double rows_per_sec = 0.0;
  std::size_t violations = 0;
};

ScenarioResult run_scenario(const ScenarioSpec& spec, std::uint64_t seed) {
  ScenarioResult res;
  res.label = spec.label;
  res.nodes = spec.nodes;
  std::size_t violations = 0;
  const auto check = [&](bool ok, const char* what) {
    if (!ok) {
      ++violations;
      std::printf("[chaos] VIOLATION in %s: %s\n", spec.label.c_str(), what);
    }
  };

  const MetricRegistry registry = bench_registry();
  const StreamIngestConfig stream_cfg = bench_stream_config();

  // Per-node feeds, plus the in-process reference replay they must match.
  std::vector<std::vector<std::vector<double>>> feeds;
  StreamIngestor reference(registry, stream_cfg);
  std::vector<std::vector<TriggeredWindow>> ref_windows(spec.nodes);
  for (std::size_t n = 0; n < spec.nodes; ++n) {
    feeds.push_back(make_rows(registry, spec.rows_per_node, seed + n));
    for (std::size_t t = 0; t < feeds[n].size(); ++t) {
      for (TriggeredWindow& w :
           reference.push(static_cast<int>(n), t, feeds[n][t])) {
        ref_windows[n].push_back(std::move(w));
      }
    }
  }

  LoopbackHub hub;
  StreamIngestor ingestor(registry, stream_cfg);
  IngestServerConfig server_cfg;
  server_cfg.node_rows_per_poll = spec.node_rows_per_poll;
  server_cfg.peer_timeout_ms = spec.peer_timeout_ms;
  auto server = std::make_unique<IngestServer>(hub.make_listener(), ingestor,
                                               server_cfg);

  std::unique_ptr<WireChaos> chaos;
  Connector connect = [&hub] { return hub.connect(); };
  if (spec.use_chaos) {
    WireChaosConfig cc = spec.chaos;
    cc.seed = seed ^ 0xC4A05u;
    chaos = std::make_unique<WireChaos>(cc);
    connect = chaos->wrap(connect);
    chaos->arm(spec.disarm_at_step > 0);
  }

  std::vector<std::unique_ptr<WireClient>> clients;
  std::vector<std::size_t> next_offer(spec.nodes, 0);
  for (std::size_t n = 0; n < spec.nodes; ++n) {
    WireClientConfig cc;
    cc.node = static_cast<std::uint32_t>(n);
    cc.metric_count = static_cast<std::uint32_t>(registry.size());
    cc.max_rows_per_step = 512;
    cc.reconnect.seed = seed + 71 * n;
    cc.reconnect.max_attempts = 1 << 20;
    cc.reconnect.initial_delay_ms = 1.0;
    cc.reconnect.max_delay_ms = 8.0;
    clients.push_back(std::make_unique<WireClient>(connect, cc));
  }

  std::vector<ServedWindow> served;
  IngestServerSnapshot snap;
  bool restarted = false;
  std::size_t server_down_until = 0;
  double now = 0.0;
  std::size_t step = 0;
  const Clock::time_point t0 = Clock::now();
  for (; step < spec.max_steps; ++step) {
    if (chaos != nullptr) {
      if (spec.disarm_at_step > 0 && step == spec.disarm_at_step) {
        chaos->arm(false);
      }
      chaos->set_now(now);
    }
    // Server restart fault: once half the first node's feed is disposed,
    // kill the server (clients see dead connections + refused reconnects),
    // then bring up a new incarnation from the snapshot.
    if (spec.restart_server && !restarted && server != nullptr &&
        server->watermark(0) >= spec.rows_per_node / 2) {
      snap = server->snapshot();
      for (ServedWindow& w : server->take_served()) {
        served.push_back(std::move(w));
      }
      server.reset();
      restarted = true;
      server_down_until = step + 25;
    }
    if (restarted && server == nullptr && step >= server_down_until) {
      server = std::make_unique<IngestServer>(hub.make_listener(), ingestor,
                                              snap, server_cfg);
    }

    bool all_idle = true;
    for (std::size_t n = 0; n < spec.nodes; ++n) {
      WireClient& c = *clients[n];
      while (next_offer[n] < feeds[n].size() &&
             c.offer(next_offer[n], static_cast<double>(next_offer[n]),
                     feeds[n][next_offer[n]])) {
        ++next_offer[n];
      }
      c.step(now);
      if (next_offer[n] < feeds[n].size() || !c.idle()) all_idle = false;
    }
    if (server != nullptr) {
      server->poll_once(now);
      for (ServedWindow& w : server->take_served()) {
        served.push_back(std::move(w));
      }
    }
    for (auto& c : clients) c->step(now);
    now += 1.0;
    if (all_idle && server != nullptr) break;
  }
  res.wall_seconds = seconds_since(t0);

  // ---- conservation: acked == offered, disposed exactly once ------------
  check(step < spec.max_steps, "scenario did not converge to idle");
  if (server == nullptr) {
    check(false, "server still down at scenario end");
    res.violations = violations;
    return res;
  }
  for (std::size_t n = 0; n < spec.nodes; ++n) {
    const WireClient& c = *clients[n];
    res.offered += c.stats().rows_offered;
    res.retransmits += c.stats().retransmits;
    res.reconnects += c.stats().disconnects;
    res.bytes_sent += c.stats().bytes_sent;
    check(c.stats().rows_offered == feeds[n].size(), "offer() refused rows");
    check(c.stats().rows_acked == c.stats().rows_offered,
          "rows offered but never acked");
    check(c.unacked() == 0, "rows left pending after convergence");
    check(server->watermark(static_cast<int>(n)) == feeds[n].size(),
          "watermark != rows offered");
    const IngestStats s = server->stats(static_cast<int>(n));
    check(s.accepted + s.duplicates + s.late_dropped +
                  s.rejected_backpressure ==
              feeds[n].size(),
          "node rows not conserved across ingest dispositions");
  }
  // Snapshot counters are cumulative across a server restart (the wire
  // stats of a restarted incarnation are not), so the per-node invariant
  // is checked there: every index below the watermark was disposed exactly
  // once, as an ingest or a typed shed.
  const IngestServerSnapshot end_snap = server->snapshot();
  for (const IngestServerSnapshot::Node& n : end_snap.nodes) {
    check(n.watermark == n.rows_pushed + n.rejected_backpressure,
          "watermark != ingested + shed");
    res.ingested += n.rows_pushed;
    res.shed += n.rejected_backpressure;
    res.decode_errors += n.decode_errors;
  }
  const WireServerStats& ws = server->wire_stats();
  res.duplicates_dropped = ws.duplicates_dropped;
  res.timeouts = ws.timeouts;
  res.windows = served.size();
  res.rows_per_sec = res.wall_seconds > 0
                         ? static_cast<double>(res.offered) / res.wall_seconds
                         : 0.0;

  // ---- parity: the wire changed nothing the ingestor could observe ------
  if (spec.expect_window_parity) {
    check(res.shed == 0, "unexpected sheds in a parity scenario");
    std::vector<std::vector<const TriggeredWindow*>> by_node(spec.nodes);
    for (const ServedWindow& w : served) {
      const auto n = static_cast<std::size_t>(w.window.node);
      if (n < spec.nodes) by_node[n].push_back(&w.window);
    }
    for (std::size_t n = 0; n < spec.nodes; ++n) {
      check(by_node[n].size() == ref_windows[n].size(),
            "window count differs from in-process replay");
      if (by_node[n].size() != ref_windows[n].size()) continue;
      for (std::size_t i = 0; i < by_node[n].size(); ++i) {
        const TriggeredWindow& a = *by_node[n][i];
        const TriggeredWindow& b = ref_windows[n][i];
        bool same = a.start_seq == b.start_seq &&
                    a.features.size() == b.features.size() &&
                    a.raw.rows() == b.raw.rows() &&
                    a.raw.cols() == b.raw.cols();
        for (std::size_t f = 0; same && f < a.features.size(); ++f) {
          same = bits_equal(a.features[f], b.features[f]);
        }
        for (std::size_t r = 0; same && r < a.raw.rows(); ++r) {
          for (std::size_t c = 0; same && c < a.raw.cols(); ++c) {
            same = bits_equal(a.raw.row(r)[c], b.raw.row(r)[c]);
          }
        }
        if (!same) {
          check(false, "window differs bitwise from in-process replay");
          break;
        }
      }
    }
  }

  // ---- scenario-specific expectations -----------------------------------
  if (spec.expect_decode_errors) {
    check(res.decode_errors > 0, "expected typed decode errors, saw none");
  }
  if (spec.expect_duplicates) {
    check(ws.duplicates_dropped > 0, "expected duplicate drops, saw none");
  }
  if (spec.expect_timeouts) {
    check(ws.timeouts > 0, "expected rx-idle timeouts, saw none");
  }
  if (spec.expect_reconnects) {
    check(res.reconnects > 0, "expected client reconnects, saw none");
  }
  if (spec.expect_sheds) {
    check(ws.rows_rejected > 0, "expected backpressure sheds, saw none");
  }
  if (spec.restart_server) {
    std::uint64_t failures = 0;
    for (const auto& c : clients) failures += c->stats().connect_failures;
    check(failures > 0, "restart scenario saw no refused connects");
  }

  res.violations = violations;
  return res;
}

void write_json(const std::vector<ScenarioResult>& rows, const char* path) {
  std::ofstream os(path);
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScenarioResult& r = rows[i];
    os << "  {\"scenario\": \"" << r.label << "\""
       << ", \"nodes\": " << r.nodes << ", \"rows\": " << r.offered
       << ", \"ingested\": " << r.ingested << ", \"shed\": " << r.shed
       << ", \"duplicates_dropped\": " << r.duplicates_dropped
       << ", \"decode_errors\": " << r.decode_errors
       << ", \"timeouts\": " << r.timeouts
       << ", \"reconnects\": " << r.reconnects
       << ", \"retransmits\": " << r.retransmits
       << ", \"windows\": " << r.windows
       << ", \"bytes_sent\": " << r.bytes_sent
       << ", \"rows_per_sec\": " << r.rows_per_sec
       << ", \"violations\": " << r.violations << "}"
       << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "]\n";
}

// ------------------------------------------------------------ CI gates ---

// Streams one generated run over the wire into a server with a trained RF
// bundle attached as its Diagnoser; the resulting diagnosis must match
// DiagnosisService::diagnose on the same series bit-for-bit.
std::size_t diagnosis_parity_gate(std::uint64_t seed) {
  std::size_t violations = 0;
  const auto check = [&violations](bool ok, const char* what) {
    if (!ok) {
      ++violations;
      std::printf("[smoke] VIOLATION: %s\n", what);
    }
  };

  std::printf("[smoke] training the parity bundle (tiny dataset)...\n");
  DatasetConfig cfg = tiny_config();
  cfg.seed = seed;
  const ExperimentData data = build_experiment_data(cfg);
  const SplitIndices split = make_split(data, cfg.test_fraction, 5);
  const PreparedSplit prepared = prepare_split(data, split, cfg.select_k);
  ParamSet params = table4_optimum("rf", false);
  params["n_estimators"] = "15";
  auto model = make_model_factory("rf", kNumClasses, 9)(params);
  model->fit(prepared.train_x, prepared.train_y);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_model_bundle(ss, make_model_bundle(data, prepared, *model));
  ss.seekg(0);
  DiagnosisService service(load_model_bundle(ss));

  const RunGenerator generator(cfg.system, cfg.registry, cfg.sim);
  RunSpec spec;
  spec.app_id = 0;
  spec.nodes = 1;
  spec.anomaly = kAnomalyTypes[0];
  spec.intensity = 1.0;
  spec.run_id = 9900;
  spec.seed = seed + 777;
  const Sample sample = generator.generate_run(spec)[0];
  const Diagnosis reference = service.diagnose(sample.series);

  // One tumbling window spanning the run makes the served window's raw
  // matrix the series itself.
  const MetricRegistry registry(cfg.system, cfg.registry);
  StreamIngestConfig stream_cfg;
  stream_cfg.window_length = sample.series.rows();
  stream_cfg.stride = sample.series.rows();
  stream_cfg.preprocess = cfg.preprocess;
  StreamIngestor ingestor(registry, stream_cfg);
  LoopbackHub hub;
  IngestServer server(hub.make_listener(), ingestor, {}, &service);

  WireClientConfig ccfg;
  ccfg.node = 0;
  ccfg.metric_count = static_cast<std::uint32_t>(registry.size());
  ccfg.reconnect.seed = seed;
  WireClient client([&hub] { return hub.connect(); }, ccfg);
  std::size_t next = 0;
  double now = 0.0;
  for (std::size_t step = 0; step < 5000; ++step) {
    while (next < sample.series.rows() &&
           client.offer(next, static_cast<double>(next),
                        sample.series.row(next))) {
      ++next;
    }
    client.step(now);
    server.poll_once(now);
    client.step(now);
    now += 1.0;
    if (next == sample.series.rows() && client.idle()) break;
  }
  const std::vector<ServedWindow> served = server.take_served();
  check(client.idle(), "parity stream did not drain");
  check(served.size() == 1, "expected exactly one tumbling window");
  if (served.size() == 1) {
    const ServedWindow& w = served[0];
    check(w.diagnosed, "server did not route the window to the diagnoser");
    check(w.result.ok(), "wire-side diagnosis returned a non-Ok status");
    check(w.result.diagnosis.label == reference.label,
          "wire-side label differs from in-process diagnose()");
    check(w.result.diagnosis.probs.size() == reference.probs.size(),
          "probability vector size mismatch");
    for (std::size_t i = 0; i < reference.probs.size() &&
                            i < w.result.diagnosis.probs.size();
         ++i) {
      if (!bits_equal(w.result.diagnosis.probs[i], reference.probs[i])) {
        check(false, "wire-side probabilities differ bitwise");
        break;
      }
    }
  }
  return violations;
}

int run_smoke(std::uint64_t seed) {
  ScenarioSpec clean;
  clean.label = "smoke/clean-loopback";
  clean.nodes = 2;
  clean.rows_per_node = 200;
  const ScenarioResult r = run_scenario(clean, seed);
  std::printf(
      "[smoke] %s: %llu rows -> %llu ingested, %zu windows, %.0f rows/s "
      "(%zu violations)\n",
      r.label.c_str(), static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.ingested), r.windows, r.rows_per_sec,
      r.violations);
  std::size_t violations = r.violations;
  if (r.rows_per_sec <= 0.0) {
    ++violations;
    std::printf("[smoke] VIOLATION: zero wire throughput\n");
  }
  violations += diagnosis_parity_gate(seed);

  write_json({r}, "BENCH_wire.json");
  std::printf("[smoke] results written to BENCH_wire.json\n");
  if (violations != 0) {
    std::printf("[smoke] FAILED: %zu violated invariants\n", violations);
    return 1;
  }
  std::printf(
      "[smoke] ok: conservation, window parity, and diagnosis parity all "
      "held\n");
  return 0;
}

int run_chaos_smoke(std::uint64_t seed) {
  std::vector<ScenarioSpec> specs;
  {
    ScenarioSpec s;
    s.label = "clean";
    specs.push_back(s);
  }
  {
    ScenarioSpec s;
    s.label = "corrupt-storm";
    s.use_chaos = true;
    s.chaos.corrupt_rate = 0.1;
    s.chaos.partial_writes = true;
    s.chaos.grace_frames = 2;
    s.disarm_at_step = 800;
    s.expect_decode_errors = true;
    s.expect_reconnects = true;
    specs.push_back(s);
  }
  {
    ScenarioSpec s;
    s.label = "duplicate-storm";
    s.use_chaos = true;
    s.chaos.duplicate_rate = 0.5;
    s.chaos.partial_writes = true;
    s.chaos.grace_frames = 1;
    s.disarm_at_step = 800;
    s.expect_duplicates = true;
    specs.push_back(s);
  }
  {
    ScenarioSpec s;
    s.label = "drop-reconnect";
    s.use_chaos = true;
    s.chaos.drop_rate = 0.15;
    s.chaos.grace_frames = 2;
    s.disarm_at_step = 800;
    s.expect_reconnects = true;
    specs.push_back(s);
  }
  {
    ScenarioSpec s;
    s.label = "slow-loris";
    s.nodes = 1;
    s.rows_per_node = 60;
    s.use_chaos = true;
    s.chaos.stall_ms = 50.0;
    s.chaos.partial_writes = true;
    s.disarm_at_step = 500;
    s.peer_timeout_ms = 40.0;
    s.expect_timeouts = true;
    s.expect_reconnects = true;
    specs.push_back(s);
  }
  {
    ScenarioSpec s;
    s.label = "backpressure-flood";
    s.nodes = 1;
    s.rows_per_node = 300;
    s.node_rows_per_poll = 4;
    s.expect_window_parity = false;
    s.expect_sheds = true;
    specs.push_back(s);
  }
  {
    ScenarioSpec s;
    s.label = "server-restart";
    s.restart_server = true;
    s.expect_reconnects = true;
    specs.push_back(s);
  }

  std::vector<ScenarioResult> results;
  std::size_t violations = 0;
  for (const ScenarioSpec& s : specs) {
    const ScenarioResult r = run_scenario(s, seed);
    std::printf(
        "[chaos] %-18s rows=%-5llu ingested=%-5llu shed=%-4llu dup=%-4llu "
        "decode_err=%-3llu timeouts=%-3llu reconnects=%-3llu "
        "retransmits=%-4llu violations=%zu\n",
        r.label.c_str(), static_cast<unsigned long long>(r.offered),
        static_cast<unsigned long long>(r.ingested),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.duplicates_dropped),
        static_cast<unsigned long long>(r.decode_errors),
        static_cast<unsigned long long>(r.timeouts),
        static_cast<unsigned long long>(r.reconnects),
        static_cast<unsigned long long>(r.retransmits), r.violations);
    violations += r.violations;
    results.push_back(r);
  }

  write_json(results, "BENCH_wire.json");
  std::printf("[chaos] results written to BENCH_wire.json\n");
  if (violations != 0) {
    std::printf("[chaos] FAILED: %zu violated invariants\n", violations);
    return 1;
  }
  std::printf("[chaos] ok: conservation held across all %zu scenarios\n",
              results.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 17;
  std::size_t rows = 10000;
  bool smoke = false;
  bool chaos_smoke = false;
  Cli cli("bench_wire",
          "Wire transport benchmark: framed socket ingestion throughput "
          "over the loopback transport (--smoke for the CI conservation + "
          "parity gate, --chaos-smoke for the network fault gate).");
  cli.flag("seed", &seed, "feed + chaos seed");
  cli.flag("rows", &rows, "rows per node in the sweep");
  cli.flag("smoke", &smoke,
           "clean replay: conservation, window parity, diagnosis parity");
  cli.flag("chaos-smoke", &chaos_smoke,
           "seeded fault scenarios, each asserting row conservation");
  cli.parse(argc, argv);
  set_log_level(LogLevel::Warn);

  if (smoke) return run_smoke(seed);
  if (chaos_smoke) return run_chaos_smoke(seed);

  TextTable table(
      {"nodes", "rows", "windows", "rows/s", "MB sent", "retransmits"});
  std::vector<ScenarioResult> results;
  for (const std::size_t nodes : {1u, 2u, 4u}) {
    ScenarioSpec s;
    s.label = strformat("sweep/nodes=%zu", nodes);
    s.nodes = nodes;
    s.rows_per_node = rows;
    s.max_steps = rows * 4 + 1000;
    const ScenarioResult r = run_scenario(s, seed);
    table.add_row({std::to_string(r.nodes),
                   std::to_string(r.offered),
                   std::to_string(r.windows),
                   strformat("%.0f", r.rows_per_sec),
                   strformat("%.1f", static_cast<double>(r.bytes_sent) / 1e6),
                   std::to_string(r.retransmits)});
    results.push_back(r);
  }
  std::printf("\nwire ingestion sweep (loopback transport)\n%s\n",
              table.render().c_str());
  write_json(results, "BENCH_wire.json");
  std::printf("results written to BENCH_wire.json\n");
  return 0;
}
