#include "core/experiments.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "anomaly/anomaly.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/proctor.hpp"
#include "ml/grid_search.hpp"
#include "ml/metrics.hpp"

namespace alba {

namespace {

std::unique_ptr<Classifier> make_base_model(const ExperimentData& data,
                                            const std::string& model,
                                            std::uint64_t seed) {
  const bool eclipse = data.config.system == SystemKind::Eclipse;
  return make_model_factory(model, kNumClasses, seed)(
      table4_optimum(model, eclipse));
}

std::unique_ptr<ProctorClassifier> make_proctor(std::uint64_t seed,
                                                int epochs) {
  ProctorConfig cfg;
  cfg.num_classes = kNumClasses;
  cfg.autoencoder.encoder_layers = {128};
  cfg.autoencoder.code_size = 32;
  cfg.autoencoder.epochs = epochs;
  cfg.head.max_iter = 150;
  return std::make_unique<ProctorClassifier>(cfg, seed);
}

// Runs one AL method on one prepared setup; returns the repeat curve and
// the query drill-down.
ActiveLearnerResult run_method(const std::string& method,
                               const ExperimentData& data,
                               const ALSetup& setup,
                               const ExperimentOptions& options,
                               std::uint64_t seed) {
  ActiveLearnerConfig cfg;
  cfg.max_queries = options.max_queries;
  cfg.num_apps = static_cast<int>(data.num_apps);
  cfg.seed = seed;

  std::unique_ptr<Classifier> model;
  if (method == "proctor") {
    cfg.strategy = QueryStrategy::Random;  // Proctor queries randomly
    auto proctor = make_proctor(seed, options.proctor_epochs);
    proctor->pretrain(setup.pool_x);
    model = std::move(proctor);
  } else {
    cfg.strategy = strategy_from_name(method);
    model = make_base_model(data, options.model, seed);
  }

  LabelOracle oracle(setup.pool_y, kNumClasses, 0.0, seed ^ 0x0A11CE);
  ActiveLearner learner(std::move(model), cfg);
  return learner.run(setup.seed, setup.pool_x, oracle, setup.pool_app,
                     setup.test_x, setup.test_y);
}

// Mean/CI helper over a vector of doubles.
std::array<double, 3> mean_ci(const std::vector<double>& v) {
  ALBA_CHECK(!v.empty());
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : v) {
    sum += x;
    sum_sq += x * x;
  }
  const double n = static_cast<double>(v.size());
  const double mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - mean * mean);
  const double half = v.size() > 1 ? 1.96 * std::sqrt(var / n) : 0.0;
  return {mean, mean - half, mean + half};
}

}  // namespace

QueryCurveResult run_query_curve_experiment(const ExperimentData& data,
                                            const ExperimentOptions& options) {
  QueryCurveResult result;
  for (const auto& method : options.methods) {
    MethodCurve mc;
    mc.method = method;
    result.methods.push_back(std::move(mc));
  }

  std::vector<double> starting;
  std::vector<double> full_f1;
  Timer timer;

  for (int r = 0; r < options.repeats; ++r) {
    const SplitIndices split =
        make_split(data, data.config.test_fraction, options.seed + 100u * r);
    const PreparedSplit prepared =
        prepare_split(data, split, data.config.select_k);
    const ALSetup setup =
        make_al_setup(prepared, options.seed * 31 + 7u * r);

    for (std::size_t m = 0; m < options.methods.size(); ++m) {
      const auto al = run_method(options.methods[m], data, setup, options,
                                 options.seed + 1000u * r + m);
      result.methods[m].repeats.push_back(al.curve);
      for (const auto& q : al.queried) {
        result.methods[m].queried_label_app.emplace_back(q.label, q.app_id);
      }
      if (m == 0) starting.push_back(al.curve.front().f1);
      ALBA_LOG(Debug) << options.methods[m] << " split " << r << ": final F1 "
                      << al.final_f1;
    }

    // Supervised reference: the model trained on the entire AL training
    // dataset (seed + every pool label revealed).
    {
      LabeledData all = setup.seed;
      for (std::size_t i = 0; i < setup.pool_x.rows(); ++i) {
        all.append(setup.pool_x.row(i), setup.pool_y[i]);
      }
      auto model = make_base_model(data, options.model, options.seed + 5u * r);
      model->fit(all.x, all.y);
      full_f1.push_back(
          macro_f1(setup.test_y, model->predict(setup.test_x), kNumClasses));
      result.al_train_size = all.size();
    }
    ALBA_LOG(Info) << "query-curve split " << (r + 1) << "/" << options.repeats
                   << " done (" << static_cast<int>(timer.seconds()) << "s)";
  }

  for (auto& mc : result.methods) {
    mc.aggregated = aggregate_curves(mc.repeats);
  }
  result.starting_f1 = mean_ci(starting)[0];
  result.full_train_f1 = mean_ci(full_f1)[0];

  // Table V's last column: 5-fold CV ceiling on the entire dataset.
  {
    const SplitIndices split =
        make_split(data, data.config.test_fraction, options.seed);
    const PreparedSplit prepared =
        prepare_split(data, split, data.config.select_k);
    // Assemble the full matrix back from train+test partitions.
    Matrix full_x = prepared.train_x;
    std::vector<int> full_y = prepared.train_y;
    for (std::size_t i = 0; i < prepared.test_x.rows(); ++i) {
      full_x.append_row(prepared.test_x.row(i));
      full_y.push_back(prepared.test_y[i]);
    }
    const auto folds = stratified_kfold(full_y, 5, options.seed ^ 0xCF);
    std::vector<double> scores;
    for (const auto& fold : folds) {
      auto model = make_base_model(data, options.model, options.seed);
      const Matrix x_train = full_x.select_rows(fold.train);
      const Matrix x_test = full_x.select_rows(fold.test);
      std::vector<int> y_train, y_test;
      for (const std::size_t i : fold.train) y_train.push_back(full_y[i]);
      for (const std::size_t i : fold.test) y_test.push_back(full_y[i]);
      model->fit(x_train, y_train);
      scores.push_back(macro_f1(y_test, model->predict(x_test), kNumClasses));
    }
    result.cv_max_f1 = mean_ci(scores)[0];
    result.full_size = full_y.size();
  }
  return result;
}

Table5Row summarize_table5(const ExperimentData& data,
                           const QueryCurveResult& result,
                           const std::string& method) {
  const MethodCurve* mc = nullptr;
  for (const auto& m : result.methods) {
    if (m.method == method) mc = &m;
  }
  ALBA_CHECK(mc != nullptr) << "method " << method << " not in result";

  Table5Row row;
  row.dataset = std::string(system_name(data.config.system));
  row.feature_extraction = std::string(extractor_name(data.config.extractor));
  row.query_strategy = method;
  // Initial seed size = one per (app, anomaly type) pair.
  row.initial_samples = data.num_apps * kNumAnomalyTypes;
  row.starting_f1 = result.starting_f1;
  row.samples_to_085 = queries_to_reach(mc->aggregated, 0.85);
  row.samples_to_090 = queries_to_reach(mc->aggregated, 0.90);
  row.samples_to_095 = queries_to_reach(mc->aggregated, 0.95);
  row.full_train_f1 = result.full_train_f1;
  row.al_train_size = result.al_train_size;
  row.cv_max_f1 = result.cv_max_f1;
  row.full_size = result.full_size;
  return row;
}

QueryDistribution run_query_distribution(const ExperimentData& data,
                                         int first_n,
                                         const ExperimentOptions& options) {
  ALBA_CHECK(first_n > 0);
  QueryDistribution dist;
  dist.app_names = data.app_names;
  dist.first_n = first_n;
  dist.app_label_counts.assign(
      data.num_apps, std::vector<double>(kNumClasses, 0.0));
  dist.label_totals.assign(kNumClasses, 0.0);
  dist.app_totals.assign(data.num_apps, 0.0);

  const std::string method =
      options.methods.empty() ? "uncertainty" : options.methods.front();
  ExperimentOptions one = options;
  one.max_queries = first_n;

  for (int r = 0; r < options.repeats; ++r) {
    const SplitIndices split =
        make_split(data, data.config.test_fraction, options.seed + 100u * r);
    const PreparedSplit prepared =
        prepare_split(data, split, data.config.select_k);
    const ALSetup setup = make_al_setup(prepared, options.seed * 31 + 7u * r);
    const auto al =
        run_method(method, data, setup, one, options.seed + 1000u * r);
    for (const auto& q : al.queried) {
      if (q.app_id >= 0 && q.app_id < static_cast<int>(data.num_apps)) {
        dist.app_label_counts[static_cast<std::size_t>(q.app_id)]
                             [static_cast<std::size_t>(q.label)] += 1.0;
        dist.app_totals[static_cast<std::size_t>(q.app_id)] += 1.0;
      }
      dist.label_totals[static_cast<std::size_t>(q.label)] += 1.0;
    }
  }

  const double inv = 1.0 / static_cast<double>(options.repeats);
  for (auto& per_app : dist.app_label_counts) {
    for (auto& v : per_app) v *= inv;
  }
  for (auto& v : dist.label_totals) v *= inv;
  for (auto& v : dist.app_totals) v *= inv;
  return dist;
}

std::vector<UnseenAppsScenario> run_unseen_apps_experiment(
    const ExperimentData& data, const std::vector<int>& train_app_counts,
    const ExperimentOptions& options) {
  std::vector<UnseenAppsScenario> scenarios;

  for (const int n_train : train_app_counts) {
    ALBA_CHECK(n_train >= 1 &&
               static_cast<std::size_t>(n_train) < data.num_apps)
        << "train app count " << n_train << " incompatible with "
        << data.num_apps << " apps";
    UnseenAppsScenario scenario;
    scenario.train_apps = n_train;
    for (const auto& method : options.methods) {
      MethodCurve mc;
      mc.method = method;
      scenario.methods.push_back(std::move(mc));
    }

    std::vector<double> starting;
    for (int r = 0; r < options.repeats; ++r) {
      // Random app subset per repeat (the paper sweeps all combinations;
      // repeats sample them).
      Rng rng(options.seed + 7919u * r + static_cast<unsigned>(n_train));
      std::vector<std::size_t> order =
          rng.sample_without_replacement(data.num_apps, data.num_apps);
      std::vector<int> seed_apps(order.begin(),
                                 order.begin() + n_train);

      const SplitIndices split =
          make_split(data, data.config.test_fraction, options.seed + 100u * r);
      const PreparedSplit prepared =
          prepare_split(data, split, data.config.select_k);
      ALSetup setup =
          make_al_setup(prepared, options.seed * 31 + 7u * r, seed_apps);

      // Test only on the unseen applications.
      std::vector<std::size_t> unseen_rows;
      for (std::size_t i = 0; i < prepared.test_x.rows(); ++i) {
        const int app = prepared.test_app[i];
        if (std::find(seed_apps.begin(), seed_apps.end(), app) ==
            seed_apps.end()) {
          unseen_rows.push_back(i);
        }
      }
      ALBA_CHECK(!unseen_rows.empty());
      setup.test_x = prepared.test_x.select_rows(unseen_rows);
      std::vector<int> test_y;
      for (const std::size_t i : unseen_rows) {
        test_y.push_back(prepared.test_y[i]);
      }
      setup.test_y = std::move(test_y);

      for (std::size_t m = 0; m < options.methods.size(); ++m) {
        const auto al = run_method(options.methods[m], data, setup, options,
                                   options.seed + 1000u * r + m);
        scenario.methods[m].repeats.push_back(al.curve);
        if (m == 0) starting.push_back(al.curve.front().f1);
      }
    }

    for (auto& mc : scenario.methods) {
      mc.aggregated = aggregate_curves(mc.repeats);
    }
    scenario.starting_f1 = mean_ci(starting)[0];
    scenarios.push_back(std::move(scenario));
    ALBA_LOG(Info) << "unseen-apps scenario with " << n_train
                   << " training apps done";
  }
  return scenarios;
}

RobustnessResult run_robustness_experiment(const ExperimentData& data,
                                           const std::vector<int>& train_counts,
                                           int test_apps,
                                           const ExperimentOptions& options) {
  ALBA_CHECK(test_apps >= 1 &&
             static_cast<std::size_t>(test_apps) < data.num_apps);
  RobustnessResult result;

  // Per train-count metric samples across repeats.
  std::vector<std::vector<double>> f1(train_counts.size());
  std::vector<std::vector<double>> far(train_counts.size());
  std::vector<std::vector<double>> amr(train_counts.size());

  for (int r = 0; r < options.repeats; ++r) {
    Rng rng(options.seed + 7529u * r);
    const std::vector<std::size_t> order =
        rng.sample_without_replacement(data.num_apps, data.num_apps);
    const std::vector<std::size_t> test_set(order.begin(),
                                            order.begin() + test_apps);
    const std::vector<std::size_t> train_candidates(order.begin() + test_apps,
                                                    order.end());

    const SplitIndices split =
        make_split(data, data.config.test_fraction, options.seed + 100u * r);
    const PreparedSplit prepared =
        prepare_split(data, split, data.config.select_k);

    // Fixed test rows: test partition restricted to the held-out apps.
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < prepared.test_x.rows(); ++i) {
      const auto app = static_cast<std::size_t>(prepared.test_app[i]);
      if (std::find(test_set.begin(), test_set.end(), app) != test_set.end()) {
        test_rows.push_back(i);
      }
    }
    ALBA_CHECK(!test_rows.empty());
    const Matrix test_x = prepared.test_x.select_rows(test_rows);
    std::vector<int> test_y;
    for (const std::size_t i : test_rows) test_y.push_back(prepared.test_y[i]);

    for (std::size_t c = 0; c < train_counts.size(); ++c) {
      const auto n_train = static_cast<std::size_t>(train_counts[c]);
      ALBA_CHECK(n_train <= train_candidates.size())
          << "cannot train on " << n_train << " of "
          << train_candidates.size() << " candidate apps";
      const std::vector<std::size_t> train_apps(
          train_candidates.begin(), train_candidates.begin() + n_train);

      std::vector<std::size_t> train_rows;
      for (std::size_t i = 0; i < prepared.train_x.rows(); ++i) {
        const auto app = static_cast<std::size_t>(prepared.train_app[i]);
        if (std::find(train_apps.begin(), train_apps.end(), app) !=
            train_apps.end()) {
          train_rows.push_back(i);
        }
      }
      ALBA_CHECK(!train_rows.empty());
      const Matrix train_x = prepared.train_x.select_rows(train_rows);
      std::vector<int> train_y;
      for (const std::size_t i : train_rows) {
        train_y.push_back(prepared.train_y[i]);
      }

      auto model = make_base_model(data, options.model,
                                   options.seed + 100u * r + c);
      model->fit(train_x, train_y);
      const EvalResult ev =
          evaluate(test_y, model->predict(test_x), kNumClasses);
      f1[c].push_back(ev.macro_f1);
      far[c].push_back(ev.false_alarm_rate);
      amr[c].push_back(ev.anomaly_miss_rate);
    }
    ALBA_LOG(Info) << "robustness repeat " << (r + 1) << "/" << options.repeats
                   << " done";
  }

  for (std::size_t c = 0; c < train_counts.size(); ++c) {
    RobustnessPoint p;
    p.train_apps = train_counts[c];
    const auto f = mean_ci(f1[c]);
    p.f1_mean = f[0];
    p.f1_lo = f[1];
    p.f1_hi = f[2];
    const auto fa = mean_ci(far[c]);
    p.far_mean = fa[0];
    p.far_lo = fa[1];
    p.far_hi = fa[2];
    const auto am = mean_ci(amr[c]);
    p.amr_mean = am[0];
    p.amr_lo = am[1];
    p.amr_hi = am[2];
    result.points.push_back(p);
  }

  // Reference: 5-fold CV with all applications present (the dashed lines).
  {
    const SplitIndices split =
        make_split(data, data.config.test_fraction, options.seed);
    const PreparedSplit prepared =
        prepare_split(data, split, data.config.select_k);
    Matrix full_x = prepared.train_x;
    std::vector<int> full_y = prepared.train_y;
    for (std::size_t i = 0; i < prepared.test_x.rows(); ++i) {
      full_x.append_row(prepared.test_x.row(i));
      full_y.push_back(prepared.test_y[i]);
    }
    const auto folds = stratified_kfold(full_y, 5, options.seed ^ 0xCF);
    std::vector<double> cf1, cfar, camr;
    for (const auto& fold : folds) {
      auto model = make_base_model(data, options.model, options.seed);
      const Matrix x_train = full_x.select_rows(fold.train);
      const Matrix x_test = full_x.select_rows(fold.test);
      std::vector<int> y_train, y_test;
      for (const std::size_t i : fold.train) y_train.push_back(full_y[i]);
      for (const std::size_t i : fold.test) y_test.push_back(full_y[i]);
      model->fit(x_train, y_train);
      const EvalResult ev =
          evaluate(y_test, model->predict(x_test), kNumClasses);
      cf1.push_back(ev.macro_f1);
      cfar.push_back(ev.false_alarm_rate);
      camr.push_back(ev.anomaly_miss_rate);
    }
    result.cv_f1 = mean_ci(cf1)[0];
    result.cv_far = mean_ci(cfar)[0];
    result.cv_amr = mean_ci(camr)[0];
  }
  return result;
}

UnseenInputsResult run_unseen_inputs_experiment(
    const ExperimentData& data, const ExperimentOptions& options) {
  UnseenInputsResult result;
  for (const auto& method : options.methods) {
    MethodCurve mc;
    mc.method = method;
    result.methods.push_back(std::move(mc));
  }

  std::vector<double> starting_f1;
  std::vector<double> starting_far;
  std::vector<double> full_f1;

  const auto decks = static_cast<int>(data.inputs_per_app);
  int repeat = 0;
  for (int deck = 0; deck < decks && repeat < options.repeats; ++deck) {
    // Train on every other deck; test on the held-out deck entirely.
    SplitIndices split;
    for (std::size_t i = 0; i < data.features.num_samples(); ++i) {
      (data.features.input_ids[i] == deck ? split.test : split.train)
          .push_back(i);
    }
    ALBA_CHECK(!split.train.empty() && !split.test.empty());
    const PreparedSplit prepared =
        prepare_split(data, split, data.config.select_k);
    const ALSetup setup =
        make_al_setup(prepared, options.seed * 31 + 7u * deck);

    for (std::size_t m = 0; m < options.methods.size(); ++m) {
      const auto al = run_method(options.methods[m], data, setup, options,
                                 options.seed + 1000u * deck + m);
      result.methods[m].repeats.push_back(al.curve);
      if (m == 0) {
        starting_f1.push_back(al.curve.front().f1);
        starting_far.push_back(al.curve.front().false_alarm_rate);
      }
    }

    // Reference: model trained on the whole training side.
    {
      LabeledData all = setup.seed;
      for (std::size_t i = 0; i < setup.pool_x.rows(); ++i) {
        all.append(setup.pool_x.row(i), setup.pool_y[i]);
      }
      auto model = make_base_model(data, options.model, options.seed + deck);
      model->fit(all.x, all.y);
      full_f1.push_back(
          macro_f1(setup.test_y, model->predict(setup.test_x), kNumClasses));
    }
    ++repeat;
    ALBA_LOG(Info) << "unseen-inputs deck " << deck << " done";
  }

  for (auto& mc : result.methods) {
    mc.aggregated = aggregate_curves(mc.repeats);
  }
  result.starting_f1 = mean_ci(starting_f1)[0];
  result.starting_far = mean_ci(starting_far)[0];
  result.full_train_f1 = mean_ci(full_f1)[0];
  return result;
}

}  // namespace alba
