// Welch's method for power spectral density estimation (Welch 1967), the
// same estimator TSFRESH's spkt_welch_density feature uses. Hann-windowed
// overlapping segments, periodograms averaged.
#pragma once

#include <span>
#include <vector>

namespace alba::stats {

struct WelchResult {
  std::vector<double> frequencies;  // cycles per sample, [0, 0.5]
  std::vector<double> power;        // density at each frequency
};

/// Computes the Welch PSD with Hann window. `segment_length` is clamped to
/// the signal length and rounded down to a power of two; overlap is 50%.
/// fs is the sampling rate (1 Hz for LDMS-style telemetry).
WelchResult welch_psd(std::span<const double> signal,
                      std::size_t segment_length = 256, double fs = 1.0);

/// Spectral centroid of a PSD (power-weighted mean frequency).
double spectral_centroid(const WelchResult& psd) noexcept;

/// Frequency bin with maximal power (excluding DC).
double dominant_frequency(const WelchResult& psd) noexcept;

}  // namespace alba::stats
