file(REMOVE_RECURSE
  "CMakeFiles/alba_telemetry.dir/telemetry/app_model.cpp.o"
  "CMakeFiles/alba_telemetry.dir/telemetry/app_model.cpp.o.d"
  "CMakeFiles/alba_telemetry.dir/telemetry/metric.cpp.o"
  "CMakeFiles/alba_telemetry.dir/telemetry/metric.cpp.o.d"
  "CMakeFiles/alba_telemetry.dir/telemetry/node_sim.cpp.o"
  "CMakeFiles/alba_telemetry.dir/telemetry/node_sim.cpp.o.d"
  "CMakeFiles/alba_telemetry.dir/telemetry/registry.cpp.o"
  "CMakeFiles/alba_telemetry.dir/telemetry/registry.cpp.o.d"
  "CMakeFiles/alba_telemetry.dir/telemetry/run_generator.cpp.o"
  "CMakeFiles/alba_telemetry.dir/telemetry/run_generator.cpp.o.d"
  "libalba_telemetry.a"
  "libalba_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alba_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
