// HPAS-like anomaly injection.
//
// The real HPAS runs an interfering process on a compute node; its effect is
// visible only through the node's telemetry. Our simulator represents the
// instantaneous resource state of a node as a `NodeLoad` and derives every
// telemetry metric from it, so injectors perturb the NodeLoad directly with
// the same per-subsystem footprint the HPAS anomalies produce:
//
//   cpuoccupy — steals user-CPU cycles and raises power; the victim
//               application's communication/IO throughput drops because it
//               is descheduled part of the time.
//   cachecopy — repeatedly reads+writes a cache-sized buffer: LLC miss rate
//               and write-back traffic jump, small CPU cost.
//   membw     — streams uncached writes: memory bandwidth saturates, misses
//               rise, the victim's effective compute rate drops.
//   memleak   — allocates and touches memory at a steady rate: monotonic
//               growth of used memory (the telltale long-run trend), minor
//               paging activity late in the run.
//   dial      — periodically reduces effective CPU frequency; every
//               rate-derived metric breathes with the dial period. At low
//               intensity this is nearly invisible — matching the paper's
//               finding that dial is the most-confused anomaly.
#pragma once

#include <memory>

#include "anomaly/anomaly.hpp"
#include "common/rng.hpp"

namespace alba {

/// Instantaneous resource state of one simulated compute node. Utilization
/// channels are fractions in [0, 1]; sizes/rates are in natural units.
struct NodeLoad {
  double cpu_user = 0.0;        // fraction of CPU time in user mode
  double cpu_system = 0.0;      // fraction in system mode
  double cpu_freq = 1.0;        // effective frequency multiplier (0..1]
  double cache_miss_rate = 0.0; // LLC miss ratio (0..1)
  double mem_used_gb = 0.0;     // resident memory in GB
  double mem_bw_util = 0.0;     // memory bandwidth utilization (0..1)
  double net_tx_rate = 0.0;     // packets/s transmitted
  double net_rx_rate = 0.0;     // packets/s received
  double io_read_rate = 0.0;    // filesystem read ops/s
  double io_write_rate = 0.0;   // filesystem write ops/s
  double power_watts = 0.0;     // node power draw

  /// CPU idle fraction implied by user+system (clamped at 0).
  double cpu_idle() const noexcept {
    const double busy = cpu_user + cpu_system;
    return busy >= 1.0 ? 0.0 : 1.0 - busy;
  }
};

/// Context passed to injectors each timestep.
struct InjectionContext {
  double t_seconds = 0.0;   // time since application start
  double t_frac = 0.0;      // fraction of total run elapsed (0..1)
  double mem_capacity_gb = 64.0;
};

/// One synthetic anomaly with a fixed intensity, applied timestep-by-
/// timestep to the node that hosts it. Stateless across runs; any
/// within-run state (e.g. the leak accumulator) is keyed off the context.
class AnomalyInjector {
 public:
  virtual ~AnomalyInjector() = default;

  virtual AnomalyType type() const noexcept = 0;
  double intensity() const noexcept { return intensity_; }

  /// Perturbs `load` in place. `rng` provides per-step jitter (each node
  /// simulation owns an rng stream, so injection stays deterministic).
  virtual void apply(const InjectionContext& ctx, NodeLoad& load,
                     Rng& rng) const = 0;

 protected:
  explicit AnomalyInjector(double intensity);

  /// Telemetry-visible effect size. HPAS intensity knobs (thread counts,
  /// buffer sizes) do not map linearly onto metric deviations — even a 2%
  /// anomaly leaves a clear footprint in sensitive counters — so injectors
  /// scale their footprint by intensity^(1/4).
  double effect() const noexcept { return effect_; }

  double intensity_;
  double effect_;
};

/// Factory for a given type and intensity in (0, 1]. Healthy is rejected —
/// absence of an injector is the healthy case.
std::unique_ptr<AnomalyInjector> make_injector(AnomalyType type,
                                               double intensity);

/// The intensity grid used on Volta in the paper: 2, 5, 10, 20, 50, 100 %.
std::vector<double> volta_intensities();

/// The reduced per-type settings used on Eclipse (2-3 per type).
std::vector<double> eclipse_intensities(AnomalyType type);

}  // namespace alba
