#include "preprocess/split.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace alba {

std::vector<std::size_t> class_counts(std::span<const int> labels) {
  int max_label = -1;
  for (const int y : labels) {
    ALBA_CHECK(y >= 0) << "negative class label " << y;
    max_label = std::max(max_label, y);
  }
  std::vector<std::size_t> counts(static_cast<std::size_t>(max_label + 1), 0);
  for (const int y : labels) ++counts[static_cast<std::size_t>(y)];
  return counts;
}

namespace {
// Indices grouped by class, each group shuffled.
std::vector<std::vector<std::size_t>> shuffled_groups(
    std::span<const int> labels, Rng& rng) {
  const auto counts = class_counts(labels);
  std::vector<std::vector<std::size_t>> groups(counts.size());
  for (std::size_t c = 0; c < counts.size(); ++c) groups[c].reserve(counts[c]);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    groups[static_cast<std::size_t>(labels[i])].push_back(i);
  }
  for (auto& g : groups) rng.shuffle(g);
  return groups;
}
}  // namespace

SplitIndices stratified_split(std::span<const int> labels, double test_fraction,
                              std::uint64_t seed) {
  ALBA_CHECK(test_fraction > 0.0 && test_fraction < 1.0)
      << "test_fraction must be in (0, 1), got " << test_fraction;
  ALBA_CHECK(!labels.empty());

  Rng rng(seed);
  SplitIndices split;
  for (auto& group : shuffled_groups(labels, rng)) {
    if (group.empty()) continue;
    std::size_t n_test = static_cast<std::size_t>(
        std::round(test_fraction * static_cast<double>(group.size())));
    if (group.size() >= 2) n_test = std::max<std::size_t>(1, n_test);
    n_test = std::min(n_test, group.size() - (group.size() >= 2 ? 1 : 0));
    for (std::size_t i = 0; i < group.size(); ++i) {
      (i < n_test ? split.test : split.train).push_back(group[i]);
    }
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

std::vector<SplitIndices> stratified_kfold(std::span<const int> labels,
                                           std::size_t folds,
                                           std::uint64_t seed) {
  ALBA_CHECK(folds >= 2) << "k-fold needs k >= 2";
  ALBA_CHECK(labels.size() >= folds);

  Rng rng(seed);
  const auto groups = shuffled_groups(labels, rng);

  // Assign each class's samples round-robin to folds.
  std::vector<std::vector<std::size_t>> fold_test(folds);
  for (const auto& group : groups) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      fold_test[i % folds].push_back(group[i]);
    }
  }

  std::vector<SplitIndices> out(folds);
  std::vector<int> fold_of(labels.size(), -1);
  for (std::size_t f = 0; f < folds; ++f) {
    for (const std::size_t i : fold_test[f]) fold_of[i] = static_cast<int>(f);
  }
  for (std::size_t f = 0; f < folds; ++f) {
    for (std::size_t i = 0; i < labels.size(); ++i) {
      (fold_of[i] == static_cast<int>(f) ? out[f].test : out[f].train)
          .push_back(i);
    }
  }
  return out;
}

}  // namespace alba
