#include "telemetry/run_generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace alba {

RunGenerator::RunGenerator(SystemKind kind, RegistryConfig registry_config,
                           NodeSimConfig sim_config, FaultConfig faults)
    : kind_(kind),
      registry_(kind, registry_config),
      apps_(applications_for(kind)),
      simulator_(registry_, sim_config),
      injector_(faults) {}

std::vector<Sample> RunGenerator::generate_run(const RunSpec& spec) const {
  ALBA_CHECK(spec.app_id >= 0 &&
             static_cast<std::size_t>(spec.app_id) < apps_.size())
      << "app_id " << spec.app_id << " out of range";
  ALBA_CHECK(spec.nodes >= 1);
  ALBA_CHECK(spec.anomaly == AnomalyType::Healthy || spec.intensity > 0.0)
      << "anomalous run needs a positive intensity";

  const AppSignature& app = apps_[static_cast<std::size_t>(spec.app_id)];
  const InputDeck deck = scale_deck_for_nodes(
      make_input_deck(spec.app_id, spec.input_id), spec.nodes);

  std::unique_ptr<AnomalyInjector> injector;
  if (spec.anomaly != AnomalyType::Healthy) {
    injector = make_injector(spec.anomaly, spec.intensity);
  }

  Rng run_rng(spec.seed);
  std::vector<Sample> samples;
  samples.reserve(static_cast<std::size_t>(spec.nodes));
  for (int node = 0; node < spec.nodes; ++node) {
    Rng node_rng = run_rng.split(static_cast<std::uint64_t>(node) + 1);
    const AnomalyInjector* inj = (node == 0) ? injector.get() : nullptr;
    Sample s;
    s.series = simulator_.simulate(app, deck, node, inj, node_rng);
    if (injector_.config().enabled()) {
      // Dedicated stream per (run, node), split from the same parent as the
      // simulation streams (split never advances the parent), so the clean
      // series above stays bit-identical whether or not faults are on.
      Rng fault_rng =
          run_rng.split(0xFA017EC0ULL + static_cast<std::uint64_t>(node));
      s.faults = injector_.apply(s.series, registry_, fault_rng);
    }
    s.app_id = spec.app_id;
    s.input_id = spec.input_id;
    s.node_index = node;
    s.run_id = spec.run_id;
    s.label = (node == 0) ? spec.anomaly : AnomalyType::Healthy;
    samples.push_back(std::move(s));
  }
  return samples;
}

std::vector<Sample> RunGenerator::generate(
    const std::vector<RunSpec>& specs) const {
  std::vector<std::vector<Sample>> per_run(specs.size());
  parallel_for(specs.size(),
               [&](std::size_t i) { per_run[i] = generate_run(specs[i]); });
  std::vector<Sample> out;
  for (auto& run : per_run) {
    for (auto& s : run) out.push_back(std::move(s));
  }
  return out;
}

std::vector<RunSpec> make_collection_specs(SystemKind kind,
                                           std::size_t num_apps,
                                           std::size_t inputs_per_app,
                                           const CollectionPlan& plan) {
  ALBA_CHECK(num_apps > 0 && inputs_per_app > 0);
  ALBA_CHECK(plan.nodes_per_run >= 1 && plan.anomaly_runs >= 1);
  ALBA_CHECK(plan.anomaly_ratio > 0.0 && plan.anomaly_ratio <= 1.0);

  Rng rng(plan.seed);
  const std::vector<int> node_counts =
      plan.node_counts.empty() ? std::vector<int>{plan.nodes_per_run}
                               : plan.node_counts;
  for (const int n : node_counts) ALBA_CHECK(n >= 1);
  double mean_nodes = 0.0;
  for (const int n : node_counts) {
    mean_nodes += static_cast<double>(n) / static_cast<double>(node_counts.size());
  }

  std::vector<RunSpec> specs;
  int run_id = 0;
  std::size_t anomalous_samples = 0;
  std::size_t healthy_samples = 0;

  for (std::size_t app = 0; app < num_apps; ++app) {
    for (std::size_t input = 0; input < inputs_per_app; ++input) {
      for (const AnomalyType type : kAnomalyTypes) {
        // Pick the intensity settings for this (system, type).
        std::vector<double> grid = (kind == SystemKind::Volta)
                                       ? volta_intensities()
                                       : eclipse_intensities(type);
        if (plan.intensities_per_type > 0 &&
            static_cast<std::size_t>(plan.intensities_per_type) < grid.size()) {
          // Deterministic subsample, biased to span the grid (first pick is
          // near the low end, last near the high end).
          std::vector<double> chosen;
          const std::size_t k =
              static_cast<std::size_t>(plan.intensities_per_type);
          for (std::size_t i = 0; i < k; ++i) {
            const std::size_t idx = (i * (grid.size() - 1)) / (k > 1 ? k - 1 : 1);
            chosen.push_back(grid[idx]);
          }
          grid = std::move(chosen);
        }
        for (const double intensity : grid) {
          for (const int nodes : node_counts) {
            for (int r = 0; r < plan.anomaly_runs; ++r) {
              RunSpec spec;
              spec.app_id = static_cast<int>(app);
              spec.input_id = static_cast<int>(input);
              spec.nodes = nodes;
              spec.anomaly = type;
              spec.intensity = intensity;
              spec.run_id = run_id++;
              spec.seed = rng.next();
              specs.push_back(spec);
              anomalous_samples += 1;
              healthy_samples += static_cast<std::size_t>(nodes - 1);
            }
          }
        }
      }
    }
  }

  // Healthy-only runs to dilute the anomaly share down to the target ratio.
  const double target =
      static_cast<double>(anomalous_samples) / plan.anomaly_ratio;
  const double needed_healthy =
      std::max(0.0, target - static_cast<double>(anomalous_samples) -
                        static_cast<double>(healthy_samples));
  const std::size_t healthy_runs =
      static_cast<std::size_t>(std::ceil(needed_healthy / mean_nodes));

  for (std::size_t i = 0; i < healthy_runs; ++i) {
    RunSpec spec;
    spec.app_id = static_cast<int>(i % num_apps);
    spec.input_id = static_cast<int>((i / num_apps) % inputs_per_app);
    spec.nodes = node_counts[i % node_counts.size()];
    spec.anomaly = AnomalyType::Healthy;
    spec.intensity = 0.0;
    spec.run_id = run_id++;
    spec.seed = rng.next();
    specs.push_back(spec);
  }
  return specs;
}

}  // namespace alba
