// Telemetry metric model.
//
// LDMS exposes hundreds of numeric metrics per node drawn from procfs,
// netlink, Lustre and Cray counters. Each simulated metric is declared as a
// MetricDef: which subsystem it belongs to, whether it is a gauge (sampled
// value, e.g. MemFree) or a cumulative counter (monotone, e.g.
// rx_packets — the pipeline later differences these, exactly as the paper
// does), which NodeLoad channel drives it, and its scale/offset/noise.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace alba {

enum class Subsystem {
  Meminfo,   // /proc/meminfo-style gauges
  Vmstat,    // /proc/vmstat-style counters
  CpuCore,   // per-core user/system/idle jiffies (counters)
  Network,   // per-NIC packet/byte counters
  Lustre,    // shared-filesystem operation counters
  Cray,      // Cray power / performance counters
};

std::string_view subsystem_name(Subsystem s) noexcept;

enum class MetricKind {
  Gauge,    // instantaneous value
  Counter,  // cumulative, monotonically increasing
};

/// Which NodeLoad channel the metric is derived from.
enum class LoadChannel {
  CpuUser,
  CpuSystem,
  CpuIdle,
  CpuFreq,
  CacheMiss,
  MemUsed,
  MemFree,
  MemBw,
  NetTx,
  NetRx,
  IoRead,
  IoWrite,
  Power,
  Constant,  // calibration-only metric (pure noise around offset)
};

struct MetricDef {
  std::string name;
  Subsystem subsystem = Subsystem::Meminfo;
  MetricKind kind = MetricKind::Gauge;
  LoadChannel channel = LoadChannel::Constant;
  double scale = 1.0;        // value (or rate for counters) per unit channel
  double offset = 0.0;       // baseline value / baseline rate
  double noise_frac = 0.02;  // multiplicative noise sigma on the raw value
  // For CpuCore metrics: which core this metric reports. Cores receive
  // slightly different shares of the node load (weight drawn per core).
  int core = -1;
};

}  // namespace alba
