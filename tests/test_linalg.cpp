// Unit + property tests for the dense matrix type and kernels.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/ops.hpp"

namespace alba {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-2.0, 2.0);
  }
  return m;
}

Matrix naive_gemm(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < a.cols(); ++p) acc += a(i, p) * b(p, j);
      out(i, j) = acc;
    }
  }
  return out;
}

TEST(Matrix, ConstructionAndFill) {
  Matrix m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_DOUBLE_EQ(m(2, 3), 1.5);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, RowSpanIsContiguousAndMutable) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
  EXPECT_EQ(row.size(), 3u);
}

TEST(Matrix, AppendRowFixesWidth) {
  Matrix m;
  m.append_row(std::vector<double>{1, 2, 3});
  EXPECT_EQ(m.cols(), 3u);
  m.append_row(std::vector<double>{4, 5, 6});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_THROW(m.append_row(std::vector<double>{1, 2}), Error);
}

TEST(Matrix, SelectRows) {
  Matrix m = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const std::vector<std::size_t> idx{2, 0, 2};
  const Matrix s = m.select_rows(idx);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(s(2, 0), 5.0);
  const std::vector<std::size_t> bad{3};
  EXPECT_THROW(m.select_rows(bad), Error);
}

TEST(Matrix, SelectCols) {
  Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const std::vector<std::size_t> idx{2, 0};
  const Matrix s = m.select_cols(idx);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 4.0);
}

TEST(Matrix, ColExtraction) {
  Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  const auto c = m.col(1);
  EXPECT_EQ(c, (std::vector<double>{2, 4}));
  EXPECT_THROW(m.col(2), Error);
}

TEST(Matrix, Transposed) {
  Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Ops, GemmMatchesNaive) {
  Rng rng(1);
  const Matrix a = random_matrix(17, 9, rng);
  const Matrix b = random_matrix(9, 13, rng);
  Matrix out;
  gemm(a, b, out);
  const Matrix ref = naive_gemm(a, b);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t j = 0; j < out.cols(); ++j) {
      EXPECT_NEAR(out(i, j), ref(i, j), 1e-12);
    }
  }
}

TEST(Ops, GemmLargeParallelMatchesNaive) {
  Rng rng(2);
  const Matrix a = random_matrix(130, 20, rng);
  const Matrix b = random_matrix(20, 15, rng);
  Matrix out;
  gemm(a, b, out);
  const Matrix ref = naive_gemm(a, b);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t j = 0; j < out.cols(); ++j) {
      EXPECT_NEAR(out(i, j), ref(i, j), 1e-12);
    }
  }
}

TEST(Ops, GemmShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(4, 2);
  Matrix out;
  EXPECT_THROW(gemm(a, b, out), Error);
}

TEST(Ops, GemmBtEqualsGemmWithTranspose) {
  Rng rng(3);
  const Matrix a = random_matrix(8, 5, rng);
  const Matrix b = random_matrix(7, 5, rng);  // represents Bᵀ
  Matrix out1;
  gemm_bt(a, b, out1);
  Matrix out2;
  gemm(a, b.transposed(), out2);
  for (std::size_t i = 0; i < out1.rows(); ++i) {
    for (std::size_t j = 0; j < out1.cols(); ++j) {
      EXPECT_NEAR(out1(i, j), out2(i, j), 1e-12);
    }
  }
}

TEST(Ops, GemmAtEqualsTransposedGemm) {
  Rng rng(4);
  const Matrix a = random_matrix(10, 4, rng);
  const Matrix b = random_matrix(10, 6, rng);
  Matrix out1;
  gemm_at(a, b, out1);
  Matrix out2;
  gemm(a.transposed(), b, out2);
  for (std::size_t i = 0; i < out1.rows(); ++i) {
    for (std::size_t j = 0; j < out1.cols(); ++j) {
      EXPECT_NEAR(out1(i, j), out2(i, j), 1e-12);
    }
  }
}

TEST(Ops, GemvMatchesGemm) {
  Rng rng(5);
  const Matrix m = random_matrix(6, 4, rng);
  std::vector<double> x{1.0, -1.0, 0.5, 2.0};
  std::vector<double> y(6);
  gemv(m, x, y);
  for (std::size_t r = 0; r < 6; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < 4; ++c) acc += m(r, c) * x[c];
    EXPECT_NEAR(y[r], acc, 1e-12);
  }
}

TEST(Ops, DotAxpyNorms) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  EXPECT_DOUBLE_EQ(l1_norm(a), 6.0);
  EXPECT_NEAR(l2_norm(a), std::sqrt(14.0), 1e-12);
}

TEST(Ops, SoftmaxSumsToOne) {
  std::vector<double> v{1.0, 2.0, 3.0};
  softmax(v);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
  EXPECT_GT(v[2], v[1]);
  EXPECT_GT(v[1], v[0]);
}

TEST(Ops, SoftmaxNumericallyStableForLargeInputs) {
  std::vector<double> v{1000.0, 1001.0};
  softmax(v);
  EXPECT_NEAR(v[0] + v[1], 1.0, 1e-12);
  EXPECT_GT(v[1], v[0]);
  EXPECT_FALSE(std::isnan(v[0]));
}

// Property sweep: softmax rows always sum to 1 across random matrices.
class SoftmaxProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoftmaxProperty, RowsSumToOne) {
  Rng rng(GetParam());
  Matrix m = random_matrix(11, 7, rng);
  softmax_rows(m);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double sum = 0.0;
    for (const double p : m.row(i)) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace alba
