// Service-level chaos injection, the serving-layer sibling of
// telemetry/faults: where TelemetryFaultInjector degrades the *data*
// a collector delivers, ServingChaos degrades the *service* itself —
// feature extractions that stall (a node's metric store hanging) or throw
// (a window the pipeline chokes on), and model-bundle pushes that arrive
// poisoned (truncated upload, bit rot, wrong file). Injection is seeded
// and per-event deterministic: event k of a run draws from a stream
// derived from (seed, k), so a chaos schedule replays exactly regardless
// of which thread happens to serve which window.
//
// The injector attaches to a DiagnosisService through
// ServingConfig::extraction_hook; ServiceHost then sees the injected
// failures exactly as it would see real ones (typed Failed results, late
// completions, health-window error spikes). bench_serving --chaos-smoke
// and tests/test_service_host.cpp are the consumers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace alba {

/// Rates are per-extraction probabilities. All-zero (the default) means
/// the hook does nothing and the serving path behaves exactly as without
/// the harness.
struct ChaosConfig {
  // Probability one extraction sleeps for slow_extract_ms before running
  // (a stalled metric store; the request still completes, late).
  double slow_extract_rate = 0.0;
  double slow_extract_ms = 20.0;
  // Probability one extraction throws alba::Error (an unparseable window;
  // the request fails with a typed, retriable error).
  double extract_fail_rate = 0.0;
  std::uint64_t seed = 0;

  bool enabled() const noexcept {
    return slow_extract_rate > 0.0 || extract_fail_rate > 0.0;
  }
};

/// Seeded injector of slow and failing feature extractions. Thread-safe:
/// any number of service threads may run the hook concurrently; each
/// extraction consumes one event index from an atomic counter and derives
/// its decisions from (seed, index) alone.
class ServingChaos {
 public:
  /// Validates rates in [0, 1] and a non-negative delay; throws
  /// alba::Error otherwise.
  explicit ServingChaos(ChaosConfig config);

  const ChaosConfig& config() const noexcept { return config_; }

  /// The extraction hook to install as ServingConfig::extraction_hook.
  /// The returned callable references this injector, which must outlive
  /// every service it is attached to.
  std::function<void(const Matrix&)> hook();

  /// Events injected so far (monotonic; safe to read concurrently).
  std::uint64_t extractions_seen() const noexcept;
  std::uint64_t slowdowns_injected() const noexcept;
  std::uint64_t failures_injected() const noexcept;

 private:
  void on_extraction(const Matrix& window);

  ChaosConfig config_;
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> slowdowns_{0};
  std::atomic<std::uint64_t> failures_{0};
};

/// Fleet-scale chaos: degrade a *subset* of replicas while the rest stay
/// healthy — the scenario ServingFleet's ejection/failover machinery
/// exists for. Each targeted replica gets its own ServingChaos whose seed
/// derives from (seed, replica id), so replica r's fault schedule is the
/// same regardless of fleet size, traffic interleaving, or which other
/// replicas are targeted.
struct FleetChaosConfig {
  // Rates/delay applied to every targeted replica. base.seed is ignored;
  // per-replica seeds derive from FleetChaosConfig::seed instead.
  ChaosConfig base;
  // Replica ids to degrade; empty targets every replica.
  std::vector<std::size_t> targets;
  std::uint64_t seed = 0;
};

/// Owns one seeded ServingChaos per targeted replica and hands out
/// per-replica extraction hooks (empty for untargeted replicas, so the
/// service skips the hook call entirely). Injection can be toggled at
/// runtime with set_enabled — hooks survive hot reloads (the reloaded
/// service inherits the extraction hook), so a test can run a clean
/// baseline, push a canary, then switch faults on for the canary only.
class FleetChaos {
 public:
  /// Validates rates via ServingChaos and every target against
  /// `replica_count`; throws alba::Error otherwise.
  FleetChaos(FleetChaosConfig config, std::size_t replica_count);

  const FleetChaosConfig& config() const noexcept { return config_; }

  /// True if `replica` has an injector attached.
  bool targets_replica(std::size_t replica) const;

  /// Extraction hook for one replica's ServingConfig::extraction_hook;
  /// empty (falsy) std::function for untargeted replicas. The callable
  /// references this FleetChaos, which must outlive every service.
  std::function<void(const Matrix&)> hook_for(std::size_t replica);

  /// Master switch (default on). While disabled, hooks are no-ops and
  /// consume no event indices, so re-enabling resumes the schedule.
  void set_enabled(bool enabled) noexcept;
  bool enabled() const noexcept;

  /// Per-replica injector for precise assertions; nullptr if untargeted.
  const ServingChaos* injector(std::size_t replica) const;

  /// Fleet-wide sums across all targeted replicas.
  std::uint64_t extractions_seen() const noexcept;
  std::uint64_t slowdowns_injected() const noexcept;
  std::uint64_t failures_injected() const noexcept;

 private:
  FleetChaosConfig config_;
  std::atomic<bool> enabled_{true};
  // Indexed by replica id; null for untargeted replicas.
  std::vector<std::unique_ptr<ServingChaos>> injectors_;
};

/// Ways a bundle push can arrive broken at the serving host.
enum class BundlePoison {
  Truncate,   // upload cut short: keep a prefix of the file
  BitFlip,    // storage rot: flip one byte somewhere past the header
  BadMagic,   // wrong file entirely: corrupt the magic
};

/// Reads the valid bundle at `src_path` and writes a poisoned copy to
/// `dst_path` (deterministic in `seed`). The result is exactly what a
/// failed hot-reload must reject and roll back from. Throws alba::Error
/// on IO failure.
void write_poisoned_bundle(const std::string& src_path,
                           const std::string& dst_path, BundlePoison mode,
                           std::uint64_t seed);

}  // namespace alba
