// Data-quality accounting for one built dataset: what was injected into
// the raw telemetry, what the robust pipeline had to repair, quarantine, or
// drop, and how many feature columns died downstream. Rides along in
// ExperimentData the same way RoundStats rides in ActiveLearnerResult, so
// experiments and benches can report how degraded their input was without
// re-instrumenting the pipeline; render/CSV helpers mirror round_stats.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "features/extractor.hpp"
#include "telemetry/faults.hpp"

namespace alba {

struct DataQualityReport {
  // Injected degradation, summed over every generated sample (all zero
  // when fault injection is disabled).
  FaultSummary faults;

  // Repair / degradation bookkeeping from the (robust) pipeline.
  std::size_t cells_interpolated = 0;   // NaN cells linearly repaired
  std::size_t metrics_quarantined = 0;  // per-sample metric quarantines
  std::size_t feature_failures = 0;     // per-metric extractor throws caught
  std::size_t rows_dropped = 0;         // samples removed (unusable series)
  std::size_t columns_dropped = 0;      // unusable feature columns removed
  std::size_t degenerate_columns = 0;   // skipped by chi-square selection

  void add(const FaultSummary& s) noexcept { faults += s; }
  void add(const ExtractionQuality& q) noexcept;
};

/// One human-readable line, e.g.
///   "faults: 12 events (3 dropouts, ...); repaired 240 cells, quarantined
///    9 metrics, dropped 2 rows / 41 columns".
std::string format_data_quality(const DataQualityReport& q);

/// CSV column names, matching data_quality_csv_row field order. The
/// leading `label` column tags the dataset (e.g. a fault intensity) so
/// several datasets can share one file.
std::string data_quality_csv_header();
std::string data_quality_csv_row(std::string_view label,
                                 const DataQualityReport& q);

/// Writes header + one row under the given label.
void write_data_quality_csv(std::ostream& os, std::string_view label,
                            const DataQualityReport& q);

}  // namespace alba
