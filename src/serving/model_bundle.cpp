#include "serving/model_bundle.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "anomaly/anomaly.hpp"
#include "common/error.hpp"
#include "ml/serialize.hpp"

namespace alba {

namespace {

constexpr std::uint64_t kBundleMagic = 0x414C4241424E444CULL;  // "ALBABNDL"
constexpr std::uint64_t kBundleVersion = 1;

void write_strings(ArchiveWriter& w, const std::vector<std::string>& v) {
  w.write_u64(v.size());
  for (const auto& s : v) w.write_string(s);
}

std::vector<std::string> read_strings(ArchiveReader& r) {
  const std::uint64_t n = r.read_u64();
  std::vector<std::string> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.read_string());
  return v;
}

}  // namespace

ModelBundle make_model_bundle(const ExperimentData& data,
                              const PreparedSplit& split,
                              const Classifier& model) {
  ALBA_CHECK(model.fitted()) << "refusing to bundle an unfitted model";
  ALBA_CHECK(split.scaler.fitted() && split.selector.fitted())
      << "split carries unfitted transforms (was it made by prepare_split?)";
  ALBA_CHECK(split.scaler.mins().size() == data.features.names.size())
      << "scaler fitted on " << split.scaler.mins().size()
      << " columns but the data has " << data.features.names.size();
  ALBA_CHECK(model.num_classes() == kNumClasses);

  ModelBundle bundle;
  bundle.features = feature_config(data.config);
  bundle.feature_names = data.features.names;
  bundle.scaler_mins = split.scaler.mins();
  bundle.scaler_maxs = split.scaler.maxs();
  bundle.selected.reserve(split.selector.selected_indices().size());
  for (const std::size_t j : split.selector.selected_indices()) {
    bundle.selected.push_back(static_cast<int>(j));
  }
  bundle.selected_names = split.selected_names;
  for (int c = 0; c < kNumClasses; ++c) {
    bundle.label_names.emplace_back(anomaly_name(anomaly_from_label(c)));
  }
  // Deep-copy the fitted classifier through its archive form (clone() is
  // hyperparameters-only by contract).
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_classifier(ss, model);
  bundle.model = load_classifier(ss);
  return bundle;
}

void save_model_bundle(std::ostream& out, const ModelBundle& bundle) {
  ALBA_CHECK(bundle.model && bundle.model->fitted())
      << "bundle holds no fitted model";
  ArchiveWriter w(out);
  w.write_u64(kBundleMagic);
  w.write_u64(kBundleVersion);

  w.write_i64(static_cast<int>(bundle.features.system));
  w.write_i64(bundle.features.registry.cores);
  w.write_i64(bundle.features.registry.nics);
  w.write_i64(bundle.features.registry.filler_gauges);
  w.write_i64(bundle.features.preprocess.trim_head);
  w.write_i64(bundle.features.preprocess.trim_tail);
  w.write_i64(bundle.features.preprocess.quarantine_constant ? 1 : 0);
  w.write_i64(static_cast<int>(bundle.features.extractor));

  write_strings(w, bundle.feature_names);
  w.write_doubles(bundle.scaler_mins);
  w.write_doubles(bundle.scaler_maxs);
  w.write_ints(bundle.selected);
  write_strings(w, bundle.selected_names);
  write_strings(w, bundle.label_names);
  save_classifier(out, *bundle.model);
}

ModelBundle load_model_bundle(std::istream& in) {
  ArchiveReader r(in);
  if (r.read_u64() != kBundleMagic) {
    throw Error("not an ALBADross model bundle");
  }
  const std::uint64_t version = r.read_u64();
  if (version != kBundleVersion) {
    throw Error("unsupported model bundle version " +
                std::to_string(version) + " (this build reads version " +
                std::to_string(kBundleVersion) + ")");
  }

  ModelBundle bundle;
  bundle.features.system = static_cast<SystemKind>(r.read_i64());
  bundle.features.registry.cores = static_cast<int>(r.read_i64());
  bundle.features.registry.nics = static_cast<int>(r.read_i64());
  bundle.features.registry.filler_gauges = static_cast<int>(r.read_i64());
  bundle.features.preprocess.trim_head = static_cast<int>(r.read_i64());
  bundle.features.preprocess.trim_tail = static_cast<int>(r.read_i64());
  bundle.features.preprocess.quarantine_constant = r.read_i64() != 0;
  bundle.features.extractor = static_cast<ExtractorKind>(r.read_i64());

  bundle.feature_names = read_strings(r);
  bundle.scaler_mins = r.read_doubles();
  bundle.scaler_maxs = r.read_doubles();
  bundle.selected = r.read_ints();
  bundle.selected_names = read_strings(r);
  bundle.label_names = read_strings(r);
  bundle.model = load_classifier(in);

  // Structural validation: every cross-reference in the bundle must agree
  // before it is allowed anywhere near the serving path.
  const std::size_t width = bundle.feature_names.size();
  if (bundle.scaler_mins.size() != width ||
      bundle.scaler_maxs.size() != width) {
    throw Error("corrupt model bundle: scaler covers " +
                std::to_string(bundle.scaler_mins.size()) + "/" +
                std::to_string(bundle.scaler_maxs.size()) +
                " columns, feature space has " + std::to_string(width));
  }
  if (bundle.selected.empty() ||
      bundle.selected.size() != bundle.selected_names.size()) {
    throw Error("corrupt model bundle: selected column list is empty or "
                "disagrees with its name list");
  }
  for (std::size_t c = 0; c < bundle.selected.size(); ++c) {
    const int j = bundle.selected[c];
    if (j < 0 || static_cast<std::size_t>(j) >= width) {
      throw Error("corrupt model bundle: selected column " +
                  std::to_string(j) + " outside feature space of " +
                  std::to_string(width));
    }
    if (bundle.feature_names[static_cast<std::size_t>(j)] !=
        bundle.selected_names[c]) {
      throw Error("corrupt model bundle: selected name '" +
                  bundle.selected_names[c] + "' does not match feature '" +
                  bundle.feature_names[static_cast<std::size_t>(j)] + "'");
    }
  }
  if (static_cast<std::size_t>(bundle.model->num_classes()) !=
      bundle.label_names.size()) {
    throw Error("corrupt model bundle: " +
                std::to_string(bundle.label_names.size()) +
                " label names for a " +
                std::to_string(bundle.model->num_classes()) +
                "-class model");
  }
  return bundle;
}

void export_model_bundle(const std::string& path, const ExperimentData& data,
                         const PreparedSplit& split,
                         const Classifier& model) {
  save_model_bundle_file(path, make_model_bundle(data, split, model));
}

void save_model_bundle_file(const std::string& path,
                            const ModelBundle& bundle) {
  // Write-to-temp + atomic rename: a crash (or a thrown serialization
  // error) mid-save must never leave a torn archive at `path` — the
  // serving host hot-reloads from that path, and a half-written file
  // would only fail at load time, after the old bundle is gone.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      const int err = errno;
      throw Error("cannot open '" + tmp + "' for writing: " +
                  std::strerror(err));
    }
    try {
      save_model_bundle(out, bundle);
    } catch (...) {
      out.close();
      std::remove(tmp.c_str());
      throw;
    }
    out.flush();
    if (!out.good()) {
      const int err = errno;
      out.close();
      std::remove(tmp.c_str());
      throw Error("writing bundle to '" + tmp + "' failed: " +
                  std::strerror(err));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    throw Error("renaming '" + tmp + "' to '" + path + "' failed: " +
                std::strerror(err));
  }
}

ModelBundle load_model_bundle_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ALBA_CHECK(in.good()) << "cannot open '" << path << "' for reading";
  return load_model_bundle(in);
}

}  // namespace alba
