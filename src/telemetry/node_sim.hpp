// Compute-node telemetry simulator.
//
// Produces the raw `T x M` multivariate series LDMS would sample at 1 Hz
// from one node over one application run: gauges with multiplicative noise,
// cumulative counters with random initial offsets, per-core load imbalance,
// init/termination transients (the paper trims these before feature
// extraction), and sporadic missing samples (NaN; the paper linearly
// interpolates them). An optional AnomalyInjector perturbs the node's load
// each step — the run generator attaches it to the run's first node only,
// matching the paper's injection policy.
#pragma once

#include "anomaly/injector.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "telemetry/app_model.hpp"
#include "telemetry/registry.hpp"

namespace alba {

struct NodeSimConfig {
  int duration_steps = 96;    // samples per run (paper: 600-2700 @ 1 Hz)
  double dt_seconds = 1.0;    // LDMS sampling period
  int ramp_steps = 6;         // init transient length
  int drain_steps = 5;        // termination transient length
  double missing_prob = 0.008;  // per-cell missing-sample probability
  double run_jitter = 0.035;    // run-to-run level jitter (sigma)
  // Production-system interference: shared-resource contention from other
  // jobs (network, filesystem, memory) shows up as slowly varying
  // background activity uncorrelated with the application. 0 disables
  // (testbed-like isolation); Eclipse-style production configs use ~0.5.
  // This is what makes the production dataset genuinely harder than the
  // testbed one, as the paper observes (Sec. V-A).
  double background_level = 0.0;
};

class NodeSimulator {
 public:
  NodeSimulator(const MetricRegistry& registry, NodeSimConfig config);

  const NodeSimConfig& config() const noexcept { return config_; }

  /// Simulates one node of one run. `injector` may be null (healthy node).
  /// `rng` is the node's private stream; identical streams reproduce the
  /// series exactly.
  Matrix simulate(const AppSignature& app, const InputDeck& deck,
                  int node_index, const AnomalyInjector* injector,
                  Rng& rng) const;

  /// The NodeLoad the simulator would derive at time t for the given app —
  /// exposed for tests and for the anomaly-footprint example.
  NodeLoad load_at(const AppSignature& app, const InputDeck& deck,
                   double t_seconds, double t_frac, double phase_shift,
                   double level_jitter) const;

 private:
  const MetricRegistry& registry_;
  NodeSimConfig config_;
};

}  // namespace alba
