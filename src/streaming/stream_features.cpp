#include "streaming/stream_features.hpp"

#include <algorithm>
#include <cmath>

namespace alba {

const std::array<std::string, kStreamFeaturesPerMetric>&
stream_feature_suffixes() {
  static const std::array<std::string, kStreamFeaturesPerMetric> names = {
      "mean", "var", "min", "max", "p05", "p25", "p50", "p75", "p95"};
  return names;
}

P2Quantile::P2Quantile(double q) noexcept : q_(q) {
  // Desired-position rates for the five markers: min, q/2, q, (1+q)/2, max.
  rates_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::add(double v) noexcept {
  if (n_ < 5) {
    heights_[n_] = v;
    ++n_;
    if (n_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
        desired_[i] = 1.0 + 4.0 * rates_[i];
      }
    }
    return;
  }

  // Locate the cell [k, k+1) holding v, extending the extremes in place.
  std::size_t k = 0;
  if (v < heights_[0]) {
    heights_[0] = v;
    k = 0;
  } else if (v >= heights_[4]) {
    heights_[4] = v;
    k = 3;
  } else {
    while (k < 3 && v >= heights_[k + 1]) ++k;
  }

  ++n_;
  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += rates_[i];

  // Nudge the three interior markers toward their desired positions,
  // re-estimating their heights with the piecewise-parabolic (P²) formula,
  // falling back to linear when the parabola would leave the bracket.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      const double qp =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((below + s) * (heights_[i + 1] - heights_[i]) / above +
               (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < qp && qp < heights_[i + 1]) {
        heights_[i] = qp;
      } else if (s > 0.0) {
        heights_[i] += (heights_[i + 1] - heights_[i]) / above;
      } else {
        heights_[i] -= (heights_[i - 1] - heights_[i]) / below;
      }
      positions_[i] += s;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (n_ == 0) return 0.0;
  if (n_ <= 5) {
    // Exact linear-interpolation quantile over the buffered samples —
    // the stats::quantile formula, so tiny windows have zero sketch error.
    std::array<double, 5> v = heights_;
    std::sort(v.begin(), v.begin() + n_);
    const double pos = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
  }
  return heights_[2];
}

StreamAccumulator::StreamAccumulator() noexcept
    : sketches_{P2Quantile(kStreamQuantiles[0]), P2Quantile(kStreamQuantiles[1]),
                P2Quantile(kStreamQuantiles[2]), P2Quantile(kStreamQuantiles[3]),
                P2Quantile(kStreamQuantiles[4])} {}

void StreamAccumulator::add(double v) {
  welford_.add(v);
  minmax_.add(v);
  for (P2Quantile& s : sketches_) s.add(v);
  if (welford_.n <= kQuantileExactCap) {
    // Sorted insertion: the order statistics are maintained HERE, at push
    // time (a binary search + a short memmove), so emit never sorts. The
    // multiset of values matches the batch path's sorted column, so the
    // interpolated quantiles are value-identical.
    exact_.insert(std::upper_bound(exact_.begin(), exact_.end(), v), v);
  } else if (!exact_.empty()) {
    // Outgrew the exact buffer: the sketches (fed since the first sample)
    // take over; release the memory rather than capping the window count.
    exact_.clear();
    exact_.shrink_to_fit();
  }
}

void StreamAccumulator::emit(std::span<double> out) const {
  out[0] = welford_.mean;
  out[1] = welford_.variance();
  out[2] = minmax_.seen ? minmax_.min : 0.0;
  out[3] = minmax_.seen ? minmax_.max : 0.0;
  if (welford_.n > 0 && welford_.n == exact_.size()) {
    // Exact path: the batch quantile (sorted linear interpolation) read
    // straight off the already-sorted buffer — O(1) per quantile.
    for (std::size_t i = 0; i < kStreamQuantiles.size(); ++i) {
      const double pos =
          kStreamQuantiles[i] * static_cast<double>(exact_.size() - 1);
      const auto lo = static_cast<std::size_t>(std::floor(pos));
      const auto hi = static_cast<std::size_t>(std::ceil(pos));
      const double frac = pos - static_cast<double>(lo);
      out[4 + i] = exact_[lo] * (1.0 - frac) + exact_[hi] * frac;
    }
    return;
  }
  for (std::size_t i = 0; i < sketches_.size(); ++i) {
    out[4 + i] = sketches_[i].value();
  }
}

void stream_features_batch(std::span<const double> processed,
                           std::span<double> out) {
  WelfordState welford;
  MinMaxState minmax;
  for (const double v : processed) {
    welford.add(v);
    minmax.add(v);
  }
  out[0] = welford.mean;
  out[1] = welford.variance();
  out[2] = minmax.seen ? minmax.min : 0.0;
  out[3] = minmax.seen ? minmax.max : 0.0;

  std::vector<double> sorted(processed.begin(), processed.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < kStreamQuantiles.size(); ++i) {
    if (sorted.empty()) {
      out[4 + i] = 0.0;
      continue;
    }
    const double pos =
        kStreamQuantiles[i] * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    out[4 + i] = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
}

}  // namespace alba
