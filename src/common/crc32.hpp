// Portable CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the
// checksum the wire frame format uses to detect bit-flips and torn frames,
// shared with any future archive integrity check. Incremental: feed chunks
// through crc32_update and finalize nothing — the returned value after any
// prefix is the CRC of that prefix.
#pragma once

#include <cstdint>
#include <span>

namespace alba {

/// CRC32 of `data` continuing from `crc` (pass the previous return value to
/// checksum a stream in chunks; start from kCrc32Init == 0).
std::uint32_t crc32_update(std::uint32_t crc,
                           std::span<const std::uint8_t> data) noexcept;

/// One-shot CRC32 of a buffer. crc32("123456789") == 0xCBF43926.
inline std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  return crc32_update(0, data);
}

}  // namespace alba
