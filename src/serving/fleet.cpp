#include "serving/fleet.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "serving/model_bundle.hpp"
#include "serving/serving_stats.hpp"

namespace alba {

namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

}  // namespace

std::string_view to_string(RoutingPolicy policy) noexcept {
  switch (policy) {
    case RoutingPolicy::ConsistentHash: return "consistent-hash";
    case RoutingPolicy::RoundRobin: return "round-robin";
  }
  return "unknown";
}

std::string_view to_string(FleetStatus status) noexcept {
  switch (status) {
    case FleetStatus::Ok: return "ok";
    case FleetStatus::Failed: return "failed";
    case FleetStatus::AllShed: return "all-shed";
  }
  return "unknown";
}

std::string_view to_string(RolloutState state) noexcept {
  switch (state) {
    case RolloutState::Idle: return "idle";
    case RolloutState::Canarying: return "canarying";
    case RolloutState::Promoted: return "promoted";
    case RolloutState::RolledBack: return "rolled-back";
    case RolloutState::CanaryRejected: return "canary-rejected";
  }
  return "unknown";
}

std::string format_fleet_summary(const FleetStats& s) {
  std::size_t in_ring = 0;
  std::uint64_t probes_sum = 0;
  for (const ReplicaStats& r : s.replicas) {
    in_ring += r.in_ring ? 1 : 0;
    probes_sum += r.probes;
  }
  return strformat(
      "%llu requests: %llu served (%llu spilled, %llu failovers), "
      "%llu failed, %llu all-shed; p50 %.2fms, p99 %.2fms; "
      "ring %zu/%zu, %llu ejections, %llu readmissions, %llu probes",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.served),
      static_cast<unsigned long long>(s.spilled),
      static_cast<unsigned long long>(s.failovers),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.all_shed), s.p50_ms, s.p99_ms,
      in_ring, s.replicas.size(),
      static_cast<unsigned long long>(s.ejections),
      static_cast<unsigned long long>(s.readmissions),
      static_cast<unsigned long long>(probes_sum));
}

std::string RolloutReport::summary() const {
  std::string out = "rollout " + std::string(to_string(state));
  if (!reason.empty()) out += " (" + reason + ")";
  out += strformat(
      ": canary %zu/%zu samples, err %.3f vs %.3f baseline, "
      "p99 %.2fms vs %.2fms, %zu promotion(s)",
      canary_samples, baseline_samples, canary_error_rate,
      baseline_error_rate, canary_p99_ms, baseline_p99_ms,
      promotions.size());
  return out;
}

ServingFleet::ServingFleet(
    std::vector<std::shared_ptr<DiagnosisService>> services,
    FleetConfig config)
    : config_(config) {
  ALBA_CHECK(!services.empty()) << "ServingFleet needs at least one replica";
  ALBA_CHECK(config_.vnodes > 0) << "ServingFleet needs at least one vnode";
  ALBA_CHECK(config_.health_window > 0 && config_.health_min_samples > 0)
      << "fleet health window sizes must be positive";
  ALBA_CHECK(config_.eject_error_rate >= 0.0 &&
             config_.eject_error_rate <= 1.0)
      << "eject_error_rate must be in [0, 1]";
  hosts_.reserve(services.size());
  outstanding_.reserve(services.size());
  replicas_.resize(services.size());
  for (auto& service : services) {
    hosts_.push_back(
        std::make_unique<ServiceHost>(std::move(service), config_.host));
    outstanding_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  rebuild_ring_locked();  // construction: no concurrent access yet
}

ServingFleet::~ServingFleet() {
  // Host destructors drain; nothing fleet-level left to tear down.
}

void ServingFleet::rebuild_ring_locked() {
  ring_.clear();
  for (std::size_t id = 0; id < replicas_.size(); ++id) {
    if (!replicas_[id].in_ring) continue;
    // One deterministic point stream per replica: the ring depends only on
    // (seed, replica id, vnode index), never on join order or traffic.
    SplitMix64 sm(config_.seed ^ (static_cast<std::uint64_t>(id) + 1) *
                                     kGolden);
    for (std::size_t v = 0; v < config_.vnodes; ++v) {
      ring_.emplace_back(sm.next(), id);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ServingFleet::ring_lookup_locked(std::uint64_t hash) const {
  // First ring point clockwise from the hash; wrap to the smallest point.
  const auto it = std::upper_bound(
      ring_.begin(), ring_.end(), hash,
      [](std::uint64_t h, const std::pair<std::uint64_t, std::size_t>& p) {
        return h < p.first;
      });
  return it == ring_.end() ? ring_.front().second : it->second;
}

std::vector<std::size_t> ServingFleet::candidates_locked(
    std::uint64_t hash, std::size_t& preferred, bool& probing) {
  std::vector<std::size_t> active;
  std::vector<std::size_t> ejected;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i].dead) continue;
    (replicas_[i].in_ring ? active : ejected).push_back(i);
  }

  std::vector<std::size_t> order;
  probing = false;
  // Probe-driven readmission: while anything is ejected, a deterministic
  // 1-in-N trickle detours a request to an ejected replica first (a
  // successful answer readmits it; a failed one spills onward like any
  // other shed).
  if (!ejected.empty() && config_.readmit_probe_every > 0 &&
      ++probe_counter_ % config_.readmit_probe_every == 0) {
    const std::size_t p = ejected[probe_rotor_++ % ejected.size()];
    order.push_back(p);
    probing = true;
    ++readmit_probes_;
    ++replicas_[p].probes;
  }

  preferred = replicas_.size();  // sentinel: no in-ring preference
  if (!active.empty()) {
    if (config_.routing == RoutingPolicy::ConsistentHash && !ring_.empty()) {
      preferred = ring_lookup_locked(hash);
    } else {
      preferred =
          active[static_cast<std::size_t>(round_robin_++) % active.size()];
    }
    ++replicas_[preferred].preferred;
    if (order.empty() || order.front() != preferred) {
      order.push_back(preferred);
    }
    // Spill targets: the remaining in-ring replicas, least-loaded first
    // (fleet-side in-flight count; ties break on id for determinism).
    std::vector<std::size_t> rest;
    for (const std::size_t r : active) {
      if (r != preferred) rest.push_back(r);
    }
    std::sort(rest.begin(), rest.end(),
              [this](std::size_t a, std::size_t b) {
                const std::uint64_t la = outstanding_[a]->load();
                const std::uint64_t lb = outstanding_[b]->load();
                return la != lb ? la < lb : a < b;
              });
    order.insert(order.end(), rest.begin(), rest.end());
  }
  if (preferred == replicas_.size() && !order.empty()) {
    preferred = order.front();
  }
  if (config_.max_attempts > 0 && order.size() > config_.max_attempts) {
    order.resize(config_.max_attempts);
  }
  return order;
}

void ServingFleet::eject_locked(std::size_t replica) {
  Replica& r = replicas_[replica];
  if (!r.in_ring) return;
  r.in_ring = false;
  ++r.ejections;
  rebuild_ring_locked();
}

void ServingFleet::readmit_locked(std::size_t replica) {
  Replica& r = replicas_[replica];
  if (r.in_ring || r.dead) return;
  r.in_ring = true;
  ++r.readmissions;
  // Fresh start: the window that got it ejected must not re-trip the
  // breaker on the first post-recovery completion.
  r.window.clear();
  r.window_next = 0;
  rebuild_ring_locked();
}

double ServingFleet::replica_percentile_locked(std::size_t replica,
                                               double q) const {
  std::vector<double> samples;
  samples.reserve(replicas_[replica].window.size());
  for (const Outcome& o : replicas_[replica].window) {
    samples.push_back(o.total_ms);
  }
  return latency_percentile(samples, q);
}

void ServingFleet::record_outcome_locked(std::size_t replica,
                                         const HostResult& r) {
  Replica& rep = replicas_[replica];
  const bool pipeline_outcome = r.status == RequestStatus::Ok ||
                                r.status == RequestStatus::Failed;
  if (r.status == RequestStatus::Ok) {
    ++rep.served;
  } else if (r.status == RequestStatus::Failed) {
    ++rep.failed;
  } else {
    ++rep.shed;
  }

  if (pipeline_outcome) {
    Outcome o;
    o.failed = r.status == RequestStatus::Failed;
    o.total_ms = r.total_ms;
    if (rep.window.size() < config_.health_window) {
      rep.window.push_back(o);
    } else {
      rep.window[rep.window_next] = o;
    }
    rep.window_next = (rep.window_next + 1) % config_.health_window;

    // Rollout guard: live canary-vs-baseline outcomes under the candidate
    // bundle (deliberate shedding stays out — overload is not a bundle
    // property).
    if (rollout_state_ == RolloutState::Canarying) {
      Outcome g;
      g.failed = o.failed;
      g.total_ms = o.total_ms;
      (replica == rollout_config_.canary ? guard_canary_ : guard_baseline_)
          .push_back(g);
    }
  }

  if (!rep.in_ring && !rep.dead && r.status == RequestStatus::Ok) {
    // A readmission probe answered: the replica is back.
    readmit_locked(replica);
    return;
  }

  if (!rep.in_ring) return;
  // The host's own breaker/drain already decided this replica is not
  // serving; mirror that in the ring immediately.
  if (r.status == RequestStatus::RejectedUnhealthy ||
      r.status == RequestStatus::RejectedDraining) {
    eject_locked(replica);
    return;
  }
  // Fleet-observed breaker over the rolling window.
  if (rep.window.size() >= config_.health_min_samples) {
    std::size_t failures = 0;
    for (const Outcome& o : rep.window) failures += o.failed ? 1 : 0;
    const double rate = static_cast<double>(failures) /
                        static_cast<double>(rep.window.size());
    if (rate > config_.eject_error_rate) {
      eject_locked(replica);
      return;
    }
    if (config_.eject_p99_ms > 0.0 &&
        replica_percentile_locked(replica, 0.99) > config_.eject_p99_ms) {
      eject_locked(replica);
    }
  }
}

FleetResult ServingFleet::diagnose(const Matrix& window) {
  return diagnose(window,
                  config_.host.default_deadline_ms > 0.0
                      ? Deadline::after_ms(config_.host.default_deadline_ms)
                      : Deadline::never());
}

FleetResult ServingFleet::diagnose(const Matrix& window, Deadline deadline) {
  const std::uint64_t hash = hash_window(window);
  std::size_t preferred = 0;
  bool probing = false;
  std::vector<std::size_t> order;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++requests_;
    if (draining_) {
      ++all_shed_;
      FleetResult out;
      out.status = FleetStatus::AllShed;
      out.result.status = RequestStatus::RejectedDraining;
      return out;
    }
    order = candidates_locked(hash, preferred, probing);
  }

  FleetResult out;
  out.replica = preferred < hosts_.size() ? preferred : 0;
  out.result.status = RequestStatus::RejectedUnhealthy;  // nothing to try
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t c = order[i];
    outstanding_[c]->fetch_add(1, std::memory_order_relaxed);
    const HostResult r = hosts_[c]->diagnose(window, deadline);
    outstanding_[c]->fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      record_outcome_locked(c, r);
      if (c != preferred) ++replicas_[c].spill_in;
    }
    out.result = r;
    out.replica = c;
    out.attempts = i + 1;
    if (r.status == RequestStatus::Ok) break;
    // A deadline rejection is the caller's budget, not this replica's
    // fault — no other replica can answer in negative time.
    if (r.status == RequestStatus::RejectedDeadline) break;
    if (deadline.expired()) break;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (out.result.status == RequestStatus::Ok) {
      out.status = FleetStatus::Ok;
      out.spilled = out.replica != preferred;
      ++served_;
      if (out.spilled) ++spilled_;
    } else if (out.result.status == RequestStatus::Failed) {
      out.status = FleetStatus::Failed;
      ++failed_;
    } else {
      out.status = FleetStatus::AllShed;
      ++all_shed_;
    }
    if (out.attempts > 1) {
      failovers_ += static_cast<std::uint64_t>(out.attempts - 1);
    }
  }
  return out;
}

DiagnosisResult ServingFleet::diagnose(const DiagnoseRequest& request) {
  ALBA_CHECK(request.window != nullptr) << "DiagnoseRequest needs a window";
  const FleetResult f = request.deadline.is_never()
                            ? diagnose(*request.window)
                            : diagnose(*request.window, request.deadline);
  DiagnosisResult r;
  r.status = f.result.status;
  r.diagnosis = f.result.diagnosis;
  r.error = f.result.error;
  r.generation = f.result.generation;
  r.replica = f.replica;
  r.attempts = f.attempts > 0 ? f.attempts : 1;
  r.spilled = f.spilled;
  r.queue_ms = f.result.queue_ms;
  r.service_ms = f.result.service_ms;
  r.total_ms = f.result.total_ms;
  return r;
}

std::size_t ServingFleet::preferred_replica(const Matrix& window) const {
  const std::uint64_t hash = hash_window(window);
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.routing == RoutingPolicy::ConsistentHash && !ring_.empty()) {
    return ring_lookup_locked(hash);
  }
  // RoundRobin: the replica the *next* request would get (no counter
  // side effect from peeking).
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i].in_ring) active.push_back(i);
  }
  if (active.empty()) return 0;
  return active[static_cast<std::size_t>(round_robin_) % active.size()];
}

bool ServingFleet::in_ring(std::size_t replica) const {
  std::lock_guard<std::mutex> lock(mutex_);
  ALBA_CHECK(replica < replicas_.size())
      << "replica " << replica << " out of range";
  return replicas_[replica].in_ring;
}

void ServingFleet::set_probe_windows(std::vector<Matrix> probes) {
  for (auto& host : hosts_) host->set_probe_windows(probes);
}

ServiceHost& ServingFleet::host(std::size_t replica) {
  ALBA_CHECK(replica < hosts_.size())
      << "replica " << replica << " out of range";
  return *hosts_[replica];
}

void ServingFleet::kill(std::size_t replica) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ALBA_CHECK(replica < replicas_.size())
        << "replica " << replica << " out of range";
    Replica& r = replicas_[replica];
    r.dead = true;
    if (r.in_ring) {
      r.in_ring = false;
      ++r.ejections;
    }
    rebuild_ring_locked();
  }
  // Outside the fleet mutex: the drain blocks on in-flight work, and that
  // work's completion path takes the fleet mutex to record its outcome.
  hosts_[replica]->drain();
}

void ServingFleet::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  for (auto& host : hosts_) host->drain();
}

FleetStats ServingFleet::stats() const {
  FleetStats s;
  std::vector<double> merged;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.requests = requests_;
    s.served = served_;
    s.spilled = spilled_;
    s.failovers = failovers_;
    s.failed = failed_;
    s.all_shed = all_shed_;
    s.readmit_probes = readmit_probes_;
    s.replicas.reserve(replicas_.size());
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      const Replica& rep = replicas_[i];
      ReplicaStats r;
      r.id = i;
      r.in_ring = rep.in_ring;
      r.dead = rep.dead;
      r.preferred = rep.preferred;
      r.served = rep.served;
      r.failed = rep.failed;
      r.shed = rep.shed;
      r.spill_in = rep.spill_in;
      r.probes = rep.probes;
      r.ejections = rep.ejections;
      r.readmissions = rep.readmissions;
      r.p50_ms = replica_percentile_locked(i, 0.50);
      r.p99_ms = replica_percentile_locked(i, 0.99);
      s.ejections += rep.ejections;
      s.readmissions += rep.readmissions;
      for (const Outcome& o : rep.window) merged.push_back(o.total_ms);
      s.replicas.push_back(std::move(r));
    }
  }
  // Exact merge of the actual samples across replicas (0/1-sample
  // replicas included), not an average of per-replica percentiles.
  s.p50_ms = latency_percentile(merged, 0.50);
  s.p99_ms = latency_percentile(merged, 0.99);
  // Host/service snapshots outside the fleet mutex (they take host locks).
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    s.replicas[i].host = hosts_[i]->stats();
    s.replicas[i].service = hosts_[i]->service()->stats();
    s.replicas[i].health = hosts_[i]->health();
  }
  return s;
}

// --- staged rollout --------------------------------------------------------

ReloadReport ServingFleet::start_rollout(const std::string& bundle_path,
                                         RolloutConfig config) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ALBA_CHECK(rollout_state_ != RolloutState::Canarying)
        << "a rollout is already in flight";
    ALBA_CHECK(config.canary < hosts_.size())
        << "canary replica " << config.canary << " out of range";
    ALBA_CHECK(!replicas_[config.canary].dead)
        << "canary replica " << config.canary << " is dead";
    ALBA_CHECK(config.guard_min_samples > 0)
        << "guard_min_samples must be positive";
    rollout_config_ = config;
    rollout_bundle_path_ = bundle_path;
    rollout_report_ = RolloutReport{};
    guard_canary_.clear();
    guard_baseline_.clear();
  }

  // Snapshot the canary's pre-push bundle for rollback, then push. Both
  // happen outside the fleet mutex: serving continues throughout.
  std::ostringstream snapshot(std::ios::binary);
  save_model_bundle(snapshot, hosts_[config.canary]->service()->bundle());
  const ReloadReport push =
      hosts_[config.canary]->reload_from_file(bundle_path);

  std::lock_guard<std::mutex> lock(mutex_);
  rollout_snapshot_ = snapshot.str();
  rollout_report_.canary_push = push;
  if (push.ok) {
    rollout_state_ = RolloutState::Canarying;
  } else {
    // The canary's own probe-validated reload rolled back internally; the
    // bundle never served a request and never reaches another replica.
    rollout_state_ = RolloutState::CanaryRejected;
    rollout_report_.reason = "canary push rejected: " + push.error;
  }
  rollout_report_.state = rollout_state_;
  return push;
}

RolloutDecision ServingFleet::decide_rollout_locked(
    std::string& reason) const {
  const Replica& canary = replicas_[rollout_config_.canary];
  if (!canary.in_ring || canary.dead) {
    reason = "canary ejected during the guard window";
    return RolloutDecision::RolledBack;
  }
  if (guard_canary_.size() < rollout_config_.guard_min_samples) {
    return RolloutDecision::NeedMoreTraffic;
  }
  const auto error_rate = [](const std::vector<Outcome>& window) {
    if (window.empty()) return 0.0;
    std::size_t failures = 0;
    for (const Outcome& o : window) failures += o.failed ? 1 : 0;
    return static_cast<double>(failures) /
           static_cast<double>(window.size());
  };
  const auto p99 = [](const std::vector<Outcome>& window) {
    std::vector<double> samples;
    samples.reserve(window.size());
    for (const Outcome& o : window) samples.push_back(o.total_ms);
    return latency_percentile(samples, 0.99);
  };
  const double canary_err = error_rate(guard_canary_);
  const double baseline_err = error_rate(guard_baseline_);
  if (canary_err > baseline_err + rollout_config_.max_error_rate_delta) {
    reason = strformat("canary error rate %.3f exceeds baseline %.3f + %.3f",
                       canary_err, baseline_err,
                       rollout_config_.max_error_rate_delta);
    return RolloutDecision::RolledBack;
  }
  if (rollout_config_.max_p99_ratio > 0.0 && !guard_baseline_.empty()) {
    const double canary_p99 = p99(guard_canary_);
    const double baseline_p99 = p99(guard_baseline_);
    if (baseline_p99 > 0.0 &&
        canary_p99 > rollout_config_.max_p99_ratio * baseline_p99) {
      reason = strformat("canary p99 %.2fms exceeds %.1fx baseline %.2fms",
                         canary_p99, rollout_config_.max_p99_ratio,
                         baseline_p99);
      return RolloutDecision::RolledBack;
    }
  }
  return RolloutDecision::Promoted;
}

RolloutDecision ServingFleet::advance_rollout() {
  std::string reason;
  RolloutDecision decision;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    switch (rollout_state_) {
      case RolloutState::Idle:
        return RolloutDecision::NeedMoreTraffic;  // nothing in flight
      case RolloutState::Promoted:
        return RolloutDecision::Promoted;
      case RolloutState::RolledBack:
      case RolloutState::CanaryRejected:
        return RolloutDecision::RolledBack;
      case RolloutState::Canarying:
        break;
    }
    decision = decide_rollout_locked(reason);
    if (decision == RolloutDecision::NeedMoreTraffic) return decision;

    // Record the guard measurements behind the decision and flip the
    // state *before* the reloads below, so a concurrent advance_rollout
    // sees a terminal state and never double-promotes.
    const auto error_rate = [](const std::vector<Outcome>& window) {
      if (window.empty()) return 0.0;
      std::size_t failures = 0;
      for (const Outcome& o : window) failures += o.failed ? 1 : 0;
      return static_cast<double>(failures) /
             static_cast<double>(window.size());
    };
    std::vector<double> canary_ms;
    std::vector<double> baseline_ms;
    for (const Outcome& o : guard_canary_) canary_ms.push_back(o.total_ms);
    for (const Outcome& o : guard_baseline_) {
      baseline_ms.push_back(o.total_ms);
    }
    rollout_report_.canary_samples = guard_canary_.size();
    rollout_report_.baseline_samples = guard_baseline_.size();
    rollout_report_.canary_error_rate = error_rate(guard_canary_);
    rollout_report_.baseline_error_rate = error_rate(guard_baseline_);
    rollout_report_.canary_p99_ms = latency_percentile(canary_ms, 0.99);
    rollout_report_.baseline_p99_ms = latency_percentile(baseline_ms, 0.99);
    rollout_report_.reason = reason;
    rollout_state_ = decision == RolloutDecision::Promoted
                         ? RolloutState::Promoted
                         : RolloutState::RolledBack;
    rollout_report_.state = rollout_state_;
  }
  finish_rollout(decision, reason);
  return decision;
}

void ServingFleet::finish_rollout(RolloutDecision decision,
                                  const std::string& reason) {
  (void)reason;
  if (decision == RolloutDecision::Promoted) {
    // The bundle survived probes and the live guard on the canary; push it
    // to every other replica through the same probe-validated reload.
    std::vector<ReloadReport> promotions;
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      bool skip = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        skip = i == rollout_config_.canary || replicas_[i].dead;
      }
      if (skip) continue;
      promotions.push_back(hosts_[i]->reload_from_file(rollout_bundle_path_));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    rollout_report_.promotions = std::move(promotions);
    return;
  }
  // Roll the canary back to its pre-push bundle. The snapshot was taken
  // from a serving bundle, so this reload re-validates and swaps cleanly.
  std::string snapshot;
  std::size_t canary = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = rollout_snapshot_;
    canary = rollout_config_.canary;
  }
  ReloadReport restore;
  try {
    std::istringstream in(snapshot, std::ios::binary);
    restore = hosts_[canary]->reload(load_model_bundle(in));
  } catch (const std::exception& e) {
    restore.ok = false;
    restore.rolled_back = true;
    restore.error = e.what();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  rollout_report_.rollback = restore;
}

RolloutState ServingFleet::rollout_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rollout_state_;
}

RolloutReport ServingFleet::rollout_report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rollout_report_;
}

}  // namespace alba
