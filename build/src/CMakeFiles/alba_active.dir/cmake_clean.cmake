file(REMOVE_RECURSE
  "CMakeFiles/alba_active.dir/active/committee.cpp.o"
  "CMakeFiles/alba_active.dir/active/committee.cpp.o.d"
  "CMakeFiles/alba_active.dir/active/curves.cpp.o"
  "CMakeFiles/alba_active.dir/active/curves.cpp.o.d"
  "CMakeFiles/alba_active.dir/active/explain.cpp.o"
  "CMakeFiles/alba_active.dir/active/explain.cpp.o.d"
  "CMakeFiles/alba_active.dir/active/learner.cpp.o"
  "CMakeFiles/alba_active.dir/active/learner.cpp.o.d"
  "CMakeFiles/alba_active.dir/active/oracle.cpp.o"
  "CMakeFiles/alba_active.dir/active/oracle.cpp.o.d"
  "CMakeFiles/alba_active.dir/active/strategy.cpp.o"
  "CMakeFiles/alba_active.dir/active/strategy.cpp.o.d"
  "CMakeFiles/alba_active.dir/active/stream.cpp.o"
  "CMakeFiles/alba_active.dir/active/stream.cpp.o.d"
  "libalba_active.a"
  "libalba_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alba_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
