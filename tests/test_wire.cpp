// Tests for the fault-tolerant wire transport: frame codec round-trips,
// the boundary-sliced + bit-flipped decoder fuzz sweep, the exactly-once
// client/server delivery contract over the deterministic loopback
// transport (reconnect/resume, duplicates, backpressure sheds, superseded
// connections, server restart from snapshot), typed decode-error handling,
// the ingest-stats CSV parse-back, and real TCP end-to-end (single-thread
// and threaded).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "streaming/ingest.hpp"
#include "streaming/ingest_server.hpp"
#include "telemetry/registry.hpp"
#include "wire/chaos.hpp"
#include "wire/client.hpp"
#include "wire/frame.hpp"
#include "wire/transport.hpp"

namespace alba {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

MetricRegistry test_registry() {
  RegistryConfig cfg;
  cfg.cores = 2;
  cfg.nics = 1;
  cfg.filler_gauges = 1;
  return MetricRegistry(SystemKind::Volta, cfg);
}

// Synthetic raw rows matching the streaming tests' feed shape: counters
// cumulative, gauges sinusoid + noise, optional NaN cells.
std::vector<std::vector<double>> make_rows(const MetricRegistry& registry,
                                           std::size_t t_total,
                                           std::uint64_t seed,
                                           double nan_cell_rate = 0.0) {
  Rng rng(seed);
  const std::size_t m_count = registry.size();
  std::vector<double> level(m_count, 0.0);
  std::vector<std::vector<double>> rows(t_total,
                                        std::vector<double>(m_count));
  for (std::size_t t = 0; t < t_total; ++t) {
    for (std::size_t m = 0; m < m_count; ++m) {
      if (registry.metric(m).kind == MetricKind::Counter) {
        level[m] += rng.uniform(0.0, 5.0);
        rows[t][m] = level[m];
      } else {
        rows[t][m] = std::sin(0.3 * static_cast<double>(t) +
                              static_cast<double>(m)) +
                     0.1 * rng.normal();
      }
      if (nan_cell_rate > 0.0 && rng.uniform() < nan_cell_rate) {
        rows[t][m] = kNaN;
      }
    }
  }
  return rows;
}

StreamIngestConfig small_window_config() {
  StreamIngestConfig cfg;
  cfg.window_length = 16;
  cfg.stride = 8;
  cfg.preprocess.trim_head = 2;
  cfg.preprocess.trim_tail = 2;
  return cfg;
}

WireClientConfig client_config(std::uint32_t metric_count) {
  WireClientConfig cfg;
  cfg.node = 0;
  cfg.metric_count = metric_count;
  cfg.reconnect.seed = 7;
  cfg.reconnect.initial_delay_ms = 1.0;
  cfg.reconnect.max_delay_ms = 8.0;
  cfg.reconnect.max_attempts = 1'000'000;
  return cfg;
}

// ---------------------------------------------------------- frame codec ---

bool frames_equal(const Frame& a, const Frame& b) {
  if (frame_type(a) != frame_type(b)) return false;
  const std::vector<std::uint8_t> ea = encode_frame(a);
  const std::vector<std::uint8_t> eb = encode_frame(b);
  return ea == eb;  // encoding is canonical, NaN bit patterns included
}

TEST(WireFrame, RoundTripsEveryType) {
  RowFrame row;
  row.node = 3;
  row.wire_index = 41;
  row.seq = 99;
  row.timestamp = 1723.25;
  row.values = {1.5, -0.0, kNaN, std::numeric_limits<double>::infinity(),
                -2.25e300};
  const std::vector<Frame> originals = {
      HelloFrame{kWireVersion, 3, 5},
      HelloAckFrame{3, 17},
      row,
      AckFrame{3, 42},
      HeartbeatFrame{1234567},
  };

  std::vector<std::uint8_t> stream;
  for (const Frame& f : originals) append_frame(stream, f);

  FrameDecoder decoder;
  decoder.feed(stream);
  for (const Frame& expected : originals) {
    Frame got;
    ASSERT_EQ(decoder.next(got), FrameDecoder::State::FrameReady);
    EXPECT_TRUE(frames_equal(got, expected));
  }
  Frame tail;
  EXPECT_EQ(decoder.next(tail), FrameDecoder::State::NeedMore);
  EXPECT_FALSE(decoder.mid_frame());

  // Spot-check the row's doubles survive bit-exactly (NaN included).
  std::vector<std::uint8_t> row_bytes = encode_frame(row);
  FrameDecoder rd;
  rd.feed(row_bytes);
  Frame decoded;
  ASSERT_EQ(rd.next(decoded), FrameDecoder::State::FrameReady);
  const auto& got_row = std::get<RowFrame>(decoded);
  ASSERT_EQ(got_row.values.size(), row.values.size());
  for (std::size_t i = 0; i < row.values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got_row.values[i]),
              std::bit_cast<std::uint64_t>(row.values[i]));
  }
  EXPECT_EQ(got_row.wire_index, row.wire_index);
  EXPECT_EQ(got_row.seq, row.seq);
  EXPECT_EQ(got_row.timestamp, row.timestamp);
}

std::vector<std::uint8_t> sample_stream(std::vector<Frame>* out_frames) {
  std::vector<Frame> frames;
  frames.push_back(HelloFrame{kWireVersion, 1, 3});
  frames.push_back(HelloAckFrame{1, 0});
  for (std::uint64_t i = 0; i < 4; ++i) {
    RowFrame row;
    row.node = 1;
    row.wire_index = i;
    row.seq = 100 + i;
    row.timestamp = 0.5 * static_cast<double>(i);
    row.values = {static_cast<double>(i), -1.0, kNaN};
    frames.push_back(row);
  }
  frames.push_back(AckFrame{1, 4});
  frames.push_back(HeartbeatFrame{9});
  std::vector<std::uint8_t> stream;
  for (const Frame& f : frames) append_frame(stream, f);
  if (out_frames) *out_frames = std::move(frames);
  return stream;
}

TEST(WireFrame, DecodesIdenticallyAcrossEveryByteBoundarySplit) {
  std::vector<Frame> originals;
  const std::vector<std::uint8_t> stream = sample_stream(&originals);
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(std::span<const std::uint8_t>(stream.data(), cut));
    std::vector<Frame> got;
    Frame f;
    while (decoder.next(f) == FrameDecoder::State::FrameReady) {
      got.push_back(f);
    }
    decoder.feed(std::span<const std::uint8_t>(stream.data() + cut,
                                               stream.size() - cut));
    while (decoder.next(f) == FrameDecoder::State::FrameReady) {
      got.push_back(f);
    }
    ASSERT_FALSE(decoder.failed()) << "split at " << cut;
    ASSERT_EQ(got.size(), originals.size()) << "split at " << cut;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(frames_equal(got[i], originals[i])) << "split at " << cut;
    }
    EXPECT_FALSE(decoder.mid_frame());
  }
}

// The fuzz sweep: every single-bit flip of a valid stream, fed in seeded
// random slices, must yield a clean prefix of the original frames followed
// by either a typed error or a truncated tail (decoder waiting for bytes
// that will never come) — never a crash, an over-read (ASan-checked), or a
// frame that was not in the clean stream's prefix.
TEST(WireFrame, EveryBitFlipYieldsTypedErrorOrCleanPrefix) {
  std::vector<Frame> originals;
  const std::vector<std::uint8_t> stream = sample_stream(&originals);
  Rng rng(2024);
  for (std::size_t byte = 0; byte < stream.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = stream;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);

      FrameDecoder decoder;
      std::vector<Frame> got;
      std::size_t at = 0;
      bool errored = false;
      while (at < flipped.size() && !errored) {
        const std::size_t take =
            std::min(flipped.size() - at, 1 + rng.uniform_index(23));
        decoder.feed(
            std::span<const std::uint8_t>(flipped.data() + at, take));
        at += take;
        Frame f;
        while (true) {
          const FrameDecoder::State s = decoder.next(f);
          if (s == FrameDecoder::State::FrameReady) {
            got.push_back(f);
            continue;
          }
          errored = (s == FrameDecoder::State::Error);
          break;
        }
      }

      // A flipped bit is never silently absorbed: the CRC covers every
      // header byte past the magic and the whole payload, and the magic
      // bytes gate on themselves.
      ASSERT_LT(got.size(), originals.size())
          << "byte " << byte << " bit " << bit;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(frames_equal(got[i], originals[i]))
            << "byte " << byte << " bit " << bit << " frame " << i;
      }
      if (errored) {
        EXPECT_NE(decoder.error(), DecodeError::None);
      } else {
        // Length-field flips can leave the decoder waiting for a longer
        // frame than the stream holds: a truncation, detectable as
        // mid_frame at EOF.
        EXPECT_TRUE(decoder.mid_frame())
            << "byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(WireFrame, OversizedLengthIsTypedNotAllocated) {
  std::vector<std::uint8_t> stream = encode_frame(HeartbeatFrame{1});
  // Rewrite payload_len to 256 MiB and fix nothing else: the decoder must
  // refuse on the bound before buffering, not attempt the allocation.
  stream[8] = 0;
  stream[9] = 0;
  stream[10] = 0;
  stream[11] = 0x10;
  FrameDecoder decoder;
  decoder.feed(stream);
  Frame f;
  EXPECT_EQ(decoder.next(f), FrameDecoder::State::Error);
  EXPECT_EQ(decoder.error(), DecodeError::Oversized);
  // Sticky: feeding more does not resurrect the stream.
  decoder.feed(stream);
  EXPECT_EQ(decoder.next(f), FrameDecoder::State::Error);
}

TEST(WireFrame, BadMagicAndBadVersionAreDistinguished) {
  {
    std::vector<std::uint8_t> stream = encode_frame(HeartbeatFrame{1});
    stream[0] = 'X';
    FrameDecoder decoder;
    decoder.feed(stream);
    Frame f;
    EXPECT_EQ(decoder.next(f), FrameDecoder::State::Error);
    EXPECT_EQ(decoder.error(), DecodeError::BadMagic);
  }
  {
    std::vector<std::uint8_t> stream = encode_frame(HeartbeatFrame{1});
    stream[4] = kWireVersion + 1;  // CRC now also wrong, version checked first
    FrameDecoder decoder;
    decoder.feed(stream);
    Frame f;
    EXPECT_EQ(decoder.next(f), FrameDecoder::State::Error);
    EXPECT_EQ(decoder.error(), DecodeError::BadVersion);
  }
}

// ------------------------------------------------- loopback end-to-end ---

// Records every diagnosis request so tests can assert the server handed
// windows onward without training a real model.
class RecordingDiagnoser : public Diagnoser {
 public:
  DiagnosisResult diagnose(const DiagnoseRequest& request) override {
    ++calls_;
    DiagnosisResult r;
    r.status = RequestStatus::Ok;
    r.diagnosis.label = static_cast<int>(request.window->rows());
    r.diagnosis.confidence = 1.0;
    r.diagnosis.probs = {1.0};
    return r;
  }
  std::uint64_t calls() const noexcept { return calls_; }

 private:
  std::uint64_t calls_ = 0;
};

struct LoopbackRig {
  MetricRegistry registry = test_registry();
  StreamIngestConfig stream_cfg = small_window_config();
  LoopbackHub hub;
  StreamIngestor ingestor{MetricRegistry(test_registry()), stream_cfg};
  // In-process reference fed the identical rows.
  StreamIngestor reference{MetricRegistry(test_registry()), stream_cfg};
};

// Drives client and server on a shared simulated clock until the client is
// idle (everything acked) or `max_steps` elapse.
double drive_until_idle(WireClient& client, IngestServer& server,
                        double now_ms, std::size_t max_steps = 20'000,
                        double step_ms = 1.0) {
  for (std::size_t i = 0; i < max_steps; ++i) {
    client.step(now_ms);
    server.poll_once(now_ms);
    client.step(now_ms);  // see the acks the server just wrote
    if (client.idle()) break;
    now_ms += step_ms;
  }
  return now_ms;
}

TEST(IngestServerLoopback, StreamsBitIdenticallyToInProcessPush) {
  LoopbackRig rig;
  RecordingDiagnoser diagnoser;
  IngestServerConfig server_cfg;
  auto server = std::make_unique<IngestServer>(
      rig.hub.make_listener(), rig.ingestor, server_cfg, &diagnoser);

  WireClient client([&] { return rig.hub.connect(); },
                    client_config(static_cast<std::uint32_t>(
                        rig.registry.size())));

  const auto rows = make_rows(rig.registry, 120, 11, /*nan_cell_rate=*/0.02);
  std::vector<TriggeredWindow> reference_windows;
  double now = 0.0;
  for (std::size_t t = 0; t < rows.size(); ++t) {
    for (TriggeredWindow& w : rig.reference.push(0, t, rows[t])) {
      reference_windows.push_back(std::move(w));
    }
    ASSERT_TRUE(client.offer(t, static_cast<double>(t), rows[t]));
    client.step(now);
    server->poll_once(now);
    now += 1.0;
  }
  drive_until_idle(client, *server, now);
  ASSERT_TRUE(client.idle());

  // Conservation: every offered row ingested, nothing shed, nothing lost.
  EXPECT_EQ(server->watermark(0), rows.size());
  EXPECT_EQ(server->wire_stats().rows_ingested, rows.size());
  EXPECT_EQ(server->wire_stats().rows_rejected, 0u);
  EXPECT_EQ(client.stats().rows_acked, rows.size());

  // The wire added nothing and lost nothing: stats and windows match the
  // in-process reference bit for bit.
  const IngestStats wire_side = rig.ingestor.stats(0);
  const IngestStats in_proc = rig.reference.stats(0);
  EXPECT_EQ(wire_side.accepted, in_proc.accepted);
  EXPECT_EQ(wire_side.windows_emitted, in_proc.windows_emitted);

  const std::vector<ServedWindow> served = server->take_served();
  ASSERT_EQ(served.size(), reference_windows.size());
  EXPECT_EQ(diagnoser.calls(), served.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    const TriggeredWindow& a = served[i].window;
    const TriggeredWindow& b = reference_windows[i];
    EXPECT_EQ(a.start_seq, b.start_seq);
    ASSERT_EQ(a.features.size(), b.features.size());
    for (std::size_t k = 0; k < a.features.size(); ++k) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.features[k]),
                std::bit_cast<std::uint64_t>(b.features[k]))
          << "window " << i << " feature " << k;
    }
    ASSERT_EQ(a.raw.rows(), b.raw.rows());
    for (std::size_t r = 0; r < a.raw.rows(); ++r) {
      for (std::size_t c = 0; c < a.raw.cols(); ++c) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a.raw.row(r)[c]),
                  std::bit_cast<std::uint64_t>(b.raw.row(r)[c]));
      }
    }
    EXPECT_TRUE(served[i].diagnosed);
    EXPECT_TRUE(served[i].result.ok());
  }
}

TEST(IngestServerLoopback, OutOfOrderFeedPassesThroughToIngestorClassifiers) {
  // The wire layer must not reorder/dedup telemetry seq: send seqs with a
  // gap, a repair, and a duplicate; the StreamIngestor sees them verbatim.
  LoopbackRig rig;
  auto server = std::make_unique<IngestServer>(rig.hub.make_listener(),
                                               rig.ingestor);
  WireClient client([&] { return rig.hub.connect(); },
                    client_config(static_cast<std::uint32_t>(
                        rig.registry.size())));
  const auto rows = make_rows(rig.registry, 12, 5);
  const std::vector<std::uint64_t> seqs = {0, 1, 3, 2, 2, 4, 5,
                                           6, 7, 8, 9, 10};
  for (std::size_t t = 0; t < seqs.size(); ++t) {
    rig.reference.push(0, seqs[t], rows[t]);
    ASSERT_TRUE(client.offer(seqs[t], 0.0, rows[t]));
  }
  drive_until_idle(client, *server, 0.0);
  const IngestStats wire_side = rig.ingestor.stats(0);
  const IngestStats in_proc = rig.reference.stats(0);
  EXPECT_EQ(wire_side.accepted, in_proc.accepted);
  EXPECT_EQ(wire_side.duplicates, in_proc.duplicates);
  EXPECT_EQ(wire_side.reordered, in_proc.reordered);
  EXPECT_GT(wire_side.duplicates, 0u);
  EXPECT_GT(wire_side.reordered, 0u);
}

TEST(IngestServerLoopback, ClientReconnectResumesWithoutDoubleIngest) {
  LoopbackRig rig;
  auto server = std::make_unique<IngestServer>(rig.hub.make_listener(),
                                               rig.ingestor);
  WireClient client([&] { return rig.hub.connect(); },
                    client_config(static_cast<std::uint32_t>(
                        rig.registry.size())));
  const auto rows = make_rows(rig.registry, 80, 21);
  double now = 0.0;
  for (std::size_t t = 0; t < 40; ++t) {
    ASSERT_TRUE(client.offer(t, 0.0, rows[t]));
  }
  now = drive_until_idle(client, *server, now);
  const std::uint64_t connects_before = client.stats().connects;

  // Forced mid-stream disconnect with rows in flight.
  for (std::size_t t = 40; t < 80; ++t) {
    ASSERT_TRUE(client.offer(t, 0.0, rows[t]));
  }
  client.step(now);
  client.disconnect();
  now = drive_until_idle(client, *server, now);
  ASSERT_TRUE(client.idle());
  EXPECT_GT(client.stats().connects, connects_before);

  // Exactly-once: 80 rows offered, 80 ingested, zero duplicate ingests.
  EXPECT_EQ(server->watermark(0), 80u);
  EXPECT_EQ(server->wire_stats().rows_ingested, 80u);
  EXPECT_EQ(rig.ingestor.stats(0).accepted, 80u);
  EXPECT_EQ(rig.ingestor.stats(0).duplicates, 0u);
}

TEST(IngestServerLoopback, ServerRestartResumesFromSnapshot) {
  LoopbackRig rig;
  auto server = std::make_unique<IngestServer>(rig.hub.make_listener(),
                                               rig.ingestor);
  WireClient client([&] { return rig.hub.connect(); },
                    client_config(static_cast<std::uint32_t>(
                        rig.registry.size())));
  const auto rows = make_rows(rig.registry, 90, 31);
  double now = 0.0;
  for (std::size_t t = 0; t < 45; ++t) {
    ASSERT_TRUE(client.offer(t, 0.0, rows[t]));
  }
  now = drive_until_idle(client, *server, now);
  ASSERT_TRUE(client.idle());

  // Kill the server mid-run with unacked rows in flight; while it is down
  // the client's reconnect attempts fail (connection refused).
  for (std::size_t t = 45; t < 90; ++t) {
    ASSERT_TRUE(client.offer(t, 0.0, rows[t]));
  }
  const IngestServerSnapshot snap = server->snapshot();
  const WireServerStats first_stats = server->wire_stats();
  server->close();
  server.reset();
  for (int i = 0; i < 20; ++i) {
    client.step(now);
    now += 2.0;
  }
  EXPECT_FALSE(client.connected());
  EXPECT_GT(client.stats().connect_failures, 0u);

  // Next incarnation: same ingestor, watermark resumed from the snapshot.
  auto server2 = std::make_unique<IngestServer>(rig.hub.make_listener(),
                                                rig.ingestor, snap);
  now = drive_until_idle(client, *server2, now);
  ASSERT_TRUE(client.idle());

  EXPECT_EQ(server2->watermark(0), 90u);
  EXPECT_EQ(first_stats.rows_ingested +
                server2->wire_stats().rows_ingested,
            90u);
  EXPECT_EQ(rig.ingestor.stats(0).accepted, 90u);
  EXPECT_EQ(rig.ingestor.stats(0).duplicates, 0u);
}

TEST(IngestServerLoopback, BackpressureShedsTypedAndConservesRows) {
  LoopbackRig rig;
  IngestServerConfig server_cfg;
  server_cfg.node_rows_per_poll = 3;  // tiny budget: most of a burst sheds
  auto server = std::make_unique<IngestServer>(rig.hub.make_listener(),
                                               rig.ingestor, server_cfg);
  WireClientConfig ccfg =
      client_config(static_cast<std::uint32_t>(rig.registry.size()));
  ccfg.max_rows_per_step = 500;  // deliver the whole burst in one poll
  WireClient client([&] { return rig.hub.connect(); }, ccfg);

  const auto rows = make_rows(rig.registry, 200, 41);
  for (std::size_t t = 0; t < rows.size(); ++t) {
    ASSERT_TRUE(client.offer(t, 0.0, rows[t]));
  }
  // Few polls: each disposes the full backlog (3 ingested, rest shed).
  drive_until_idle(client, *server, 0.0, 50);
  ASSERT_TRUE(client.idle());

  const IngestStats stats = server->stats(0);
  EXPECT_GT(stats.rejected_backpressure, 0u);
  EXPECT_EQ(server->wire_stats().rows_rejected, stats.rejected_backpressure);
  // Conservation: watermark == ingested + typed-shed, nothing vanished.
  EXPECT_EQ(server->watermark(0),
            server->wire_stats().rows_ingested + stats.rejected_backpressure);
  EXPECT_EQ(server->watermark(0), rows.size());
  // Shed rows were acked, not retransmitted forever.
  EXPECT_EQ(client.stats().rows_acked, rows.size());
}

TEST(IngestServerLoopback, GarbageBytesAreTypedDecodeErrorNotDeath) {
  LoopbackRig rig;
  auto server = std::make_unique<IngestServer>(rig.hub.make_listener(),
                                               rig.ingestor);
  // A raw peer that speaks garbage straight onto the wire.
  auto raw = rig.hub.connect();
  ASSERT_NE(raw, nullptr);
  const std::string garbage = "GET / HTTP/1.1\r\nHost: not-a-frame\r\n\r\n";
  std::vector<std::uint8_t> bytes(garbage.begin(), garbage.end());
  raw->write_some(bytes);
  server->poll_once(0.0);
  server->poll_once(1.0);
  EXPECT_EQ(server->wire_stats().decode_errors, 1u);
  EXPECT_EQ(server->connection_count(), 0u);

  // The server survives and serves the next well-behaved client.
  WireClient client([&] { return rig.hub.connect(); },
                    client_config(static_cast<std::uint32_t>(
                        rig.registry.size())));
  const auto rows = make_rows(rig.registry, 10, 3);
  for (std::size_t t = 0; t < rows.size(); ++t) {
    ASSERT_TRUE(client.offer(t, 0.0, rows[t]));
  }
  drive_until_idle(client, *server, 2.0);
  EXPECT_EQ(server->wire_stats().rows_ingested, rows.size());
}

TEST(IngestServerLoopback, CorruptedFrameClosesOnlyThatConnection) {
  LoopbackRig rig;
  auto server = std::make_unique<IngestServer>(rig.hub.make_listener(),
                                               rig.ingestor);
  auto raw = rig.hub.connect();
  ASSERT_NE(raw, nullptr);
  std::vector<std::uint8_t> hello =
      encode_frame(HelloFrame{kWireVersion, 0,
                              static_cast<std::uint32_t>(rig.registry.size())});
  raw->write_some(hello);
  server->poll_once(0.0);
  ASSERT_EQ(server->connection_count(), 1u);

  RowFrame row;
  row.node = 0;
  row.wire_index = 0;
  row.seq = 0;
  row.values.assign(rig.registry.size(), 1.0);
  std::vector<std::uint8_t> frame = encode_frame(row);
  frame[kWireHeaderSize + 2] ^= 0x40;  // one flipped payload bit
  raw->write_some(frame);
  server->poll_once(1.0);
  EXPECT_EQ(server->wire_stats().decode_errors, 1u);
  EXPECT_EQ(server->stats(0).decode_errors, 1u);
  EXPECT_EQ(server->connection_count(), 0u);
  EXPECT_EQ(server->wire_stats().rows_ingested, 0u);  // nothing half-applied
}

TEST(IngestServerLoopback, SilentTornFramePeerIsTimedOut) {
  LoopbackRig rig;
  IngestServerConfig server_cfg;
  server_cfg.peer_timeout_ms = 50.0;
  auto server = std::make_unique<IngestServer>(rig.hub.make_listener(),
                                               rig.ingestor, server_cfg);
  auto raw = rig.hub.connect();
  ASSERT_NE(raw, nullptr);
  // Half a header, then silence: the classic torn-frame stall.
  const std::vector<std::uint8_t> half = {'A', 'L', 'B', 'W', 1, 3, 0};
  raw->write_some(half);
  server->poll_once(0.0);
  ASSERT_EQ(server->connection_count(), 1u);
  server->poll_once(49.0);
  EXPECT_EQ(server->connection_count(), 1u);
  server->poll_once(51.0);
  EXPECT_EQ(server->connection_count(), 0u);
  EXPECT_EQ(server->wire_stats().timeouts, 1u);
}

TEST(IngestServerLoopback, NewHelloSupersedesStaleConnection) {
  LoopbackRig rig;
  auto server = std::make_unique<IngestServer>(rig.hub.make_listener(),
                                               rig.ingestor);
  const auto metric_count =
      static_cast<std::uint32_t>(rig.registry.size());
  WireClient stale([&] { return rig.hub.connect(); },
                   client_config(metric_count));
  stale.step(0.0);
  server->poll_once(0.0);
  stale.step(1.0);
  ASSERT_TRUE(stale.connected());

  // The "same" collector reconnects (say after a NAT rebind) while the old
  // socket is still open: the new connection must win immediately.
  WireClient fresh([&] { return rig.hub.connect(); },
                   client_config(metric_count));
  fresh.step(2.0);
  server->poll_once(2.0);
  fresh.step(3.0);
  ASSERT_TRUE(fresh.connected());
  EXPECT_EQ(server->wire_stats().superseded, 1u);
  EXPECT_EQ(server->connection_count(), 1u);

  // The stale client notices on its next step (eof) and reconnects later.
  stale.step(4.0);
  EXPECT_FALSE(stale.connected());
}

TEST(IngestServerLoopback, ClientTimesOutSilentServerAndRetries) {
  LoopbackRig rig;
  auto listener = rig.hub.make_listener();
  WireClientConfig ccfg =
      client_config(static_cast<std::uint32_t>(rig.registry.size()));
  ccfg.heartbeat_timeout_ms = 40.0;
  WireClient client([&] { return rig.hub.connect(); }, ccfg);

  // Accept the connection but never answer the Hello.
  client.step(0.0);
  auto server_end = listener->accept_one();
  ASSERT_NE(server_end, nullptr);
  for (double now = 1.0; now < 200.0; now += 1.0) client.step(now);
  EXPECT_GT(client.stats().disconnects, 0u);
  EXPECT_GT(client.stats().connects, 1u);  // it kept trying
}

TEST(IngestServerLoopback, ChaosDuplicatedFramesNeverDoubleIngest) {
  LoopbackRig rig;
  auto server = std::make_unique<IngestServer>(rig.hub.make_listener(),
                                               rig.ingestor);
  WireChaosConfig chaos_cfg;
  chaos_cfg.seed = 99;
  chaos_cfg.duplicate_rate = 0.5;
  chaos_cfg.partial_writes = true;
  chaos_cfg.grace_frames = 1;  // let the Hello through untouched
  WireChaos chaos(chaos_cfg);
  WireClient client(chaos.wrap([&] { return rig.hub.connect(); }),
                    client_config(static_cast<std::uint32_t>(
                        rig.registry.size())));

  const auto rows = make_rows(rig.registry, 60, 51);
  double now = 0.0;
  for (std::size_t t = 0; t < rows.size(); ++t) {
    ASSERT_TRUE(client.offer(t, 0.0, rows[t]));
    chaos.set_now(now);
    client.step(now);
    server->poll_once(now);
    now += 1.0;
  }
  for (std::size_t i = 0; i < 2000 && !client.idle(); ++i) {
    chaos.set_now(now);
    client.step(now);
    server->poll_once(now);
    client.step(now);
    now += 1.0;
  }
  ASSERT_TRUE(client.idle());
  EXPECT_GT(chaos.stats().duplicated, 0u);
  EXPECT_GT(server->wire_stats().duplicates_dropped, 0u);
  EXPECT_EQ(server->wire_stats().rows_ingested, rows.size());
  EXPECT_EQ(rig.ingestor.stats(0).accepted, rows.size());
  EXPECT_EQ(rig.ingestor.stats(0).duplicates, 0u);
}

// ------------------------------------------------------------ stats CSV ---

TEST(IngestStatsCsv, RoundTripsThroughRfc4180Parser) {
  IngestStats a;
  a.accepted = 100;
  a.duplicates = 3;
  a.reordered = 2;
  a.late_dropped = 1;
  a.missing_rows = 4;
  a.resets = 1;
  a.windows_emitted = 12;
  a.windows_dropped = 2;
  a.windows_recomputed = 1;
  a.windows_flushed = 3;
  a.rejected_backpressure = 7;
  a.decode_errors = 5;
  a.emit_seconds = 0.125;
  IngestStats b;
  b.accepted = 50;
  b.rejected_backpressure = 1;

  const std::vector<std::pair<std::string, IngestStats>> entries = {
      {"node=0,rack=\"r1\"", a},  // comma and quotes: the escaping test
      {"node=1", b},
  };
  const std::string path = "/tmp/alba_test_ingest_stats.csv";
  {
    std::ofstream out(path);
    write_ingest_stats_csv(
        out, std::span<const std::pair<std::string, IngestStats>>(entries));
  }
  const CsvTable table = read_csv(path);
  std::remove(path.c_str());

  ASSERT_EQ(table.rows.size(), 2u);
  ASSERT_EQ(table.header.size(), 14u);
  EXPECT_EQ(table.header[0], "label");
  EXPECT_EQ(table.header[11], "rejected_backpressure");
  EXPECT_EQ(table.header[12], "decode_errors");
  // The label with comma + quotes survives the round trip intact.
  EXPECT_EQ(table.rows[0][table.column_index("label")],
            "node=0,rack=\"r1\"");
  EXPECT_EQ(table.rows[0][table.column_index("accepted")], "100");
  EXPECT_EQ(table.rows[0][table.column_index("rejected_backpressure")], "7");
  EXPECT_EQ(table.rows[0][table.column_index("decode_errors")], "5");
  EXPECT_EQ(table.rows[1][table.column_index("accepted")], "50");
  EXPECT_EQ(table.rows[1][table.column_index("rejected_backpressure")], "1");
}

// ------------------------------------------------------------------ TCP ---

TEST(IngestServerTcp, SingleThreadNonblockingEndToEnd) {
  MetricRegistry registry = test_registry();
  StreamIngestor ingestor(MetricRegistry(test_registry()),
                          small_window_config());
  auto listener = TcpListener::bind_loopback();
  const std::uint16_t port = listener->port();
  IngestServer server(std::move(listener), ingestor);

  WireClient client([port] { return tcp_connect("127.0.0.1", port); },
                    client_config(static_cast<std::uint32_t>(
                        registry.size())));
  const auto rows = make_rows(registry, 64, 61);
  for (std::size_t t = 0; t < rows.size(); ++t) {
    ASSERT_TRUE(client.offer(t, 0.0, rows[t]));
  }
  const auto start = std::chrono::steady_clock::now();
  auto now_ms = [&] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  while (!client.idle() && now_ms() < 10'000.0) {
    client.step(now_ms());
    server.poll_once(now_ms());
  }
  ASSERT_TRUE(client.idle());
  EXPECT_EQ(server.wire_stats().rows_ingested, rows.size());
  EXPECT_EQ(ingestor.stats(0).accepted, rows.size());
}

TEST(IngestServerTcp, ThreadedClientAndServer) {
  MetricRegistry registry = test_registry();
  StreamIngestor ingestor(MetricRegistry(test_registry()),
                          small_window_config());
  auto listener = TcpListener::bind_loopback();
  const std::uint16_t port = listener->port();
  IngestServer server(std::move(listener), ingestor);

  constexpr std::size_t kRows = 256;
  std::atomic<bool> client_done{false};

  std::thread client_thread([&] {
    MetricRegistry creg = test_registry();
    WireClient client([port] { return tcp_connect("127.0.0.1", port); },
                      client_config(static_cast<std::uint32_t>(creg.size())));
    const auto rows = make_rows(creg, kRows, 71);
    const auto start = std::chrono::steady_clock::now();
    auto now_ms = [&] {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
    std::size_t offered = 0;
    while (!client.idle() || offered < kRows) {
      if (offered < kRows && client.offer(offered, 0.0, rows[offered])) {
        ++offered;
      }
      client.step(now_ms());
      if (now_ms() > 15'000.0) break;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    client_done.store(true);
  });

  const auto start = std::chrono::steady_clock::now();
  auto now_ms = [&] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  while (!client_done.load() && now_ms() < 20'000.0) {
    server.wait(5.0);
    server.poll_once(now_ms());
  }
  // Drain anything the client sent in its last instants.
  for (int i = 0; i < 10; ++i) server.poll_once(now_ms());
  client_thread.join();

  EXPECT_EQ(server.wire_stats().rows_ingested, kRows);
  EXPECT_EQ(ingestor.stats(0).accepted, kRows);
  EXPECT_EQ(ingestor.stats(0).duplicates, 0u);
}

}  // namespace
}  // namespace alba
