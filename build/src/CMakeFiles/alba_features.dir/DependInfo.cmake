
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/extractor.cpp" "src/CMakeFiles/alba_features.dir/features/extractor.cpp.o" "gcc" "src/CMakeFiles/alba_features.dir/features/extractor.cpp.o.d"
  "/root/repo/src/features/mvts.cpp" "src/CMakeFiles/alba_features.dir/features/mvts.cpp.o" "gcc" "src/CMakeFiles/alba_features.dir/features/mvts.cpp.o.d"
  "/root/repo/src/features/preprocessing.cpp" "src/CMakeFiles/alba_features.dir/features/preprocessing.cpp.o" "gcc" "src/CMakeFiles/alba_features.dir/features/preprocessing.cpp.o.d"
  "/root/repo/src/features/tsfresh.cpp" "src/CMakeFiles/alba_features.dir/features/tsfresh.cpp.o" "gcc" "src/CMakeFiles/alba_features.dir/features/tsfresh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alba_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_anomaly.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
