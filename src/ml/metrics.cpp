#include "ml/metrics.hpp"

#include "common/error.hpp"
#include "ml/classifier.hpp"

namespace alba {

Matrix confusion_matrix(std::span<const int> y_true,
                        std::span<const int> y_pred, int num_classes) {
  ALBA_CHECK(y_true.size() == y_pred.size());
  ALBA_CHECK(num_classes > 0);
  const auto k = static_cast<std::size_t>(num_classes);
  Matrix cm(k, k, 0.0);
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ALBA_CHECK(y_true[i] >= 0 && y_true[i] < num_classes)
        << "true label " << y_true[i] << " out of range";
    ALBA_CHECK(y_pred[i] >= 0 && y_pred[i] < num_classes)
        << "predicted label " << y_pred[i] << " out of range";
    cm(static_cast<std::size_t>(y_true[i]),
       static_cast<std::size_t>(y_pred[i])) += 1.0;
  }
  return cm;
}

ClassScores per_class_scores(const Matrix& confusion) {
  ALBA_CHECK(confusion.rows() == confusion.cols());
  const std::size_t k = confusion.rows();
  ClassScores s;
  s.precision.assign(k, 0.0);
  s.recall.assign(k, 0.0);
  s.f1.assign(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    const double tp = confusion(c, c);
    double pred_c = 0.0;
    double true_c = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      pred_c += confusion(j, c);
      true_c += confusion(c, j);
    }
    s.precision[c] = pred_c > 0.0 ? tp / pred_c : 0.0;
    s.recall[c] = true_c > 0.0 ? tp / true_c : 0.0;
    const double denom = s.precision[c] + s.recall[c];
    s.f1[c] = denom > 0.0 ? 2.0 * s.precision[c] * s.recall[c] / denom : 0.0;
  }
  return s;
}

double macro_f1(std::span<const int> y_true, std::span<const int> y_pred,
                int num_classes) {
  return evaluate(y_true, y_pred, num_classes).macro_f1;
}

double accuracy(std::span<const int> y_true, std::span<const int> y_pred) {
  ALBA_CHECK(y_true.size() == y_pred.size());
  ALBA_CHECK(!y_true.empty());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    correct += (y_true[i] == y_pred[i]) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(y_true.size());
}

double false_alarm_rate(std::span<const int> y_true,
                        std::span<const int> y_pred, int healthy_label) {
  ALBA_CHECK(y_true.size() == y_pred.size());
  std::size_t healthy = 0;
  std::size_t alarms = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == healthy_label) {
      ++healthy;
      if (y_pred[i] != healthy_label) ++alarms;
    }
  }
  return healthy > 0
             ? static_cast<double>(alarms) / static_cast<double>(healthy)
             : 0.0;
}

double anomaly_miss_rate(std::span<const int> y_true,
                         std::span<const int> y_pred, int healthy_label) {
  ALBA_CHECK(y_true.size() == y_pred.size());
  std::size_t anomalous = 0;
  std::size_t missed = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] != healthy_label) {
      ++anomalous;
      if (y_pred[i] == healthy_label) ++missed;
    }
  }
  return anomalous > 0
             ? static_cast<double>(missed) / static_cast<double>(anomalous)
             : 0.0;
}

EvalResult evaluate(std::span<const int> y_true, std::span<const int> y_pred,
                    int num_classes, int healthy_label) {
  const Matrix cm = confusion_matrix(y_true, y_pred, num_classes);
  const ClassScores scores = per_class_scores(cm);

  EvalResult r;
  r.per_class_f1 = scores.f1;

  // Macro-average only over classes present in the ground truth.
  double f1_sum = 0.0;
  std::size_t present = 0;
  double total = 0.0;
  double correct = 0.0;
  for (std::size_t c = 0; c < cm.rows(); ++c) {
    double true_c = 0.0;
    for (std::size_t j = 0; j < cm.cols(); ++j) true_c += cm(c, j);
    if (true_c > 0.0) {
      f1_sum += scores.f1[c];
      ++present;
    }
    total += true_c;
    correct += cm(c, c);
  }
  ALBA_CHECK(present > 0) << "no classes present in y_true";
  r.macro_f1 = f1_sum / static_cast<double>(present);
  r.accuracy = total > 0.0 ? correct / total : 0.0;
  r.false_alarm_rate = false_alarm_rate(y_true, y_pred, healthy_label);
  r.anomaly_miss_rate = anomaly_miss_rate(y_true, y_pred, healthy_label);
  return r;
}

}  // namespace alba
