// Random forest: bagged CART trees with sqrt-feature subsampling, class
// probabilities = average of per-tree leaf distributions (sklearn's
// soft-voting convention). The paper's best model on both systems
// (Table IV: n_estimators 20/200, max_depth 8, criterion entropy).
#pragma once

#include "ml/decision_tree.hpp"

namespace alba {

struct ForestConfig {
  int num_classes = 2;
  int n_estimators = 100;
  int max_depth = 8;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  int max_features = -1;  // -1 = sqrt(F), the RF default
  SplitCriterion criterion = SplitCriterion::Entropy;
  SplitAlgo split_algo = SplitAlgo::Exact;
  bool bootstrap = true;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(ForestConfig config, std::uint64_t seed = 0);

  void fit(const Matrix& x, std::span<const int> y) override;
  Matrix predict_proba(const Matrix& x) const override;
  Matrix predict_proba_reference(const Matrix& x) const override;
  void predict_proba_rows(const Matrix& x, std::span<const std::size_t> rows,
                          Matrix& out) const override;

  std::unique_ptr<Classifier> clone() const override;
  std::unique_ptr<Classifier> clone_reseeded(std::uint64_t seed) const override {
    return std::make_unique<RandomForest>(config_, seed);
  }
  std::string name() const override { return "random_forest"; }
  int num_classes() const noexcept override { return config_.num_classes; }
  bool fitted() const noexcept override { return !trees_.empty(); }

  const ForestConfig& config() const noexcept { return config_; }

  /// Mean-decrease-in-impurity importances averaged over the trees,
  /// normalized to sum 1 — the "most important metrics" signal the paper's
  /// planned annotator dashboard would surface.
  std::vector<double> feature_importances(std::size_t num_features) const;

  const std::vector<DecisionTree>& trees() const noexcept { return trees_; }
  std::vector<DecisionTree>& mutable_trees() noexcept { return trees_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Rebuilds the compiled flat-SoA ensemble predictor from the current
  /// trees. fit() calls this itself; callers that mutate the forest through
  /// mutable_trees() (the serializer's loader) must call it afterwards.
  void recompile();

  /// Compiled ensemble predictor; null before fit or when compilation
  /// fell back to the reference traversal.
  const std::shared_ptr<const CompiledTreePredictor>& compiled()
      const noexcept {
    return compiled_;
  }

 private:
  ForestConfig config_;
  std::uint64_t seed_;
  std::vector<DecisionTree> trees_;
  std::shared_ptr<const CompiledTreePredictor> compiled_;
};

}  // namespace alba
