// Tests for descriptive statistics, with hand-computed references and
// parameterized property sweeps over random series.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/descriptive.hpp"

namespace alba::stats {
namespace {

const std::vector<double> kSimple{1.0, 2.0, 3.0, 4.0, 5.0};

TEST(Descriptive, BasicMoments) {
  EXPECT_DOUBLE_EQ(sum(kSimple), 15.0);
  EXPECT_DOUBLE_EQ(mean(kSimple), 3.0);
  EXPECT_DOUBLE_EQ(variance(kSimple), 2.0);
  EXPECT_DOUBLE_EQ(sample_variance(kSimple), 2.5);
  EXPECT_NEAR(stddev(kSimple), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(minimum(kSimple), 1.0);
  EXPECT_DOUBLE_EQ(maximum(kSimple), 5.0);
  EXPECT_DOUBLE_EQ(range(kSimple), 4.0);
}

TEST(Descriptive, EmptySeriesYieldsNaN) {
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(mean(empty)));
  EXPECT_TRUE(std::isnan(variance(empty)));
  EXPECT_TRUE(std::isnan(minimum(empty)));
  EXPECT_TRUE(std::isnan(median(empty)));
}

TEST(Descriptive, MedianAndQuantiles) {
  EXPECT_DOUBLE_EQ(median(kSimple), 3.0);
  const std::vector<double> even{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
  EXPECT_DOUBLE_EQ(quantile(kSimple, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(kSimple, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(kSimple, 0.25), 2.0);
  // numpy.percentile linear interpolation convention
  const std::vector<double> two{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(two, 0.3), 3.0);
}

TEST(Descriptive, SkewnessSignsMatchShape) {
  const std::vector<double> right{1, 1, 1, 1, 10};
  const std::vector<double> left{10, 10, 10, 10, 1};
  EXPECT_GT(skewness(right), 0.5);
  EXPECT_LT(skewness(left), -0.5);
  const std::vector<double> sym{1, 2, 3, 4, 5};
  EXPECT_NEAR(skewness(sym), 0.0, 1e-12);
}

TEST(Descriptive, KurtosisOfUniformIsNegative) {
  std::vector<double> u;
  for (int i = 0; i < 1000; ++i) u.push_back(static_cast<double>(i));
  EXPECT_NEAR(kurtosis(u), -1.2, 0.05);  // exact for continuous uniform
}

TEST(Descriptive, ConstantSeriesShapeStatsAreNaN) {
  const std::vector<double> c{2.0, 2.0, 2.0, 2.0, 2.0};
  EXPECT_TRUE(std::isnan(skewness(c)));
  EXPECT_TRUE(std::isnan(kurtosis(c)));
}

TEST(Descriptive, VariationCoefficient) {
  EXPECT_NEAR(variation_coefficient(kSimple), std::sqrt(2.0) / 3.0, 1e-12);
  const std::vector<double> zero_mean{-1.0, 1.0};
  EXPECT_TRUE(std::isnan(variation_coefficient(zero_mean)));
}

TEST(Descriptive, EnergyAndRms) {
  EXPECT_DOUBLE_EQ(abs_energy(kSimple), 55.0);
  EXPECT_NEAR(root_mean_square(kSimple), std::sqrt(11.0), 1e-12);
}

TEST(Descriptive, ChangeStatistics) {
  const std::vector<double> x{1.0, 3.0, 2.0, 5.0};
  EXPECT_NEAR(mean_abs_change(x), (2.0 + 1.0 + 3.0) / 3.0, 1e-12);
  EXPECT_NEAR(mean_change(x), (5.0 - 1.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(absolute_sum_of_changes(x), 6.0);
}

TEST(Descriptive, MeanSecondDerivative) {
  // Linear series: second derivative 0.
  EXPECT_NEAR(mean_second_derivative_central(kSimple), 0.0, 1e-12);
  // Quadratic i^2: second difference is constant 2 → /2 = 1.
  const std::vector<double> q{0, 1, 4, 9, 16};
  EXPECT_NEAR(mean_second_derivative_central(q), 1.0, 1e-12);
}

TEST(Descriptive, CountsAboveBelowMean) {
  const std::vector<double> x{0.0, 0.0, 10.0};  // mean 3.33
  EXPECT_EQ(count_above_mean(x), 1u);
  EXPECT_EQ(count_below_mean(x), 2u);
}

TEST(Descriptive, LocationsOfExtremes) {
  const std::vector<double> x{1.0, 5.0, 5.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(first_location_of_maximum(x), 0.2);
  EXPECT_DOUBLE_EQ(last_location_of_maximum(x), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(first_location_of_minimum(x), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(last_location_of_minimum(x), 1.0);
}

TEST(Descriptive, LongestRuns) {
  const std::vector<double> x{1, 2, 3, 2, 3, 4, 5, 1};
  EXPECT_EQ(longest_strictly_increasing_run(x), 3u);  // 2,3,4,5 = 3 steps
  EXPECT_EQ(longest_strictly_decreasing_run(x), 1u);
  const std::vector<double> y{0, 0, 5, 5, 5, 0};  // mean 2.5
  EXPECT_EQ(longest_run_above_mean(y), 3u);
  EXPECT_EQ(longest_run_below_mean(y), 2u);
}

TEST(Descriptive, NumberOfPeaks) {
  const std::vector<double> x{0, 1, 0, 2, 0, 3, 0};
  EXPECT_EQ(number_of_peaks(x, 1), 3u);
  const std::vector<double> flat{1, 1, 1, 1, 1};
  EXPECT_EQ(number_of_peaks(flat, 1), 0u);
}

TEST(Descriptive, Crossings) {
  const std::vector<double> x{-1, 1, -1, 1};
  EXPECT_EQ(number_of_crossings(x, 0.0), 3u);
  EXPECT_EQ(number_of_crossings(x, 5.0), 0u);
}

TEST(Descriptive, RatioBeyondSigma) {
  std::vector<double> x(100, 0.0);
  x[0] = 100.0;  // one extreme outlier
  EXPECT_NEAR(ratio_beyond_r_sigma(x, 2.0), 0.01, 1e-12);
}

TEST(Descriptive, Duplicates) {
  EXPECT_TRUE(has_duplicate(std::vector<double>{1, 2, 1}));
  EXPECT_FALSE(has_duplicate(std::vector<double>{1, 2, 3}));
  EXPECT_TRUE(has_duplicate_max(std::vector<double>{3, 3, 1}));
  EXPECT_FALSE(has_duplicate_max(std::vector<double>{3, 2, 1}));
  EXPECT_TRUE(has_duplicate_min(std::vector<double>{0, 0, 1}));
}

TEST(Descriptive, ReoccurringValues) {
  const std::vector<double> x{1, 1, 2, 3, 3, 3, 4};
  EXPECT_DOUBLE_EQ(sum_of_reoccurring_values(x), 4.0);  // 1 + 3
  EXPECT_DOUBLE_EQ(percentage_of_reoccurring_datapoints(x), 0.5);  // 2 of 4
}

TEST(Descriptive, C3AndTimeReversal) {
  // A time-symmetric series has ~zero time reversal asymmetry.
  std::vector<double> sym;
  for (int i = 0; i < 50; ++i) sym.push_back(std::sin(0.3 * i));
  EXPECT_NEAR(time_reversal_asymmetry(sym, 1), 0.0, 0.05);
  // c3 of a constant-1 series is 1.
  const std::vector<double> ones(20, 1.0);
  EXPECT_DOUBLE_EQ(c3(ones, 2), 1.0);
}

TEST(Descriptive, CidCe) {
  const std::vector<double> smooth{1, 2, 3, 4, 5};
  std::vector<double> jagged{1, 5, 1, 5, 1};
  EXPECT_LT(cid_ce(smooth, false), cid_ce(jagged, false));
  const std::vector<double> constant(10, 3.0);
  EXPECT_DOUBLE_EQ(cid_ce(constant, true), 0.0);
}

TEST(Descriptive, LargeStdAndSymmetry) {
  const std::vector<double> x{0, 0, 0, 10};
  EXPECT_TRUE(large_standard_deviation(x, 0.2));
  EXPECT_FALSE(large_standard_deviation(x, 0.9));
  const std::vector<double> sym{1, 2, 3, 4, 5};
  EXPECT_TRUE(symmetry_looking(sym, 0.05));
}

// Property sweep over random series: invariants that must always hold.
class DescriptiveProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<double> make_series() {
    Rng rng(GetParam());
    std::vector<double> x(64);
    for (auto& v : x) v = rng.uniform(-10.0, 10.0);
    return x;
  }
};

TEST_P(DescriptiveProperty, OrderingInvariants) {
  const auto x = make_series();
  EXPECT_LE(minimum(x), median(x));
  EXPECT_LE(median(x), maximum(x));
  EXPECT_LE(quantile(x, 0.25), quantile(x, 0.75));
  EXPECT_GE(variance(x), 0.0);
  EXPECT_GE(abs_energy(x), 0.0);
}

TEST_P(DescriptiveProperty, CountsPartitionSeries) {
  const auto x = make_series();
  EXPECT_LE(count_above_mean(x) + count_below_mean(x), x.size());
  EXPECT_GE(count_above_mean(x) + count_below_mean(x), 1u);
}

TEST_P(DescriptiveProperty, ShiftInvariance) {
  auto x = make_series();
  const double var0 = variance(x);
  const double mac0 = mean_abs_change(x);
  for (auto& v : x) v += 100.0;
  EXPECT_NEAR(variance(x), var0, 1e-8);
  EXPECT_NEAR(mean_abs_change(x), mac0, 1e-8);
}

TEST_P(DescriptiveProperty, ScaleCovariance) {
  auto x = make_series();
  const double sd0 = stddev(x);
  for (auto& v : x) v *= 3.0;
  EXPECT_NEAR(stddev(x), 3.0 * sd0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DescriptiveProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace alba::stats
