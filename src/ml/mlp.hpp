// Multi-layer perceptron classifier: ReLU hidden layers, softmax output,
// cross-entropy loss, L2 penalty `alpha`, mini-batch Adam — the sklearn
// MLPClassifier configuration the paper grid-searches in Table IV
// (hidden_layer_sizes, alpha, max_iter).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "ml/classifier.hpp"

namespace alba {

struct MlpConfig {
  int num_classes = 2;
  std::vector<int> hidden_layers = {100};
  double alpha = 1e-4;        // L2 penalty
  int max_iter = 100;         // epochs
  int batch_size = 64;        // clamped to n
  double learning_rate = 1e-3;
};

class MlpClassifier final : public Classifier {
 public:
  explicit MlpClassifier(MlpConfig config, std::uint64_t seed = 0);

  void fit(const Matrix& x, std::span<const int> y) override;
  Matrix predict_proba(const Matrix& x) const override;
  void predict_proba_rows(const Matrix& x, std::span<const std::size_t> rows,
                          Matrix& out) const override;

  std::unique_ptr<Classifier> clone() const override;
  std::unique_ptr<Classifier> clone_reseeded(std::uint64_t seed) const override {
    return std::make_unique<MlpClassifier>(config_, seed);
  }
  std::string name() const override { return "mlp"; }
  int num_classes() const noexcept override { return config_.num_classes; }
  bool fitted() const noexcept override { return !weights_.empty(); }

  const MlpConfig& config() const noexcept { return config_; }
  std::uint64_t seed() const noexcept { return seed_; }
  /// Mean training cross-entropy after the final epoch.
  double final_loss() const noexcept { return final_loss_; }

  /// Serialization accessors.
  const std::vector<Matrix>& layer_weights() const noexcept { return weights_; }
  const std::vector<std::vector<double>>& layer_bias() const noexcept {
    return bias_;
  }
  void restore(std::vector<Matrix> weights,
               std::vector<std::vector<double>> bias);

 private:
  Matrix forward(const Matrix& x, std::vector<Matrix>* activations) const;

  MlpConfig config_;
  std::uint64_t seed_;
  std::vector<Matrix> weights_;            // layer l: (in × out)
  std::vector<std::vector<double>> bias_;  // layer l: (out)
  double final_loss_ = 0.0;
};

}  // namespace alba
