// Serving-path benchmark: end-to-end from an exported ModelBundle. Trains
// a small model, freezes it with export_model_bundle, reloads it into a
// DiagnosisService, and serves a stream of raw telemetry windows (with a
// repeated-window share to exercise the LRU cache), sweeping micro-batch
// size x thread count and reporting p50/p99 request latency, windows/sec,
// and cache hit rate per configuration.
//
// --smoke runs the CI gate instead of the sweep: serve 100 windows and
// assert nonzero throughput plus bit-identical agreement with the offline
// pipeline (extract_features -> project -> scale -> select -> predict).
//
// --chaos-smoke runs the resilience gate: a client burst against a small
// ServiceHost while the chaos harness injects slow and failing
// extractions, then forced overload, forced deadline misses, poisoned
// hot-reload pushes, and a drain. The gate fails if anything other than a
// typed RequestStatus comes back, if an Ok result missed its deadline or
// disagrees bit-for-bit with the clean pipeline, or if a failed reload
// leaves anything but the old bundle serving.
//
//   ./build/bench/bench_serving                 # the sweep
//   ./build/bench/bench_serving --smoke         # CI smoke, exit 1 on failure
//   ./build/bench/bench_serving --chaos-smoke   # CI resilience gate
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "alba.hpp"
#include "common/rng.hpp"
#include "ml/compiled_tree.hpp"
#include "ml/gbm.hpp"

using namespace alba;

namespace {

constexpr const char* kBundlePath = "/tmp/albadross_bench_bundle.bin";

struct Stream {
  std::vector<Sample> samples;   // aligned with windows (repeats duplicated)
  std::vector<Matrix> windows;
};

// A stream of per-node windows from fresh runs; every 4th window repeats an
// earlier one (a stalled collector / dashboard re-check) so the cache has
// something to do.
Stream make_stream(const RunGenerator& generator, std::size_t count,
                   std::uint64_t seed) {
  Stream stream;
  const auto num_apps = static_cast<int>(generator.apps().size());
  int run_id = 1000;
  while (stream.windows.size() < count) {
    RunSpec spec;
    spec.app_id = run_id % num_apps;
    spec.input_id = run_id % 2;
    spec.nodes = 2;
    const std::size_t variant = static_cast<std::size_t>(run_id) % 4;
    if (variant != 0) {
      spec.anomaly = kAnomalyTypes[variant - 1];
      spec.intensity = variant == 1 ? 0.5 : 1.0;
    }
    spec.run_id = run_id;
    spec.seed = seed + static_cast<std::uint64_t>(run_id);
    ++run_id;
    for (const Sample& s : generator.generate_run(spec)) {
      if (stream.windows.size() >= count) break;
      if (stream.windows.size() % 4 == 3 && stream.windows.size() > 4) {
        const std::size_t repeat = stream.windows.size() / 2;
        stream.samples.push_back(stream.samples[repeat]);
        stream.windows.push_back(stream.windows[repeat]);
        continue;
      }
      stream.samples.push_back(s);
      stream.windows.push_back(s.series);
    }
  }
  return stream;
}

// The offline reference: the exact training-harness pipeline over the same
// windows, ending in Classifier::predict_proba.
Matrix offline_probs(const Stream& stream, const RunGenerator& generator,
                     const DatasetConfig& cfg, const ModelBundle& bundle,
                     const PreparedSplit& prepared, const Classifier& model) {
  const auto extractor = make_extractor(cfg.extractor);
  const FeatureMatrix fm = extract_features(stream.samples,
                                            generator.registry(), *extractor,
                                            cfg.preprocess);
  Matrix x = select_features_by_name(fm, bundle.feature_names);
  prepared.scaler.transform(x);
  x = prepared.selector.transform(x);
  return model.predict_proba(x);
}

bool bits_equal(double a, double b) noexcept {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool same_diagnosis(const Diagnosis& got, const Diagnosis& want) {
  if (got.label != want.label) return false;
  if (got.probs.size() != want.probs.size()) return false;
  for (std::size_t c = 0; c < got.probs.size(); ++c) {
    if (!bits_equal(got.probs[c], want.probs[c])) return false;
  }
  return true;
}

// The resilience gate. Every phase prints what it proved; any violated
// invariant increments `violations` and the gate exits nonzero.
int run_chaos_smoke(const Stream& stream, std::uint64_t seed) {
  std::size_t violations = 0;
  const auto check = [&violations](bool ok, const char* what) {
    if (!ok) {
      ++violations;
      std::printf("[chaos-smoke] VIOLATION: %s\n", what);
    }
  };

  // Clean reference answers: what every Ok result must match, bit for bit.
  auto make_chaos_free = [] {
    return std::make_shared<DiagnosisService>(
        load_model_bundle_file(kBundlePath), ServingConfig{});
  };
  std::vector<Diagnosis> reference;
  {
    const auto clean = make_chaos_free();
    for (const Matrix& w : stream.windows) {
      reference.push_back(clean->diagnose(w));
    }
  }

  // ---- phase 1: client burst under fault injection ----------------------
  ChaosConfig chaos_config;
  chaos_config.extract_fail_rate = 0.25;
  chaos_config.slow_extract_rate = 0.15;
  chaos_config.slow_extract_ms = 3.0;
  chaos_config.seed = seed;
  ServingChaos chaos(chaos_config);
  ServingConfig chaotic;
  chaotic.cache_capacity = 0;  // every request must run the faulty pipeline
  chaotic.extraction_hook = chaos.hook();
  HostConfig host_config;
  host_config.workers = 2;
  host_config.queue_capacity = 8;
  host_config.unhealthy_error_rate = 1.0;  // soak: breaker stays out of it
  {
    ServiceHost host(std::make_shared<DiagnosisService>(
                         load_model_bundle_file(kBundlePath), chaotic),
                     host_config);
    const Deadline::Clock::duration budget = std::chrono::seconds(5);
    constexpr std::size_t kClients = 6;
    std::atomic<std::size_t> ok{0}, failed{0}, rejected{0};
    std::atomic<std::size_t> untyped{0}, late_ok{0}, mismatched{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = c; i < stream.windows.size(); i += kClients) {
          try {
            const Deadline deadline = Deadline::at(
                Deadline::Clock::now() + budget);
            const HostResult r = host.diagnose(stream.windows[i], deadline);
            if (r.ok()) {
              ++ok;
              if (deadline.expired()) ++late_ok;
              if (!same_diagnosis(r.diagnosis, reference[i])) ++mismatched;
            } else if (r.status == RequestStatus::Failed) {
              ++failed;
            } else if (is_rejection(r.status)) {
              ++rejected;
            }
          } catch (...) {
            ++untyped;  // nothing may escape the typed surface
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    host.drain();
    const HostStats s = host.stats();
    std::printf("[chaos-smoke] burst: %s\n", format_host_summary(s).c_str());
    std::printf("[chaos-smoke] chaos: %llu extractions, %llu failures, "
                "%llu slowdowns injected\n",
                static_cast<unsigned long long>(chaos.extractions_seen()),
                static_cast<unsigned long long>(chaos.failures_injected()),
                static_cast<unsigned long long>(chaos.slowdowns_injected()));
    check(untyped == 0, "an exception escaped the typed result surface");
    check(ok + failed + rejected == stream.windows.size(),
          "request accounting does not add up");
    check(ok > 0, "no request survived the burst");
    check(failed > 0, "chaos injected no failures (harness inert?)");
    check(late_ok == 0, "an Ok result missed its deadline");
    check(mismatched == 0,
          "an Ok result disagreed with the clean pipeline bit-for-bit");
    check(chaos.failures_injected() == s.failed,
          "failure counters disagree between chaos harness and host");
  }

  // ---- phase 2: forced overload + forced deadline misses ----------------
  ChaosConfig molasses;
  molasses.slow_extract_rate = 1.0;
  molasses.slow_extract_ms = 25.0;
  molasses.seed = seed + 1;
  ServingChaos slow_chaos(molasses);
  ServingConfig slow_serving;
  slow_serving.cache_capacity = 0;
  slow_serving.extraction_hook = slow_chaos.hook();
  HostConfig tiny;
  tiny.workers = 1;
  tiny.queue_capacity = 1;
  tiny.unhealthy_error_rate = 1.0;
  {
    ServiceHost host(std::make_shared<DiagnosisService>(
                         load_model_bundle_file(kBundlePath), slow_serving),
                     tiny);
    constexpr std::size_t kClients = 6;
    std::atomic<std::size_t> ok{0}, shed{0}, untyped{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        try {
          const HostResult r =
              host.diagnose(stream.windows[c], Deadline::after_ms(5.0));
          if (r.ok()) ++ok;
          if (is_rejection(r.status)) ++shed;
        } catch (...) {
          ++untyped;
        }
      });
    }
    for (auto& t : clients) t.join();
    const HostStats s = host.stats();
    check(untyped == 0, "overload phase: exception escaped");
    check(ok == 0, "a 25ms pipeline pass beat a 5ms deadline");
    check(shed == kClients, "overload phase: a request got lost");
    check(s.rejected_queue_full >= 1,
          "six clients against workers=1/queue=1 never overflowed");
    check(s.rejected_deadline >= 1, "no deadline shedding under molasses");
    std::printf("[chaos-smoke] overload: %s\n",
                format_host_summary(s).c_str());
  }

  // ---- phase 3: poisoned hot-reload pushes ------------------------------
  const std::string bad_path = std::string(kBundlePath) + ".poisoned";
  {
    ServiceHost host(make_chaos_free());
    host.set_probe_windows({stream.windows[0], stream.windows[1]});
    const HostResult before = host.diagnose(stream.windows[2]);
    check(before.ok(), "reload phase: baseline request failed");

    for (const auto& [poison, name] :
         {std::pair{BundlePoison::Truncate, "truncate"},
          std::pair{BundlePoison::BadMagic, "bad-magic"}}) {
      write_poisoned_bundle(kBundlePath, bad_path, poison, seed + 2);
      const ReloadReport report = host.reload_from_file(bad_path);
      std::printf("[chaos-smoke] reload(%s): %s\n", name,
                  report.summary().c_str());
      check(!report.ok && report.rolled_back,
            "poisoned bundle was accepted");
      const HostResult after = host.diagnose(stream.windows[2]);
      check(after.ok() && after.generation == 1 &&
                same_diagnosis(after.diagnosis, before.diagnosis),
            "rollback did not leave the old bundle serving bit-identically");
    }
    // A single flipped bit may or may not defeat validation; the invariant
    // is weaker but still hard: typed outcome, consistent serving either way.
    write_poisoned_bundle(kBundlePath, bad_path, BundlePoison::BitFlip,
                          seed + 3);
    const ReloadReport flip = host.reload_from_file(bad_path);
    std::printf("[chaos-smoke] reload(bit-flip): %s\n",
                flip.summary().c_str());
    check(flip.ok != flip.rolled_back, "bit-flip reload in limbo");
    check(host.diagnose(stream.windows[2]).ok(),
          "host stopped serving after a bit-flip push");

    // And a genuine upgrade still goes through after all that abuse.
    const ReloadReport good = host.reload_from_file(kBundlePath);
    check(good.ok && host.generation() == good.generation,
          "clean reload failed after poisoned pushes");
    const HostResult upgraded = host.diagnose(stream.windows[2]);
    check(upgraded.ok() && upgraded.generation == good.generation &&
              same_diagnosis(upgraded.diagnosis, before.diagnosis),
          "reloaded bundle does not serve bit-identically");

    // ---- phase 4: drain is terminal and typed ---------------------------
    host.drain();
    check(host.diagnose(stream.windows[0]).status ==
              RequestStatus::RejectedDraining,
          "post-drain submission was not shed as draining");
    check(host.health() == HostHealth::Draining, "drain left wrong health");
  }
  std::remove(bad_path.c_str());

  if (violations != 0) {
    std::printf("[chaos-smoke] FAILED: %zu violated invariants\n",
                violations);
    return 1;
  }
  std::printf("[chaos-smoke] ok: typed shedding, deadline-honest results, "
              "bit-identical serving across rollback and reload\n");
  return 0;
}

// ------------------------------------- single-window latency sweep ------

// One (model, algo, batch) cell: per-call latency percentiles of the
// default dispatch, plus the forced small-kernel and forced block-path p50
// so the crossover choice is reproducible from the JSON alone.
struct LatencyCell {
  std::string model;
  std::string algo;
  std::size_t batch = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double min_us = 0.0;
  double small_p50_us = 0.0;
  double block_p50_us = 0.0;
};

// Weak-signal rows with label noise (the bench_micro_ml idiom) so trees
// must grow toward their depth budget, plus the NaN/±inf telemetry mix the
// serving path sees from quarantined collectors.
struct LatencySynth {
  Matrix x;
  std::vector<int> y;
};

LatencySynth make_latency_synth(std::size_t n, std::size_t f,
                                std::uint64_t seed) {
  Rng rng(seed);
  LatencySynth s;
  s.x = Matrix(n, f);
  for (std::size_t i = 0; i < n; ++i) {
    auto c = static_cast<int>(i % static_cast<std::size_t>(kNumClasses));
    if (rng.uniform() < 0.3) {
      c = static_cast<int>(rng.uniform() * kNumClasses) % kNumClasses;
    }
    s.y.push_back(c);
    for (std::size_t j = 0; j < f; ++j) {
      const double u = rng.uniform();
      if (u < 0.01) {
        s.x(i, j) = std::numeric_limits<double>::quiet_NaN();
        continue;
      }
      if (u < 0.015) {
        s.x(i, j) = (i + j) % 2 == 0
                        ? std::numeric_limits<double>::infinity()
                        : -std::numeric_limits<double>::infinity();
        continue;
      }
      const double signal =
          j % static_cast<std::size_t>(kNumClasses) ==
                  i % static_cast<std::size_t>(kNumClasses)
              ? 0.15
              : 0.0;
      s.x(i, j) = signal + 0.3 * rng.uniform();
    }
  }
  return s;
}

// Per-call latencies (µs) of `fn` over `reps` calls, after one warm-up.
template <typename Fn>
std::vector<double> time_calls_us(int reps, Fn&& fn) {
  fn();
  std::vector<double> us(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    us[static_cast<std::size_t>(r)] = timer.seconds() * 1e6;
  }
  return us;
}

// Median per-call latency of the compiled predictor over the first `batch`
// rows with the crossover pinned to `cutoff` for the duration.
double forced_p50_us(const CompiledTreePredictor& pred, const Matrix& xb,
                     Matrix& out, int reps, std::size_t cutoff) {
  const std::size_t prev =
      CompiledTreePredictor::set_small_batch_cutoff(cutoff);
  const std::vector<double> us = time_calls_us(
      reps, [&] { pred.predict_range(xb, 0, xb.rows(), out); });
  CompiledTreePredictor::set_small_batch_cutoff(prev);
  return latency_percentile(us, 0.50);
}

LatencyCell run_latency_cell(const char* model, const char* algo,
                             const CompiledTreePredictor& pred,
                             const Matrix& pool, std::size_t batch,
                             int reps) {
  Matrix xb(batch, pool.cols());
  for (std::size_t i = 0; i < batch; ++i) {
    const auto src = pool.row(i % pool.rows());
    std::copy(src.begin(), src.end(), xb.row(i).begin());
  }
  Matrix out(batch, static_cast<std::size_t>(pred.num_classes()));

  LatencyCell cell;
  cell.model = model;
  cell.algo = algo;
  cell.batch = batch;
  const std::vector<double> us = time_calls_us(
      reps, [&] { pred.predict_range(xb, 0, batch, out); });
  cell.p50_us = latency_percentile(us, 0.50);
  cell.p99_us = latency_percentile(us, 0.99);
  cell.p999_us = latency_percentile(us, 0.999);
  cell.min_us = latency_percentile(us, 0.0);
  cell.small_p50_us = forced_p50_us(
      pred, xb, out, reps, std::numeric_limits<std::size_t>::max());
  cell.block_p50_us = forced_p50_us(pred, xb, out, reps, 0);
  return cell;
}

// Bit-identity across all three paths on one probe batch: forced small,
// forced block, and the reference object walk must agree on every
// probability bit and therefore on every argmax.
bool paths_bit_identical(const char* name, const Classifier& model,
                         const Matrix& probe) {
  const Matrix reference = model.predict_proba_reference(probe);
  const std::size_t prev = CompiledTreePredictor::set_small_batch_cutoff(
      std::numeric_limits<std::size_t>::max());
  const Matrix small_probs = model.predict_proba(probe);
  CompiledTreePredictor::set_small_batch_cutoff(0);
  const Matrix block_probs = model.predict_proba(probe);
  CompiledTreePredictor::set_small_batch_cutoff(prev);
  for (std::size_t i = 0; i < probe.rows(); ++i) {
    if (argmax_label(small_probs.row(i)) != argmax_label(reference.row(i))) {
      std::fprintf(stderr, "[latency] %s: argmax mismatch on row %zu\n",
                   name, i);
      return false;
    }
    for (std::size_t c = 0; c < reference.cols(); ++c) {
      if (!bits_equal(small_probs(i, c), reference(i, c)) ||
          !bits_equal(block_probs(i, c), reference(i, c))) {
        std::fprintf(stderr,
                     "[latency] %s: probability bits differ at (%zu, %zu)\n",
                     name, i, c);
        return false;
      }
    }
  }
  return true;
}

// The single-window latency sweep (batch 1/2/4/8/16/64 × DT/RF/GBM ×
// Exact/Hist) written to BENCH_serving_latency.json. With `gate` set (the
// --latency-smoke CI entry) it also enforces: small kernel ≥3× faster than
// the forced block path at batch=1 for RF and GBM at paper-scale shapes,
// and bit-identical probabilities across small / block / reference.
int run_latency_sweep(bool gate, std::uint64_t seed) {
  // Paper-scale shape: the raw per-window feature space before selection
  // (hundreds of metrics x statistics), a few hundred training windows,
  // six anomaly classes. Exact-trained ensembles are thinned (training
  // cost, not predict cost, is the constraint); the gate reads the
  // Hist-trained RF/GBM, the deployment configuration.
  const std::size_t f = 1600;
  const LatencySynth train = make_latency_synth(600, f, seed);
  const LatencySynth exact_train = make_latency_synth(300, f, seed + 1);
  const LatencySynth pool = make_latency_synth(64, f, seed + 2);
  const int reps = gate ? 300 : 1000;

  struct Fitted {
    const char* model;
    const char* algo;
    std::unique_ptr<Classifier> clf;
    std::shared_ptr<const CompiledTreePredictor> pred;
  };
  std::vector<Fitted> fitted;

  std::printf("[latency] training DT/RF/GBM x Exact/Hist at %zu features\n",
              f);
  for (const auto algo : {SplitAlgo::Exact, SplitAlgo::Hist}) {
    const char* algo_name = algo == SplitAlgo::Hist ? "hist" : "exact";
    const bool exact = algo == SplitAlgo::Exact;
    const LatencySynth& tr = exact ? exact_train : train;

    TreeConfig tcfg;
    tcfg.num_classes = kNumClasses;
    tcfg.max_depth = 8;
    tcfg.split_algo = algo;
    auto dt = std::make_unique<DecisionTree>(tcfg, seed);
    dt->fit(tr.x, tr.y);
    auto dt_pred = dt->compiled();
    fitted.push_back(Fitted{"dt", algo_name, std::move(dt), dt_pred});

    // Paper-scale shapes (Table IV Volta optima): RF 20 trees x depth 8;
    // GBM 31 leaves with column subsampling so trees spread over the
    // feature space the way per-split sampling does at production scale.
    ForestConfig fcfg;
    fcfg.num_classes = kNumClasses;
    fcfg.n_estimators = exact ? 10 : 20;
    fcfg.max_depth = 8;
    fcfg.split_algo = algo;
    auto rf = std::make_unique<RandomForest>(fcfg, seed);
    rf->fit(tr.x, tr.y);
    auto rf_pred = rf->compiled();
    fitted.push_back(Fitted{"rf", algo_name, std::move(rf), rf_pred});

    GbmConfig gcfg;
    gcfg.num_classes = kNumClasses;
    gcfg.n_estimators = exact ? 5 : 10;
    gcfg.num_leaves = 31;
    gcfg.max_depth = 8;
    gcfg.colsample_bytree = 0.3;
    gcfg.split_algo = algo;
    auto gbm = std::make_unique<GbmClassifier>(gcfg, seed);
    gbm->fit(tr.x, tr.y);
    auto gbm_pred = gbm->compiled();
    fitted.push_back(Fitted{"lgbm", algo_name, std::move(gbm), gbm_pred});
  }

  const std::vector<std::size_t> batches{1, 2, 4, 8, 16, 64};
  std::vector<LatencyCell> cells;
  TextTable table({"model", "algo", "batch", "p50 us", "p99 us",
                   "p99.9 us", "min us", "small p50", "block p50"});
  for (const Fitted& m : fitted) {
    if (m.pred == nullptr) {
      std::fprintf(stderr, "[latency] %s/%s did not compile\n", m.model,
                   m.algo);
      return 1;
    }
    for (const std::size_t batch : batches) {
      const int cell_reps =
          batch >= 64 ? std::max(20, reps / 10) : reps;
      cells.push_back(run_latency_cell(m.model, m.algo, *m.pred, pool.x,
                                       batch, cell_reps));
      const LatencyCell& c = cells.back();
      table.add_row({c.model, c.algo, std::to_string(c.batch),
                     strformat("%.2f", c.p50_us),
                     strformat("%.2f", c.p99_us),
                     strformat("%.2f", c.p999_us),
                     strformat("%.2f", c.min_us),
                     strformat("%.2f", c.small_p50_us),
                     strformat("%.2f", c.block_p50_us)});
    }
  }
  std::printf("\nsingle-window latency sweep (crossover cutoff %zu)\n%s\n",
              CompiledTreePredictor::small_batch_cutoff(),
              table.render().c_str());

  const char* json_path = "BENCH_serving_latency.json";
  {
    std::ofstream os(json_path);
    os << "{\n  \"cutoff\": "
       << CompiledTreePredictor::small_batch_cutoff()
       << ",\n  \"features\": " << f << ",\n  \"entries\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const LatencyCell& c = cells[i];
      os << "    {\"model\": \"" << c.model << "\", \"algo\": \"" << c.algo
         << "\", \"batch\": " << c.batch << ", \"p50_us\": " << c.p50_us
         << ", \"p99_us\": " << c.p99_us << ", \"p999_us\": " << c.p999_us
         << ", \"min_us\": " << c.min_us
         << ", \"small_p50_us\": " << c.small_p50_us
         << ", \"block_p50_us\": " << c.block_p50_us << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
  }
  std::printf("[latency] sweep written to %s (%zu cells)\n", json_path,
              cells.size());

  // The gate: deployment models (Hist RF + GBM), batch=1, small kernel at
  // least 3× faster than the forced block path, all paths bit-identical.
  bool ok = true;
  for (const Fitted& m : fitted) {
    const bool gated = std::strcmp(m.algo, "hist") == 0 &&
                       (std::strcmp(m.model, "rf") == 0 ||
                        std::strcmp(m.model, "lgbm") == 0);
    if (!paths_bit_identical(m.model, *m.clf, pool.x)) ok = false;
    if (!gated) continue;
    const auto it = std::find_if(
        cells.begin(), cells.end(), [&](const LatencyCell& c) {
          return c.batch == 1 && c.model == m.model && c.algo == m.algo;
        });
    const double speedup = it->small_p50_us > 0.0
                               ? it->block_p50_us / it->small_p50_us
                               : 0.0;
    std::printf("[latency] %s/%s batch=1: small %.2fus vs block %.2fus "
                "(%.1fx)\n",
                m.model, m.algo, it->small_p50_us, it->block_p50_us,
                speedup);
    if (gate && speedup < 3.0) {
      std::fprintf(stderr,
                   "[latency] GATE FAIL: %s/%s batch=1 small-kernel "
                   "speedup %.2fx < 3x\n",
                   m.model, m.algo, speedup);
      ok = false;
    }
  }
  if (!ok) {
    std::printf("[latency] FAILED\n");
    return 1;
  }
  std::printf("[latency] ok: small-batch kernel >=3x at batch=1 on RF+GBM, "
              "bit-identical across small/block/reference\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int windows = 240;
  std::uint64_t seed = 7;
  bool smoke = false;
  bool chaos_smoke = false;
  bool latency = false;
  bool latency_smoke = false;
  std::string out_csv;
  Cli cli("bench_serving",
          "Online serving benchmark: latency/throughput/cache sweep over an "
          "exported ModelBundle (--smoke for the CI agreement gate, "
          "--chaos-smoke for the resilience gate, --latency-smoke for the "
          "small-batch kernel gate).");
  cli.flag("windows", &windows, "windows in the served stream");
  cli.flag("seed", &seed, "stream generation seed");
  cli.flag("smoke", &smoke, "serve 100 windows, assert offline agreement");
  cli.flag("chaos-smoke", &chaos_smoke,
           "burst a chaos-injected ServiceHost, assert typed shedding, "
           "deadline honesty, and rollback bit-identity");
  cli.flag("latency", &latency,
           "full single-window latency sweep (batch x model x algo) to "
           "BENCH_serving_latency.json");
  cli.flag("latency-smoke", &latency_smoke,
           "abridged latency sweep plus the CI gate: small-batch kernel "
           ">=3x block path at batch=1 on RF+GBM, bit-identical probas");
  cli.flag("out", &out_csv, "CSV dump path (empty = none)");
  cli.parse(argc, argv);
  set_log_level(LogLevel::Warn);

  // The latency sweep trains its own synthetic paper-scale models; it does
  // not need the bundle/stream setup below.
  if (latency || latency_smoke) return run_latency_sweep(latency_smoke, seed);

  // ---- train a small model and freeze it --------------------------------
  DatasetConfig cfg = tiny_config();
  cfg.seed = seed;
  std::printf("[setup] building dataset + training classifier...\n");
  const ExperimentData data = build_experiment_data(cfg);
  const SplitIndices split = make_split(data, cfg.test_fraction, seed);
  const PreparedSplit prepared = prepare_split(data, split, cfg.select_k);
  auto model = make_model_factory("rf", kNumClasses, seed)(
      table4_optimum("rf", false));
  model->fit(prepared.train_x, prepared.train_y);
  export_model_bundle(kBundlePath, data, prepared, *model);
  std::printf("[setup] bundle exported to %s (%zu selected features)\n",
              kBundlePath, prepared.selected_names.size());

  const RunGenerator generator(cfg.system, cfg.registry, cfg.sim);
  const std::size_t n =
      (smoke || chaos_smoke) ? 100 : static_cast<std::size_t>(windows);
  const Stream stream = make_stream(generator, n, seed + 1);

  if (chaos_smoke) return run_chaos_smoke(stream, seed);

  if (smoke) {
    ServingConfig smoke_config;
    smoke_config.max_batch = 8;
    DiagnosisService service(load_model_bundle_file(kBundlePath),
                             smoke_config);
    const auto diagnoses = service.diagnose_batch(stream.windows);
    const Matrix reference =
        offline_probs(stream, generator, cfg, service.bundle(), prepared,
                      *model);
    const std::vector<int> offline_labels = model->predict(
        [&] {
          Matrix x = select_features_by_name(
              extract_features(stream.samples, generator.registry(),
                               *make_extractor(cfg.extractor),
                               cfg.preprocess),
              service.bundle().feature_names);
          prepared.scaler.transform(x);
          return prepared.selector.transform(x);
        }());

    std::size_t disagreements = 0;
    for (std::size_t i = 0; i < diagnoses.size(); ++i) {
      if (diagnoses[i].label != offline_labels[i]) ++disagreements;
      for (std::size_t c = 0; c < diagnoses[i].probs.size(); ++c) {
        if (!bits_equal(diagnoses[i].probs[c], reference(i, c))) {
          ++disagreements;
          break;
        }
      }
    }
    const ServingStats s = service.stats();
    std::printf("[smoke] %s\n", format_serving_summary(s).c_str());
    if (disagreements != 0 || s.windows_per_second() <= 0.0 ||
        s.windows != diagnoses.size()) {
      std::printf("[smoke] FAILED: %zu disagreements, %.1f win/s\n",
                  disagreements, s.windows_per_second());
      return 1;
    }
    std::printf("[smoke] ok: %zu windows served, bit-identical to the "
                "offline pipeline, cache hit rate %.1f%%\n",
                diagnoses.size(), 100.0 * s.hit_rate());
    return 0;
  }

  // ---- the sweep ---------------------------------------------------------
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts{1};
  if (hw > 1) thread_counts.push_back(hw);
  const std::vector<std::size_t> batch_sizes{1, 8, 32};

  TextTable table({"batch", "threads", "p50 ms", "p99 ms", "windows/s",
                   "cache hit %"});
  std::vector<std::pair<std::string, ServingStats>> csv_rows;
  for (const std::size_t threads : thread_counts) {
    ThreadPool pool(threads);
    for (const std::size_t batch : batch_sizes) {
      ServingConfig serving;
      serving.max_batch = batch;
      serving.pool = &pool;
      DiagnosisService service(load_model_bundle_file(kBundlePath), serving);
      for (std::size_t begin = 0; begin < stream.windows.size();
           begin += batch) {
        const std::size_t end =
            std::min(stream.windows.size(), begin + batch);
        service.diagnose_batch(std::span<const Matrix>(stream.windows)
                                   .subspan(begin, end - begin));
      }
      const ServingStats s = service.stats();
      table.add_row({std::to_string(batch), std::to_string(threads),
                     strformat("%.3f", s.latency_p50_ms),
                     strformat("%.3f", s.latency_p99_ms),
                     strformat("%.1f", s.windows_per_second()),
                     strformat("%.1f", 100.0 * s.hit_rate())});
      csv_rows.emplace_back(strformat("batch=%zu/threads=%zu", batch, threads),
                            s);
    }
  }
  std::printf("\nserving sweep over %zu windows (%zu distinct)\n%s\n",
              stream.windows.size(),
              stream.windows.size() - stream.windows.size() / 4,
              table.render().c_str());

  if (!out_csv.empty()) {
    std::ofstream out(out_csv);
    write_serving_stats_csv(out, csv_rows);
    std::printf("CSV written to %s\n", out_csv.c_str());
  }
  return 0;
}
