file(REMOVE_RECURSE
  "libalba_telemetry.a"
)
