#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace alba::stats {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

double sum(std::span<const double> x) noexcept {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

double mean(std::span<const double> x) noexcept {
  if (x.empty()) return kNaN;
  return sum(x) / static_cast<double>(x.size());
}

double variance(std::span<const double> x) noexcept {
  if (x.empty()) return kNaN;
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size());
}

double sample_variance(std::span<const double> x) noexcept {
  if (x.size() < 2) return kNaN;
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size() - 1);
}

double stddev(std::span<const double> x) noexcept {
  const double v = variance(x);
  return std::isnan(v) ? kNaN : std::sqrt(v);
}

double minimum(std::span<const double> x) noexcept {
  if (x.empty()) return kNaN;
  return *std::min_element(x.begin(), x.end());
}

double maximum(std::span<const double> x) noexcept {
  if (x.empty()) return kNaN;
  return *std::max_element(x.begin(), x.end());
}

double range(std::span<const double> x) noexcept {
  if (x.empty()) return kNaN;
  return maximum(x) - minimum(x);
}

double median(std::span<const double> x) { return quantile(x, 0.5); }

double quantile(std::span<const double> x, double q) {
  if (x.empty()) return kNaN;
  std::vector<double> v(x.begin(), x.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double skewness(std::span<const double> x) noexcept {
  if (x.size() < 3) return kNaN;
  const double m = mean(x);
  const double s = stddev(x);
  if (s < 1e-300) return kNaN;
  double acc = 0.0;
  for (double v : x) {
    const double d = (v - m) / s;
    acc += d * d * d;
  }
  return acc / static_cast<double>(x.size());
}

double kurtosis(std::span<const double> x) noexcept {
  if (x.size() < 4) return kNaN;
  const double m = mean(x);
  const double s = stddev(x);
  if (s < 1e-300) return kNaN;
  double acc = 0.0;
  for (double v : x) {
    const double d = (v - m) / s;
    acc += d * d * d * d;
  }
  return acc / static_cast<double>(x.size()) - 3.0;
}

double variation_coefficient(std::span<const double> x) noexcept {
  const double m = mean(x);
  if (std::abs(m) < 1e-300) return kNaN;
  return stddev(x) / std::abs(m);
}

double abs_energy(std::span<const double> x) noexcept {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

double root_mean_square(std::span<const double> x) noexcept {
  if (x.empty()) return kNaN;
  return std::sqrt(abs_energy(x) / static_cast<double>(x.size()));
}

double mean_abs_change(std::span<const double> x) noexcept {
  if (x.size() < 2) return kNaN;
  double acc = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) acc += std::abs(x[i] - x[i - 1]);
  return acc / static_cast<double>(x.size() - 1);
}

double mean_change(std::span<const double> x) noexcept {
  if (x.size() < 2) return kNaN;
  return (x.back() - x.front()) / static_cast<double>(x.size() - 1);
}

double absolute_sum_of_changes(std::span<const double> x) noexcept {
  double acc = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) acc += std::abs(x[i] - x[i - 1]);
  return acc;
}

double mean_second_derivative_central(std::span<const double> x) noexcept {
  if (x.size() < 3) return kNaN;
  double acc = 0.0;
  for (std::size_t i = 1; i + 1 < x.size(); ++i) {
    acc += (x[i + 1] - 2.0 * x[i] + x[i - 1]) * 0.5;
  }
  return acc / static_cast<double>(x.size() - 2);
}

std::size_t count_above_mean(std::span<const double> x) noexcept {
  const double m = mean(x);
  std::size_t n = 0;
  for (double v : x) n += (v > m) ? 1 : 0;
  return n;
}

std::size_t count_below_mean(std::span<const double> x) noexcept {
  const double m = mean(x);
  std::size_t n = 0;
  for (double v : x) n += (v < m) ? 1 : 0;
  return n;
}

namespace {
template <typename Cmp>
double first_location(std::span<const double> x, Cmp cmp) noexcept {
  if (x.empty()) return kNaN;
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (cmp(x[i], x[best])) best = i;
  }
  return static_cast<double>(best) / static_cast<double>(x.size());
}

template <typename Cmp>
double last_location(std::span<const double> x, Cmp cmp) noexcept {
  if (x.empty()) return kNaN;
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (!cmp(x[best], x[i])) best = i;  // ties move forward
  }
  return static_cast<double>(best + 1) / static_cast<double>(x.size());
}
}  // namespace

double first_location_of_maximum(std::span<const double> x) noexcept {
  return first_location(x, [](double a, double b) { return a > b; });
}
double first_location_of_minimum(std::span<const double> x) noexcept {
  return first_location(x, [](double a, double b) { return a < b; });
}
double last_location_of_maximum(std::span<const double> x) noexcept {
  return last_location(x, [](double a, double b) { return a > b; });
}
double last_location_of_minimum(std::span<const double> x) noexcept {
  return last_location(x, [](double a, double b) { return a < b; });
}

namespace {
template <typename Pred>
std::size_t longest_run(std::span<const double> x, Pred pred) noexcept {
  std::size_t best = 0;
  std::size_t cur = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (pred(i)) {
      ++cur;
      best = std::max(best, cur);
    } else {
      cur = 0;
    }
  }
  return best;
}
}  // namespace

std::size_t longest_strictly_increasing_run(std::span<const double> x) noexcept {
  if (x.size() < 2) return 0;
  return longest_run(x.subspan(1), [&x](std::size_t i) { return x[i + 1] > x[i]; });
}

std::size_t longest_strictly_decreasing_run(std::span<const double> x) noexcept {
  if (x.size() < 2) return 0;
  return longest_run(x.subspan(1), [&x](std::size_t i) { return x[i + 1] < x[i]; });
}

std::size_t longest_run_above_mean(std::span<const double> x) noexcept {
  const double m = mean(x);
  return longest_run(x, [&x, m](std::size_t i) { return x[i] > m; });
}

std::size_t longest_run_below_mean(std::span<const double> x) noexcept {
  const double m = mean(x);
  return longest_run(x, [&x, m](std::size_t i) { return x[i] < m; });
}

std::size_t number_of_peaks(std::span<const double> x, std::size_t support) noexcept {
  if (x.size() < 2 * support + 1 || support == 0) return 0;
  std::size_t count = 0;
  for (std::size_t i = support; i + support < x.size(); ++i) {
    bool is_peak = true;
    for (std::size_t s = 1; s <= support && is_peak; ++s) {
      if (x[i] <= x[i - s] || x[i] <= x[i + s]) is_peak = false;
    }
    count += is_peak ? 1 : 0;
  }
  return count;
}

std::size_t number_of_crossings(std::span<const double> x, double t) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    const bool above_prev = x[i - 1] > t;
    const bool above_cur = x[i] > t;
    count += (above_prev != above_cur) ? 1 : 0;
  }
  return count;
}

double ratio_beyond_r_sigma(std::span<const double> x, double r) noexcept {
  if (x.empty()) return kNaN;
  const double m = mean(x);
  const double s = stddev(x);
  std::size_t count = 0;
  for (double v : x) count += (std::abs(v - m) > r * s) ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(x.size());
}

bool has_duplicate(std::span<const double> x) {
  std::unordered_map<double, int> seen;
  for (double v : x) {
    if (++seen[v] > 1) return true;
  }
  return false;
}

bool has_duplicate_max(std::span<const double> x) noexcept {
  if (x.empty()) return false;
  const double mx = maximum(x);
  std::size_t count = 0;
  for (double v : x) count += (v == mx) ? 1 : 0;
  return count > 1;
}

bool has_duplicate_min(std::span<const double> x) noexcept {
  if (x.empty()) return false;
  const double mn = minimum(x);
  std::size_t count = 0;
  for (double v : x) count += (v == mn) ? 1 : 0;
  return count > 1;
}

double sum_of_reoccurring_values(std::span<const double> x) {
  std::unordered_map<double, std::size_t> counts;
  for (double v : x) ++counts[v];
  double acc = 0.0;
  for (const auto& [v, c] : counts) {
    if (c > 1) acc += v;
  }
  return acc;
}

double percentage_of_reoccurring_datapoints(std::span<const double> x) {
  if (x.empty()) return kNaN;
  std::unordered_map<double, std::size_t> counts;
  for (double v : x) ++counts[v];
  std::size_t reoccurring = 0;
  for (const auto& [v, c] : counts) {
    if (c > 1) ++reoccurring;
  }
  return static_cast<double>(reoccurring) / static_cast<double>(counts.size());
}

double c3(std::span<const double> x, std::size_t lag) noexcept {
  if (x.size() < 2 * lag + 1) return kNaN;
  const std::size_t n = x.size() - 2 * lag;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i + 2 * lag] * x[i + lag] * x[i];
  return acc / static_cast<double>(n);
}

double cid_ce(std::span<const double> x, bool normalize) noexcept {
  if (x.size() < 2) return kNaN;
  if (normalize) {
    const double s = stddev(x);
    if (s < 1e-300) return 0.0;
    const double m = mean(x);
    double acc = 0.0;
    double prev = (x[0] - m) / s;
    for (std::size_t i = 1; i < x.size(); ++i) {
      const double cur = (x[i] - m) / s;
      acc += (cur - prev) * (cur - prev);
      prev = cur;
    }
    return std::sqrt(acc);
  }
  double acc = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    acc += (x[i] - x[i - 1]) * (x[i] - x[i - 1]);
  }
  return std::sqrt(acc);
}

double time_reversal_asymmetry(std::span<const double> x, std::size_t lag) noexcept {
  if (x.size() < 2 * lag + 1) return kNaN;
  const std::size_t n = x.size() - 2 * lag;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += x[i + 2 * lag] * x[i + 2 * lag] * x[i + lag] -
           x[i + lag] * x[i] * x[i];
  }
  return acc / static_cast<double>(n);
}

bool large_standard_deviation(std::span<const double> x, double r) noexcept {
  return stddev(x) > r * range(x);
}

bool symmetry_looking(std::span<const double> x, double r) {
  return std::abs(mean(x) - median(x)) < r * range(x);
}

}  // namespace alba::stats
