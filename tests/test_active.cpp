// Tests for the active learning layer: query strategies (checked against
// the paper's worked example in Sec. III-D), the oracle, curve aggregation,
// and the full pool-based loop on a synthetic task where informativeness-
// driven querying must beat random querying.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "active/learner.hpp"
#include "common/rng.hpp"
#include "ml/logreg.hpp"
#include "ml/random_forest.hpp"

namespace alba {
namespace {

// The example probabilities from Eq. 2 of the paper.
const std::vector<double> kP1{0.10, 0.85, 0.05};
const std::vector<double> kP2{0.60, 0.30, 0.10};
const std::vector<double> kP3{0.39, 0.61, 0.00};

TEST(Strategy, UncertaintyMatchesPaperExample) {
  // U_list = [0.15, 0.4, 0.39] → sample 2 selected.
  EXPECT_NEAR(uncertainty_score(kP1), 0.15, 1e-12);
  EXPECT_NEAR(uncertainty_score(kP2), 0.40, 1e-12);
  EXPECT_NEAR(uncertainty_score(kP3), 0.39, 1e-12);

  Matrix probs = Matrix::from_rows({kP1, kP2, kP3});
  Rng rng(1);
  EXPECT_EQ(select_query(QueryStrategy::Uncertainty, probs, {}, 3, 0, 0, rng),
            1u);
}

TEST(Strategy, MarginMatchesPaperExample) {
  // M_list = [0.75, 0.3, 0.22] → sample 3 selected (smallest margin).
  EXPECT_NEAR(margin_score(kP1), 0.75, 1e-12);
  EXPECT_NEAR(margin_score(kP2), 0.30, 1e-12);
  EXPECT_NEAR(margin_score(kP3), 0.22, 1e-12);

  Matrix probs = Matrix::from_rows({kP1, kP2, kP3});
  Rng rng(1);
  EXPECT_EQ(select_query(QueryStrategy::Margin, probs, {}, 3, 0, 0, rng), 2u);
}

TEST(Strategy, EntropyMatchesPaperExample) {
  // H_list = [0.52, 0.90, 0.67] → sample 1 selected... wait: highest is 2.
  // The paper's H_list is [0.52, 0.90, 0.67]; it picks the *first* sample in
  // its narrative but the strategy definition (max entropy) selects index 1.
  // We follow the math: max entropy wins.
  EXPECT_NEAR(entropy_score(kP1), 0.518, 5e-3);
  EXPECT_NEAR(entropy_score(kP2), 0.898, 5e-3);
  EXPECT_NEAR(entropy_score(kP3), 0.668, 5e-3);

  Matrix probs = Matrix::from_rows({kP1, kP2, kP3});
  Rng rng(1);
  EXPECT_EQ(select_query(QueryStrategy::Entropy, probs, {}, 3, 0, 0, rng), 1u);
}

TEST(Strategy, NamesRoundTrip) {
  for (const QueryStrategy s :
       {QueryStrategy::Uncertainty, QueryStrategy::Margin,
        QueryStrategy::Entropy, QueryStrategy::Random,
        QueryStrategy::EqualApp}) {
    EXPECT_EQ(strategy_from_name(strategy_name(s)), s);
  }
  EXPECT_THROW(strategy_from_name("qbc"), Error);
}

TEST(Strategy, ModelUsageFlags) {
  EXPECT_TRUE(strategy_uses_model(QueryStrategy::Uncertainty));
  EXPECT_TRUE(strategy_uses_model(QueryStrategy::Margin));
  EXPECT_TRUE(strategy_uses_model(QueryStrategy::Entropy));
  EXPECT_FALSE(strategy_uses_model(QueryStrategy::Random));
  EXPECT_FALSE(strategy_uses_model(QueryStrategy::EqualApp));
}

TEST(Strategy, RandomCoversPool) {
  Rng rng(2);
  Matrix empty;
  std::set<std::size_t> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(select_query(QueryStrategy::Random, empty, {}, 10, i, 0, rng));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Strategy, EqualAppRoundRobins) {
  Rng rng(3);
  Matrix empty;
  const std::vector<int> apps{0, 0, 1, 1, 2, 2};
  for (int step = 0; step < 9; ++step) {
    const std::size_t pick =
        select_query(QueryStrategy::EqualApp, empty, apps, 6, step, 3, rng);
    EXPECT_EQ(apps[pick], step % 3);
  }
}

TEST(Strategy, EqualAppFallsBackWhenAppExhausted) {
  Rng rng(4);
  Matrix empty;
  const std::vector<int> apps{1, 1, 1};  // app 0 absent
  const std::size_t pick =
      select_query(QueryStrategy::EqualApp, empty, apps, 3, 0, 2, rng);
  EXPECT_LT(pick, 3u);
}

TEST(Strategy, EmptyPoolThrows) {
  Rng rng(5);
  Matrix empty;
  EXPECT_THROW(select_query(QueryStrategy::Random, empty, {}, 0, 0, 0, rng),
               Error);
}

// --------------------------------------------------------------- oracle ---

TEST(Oracle, ReturnsGroundTruth) {
  LabelOracle oracle({0, 3, 1}, 6);
  EXPECT_EQ(oracle.annotate(1), 3);
  EXPECT_EQ(oracle.annotate(0), 0);
  EXPECT_EQ(oracle.queries_answered(), 2u);
  EXPECT_EQ(oracle.true_label(2), 1);
  EXPECT_THROW(oracle.annotate(3), Error);
}

TEST(Oracle, NoisyOracleErrsAtConfiguredRate) {
  std::vector<int> labels(5000, 2);
  LabelOracle oracle(std::move(labels), 6, 0.2, 7);
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < 5000; ++i) {
    const int answer = oracle.annotate(i);
    EXPECT_GE(answer, 0);
    EXPECT_LT(answer, 6);
    wrong += (answer != 2) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(wrong) / 5000.0, 0.2, 0.02);
}

TEST(Oracle, ZeroErrorRateIsExactOnEveryQuery) {
  std::vector<int> labels(2000);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 6);
  }
  LabelOracle oracle(labels, 6, 0.0, 99);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ASSERT_EQ(oracle.annotate(i), labels[i]) << "sample " << i;
  }
}

TEST(Oracle, WrongAnswersAreValidClassesSpreadOverAlternatives) {
  std::vector<int> labels(4000, 2);
  LabelOracle oracle(std::move(labels), 6, 0.5, 11);
  std::set<int> wrong_classes;
  for (std::size_t i = 0; i < 4000; ++i) {
    const int answer = oracle.annotate(i);
    ASSERT_GE(answer, 0);
    ASSERT_LT(answer, 6);
    if (answer != 2) wrong_classes.insert(answer);
  }
  // A wrong answer is drawn uniformly among the OTHER classes: with ~2000
  // errors every alternative must appear, and the truth never counts as
  // an error.
  EXPECT_EQ(wrong_classes.size(), 5u);
  EXPECT_EQ(wrong_classes.count(2), 0u);
}

TEST(Oracle, RejectsBadConstruction) {
  EXPECT_THROW(LabelOracle({0, 9}, 6), Error);
  EXPECT_THROW(LabelOracle({0}, 1), Error);
  EXPECT_THROW(LabelOracle({0}, 6, 1.0), Error);
}

// --------------------------------------------------------------- curves ---

TEST(Curves, AggregateMeanAndBand) {
  QueryCurve a{{0, 0.5, 0.2, 0.1}, {1, 0.7, 0.1, 0.05}};
  QueryCurve b{{0, 0.7, 0.4, 0.3}, {1, 0.9, 0.3, 0.15}};
  const AggregatedCurve agg = aggregate_curves({a, b});
  ASSERT_EQ(agg.queries.size(), 2u);
  EXPECT_NEAR(agg.f1_mean[0], 0.6, 1e-12);
  EXPECT_NEAR(agg.f1_mean[1], 0.8, 1e-12);
  EXPECT_LE(agg.f1_lo[0], agg.f1_mean[0]);
  EXPECT_GE(agg.f1_hi[0], agg.f1_mean[0]);
  EXPECT_NEAR(agg.far_mean[0], 0.3, 1e-12);
  EXPECT_NEAR(agg.amr_mean[1], 0.1, 1e-12);
}

TEST(Curves, UnequalLengthsAggregateAvailable) {
  QueryCurve a{{0, 0.5, 0, 0}, {1, 0.6, 0, 0}, {2, 0.7, 0, 0}};
  QueryCurve b{{0, 0.7, 0, 0}};
  const AggregatedCurve agg = aggregate_curves({a, b});
  ASSERT_EQ(agg.queries.size(), 3u);
  EXPECT_NEAR(agg.f1_mean[0], 0.6, 1e-12);
  EXPECT_NEAR(agg.f1_mean[2], 0.7, 1e-12);  // only repeat a reaches it
}

TEST(Curves, QueriesToReach) {
  QueryCurve c{{0, 0.5, 0, 0}, {1, 0.8, 0, 0}, {2, 0.96, 0, 0}};
  EXPECT_EQ(queries_to_reach(c, 0.95), 2);
  EXPECT_EQ(queries_to_reach(c, 0.4), 0);
  EXPECT_EQ(queries_to_reach(c, 0.99), -1);
  const AggregatedCurve agg = aggregate_curves({c});
  EXPECT_EQ(queries_to_reach(agg, 0.95), 2);
}

// -------------------------------------------------------------- learner ---

// Synthetic AL task: 4 Gaussian classes, seed labels only from 3 of them,
// pool rich in the missing class near the boundary. Uncertainty sampling
// must reach high F1 with far fewer queries than random.
struct AlTask {
  LabeledData seed;
  Matrix pool_x;
  std::vector<int> pool_y;
  Matrix test_x;
  std::vector<int> test_y;
};

AlTask make_task(std::uint64_t seed_val) {
  Rng rng(seed_val);
  const double centers[4][2] = {
      {0.0, 0.0}, {6.0, 0.0}, {0.0, 6.0}, {6.0, 6.0}};
  AlTask task;
  auto sample_point = [&](int c, Matrix& m, std::size_t row) {
    m(row, 0) = centers[c][0] + 0.9 * rng.normal();
    m(row, 1) = centers[c][1] + 0.9 * rng.normal();
  };
  // Seed: 2 points each from classes 1..3 (class 0 unseen, like healthy).
  for (int c = 1; c < 4; ++c) {
    for (int i = 0; i < 2; ++i) {
      Matrix tmp(1, 2);
      sample_point(c, tmp, 0);
      task.seed.append(tmp.row(0), c);
    }
  }
  // Pool: mostly class 0 plus some of each other class.
  const std::size_t pool_n = 240;
  task.pool_x = Matrix(pool_n, 2);
  for (std::size_t i = 0; i < pool_n; ++i) {
    const int c = (i % 3 == 0) ? static_cast<int>(i / 3 % 4) : 0;
    sample_point(c, task.pool_x, i);
    task.pool_y.push_back(c);
  }
  // Balanced test set.
  const std::size_t test_n = 120;
  task.test_x = Matrix(test_n, 2);
  for (std::size_t i = 0; i < test_n; ++i) {
    const int c = static_cast<int>(i % 4);
    sample_point(c, task.test_x, i);
    task.test_y.push_back(c);
  }
  return task;
}

std::unique_ptr<Classifier> task_model(std::uint64_t seed_val) {
  ForestConfig cfg;
  cfg.num_classes = 4;
  cfg.n_estimators = 15;
  cfg.max_depth = 6;
  return std::make_unique<RandomForest>(cfg, seed_val);
}

TEST(ActiveLearner, CurveStartsAtSeedModelAndGrowsPerQuery) {
  AlTask task = make_task(1);
  ActiveLearnerConfig cfg;
  cfg.strategy = QueryStrategy::Uncertainty;
  cfg.max_queries = 10;
  ActiveLearner learner(task_model(1), cfg);
  LabelOracle oracle(task.pool_y, 4);
  const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                  task.test_x, task.test_y);
  ASSERT_EQ(result.curve.size(), 11u);  // point 0 + 10 queries
  EXPECT_EQ(result.curve.front().queries, 0);
  EXPECT_EQ(result.curve.back().queries, 10);
  EXPECT_EQ(result.queried.size(), 10u);
  EXPECT_EQ(oracle.queries_answered(), 10u);
}

TEST(ActiveLearner, QueriedIndicesAreDistinct) {
  AlTask task = make_task(2);
  ActiveLearnerConfig cfg;
  cfg.strategy = QueryStrategy::Random;
  cfg.max_queries = 50;
  cfg.seed = 3;
  ActiveLearner learner(task_model(2), cfg);
  LabelOracle oracle(task.pool_y, 4);
  const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                  task.test_x, task.test_y);
  std::set<std::size_t> indices;
  for (const auto& q : result.queried) indices.insert(q.pool_index);
  EXPECT_EQ(indices.size(), result.queried.size());
}

TEST(ActiveLearner, OracleLabelsMatchGroundTruth) {
  AlTask task = make_task(3);
  ActiveLearnerConfig cfg;
  cfg.strategy = QueryStrategy::Uncertainty;
  cfg.max_queries = 15;
  ActiveLearner learner(task_model(3), cfg);
  LabelOracle oracle(task.pool_y, 4);
  const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                  task.test_x, task.test_y);
  for (const auto& q : result.queried) {
    EXPECT_EQ(q.label, task.pool_y[q.pool_index]);
  }
}

TEST(ActiveLearner, UncertaintyBeatsRandomOnUnseenClass) {
  double unc_f1 = 0.0;
  double rnd_f1 = 0.0;
  for (std::uint64_t rep = 0; rep < 3; ++rep) {
    AlTask task = make_task(40 + rep);
    for (const bool random : {false, true}) {
      ActiveLearnerConfig cfg;
      cfg.strategy = random ? QueryStrategy::Random : QueryStrategy::Uncertainty;
      cfg.max_queries = 12;
      cfg.seed = rep;
      ActiveLearner learner(task_model(rep), cfg);
      LabelOracle oracle(task.pool_y, 4);
      const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                      task.test_x, task.test_y);
      (random ? rnd_f1 : unc_f1) += result.final_f1;
    }
  }
  EXPECT_GT(unc_f1, rnd_f1);
}

TEST(ActiveLearner, TargetF1StopsEarly) {
  AlTask task = make_task(5);
  ActiveLearnerConfig cfg;
  cfg.strategy = QueryStrategy::Uncertainty;
  cfg.max_queries = 100;
  cfg.target_f1 = 0.5;
  ActiveLearner learner(task_model(5), cfg);
  LabelOracle oracle(task.pool_y, 4);
  const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                  task.test_x, task.test_y);
  EXPECT_GE(result.queries_to_target, 0);
  EXPECT_LT(result.queries_to_target, 100);
  EXPECT_LT(result.curve.size(), 101u);
}

TEST(ActiveLearner, EqualAppNeedsAppIds) {
  ActiveLearnerConfig cfg;
  cfg.strategy = QueryStrategy::EqualApp;
  cfg.num_apps = 0;
  EXPECT_THROW(ActiveLearner(task_model(6), cfg), Error);
}

TEST(ActiveLearner, EmptySeedRejected) {
  AlTask task = make_task(7);
  ActiveLearnerConfig cfg;
  cfg.max_queries = 1;
  ActiveLearner learner(task_model(7), cfg);
  LabelOracle oracle(task.pool_y, 4);
  LabeledData empty;
  EXPECT_THROW(
      learner.run(empty, task.pool_x, oracle, {}, task.test_x, task.test_y),
      Error);
}

TEST(ActiveLearner, DeterministicForSeed) {
  auto run_once = [] {
    AlTask task = make_task(8);
    ActiveLearnerConfig cfg;
    cfg.strategy = QueryStrategy::Random;
    cfg.max_queries = 20;
    cfg.seed = 99;
    ActiveLearner learner(task_model(8), cfg);
    LabelOracle oracle(task.pool_y, 4);
    return learner.run(task.seed, task.pool_x, oracle, {}, task.test_x,
                       task.test_y);
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.queried.size(), b.queried.size());
  for (std::size_t i = 0; i < a.queried.size(); ++i) {
    EXPECT_EQ(a.queried[i].pool_index, b.queried[i].pool_index);
  }
  EXPECT_DOUBLE_EQ(a.final_f1, b.final_f1);
}

}  // namespace
}  // namespace alba
