#include "telemetry/registry.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace alba {

std::string_view system_name(SystemKind kind) noexcept {
  switch (kind) {
    case SystemKind::Volta: return "volta";
    case SystemKind::Eclipse: return "eclipse";
  }
  return "unknown";
}

MetricRegistry::MetricRegistry(SystemKind kind, const RegistryConfig& config)
    : kind_(kind) {
  ALBA_CHECK(config.cores >= 1 && config.nics >= 1);

  // --- meminfo gauges (values in kB, as procfs reports them) ---
  constexpr double kGb = 1024.0 * 1024.0;  // kB per GB
  add({.name = "meminfo.MemFree", .subsystem = Subsystem::Meminfo,
       .kind = MetricKind::Gauge, .channel = LoadChannel::MemFree,
       .scale = kGb, .offset = 0.0, .noise_frac = 0.01});
  add({.name = "meminfo.Active", .subsystem = Subsystem::Meminfo,
       .kind = MetricKind::Gauge, .channel = LoadChannel::MemUsed,
       .scale = 0.8 * kGb, .offset = 0.3 * kGb, .noise_frac = 0.01});
  add({.name = "meminfo.AnonPages", .subsystem = Subsystem::Meminfo,
       .kind = MetricKind::Gauge, .channel = LoadChannel::MemUsed,
       .scale = 0.7 * kGb, .offset = 0.1 * kGb, .noise_frac = 0.01});
  add({.name = "meminfo.Cached", .subsystem = Subsystem::Meminfo,
       .kind = MetricKind::Gauge, .channel = LoadChannel::IoRead,
       .scale = 2.0e3, .offset = 0.8 * kGb, .noise_frac = 0.02});
  add({.name = "meminfo.Dirty", .subsystem = Subsystem::Meminfo,
       .kind = MetricKind::Gauge, .channel = LoadChannel::IoWrite,
       .scale = 4.0e2, .offset = 2.0e3, .noise_frac = 0.10});
  add({.name = "meminfo.Mapped", .subsystem = Subsystem::Meminfo,
       .kind = MetricKind::Gauge, .channel = LoadChannel::MemUsed,
       .scale = 0.05 * kGb, .offset = 0.05 * kGb, .noise_frac = 0.02});
  add({.name = "meminfo.Slab", .subsystem = Subsystem::Meminfo,
       .kind = MetricKind::Gauge, .channel = LoadChannel::IoWrite,
       .scale = 1.0e3, .offset = 0.2 * kGb, .noise_frac = 0.03});
  add({.name = "meminfo.Buffers", .subsystem = Subsystem::Meminfo,
       .kind = MetricKind::Gauge, .channel = LoadChannel::Constant,
       .scale = 0.0, .offset = 0.05 * kGb, .noise_frac = 0.02});

  // --- vmstat counters (rates driven by memory/IO activity) ---
  add({.name = "vmstat.pgfault", .subsystem = Subsystem::Vmstat,
       .kind = MetricKind::Counter, .channel = LoadChannel::MemUsed,
       .scale = 250.0, .offset = 120.0, .noise_frac = 0.08});
  add({.name = "vmstat.pgmajfault", .subsystem = Subsystem::Vmstat,
       .kind = MetricKind::Counter, .channel = LoadChannel::IoRead,
       .scale = 0.08, .offset = 0.05, .noise_frac = 0.30});
  add({.name = "vmstat.pgalloc_normal", .subsystem = Subsystem::Vmstat,
       .kind = MetricKind::Counter, .channel = LoadChannel::MemUsed,
       .scale = 300.0, .offset = 200.0, .noise_frac = 0.08});
  add({.name = "vmstat.pgfree", .subsystem = Subsystem::Vmstat,
       .kind = MetricKind::Counter, .channel = LoadChannel::MemUsed,
       .scale = 280.0, .offset = 210.0, .noise_frac = 0.08});
  add({.name = "vmstat.nr_dirty", .subsystem = Subsystem::Vmstat,
       .kind = MetricKind::Gauge, .channel = LoadChannel::IoWrite,
       .scale = 12.0, .offset = 40.0, .noise_frac = 0.15});
  add({.name = "vmstat.nr_writeback", .subsystem = Subsystem::Vmstat,
       .kind = MetricKind::Gauge, .channel = LoadChannel::IoWrite,
       .scale = 3.0, .offset = 5.0, .noise_frac = 0.25});

  // --- per-core CPU time counters (jiffies; USER_HZ = 100) ---
  for (int c = 0; c < config.cores; ++c) {
    add({.name = strformat("cpu.user#%d", c), .subsystem = Subsystem::CpuCore,
         .kind = MetricKind::Counter, .channel = LoadChannel::CpuUser,
         .scale = 100.0, .offset = 0.2, .noise_frac = 0.03, .core = c});
    add({.name = strformat("cpu.sys#%d", c), .subsystem = Subsystem::CpuCore,
         .kind = MetricKind::Counter, .channel = LoadChannel::CpuSystem,
         .scale = 100.0, .offset = 0.4, .noise_frac = 0.05, .core = c});
    add({.name = strformat("cpu.idle#%d", c), .subsystem = Subsystem::CpuCore,
         .kind = MetricKind::Counter, .channel = LoadChannel::CpuIdle,
         .scale = 100.0, .offset = 0.0, .noise_frac = 0.03, .core = c});
  }

  // --- network counters (Aries/IB NICs) ---
  for (int n = 0; n < config.nics; ++n) {
    add({.name = strformat("net.tx_packets#%d", n),
         .subsystem = Subsystem::Network, .kind = MetricKind::Counter,
         .channel = LoadChannel::NetTx, .scale = 1.0, .offset = 3.0,
         .noise_frac = 0.06});
    add({.name = strformat("net.rx_packets#%d", n),
         .subsystem = Subsystem::Network, .kind = MetricKind::Counter,
         .channel = LoadChannel::NetRx, .scale = 1.0, .offset = 3.0,
         .noise_frac = 0.06});
    add({.name = strformat("net.tx_bytes#%d", n),
         .subsystem = Subsystem::Network, .kind = MetricKind::Counter,
         .channel = LoadChannel::NetTx, .scale = 2048.0, .offset = 400.0,
         .noise_frac = 0.06});
    add({.name = strformat("net.rx_bytes#%d", n),
         .subsystem = Subsystem::Network, .kind = MetricKind::Counter,
         .channel = LoadChannel::NetRx, .scale = 2048.0, .offset = 400.0,
         .noise_frac = 0.06});
  }

  // --- Lustre shared-filesystem counters ---
  add({.name = "lustre.open", .subsystem = Subsystem::Lustre,
       .kind = MetricKind::Counter, .channel = LoadChannel::IoRead,
       .scale = 0.02, .offset = 0.02, .noise_frac = 0.30});
  add({.name = "lustre.close", .subsystem = Subsystem::Lustre,
       .kind = MetricKind::Counter, .channel = LoadChannel::IoRead,
       .scale = 0.02, .offset = 0.02, .noise_frac = 0.30});
  add({.name = "lustre.read_bytes", .subsystem = Subsystem::Lustre,
       .kind = MetricKind::Counter, .channel = LoadChannel::IoRead,
       .scale = 1.0e5, .offset = 1.0e3, .noise_frac = 0.12});
  add({.name = "lustre.write_bytes", .subsystem = Subsystem::Lustre,
       .kind = MetricKind::Counter, .channel = LoadChannel::IoWrite,
       .scale = 1.0e5, .offset = 1.0e3, .noise_frac = 0.12});
  add({.name = "lustre.getattr", .subsystem = Subsystem::Lustre,
       .kind = MetricKind::Counter, .channel = LoadChannel::IoRead,
       .scale = 0.05, .offset = 0.10, .noise_frac = 0.25});
  add({.name = "lustre.setattr", .subsystem = Subsystem::Lustre,
       .kind = MetricKind::Counter, .channel = LoadChannel::IoWrite,
       .scale = 0.02, .offset = 0.03, .noise_frac = 0.25});

  // --- Cray performance / power counters ---
  add({.name = "cray.power", .subsystem = Subsystem::Cray,
       .kind = MetricKind::Gauge, .channel = LoadChannel::Power,
       .scale = 1.0, .offset = 0.0, .noise_frac = 0.02});
  add({.name = "cray.energy", .subsystem = Subsystem::Cray,
       .kind = MetricKind::Counter, .channel = LoadChannel::Power,
       .scale = 1.0, .offset = 0.0, .noise_frac = 0.02});
  add({.name = "cray.llc_misses", .subsystem = Subsystem::Cray,
       .kind = MetricKind::Counter, .channel = LoadChannel::CacheMiss,
       .scale = 5.0e7, .offset = 1.0e5, .noise_frac = 0.05});
  add({.name = "cray.llc_refs", .subsystem = Subsystem::Cray,
       .kind = MetricKind::Counter, .channel = LoadChannel::CpuUser,
       .scale = 2.0e8, .offset = 1.0e6, .noise_frac = 0.05});
  add({.name = "cray.wb_count", .subsystem = Subsystem::Cray,
       .kind = MetricKind::Counter, .channel = LoadChannel::MemBw,
       .scale = 8.0e7, .offset = 5.0e4, .noise_frac = 0.05});
  // Reported frequency is the *requested* P-state, not the delivered one —
  // the `dial` anomaly's throttling is therefore only visible indirectly
  // (throughput/power breathing), matching the paper's finding that dial is
  // the hardest anomaly to diagnose.
  add({.name = "cray.cpu_freq_mhz", .subsystem = Subsystem::Cray,
       .kind = MetricKind::Gauge, .channel = LoadChannel::Constant,
       .scale = kind == SystemKind::Volta ? 2400.0 : 2100.0, .offset = 0.0,
       .noise_frac = 0.002});
  add({.name = "cray.board_temp", .subsystem = Subsystem::Cray,
       .kind = MetricKind::Gauge, .channel = LoadChannel::Power,
       .scale = 0.08, .offset = 28.0, .noise_frac = 0.02});

  // --- filler gauges: metrics uncorrelated with load (LDMS carries many) ---
  for (int i = 0; i < config.filler_gauges; ++i) {
    add({.name = strformat("misc.filler#%d", i), .subsystem = Subsystem::Cray,
         .kind = MetricKind::Gauge, .channel = LoadChannel::Constant,
         .scale = 0.0, .offset = 100.0 + 10.0 * i, .noise_frac = 0.05});
  }
}

void MetricRegistry::add(MetricDef def) { metrics_.push_back(std::move(def)); }

std::size_t MetricRegistry::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) return i;
  }
  throw Error("metric not found: " + name);
}

std::vector<std::string> MetricRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& m : metrics_) out.push_back(m.name);
  return out;
}

double MetricRegistry::mem_capacity_gb() const noexcept {
  return kind_ == SystemKind::Volta ? 64.0 : 128.0;
}

}  // namespace alba
