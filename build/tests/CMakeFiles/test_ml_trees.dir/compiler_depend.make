# Empty compiler generated dependencies file for test_ml_trees.
# This may be replaced when dependencies are built.
