#include "ml/dataset.hpp"

#include "common/error.hpp"

namespace alba {

void LabeledData::append(std::span<const double> features, int label) {
  x.append_row(features);
  y.push_back(label);
}

void LabeledData::append_all(const LabeledData& other) {
  for (std::size_t i = 0; i < other.size(); ++i) {
    append(other.x.row(i), other.y[i]);
  }
}

LabeledData LabeledData::select(std::span<const std::size_t> indices) const {
  LabeledData out;
  out.x = x.select_rows(indices);
  out.y.reserve(indices.size());
  for (const std::size_t i : indices) {
    ALBA_CHECK(i < y.size());
    out.y.push_back(y[i]);
  }
  return out;
}

void LabeledData::validate_labels(int num_classes) const {
  ALBA_CHECK(y.size() == x.rows())
      << "labels/rows mismatch: " << y.size() << " vs " << x.rows();
  for (const int label : y) {
    ALBA_CHECK(label >= 0 && label < num_classes)
        << "label " << label << " outside [0, " << num_classes << ")";
  }
}

}  // namespace alba
