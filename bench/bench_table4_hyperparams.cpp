// Reproduces Table IV: grid search with stratified 5-fold CV over the
// paper's hyperparameter spaces for LR / RF / LGBM / MLP on both datasets,
// reporting the winning combination next to the paper's choice. Expected
// shape: several combinations tie near the top (the datasets are not very
// hyperparameter-sensitive once features are selected), tree ensembles
// dominate, and the winning settings are of the same character as the
// paper's (moderate depth, entropy splits, l1-regularized LR).
//
// Scale note: the full Table IV sweep is hundreds of model fits; by default
// the training matrix is subsampled and the MLP's max_iter grid is divided
// by 10 (flagged in the output). Use --full for the unscaled sweep.
#include <map>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "ml/grid_search.hpp"
#include "preprocess/split.hpp"

using namespace alba;
using namespace alba::bench;

namespace {

std::string param_string(const ParamSet& params) {
  std::string out;
  for (const auto& [key, value] : params) {
    if (!out.empty()) out += ", ";
    out += key + "=" + value;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags;
  int max_train = 300;
  int folds = 3;
  int max_features = 120;
  std::string only_model;
  Cli cli("bench_table4_hyperparams",
          "Table IV — hyperparameter grid search for all four models");
  add_standard_flags(cli, flags);
  cli.flag("max_train", &max_train, "training subsample per dataset (0 = all)");
  cli.flag("folds", &folds, "cross-validation folds");
  cli.flag("max_features", &max_features,
           "chi-square-selected columns for the sweep (0 = config default)");
  cli.flag("model", &only_model, "run a single model (lr/rf/lgbm/mlp)");
  cli.parse(argc, argv);
  apply_logging(flags);

  std::printf("=== Table IV: hyperparameter search (5-fold stratified CV) ===\n");

  TextTable table({"Dataset", "Model", "Best (measured)", "CV F1",
                   "Paper's optimum", "Paper-optimum CV F1", "Combos"});

  for (const SystemKind system : {SystemKind::Volta, SystemKind::Eclipse}) {
    const ExperimentData data = build_data(system, flags);
    const bool eclipse = system == SystemKind::Eclipse;

    // Grid search runs on the AL training partition only (Sec. IV-E-2:
    // the test dataset is withheld during tuning).
    const SplitIndices split =
        make_split(data, data.config.test_fraction, flags.seed);
    const std::size_t sweep_k =
        (!flags.full && max_features > 0)
            ? std::min<std::size_t>(static_cast<std::size_t>(max_features),
                                    data.config.select_k)
            : data.config.select_k;
    PreparedSplit prep = prepare_split(data, split, sweep_k);

    Matrix x = prep.train_x;
    std::vector<int> y = prep.train_y;
    if (!flags.full && max_train > 0 &&
        x.rows() > static_cast<std::size_t>(max_train)) {
      const SplitIndices sub = stratified_split(
          y, 1.0 - static_cast<double>(max_train) / x.rows(), flags.seed + 1);
      x = x.select_rows(sub.train);
      std::vector<int> y_sub;
      for (const std::size_t i : sub.train) y_sub.push_back(y[i]);
      y = std::move(y_sub);
    }
    std::printf("grid-search training matrix: %zux%zu\n", x.rows(), x.cols());

    for (const std::string& model : model_names()) {
      if (!only_model.empty() && model != only_model) continue;
      ParamGrid grid = table4_grid(model);
      if (!flags.full && model == "lgbm") {
        // Fewer boosting rounds keep the 72-combination sweep tractable;
        // the grid itself (Table IV's dimensions) is unchanged.
        grid.emplace_back("n_estimators",
                          std::vector<std::string>{"12"});
      }
      if (!flags.full && model == "mlp") {
        // Scale the epoch grid down; the relative ordering is preserved.
        for (auto& [name, values] : grid) {
          if (name != "max_iter") continue;
          for (auto& v : values) {
            v = strformat("%ld", parse_long(v) / 10);
          }
        }
      }
      const auto factory = make_model_factory(model, kNumClasses, flags.seed);
      Timer timer;
      const GridSearchResult result = grid_search_cv(
          factory, grid, x, y, static_cast<std::size_t>(folds), flags.seed);

      // Score the paper's optimum inside the same folds for comparison.
      ParamSet paper_opt = table4_optimum(model, eclipse);
      if (!flags.full && model == "mlp") {
        paper_opt["max_iter"] =
            strformat("%ld", parse_long(paper_opt["max_iter"]) / 10);
      }
      double paper_score = -1.0;
      for (const auto& entry : result.entries) {
        bool matches = true;
        for (const auto& [key, value] : paper_opt) {
          const auto it = entry.params.find(key);
          if (it == entry.params.end() || it->second != value) matches = false;
        }
        if (matches) paper_score = entry.mean_score;
      }

      table.add_row({std::string(system_name(system)), model,
                     param_string(result.best_params),
                     strformat("%.3f", result.best_score),
                     param_string(paper_opt),
                     paper_score >= 0.0 ? strformat("%.3f", paper_score) : "-",
                     strformat("%zu", result.entries.size())});
      std::printf("  %-5s %zu combinations in %.1fs (best CV F1 %.3f)\n",
                  model.c_str(), result.entries.size(), timer.seconds(),
                  result.best_score);
    }
  }

  std::printf("\n%s", table.render().c_str());
  if (!flags.full) {
    std::printf(
        "note: for bench runtime the training rows are subsampled to\n"
        "--max_train, features to --max_features, the MLP max_iter grid is\n"
        "divided by 10, and LGBM uses 12 boosting rounds; pass --full for\n"
        "the unscaled Table IV sweep.\n");
  }
  return 0;
}
