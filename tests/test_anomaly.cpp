// Tests for the anomaly taxonomy and the HPAS-like injectors: each type
// must leave its documented footprint on the NodeLoad, scale with
// intensity, and be deterministic for a fixed RNG stream.
#include <gtest/gtest.h>

#include "anomaly/anomaly.hpp"
#include "anomaly/injector.hpp"
#include "common/error.hpp"

namespace alba {
namespace {

NodeLoad baseline_load() {
  NodeLoad load;
  load.cpu_user = 0.6;
  load.cpu_system = 0.05;
  load.cpu_freq = 1.0;
  load.cache_miss_rate = 0.1;
  load.mem_used_gb = 12.0;
  load.mem_bw_util = 0.3;
  load.net_tx_rate = 200.0;
  load.net_rx_rate = 190.0;
  load.io_read_rate = 2.0;
  load.io_write_rate = 1.0;
  load.power_watts = 250.0;
  return load;
}

InjectionContext mid_run_context() {
  InjectionContext ctx;
  ctx.t_seconds = 33.0;
  ctx.t_frac = 0.5;
  ctx.mem_capacity_gb = 64.0;
  return ctx;
}

// Average footprint over one dial period so duty-cycled anomalies are
// measured fairly.
NodeLoad average_injected(AnomalyType type, double intensity,
                          std::uint64_t seed = 1) {
  const auto injector = make_injector(type, intensity);
  Rng rng(seed);
  NodeLoad acc;
  const int steps = 40;
  for (int t = 0; t < steps; ++t) {
    InjectionContext ctx;
    ctx.t_seconds = static_cast<double>(t);
    ctx.t_frac = static_cast<double>(t) / (steps - 1);
    ctx.mem_capacity_gb = 64.0;
    NodeLoad load = baseline_load();
    injector->apply(ctx, load, rng);
    acc.cpu_user += load.cpu_user / steps;
    acc.cpu_system += load.cpu_system / steps;
    acc.cpu_freq += load.cpu_freq / steps;
    acc.cache_miss_rate += load.cache_miss_rate / steps;
    acc.mem_used_gb += load.mem_used_gb / steps;
    acc.mem_bw_util += load.mem_bw_util / steps;
    acc.net_tx_rate += load.net_tx_rate / steps;
    acc.power_watts += load.power_watts / steps;
  }
  return acc;
}

TEST(AnomalyTaxonomy, NamesRoundTrip) {
  for (int label = 0; label < kNumClasses; ++label) {
    const AnomalyType type = anomaly_from_label(label);
    EXPECT_EQ(anomaly_from_name(anomaly_name(type)), type);
    EXPECT_EQ(anomaly_label(type), label);
  }
}

TEST(AnomalyTaxonomy, UnknownNameThrows) {
  EXPECT_THROW(anomaly_from_name("bitflip"), Error);
  EXPECT_THROW(anomaly_from_label(-1), Error);
  EXPECT_THROW(anomaly_from_label(kNumClasses), Error);
}

TEST(AnomalyTaxonomy, AnomalyTypesExcludeHealthy) {
  EXPECT_EQ(kAnomalyTypes.size(), static_cast<std::size_t>(kNumAnomalyTypes));
  for (const auto type : kAnomalyTypes) {
    EXPECT_NE(type, AnomalyType::Healthy);
  }
}

TEST(Injector, FactoryRejectsHealthyAndBadIntensity) {
  EXPECT_THROW(make_injector(AnomalyType::Healthy, 0.5), Error);
  EXPECT_THROW(make_injector(AnomalyType::CpuOccupy, 0.0), Error);
  EXPECT_THROW(make_injector(AnomalyType::CpuOccupy, 1.5), Error);
}

TEST(Injector, CpuOccupyFootprint) {
  const NodeLoad base = baseline_load();
  const NodeLoad out = average_injected(AnomalyType::CpuOccupy, 1.0);
  EXPECT_GT(out.cpu_user, base.cpu_user);
  EXPECT_GT(out.power_watts, base.power_watts);
  EXPECT_LT(out.net_tx_rate, base.net_tx_rate);
  // No cache or memory-bandwidth signature.
  EXPECT_NEAR(out.cache_miss_rate, base.cache_miss_rate, 1e-9);
  EXPECT_NEAR(out.mem_bw_util, base.mem_bw_util, 1e-9);
}

TEST(Injector, CacheCopyFootprint) {
  const NodeLoad base = baseline_load();
  const NodeLoad out = average_injected(AnomalyType::CacheCopy, 1.0);
  EXPECT_GT(out.cache_miss_rate, base.cache_miss_rate + 0.3);
  EXPECT_GT(out.mem_bw_util, base.mem_bw_util);
  EXPECT_LT(out.net_tx_rate, base.net_tx_rate);
}

TEST(Injector, MemBwFootprint) {
  const NodeLoad base = baseline_load();
  const NodeLoad out = average_injected(AnomalyType::MemBw, 1.0);
  EXPECT_GT(out.mem_bw_util, base.mem_bw_util + 0.4);
  EXPECT_LT(out.net_tx_rate, base.net_tx_rate * 0.8);
}

TEST(Injector, MemLeakGrowsWithTime) {
  const auto injector = make_injector(AnomalyType::MemLeak, 1.0);
  Rng rng(2);
  InjectionContext early = mid_run_context();
  early.t_frac = 0.1;
  NodeLoad l1 = baseline_load();
  injector->apply(early, l1, rng);

  InjectionContext late = mid_run_context();
  late.t_frac = 0.9;
  NodeLoad l2 = baseline_load();
  injector->apply(late, l2, rng);

  EXPECT_GT(l2.mem_used_gb, l1.mem_used_gb + 5.0);
}

TEST(Injector, MemLeakBoundedByCapacity) {
  const auto injector = make_injector(AnomalyType::MemLeak, 1.0);
  Rng rng(3);
  InjectionContext ctx = mid_run_context();
  ctx.t_frac = 1.0;
  NodeLoad load = baseline_load();
  load.mem_used_gb = 60.0;
  injector->apply(ctx, load, rng);
  EXPECT_LE(load.mem_used_gb, 0.97 * ctx.mem_capacity_gb + 1e-9);
}

TEST(Injector, DialThrottlesPeriodically) {
  const auto injector = make_injector(AnomalyType::Dial, 1.0);
  Rng rng(4);
  bool saw_throttle = false;
  bool saw_nominal = false;
  for (int t = 0; t < 20; ++t) {
    InjectionContext ctx;
    ctx.t_seconds = static_cast<double>(t);
    ctx.t_frac = t / 19.0;
    NodeLoad load = baseline_load();
    injector->apply(ctx, load, rng);
    if (load.cpu_freq < 0.6) saw_throttle = true;
    if (load.cpu_freq > 0.95) saw_nominal = true;
  }
  EXPECT_TRUE(saw_throttle);
  EXPECT_TRUE(saw_nominal);
}

TEST(Injector, DialDutyCycleGrowsWithIntensity) {
  auto duty_of = [](double intensity) {
    const auto injector = make_injector(AnomalyType::Dial, intensity);
    Rng rng(5);
    int throttled = 0;
    for (int t = 0; t < 200; ++t) {
      InjectionContext ctx;
      ctx.t_seconds = static_cast<double>(t) * 0.1;
      NodeLoad load = baseline_load();
      injector->apply(ctx, load, rng);
      throttled += (load.cpu_freq < 0.8) ? 1 : 0;
    }
    return throttled;
  };
  EXPECT_GT(duty_of(1.0), duty_of(0.02));
}

TEST(Injector, FootprintScalesWithIntensity) {
  for (const AnomalyType type :
       {AnomalyType::CpuOccupy, AnomalyType::CacheCopy, AnomalyType::MemBw}) {
    const NodeLoad weak = average_injected(type, 0.02);
    const NodeLoad strong = average_injected(type, 1.0);
    const NodeLoad base = baseline_load();
    const double weak_dev = std::abs(weak.net_tx_rate - base.net_tx_rate);
    const double strong_dev = std::abs(strong.net_tx_rate - base.net_tx_rate);
    EXPECT_GT(strong_dev, weak_dev) << anomaly_name(type);
  }
}

TEST(Injector, DeterministicForSameStream) {
  const auto injector = make_injector(AnomalyType::CacheCopy, 0.5);
  Rng r1(42);
  Rng r2(42);
  NodeLoad a = baseline_load();
  NodeLoad b = baseline_load();
  const InjectionContext ctx = mid_run_context();
  injector->apply(ctx, a, r1);
  injector->apply(ctx, b, r2);
  EXPECT_DOUBLE_EQ(a.cache_miss_rate, b.cache_miss_rate);
  EXPECT_DOUBLE_EQ(a.net_tx_rate, b.net_tx_rate);
}

TEST(Injector, IntensityGrids) {
  EXPECT_EQ(volta_intensities().size(), 6u);  // 2, 5, 10, 20, 50, 100 %
  for (const AnomalyType type : kAnomalyTypes) {
    const auto grid = eclipse_intensities(type);
    EXPECT_GE(grid.size(), 2u);
    EXPECT_LE(grid.size(), 3u);
    for (const double i : grid) {
      EXPECT_GT(i, 0.0);
      EXPECT_LE(i, 1.0);
    }
  }
  EXPECT_THROW(eclipse_intensities(AnomalyType::Healthy), Error);
}

TEST(NodeLoadStruct, CpuIdleClamped) {
  NodeLoad load;
  load.cpu_user = 0.9;
  load.cpu_system = 0.3;
  EXPECT_DOUBLE_EQ(load.cpu_idle(), 0.0);
  load.cpu_user = 0.5;
  load.cpu_system = 0.1;
  EXPECT_NEAR(load.cpu_idle(), 0.4, 1e-12);
}

}  // namespace
}  // namespace alba
