// Reproduces Table V: for each dataset, the number of labeled samples the
// best (feature extraction, query strategy) combination needs to reach F1
// 0.85 / 0.90 / 0.95, next to the fully supervised references (full AL
// training set, and the 5-fold CV ceiling on the whole dataset). The paper's
// combinations: Volta → TSFRESH + uncertainty, Eclipse → MVTS + margin.
// Expected shape: the AL strategies hit 0.95 with a few-percent fraction of
// the AL training set; Eclipse needs roughly an order of magnitude more
// labels than Volta.
#include "bench_common.hpp"

using namespace alba;
using namespace alba::bench;

int main(int argc, char** argv) {
  BenchFlags flags;
  Cli cli("bench_table5_summary",
          "Table V — labels required per target F1 on both datasets");
  add_standard_flags(cli, flags);
  cli.parse(argc, argv);
  apply_logging(flags);

  std::printf("=== Table V: anomaly diagnosis summary ===\n");
  std::vector<Table5Row> rows;

  struct Setting {
    SystemKind system;
    std::string method;
  };
  for (const Setting& setting :
       {Setting{SystemKind::Volta, "uncertainty"},
        Setting{SystemKind::Eclipse, "margin"}}) {
    const ExperimentData data = build_data(setting.system, flags);
    ExperimentOptions opt = make_options(flags);
    opt.methods = {setting.method};
    const QueryCurveResult result = run_query_curve_experiment(data, opt);
    rows.push_back(summarize_table5(data, result, setting.method));
  }

  std::printf("\n%s\n", render_table5(rows).c_str());
  std::printf(
      "note: sample counts are *additional* labels beyond the initial\n"
      "one-per-(application, anomaly) seed set; -1 means the target was not\n"
      "reached within the --queries budget (%d).\n",
      flags.queries);
  return 0;
}
