#include "serving/diagnoser.hpp"

#include <utility>

#include "common/error.hpp"

namespace alba {

std::string_view to_string(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::Ok: return "ok";
    case RequestStatus::RejectedQueueFull: return "rejected:queue_full";
    case RequestStatus::RejectedDeadline: return "rejected:deadline";
    case RequestStatus::RejectedDraining: return "rejected:draining";
    case RequestStatus::RejectedUnhealthy: return "rejected:unhealthy";
    case RequestStatus::Failed: return "failed";
  }
  return "unknown";
}

bool is_rejection(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::RejectedQueueFull:
    case RequestStatus::RejectedDeadline:
    case RequestStatus::RejectedDraining:
    case RequestStatus::RejectedUnhealthy:
      return true;
    case RequestStatus::Ok:
    case RequestStatus::Failed:
      return false;
  }
  return false;
}

bool is_retriable(RequestStatus status) noexcept {
  return status == RequestStatus::Failed ||
         status == RequestStatus::RejectedQueueFull;
}

DiagnosisResult diagnose_with_retry(Diagnoser& diagnoser,
                                    const DiagnoseRequest& request,
                                    const BackoffConfig& backoff) {
  ALBA_CHECK(request.window != nullptr) << "diagnose_with_retry needs a window";
  // If the deadline is already gone, retry_with_backoff never attempts
  // and `last` is returned as-is — which is then the correct status.
  DiagnosisResult last;
  last.status = RequestStatus::RejectedDeadline;
  std::size_t attempts = 0;
  const RetryResult outcome = retry_with_backoff(
      backoff,
      [&] {
        last = diagnoser.diagnose(request);
        ++attempts;
        return !is_retriable(last.status);
      },
      request.deadline);
  if (outcome == RetryResult::DeadlineExpired && is_retriable(last.status)) {
    // The budget, not the tier, ended the retry: the caller's answer is
    // "your deadline passed", not the last transient status we happened
    // to see.
    last = DiagnosisResult{};
    last.status = RequestStatus::RejectedDeadline;
  }
  last.attempts = attempts > 0 ? attempts : 1;
  return last;
}

}  // namespace alba
