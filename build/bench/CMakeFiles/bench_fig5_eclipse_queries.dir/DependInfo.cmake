
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_eclipse_queries.cpp" "bench/CMakeFiles/bench_fig5_eclipse_queries.dir/bench_fig5_eclipse_queries.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_eclipse_queries.dir/bench_fig5_eclipse_queries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_active.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_anomaly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
