// Fixed-width histogram + IQR-based outlier test. The IQR rule (1.5·IQR
// beyond Q1/Q3) is what the paper uses to justify its 10% anomaly ratio from
// Eclipse job execution times (Sec. IV-E-2).
#pragma once

#include <span>
#include <vector>

namespace alba::stats {

struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  double bin_width() const noexcept {
    return counts.empty() ? 0.0 : (hi - lo) / static_cast<double>(counts.size());
  }
};

/// Equal-width histogram over [min, max]; max lands in the last bin.
Histogram make_histogram(std::span<const double> x, std::size_t bins);

struct IqrFences {
  double q1 = 0.0;
  double q3 = 0.0;
  double lower = 0.0;  // q1 - 1.5 IQR
  double upper = 0.0;  // q3 + 1.5 IQR
};

IqrFences iqr_fences(std::span<const double> x, double k = 1.5);

/// Fraction of values outside the Tukey fences.
double outlier_ratio_iqr(std::span<const double> x, double k = 1.5);

}  // namespace alba::stats
