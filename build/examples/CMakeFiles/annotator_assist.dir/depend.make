# Empty dependencies file for annotator_assist.
# This may be replaced when dependencies are built.
