// Integration tests for the core layer: configs, the end-to-end pipeline,
// the Proctor baseline, the experiment runners, and report rendering — all
// on tiny configurations so the whole binary stays fast.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "core/experiments.hpp"
#include "core/proctor.hpp"
#include "core/dataset_io.hpp"
#include "core/report.hpp"

namespace alba {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::Warn);
    config_ = new DatasetConfig(tiny_config());
    config_->num_apps = 3;
    config_->inputs_per_app = 2;
    config_->plan.intensities_per_type = 1;
    data_ = new ExperimentData(build_experiment_data(*config_));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete config_;
    data_ = nullptr;
    config_ = nullptr;
  }

  static DatasetConfig* config_;
  static ExperimentData* data_;
};

DatasetConfig* CoreTest::config_ = nullptr;
ExperimentData* CoreTest::data_ = nullptr;

// --------------------------------------------------------------- config ---

TEST(Config, PresetsMatchPaperChoices) {
  const DatasetConfig volta = volta_config();
  EXPECT_EQ(volta.system, SystemKind::Volta);
  EXPECT_EQ(volta.extractor, ExtractorKind::Tsfresh);
  EXPECT_EQ(volta.plan.nodes_per_run, 4);
  const DatasetConfig eclipse = eclipse_config();
  EXPECT_EQ(eclipse.system, SystemKind::Eclipse);
  EXPECT_EQ(eclipse.extractor, ExtractorKind::Mvts);
  // Full-scale configs are strictly larger.
  EXPECT_GT(volta_config(true).sim.duration_steps, volta.sim.duration_steps);
  EXPECT_GT(volta_config(true).select_k, volta.select_k);
}

// ------------------------------------------------------------- pipeline ---

TEST_F(CoreTest, BuildProducesLabeledFeatures) {
  EXPECT_GT(data_->features.num_samples(), 50u);
  EXPECT_GT(data_->features.num_features(), 100u);
  EXPECT_EQ(data_->num_apps, 3u);
  EXPECT_EQ(data_->app_names.size(), 3u);
  // All six classes present.
  std::set<int> classes(data_->features.labels.begin(),
                        data_->features.labels.end());
  EXPECT_EQ(classes.size(), static_cast<std::size_t>(kNumClasses));
}

TEST_F(CoreTest, PrepareSplitScalesAndSelects) {
  const SplitIndices split = make_split(*data_, 0.3, 1);
  const PreparedSplit prep = prepare_split(*data_, split, 40);
  EXPECT_EQ(prep.train_x.cols(), 40u);
  EXPECT_EQ(prep.test_x.cols(), 40u);
  EXPECT_EQ(prep.selected_names.size(), 40u);
  EXPECT_EQ(prep.train_x.rows(), split.train.size());
  // Min-Max scaled: all values in [0, 1].
  for (std::size_t i = 0; i < prep.train_x.rows(); ++i) {
    for (const double v : prep.train_x.row(i)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
  for (std::size_t i = 0; i < prep.test_x.rows(); ++i) {
    for (const double v : prep.test_x.row(i)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST_F(CoreTest, AlSetupSeedsOnePerAppAnomalyPair) {
  const SplitIndices split = make_split(*data_, 0.3, 2);
  const PreparedSplit prep = prepare_split(*data_, split, 40);
  const ALSetup setup = make_al_setup(prep, 3);
  // Up to 3 apps × 5 anomaly types; the tiny config has so few anomalous
  // samples that a pair can land entirely in the test partition, so the
  // seed may be slightly smaller — but never contains healthy samples and
  // never repeats an (app, anomaly) pair.
  EXPECT_LE(setup.seed.size(), 15u);
  EXPECT_GE(setup.seed.size(), 10u);
  for (const int label : setup.seed.y) EXPECT_NE(label, 0);
  std::set<std::pair<int, int>> pairs;
  for (const std::size_t row : setup.seed_rows) {
    pairs.insert({prep.train_app[row], prep.train_y[row]});
  }
  EXPECT_EQ(pairs.size(), setup.seed.size());
  // Pool + seed = training partition.
  EXPECT_EQ(setup.pool_x.rows() + setup.seed.size(), prep.train_x.rows());
  EXPECT_EQ(setup.pool_y.size(), setup.pool_x.rows());
  EXPECT_EQ(setup.pool_app.size(), setup.pool_x.rows());
}

TEST_F(CoreTest, AlSetupSeedAppsRestriction) {
  const SplitIndices split = make_split(*data_, 0.3, 4);
  const PreparedSplit prep = prepare_split(*data_, split, 40);
  const std::vector<int> seed_apps{1};
  const ALSetup setup = make_al_setup(prep, 5, seed_apps);
  EXPECT_LE(setup.seed.size(), 5u);  // one app × up to five anomalies
  EXPECT_GE(setup.seed.size(), 3u);
  for (const std::size_t row : setup.seed_rows) {
    EXPECT_EQ(prep.train_app[row], 1);
  }
  // Pool still spans all applications.
  std::set<int> pool_apps(setup.pool_app.begin(), setup.pool_app.end());
  EXPECT_EQ(pool_apps.size(), 3u);
}

// -------------------------------------------------------------- proctor ---

TEST_F(CoreTest, ProctorNeedsPretraining) {
  ProctorConfig cfg;
  cfg.num_classes = kNumClasses;
  cfg.autoencoder.epochs = 2;
  ProctorClassifier proctor(cfg, 1);
  Matrix x(4, 10, 0.5);
  const std::vector<int> y{1, 2, 3, 4};
  EXPECT_THROW(proctor.fit(x, y), Error);
}

TEST_F(CoreTest, ProctorFitsAfterPretraining) {
  const SplitIndices split = make_split(*data_, 0.3, 6);
  const PreparedSplit prep = prepare_split(*data_, split, 30);
  const ALSetup setup = make_al_setup(prep, 7);

  ProctorConfig cfg;
  cfg.num_classes = kNumClasses;
  cfg.autoencoder.encoder_layers = {32};
  cfg.autoencoder.code_size = 8;
  cfg.autoencoder.epochs = 4;
  cfg.head.max_iter = 80;
  ProctorClassifier proctor(cfg, 1);
  proctor.pretrain(setup.pool_x);
  EXPECT_TRUE(proctor.pretrained());

  LabeledData all = setup.seed;
  for (std::size_t i = 0; i < setup.pool_x.rows(); ++i) {
    all.append(setup.pool_x.row(i), setup.pool_y[i]);
  }
  proctor.fit(all.x, all.y);
  EXPECT_TRUE(proctor.fitted());
  const Matrix probs = proctor.predict_proba(setup.test_x);
  EXPECT_EQ(probs.cols(), static_cast<std::size_t>(kNumClasses));
  for (std::size_t i = 0; i < probs.rows(); ++i) {
    double sum = 0.0;
    for (const double p : probs.row(i)) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_F(CoreTest, ProctorCloneSharesEncoder) {
  ProctorConfig cfg;
  cfg.num_classes = kNumClasses;
  cfg.autoencoder.encoder_layers = {16};
  cfg.autoencoder.code_size = 4;
  cfg.autoencoder.epochs = 2;
  ProctorClassifier proctor(cfg, 1);
  Matrix x(20, 12, 0.3);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, i % 12) = 0.9;
  }
  proctor.pretrain(x);
  auto clone = proctor.clone();
  auto* cloned = dynamic_cast<ProctorClassifier*>(clone.get());
  ASSERT_NE(cloned, nullptr);
  EXPECT_TRUE(cloned->pretrained());
  EXPECT_EQ(&cloned->encoder(), &proctor.encoder());
}

// ---------------------------------------------------------- experiments ---

TEST_F(CoreTest, QueryCurveExperimentShapes) {
  ExperimentOptions opt;
  opt.max_queries = 8;
  opt.repeats = 2;
  opt.methods = {"uncertainty", "random"};
  const QueryCurveResult result = run_query_curve_experiment(*data_, opt);
  ASSERT_EQ(result.methods.size(), 2u);
  for (const auto& m : result.methods) {
    EXPECT_EQ(m.repeats.size(), 2u);
    EXPECT_EQ(m.aggregated.queries.size(), 9u);  // 0..8
    EXPECT_EQ(m.queried_label_app.size(), 16u);  // 8 queries × 2 repeats
  }
  EXPECT_GT(result.al_train_size, 0u);
  EXPECT_GE(result.full_train_f1, 0.0);
  EXPECT_LE(result.cv_max_f1, 1.0);
}

TEST_F(CoreTest, Table5SummaryFromResult) {
  ExperimentOptions opt;
  opt.max_queries = 5;
  opt.repeats = 2;
  opt.methods = {"uncertainty"};
  const QueryCurveResult result = run_query_curve_experiment(*data_, opt);
  const Table5Row row = summarize_table5(*data_, result, "uncertainty");
  EXPECT_EQ(row.dataset, "volta");
  EXPECT_EQ(row.initial_samples, 15u);  // 3 apps × 5 anomalies
  EXPECT_EQ(row.query_strategy, "uncertainty");
  EXPECT_THROW(summarize_table5(*data_, result, "margin"), Error);
  const std::string rendered = render_table5({row});
  EXPECT_NE(rendered.find("volta"), std::string::npos);
}

TEST_F(CoreTest, QueryDistributionCountsAddUp) {
  ExperimentOptions opt;
  opt.repeats = 2;
  opt.methods = {"uncertainty"};
  const QueryDistribution dist = run_query_distribution(*data_, 10, opt);
  EXPECT_EQ(dist.first_n, 10);
  double total = 0.0;
  for (const double v : dist.label_totals) total += v;
  EXPECT_NEAR(total, 10.0, 1e-9);  // mean queries per repeat
  const std::string rendered = render_query_distribution(dist);
  EXPECT_NE(rendered.find("healthy"), std::string::npos);
}

TEST_F(CoreTest, UnseenAppsScenarios) {
  ExperimentOptions opt;
  opt.max_queries = 5;
  opt.repeats = 2;
  opt.methods = {"uncertainty", "random"};
  const auto scenarios = run_unseen_apps_experiment(*data_, {1, 2}, opt);
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].train_apps, 1);
  EXPECT_EQ(scenarios[1].train_apps, 2);
  for (const auto& s : scenarios) {
    ASSERT_EQ(s.methods.size(), 2u);
    EXPECT_EQ(s.methods[0].aggregated.queries.size(), 6u);
  }
}

TEST_F(CoreTest, RobustnessExperimentShapes) {
  ExperimentOptions opt;
  opt.repeats = 2;
  const RobustnessResult result =
      run_robustness_experiment(*data_, {1, 2}, 1, opt);
  ASSERT_EQ(result.points.size(), 2u);
  for (const auto& p : result.points) {
    EXPECT_GE(p.f1_mean, 0.0);
    EXPECT_LE(p.f1_mean, 1.0);
    EXPECT_LE(p.f1_lo, p.f1_mean);
    EXPECT_GE(p.f1_hi, p.f1_mean);
  }
  EXPECT_GT(result.cv_f1, 0.0);
  const std::string rendered = render_robustness(result);
  EXPECT_NE(rendered.find("train apps"), std::string::npos);
}

TEST_F(CoreTest, UnseenInputsExperiment) {
  ExperimentOptions opt;
  opt.max_queries = 5;
  opt.repeats = 2;
  opt.methods = {"uncertainty", "random"};
  const UnseenInputsResult result =
      run_unseen_inputs_experiment(*data_, opt);
  ASSERT_EQ(result.methods.size(), 2u);
  EXPECT_EQ(result.methods[0].repeats.size(), 2u);
  EXPECT_GE(result.starting_f1, 0.0);
  EXPECT_GE(result.full_train_f1, 0.0);
}

TEST_F(CoreTest, ReportRenderingAndCsv) {
  ExperimentOptions opt;
  opt.max_queries = 4;
  opt.repeats = 2;
  opt.methods = {"uncertainty", "random"};
  const QueryCurveResult result = run_query_curve_experiment(*data_, opt);
  const std::string text = render_query_curves(result.methods, 2);
  EXPECT_NE(text.find("uncertainty F1"), std::string::npos);
  EXPECT_NE(text.find("legend"), std::string::npos);

  const std::string path = "/tmp/alba_curves_test.csv";
  write_curves_csv(path, result.methods);
  const CsvTable table = read_csv(path);
  EXPECT_EQ(table.header.size(), 11u);
  EXPECT_EQ(table.rows.size(), 2u * 5u);  // 2 methods × (0..4)
  std::remove(path.c_str());
}


// ------------------------------------------------------------ dataset io ---

TEST_F(CoreTest, FeatureMatrixBinaryRoundTrip) {
  const std::string path = "/tmp/alba_feature_matrix_test.bin";
  save_feature_matrix(path, data_->features);
  const FeatureMatrix loaded = load_feature_matrix(path);
  ASSERT_EQ(loaded.num_samples(), data_->features.num_samples());
  ASSERT_EQ(loaded.num_features(), data_->features.num_features());
  EXPECT_EQ(loaded.names, data_->features.names);
  EXPECT_EQ(loaded.labels, data_->features.labels);
  EXPECT_EQ(loaded.app_ids, data_->features.app_ids);
  EXPECT_EQ(loaded.node_ids, data_->features.node_ids);
  for (std::size_t i = 0; i < loaded.num_samples(); i += 7) {
    for (std::size_t j = 0; j < loaded.num_features(); j += 13) {
      EXPECT_DOUBLE_EQ(loaded.x(i, j), data_->features.x(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST_F(CoreTest, FeatureMatrixRejectsGarbage) {
  const std::string path = "/tmp/alba_feature_matrix_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage bytes, definitely not a feature matrix file";
  }
  EXPECT_THROW(load_feature_matrix(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW(load_feature_matrix("/nonexistent/fm.bin"), Error);
}

TEST_F(CoreTest, FeatureMatrixCsvExport) {
  const std::string path = "/tmp/alba_feature_matrix_test.csv";
  write_feature_matrix_csv(path, data_->features);
  const CsvTable table = read_csv(path);
  EXPECT_EQ(table.header.size(), 6u + data_->features.num_features());
  EXPECT_EQ(table.rows.size(), data_->features.num_samples());
  EXPECT_EQ(table.header[1], "anomaly");
  std::remove(path.c_str());
}

TEST_F(CoreTest, ExperimentsDeterministic) {
  ExperimentOptions opt;
  opt.max_queries = 4;
  opt.repeats = 1;
  opt.methods = {"uncertainty"};
  opt.seed = 123;
  const auto a = run_query_curve_experiment(*data_, opt);
  const auto b = run_query_curve_experiment(*data_, opt);
  ASSERT_EQ(a.methods[0].aggregated.f1_mean.size(),
            b.methods[0].aggregated.f1_mean.size());
  for (std::size_t i = 0; i < a.methods[0].aggregated.f1_mean.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.methods[0].aggregated.f1_mean[i],
                     b.methods[0].aggregated.f1_mean[i]);
  }
}

}  // namespace
}  // namespace alba
