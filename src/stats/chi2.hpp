// Chi-Square feature scoring, mirroring sklearn.feature_selection.chi2:
// for non-negative feature matrix X and integer labels y, treats each
// feature's per-class sums as observed counts and the class-prior-weighted
// feature totals as expected counts. Higher score ⇒ stronger dependence of
// the feature on the label (Sec. III-B of the paper).
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace alba::stats {

/// Per-feature chi-square statistic. X must be non-negative (scale with
/// MinMaxScaler first, as the paper does). Throws on negative entries.
std::vector<double> chi2_scores(const Matrix& x, std::span<const int> y);

/// Chi-square statistic for one observed/expected pair of count vectors.
double chi2_statistic(std::span<const double> observed,
                      std::span<const double> expected);

}  // namespace alba::stats
