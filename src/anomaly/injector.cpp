#include "anomaly/injector.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace alba {

namespace {

double clamp01(double v) noexcept { return std::clamp(v, 0.0, 1.0); }

// Steals a fraction of the node's CPU: the interfering process runs at
// `intensity` of one socket's worth of compute. The victim's own activity
// scales down by the contention factor.
class CpuOccupyInjector final : public AnomalyInjector {
 public:
  explicit CpuOccupyInjector(double intensity) : AnomalyInjector(intensity) {}
  AnomalyType type() const noexcept override { return AnomalyType::CpuOccupy; }

  void apply(const InjectionContext&, NodeLoad& load, Rng& rng) const override {
    const double burn = 0.85 * effect() * (1.0 + 0.05 * rng.normal());
    // Victim loses throughput roughly proportionally to stolen cycles.
    const double slowdown = 1.0 / (1.0 + 0.8 * effect());
    load.net_tx_rate *= slowdown;
    load.net_rx_rate *= slowdown;
    load.io_read_rate *= slowdown;
    load.io_write_rate *= slowdown;
    load.cpu_user = clamp01(load.cpu_user * slowdown + burn);
    // Scheduler churn from the extra runnable process.
    load.cpu_system = clamp01(load.cpu_system + 0.12 * effect());
    load.power_watts *= 1.0 + 0.38 * effect();
  }
};

// Cache-thrashing copy loop: the dominant signal is the LLC miss ratio and
// the induced memory traffic from write-backs.
class CacheCopyInjector final : public AnomalyInjector {
 public:
  explicit CacheCopyInjector(double intensity) : AnomalyInjector(intensity) {}
  AnomalyType type() const noexcept override { return AnomalyType::CacheCopy; }

  void apply(const InjectionContext&, NodeLoad& load, Rng& rng) const override {
    const double thrash = 0.6 * effect() * (1.0 + 0.04 * rng.normal());
    load.cache_miss_rate = clamp01(load.cache_miss_rate + thrash);
    load.mem_bw_util = clamp01(load.mem_bw_util + 0.28 * effect());
    load.cpu_user = clamp01(load.cpu_user + 0.10 * effect());
    // Victim slowdown from extra memory stalls.
    const double slowdown = 1.0 / (1.0 + 0.25 * effect());
    load.net_tx_rate *= slowdown;
    load.net_rx_rate *= slowdown;
    load.power_watts *= 1.0 + 0.10 * effect();
  }
};

// Uncached streaming writes saturate the memory controllers.
class MemBwInjector final : public AnomalyInjector {
 public:
  explicit MemBwInjector(double intensity) : AnomalyInjector(intensity) {}
  AnomalyType type() const noexcept override { return AnomalyType::MemBw; }

  void apply(const InjectionContext&, NodeLoad& load, Rng& rng) const override {
    const double stream = 0.85 * effect() * (1.0 + 0.03 * rng.normal());
    load.mem_bw_util = clamp01(load.mem_bw_util + stream);
    load.cache_miss_rate = clamp01(load.cache_miss_rate + 0.25 * effect());
    load.cpu_user = clamp01(load.cpu_user + 0.06 * effect());
    const double slowdown = 1.0 / (1.0 + 0.6 * effect());
    load.net_tx_rate *= slowdown;
    load.net_rx_rate *= slowdown;
    load.io_read_rate *= slowdown;
    load.io_write_rate *= slowdown;
    load.power_watts *= 1.0 + 0.15 * effect();
  }
};

// Steadily allocates and touches memory: linear RSS growth over the run,
// bounded by node capacity; paging pressure once above ~85% of capacity.
class MemLeakInjector final : public AnomalyInjector {
 public:
  explicit MemLeakInjector(double intensity) : AnomalyInjector(intensity) {}
  AnomalyType type() const noexcept override { return AnomalyType::MemLeak; }

  void apply(const InjectionContext& ctx, NodeLoad& load, Rng& rng) const override {
    // intensity scales the leak rate; at 1.0 the leak would consume ~60% of
    // node memory over a full run.
    const double leaked =
        0.6 * effect() * ctx.t_frac * ctx.mem_capacity_gb *
        (1.0 + 0.02 * rng.normal());
    load.mem_used_gb =
        std::min(load.mem_used_gb + leaked, 0.97 * ctx.mem_capacity_gb);
    load.cpu_system = clamp01(load.cpu_system + 0.02 * effect());
    if (load.mem_used_gb > 0.85 * ctx.mem_capacity_gb) {
      // Allocation pressure: reclaim/paging activity shows up as system
      // time and IO, and the victim slows down.
      load.cpu_system = clamp01(load.cpu_system + 0.10 * effect());
      load.io_write_rate += 40.0 * effect();
      load.net_tx_rate *= 0.9;
      load.net_rx_rate *= 0.9;
    }
  }
};

// Periodic CPU frequency reduction (HPAS `dial`). Every rate-derived
// channel breathes with the dial period; at small intensities the dips are
// within normal noise, which is exactly why the paper finds dial hardest.
class DialInjector final : public AnomalyInjector {
 public:
  explicit DialInjector(double intensity) : AnomalyInjector(intensity) {}
  AnomalyType type() const noexcept override { return AnomalyType::Dial; }

  void apply(const InjectionContext& ctx, NodeLoad& load, Rng& rng) const override {
    // HPAS dial switches the governor between max and min frequency; the
    // throttle depth is fixed by the CPU's P-state range and the intensity
    // knob controls how much of each period is spent throttled.
    constexpr double kDialPeriodSeconds = 20.0;
    const double duty = 0.30 + 0.45 * effect();
    double pos = ctx.t_seconds / kDialPeriodSeconds;
    pos -= std::floor(pos);
    const double dip = (pos < duty) ? 1.0 : 0.0;
    const double freq_drop = 0.58 * dip * (1.0 + 0.02 * rng.normal());
    load.cpu_freq = std::clamp(load.cpu_freq - freq_drop, 0.2, 1.0);
    // Work takes longer at lower frequency: busy fraction rises while
    // delivered throughput falls.
    const double stretch = 1.0 / load.cpu_freq;
    load.cpu_user = clamp01(load.cpu_user * std::min(stretch, 2.2));
    load.net_tx_rate *= load.cpu_freq;
    load.net_rx_rate *= load.cpu_freq;
    load.io_read_rate *= load.cpu_freq;
    load.io_write_rate *= load.cpu_freq;
    load.power_watts *= 0.30 + 0.70 * load.cpu_freq;
  }
};

}  // namespace

AnomalyInjector::AnomalyInjector(double intensity)
    : intensity_(intensity), effect_(std::pow(intensity, 0.25)) {
  ALBA_CHECK(intensity > 0.0 && intensity <= 1.0)
      << "anomaly intensity must be in (0, 1], got " << intensity;
}

std::unique_ptr<AnomalyInjector> make_injector(AnomalyType type,
                                               double intensity) {
  switch (type) {
    case AnomalyType::CpuOccupy:
      return std::make_unique<CpuOccupyInjector>(intensity);
    case AnomalyType::CacheCopy:
      return std::make_unique<CacheCopyInjector>(intensity);
    case AnomalyType::MemBw:
      return std::make_unique<MemBwInjector>(intensity);
    case AnomalyType::MemLeak:
      return std::make_unique<MemLeakInjector>(intensity);
    case AnomalyType::Dial:
      return std::make_unique<DialInjector>(intensity);
    case AnomalyType::Healthy:
      break;
  }
  throw Error("cannot construct an injector for the healthy class");
}

std::vector<double> volta_intensities() {
  return {0.02, 0.05, 0.10, 0.20, 0.50, 1.00};
}

std::vector<double> eclipse_intensities(AnomalyType type) {
  switch (type) {
    case AnomalyType::CpuOccupy: return {0.05, 0.20, 1.00};
    case AnomalyType::CacheCopy: return {0.05, 0.50};
    case AnomalyType::MemBw: return {0.05, 0.20, 1.00};
    case AnomalyType::MemLeak: return {0.05, 0.50};
    case AnomalyType::Dial: return {0.05, 0.20, 1.00};
    case AnomalyType::Healthy: break;
  }
  throw Error("no intensity settings for the healthy class");
}

}  // namespace alba
