// Binary model persistence — the C++ analogue of the paper's "final model
// is stored as a pickle object" (Sec. III-E). A small framed binary archive
// with magic + version, plus save/load for every classifier the library
// ships. load_classifier dispatches on the stored type tag.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/classifier.hpp"

namespace alba {

class ArchiveWriter {
 public:
  explicit ArchiveWriter(std::ostream& out);

  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_double(double v);
  void write_string(const std::string& s);
  void write_doubles(const std::vector<double>& v);
  void write_ints(const std::vector<int>& v);
  void write_matrix(const Matrix& m);

 private:
  std::ostream& out_;
};

class ArchiveReader {
 public:
  explicit ArchiveReader(std::istream& in);

  std::uint64_t read_u64();
  std::int64_t read_i64();
  double read_double();
  std::string read_string();
  std::vector<double> read_doubles();
  std::vector<int> read_ints();
  Matrix read_matrix();

 private:
  std::istream& in_;
};

/// Serializes a fitted classifier (random_forest, logistic_regression,
/// lgbm, or mlp) with a self-describing header. Throws on unfitted models
/// and unsupported types.
void save_classifier(std::ostream& out, const Classifier& model);

/// Reconstructs the classifier saved by save_classifier; the returned model
/// is fitted and ready to predict.
std::unique_ptr<Classifier> load_classifier(std::istream& in);

/// File-path convenience wrappers.
void save_classifier_file(const std::string& path, const Classifier& model);
std::unique_ptr<Classifier> load_classifier_file(const std::string& path);

}  // namespace alba
