// Serving-path benchmark: end-to-end from an exported ModelBundle. Trains
// a small model, freezes it with export_model_bundle, reloads it into a
// DiagnosisService, and serves a stream of raw telemetry windows (with a
// repeated-window share to exercise the LRU cache), sweeping micro-batch
// size x thread count and reporting p50/p99 request latency, windows/sec,
// and cache hit rate per configuration.
//
// --smoke runs the CI gate instead of the sweep: serve 100 windows and
// assert nonzero throughput plus bit-identical agreement with the offline
// pipeline (extract_features -> project -> scale -> select -> predict).
//
//   ./build/bench/bench_serving            # the sweep
//   ./build/bench/bench_serving --smoke    # CI smoke, exit 1 on failure
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "alba.hpp"

using namespace alba;

namespace {

constexpr const char* kBundlePath = "/tmp/albadross_bench_bundle.bin";

struct Stream {
  std::vector<Sample> samples;   // aligned with windows (repeats duplicated)
  std::vector<Matrix> windows;
};

// A stream of per-node windows from fresh runs; every 4th window repeats an
// earlier one (a stalled collector / dashboard re-check) so the cache has
// something to do.
Stream make_stream(const RunGenerator& generator, std::size_t count,
                   std::uint64_t seed) {
  Stream stream;
  const auto num_apps = static_cast<int>(generator.apps().size());
  int run_id = 1000;
  while (stream.windows.size() < count) {
    RunSpec spec;
    spec.app_id = run_id % num_apps;
    spec.input_id = run_id % 2;
    spec.nodes = 2;
    const std::size_t variant = static_cast<std::size_t>(run_id) % 4;
    if (variant != 0) {
      spec.anomaly = kAnomalyTypes[variant - 1];
      spec.intensity = variant == 1 ? 0.5 : 1.0;
    }
    spec.run_id = run_id;
    spec.seed = seed + static_cast<std::uint64_t>(run_id);
    ++run_id;
    for (const Sample& s : generator.generate_run(spec)) {
      if (stream.windows.size() >= count) break;
      if (stream.windows.size() % 4 == 3 && stream.windows.size() > 4) {
        const std::size_t repeat = stream.windows.size() / 2;
        stream.samples.push_back(stream.samples[repeat]);
        stream.windows.push_back(stream.windows[repeat]);
        continue;
      }
      stream.samples.push_back(s);
      stream.windows.push_back(s.series);
    }
  }
  return stream;
}

// The offline reference: the exact training-harness pipeline over the same
// windows, ending in Classifier::predict_proba.
Matrix offline_probs(const Stream& stream, const RunGenerator& generator,
                     const DatasetConfig& cfg, const ModelBundle& bundle,
                     const PreparedSplit& prepared, const Classifier& model) {
  const auto extractor = make_extractor(cfg.extractor);
  const FeatureMatrix fm = extract_features(stream.samples,
                                            generator.registry(), *extractor,
                                            cfg.preprocess);
  Matrix x = select_features_by_name(fm, bundle.feature_names);
  prepared.scaler.transform(x);
  x = prepared.selector.transform(x);
  return model.predict_proba(x);
}

bool bits_equal(double a, double b) noexcept {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  int windows = 240;
  std::uint64_t seed = 7;
  bool smoke = false;
  std::string out_csv;
  Cli cli("bench_serving",
          "Online serving benchmark: latency/throughput/cache sweep over an "
          "exported ModelBundle (--smoke for the CI agreement gate).");
  cli.flag("windows", &windows, "windows in the served stream");
  cli.flag("seed", &seed, "stream generation seed");
  cli.flag("smoke", &smoke, "serve 100 windows, assert offline agreement");
  cli.flag("out", &out_csv, "CSV dump path (empty = none)");
  cli.parse(argc, argv);
  set_log_level(LogLevel::Warn);

  // ---- train a small model and freeze it --------------------------------
  DatasetConfig cfg = tiny_config();
  cfg.seed = seed;
  std::printf("[setup] building dataset + training classifier...\n");
  const ExperimentData data = build_experiment_data(cfg);
  const SplitIndices split = make_split(data, cfg.test_fraction, seed);
  const PreparedSplit prepared = prepare_split(data, split, cfg.select_k);
  auto model = make_model_factory("rf", kNumClasses, seed)(
      table4_optimum("rf", false));
  model->fit(prepared.train_x, prepared.train_y);
  export_model_bundle(kBundlePath, data, prepared, *model);
  std::printf("[setup] bundle exported to %s (%zu selected features)\n",
              kBundlePath, prepared.selected_names.size());

  const RunGenerator generator(cfg.system, cfg.registry, cfg.sim);
  const std::size_t n = smoke ? 100 : static_cast<std::size_t>(windows);
  const Stream stream = make_stream(generator, n, seed + 1);

  if (smoke) {
    DiagnosisService service(load_model_bundle_file(kBundlePath),
                             ServingConfig{.max_batch = 8});
    const auto diagnoses = service.diagnose_batch(stream.windows);
    const Matrix reference =
        offline_probs(stream, generator, cfg, service.bundle(), prepared,
                      *model);
    const std::vector<int> offline_labels = model->predict(
        [&] {
          Matrix x = select_features_by_name(
              extract_features(stream.samples, generator.registry(),
                               *make_extractor(cfg.extractor),
                               cfg.preprocess),
              service.bundle().feature_names);
          prepared.scaler.transform(x);
          return prepared.selector.transform(x);
        }());

    std::size_t disagreements = 0;
    for (std::size_t i = 0; i < diagnoses.size(); ++i) {
      if (diagnoses[i].label != offline_labels[i]) ++disagreements;
      for (std::size_t c = 0; c < diagnoses[i].probs.size(); ++c) {
        if (!bits_equal(diagnoses[i].probs[c], reference(i, c))) {
          ++disagreements;
          break;
        }
      }
    }
    const ServingStats s = service.stats();
    std::printf("[smoke] %s\n", format_serving_summary(s).c_str());
    if (disagreements != 0 || s.windows_per_second() <= 0.0 ||
        s.windows != diagnoses.size()) {
      std::printf("[smoke] FAILED: %zu disagreements, %.1f win/s\n",
                  disagreements, s.windows_per_second());
      return 1;
    }
    std::printf("[smoke] ok: %zu windows served, bit-identical to the "
                "offline pipeline, cache hit rate %.1f%%\n",
                diagnoses.size(), 100.0 * s.hit_rate());
    return 0;
  }

  // ---- the sweep ---------------------------------------------------------
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts{1};
  if (hw > 1) thread_counts.push_back(hw);
  const std::vector<std::size_t> batch_sizes{1, 8, 32};

  TextTable table({"batch", "threads", "p50 ms", "p99 ms", "windows/s",
                   "cache hit %"});
  std::vector<std::string> csv_rows;
  for (const std::size_t threads : thread_counts) {
    ThreadPool pool(threads);
    for (const std::size_t batch : batch_sizes) {
      ServingConfig serving;
      serving.max_batch = batch;
      serving.pool = &pool;
      DiagnosisService service(load_model_bundle_file(kBundlePath), serving);
      for (std::size_t begin = 0; begin < stream.windows.size();
           begin += batch) {
        const std::size_t end =
            std::min(stream.windows.size(), begin + batch);
        service.diagnose_batch(std::span<const Matrix>(stream.windows)
                                   .subspan(begin, end - begin));
      }
      const ServingStats s = service.stats();
      table.add_row({std::to_string(batch), std::to_string(threads),
                     strformat("%.3f", s.latency_p50_ms),
                     strformat("%.3f", s.latency_p99_ms),
                     strformat("%.1f", s.windows_per_second()),
                     strformat("%.1f", 100.0 * s.hit_rate())});
      csv_rows.push_back(serving_stats_csv_row(
          strformat("batch=%zu/threads=%zu", batch, threads), s));
    }
  }
  std::printf("\nserving sweep over %zu windows (%zu distinct)\n%s\n",
              stream.windows.size(),
              stream.windows.size() - stream.windows.size() / 4,
              table.render().c_str());

  if (!out_csv.empty()) {
    std::ofstream out(out_csv);
    out << serving_stats_csv_header() << "\n";
    for (const auto& row : csv_rows) out << row << "\n";
    std::printf("CSV written to %s\n", out_csv.c_str());
  }
  return 0;
}
