// Reproduces Fig. 7: the motivating supervised-robustness experiment — a
// random forest trained on telemetry from k applications, evaluated on a
// fixed test set of 3 held-out applications, with the all-apps 5-fold CV
// scores as the reference (dashed lines in the paper). Expected shape: with
// 2 training applications the F1 drops by tens of percent and the false
// alarm rate is an order of magnitude above the CV reference; both recover
// as applications are added but never fully reach the reference.
#include "bench_common.hpp"

using namespace alba;
using namespace alba::bench;

int main(int argc, char** argv) {
  BenchFlags flags;
  flags.repeats = 5;
  int test_apps = 3;
  Cli cli("bench_fig7_robustness",
          "Fig. 7 — supervised F1 vs number of training applications");
  add_standard_flags(cli, flags);
  cli.flag("test_apps", &test_apps, "held-out applications in the test set");
  cli.parse(argc, argv);
  apply_logging(flags);

  std::printf("=== Fig. 7: robustness of a supervised random forest (Volta) ===\n");
  const ExperimentData data = build_data(SystemKind::Volta, flags);

  ExperimentOptions opt = make_options(flags);
  const std::vector<int> train_counts{2, 4, 6, 8};
  const RobustnessResult result =
      run_robustness_experiment(data, train_counts, test_apps, opt);

  std::printf("\n%s\n", render_robustness(result).c_str());

  const auto& first = result.points.front();
  std::printf("with %d training apps: F1 is %.0f%% below the CV reference, "
              "false alarms are %.0fx the reference\n",
              first.train_apps,
              100.0 * (result.cv_f1 - first.f1_mean) /
                  std::max(result.cv_f1, 1e-9),
              first.far_mean / std::max(result.cv_far, 1e-3));

  const std::string csv = flags.out_dir + "/fig7_robustness.csv";
  write_robustness_csv(csv, result);
  std::printf("points written to %s\n", csv.c_str());
  return 0;
}
