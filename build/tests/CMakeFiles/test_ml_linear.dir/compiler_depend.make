# Empty compiler generated dependencies file for test_ml_linear.
# This may be replaced when dependencies are built.
