// Stream-based selective sampling — the second of the three active
// learning scenarios the paper describes (Sec. II-A): unlabeled samples
// arrive one at a time (e.g. straight off the monitoring bus) and the
// learner decides *immediately* whether to ask the annotator for a label,
// based on an uncertainty threshold. Unlike pool-based sampling it never
// sees the whole pool, so it trades label efficiency for O(1) memory and
// zero query latency — the trade-off quantified by the stream-vs-pool
// ablation bench.
#pragma once

#include <memory>

#include "active/curves.hpp"
#include "active/oracle.hpp"
#include "ml/classifier.hpp"
#include "ml/dataset.hpp"

namespace alba {

struct StreamSamplerConfig {
  /// Query when the model's uncertainty (1 − max prob) exceeds this.
  double uncertainty_threshold = 0.5;
  /// Hard cap on oracle queries; the stream keeps flowing without labeling
  /// once exhausted.
  int max_queries = 250;
  /// Adapt the threshold: raise it after each query (demand more
  /// uncertainty as the model sharpens) and decay it during quiet spells
  /// (never starve). 0 disables adaptation.
  double adapt_rate = 0.0;
};

struct StreamResult {
  QueryCurve curve;          // one point per *query* (not per stream item)
  std::size_t seen = 0;      // stream items observed
  std::size_t queried = 0;   // labels requested
  double final_f1 = 0.0;
  double final_threshold = 0.0;
};

class StreamSampler {
 public:
  StreamSampler(std::unique_ptr<Classifier> model, StreamSamplerConfig config);

  /// Consumes the stream (rows of stream_x in order). The oracle indexes
  /// align with stream rows. Evaluates on the fixed test set after every
  /// accepted query, like the pool-based learner.
  StreamResult run(const LabeledData& seed, const Matrix& stream_x,
                   LabelOracle& oracle, const Matrix& test_x,
                   std::span<const int> test_y);

  const Classifier& model() const noexcept { return *model_; }

 private:
  std::unique_ptr<Classifier> model_;
  StreamSamplerConfig config_;
};

}  // namespace alba
