// Tests for the active-learning extensions: query-by-committee, density-
// weighted querying, batch-mode annotation, stream-based selective
// sampling, and the annotator-assist explanation module.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "active/committee.hpp"
#include "active/explain.hpp"
#include "active/learner.hpp"
#include "active/stream.hpp"
#include "common/rng.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

namespace alba {
namespace {

struct Blobs {
  Matrix x;
  std::vector<int> y;
};

Blobs make_blobs(std::size_t per_class, double spread, std::uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {5.0, 5.0}, {0.0, 5.0}};
  Blobs blobs;
  blobs.x = Matrix(3 * per_class, 2);
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = static_cast<std::size_t>(c) * per_class + i;
      blobs.x(row, 0) = centers[c][0] + spread * rng.normal();
      blobs.x(row, 1) = centers[c][1] + spread * rng.normal();
      blobs.y.push_back(c);
    }
  }
  return blobs;
}

RandomForest make_prototype(std::uint64_t seed = 1) {
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 10;
  cfg.max_depth = 6;
  return RandomForest(cfg, seed);
}

// ------------------------------------------------------------ committee ---

TEST(Committee, MembersDifferAndConsensusIsValid) {
  const Blobs blobs = make_blobs(30, 1.5, 1);
  const RandomForest proto = make_prototype();
  Committee committee(proto, 4, 7);
  EXPECT_EQ(committee.size(), 4u);
  EXPECT_FALSE(committee.fitted());
  committee.fit(blobs.x, blobs.y);
  EXPECT_TRUE(committee.fitted());

  const Matrix consensus = committee.predict_proba(blobs.x);
  for (std::size_t i = 0; i < consensus.rows(); ++i) {
    double sum = 0.0;
    for (const double p : consensus.row(i)) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // Members trained with different seeds: at least one probability differs.
  const Matrix p0 = committee.member(0).predict_proba(blobs.x);
  const Matrix p1 = committee.member(1).predict_proba(blobs.x);
  bool differ = false;
  for (std::size_t i = 0; i < p0.rows() && !differ; ++i) {
    for (std::size_t j = 0; j < p0.cols(); ++j) {
      if (p0(i, j) != p1(i, j)) differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(Committee, DisagreementHigherOnAmbiguousPoints) {
  const Blobs blobs = make_blobs(50, 0.8, 2);
  const RandomForest proto = make_prototype();
  Committee committee(proto, 5, 3);
  committee.fit(blobs.x, blobs.y);

  // A point at a class centroid vs one equidistant between centroids.
  Matrix probe(2, 2);
  probe(0, 0) = 0.0;
  probe(0, 1) = 0.0;   // deep inside class 0
  probe(1, 0) = 2.5;
  probe(1, 1) = 2.5;   // between all three centroids
  const auto ve = committee.vote_entropy(probe);
  const auto kl = committee.consensus_kl(probe);
  EXPECT_LE(ve[0], ve[1]);
  EXPECT_LE(kl[0], kl[1] + 1e-9);
  EXPECT_GE(ve[1], 0.0);
  EXPECT_GE(kl[1], 0.0);
}

TEST(Committee, UnanimousVotesHaveZeroEntropy) {
  const Blobs blobs = make_blobs(40, 0.3, 4);  // trivially separable
  const RandomForest proto = make_prototype();
  Committee committee(proto, 3, 5);
  committee.fit(blobs.x, blobs.y);
  Matrix probe(1, 2);
  probe(0, 0) = 0.0;
  probe(0, 1) = 0.0;
  EXPECT_NEAR(committee.vote_entropy(probe)[0], 0.0, 1e-9);
}

TEST(Committee, RejectsTooSmall) {
  const RandomForest proto = make_prototype();
  EXPECT_THROW(Committee(proto, 1, 1), Error);
}

// --------------------------------------------------- scored / batch picks ---

TEST(ScoredSelection, ArgmaxAndBatch) {
  const std::vector<double> scores{0.3, 0.9, 0.1, 0.9, 0.5};
  EXPECT_EQ(select_query_scored(scores), 1u);  // first of the tied maxima
  const auto batch = select_query_batch(scores, 3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], 1u);
  EXPECT_EQ(batch[1], 3u);
  EXPECT_EQ(batch[2], 4u);
  // k clamped.
  EXPECT_EQ(select_query_batch(scores, 99).size(), 5u);
  EXPECT_THROW(select_query_scored({}), Error);
}

TEST(InformationDensity, DenseRegionScoresHigher) {
  Rng rng(6);
  Matrix pool(101, 2);
  for (std::size_t i = 0; i < 100; ++i) {
    pool(i, 0) = rng.normal(0.0, 0.5);
    pool(i, 1) = rng.normal(0.0, 0.5);
  }
  pool(100, 0) = 50.0;  // extreme outlier
  pool(100, 1) = 50.0;
  const auto density = information_density(pool, 64, 7);
  ASSERT_EQ(density.size(), 101u);
  double mean_dense = 0.0;
  for (std::size_t i = 0; i < 100; ++i) mean_dense += density[i];
  mean_dense /= 100.0;
  EXPECT_LT(density[100], 0.2 * mean_dense);
  for (const double d : density) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0 + 1e-9);
  }
}

// ------------------------------------------------- learner with extensions ---

struct AlTask {
  LabeledData seed;
  Matrix pool_x;
  std::vector<int> pool_y;
  Matrix test_x;
  std::vector<int> test_y;
};

AlTask make_task(std::uint64_t seed_val) {
  Rng rng(seed_val);
  const double centers[3][2] = {{0.0, 0.0}, {5.0, 5.0}, {0.0, 5.0}};
  AlTask task;
  auto fill = [&](Matrix& m, std::size_t row, int c) {
    m(row, 0) = centers[c][0] + 0.9 * rng.normal();
    m(row, 1) = centers[c][1] + 0.9 * rng.normal();
  };
  for (int c = 1; c < 3; ++c) {
    for (int i = 0; i < 2; ++i) {
      Matrix tmp(1, 2);
      fill(tmp, 0, c);
      task.seed.append(tmp.row(0), c);
    }
  }
  task.pool_x = Matrix(150, 2);
  for (std::size_t i = 0; i < 150; ++i) {
    const int c = static_cast<int>(i % 3);
    fill(task.pool_x, i, c);
    task.pool_y.push_back(c);
  }
  task.test_x = Matrix(90, 2);
  for (std::size_t i = 0; i < 90; ++i) {
    const int c = static_cast<int>(i % 3);
    fill(task.test_x, i, c);
    task.test_y.push_back(c);
  }
  return task;
}

std::unique_ptr<Classifier> task_model(std::uint64_t seed_val) {
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 10;
  cfg.max_depth = 6;
  return std::make_unique<RandomForest>(cfg, seed_val);
}

class ExtensionStrategyTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ExtensionStrategyTest, LearnsOnSyntheticTask) {
  AlTask task = make_task(11);
  ActiveLearnerConfig cfg;
  cfg.strategy = strategy_from_name(GetParam());
  cfg.max_queries = 25;
  cfg.committee_size = 3;
  cfg.seed = 5;
  ActiveLearner learner(task_model(1), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                  task.test_x, task.test_y);
  EXPECT_EQ(result.queried.size(), 25u);
  EXPECT_GT(result.final_f1, 0.85) << GetParam();
  EXPECT_GT(result.final_f1, result.curve.front().f1) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Strategies, ExtensionStrategyTest,
                         ::testing::Values("vote_entropy", "consensus_kl",
                                           "density_weighted"));

TEST(BatchMode, SameBudgetFewerRounds) {
  AlTask task = make_task(12);
  ActiveLearnerConfig cfg;
  cfg.strategy = QueryStrategy::Uncertainty;
  cfg.max_queries = 24;
  cfg.batch_size = 6;
  ActiveLearner learner(task_model(2), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                  task.test_x, task.test_y);
  // 24 labels in 4 rounds: curve has the seed point + 4 batch points.
  ASSERT_EQ(result.curve.size(), 5u);
  EXPECT_EQ(result.curve.back().queries, 24);
  EXPECT_EQ(result.queried.size(), 24u);
  std::set<std::size_t> distinct;
  for (const auto& q : result.queried) distinct.insert(q.pool_index);
  EXPECT_EQ(distinct.size(), 24u);
}

TEST(BatchMode, RandomBaselineBatchesToo) {
  AlTask task = make_task(13);
  ActiveLearnerConfig cfg;
  cfg.strategy = QueryStrategy::Random;
  cfg.max_queries = 20;
  cfg.batch_size = 5;
  ActiveLearner learner(task_model(3), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                  task.test_x, task.test_y);
  EXPECT_EQ(result.queried.size(), 20u);
  std::set<std::size_t> distinct;
  for (const auto& q : result.queried) distinct.insert(q.pool_index);
  EXPECT_EQ(distinct.size(), 20u);
}

// --------------------------------------------------------------- stream ---

TEST(StreamSampler, QueriesOnlyUncertainItems) {
  AlTask task = make_task(14);
  StreamSamplerConfig cfg;
  cfg.uncertainty_threshold = 0.4;
  cfg.max_queries = 100;
  StreamSampler sampler(task_model(4), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result =
      sampler.run(task.seed, task.pool_x, oracle, task.test_x, task.test_y);
  EXPECT_EQ(result.seen, task.pool_x.rows());
  EXPECT_GT(result.queried, 0u);
  EXPECT_LT(result.queried, result.seen);  // selective, not exhaustive
  EXPECT_EQ(result.queried, oracle.queries_answered());
  EXPECT_GT(result.final_f1, result.curve.front().f1);
}

TEST(StreamSampler, BudgetStopsQuerying) {
  AlTask task = make_task(15);
  StreamSamplerConfig cfg;
  cfg.uncertainty_threshold = 0.05;  // nearly everything looks uncertain
  cfg.max_queries = 7;
  StreamSampler sampler(task_model(5), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result =
      sampler.run(task.seed, task.pool_x, oracle, task.test_x, task.test_y);
  EXPECT_EQ(result.queried, 7u);
}

TEST(StreamSampler, AdaptiveThresholdMoves) {
  AlTask task = make_task(16);
  StreamSamplerConfig cfg;
  cfg.uncertainty_threshold = 0.3;
  cfg.adapt_rate = 0.05;
  cfg.max_queries = 50;
  StreamSampler sampler(task_model(6), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result =
      sampler.run(task.seed, task.pool_x, oracle, task.test_x, task.test_y);
  EXPECT_NE(result.final_threshold, cfg.uncertainty_threshold);
}

TEST(StreamSampler, RejectsBadConfig) {
  StreamSamplerConfig bad;
  bad.uncertainty_threshold = 0.0;
  EXPECT_THROW(StreamSampler(task_model(7), bad), Error);
}

// -------------------------------------------------------------- explain ---

TEST(QueryExplainer, FlagsTheDeviantFeature) {
  Rng rng(17);
  LabeledData labeled;
  for (int i = 0; i < 40; ++i) {
    std::vector<double> row{rng.normal(1.0, 0.1), rng.normal(5.0, 0.1),
                            rng.normal(-2.0, 0.1)};
    labeled.append(row, 0);  // healthy
  }
  QueryExplainer explainer(labeled, {"cpu|mean", "net|mean", "mem|slope"});
  EXPECT_EQ(explainer.healthy_samples(), 40u);

  const std::vector<double> sample{1.0, 5.0, 30.0};  // mem|slope exploded
  const auto top = explainer.top_features(sample, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].feature, "mem|slope");
  EXPECT_GT(std::abs(top[0].z), 10.0);
  EXPECT_GT(std::abs(top[0].z), std::abs(top[1].z));
}

TEST(QueryExplainer, MetricAggregation) {
  Rng rng(18);
  LabeledData labeled;
  for (int i = 0; i < 30; ++i) {
    std::vector<double> row{rng.normal(0.0, 0.1), rng.normal(0.0, 0.1),
                            rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)};
    labeled.append(row, 0);
  }
  QueryExplainer explainer(
      labeled, {"cpu|mean", "cpu|std", "net|mean", "net|std"});
  const std::vector<double> sample{9.0, 9.0, 0.0, 0.0};  // cpu features off
  const auto metrics = explainer.top_metrics(sample, 2);
  ASSERT_GE(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].metric, "cpu");
  EXPECT_EQ(metrics[0].features, 2u);
}

TEST(QueryExplainer, NeedsHealthySamples) {
  LabeledData labeled;
  labeled.append(std::vector<double>{1.0}, 2);
  EXPECT_THROW(QueryExplainer(labeled, {"f"}), Error);
}

TEST(QueryExplainer, ConstantFeatureDoesNotExplode) {
  LabeledData labeled;
  for (int i = 0; i < 10; ++i) {
    labeled.append(std::vector<double>{3.0, static_cast<double>(i)}, 0);
  }
  QueryExplainer explainer(labeled, {"const|v", "ramp|v"});
  const std::vector<double> sample{3.0, 100.0};
  const auto top = explainer.top_features(sample, 2);
  EXPECT_EQ(top[0].feature, "ramp|v");
  EXPECT_TRUE(std::isfinite(top[1].z));
}

}  // namespace
}  // namespace alba
