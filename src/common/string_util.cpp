#include "common/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

#include "common/error.hpp"

namespace alba {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

double parse_double(std::string_view s) {
  const auto t = trim(s);
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  ALBA_CHECK(ec == std::errc{} && ptr == t.data() + t.size())
      << "not a number: '" << std::string(s) << "'";
  return v;
}

long parse_long(std::string_view s) {
  const auto t = trim(s);
  long v = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  ALBA_CHECK(ec == std::errc{} && ptr == t.data() + t.size())
      << "not an integer: '" << std::string(s) << "'";
  return v;
}

}  // namespace alba
