// Reproduces Fig. 8: robustness to previously unseen application *inputs*.
// For each input deck, every run with that deck moves to the test side;
// seed and pool come from the remaining decks. Expected shape: the starting
// scores are catastrophic (paper: F1 ≈ 0.2, false alarm rate ≈ 80%) —
// worse than the unseen-application case — and uncertainty sampling
// recovers to 0.95 with several-fold fewer labels than Random (paper: 225
// vs ~1000, its headline 28x figure combined with the supervised ceiling).
#include "bench_common.hpp"

using namespace alba;
using namespace alba::bench;

int main(int argc, char** argv) {
  BenchFlags flags;
  Cli cli("bench_fig8_unseen_inputs",
          "Fig. 8 — query curves with an unseen input deck in the test set");
  add_standard_flags(cli, flags);
  cli.parse(argc, argv);
  apply_logging(flags);

  std::printf("=== Fig. 8: previously unseen application inputs (Volta) ===\n");
  const ExperimentData data = build_data(SystemKind::Volta, flags);

  ExperimentOptions opt = make_options(flags);
  opt.methods = {"uncertainty", "random"};
  const UnseenInputsResult result = run_unseen_inputs_experiment(data, opt);

  std::printf("\n%s\n", render_query_curves(result.methods, 25).c_str());
  std::printf("starting F1: %.3f (false alarm rate %.0f%%)\n",
              result.starting_f1, 100.0 * result.starting_far);
  std::printf("supervised reference trained on all other decks: F1 %.3f\n",
              result.full_train_f1);
  for (const auto& m : result.methods) {
    std::printf("%-12s queries to F1>=0.95: %d (final F1 %.3f)\n",
                m.method.c_str(), queries_to_reach(m.aggregated, 0.95),
                m.aggregated.f1_mean.back());
  }

  const std::string csv = flags.out_dir + "/fig8_unseen_inputs.csv";
  write_curves_csv(csv, result.methods);
  std::printf("series written to %s\n", csv.c_str());
  return 0;
}
