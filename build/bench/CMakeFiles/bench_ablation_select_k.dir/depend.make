# Empty dependencies file for bench_ablation_select_k.
# This may be replaced when dependencies are built.
