file(REMOVE_RECURSE
  "CMakeFiles/alba_ml.dir/ml/autoencoder.cpp.o"
  "CMakeFiles/alba_ml.dir/ml/autoencoder.cpp.o.d"
  "CMakeFiles/alba_ml.dir/ml/classifier.cpp.o"
  "CMakeFiles/alba_ml.dir/ml/classifier.cpp.o.d"
  "CMakeFiles/alba_ml.dir/ml/dataset.cpp.o"
  "CMakeFiles/alba_ml.dir/ml/dataset.cpp.o.d"
  "CMakeFiles/alba_ml.dir/ml/decision_tree.cpp.o"
  "CMakeFiles/alba_ml.dir/ml/decision_tree.cpp.o.d"
  "CMakeFiles/alba_ml.dir/ml/gbm.cpp.o"
  "CMakeFiles/alba_ml.dir/ml/gbm.cpp.o.d"
  "CMakeFiles/alba_ml.dir/ml/grid_search.cpp.o"
  "CMakeFiles/alba_ml.dir/ml/grid_search.cpp.o.d"
  "CMakeFiles/alba_ml.dir/ml/logreg.cpp.o"
  "CMakeFiles/alba_ml.dir/ml/logreg.cpp.o.d"
  "CMakeFiles/alba_ml.dir/ml/metrics.cpp.o"
  "CMakeFiles/alba_ml.dir/ml/metrics.cpp.o.d"
  "CMakeFiles/alba_ml.dir/ml/mlp.cpp.o"
  "CMakeFiles/alba_ml.dir/ml/mlp.cpp.o.d"
  "CMakeFiles/alba_ml.dir/ml/random_forest.cpp.o"
  "CMakeFiles/alba_ml.dir/ml/random_forest.cpp.o.d"
  "CMakeFiles/alba_ml.dir/ml/serialize.cpp.o"
  "CMakeFiles/alba_ml.dir/ml/serialize.cpp.o.d"
  "libalba_ml.a"
  "libalba_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alba_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
