#include "core/data_quality.hpp"

#include <ostream>
#include <sstream>

namespace alba {

void DataQualityReport::add(const ExtractionQuality& q) noexcept {
  cells_interpolated += q.cells_interpolated;
  metrics_quarantined += q.metrics_quarantined;
  feature_failures += q.feature_failures;
  rows_dropped += q.rows_dropped;
}

std::string format_data_quality(const DataQualityReport& q) {
  std::ostringstream os;
  os << "faults: " << q.faults.total_events() << " events ("
     << q.faults.metric_dropouts << " dropouts, " << q.faults.stuck_metrics
     << " stuck, " << q.faults.nan_bursts << " NaN bursts, "
     << q.faults.counter_resets << " counter resets, "
     << q.faults.stalled_rows << " stalled rows, " << q.faults.truncated_runs
     << " truncations); repaired " << q.cells_interpolated
     << " cells, quarantined " << q.metrics_quarantined
     << " metrics, dropped " << q.rows_dropped << " rows / "
     << q.columns_dropped << " columns";
  if (q.feature_failures > 0) {
    os << ", " << q.feature_failures << " extractor failures";
  }
  if (q.degenerate_columns > 0) {
    os << ", " << q.degenerate_columns << " degenerate at selection";
  }
  return os.str();
}

std::string data_quality_csv_header() {
  return "label,fault_events,metric_dropouts,stuck_metrics,nan_bursts,"
         "counter_resets,stalled_rows,truncated_runs,truncated_rows,"
         "cells_corrupted,cells_interpolated,metrics_quarantined,"
         "feature_failures,rows_dropped,columns_dropped,degenerate_columns";
}

std::string data_quality_csv_row(std::string_view label,
                                 const DataQualityReport& q) {
  std::ostringstream os;
  os << label << ',' << q.faults.total_events() << ','
     << q.faults.metric_dropouts << ',' << q.faults.stuck_metrics << ','
     << q.faults.nan_bursts << ',' << q.faults.counter_resets << ','
     << q.faults.stalled_rows << ',' << q.faults.truncated_runs << ','
     << q.faults.truncated_rows << ',' << q.faults.cells_corrupted << ','
     << q.cells_interpolated << ',' << q.metrics_quarantined << ','
     << q.feature_failures << ',' << q.rows_dropped << ','
     << q.columns_dropped << ',' << q.degenerate_columns;
  return os.str();
}

void write_data_quality_csv(std::ostream& os, std::string_view label,
                            const DataQualityReport& q) {
  os << data_quality_csv_header() << '\n';
  os << data_quality_csv_row(label, q) << '\n';
}

}  // namespace alba
