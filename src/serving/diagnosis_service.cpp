#include "serving/diagnosis_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "features/preprocessing.hpp"

namespace alba {

std::uint64_t hash_window(const Matrix& window) noexcept {
  // FNV-1a over the shape and the raw bit pattern of every cell (NaNs hash
  // by payload, which is what content-identity wants).
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const void* p, std::size_t n) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  const std::uint64_t rows = window.rows();
  const std::uint64_t cols = window.cols();
  mix(&rows, sizeof(rows));
  mix(&cols, sizeof(cols));
  mix(window.data(), window.size() * sizeof(double));
  return h;
}

namespace {

std::uint64_t cell_bits(const double* p) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, p, sizeof(bits));
  return bits;
}

}  // namespace

WindowKey window_key(const Matrix& window) noexcept {
  WindowKey key;
  key.hash = hash_window(window);
  key.rows = window.rows();
  key.cols = window.cols();
  if (window.size() > 0) {
    key.first_bits = cell_bits(window.data());
    key.last_bits = cell_bits(window.data() + window.size() - 1);
  }
  return key;
}

bool WindowCache::lookup(const WindowKey& key, Diagnosis& out) {
  if (capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key.hash);
  if (it == index_.end()) return false;
  // Verified hit only: a hash match with a differing full key is another
  // window's entry, which must not be served as this window's answer.
  if (!it->second->key.matches(key)) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  out = it->second->result;
  out.cache_hit = true;
  return true;
}

void WindowCache::insert(const WindowKey& key, const Diagnosis& d) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key.hash);
  if (it != index_.end()) {
    if (it->second->key.matches(key)) return;  // a concurrent miss won
    // Hash collision between distinct windows: evict the old entry in
    // favor of the new one and account for it.
    ++collision_evictions_;
    it->second->key = key;
    it->second->result = d;
    it->second->result.cache_hit = false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, d});
  lru_.front().result.cache_hit = false;
  index_.emplace(key.hash, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key.hash);
    lru_.pop_back();
  }
}

std::size_t WindowCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t WindowCache::collision_evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return collision_evictions_;
}

DiagnosisService::DiagnosisService(ModelBundle bundle, ServingConfig config)
    : bundle_(std::move(bundle)),
      config_(config),
      registry_(bundle_.features.system, bundle_.features.registry),
      extractor_(make_extractor(bundle_.features.extractor)),
      pool_(config.pool != nullptr ? config.pool : &global_pool()),
      cache_(config.cache_capacity) {
  ALBA_CHECK(bundle_.model && bundle_.model->fitted())
      << "DiagnosisService needs a fitted model";
  ALBA_CHECK(config_.max_batch > 0);

  // Resolve every selected feature name against the raw feature space this
  // registry/extractor pair produces (column j*F+f is feature f of metric
  // j, as in extract_features), composing projection + scaling into a
  // per-input-column plan grouped by metric.
  const std::size_t f = extractor_->num_features();
  const auto& extractor_features = extractor_->feature_names();
  std::unordered_map<std::string, std::size_t> raw_index;
  raw_index.reserve(registry_.size() * f);
  for (std::size_t j = 0; j < registry_.size(); ++j) {
    for (std::size_t k = 0; k < f; ++k) {
      raw_index.emplace(registry_.metric(j).name + "|" + extractor_features[k],
                        j * f + k);
    }
  }

  const std::size_t inputs = bundle_.selected.size();
  col_min_.resize(inputs);
  col_max_.resize(inputs);
  std::unordered_map<std::size_t, std::size_t> metric_slot;
  for (std::size_t c = 0; c < inputs; ++c) {
    const auto sel = static_cast<std::size_t>(bundle_.selected[c]);
    const std::string& name = bundle_.feature_names[sel];
    const auto it = raw_index.find(name);
    ALBA_CHECK(it != raw_index.end())
        << "bundle feature '" << name
        << "' is not produced by its own registry/extractor config";
    const std::size_t metric = it->second / f;
    const std::size_t feature = it->second % f;
    col_min_[c] = bundle_.scaler_mins[sel];
    col_max_[c] = bundle_.scaler_maxs[sel];

    const auto [slot_it, inserted] =
        metric_slot.emplace(metric, plan_.size());
    if (inserted) plan_.push_back(MetricPlan{metric, {}});
    plan_[slot_it->second].outputs.emplace_back(feature, c);
  }

  latency_ring_.reserve(kLatencyWindow);
}

void DiagnosisService::extract_row(const Matrix& window,
                                   std::span<double> out) const {
  ALBA_DCHECK(out.size() == bundle_.selected.size());
  if (config_.extraction_hook) config_.extraction_hook(window);
  std::vector<double> features(extractor_->num_features());
  for (const MetricPlan& mp : plan_) {
    const std::vector<double> clean = preprocess_metric_column(
        window, mp.metric, registry_, bundle_.features.preprocess);
    extractor_->extract(clean, features);
    for (const auto& [feature, col] : mp.outputs) {
      // Same composition as the offline path: non-finite extraction output
      // becomes 0 (select_features_by_name), then the training-time
      // Min-Max map with clipping (MinMaxScaler::transform).
      double v = features[feature];
      if (!std::isfinite(v)) v = 0.0;
      const double span = col_max_[col] - col_min_[col];
      v = span > 0.0 ? (v - col_min_[col]) / span : 0.0;
      out[col] = std::clamp(v, 0.0, 1.0);
    }
  }
}

void DiagnosisService::serve_micro_batch(std::span<const Matrix> windows,
                                         std::span<Diagnosis> out) {
  const std::size_t n = windows.size();
  const auto start = std::chrono::steady_clock::now();

  // Cache pass: answer hits, dedup identical windows within the batch.
  // Intra-batch dedup keys on the full WindowKey, so two distinct windows
  // whose hashes collide are still extracted and predicted separately.
  std::vector<WindowKey> keys(n);
  std::vector<std::size_t> miss;            // window index per miss slot
  std::unordered_map<std::uint64_t, std::size_t> pending;  // hash -> miss slot
  std::vector<std::pair<std::size_t, std::size_t>> aliases;  // (window, slot)
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = window_key(windows[i]);
    if (cache_.lookup(keys[i], out[i])) {
      ++hits;
      continue;
    }
    const auto [it, inserted] = pending.emplace(keys[i].hash, miss.size());
    if (inserted || !keys[miss[it->second]].matches(keys[i])) {
      if (!inserted) pending[keys[i].hash] = miss.size();  // colliding pair
      miss.push_back(i);
    } else {
      aliases.emplace_back(i, it->second);
    }
  }

  double extract_s = 0.0;
  double predict_s = 0.0;
  std::size_t batches = 0;
  if (!miss.empty()) {
    // Parallel feature extraction, one row per distinct missed window.
    Timer phase;
    Matrix batch_x(miss.size(), bundle_.selected.size());
    pool_->parallel_for(miss.size(), [&](std::size_t m) {
      extract_row(windows[miss[m]], batch_x.row(m));
    });
    extract_s = phase.seconds();

    phase.reset();
    const Matrix probs = bundle_.model->predict_proba(batch_x);
    predict_s = phase.seconds();
    batches = 1;

    for (std::size_t m = 0; m < miss.size(); ++m) {
      const std::size_t i = miss[m];
      Diagnosis& d = out[i];
      const auto row = probs.row(m);
      d.probs.assign(row.begin(), row.end());
      d.label = argmax_label(row);
      d.confidence = row[static_cast<std::size_t>(d.label)];
      d.cache_hit = false;
      cache_.insert(keys[i], d);
    }
    for (const auto& [i, slot] : aliases) {
      out[i] = out[miss[slot]];
      out[i].cache_hit = true;  // answered without a pipeline pass
    }
  }

  // Intra-batch duplicates count as hits: they were answered without a
  // pipeline pass, exactly what the hit rate measures.
  record_request(start, std::chrono::steady_clock::now(), n, extract_s,
                 predict_s, hits + aliases.size(), miss.size(), batches);
}

std::vector<Diagnosis> DiagnosisService::diagnose_batch(
    std::span<const Matrix> windows) {
  std::vector<Diagnosis> out(windows.size());
  for (std::size_t begin = 0; begin < windows.size();
       begin += config_.max_batch) {
    const std::size_t end =
        std::min(windows.size(), begin + config_.max_batch);
    serve_micro_batch(windows.subspan(begin, end - begin),
                      std::span<Diagnosis>(out).subspan(begin, end - begin));
  }
  return out;
}

void DiagnosisService::serve_single(const Matrix& window, Diagnosis& out) {
  const auto start = std::chrono::steady_clock::now();
  const WindowKey key = window_key(window);
  if (cache_.lookup(key, out)) {
    record_request(start, std::chrono::steady_clock::now(), 1, 0.0, 0.0, 1,
                   0, 0);
    return;
  }

  // Per-thread scratch: reshape keeps capacity, so after the first request
  // on a thread neither matrix allocates again. Extraction runs inline —
  // one row cannot use the pool, and skipping the dispatch saves its
  // latency too. The predictor sees a batch of one, which predict_dispatch
  // routes to the small-batch threshold kernel.
  Timer phase;
  thread_local Matrix x;
  thread_local Matrix probs;
  x.reshape(1, bundle_.selected.size());
  extract_row(window, x.row(0));
  const double extract_s = phase.seconds();

  phase.reset();
  static constexpr std::size_t kRow0[1] = {0};
  bundle_.model->predict_proba_rows(x, std::span<const std::size_t>(kRow0, 1),
                                    probs);
  const double predict_s = phase.seconds();

  const auto row = probs.row(0);
  out.probs.assign(row.begin(), row.end());
  out.label = argmax_label(row);
  out.confidence = row[static_cast<std::size_t>(out.label)];
  out.cache_hit = false;
  cache_.insert(key, out);
  record_request(start, std::chrono::steady_clock::now(), 1, extract_s,
                 predict_s, 0, 1, 1);
}

Diagnosis DiagnosisService::diagnose(const Matrix& window) {
  Diagnosis out;
  serve_single(window, out);
  return out;
}

DiagnosisResult DiagnosisService::diagnose(const DiagnoseRequest& request) {
  ALBA_CHECK(request.window != nullptr) << "DiagnoseRequest needs a window";
  DiagnosisResult r;
  r.generation = 1;
  if (request.deadline.expired()) {
    r.status = RequestStatus::RejectedDeadline;
    return r;
  }
  const auto start = std::chrono::steady_clock::now();
  try {
    r.diagnosis = diagnose(*request.window);
    r.status = RequestStatus::Ok;
  } catch (const std::exception& e) {
    r.status = RequestStatus::Failed;
    r.error = e.what();
  }
  const auto end = std::chrono::steady_clock::now();
  r.service_ms = std::chrono::duration<double, std::milli>(end - start).count();
  r.total_ms = r.service_ms;
  if (r.status == RequestStatus::Ok && request.deadline.expired()) {
    // Ok always met its deadline — same contract as the hosted tiers.
    r.status = RequestStatus::RejectedDeadline;
    r.diagnosis = Diagnosis{};
  }
  return r;
}

std::string_view DiagnosisService::label_name(int label) const {
  ALBA_CHECK(label >= 0 &&
             static_cast<std::size_t>(label) < bundle_.label_names.size())
      << "label " << label << " outside the bundle's label space";
  return bundle_.label_names[static_cast<std::size_t>(label)];
}

void DiagnosisService::record_request(
    std::chrono::steady_clock::time_point start,
    std::chrono::steady_clock::time_point end, std::size_t windows,
    double extract_s, double predict_s, std::size_t hits, std::size_t misses,
    std::size_t batches) {
  const double total_s = std::chrono::duration<double>(end - start).count();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  totals_.requests += 1;
  totals_.windows += windows;
  totals_.batches += batches;
  totals_.cache_hits += hits;
  totals_.cache_misses += misses;
  totals_.extract_seconds += extract_s;
  totals_.predict_seconds += predict_s;
  totals_.total_seconds += total_s;
  // Wall-clock span: first request's start to the latest end, so
  // concurrent workers don't double-count overlapping time the way the
  // summed total_seconds does.
  if (!span_started_ || start < span_first_) {
    span_first_ = start;
    span_started_ = true;
  }
  if (end > span_last_) span_last_ = end;
  totals_.wall_seconds =
      std::chrono::duration<double>(span_last_ - span_first_).count();
  if (latency_ring_.size() < kLatencyWindow) {
    latency_ring_.push_back(total_s * 1e3);
  } else {
    latency_ring_[latency_next_] = total_s * 1e3;
  }
  latency_next_ = (latency_next_ + 1) % kLatencyWindow;
}

ServingStats DiagnosisService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ServingStats s = totals_;
  // The cache owns its collision counter; report growth since the last
  // reset_stats so the snapshot window matches every other counter.
  s.collision_evictions =
      cache_.collision_evictions() - collisions_at_reset_;
  s.latency_p50_ms = latency_percentile(latency_ring_, 0.50);
  s.latency_p99_ms = latency_percentile(latency_ring_, 0.99);
  s.latency_p999_ms = latency_percentile(latency_ring_, 0.999);
  s.latency_min_ms = latency_percentile(latency_ring_, 0.0);
  return s;
}

void DiagnosisService::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  totals_ = ServingStats{};
  latency_ring_.clear();
  latency_next_ = 0;
  span_started_ = false;
  collisions_at_reset_ = cache_.collision_evictions();
}

}  // namespace alba
