// Tests for the streaming front end and the unified Diagnoser interface:
// P² sketch accuracy, incremental-vs-batch feature parity (bit-identity
// for mean/var/min/max, the documented delta gate for sketch quantiles)
// across clean / NaN-cell / gapped / out-of-order / fault-injected
// replays, the late_dropped ring-immutability regression, and streamed
// windows flowing through all three serving tiers behind one Diagnoser.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "ml/grid_search.hpp"
#include "serving/fleet.hpp"
#include "serving/model_bundle.hpp"
#include "stats/descriptive.hpp"
#include "streaming/ingest.hpp"
#include "telemetry/faults.hpp"
#include "telemetry/run_generator.hpp"

namespace alba {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr std::size_t kF = kStreamFeaturesPerMetric;

MetricRegistry test_registry() {
  RegistryConfig cfg;
  cfg.cores = 2;
  cfg.nics = 1;
  cfg.filler_gauges = 1;
  return MetricRegistry(SystemKind::Volta, cfg);
}

// Synthetic raw rows: counters cumulative (non-negative increments),
// gauges sinusoid + noise; optional per-cell NaN dropout like the
// simulator's sparse misses.
std::vector<std::vector<double>> make_rows(const MetricRegistry& registry,
                                           std::size_t t_total,
                                           std::uint64_t seed,
                                           double nan_cell_rate = 0.0) {
  Rng rng(seed);
  const std::size_t m_count = registry.size();
  std::vector<double> level(m_count, 0.0);
  std::vector<std::vector<double>> rows(t_total,
                                        std::vector<double>(m_count));
  for (std::size_t t = 0; t < t_total; ++t) {
    for (std::size_t m = 0; m < m_count; ++m) {
      if (registry.metric(m).kind == MetricKind::Counter) {
        level[m] += rng.uniform(0.0, 5.0);
        rows[t][m] = level[m];
      } else {
        rows[t][m] = std::sin(0.3 * static_cast<double>(t) +
                              static_cast<double>(m)) +
                     0.1 * rng.normal();
      }
      if (nan_cell_rate > 0.0 && rng.uniform() < nan_cell_rate) {
        rows[t][m] = kNaN;
      }
    }
  }
  return rows;
}

// Incremental-vs-batch parity for one emitted window: bit-identity for
// mean/var/min/max always; quantiles bit-identical while the processed
// column fits the exact buffer, the kQuantileDeltaGate contract beyond.
void expect_window_parity(const TriggeredWindow& w,
                          const MetricRegistry& registry,
                          const PreprocessConfig& preprocess) {
  const std::vector<double> batch =
      StreamIngestor::batch_features(w.raw, registry, preprocess);
  ASSERT_EQ(w.features.size(), batch.size());
  // The processed column a window folds: kept rows minus the one sample
  // the rate/drop-first alignment consumes.
  const std::size_t processed_len =
      w.raw.rows() - static_cast<std::size_t>(preprocess.trim_head) -
      static_cast<std::size_t>(preprocess.trim_tail) - 1;
  const bool exact_quantiles = processed_len <= kQuantileExactCap;
  for (std::size_t m = 0; m < registry.size(); ++m) {
    for (std::size_t f = 0; f < 4; ++f) {
      const std::size_t i = m * kF + f;
      EXPECT_EQ(w.features[i], batch[i])
          << "metric " << m << " " << stream_feature_suffixes()[f]
          << " (window " << w.start_seq << ")";
    }
    const double range = batch[m * kF + 3] - batch[m * kF + 2];
    const double tol = kQuantileDeltaGate * range + 1e-9;
    for (std::size_t f = 4; f < kF; ++f) {
      const std::size_t i = m * kF + f;
      if (exact_quantiles) {
        EXPECT_EQ(w.features[i], batch[i])
            << "metric " << m << " " << stream_feature_suffixes()[f]
            << " (window " << w.start_seq << ")";
      } else {
        EXPECT_NEAR(w.features[i], batch[i], tol)
            << "metric " << m << " " << stream_feature_suffixes()[f]
            << " (window " << w.start_seq << ")";
      }
    }
  }
}

std::vector<TriggeredWindow> replay(
    StreamIngestor& ingestor, int node,
    const std::vector<std::vector<double>>& rows,
    std::uint64_t first_seq = 0) {
  std::vector<TriggeredWindow> out;
  for (std::size_t t = 0; t < rows.size(); ++t) {
    for (TriggeredWindow& w : ingestor.push(node, first_seq + t, rows[t])) {
      out.push_back(std::move(w));
    }
  }
  return out;
}

// ------------------------------------------------------- stream features ---

TEST(StreamFeatures, P2IsExactUpToFiveSamples) {
  const std::vector<double> samples = {3.0, -1.0, 7.5, 2.0, 4.25};
  for (const double q : kStreamQuantiles) {
    P2Quantile sketch(q);
    for (std::size_t n = 0; n < samples.size(); ++n) {
      sketch.add(samples[n]);
      const std::span<const double> seen(samples.data(), n + 1);
      EXPECT_EQ(sketch.value(), stats::quantile(seen, q))
          << "q=" << q << " n=" << n + 1;
    }
  }
}

TEST(StreamFeatures, P2StaysInsideTheDeltaGateOnWindowSizedData) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(48);
    for (double& v : x) {
      v = trial % 2 == 0 ? rng.normal() : rng.uniform(-3.0, 11.0);
    }
    const double range = *std::max_element(x.begin(), x.end()) -
                         *std::min_element(x.begin(), x.end());
    for (const double q : kStreamQuantiles) {
      P2Quantile sketch(q);
      for (const double v : x) sketch.add(v);
      EXPECT_NEAR(sketch.value(), stats::quantile(x, q),
                  kQuantileDeltaGate * range + 1e-9)
          << "q=" << q << " trial=" << trial;
    }
  }
}

TEST(StreamFeatures, BatchReferenceMatchesDescriptiveStats) {
  Rng rng(7);
  std::vector<double> x(37);
  for (double& v : x) v = rng.uniform(-5.0, 5.0);
  std::vector<double> out(kF);
  stream_features_batch(x, out);
  EXPECT_NEAR(out[0], stats::mean(x), 1e-12);
  EXPECT_EQ(out[2], *std::min_element(x.begin(), x.end()));
  EXPECT_EQ(out[3], *std::max_element(x.begin(), x.end()));
  for (std::size_t i = 0; i < kStreamQuantiles.size(); ++i) {
    EXPECT_EQ(out[4 + i], stats::quantile(x, kStreamQuantiles[i]));
  }
}

TEST(StreamFeatures, NamesAreMetricMajor) {
  const MetricRegistry registry = test_registry();
  const std::vector<std::string> names = stream_feature_names(registry);
  ASSERT_EQ(names.size(), registry.size() * kF);
  EXPECT_EQ(names[0], registry.metric(0).name + "_mean");
  EXPECT_EQ(names[kF - 1], registry.metric(0).name + "_p95");
  EXPECT_EQ(names[kF], registry.metric(1).name + "_mean");
}

// --------------------------------------------------------- clean replays ---

TEST(StreamIngest, CleanReplayTriggersSlidingWindowsWithParity) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 48;
  cfg.stride = 24;
  StreamIngestor ingestor(registry, cfg);

  const auto rows = make_rows(registry, 200, 11);
  const auto windows = replay(ingestor, 0, rows);

  // Starts 0, 24, ..., 144: the last window fitting 200 rows.
  ASSERT_EQ(windows.size(), 7u);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].start_seq, 24u * i);
    EXPECT_EQ(windows[i].raw.rows(), cfg.window_length);
    EXPECT_EQ(windows[i].raw.cols(), registry.size());
    EXPECT_EQ(windows[i].missing_rows, 0u);
    EXPECT_FALSE(windows[i].recomputed);
    expect_window_parity(windows[i], registry, cfg.preprocess);
  }

  const IngestStats s = ingestor.stats(0);
  EXPECT_EQ(s.accepted, 200u);
  EXPECT_EQ(s.windows_emitted, 7u);
  EXPECT_EQ(s.reordered + s.duplicates + s.late_dropped + s.missing_rows, 0u);
  EXPECT_EQ(ingestor.windows_in_flight(0), 2u);  // starts 168 and 192
  ingestor.flush();
  EXPECT_EQ(ingestor.stats(0).windows_flushed, 2u);
  EXPECT_EQ(ingestor.windows_in_flight(0), 0u);
}

TEST(StreamIngest, WindowRawIsTheDeliveredRows) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 16;
  cfg.stride = 16;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 16, 3);
  const auto windows = replay(ingestor, 4, rows);
  ASSERT_EQ(windows.size(), 1u);
  for (std::size_t t = 0; t < rows.size(); ++t) {
    for (std::size_t m = 0; m < registry.size(); ++m) {
      EXPECT_EQ(windows[0].raw(t, m), rows[t][m]);
    }
  }
  EXPECT_EQ(windows[0].node, 4);
}

TEST(StreamIngest, NaNCellsResolveBitIdenticallyToBatchInterpolation) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 48;
  cfg.stride = 24;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 160, 23, /*nan_cell_rate=*/0.15);
  const auto windows = replay(ingestor, 0, rows);
  ASSERT_GE(windows.size(), 4u);
  for (const TriggeredWindow& w : windows) {
    EXPECT_FALSE(w.recomputed);  // in-order NaNs never dirty the fold
    expect_window_parity(w, registry, cfg.preprocess);
  }
}

TEST(StreamIngest, WindowsPastTheExactCapUseTheSketchWithinTheGate) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 160;  // processed column 148 > kQuantileExactCap
  cfg.stride = 160;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 160, 13);
  const auto windows = replay(ingestor, 0, rows);
  ASSERT_EQ(windows.size(), 1u);
  // expect_window_parity switches to the delta gate past the cap;
  // mean/var/min/max stay bit-identical regardless.
  expect_window_parity(windows[0], registry, cfg.preprocess);
}

// ------------------------------------------------------ gaps and repairs ---

TEST(StreamIngest, UndeliveredRowsEmitAsNaNUnderRepairPolicy) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 48;
  cfg.stride = 48;
  cfg.max_missing = 8;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 96, 31);

  std::vector<TriggeredWindow> windows;
  for (std::size_t t = 0; t < rows.size(); ++t) {
    if (t % 13 == 7) continue;  // drop ~7% of rows outright
    for (TriggeredWindow& w : ingestor.push(0, t, rows[t])) {
      windows.push_back(std::move(w));
    }
  }
  ASSERT_EQ(windows.size(), 2u);
  for (const TriggeredWindow& w : windows) {
    EXPECT_GT(w.missing_rows, 0u);
    EXPECT_LE(w.missing_rows, cfg.max_missing);
    bool saw_nan_row = false;
    for (std::size_t t = 0; t < w.raw.rows() && !saw_nan_row; ++t) {
      saw_nan_row = std::isnan(w.raw(t, 0));
    }
    EXPECT_TRUE(saw_nan_row);
    EXPECT_FALSE(w.recomputed);
    expect_window_parity(w, registry, cfg.preprocess);
  }
  EXPECT_GT(ingestor.stats(0).missing_rows, 0u);
}

TEST(StreamIngest, StrictPolicyDropsIncompleteWindows) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 16;
  cfg.stride = 16;
  cfg.gap_policy = GapPolicy::Strict;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 48, 5);

  std::vector<TriggeredWindow> windows;
  for (std::size_t t = 0; t < rows.size(); ++t) {
    if (t == 20) continue;  // one hole, inside the second window
    for (TriggeredWindow& w : ingestor.push(0, t, rows[t])) {
      windows.push_back(std::move(w));
    }
  }
  ASSERT_EQ(windows.size(), 2u);  // windows 0 and 32 emit; 16 is dropped
  EXPECT_EQ(windows[0].start_seq, 0u);
  EXPECT_EQ(windows[1].start_seq, 32u);
  EXPECT_EQ(ingestor.stats(0).windows_dropped, 1u);
}

TEST(StreamIngest, RepairPolicyDropsWindowsPastMaxMissing) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 16;
  cfg.stride = 16;
  cfg.max_missing = 2;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 32, 5);

  std::vector<TriggeredWindow> windows;
  for (std::size_t t = 0; t < rows.size(); ++t) {
    if (t >= 18 && t < 22) continue;  // 4 missing rows > max_missing
    for (TriggeredWindow& w : ingestor.push(0, t, rows[t])) {
      windows.push_back(std::move(w));
    }
  }
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].start_seq, 0u);
  EXPECT_EQ(ingestor.stats(0).windows_dropped, 1u);
}

TEST(StreamIngest, GapFillAheadOfTheAnchorRepairsExactly) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 48;
  cfg.stride = 48;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 48, 17);

  // Row 20 goes missing while rows 21-22 arrive as all-NaN rows: the
  // watermark moves past 20 but no finite value lands after it, so the
  // fold's NaN run 20-22 is still unresolved when 20 shows up late — the
  // repair resolves it in place and stays exact. No batch fallback.
  const std::vector<double> nan_row(registry.size(), kNaN);
  std::vector<TriggeredWindow> windows;
  for (std::size_t t = 0; t < rows.size(); ++t) {
    if (t == 20) continue;
    const std::span<const double> row =
        (t == 21 || t == 22) ? std::span<const double>(nan_row)
                             : std::span<const double>(rows[t]);
    if (t == 23) {
      for (TriggeredWindow& w : ingestor.push(0, 20, rows[20])) {
        windows.push_back(std::move(w));
      }
    }
    for (TriggeredWindow& w : ingestor.push(0, t, row)) {
      windows.push_back(std::move(w));
    }
  }
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_FALSE(windows[0].recomputed);
  EXPECT_EQ(windows[0].missing_rows, 0u);  // 20 repaired; 21-22 delivered
  EXPECT_EQ(windows[0].raw(20, 0), rows[20][0]);
  EXPECT_TRUE(std::isnan(windows[0].raw(21, 0)));
  expect_window_parity(windows[0], registry, cfg.preprocess);
  const IngestStats s = ingestor.stats(0);
  EXPECT_EQ(s.reordered, 1u);
  EXPECT_EQ(s.windows_recomputed, 0u);
  EXPECT_EQ(s.missing_rows, 0u);  // net: marked missing, then repaired
}

TEST(StreamIngest, RepairBehindTheFoldFallsBackToBatchRecompute) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 48;
  cfg.stride = 48;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 48, 19);

  // Row 20 goes missing, rows 21.. are delivered (the fold resolves past
  // 20 the moment 21 arrives), THEN 20 shows up: the fold cannot rewind,
  // so the window is recomputed from the assembled raw — and the late
  // value is in it.
  std::vector<TriggeredWindow> windows;
  for (std::size_t t = 0; t < rows.size(); ++t) {
    if (t == 20) continue;
    if (t == 25) {
      for (TriggeredWindow& w : ingestor.push(0, 20, rows[20])) {
        windows.push_back(std::move(w));
      }
    }
    for (TriggeredWindow& w : ingestor.push(0, t, rows[t])) {
      windows.push_back(std::move(w));
    }
  }
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_TRUE(windows[0].recomputed);
  EXPECT_EQ(windows[0].missing_rows, 0u);
  EXPECT_EQ(windows[0].raw(20, 0), rows[20][0]);
  expect_window_parity(windows[0], registry, cfg.preprocess);
  const IngestStats s = ingestor.stats(0);
  EXPECT_EQ(s.reordered, 1u);
  EXPECT_EQ(s.windows_recomputed, 1u);
}

TEST(StreamIngest, BoundedSkewReplayStaysCorrectViaRecompute) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 48;
  cfg.stride = 24;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 144, 29);

  // Swap every 6th adjacent pair (offset so no swap touches the stream
  // head or a window's last row): a dense out-of-order trace. Every swap
  // lands behind an already-resolved fold position, so affected windows
  // take the batch fallback — parity must hold regardless.
  std::vector<std::size_t> order(rows.size());
  for (std::size_t t = 0; t < rows.size(); ++t) order[t] = t;
  for (std::size_t t = 2; t + 1 < order.size(); t += 6) {
    std::swap(order[t], order[t + 1]);
  }
  std::vector<TriggeredWindow> windows;
  for (const std::size_t t : order) {
    for (TriggeredWindow& w : ingestor.push(0, t, rows[t])) {
      windows.push_back(std::move(w));
    }
  }
  ASSERT_GE(windows.size(), 4u);
  for (const TriggeredWindow& w : windows) {
    EXPECT_EQ(w.missing_rows, 0u);
    expect_window_parity(w, registry, cfg.preprocess);
  }
  const IngestStats s = ingestor.stats(0);
  EXPECT_GT(s.reordered, 0u);
  EXPECT_GT(s.windows_recomputed, 0u);
  EXPECT_EQ(s.late_dropped, 0u);
  EXPECT_EQ(s.missing_rows, 0u);
}

// ------------------------------------------- late arrivals + duplicates ---

// The regression this PR fixes: a sample landing inside an already-emitted
// window must be counted late_dropped and must NOT be written into the
// ring, where a future window mapping onto the same slot would read it as
// a delivered row.
TEST(StreamIngest, LateArrivalInsideEmittedWindowIsDroppedNotWritten) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 16;
  cfg.stride = 16;
  cfg.max_missing = 2;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 48, 37);

  std::vector<TriggeredWindow> windows;
  for (std::size_t t = 0; t < 16; ++t) {
    for (TriggeredWindow& w : ingestor.push(0, t, rows[t])) {
      windows.push_back(std::move(w));
    }
  }
  ASSERT_EQ(windows.size(), 1u);  // window [0, 16) emitted

  // Row 7 re-arrives late. Ring capacity is window_length + stride = 32,
  // so seq 39 of the third window maps onto the same ring slot as seq 7:
  // a buggy write-through would make the (undelivered) row 39 look
  // delivered with row 7's stale values.
  std::vector<double> poison(registry.size(), 1e9);
  EXPECT_TRUE(ingestor.push(0, 7, poison).empty());
  const IngestStats after_late = ingestor.stats(0);
  EXPECT_EQ(after_late.late_dropped, 1u);
  EXPECT_EQ(after_late.duplicates, 0u);
  EXPECT_EQ(after_late.accepted, 16u);

  for (std::size_t t = 16; t < 48; ++t) {
    if (t == 39) continue;  // never delivered
    for (TriggeredWindow& w : ingestor.push(0, t, rows[t])) {
      windows.push_back(std::move(w));
    }
  }
  ASSERT_EQ(windows.size(), 3u);
  const TriggeredWindow& third = windows[2];
  EXPECT_EQ(third.start_seq, 32u);
  EXPECT_EQ(third.missing_rows, 1u);
  // Row 39 (slot shared with the dropped late row 7) must be NaN, not 1e9.
  EXPECT_TRUE(std::isnan(third.raw(7, 0)));
  expect_window_parity(third, registry, cfg.preprocess);
}

TEST(StreamIngest, DuplicateRowsKeepTheFirstValue) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 16;
  cfg.stride = 16;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 16, 41);

  std::vector<TriggeredWindow> windows;
  std::vector<double> poison(registry.size(), -777.0);
  for (std::size_t t = 0; t < rows.size(); ++t) {
    for (TriggeredWindow& w : ingestor.push(0, t, rows[t])) {
      windows.push_back(std::move(w));
    }
    if (t == 5) {
      EXPECT_TRUE(ingestor.push(0, 5, poison).empty());
    }
  }
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(ingestor.stats(0).duplicates, 1u);
  EXPECT_EQ(windows[0].raw(5, 0), rows[5][0]);  // first delivery won
  expect_window_parity(windows[0], registry, cfg.preprocess);
}

TEST(StreamIngest, ForwardJumpPastTheRingResetsAndRecovers) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 16;
  cfg.stride = 16;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 48, 43);

  std::vector<TriggeredWindow> windows;
  for (std::size_t t = 0; t < 24; ++t) {
    for (TriggeredWindow& w : ingestor.push(0, t, rows[t])) {
      windows.push_back(std::move(w));
    }
  }
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(ingestor.windows_in_flight(0), 1u);

  // A collector restart: the sequence jumps far past the ring. In-flight
  // windows are dropped; streaming re-anchors at the new sequence.
  for (std::size_t t = 0; t < 16; ++t) {
    for (TriggeredWindow& w : ingestor.push(0, 5000 + t, rows[24 + t])) {
      windows.push_back(std::move(w));
    }
  }
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[1].start_seq, 5000u);
  EXPECT_EQ(windows[1].missing_rows, 0u);
  expect_window_parity(windows[1], registry, cfg.preprocess);
  const IngestStats s = ingestor.stats(0);
  EXPECT_EQ(s.resets, 1u);
  EXPECT_EQ(s.windows_dropped, 1u);
}

// ------------------------------------------------- fault-injected replay ---

TEST(StreamIngest, FaultInjectedReplayKeepsParity) {
  NodeSimConfig sim;
  sim.duration_steps = 96;
  const RunGenerator generator(SystemKind::Volta, RegistryConfig{2, 1, 1},
                               sim);

  FaultConfig faults = production_faults();
  faults.truncate_prob = 0.0;  // keep full-length streams for this replay
  const TelemetryFaultInjector injector(faults);

  StreamIngestConfig cfg;
  cfg.window_length = 32;
  cfg.stride = 16;
  std::size_t windows_checked = 0;
  for (int run = 0; run < 3; ++run) {
    RunSpec spec;
    spec.app_id = run % 2;
    spec.nodes = 1;
    spec.run_id = 7000 + run;
    spec.seed = 100 + static_cast<std::uint64_t>(run);
    if (run != 0) {
      spec.anomaly = kAnomalyTypes[static_cast<std::size_t>(run) %
                                   kAnomalyTypes.size()];
      spec.intensity = 1.0;
    }
    for (Sample& sample : generator.generate_run(spec)) {
      Rng rng(900 + static_cast<std::uint64_t>(run));
      injector.apply(sample.series, generator.registry(), rng);

      StreamIngestor ingestor(generator.registry(), cfg);
      for (std::size_t t = 0; t < sample.series.rows(); ++t) {
        for (const TriggeredWindow& w :
             ingestor.push(sample.node_index, t, sample.series.row(t))) {
          expect_window_parity(w, generator.registry(), cfg.preprocess);
          ++windows_checked;
        }
      }
    }
  }
  EXPECT_GE(windows_checked, 10u);
}

TEST(StreamIngest, NodesAreIndependentOfInterleaving) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 32;
  cfg.stride = 16;

  const auto rows_a = make_rows(registry, 96, 51);
  const auto rows_b = make_rows(registry, 96, 53, /*nan_cell_rate=*/0.1);

  StreamIngestor solo_a(registry, cfg);
  StreamIngestor solo_b(registry, cfg);
  const auto windows_a = replay(solo_a, 1, rows_a);
  const auto windows_b = replay(solo_b, 2, rows_b);

  StreamIngestor mixed(registry, cfg);
  std::vector<TriggeredWindow> windows_1;
  std::vector<TriggeredWindow> windows_2;
  for (std::size_t t = 0; t < rows_a.size(); ++t) {
    for (TriggeredWindow& w : mixed.push(1, t, rows_a[t])) {
      windows_1.push_back(std::move(w));
    }
    for (TriggeredWindow& w : mixed.push(2, t, rows_b[t])) {
      windows_2.push_back(std::move(w));
    }
  }

  ASSERT_EQ(windows_1.size(), windows_a.size());
  ASSERT_EQ(windows_2.size(), windows_b.size());
  for (std::size_t i = 0; i < windows_a.size(); ++i) {
    ASSERT_EQ(windows_1[i].features.size(), windows_a[i].features.size());
    for (std::size_t j = 0; j < windows_a[i].features.size(); ++j) {
      EXPECT_EQ(windows_1[i].features[j], windows_a[i].features[j]);
    }
  }
  const IngestStats total = mixed.total_stats();
  EXPECT_EQ(total.accepted,
            mixed.stats(1).accepted + mixed.stats(2).accepted);
}

// -------------------------------------------- determinism across threads ---

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Replays a gapped, NaN-ridden, partially out-of-order stream and hashes
// every emitted feature bit plus the stats counters. Run directly it
// asserts parity; run from the re-exec harness below it also prints the
// hash for the parent to compare across ALBA_THREADS settings.
TEST(StreamThreads, ChildReplayAndHash) {
  const MetricRegistry registry = test_registry();
  StreamIngestConfig cfg;
  cfg.window_length = 48;
  cfg.stride = 24;
  StreamIngestor ingestor(registry, cfg);
  const auto rows = make_rows(registry, 240, 61, /*nan_cell_rate=*/0.05);

  std::uint64_t h = 0xCBF29CE484222325ULL;
  std::size_t emitted = 0;
  for (std::size_t t = 0; t < rows.size(); ++t) {
    if (t % 17 == 5) continue;  // gap
    if (t % 29 == 11 && t > 0) {
      (void)ingestor.push(0, t - 1, rows[t - 1]);  // duplicate
    }
    for (const TriggeredWindow& w : ingestor.push(0, t, rows[t])) {
      expect_window_parity(w, registry, cfg.preprocess);
      ++emitted;
      for (const double f : w.features) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &f, sizeof bits);
        h = fnv1a(h, bits);
      }
    }
  }
  const IngestStats s = ingestor.stats(0);
  h = fnv1a(h, s.accepted);
  h = fnv1a(h, s.reordered);
  h = fnv1a(h, s.duplicates);
  h = fnv1a(h, s.missing_rows);
  h = fnv1a(h, s.windows_recomputed);
  EXPECT_GT(emitted, 4u);
  std::printf("STREAM_HASH=%016llx\n", static_cast<unsigned long long>(h));
}

// Streaming is single-threaded by design, but its outputs must not depend
// on the process-wide pool size (the batch fallback and registry setup
// must stay off the pool): re-exec with ALBA_THREADS pinned and compare.
TEST(StreamThreads, FeaturesIdenticalAcrossPoolSizes) {
  char self[4096];
  const ssize_t len = readlink("/proc/self/exe", self, sizeof self - 1);
  if (len <= 0) GTEST_SKIP() << "/proc/self/exe unavailable";
  self[len] = '\0';

  std::vector<std::string> hashes;
  for (const char* threads : {"1", "2", "8"}) {
    const std::string cmd =
        std::string("ALBA_THREADS=") + threads + " '" + self +
        "' --gtest_filter=StreamThreads.ChildReplayAndHash 2>/dev/null";
    std::FILE* pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::string hash;
    char line[512];
    while (std::fgets(line, sizeof line, pipe) != nullptr) {
      const std::string s(line);
      const auto pos = s.find("STREAM_HASH=");
      if (pos != std::string::npos) hash = s.substr(pos + 12, 16);
    }
    const int rc = pclose(pipe);
    ASSERT_EQ(rc, 0) << "child run with ALBA_THREADS=" << threads
                     << " failed";
    ASSERT_EQ(hash.size(), 16u) << "child printed no hash";
    hashes.push_back(hash);
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

// --------------------------------------------------- the Diagnoser tiers ---

// One tiny trained bundle shared by the tier tests (building the dataset
// is the expensive part; everything downstream is cheap).
struct TierEnv {
  DatasetConfig cfg = tiny_config();
  ExperimentData data;
  SplitIndices split;
  PreparedSplit prepared;
  std::unique_ptr<Classifier> model;
  std::string bundle_bytes;
};

const TierEnv& tier_env() {
  static const TierEnv* shared = [] {
    auto* e = new TierEnv;
    e->data = build_experiment_data(e->cfg);
    e->split = make_split(e->data, e->cfg.test_fraction, 5);
    e->prepared = prepare_split(e->data, e->split, e->cfg.select_k);
    ParamSet params = table4_optimum("rf", false);
    params["n_estimators"] = "15";
    e->model = make_model_factory("rf", kNumClasses, 9)(params);
    e->model->fit(e->prepared.train_x, e->prepared.train_y);
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    save_model_bundle(ss, make_model_bundle(e->data, e->prepared, *e->model));
    e->bundle_bytes = ss.str();
    return e;
  }();
  return *shared;
}

std::shared_ptr<DiagnosisService> tier_service(const TierEnv& e,
                                               ServingConfig serving = {}) {
  std::stringstream ss(e.bundle_bytes,
                       std::ios::in | std::ios::out | std::ios::binary);
  return std::make_shared<DiagnosisService>(load_model_bundle(ss), serving);
}

Sample fresh_sample(const TierEnv& e, std::uint64_t seed) {
  const RunGenerator generator(e.cfg.system, e.cfg.registry, e.cfg.sim);
  RunSpec spec;
  spec.app_id = 0;
  spec.nodes = 1;
  spec.anomaly = kAnomalyTypes[0];
  spec.intensity = 1.0;
  spec.run_id = 9900;
  spec.seed = seed;
  return generator.generate_run(spec)[0];
}

TEST(DiagnoserTiers, StreamedWindowDiagnosesIdenticallyAcrossAllTiers) {
  const TierEnv& e = tier_env();
  const Sample sample = fresh_sample(e, 777);

  // Stream the sample's series as a 1 Hz feed; one tumbling window spans
  // the full run, so its raw matrix is bit-identical to the series.
  StreamIngestConfig cfg;
  cfg.window_length = sample.series.rows();
  cfg.stride = sample.series.rows();
  cfg.preprocess = e.cfg.preprocess;
  StreamIngestor ingestor(MetricRegistry(e.cfg.system, e.cfg.registry), cfg);
  std::vector<TriggeredWindow> windows;
  for (std::size_t t = 0; t < sample.series.rows(); ++t) {
    for (TriggeredWindow& w : ingestor.push(0, t, sample.series.row(t))) {
      windows.push_back(std::move(w));
    }
  }
  ASSERT_EQ(windows.size(), 1u);
  ASSERT_EQ(windows[0].features.size(), ingestor.registry().size() * kF);

  auto service = tier_service(e);
  const Diagnosis reference = service->diagnose(sample.series);

  ServiceHost host(tier_service(e));
  ServingFleet fleet({tier_service(e), tier_service(e)});

  const std::vector<Diagnoser*> tiers = {service.get(), &host, &fleet};
  for (Diagnoser* tier : tiers) {
    const DiagnosisResult r = tier->diagnose(DiagnoseRequest{&windows[0].raw});
    ASSERT_TRUE(r.ok()) << to_string(r.status) << ": " << r.error;
    EXPECT_EQ(r.diagnosis.label, reference.label);
    EXPECT_EQ(r.generation, 1u);
    ASSERT_EQ(r.diagnosis.probs.size(), reference.probs.size());
    for (std::size_t i = 0; i < reference.probs.size(); ++i) {
      EXPECT_EQ(r.diagnosis.probs[i], reference.probs[i]);
    }
  }
  fleet.drain();
  host.drain();
}

TEST(DiagnoserTiers, ExpiredDeadlineIsATypedRejectionEverywhere) {
  const TierEnv& e = tier_env();
  const Sample sample = fresh_sample(e, 778);

  auto service = tier_service(e);
  ServiceHost host(tier_service(e));
  ServingFleet fleet({tier_service(e)});

  const std::vector<Diagnoser*> tiers = {service.get(), &host, &fleet};
  for (Diagnoser* tier : tiers) {
    const DiagnosisResult r = tier->diagnose(
        DiagnoseRequest{&sample.series, Deadline::after_ms(-1.0)});
    EXPECT_EQ(r.status, RequestStatus::RejectedDeadline);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.diagnosis.probs.empty());
  }
  fleet.drain();
  host.drain();
}

TEST(DiagnoserTiers, PipelineFaultIsAFailedStatusNotAnException) {
  const TierEnv& e = tier_env();
  const Sample sample = fresh_sample(e, 779);

  ServingConfig serving;
  serving.cache_capacity = 0;
  serving.extraction_hook = [](const Matrix&) { throw Error("injected"); };
  auto service = tier_service(e, serving);

  Diagnoser& tier = *service;
  const DiagnosisResult r = tier.diagnose(DiagnoseRequest{&sample.series});
  EXPECT_EQ(r.status, RequestStatus::Failed);
  EXPECT_NE(r.error.find("injected"), std::string::npos);
}

TEST(DiagnoserTiers, GenericRetryRecoversOnAnyTier) {
  const TierEnv& e = tier_env();
  const Sample sample = fresh_sample(e, 780);

  std::atomic<int> calls{0};
  ServingConfig serving;
  serving.cache_capacity = 0;
  serving.extraction_hook = [&](const Matrix&) {
    if (calls.fetch_add(1) < 2) throw Error("transient");
  };
  auto service = tier_service(e, serving);

  BackoffConfig backoff;
  backoff.max_attempts = 5;
  backoff.initial_delay_ms = 0.5;
  backoff.seed = 7;
  const DiagnosisResult r = diagnose_with_retry(
      *service, DiagnoseRequest{&sample.series}, backoff);
  EXPECT_TRUE(r.ok()) << to_string(r.status) << ": " << r.error;
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(calls.load(), 3);
}

}  // namespace
}  // namespace alba
