#include "wire/chaos.hpp"

#include <algorithm>
#include <cerrno>
#include <deque>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "wire/frame.hpp"

namespace alba {

namespace detail {

struct ChaosState {
  std::mutex mu;
  WireChaosConfig config;
  WireChaosStats stats;
  bool armed = true;
  double now_ms = 0.0;
  std::uint64_t next_ordinal = 0;
  std::vector<class ChaosConnectionImpl*> live;
};

}  // namespace detail

namespace {

using detail::ChaosState;

std::uint32_t peek_u32(const std::deque<std::uint8_t>& q, std::size_t at) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(q[at + i]) << (8 * i);
  }
  return v;
}

}  // namespace

namespace detail {

class ChaosConnectionImpl : public Connection {
 public:
  ChaosConnectionImpl(std::shared_ptr<ChaosState> state,
                      std::unique_ptr<Connection> inner, std::uint64_t ordinal)
      : state_(std::move(state)), inner_(std::move(inner)),
        rng_(SplitMix64(state_->config.seed ^
                        (ordinal * 0x9E3779B97F4A7C15ULL))
                 .next()) {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->live.push_back(this);
    ++state_->stats.connections;
  }

  ~ChaosConnectionImpl() override {
    close();
    std::lock_guard<std::mutex> lock(state_->mu);
    auto& live = state_->live;
    live.erase(std::remove(live.begin(), live.end(), this), live.end());
  }

  IoResult read_some(std::span<std::uint8_t> buf) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    flush_locked();
    if (dropped_) {
      IoResult r;
      r.eof = true;
      return r;
    }
    lock.unlock();
    return inner_->read_some(buf);
  }

  IoResult write_some(std::span<const std::uint8_t> data) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    IoResult r;
    if (dropped_) {
      r.error = EPIPE;
      return r;
    }
    raw_.insert(raw_.end(), data.begin(), data.end());
    carve_locked();
    flush_locked();
    // Chaos accepted the bytes even if they are still staged; from the
    // client's perspective the kernel buffered them.
    r.n = data.size();
    return r;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    dropped_ = true;
    if (inner_) inner_->close();
  }

  bool closed() const override { return dropped_; }

  void advance_locked() { flush_locked(); }

 private:
  struct Staged {
    std::vector<std::uint8_t> bytes;
    double release_ms = 0.0;
  };

  // Cuts complete frames out of raw_ and stages them, applying per-frame
  // fault draws. Bytes of a not-yet-complete frame stay in raw_.
  void carve_locked() {
    const WireChaosConfig& cfg = state_->config;
    while (true) {
      if (raw_.size() < kWireHeaderSize) return;
      // A frame is delimited by its own header; the client only writes
      // well-formed frames, so the length field is trustworthy here.
      const std::size_t payload_len = peek_u32(raw_, 8);
      const std::size_t frame_size = kWireHeaderSize + payload_len;
      if (raw_.size() < frame_size) return;
      std::vector<std::uint8_t> frame(frame_size);
      for (std::size_t i = 0; i < frame_size; ++i) {
        frame[i] = raw_.front();
        raw_.pop_front();
      }
      ++state_->stats.frames_seen;
      ++frames_this_connection_;

      const bool faultable = state_->armed &&
                             frames_this_connection_ > cfg.grace_frames;
      bool cut = false;
      if (faultable && rng_.bernoulli(cfg.drop_rate)) {
        // Torn frame: forward a random prefix, then sever the connection.
        ++state_->stats.drops_injected;
        frame.resize(rng_.uniform_index(frame.size()));
        cut = true;
      } else if (faultable) {
        if (rng_.bernoulli(cfg.corrupt_rate)) {
          ++state_->stats.corrupted;
          const std::size_t byte = rng_.uniform_index(frame.size());
          frame[byte] ^= static_cast<std::uint8_t>(
              1u << rng_.uniform_index(8));
        }
        if (rng_.bernoulli(cfg.duplicate_rate)) {
          ++state_->stats.duplicated;
          stage(frame, cfg, faultable);
        }
      }
      if (!frame.empty()) stage(std::move(frame), cfg, faultable);
      if (cut) {
        cut_after_flush_ = true;
        return;  // nothing after the cut point ever leaves
      }
    }
  }

  // Chunking and stalling are faults too: they only apply while this
  // frame is faultable (armed, past the grace window), so disarming chaos
  // lets a reconnecting client handshake at full speed.
  void stage(std::vector<std::uint8_t> frame, const WireChaosConfig& cfg,
             bool faultable) {
    const bool chunked =
        faultable && (cfg.partial_writes || cfg.stall_ms > 0.0);
    const double stall = faultable ? cfg.stall_ms : 0.0;
    const std::size_t chunk_cap = chunked ? 16 : frame.size();
    std::size_t at = 0;
    while (at < frame.size()) {
      const std::size_t take =
          chunked ? 1 + rng_.uniform_index(chunk_cap) : frame.size();
      Staged s;
      s.bytes.assign(frame.begin() + static_cast<std::ptrdiff_t>(at),
                     frame.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(at + take, frame.size())));
      next_release_ = std::max(next_release_, state_->now_ms) + stall;
      s.release_ms = next_release_;
      at += s.bytes.size();
      staged_.push_back(std::move(s));
    }
  }

  void flush_locked() {
    while (!staged_.empty() && !dropped_ &&
           staged_.front().release_ms <= state_->now_ms) {
      Staged& s = staged_.front();
      const IoResult w = inner_->write_some(s.bytes);
      if (w.error != 0) {
        dropped_ = true;
        break;
      }
      if (w.n < s.bytes.size()) {
        s.bytes.erase(s.bytes.begin(),
                      s.bytes.begin() + static_cast<std::ptrdiff_t>(w.n));
        break;  // inner transport would block; retry on the next flush
      }
      staged_.pop_front();
    }
    if (cut_after_flush_ && staged_.empty() && !dropped_) {
      inner_->close();
      dropped_ = true;
    }
  }

  std::shared_ptr<ChaosState> state_;
  std::unique_ptr<Connection> inner_;
  Rng rng_;
  std::deque<std::uint8_t> raw_;
  std::deque<Staged> staged_;
  double next_release_ = 0.0;
  std::uint64_t frames_this_connection_ = 0;
  bool cut_after_flush_ = false;
  bool dropped_ = false;
};

}  // namespace detail

WireChaos::WireChaos(WireChaosConfig config)
    : state_(std::make_shared<detail::ChaosState>()) {
  state_->config = config;
}

WireChaos::~WireChaos() = default;

Connector WireChaos::wrap(Connector inner) {
  auto state = state_;
  return [state, inner = std::move(inner)]() -> std::unique_ptr<Connection> {
    auto conn = inner();
    if (!conn) return nullptr;
    std::uint64_t ordinal = 0;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      ordinal = state->next_ordinal++;
    }
    return std::make_unique<detail::ChaosConnectionImpl>(state,
                                                         std::move(conn),
                                                         ordinal);
  };
}

void WireChaos::set_now(double now_ms) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->now_ms = now_ms;
  for (detail::ChaosConnectionImpl* conn : state_->live) {
    conn->advance_locked();
  }
}

void WireChaos::arm(bool on) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->armed = on;
}

bool WireChaos::armed() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->armed;
}

WireChaosStats WireChaos::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->stats;
}

}  // namespace alba
