// Byte transports under the wire protocol: a minimal non-blocking
// Connection/Listener pair with two implementations —
//
//   * TCP (loopback or LAN): the production path. Sockets are
//     non-blocking; the ingest server multiplexes them with poll(2) via
//     the fd() hook, and SIGPIPE is suppressed so peer hangups surface as
//     typed errors.
//
//   * Loopback: deterministic in-memory byte pipes through a LoopbackHub.
//     No file descriptors, no kernel buffers, no timing — a test or chaos
//     scenario drives client and server alternately in one thread and
//     every byte movement is reproducible. connect() fails (nullptr) while
//     no listener is live, which is exactly how a dead server looks to a
//     reconnecting client.
//
// Both ends of either transport are safe to use from one thread at a time
// per end (the loopback hub itself is internally locked so the two ends
// may live on different threads).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

namespace alba {

/// One non-blocking read/write attempt. Exactly one of would_block / eof /
/// error explains a zero-byte outcome; `n` bytes may still have moved
/// before a would_block.
struct IoResult {
  std::size_t n = 0;
  bool would_block = false;
  bool eof = false;   // peer closed its end (reads only)
  int error = 0;      // errno-style failure; the connection is dead

  bool ok() const noexcept { return !eof && error == 0; }
};

/// A bidirectional byte stream. Implementations never block and never
/// raise signals; every failure is an IoResult.
class Connection {
 public:
  virtual ~Connection() = default;

  virtual IoResult read_some(std::span<std::uint8_t> buf) = 0;
  virtual IoResult write_some(std::span<const std::uint8_t> data) = 0;
  virtual void close() = 0;
  virtual bool closed() const = 0;

  /// Pollable descriptor, or -1 for in-memory transports (the server then
  /// sweeps non-blockingly instead of sleeping in poll(2)).
  virtual int fd() const { return -1; }
};

class Listener {
 public:
  virtual ~Listener() = default;

  /// Accepts one pending connection; nullptr when none is waiting.
  virtual std::unique_ptr<Connection> accept_one() = 0;
  virtual void close() = 0;
  virtual int fd() const { return -1; }
};

/// How a client obtains (re)connections; returns nullptr on failure (the
/// client backs off and retries). WireChaos wraps one of these to inject
/// faults between client and transport.
using Connector = std::function<std::unique_ptr<Connection>()>;

// ------------------------------------------------------------------ TCP ---

class TcpListener : public Listener {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port).
  /// Throws alba::Error on bind failure.
  static std::unique_ptr<TcpListener> bind_loopback(std::uint16_t port = 0);

  ~TcpListener() override;
  std::unique_ptr<Connection> accept_one() override;
  void close() override;
  int fd() const override { return fd_; }
  std::uint16_t port() const noexcept { return port_; }

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to `host`:`port` with a bounded blocking connect, then switches
/// the socket non-blocking. nullptr on refusal/timeout/any failure.
std::unique_ptr<Connection> tcp_connect(const std::string& host,
                                        std::uint16_t port,
                                        double timeout_ms = 1000.0);

// ------------------------------------------------------- loopback pipes ---

namespace detail {
struct LoopbackShared;
}

/// In-memory rendezvous: make_listener() opens the server side, connect()
/// creates a connection pair, handing the server end to the listener.
/// Closing or dropping the listener makes connect() return nullptr
/// (connection refused) until a new listener is made — which is how a
/// server restart looks from the client.
class LoopbackHub {
 public:
  LoopbackHub();
  ~LoopbackHub();

  /// Opens (or replaces) the hub's listener. A previous listener object is
  /// implicitly closed.
  std::unique_ptr<Listener> make_listener();

  /// Client-side connect; nullptr while no listener is live.
  std::unique_ptr<Connection> connect();

 private:
  std::shared_ptr<detail::LoopbackShared> shared_;
};

}  // namespace alba
