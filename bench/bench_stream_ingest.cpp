// Streaming ingestion benchmark: how fast the front end turns a 1 Hz
// per-node feed into triggered, feature-ready windows, and what the
// incremental O(M) emit buys over recomputing each window from scratch.
//
// The sweep replays synthetic multi-node telemetry through StreamIngestor
// across window-length x stride configurations and reports ingest
// throughput (rows/sec), the incremental emit cost per window, the batch
// recompute cost per window (preprocess_metric_column + fold, i.e. what a
// naive trigger would pay), and their ratio.
//
// --smoke runs the CI gate instead: a T=60 replay (clean + a gapped,
// NaN-ridden, duplicated segment) asserting
//   * parity per emitted window — mean/var/min/max bit-identical to
//     StreamIngestor::batch_features, quantiles bit-identical under
//     kQuantileExactCap (T=60 windows always are) and delta-gated beyond;
//   * the incremental emit is >= 5x faster than batch recomputing the
//     same windows;
//   * nonzero ingest throughput.
// Results (both modes) land in BENCH_stream.json for the CI artifact.
//
//   ./build/bench/bench_stream_ingest           # the sweep
//   ./build/bench/bench_stream_ingest --smoke   # CI gate, exit 1 on failure
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "alba.hpp"
#include "common/rng.hpp"

using namespace alba;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Synthetic 1 Hz rows: cumulative counters, sinusoid+noise gauges,
// optional NaN cells.
std::vector<std::vector<double>> make_rows(const MetricRegistry& registry,
                                           std::size_t t_total,
                                           std::uint64_t seed,
                                           double nan_cell_rate) {
  Rng rng(seed);
  const std::size_t m_count = registry.size();
  std::vector<double> level(m_count, 0.0);
  std::vector<std::vector<double>> rows(t_total,
                                        std::vector<double>(m_count));
  for (std::size_t t = 0; t < t_total; ++t) {
    for (std::size_t m = 0; m < m_count; ++m) {
      if (registry.metric(m).kind == MetricKind::Counter) {
        level[m] += rng.uniform(0.0, 5.0);
        rows[t][m] = level[m];
      } else {
        rows[t][m] = std::sin(0.3 * static_cast<double>(t) +
                              static_cast<double>(m)) +
                     0.1 * rng.normal();
      }
      if (nan_cell_rate > 0.0 && rng.uniform() < nan_cell_rate) {
        rows[t][m] = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  return rows;
}

// Exact equality for finite feature values; == rather than memcmp so a
// +0.0/-0.0 bit-pattern difference (the one value-equal pair the sorted
// buffer may order differently from std::sort) is not a false mismatch.
bool values_equal(double a, double b) noexcept { return a == b; }

// Parity against the batch reference, mirroring the test-suite contract.
// Returns the number of feature mismatches (0 = parity holds).
std::size_t parity_mismatches(const TriggeredWindow& w,
                              const MetricRegistry& registry,
                              const PreprocessConfig& preprocess) {
  const std::vector<double> batch =
      StreamIngestor::batch_features(w.raw, registry, preprocess);
  if (batch.size() != w.features.size()) return batch.size();
  const std::size_t processed_len =
      w.raw.rows() - static_cast<std::size_t>(preprocess.trim_head) -
      static_cast<std::size_t>(preprocess.trim_tail) - 1;
  const bool exact_quantiles = processed_len <= kQuantileExactCap;
  std::size_t mismatches = 0;
  for (std::size_t m = 0; m < registry.size(); ++m) {
    const std::size_t base = m * kStreamFeaturesPerMetric;
    for (std::size_t f = 0; f < 4; ++f) {
      if (!values_equal(w.features[base + f], batch[base + f])) ++mismatches;
    }
    const double range = batch[base + 3] - batch[base + 2];
    const double tol = kQuantileDeltaGate * range + 1e-9;
    for (std::size_t f = 4; f < kStreamFeaturesPerMetric; ++f) {
      if (exact_quantiles) {
        if (!values_equal(w.features[base + f], batch[base + f])) ++mismatches;
      } else if (std::abs(w.features[base + f] - batch[base + f]) > tol) {
        ++mismatches;
      }
    }
  }
  return mismatches;
}

struct ReplayResult {
  std::vector<TriggeredWindow> windows;
  IngestStats stats;          // summed over nodes
  double replay_seconds = 0;  // wall clock for the whole replay
  std::uint64_t rows_pushed = 0;
};

ReplayResult replay(const MetricRegistry& registry,
                    const StreamIngestConfig& cfg, std::size_t nodes,
                    std::size_t rows_per_node, std::uint64_t seed,
                    double nan_cell_rate, std::size_t gap_every) {
  std::vector<std::vector<std::vector<double>>> feeds;
  feeds.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    feeds.push_back(
        make_rows(registry, rows_per_node, seed + n, nan_cell_rate));
  }

  StreamIngestor ingestor(registry, cfg);
  ReplayResult result;
  const auto t0 = Clock::now();
  for (std::size_t t = 0; t < rows_per_node; ++t) {
    for (std::size_t n = 0; n < nodes; ++n) {
      if (gap_every != 0 && (t + n) % gap_every == 3) continue;  // dropouts
      for (TriggeredWindow& w :
           ingestor.push(static_cast<int>(n), t, feeds[n][t])) {
        result.windows.push_back(std::move(w));
      }
      ++result.rows_pushed;
    }
  }
  result.replay_seconds = seconds_since(t0);
  result.stats = ingestor.total_stats();
  return result;
}

// What a naive trigger pays: recompute each emitted window's features from
// its raw matrix via the batch path.
double time_batch_recompute(const std::vector<TriggeredWindow>& windows,
                            const MetricRegistry& registry,
                            const PreprocessConfig& preprocess) {
  const auto t0 = Clock::now();
  for (const TriggeredWindow& w : windows) {
    volatile double sink =
        StreamIngestor::batch_features(w.raw, registry, preprocess)[0];
    (void)sink;
  }
  return seconds_since(t0);
}

struct BenchRow {
  std::string label;
  std::size_t window_length = 0;
  std::size_t stride = 0;
  std::uint64_t rows = 0;
  std::size_t windows = 0;
  double rows_per_sec = 0;
  double emit_us_per_window = 0;
  double batch_us_per_window = 0;
  double speedup = 0;
};

void write_json(const std::vector<BenchRow>& rows, const char* path) {
  std::ofstream os(path);
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    os << "  {\"config\": \"" << r.label << "\""
       << ", \"window_length\": " << r.window_length
       << ", \"stride\": " << r.stride << ", \"rows\": " << r.rows
       << ", \"windows\": " << r.windows
       << ", \"rows_per_sec\": " << r.rows_per_sec
       << ", \"emit_us_per_window\": " << r.emit_us_per_window
       << ", \"batch_us_per_window\": " << r.batch_us_per_window
       << ", \"emit_speedup\": " << r.speedup << "}"
       << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "]\n";
}

BenchRow measure(const MetricRegistry& registry, const StreamIngestConfig& cfg,
                 std::size_t nodes, std::size_t rows_per_node,
                 std::uint64_t seed) {
  const ReplayResult r =
      replay(registry, cfg, nodes, rows_per_node, seed,
             /*nan_cell_rate=*/0.02, /*gap_every=*/0);
  const double batch_seconds =
      time_batch_recompute(r.windows, registry, cfg.preprocess);
  BenchRow row;
  row.label = strformat("L=%zu/S=%zu", cfg.window_length, cfg.stride);
  row.window_length = cfg.window_length;
  row.stride = cfg.stride;
  row.rows = r.rows_pushed;
  row.windows = r.windows.size();
  row.rows_per_sec =
      r.replay_seconds > 0 ? static_cast<double>(r.rows_pushed) /
                                 r.replay_seconds
                           : 0.0;
  if (!r.windows.empty()) {
    const double n = static_cast<double>(r.windows.size());
    row.emit_us_per_window = 1e6 * r.stats.emit_seconds / n;
    row.batch_us_per_window = 1e6 * batch_seconds / n;
  }
  row.speedup = r.stats.emit_seconds > 0
                    ? batch_seconds / r.stats.emit_seconds
                    : 0.0;
  return row;
}

int run_smoke(const MetricRegistry& registry, std::uint64_t seed) {
  std::size_t violations = 0;
  const auto check = [&violations](bool ok, const char* what) {
    if (!ok) {
      ++violations;
      std::printf("[smoke] VIOLATION: %s\n", what);
    }
  };

  // The acceptance configuration: T=60 windows, 4 nodes, overlapping
  // stride, light NaN cells plus periodic dropouts — a production-shaped
  // feed, not a best case.
  StreamIngestConfig cfg;
  cfg.window_length = 60;
  cfg.stride = 30;
  const ReplayResult r = replay(registry, cfg, /*nodes=*/4,
                                /*rows_per_node=*/3000, seed,
                                /*nan_cell_rate=*/0.03, /*gap_every=*/97);

  check(!r.windows.empty(), "replay emitted no windows");
  check(r.stats.missing_rows > 0, "dropouts injected no gaps (feed inert?)");

  std::size_t mismatched_windows = 0;
  for (const TriggeredWindow& w : r.windows) {
    if (parity_mismatches(w, registry, cfg.preprocess) != 0) {
      ++mismatched_windows;
    }
  }
  check(mismatched_windows == 0,
        "incremental features diverged from the batch reference");

  const double batch_seconds =
      time_batch_recompute(r.windows, registry, cfg.preprocess);
  const double speedup = r.stats.emit_seconds > 0
                             ? batch_seconds / r.stats.emit_seconds
                             : 0.0;
  const double rows_per_sec =
      r.replay_seconds > 0
          ? static_cast<double>(r.rows_pushed) / r.replay_seconds
          : 0.0;

  std::printf("[smoke] %s\n", format_ingest_summary(r.stats).c_str());
  std::printf(
      "[smoke] %zu windows (T=%zu), %llu rows at %.0f rows/s; emit "
      "%.1fus/window incremental vs %.1fus/window batch recompute "
      "(%.1fx)\n",
      r.windows.size(), cfg.window_length,
      static_cast<unsigned long long>(r.rows_pushed), rows_per_sec,
      r.windows.empty() ? 0.0
                        : 1e6 * r.stats.emit_seconds /
                              static_cast<double>(r.windows.size()),
      r.windows.empty() ? 0.0
                        : 1e6 * batch_seconds /
                              static_cast<double>(r.windows.size()),
      speedup);

  check(rows_per_sec > 0.0, "ingest throughput is zero");
  check(speedup >= 5.0,
        "incremental emit is not >= 5x faster than batch recompute");

  BenchRow row;
  row.label = "smoke/T=60";
  row.window_length = cfg.window_length;
  row.stride = cfg.stride;
  row.rows = r.rows_pushed;
  row.windows = r.windows.size();
  row.rows_per_sec = rows_per_sec;
  if (!r.windows.empty()) {
    const double n = static_cast<double>(r.windows.size());
    row.emit_us_per_window = 1e6 * r.stats.emit_seconds / n;
    row.batch_us_per_window = 1e6 * batch_seconds / n;
  }
  row.speedup = speedup;
  write_json({row}, "BENCH_stream.json");
  std::printf("[smoke] results written to BENCH_stream.json\n");

  if (violations != 0) {
    std::printf("[smoke] FAILED: %zu violated invariants\n", violations);
    return 1;
  }
  std::printf("[smoke] ok: parity held on all %zu windows, incremental "
              "emit %.1fx faster than recompute\n",
              r.windows.size(), speedup);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes = 4;
  std::size_t rows_per_node = 5000;
  std::uint64_t seed = 11;
  bool smoke = false;
  Cli cli("bench_stream_ingest",
          "Streaming ingestion benchmark: rows/sec throughput and the "
          "incremental-emit vs batch-recompute ratio (--smoke for the CI "
          "parity + speedup gate).");
  cli.flag("nodes", &nodes, "concurrently streamed nodes");
  cli.flag("rows", &rows_per_node, "1 Hz rows per node");
  cli.flag("seed", &seed, "feed generation seed");
  cli.flag("smoke", &smoke,
           "T=60 replay: assert batch parity and >=5x emit speedup");
  cli.parse(argc, argv);
  set_log_level(LogLevel::Warn);

  const MetricRegistry registry((SystemKind::Volta), RegistryConfig{});
  std::printf("[setup] %zu metrics, %zu nodes, %zu rows/node\n",
              registry.size(), nodes, rows_per_node);

  if (smoke) return run_smoke(registry, seed);

  const std::vector<std::pair<std::size_t, std::size_t>> configs = {
      {48, 24}, {48, 48}, {60, 30}, {96, 48}, {192, 96}};
  TextTable table({"config", "windows", "rows/s", "emit us/win",
                   "batch us/win", "speedup"});
  std::vector<BenchRow> rows;
  for (const auto& [length, stride] : configs) {
    StreamIngestConfig cfg;
    cfg.window_length = length;
    cfg.stride = stride;
    const BenchRow row = measure(registry, cfg, nodes, rows_per_node, seed);
    table.add_row({row.label, std::to_string(row.windows),
                   strformat("%.0f", row.rows_per_sec),
                   strformat("%.1f", row.emit_us_per_window),
                   strformat("%.1f", row.batch_us_per_window),
                   strformat("%.1fx", row.speedup)});
    rows.push_back(row);
  }
  std::printf("\nstreaming ingest sweep (%zu nodes x %zu rows)\n%s\n",
              nodes, rows_per_node, table.render().c_str());
  write_json(rows, "BENCH_stream.json");
  std::printf("results written to BENCH_stream.json\n");
  return 0;
}
