#include "ml/binning.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace alba {

namespace {

// Columns quantized per pool task, and the square tile side for the
// row-major → column-major transpose each task starts with.
constexpr std::size_t kColBlock = 64;

// Edge finding sorts at most this many values per column; larger columns
// are subsampled first (deterministically, seeded by the column index).
// Quantile cut points from ~4 samples per bin are statistically stable,
// and the full sort would otherwise dominate training on wide matrices —
// the same tradeoff LightGBM makes when capping bin-construction samples.
// The coding pass still visits every value.
constexpr std::size_t kEdgeSampleCap = 1024;

// Ascending upper edges for one column's finite values (sorted, first `n`
// entries of `sorted`). Fewer distinct values than bins: one bin per value,
// interior edges at midpoints (matching the exact splitter's thresholds),
// last edge = max value. More: edges at quantile boundaries, deduplicated
// so every bin is non-empty.
std::vector<double> make_edges(const double* sorted, std::size_t n,
                               std::size_t max_finite_bins) {
  std::vector<double> edges;
  if (n == 0) return edges;

  std::size_t distinct = 1;
  for (std::size_t i = 1; i < n; ++i) {
    distinct += sorted[i] != sorted[i - 1] ? 1 : 0;
  }

  if (distinct <= max_finite_bins) {
    edges.reserve(distinct);
    for (std::size_t i = 1; i < n; ++i) {
      if (sorted[i] != sorted[i - 1]) {
        edges.push_back(0.5 * (sorted[i - 1] + sorted[i]));
      }
    }
    edges.push_back(sorted[n - 1]);
    return edges;
  }

  edges.reserve(max_finite_bins);
  for (std::size_t b = 1; b < max_finite_bins; ++b) {
    const std::size_t pos = b * n / max_finite_bins;
    if (pos == 0 || sorted[pos] == sorted[pos - 1]) continue;
    const double edge = 0.5 * (sorted[pos - 1] + sorted[pos]);
    if (edges.empty() || edge > edges.back()) edges.push_back(edge);
  }
  edges.push_back(sorted[n - 1]);
  return edges;
}

// Index of the first edge >= v, i.e. std::lower_bound — but branchless,
// which matters when this runs once per matrix entry. The bool→integer
// multiply (rather than a ternary, which compilers turn back into a
// mispredicting branch) is what keeps the search chain branch-free; it
// measures >3× faster than std::lower_bound here. `n` must be >= 1.
std::size_t lower_bound_index(const double* edges, std::size_t n,
                              double v) noexcept {
  const double* base = edges;
  std::size_t len = n;
  while (len > 1) {
    const std::size_t half = len / 2;
    base += half * static_cast<std::size_t>(base[half - 1] < v);
    len -= half;
  }
  return static_cast<std::size_t>(base - edges) +
         static_cast<std::size_t>(*base < v);
}

}  // namespace

BinnedMatrix::BinnedMatrix(const Matrix& x, int max_bins)
    : rows_(x.rows()), cols_(x.cols()) {
  ALBA_CHECK(max_bins >= 2 && max_bins <= kMaxBins)
      << "max_bins " << max_bins << " outside [2, " << kMaxBins << "]";
  const auto max_finite_bins = static_cast<std::size_t>(max_bins - 1);
  codes_.resize(rows_ * cols_);
  edges_.resize(cols_);

  // Block-parallel over columns: each task owns a contiguous range of
  // features (code spans and edge vectors), so the result is
  // schedule-independent.
  const std::size_t n_blocks = (cols_ + kColBlock - 1) / kColBlock;
  parallel_for(n_blocks, [&](std::size_t blk) {
    const std::size_t f0 = blk * kColBlock;
    const std::size_t bf = std::min(kColBlock, cols_ - f0);

    // Tile-transpose this block into a column-major scratch first: the
    // matrix is row-major, and both the finite-value collection and the
    // coding pass below want sequential column reads instead of
    // cache-hostile row-stride jumps.
    std::vector<double> scratch(bf * rows_);
    for (std::size_t r0 = 0; r0 < rows_; r0 += kColBlock) {
      const std::size_t r1 = std::min(rows_, r0 + kColBlock);
      for (std::size_t i = r0; i < r1; ++i) {
        const double* row = x.data() + i * cols_ + f0;
        for (std::size_t j = 0; j < bf; ++j) scratch[j * rows_ + i] = row[j];
      }
    }

    std::vector<double> finite;
    finite.reserve(rows_);
    for (std::size_t j = 0; j < bf; ++j) {
      const std::size_t f = f0 + j;
      const double* col = scratch.data() + j * rows_;

      finite.clear();
      for (std::size_t i = 0; i < rows_; ++i) {
        if (std::isfinite(col[i])) finite.push_back(col[i]);
      }

      std::size_t nf = finite.size();
      if (nf > kEdgeSampleCap) {
        // Partial Fisher–Yates: move a without-replacement sample into the
        // buffer's head. The per-column seed keeps the sample (and so the
        // whole binned view) identical for every pool size.
        Rng rng(0x9E3779B97F4A7C15ULL ^ f);
        for (std::size_t i = 0; i < kEdgeSampleCap; ++i) {
          std::swap(finite[i], finite[i + rng.uniform_index(nf - i)]);
        }
        nf = kEdgeSampleCap;
      }
      std::sort(finite.begin(),
                finite.begin() + static_cast<std::ptrdiff_t>(nf));
      edges_[f] = make_edges(finite.data(), nf, max_finite_bins);

      const std::vector<double>& edges = edges_[f];
      const std::size_t m = edges.size();
      std::uint8_t* codes = codes_.data() + f * rows_;
      for (std::size_t i = 0; i < rows_; ++i) {
        const double v = col[i];
        if (!std::isfinite(v)) {
          codes[i] = 0;
          continue;
        }
        // Values above every sampled edge clamp into the last bin; that
        // bin is never a left-side cut, so training and raw-value
        // prediction still route them the same way.
        const std::size_t idx =
            std::min(lower_bound_index(edges.data(), m, v), m - 1);
        codes[i] = static_cast<std::uint8_t>(1 + idx);
      }
    }
  });
}

}  // namespace alba
