// Per-round instrumentation of the active-learning loop. Each round the
// learner records how long the three phases took — scoring the pool,
// re-fitting the model, evaluating on the test set — together with the pool
// and label bookkeeping. Round 0 is the seed fit (no scoring). The stats
// ride along in ActiveLearnerResult so benches and experiments can report
// where query-loop time goes without re-instrumenting the learner.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace alba {

struct RoundStats {
  int round = 0;             // 0 = seed fit, 1.. = query rounds
  int labels_total = 0;      // oracle labels consumed after this round
  std::size_t pool_size = 0; // unlabeled candidates before this round's query
  std::size_t batch = 0;     // labels queried this round (0 for the seed fit)
  double score_seconds = 0.0;
  double refit_seconds = 0.0;
  double eval_seconds = 0.0;
};

/// Phase totals over a run; `rounds` counts entries including the seed fit.
struct RoundStatsSummary {
  std::size_t rounds = 0;
  double score_seconds = 0.0;
  double refit_seconds = 0.0;
  double eval_seconds = 0.0;

  double total_seconds() const noexcept {
    return score_seconds + refit_seconds + eval_seconds;
  }
};

RoundStatsSummary summarize_rounds(std::span<const RoundStats> rounds);

/// One human-readable line, e.g.
///   "12 rounds: score 0.031s, refit 0.420s, eval 0.088s (total 0.539s)".
std::string format_round_summary(std::span<const RoundStats> rounds);

/// CSV column names, matching round_stats_csv_row field order. The leading
/// `label` column tags the run (strategy or bench name) so several runs can
/// share one file.
std::string round_stats_csv_header();
std::string round_stats_csv_row(std::string_view label, const RoundStats& s);

/// Writes header + one row per round under the given label.
void write_round_stats_csv(std::ostream& os, std::string_view label,
                           std::span<const RoundStats> rounds);

}  // namespace alba
