// ThreadPool semantics the ML and active-learning layers lean on:
// parallel_for propagates body exceptions to the caller, fire-and-forget
// tasks never take the process down, and nested parallel calls from inside
// a worker run inline instead of deadlocking.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace alba {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunkedPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_chunked(100,
                                [](std::size_t begin, std::size_t) {
                                  if (begin == 0) {
                                    throw std::runtime_error("chunk failed");
                                  }
                                }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> done{0};
  pool.parallel_for(8, [&](std::size_t) { done++; });
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, ThrowingEnqueuedTaskDoesNotTerminate) {
  ThreadPool pool(2);
  // Fire-and-forget tasks have no caller to rethrow to; a throw used to
  // escape worker_loop and std::terminate the process.
  pool.enqueue([] { throw std::runtime_error("dropped"); });
  pool.enqueue([] { throw 42; });  // non-std exceptions too

  std::atomic<bool> ran{false};
  pool.enqueue([&] { ran = true; });
  for (int spin = 0; spin < 500 && !ran; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(ran) << "worker died after a throwing task";

  // parallel_for still works on the same pool.
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  pool.parallel_for(6, [&](std::size_t) {
    // From inside a worker this must not wait on the pool's own queue.
    pool.parallel_for(5, [&](std::size_t) { inner_total++; });
  });
  EXPECT_EQ(inner_total.load(), 30);
}

TEST(ThreadPool, SubmitAfterShutdownThrowsTypedError) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&](std::size_t) { ran++; });
  EXPECT_EQ(ran.load(), 4);

  pool.shutdown();
  EXPECT_TRUE(pool.stopped());
  // Submitting to a joined pool used to be undefined behavior (a notify
  // on a condition variable nobody waits on, a task that never runs); it
  // must now be a typed alba::Error.
  EXPECT_THROW(pool.enqueue([] {}), Error);
  EXPECT_THROW(pool.parallel_for(8, [](std::size_t) {}), Error);
  EXPECT_THROW(
      pool.parallel_for_chunked(8, [](std::size_t, std::size_t) {}),
      Error);
  // n == 0 stays a no-op even after shutdown (nothing would ever run).
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ShutdownIsIdempotentAndDrainsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.enqueue([&] { ran++; });
  }
  pool.shutdown();  // must run everything already queued before joining
  EXPECT_EQ(ran.load(), 8);
  pool.shutdown();  // second call is a no-op (and the destructor a third)
  EXPECT_TRUE(pool.stopped());
}

TEST(ThreadPool, WorkerFlagResetAfterThrowingTask) {
  ThreadPool pool(1);
  pool.enqueue([] { throw std::runtime_error("boom"); });
  // If the in-worker flag leaked past the throw, later parallel_for calls
  // from this thread would still work (they run on the caller), but a
  // worker-side nested call would wrongly inline. Simply verify the single
  // worker still splits follow-up loops correctly.
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 16);
}

}  // namespace
}  // namespace alba
