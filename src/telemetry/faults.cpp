#include "telemetry/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace alba {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double clamp01(double v) noexcept { return std::clamp(v, 0.0, 1.0); }

}  // namespace

bool FaultConfig::enabled() const noexcept {
  return metric_dropout_rate > 0.0 || stuck_rate > 0.0 ||
         nan_burst_rate > 0.0 || counter_reset_rate > 0.0 ||
         row_stall_rate > 0.0 || truncate_prob > 0.0;
}

FaultConfig FaultConfig::scaled(double intensity) const noexcept {
  FaultConfig out = *this;
  out.metric_dropout_rate = clamp01(metric_dropout_rate * intensity);
  out.stuck_rate = clamp01(stuck_rate * intensity);
  out.nan_burst_rate = clamp01(nan_burst_rate * intensity);
  out.counter_reset_rate = clamp01(counter_reset_rate * intensity);
  out.row_stall_rate = clamp01(row_stall_rate * intensity);
  out.truncate_prob = clamp01(truncate_prob * intensity);
  return out;
}

FaultConfig production_faults() {
  FaultConfig cfg;
  cfg.metric_dropout_rate = 0.02;
  cfg.stuck_rate = 0.02;
  cfg.nan_burst_rate = 0.05;
  cfg.nan_burst_len = 8;
  cfg.counter_reset_rate = 0.03;
  cfg.row_stall_rate = 0.01;
  cfg.truncate_prob = 0.04;
  cfg.truncate_min_frac = 0.4;
  return cfg;
}

std::size_t FaultSummary::total_events() const noexcept {
  return metric_dropouts + stuck_metrics + nan_bursts + counter_resets +
         stalled_rows + truncated_runs;
}

FaultSummary& FaultSummary::operator+=(const FaultSummary& other) noexcept {
  metric_dropouts += other.metric_dropouts;
  stuck_metrics += other.stuck_metrics;
  nan_bursts += other.nan_bursts;
  counter_resets += other.counter_resets;
  stalled_rows += other.stalled_rows;
  truncated_runs += other.truncated_runs;
  truncated_rows += other.truncated_rows;
  cells_corrupted += other.cells_corrupted;
  return *this;
}

TelemetryFaultInjector::TelemetryFaultInjector(FaultConfig config)
    : config_(config) {
  auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
  ALBA_CHECK(rate_ok(config_.metric_dropout_rate) &&
             rate_ok(config_.stuck_rate) && rate_ok(config_.nan_burst_rate) &&
             rate_ok(config_.counter_reset_rate) &&
             rate_ok(config_.row_stall_rate) && rate_ok(config_.truncate_prob))
      << "fault rates must lie in [0, 1]";
  ALBA_CHECK(config_.nan_burst_len >= 1)
      << "nan_burst_len " << config_.nan_burst_len << " < 1";
  ALBA_CHECK(config_.truncate_min_frac > 0.0 && config_.truncate_min_frac <= 1.0)
      << "truncate_min_frac " << config_.truncate_min_frac << " outside (0, 1]";
}

FaultSummary TelemetryFaultInjector::apply(Matrix& series,
                                           const MetricRegistry& registry,
                                           Rng& rng) const {
  ALBA_CHECK(series.cols() == registry.size())
      << "series has " << series.cols() << " metrics, registry has "
      << registry.size();
  FaultSummary summary;
  if (series.rows() == 0 || series.cols() == 0) return summary;
  const std::size_t m = series.cols();

  // 1. Run truncation (job killed early). Both draws happen whether or not
  // the run is cut so the stream consumed by later stages is independent of
  // the outcome.
  const bool truncate = rng.bernoulli(config_.truncate_prob);
  const double keep_frac = rng.uniform(config_.truncate_min_frac, 1.0);
  if (truncate) {
    const std::size_t t_full = series.rows();
    const auto t_cut = std::max<std::size_t>(
        2, static_cast<std::size_t>(keep_frac * static_cast<double>(t_full)));
    if (t_cut < t_full) {
      Matrix cut(t_cut, m);
      for (std::size_t t = 0; t < t_cut; ++t) {
        for (std::size_t j = 0; j < m; ++j) cut(t, j) = series(t, j);
      }
      series = std::move(cut);
      summary.truncated_runs = 1;
      summary.truncated_rows = t_full - t_cut;
    }
  }
  const std::size_t rows = series.rows();

  // 2. Stalled sampler: row t re-delivers row t-1.
  if (config_.row_stall_rate > 0.0) {
    for (std::size_t t = 1; t < rows; ++t) {
      if (!rng.bernoulli(config_.row_stall_rate)) continue;
      for (std::size_t j = 0; j < m; ++j) series(t, j) = series(t - 1, j);
      ++summary.stalled_rows;
      summary.cells_corrupted += m;
    }
  }

  // 3. Per-metric lottery (dropout / stuck / NaN burst are mutually
  // exclusive for one metric) plus the independent counter-reset draw.
  const double p_drop = config_.metric_dropout_rate;
  const double p_stuck = p_drop + config_.stuck_rate;
  const double p_burst = p_stuck + config_.nan_burst_rate;
  for (std::size_t j = 0; j < m; ++j) {
    const double u = rng.uniform();
    const std::size_t onset = rng.uniform_index(rows);
    if (u < p_drop) {
      for (std::size_t t = 0; t < rows; ++t) series(t, j) = kNaN;
      ++summary.metric_dropouts;
      summary.cells_corrupted += rows;
    } else if (u < p_stuck) {
      // Dead sampler: repeat the last good reading from `onset` on. Walk
      // back past missing cells for the held value; a column with no finite
      // reading before the onset freezes at 0.
      double held = 0.0;
      for (std::size_t t = onset + 1; t-- > 0;) {
        if (std::isfinite(series(t, j))) {
          held = series(t, j);
          break;
        }
      }
      for (std::size_t t = onset; t < rows; ++t) series(t, j) = held;
      ++summary.stuck_metrics;
      summary.cells_corrupted += rows - onset;
    } else if (u < p_burst) {
      const std::size_t len = std::min<std::size_t>(
          static_cast<std::size_t>(config_.nan_burst_len), rows - onset);
      for (std::size_t t = onset; t < onset + len; ++t) series(t, j) = kNaN;
      ++summary.nan_bursts;
      summary.cells_corrupted += len;
    }

    if (registry.metric(j).kind == MetricKind::Counter && rows >= 2) {
      const bool reset = rng.bernoulli(config_.counter_reset_rate);
      const std::size_t t0 = 1 + rng.uniform_index(rows - 1);
      // A reset on an erased column is invisible (the collector is down);
      // skip it so the accounting only counts observable resets.
      if (reset && std::isfinite(series(t0, j))) {
        const double base = series(t0, j);
        for (std::size_t t = t0; t < rows; ++t) series(t, j) -= base;
        ++summary.counter_resets;
        summary.cells_corrupted += rows - t0;
      }
    }
  }
  return summary;
}

}  // namespace alba
