// Tests for the compiled flat-SoA tree predictor (ml/compiled_tree.hpp):
// bit-identity of the compiled path against the reference object traversal
// for every tree model family under both split algorithms (with NaN
// telemetry mixed in), degenerate batch shapes, lifecycle rules (when
// compiled() must and must not exist), serialize/load recompilation, and
// cross-pool-size determinism via process re-execution.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/compiled_tree.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbm.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"

// Global operator new/delete replacement counting every heap allocation in
// the process, so tests can assert a region performs none (the no-scratch
// contract of the small-batch kernel and the arena'd block path). Delete is
// replaced alongside new so sanitizer builds see matched malloc/free pairs.
namespace {
std::atomic<std::size_t> g_heap_allocs{0};
}  // namespace

// GCC pairs `new` expressions elsewhere in the binary with the free()
// inside these replacements and flags a mismatch it cannot see through;
// the pairing is correct because the replacement new allocates via malloc.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace alba {
namespace {

// Restores the process-wide small-batch crossover on scope exit so tests
// forcing a variant cannot leak it into later tests.
class ScopedCutoff {
 public:
  explicit ScopedCutoff(std::size_t cutoff)
      : prev_(CompiledTreePredictor::set_small_batch_cutoff(cutoff)) {}
  ~ScopedCutoff() { CompiledTreePredictor::set_small_batch_cutoff(prev_); }
  ScopedCutoff(const ScopedCutoff&) = delete;
  ScopedCutoff& operator=(const ScopedCutoff&) = delete;

 private:
  std::size_t prev_;
};

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Labeled synthetic data with NaN and infinite telemetry mixed in — the
// compiled path must agree with the reference on non-finite values too
// (both route left, the NaN-left rule).
struct Synth {
  Matrix x;
  std::vector<int> y;
};

Synth make_synth(std::size_t n, std::size_t f, std::uint64_t seed) {
  Rng rng(seed);
  Synth s;
  s.x = Matrix(n, f);
  for (std::size_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(i % 4);
    s.y.push_back(c);
    for (std::size_t j = 0; j < f; ++j) {
      const double u = rng.uniform();
      if (u < 0.02) {
        s.x(i, j) = kNaN;
        continue;
      }
      if (u < 0.03) {
        s.x(i, j) = (i + j) % 2 == 0 ? kInf : -kInf;
        continue;
      }
      const double signal =
          (j % 4 == static_cast<std::size_t>(c)) ? 0.7 : 0.0;
      s.x(i, j) = signal + 0.3 * rng.uniform();
    }
  }
  return s;
}

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

// Bitwise equality, not EXPECT_DOUBLE_EQ: the contract is that the compiled
// path reproduces the reference traversal exactly, ULP for ULP.
void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(bits_of(a(i, j)), bits_of(b(i, j)))
          << "row " << i << " col " << j << ": " << a(i, j)
          << " != " << b(i, j);
    }
  }
}

// Exercises one fitted model: full-batch, gathered-rows, single-row, and
// empty-batch predictions must all match the reference traversal bit for
// bit, on training data and on unseen rows.
void check_against_reference(const Classifier& model, const Matrix& train_x,
                             const Matrix& test_x) {
  for (const Matrix* x : {&train_x, &test_x}) {
    const Matrix reference = model.predict_proba_reference(*x);
    expect_bit_identical(model.predict_proba(*x), reference);

    // Gathered subset, deliberately out of order and with a repeat.
    std::vector<std::size_t> rows;
    for (std::size_t i = x->rows(); i-- > 0;) {
      if (i % 3 == 0) rows.push_back(i);
    }
    if (!rows.empty()) rows.push_back(rows.front());
    Matrix gathered;
    model.predict_proba_rows(*x, rows, gathered);
    ASSERT_EQ(gathered.rows(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t c = 0; c < gathered.cols(); ++c) {
        ASSERT_EQ(bits_of(gathered(i, c)), bits_of(reference(rows[i], c)))
            << "gathered row " << i << " (x row " << rows[i] << ")";
      }
    }

    // Single-row batch.
    Matrix one(1, x->cols());
    for (std::size_t j = 0; j < x->cols(); ++j) one(0, j) = (*x)(0, j);
    const Matrix one_probs = model.predict_proba(one);
    for (std::size_t c = 0; c < one_probs.cols(); ++c) {
      ASSERT_EQ(bits_of(one_probs(0, c)), bits_of(reference(0, c)));
    }
  }

  // Empty batch: no rows, correct shape, no crash.
  const Matrix empty(0, train_x.cols());
  const Matrix empty_probs = model.predict_proba(empty);
  EXPECT_EQ(empty_probs.rows(), 0u);
  EXPECT_EQ(empty_probs.cols(),
            static_cast<std::size_t>(model.num_classes()));
  Matrix empty_gather;
  model.predict_proba_rows(train_x, {}, empty_gather);
  EXPECT_EQ(empty_gather.rows(), 0u);
}

// ------------------------------------------------- bit-identity matrix ---

TEST(CompiledTree, DecisionTreeMatchesReferenceBothSplitAlgos) {
  const Synth train = make_synth(240, 12, 11);
  const Synth test = make_synth(90, 12, 12);
  for (const auto algo : {SplitAlgo::Exact, SplitAlgo::Hist}) {
    TreeConfig cfg;
    cfg.num_classes = 4;
    cfg.max_depth = 8;
    cfg.split_algo = algo;
    DecisionTree tree(cfg, 5);
    tree.fit(train.x, train.y);
    ASSERT_NE(tree.compiled(), nullptr);
    check_against_reference(tree, train.x, test.x);
  }
}

TEST(CompiledTree, RandomForestMatchesReferenceBothSplitAlgos) {
  const Synth train = make_synth(240, 12, 21);
  const Synth test = make_synth(90, 12, 22);
  for (const auto algo : {SplitAlgo::Exact, SplitAlgo::Hist}) {
    ForestConfig cfg;
    cfg.num_classes = 4;
    cfg.n_estimators = 14;
    cfg.max_depth = 7;
    cfg.split_algo = algo;
    RandomForest rf(cfg, 5);
    rf.fit(train.x, train.y);
    ASSERT_NE(rf.compiled(), nullptr);
    EXPECT_EQ(rf.compiled()->num_trees(), 14u);
    check_against_reference(rf, train.x, test.x);
  }
}

TEST(CompiledTree, GbmMatchesReferenceBothSplitAlgos) {
  const Synth train = make_synth(240, 12, 31);
  const Synth test = make_synth(90, 12, 32);
  for (const auto algo : {SplitAlgo::Exact, SplitAlgo::Hist}) {
    GbmConfig cfg;
    cfg.num_classes = 4;
    cfg.n_estimators = 7;
    cfg.num_leaves = 15;
    cfg.split_algo = algo;
    GbmClassifier gbm(cfg, 5);
    gbm.fit(train.x, train.y);
    ASSERT_NE(gbm.compiled(), nullptr);
    // One tree per class per round.
    EXPECT_EQ(gbm.compiled()->num_trees(), gbm.num_rounds() * 4u);
    check_against_reference(gbm, train.x, test.x);
  }
}

TEST(CompiledTree, AllNaNRowsRideLeftIdentically) {
  const Synth train = make_synth(160, 6, 41);
  ForestConfig cfg;
  cfg.num_classes = 4;
  cfg.n_estimators = 8;
  cfg.split_algo = SplitAlgo::Hist;
  RandomForest rf(cfg, 7);
  rf.fit(train.x, train.y);
  ASSERT_NE(rf.compiled(), nullptr);
  Matrix x(3, 6, kNaN);
  for (std::size_t j = 0; j < 6; ++j) x(1, j) = kInf;
  for (std::size_t j = 0; j < 6; ++j) x(2, j) = -kInf;
  expect_bit_identical(rf.predict_proba(x), rf.predict_proba_reference(x));
}

// An Exact-trained forest grown without depth limits accumulates far more
// than 255 distinct thresholds per feature, forcing the uint16 code path;
// it must stay bit-identical too.
TEST(CompiledTree, WideCodePathStaysBitIdentical) {
  Rng rng(51);
  const std::size_t n = 900;
  Matrix x(n, 2);
  std::vector<int> y;
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y.push_back(static_cast<int>(
        (x(i, 0) + 0.3 * rng.normal() > 0.0 ? 1 : 0) +
        (x(i, 1) > 0.0 ? 2 : 0)));
  }
  ForestConfig cfg;
  cfg.num_classes = 4;
  cfg.n_estimators = 10;
  cfg.max_depth = -1;  // unlimited: each tree memorizes its bootstrap
  cfg.split_algo = SplitAlgo::Exact;
  RandomForest rf(cfg, 9);
  rf.fit(x, y);
  ASSERT_NE(rf.compiled(), nullptr);
  EXPECT_TRUE(rf.compiled()->wide_codes());
  expect_bit_identical(rf.predict_proba(x), rf.predict_proba_reference(x));
}

// --------------------------------------------------- dispatch boundary ---

// Sweeps every batch size through the crossover (1..cutoff+1) with each
// kernel forced in turn; both must reproduce the reference object walk bit
// for bit on rows that include NaN/±inf telemetry.
void check_dispatch_boundary(const Classifier& model, const Matrix& x) {
  const Matrix reference = model.predict_proba_reference(x);
  const std::size_t sweep_end =
      std::min(CompiledTreePredictor::small_batch_cutoff() + 1, x.rows());
  for (std::size_t b = 1; b <= sweep_end; ++b) {
    Matrix xb(b, x.cols());
    for (std::size_t i = 0; i < b; ++i) {
      for (std::size_t j = 0; j < x.cols(); ++j) xb(i, j) = x(i, j);
    }
    Matrix small_probs, block_probs;
    {
      ScopedCutoff force_small(std::numeric_limits<std::size_t>::max());
      small_probs = model.predict_proba(xb);
    }
    {
      ScopedCutoff force_block(0);
      block_probs = model.predict_proba(xb);
    }
    for (std::size_t i = 0; i < b; ++i) {
      for (std::size_t c = 0; c < reference.cols(); ++c) {
        ASSERT_EQ(bits_of(small_probs(i, c)), bits_of(reference(i, c)))
            << model.name() << " small kernel, batch " << b << " row " << i;
        ASSERT_EQ(bits_of(block_probs(i, c)), bits_of(reference(i, c)))
            << model.name() << " block kernel, batch " << b << " row " << i;
      }
    }
  }
}

TEST(CompiledTree, DispatchBoundarySweepAllFamiliesBothSplitAlgos) {
  const Synth train = make_synth(240, 12, 111);
  const Synth test = make_synth(40, 12, 112);
  for (const auto algo : {SplitAlgo::Exact, SplitAlgo::Hist}) {
    TreeConfig tcfg;
    tcfg.num_classes = 4;
    tcfg.max_depth = 8;
    tcfg.split_algo = algo;
    DecisionTree tree(tcfg, 5);
    tree.fit(train.x, train.y);
    ASSERT_NE(tree.compiled(), nullptr);
    check_dispatch_boundary(tree, test.x);

    ForestConfig fcfg;
    fcfg.num_classes = 4;
    fcfg.n_estimators = 9;
    fcfg.max_depth = 6;
    fcfg.split_algo = algo;
    RandomForest rf(fcfg, 5);
    rf.fit(train.x, train.y);
    ASSERT_NE(rf.compiled(), nullptr);
    check_dispatch_boundary(rf, test.x);

    GbmConfig gcfg;
    gcfg.num_classes = 4;
    gcfg.n_estimators = 5;
    gcfg.num_leaves = 15;
    gcfg.split_algo = algo;
    GbmClassifier gbm(gcfg, 5);
    gbm.fit(train.x, train.y);
    ASSERT_NE(gbm.compiled(), nullptr);
    check_dispatch_boundary(gbm, test.x);
  }
}

// Wide-code (uint16) models must stay bit-identical on the small kernel
// too — its thresh_ array bypasses codes entirely, so the width must not
// matter.
TEST(CompiledTree, WideCodeModelBitIdenticalOnBothKernels) {
  Rng rng(52);
  const std::size_t n = 900;
  Matrix x(n, 2);
  std::vector<int> y;
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y.push_back(static_cast<int>(
        (x(i, 0) + 0.3 * rng.normal() > 0.0 ? 1 : 0) +
        (x(i, 1) > 0.0 ? 2 : 0)));
  }
  ForestConfig cfg;
  cfg.num_classes = 4;
  cfg.n_estimators = 10;
  cfg.max_depth = -1;  // unlimited: >255 thresholds per feature
  cfg.split_algo = SplitAlgo::Exact;
  RandomForest rf(cfg, 9);
  rf.fit(x, y);
  ASSERT_NE(rf.compiled(), nullptr);
  ASSERT_TRUE(rf.compiled()->wide_codes());
  Matrix probe(6, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    probe(i, 0) = x(i, 0);
    probe(i, 1) = x(i, 1);
  }
  probe(4, 0) = kNaN;
  probe(5, 1) = kInf;
  check_dispatch_boundary(rf, probe);
}

TEST(CompiledTree, CutoffEnvReloadParsesAndFallsBack) {
  const std::size_t entry = CompiledTreePredictor::small_batch_cutoff();
  setenv("ALBA_SMALL_BATCH_CUTOFF", "0", 1);
  CompiledTreePredictor::reload_small_batch_cutoff_from_env();
  EXPECT_EQ(CompiledTreePredictor::small_batch_cutoff(), 0u);
  setenv("ALBA_SMALL_BATCH_CUTOFF", "1", 1);
  CompiledTreePredictor::reload_small_batch_cutoff_from_env();
  EXPECT_EQ(CompiledTreePredictor::small_batch_cutoff(), 1u);
  setenv("ALBA_SMALL_BATCH_CUTOFF", "18446744073709551615", 1);
  CompiledTreePredictor::reload_small_batch_cutoff_from_env();
  EXPECT_EQ(CompiledTreePredictor::small_batch_cutoff(),
            std::numeric_limits<std::size_t>::max());
  // Unset and unparsable both fall back to the built-in default.
  unsetenv("ALBA_SMALL_BATCH_CUTOFF");
  CompiledTreePredictor::reload_small_batch_cutoff_from_env();
  const std::size_t fallback = CompiledTreePredictor::small_batch_cutoff();
  EXPECT_GT(fallback, 0u);
  setenv("ALBA_SMALL_BATCH_CUTOFF", "not-a-number", 1);
  CompiledTreePredictor::reload_small_batch_cutoff_from_env();
  EXPECT_EQ(CompiledTreePredictor::small_batch_cutoff(), fallback);
  unsetenv("ALBA_SMALL_BATCH_CUTOFF");
  CompiledTreePredictor::reload_small_batch_cutoff_from_env();
  CompiledTreePredictor::set_small_batch_cutoff(entry);
}

// ----------------------------------------------------------- allocation ---

// The small-batch kernel promises zero heap traffic, and the block path
// promises it at steady state (its per-thread arena grows once). Counted
// via the global operator new replacement above; the compiled predictor is
// driven directly so the thread pool's task machinery stays out of frame.
TEST(CompiledTreeAlloc, SmallBatchKernelNeverAllocates) {
  const Synth train = make_synth(240, 12, 121);
  ForestConfig fcfg;
  fcfg.num_classes = 4;
  fcfg.n_estimators = 10;
  fcfg.max_depth = 6;
  fcfg.split_algo = SplitAlgo::Hist;
  RandomForest rf(fcfg, 5);
  rf.fit(train.x, train.y);

  GbmConfig gcfg;
  gcfg.num_classes = 4;
  gcfg.n_estimators = 5;
  gcfg.num_leaves = 15;
  gcfg.split_algo = SplitAlgo::Hist;
  GbmClassifier gbm(gcfg, 5);
  gbm.fit(train.x, train.y);

  const auto crf = rf.compiled();
  const auto cgbm = gbm.compiled();
  ASSERT_NE(crf, nullptr);
  ASSERT_NE(cgbm, nullptr);

  ScopedCutoff force_small(std::numeric_limits<std::size_t>::max());
  Matrix x(1, 12);
  for (std::size_t j = 0; j < 12; ++j) x(0, j) = train.x(0, j);
  Matrix out(1, 4);
  crf->predict_range(x, 0, 1, out);  // not a warm-up: small needs none
  const std::size_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 200; ++i) {
    crf->predict_range(x, 0, 1, out);
    cgbm->predict_range(x, 0, 1, out);
  }
  EXPECT_EQ(g_heap_allocs.load(std::memory_order_relaxed), before);
}

TEST(CompiledTreeAlloc, BlockPathAllocationFreeAtSteadyState) {
  const Synth train = make_synth(240, 12, 122);
  ForestConfig cfg;
  cfg.num_classes = 4;
  cfg.n_estimators = 10;
  cfg.max_depth = 6;
  cfg.split_algo = SplitAlgo::Hist;
  RandomForest rf(cfg, 5);
  rf.fit(train.x, train.y);
  const auto compiled = rf.compiled();
  ASSERT_NE(compiled, nullptr);

  ScopedCutoff force_block(0);
  Matrix out(train.x.rows(), 4);
  // First call may grow this thread's arena; after that, nothing.
  compiled->predict_range(train.x, 0, train.x.rows(), out);
  const std::size_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    compiled->predict_range(train.x, 0, train.x.rows(), out);
  }
  EXPECT_EQ(g_heap_allocs.load(std::memory_order_relaxed), before);
}

// ------------------------------------------------------------ lifecycle ---

TEST(CompiledTree, FitOnTreesDoNotCarryACompiledPredictor) {
  const Synth train = make_synth(120, 6, 61);
  TreeConfig cfg;
  cfg.num_classes = 4;
  DecisionTree tree(cfg, 1);
  std::vector<std::size_t> all(train.x.rows());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  tree.fit_on(train.x, train.y, all);
  // Forest members predict through the forest-level ensemble; a per-member
  // compiled predictor would be dead weight (and, if stale, wrong).
  EXPECT_EQ(tree.compiled(), nullptr);
  // A subsequent full fit() builds one.
  tree.fit(train.x, train.y);
  EXPECT_NE(tree.compiled(), nullptr);
}

TEST(CompiledTree, RefitReplacesTheCompiledPredictor) {
  const Synth a = make_synth(150, 8, 71);
  const Synth b = make_synth(150, 8, 72);
  ForestConfig cfg;
  cfg.num_classes = 4;
  cfg.n_estimators = 5;
  RandomForest rf(cfg, 2);
  rf.fit(a.x, a.y);
  const auto first = rf.compiled();
  ASSERT_NE(first, nullptr);
  rf.fit(b.x, b.y);
  ASSERT_NE(rf.compiled(), nullptr);
  EXPECT_NE(rf.compiled(), first);  // not the stale pre-refit predictor
  expect_bit_identical(rf.predict_proba(b.x), rf.predict_proba_reference(b.x));
}

TEST(CompiledTree, LoadedModelsServeOnTheCompiledPath) {
  const Synth train = make_synth(200, 10, 81);
  for (const auto algo : {SplitAlgo::Exact, SplitAlgo::Hist}) {
    ForestConfig fcfg;
    fcfg.num_classes = 4;
    fcfg.n_estimators = 9;
    fcfg.max_depth = 6;
    fcfg.split_algo = algo;
    RandomForest rf(fcfg, 4);
    rf.fit(train.x, train.y);

    GbmConfig gcfg;
    gcfg.num_classes = 4;
    gcfg.n_estimators = 5;
    gcfg.num_leaves = 15;
    gcfg.split_algo = algo;
    GbmClassifier gbm(gcfg, 4);
    gbm.fit(train.x, train.y);

    for (const Classifier* model :
         {static_cast<const Classifier*>(&rf),
          static_cast<const Classifier*>(&gbm)}) {
      std::stringstream buf;
      save_classifier(buf, *model);
      const auto loaded = load_classifier(buf);
      ASSERT_TRUE(loaded->fitted());
      if (const auto* lrf = dynamic_cast<const RandomForest*>(loaded.get())) {
        EXPECT_NE(lrf->compiled(), nullptr);
      } else if (const auto* lgbm =
                     dynamic_cast<const GbmClassifier*>(loaded.get())) {
        EXPECT_NE(lgbm->compiled(), nullptr);
      } else {
        FAIL() << "unexpected loaded type " << loaded->name();
      }
      expect_bit_identical(loaded->predict_proba(train.x),
                           model->predict_proba_reference(train.x));
    }
  }
}

// -------------------------------------------- cross-pool-size identity ---

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Trains Hist models and hashes every probability bit pattern produced by
// the compiled batch path. Run directly it asserts the models work; run
// from the re-exec harness below it also prints the hash for the parent.
TEST(CompiledTreeThreads, ChildPredictAndHash) {
  const Synth train = make_synth(220, 16, 91);
  ForestConfig fcfg;
  fcfg.num_classes = 4;
  fcfg.n_estimators = 10;
  fcfg.max_depth = 6;
  fcfg.split_algo = SplitAlgo::Hist;
  RandomForest rf(fcfg, 6);
  rf.fit(train.x, train.y);

  GbmConfig gcfg;
  gcfg.num_classes = 4;
  gcfg.n_estimators = 5;
  gcfg.num_leaves = 15;
  gcfg.split_algo = SplitAlgo::Hist;
  GbmClassifier gbm(gcfg, 6);
  gbm.fit(train.x, train.y);

  ASSERT_NE(rf.compiled(), nullptr);
  ASSERT_NE(gbm.compiled(), nullptr);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const Classifier* model :
       {static_cast<const Classifier*>(&rf),
        static_cast<const Classifier*>(&gbm)}) {
    const Matrix probs = model->predict_proba(train.x);
    for (std::size_t i = 0; i < probs.rows(); ++i) {
      for (std::size_t c = 0; c < probs.cols(); ++c) {
        h = fnv1a(h, bits_of(probs(i, c)));
      }
    }
  }
  EXPECT_GT(accuracy(train.y, rf.predict(train.x)), 0.9);
  std::printf("COMPILED_HASH=%016llx\n", static_cast<unsigned long long>(h));
}

// predict_proba parallelizes over row chunks, and the pool is sized once
// per process — bit-identity across pool sizes needs fresh processes with
// ALBA_THREADS pinned, exactly like the Hist-training determinism test.
TEST(CompiledTreeThreads, PredictionsIdenticalAcrossPoolSizes) {
  char self[4096];
  const ssize_t len = readlink("/proc/self/exe", self, sizeof self - 1);
  if (len <= 0) GTEST_SKIP() << "/proc/self/exe unavailable";
  self[len] = '\0';

  std::vector<std::string> hashes;
  for (const char* threads : {"1", "2", "8"}) {
    const std::string cmd =
        std::string("ALBA_THREADS=") + threads + " '" + self +
        "' --gtest_filter=CompiledTreeThreads.ChildPredictAndHash 2>/dev/null";
    std::FILE* pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::string hash;
    char line[512];
    while (std::fgets(line, sizeof line, pipe) != nullptr) {
      const std::string s(line);
      const auto pos = s.find("COMPILED_HASH=");
      if (pos != std::string::npos) {
        hash = s.substr(pos + 14, 16);
      }
    }
    const int rc = pclose(pipe);
    ASSERT_EQ(rc, 0) << "child run with ALBA_THREADS=" << threads << " failed";
    ASSERT_EQ(hash.size(), 16u) << "child printed no hash";
    hashes.push_back(hash);
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

}  // namespace
}  // namespace alba
