// Replicated serving: N ServiceHosts behind one router — the layer that
// turns "a host can shed" into "the fleet survives". One overload-safe
// ServiceHost (service_host.hpp) is still a single point of failure: one
// unhealthy host is a full outage, and a bad bundle push is a fleet-wide
// incident. ServingFleet adds exactly the three fleet-level properties a
// production deployment needs:
//
//  * routing — requests are consistent-hashed on the window's content
//    hash (the same FNV-1a key the LRU window cache uses), so repeated
//    windows land on the same replica and its cache stays hot. The ring
//    is derived deterministically from (seed, replica id, vnode index):
//    a fixed seed and replica set always routes identically, and adding
//    or ejecting a replica only remaps the ring arcs it owned. A
//    RoundRobin policy exists as the cache-cold baseline the bench
//    compares against;
//
//  * failover — when the preferred replica sheds (queue_full, unhealthy,
//    draining) or fails, the request spills to the least-loaded remaining
//    replica instead of bouncing back to the caller; only when every
//    candidate sheds does the caller see a typed fleet-level outcome
//    (FleetStatus::AllShed — an admitted request fails over or sheds with
//    a type, it never silently vanishes). Replicas whose fleet-observed
//    rolling error-rate or p99 breaches the ejection thresholds — or
//    whose own breaker trips — are ejected from the ring; while any
//    replica is ejected, a deterministic 1-in-N probe trickle keeps
//    routing the occasional request to it, and a successful probe readmits
//    it (the host breaker's half-open state, one level up);
//
//  * staged rollout — FleetRollout pushes a new bundle through the
//    existing probe-validated hot_reload to ONE canary replica, then
//    compares the canary's live error-rate/p99 against the rest of the
//    fleet over a guard window before promoting fleet-wide or rolling the
//    canary back to its pre-push bundle. A poisoned bundle dies on the
//    canary's probe validation and never reaches a second replica; a
//    bundle that loads but regresses live dies in the guard comparison.
//
// Thread-safety: every public method may be called concurrently; host
// calls (which block) happen outside the fleet mutex.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/deadline.hpp"
#include "serving/service_host.hpp"

namespace alba {

/// How the fleet picks a preferred replica for a request. ConsistentHash
/// keeps per-replica caches hot (same window -> same replica);
/// RoundRobin is the cache-cold control the bench compares against.
enum class RoutingPolicy { ConsistentHash, RoundRobin };

std::string_view to_string(RoutingPolicy policy) noexcept;

struct FleetConfig {
  RoutingPolicy routing = RoutingPolicy::ConsistentHash;
  // Ring points per replica; more points = smoother arc distribution.
  std::size_t vnodes = 64;
  // Replicas tried per request (preferred + spills); 0 = every replica
  // currently in the ring.
  std::size_t max_attempts = 0;
  // Fleet-observed per-replica breaker: outcomes of the last
  // `health_window` pipeline passes routed to a replica. With at least
  // `health_min_samples` of them, the replica is ejected from the ring on
  // `eject_error_rate` (fraction Failed, strict >) or `eject_p99_ms`
  // (0 disables the latency trip).
  std::size_t health_window = 64;
  std::size_t health_min_samples = 8;
  double eject_error_rate = 0.5;
  double eject_p99_ms = 0.0;
  // While any replica is ejected, every `readmit_probe_every`-th request
  // is routed to an ejected replica as a readmission probe; one Ok
  // readmits it with a cleared outcome window.
  std::size_t readmit_probe_every = 8;
  // Seeds the ring point derivation (routing is deterministic in
  // (seed, replica set)).
  std::uint64_t seed = 0;
  // Applied to every replica's ServiceHost.
  HostConfig host;
};

/// Fleet-level outcome type. Ok carries a diagnosis; Failed means the
/// last candidate's pipeline threw (retriable); AllShed means every
/// candidate shed with a typed rejection — the fleet-level "we are
/// overloaded / draining / unhealthy" answer.
enum class FleetStatus { Ok, Failed, AllShed };

std::string_view to_string(FleetStatus status) noexcept;

/// One routed request's outcome. `result` is the HostResult of the last
/// replica tried (the serving replica on Ok); `replica` names it;
/// `attempts` counts replicas tried; `spilled` flags service by a
/// non-preferred replica (failover or probe detour).
struct FleetResult {
  FleetStatus status = FleetStatus::AllShed;
  HostResult result;
  std::size_t replica = 0;
  std::size_t attempts = 0;
  bool spilled = false;

  bool ok() const noexcept { return status == FleetStatus::Ok; }
};

/// Per-replica slice of a FleetStats snapshot: fleet-side routing/outcome
/// counters, the fleet-observed latency percentiles, and the replica's own
/// HostStats/ServingStats (cache hit-rate lives in `service`).
struct ReplicaStats {
  std::size_t id = 0;
  bool in_ring = true;
  bool dead = false;  // killed: never probed, never readmitted
  HostHealth health = HostHealth::Ready;
  std::uint64_t preferred = 0;   // requests that ring-routed here first
  std::uint64_t served = 0;      // Ok results produced
  std::uint64_t failed = 0;      // Failed results produced
  std::uint64_t shed = 0;        // typed rejections produced
  std::uint64_t spill_in = 0;    // served/attempted as a spill target
  std::uint64_t probes = 0;      // readmission probes routed here
  std::uint64_t ejections = 0;
  std::uint64_t readmissions = 0;
  double p50_ms = 0.0;  // fleet-observed pipeline latency percentiles
  double p99_ms = 0.0;
  HostStats host;
  ServingStats service;
};

/// Aggregate + per-replica snapshot. Fleet percentiles are computed over
/// the union of the per-replica fleet-observed latency windows (exact
/// merge of the actual samples — not an average of percentiles), so
/// replicas with 0 or 1 samples merge correctly.
struct FleetStats {
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t spilled = 0;    // Ok from a non-preferred replica
  std::uint64_t failovers = 0;  // extra attempts past the first
  std::uint64_t failed = 0;     // FleetStatus::Failed outcomes
  std::uint64_t all_shed = 0;   // FleetStatus::AllShed outcomes
  std::uint64_t readmit_probes = 0;
  std::uint64_t ejections = 0;
  std::uint64_t readmissions = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::vector<ReplicaStats> replicas;
};

std::string format_fleet_summary(const FleetStats& s);

/// Where a rollout stands. Idle -> Canarying -> {Promoted, RolledBack};
/// CanaryRejected is the short-circuit when the canary push itself fails
/// validation (the bundle never served a single request anywhere).
enum class RolloutState { Idle, Canarying, Promoted, RolledBack,
                          CanaryRejected };

std::string_view to_string(RolloutState state) noexcept;

/// advance_rollout's answer: keep sending traffic, or the terminal
/// decision it just executed.
enum class RolloutDecision { NeedMoreTraffic, Promoted, RolledBack };

struct RolloutConfig {
  // Replica that takes the canary push.
  std::size_t canary = 0;
  // Pipeline outcomes the canary must serve under the new bundle before
  // the guard comparison may decide.
  std::size_t guard_min_samples = 32;
  // Promote only if canary_error_rate <= baseline_error_rate + delta.
  double max_error_rate_delta = 0.05;
  // Promote only if canary_p99 <= ratio * baseline_p99 (skipped when the
  // baseline has no samples or ratio is 0).
  double max_p99_ratio = 3.0;
};

/// Full record of one staged rollout: the canary push, the guard-window
/// measurements behind the decision, and the per-replica promotion (or
/// canary rollback) reports.
struct RolloutReport {
  RolloutState state = RolloutState::Idle;
  std::string reason;
  ReloadReport canary_push;
  std::vector<ReloadReport> promotions;  // one per non-canary replica
  ReloadReport rollback;                 // canary restore on RolledBack
  std::size_t canary_samples = 0;
  std::size_t baseline_samples = 0;
  double canary_error_rate = 0.0;
  double baseline_error_rate = 0.0;
  double canary_p99_ms = 0.0;
  double baseline_p99_ms = 0.0;

  std::string summary() const;
};

class ServingFleet : public Diagnoser {
 public:
  /// Takes one ready service per replica and starts a ServiceHost around
  /// each (config.host applies to all). At least one replica required.
  explicit ServingFleet(
      std::vector<std::shared_ptr<DiagnosisService>> services,
      FleetConfig config = {});
  ~ServingFleet();

  ServingFleet(const ServingFleet&) = delete;
  ServingFleet& operator=(const ServingFleet&) = delete;

  /// Routes, spills, and returns the typed fleet outcome. Never throws on
  /// overload/failure — like the host, but one level up: a request either
  /// gets served by some replica or comes back AllShed/Failed.
  FleetResult diagnose(const Matrix& window);
  FleetResult diagnose(const Matrix& window, Deadline deadline);

  /// Diagnoser interface: routes exactly like the FleetResult overloads
  /// and flattens the outcome — status is the last candidate's typed
  /// status (so AllShed surfaces as the concrete rejection, e.g.
  /// rejected:draining on a draining fleet), with replica/attempts/spilled
  /// carried over. A never() deadline applies config.host.default_deadline_ms.
  DiagnosisResult diagnose(const DiagnoseRequest& request) override;

  std::size_t replica_count() const noexcept { return hosts_.size(); }

  /// The replica the router would prefer for this window right now —
  /// exposed so routing determinism is testable.
  std::size_t preferred_replica(const Matrix& window) const;

  /// True while the replica is in the ring (not ejected, not dead).
  bool in_ring(std::size_t replica) const;

  /// Probe windows for every replica's hot reload (and thus for canary
  /// pushes and promotions).
  void set_probe_windows(std::vector<Matrix> probes);

  /// Direct access to a replica's host — the ops/test escape hatch.
  ServiceHost& host(std::size_t replica);

  /// Chaos entry point: drains the replica and removes it permanently
  /// (never probed, never readmitted). In-flight work finishes; requests
  /// routed to it afterwards fail over. Blocks until the drain completes.
  void kill(std::size_t replica);

  /// Graceful fleet drain: new requests shed immediately (AllShed with
  /// rejected:draining), then every replica drains. Terminal, idempotent.
  void drain();

  FleetStats stats() const;

  // --- staged rollout ----------------------------------------------------
  /// Snapshots the canary's current bundle (for rollback) and pushes the
  /// new bundle to the canary only, through probe-validated hot reload.
  /// On validation failure the canary rolls back internally and the
  /// rollout ends CanaryRejected — no other replica ever sees the bundle.
  /// On success the rollout enters Canarying: send traffic, then call
  /// advance_rollout. Throws alba::Error if a rollout is already active.
  ReloadReport start_rollout(const std::string& bundle_path,
                             RolloutConfig config = {});

  /// Evaluates the guard window and executes the decision: promotes the
  /// bundle to every other replica, rolls the canary back to its pre-push
  /// bundle (also triggered by the canary getting ejected mid-guard), or
  /// asks for more traffic. Safe to call repeatedly; terminal states
  /// return their decision again.
  RolloutDecision advance_rollout();

  RolloutState rollout_state() const;
  RolloutReport rollout_report() const;

 private:
  struct Outcome {
    bool failed = false;
    double total_ms = 0.0;
  };
  // Per-replica fleet-side state: ring membership, rolling outcome
  // window, counters. Guarded by mutex_.
  struct Replica {
    bool in_ring = true;
    bool dead = false;
    std::vector<Outcome> window;
    std::size_t window_next = 0;
    std::uint64_t preferred = 0;
    std::uint64_t served = 0;
    std::uint64_t failed = 0;
    std::uint64_t shed = 0;
    std::uint64_t spill_in = 0;
    std::uint64_t probes = 0;
    std::uint64_t ejections = 0;
    std::uint64_t readmissions = 0;
  };

  std::size_t ring_lookup_locked(std::uint64_t hash) const;
  void rebuild_ring_locked();
  std::vector<std::size_t> candidates_locked(std::uint64_t hash,
                                             std::size_t& preferred,
                                             bool& probing);
  void record_outcome_locked(std::size_t replica, const HostResult& r);
  void eject_locked(std::size_t replica);
  void readmit_locked(std::size_t replica);
  double replica_percentile_locked(std::size_t replica, double q) const;
  RolloutDecision decide_rollout_locked(std::string& reason) const;
  void finish_rollout(RolloutDecision decision, const std::string& reason);

  FleetConfig config_;
  std::vector<std::unique_ptr<ServiceHost>> hosts_;
  // Fleet-side in-flight per replica (the spill-to-least-loaded metric);
  // atomic so load reads never need the fleet mutex.
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> outstanding_;

  mutable std::mutex mutex_;
  std::vector<Replica> replicas_;
  // Sorted (point, replica) ring over in-ring replicas.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
  std::uint64_t round_robin_ = 0;
  std::uint64_t probe_counter_ = 0;
  std::size_t probe_rotor_ = 0;  // rotates over ejected replicas
  bool draining_ = false;
  // Fleet counters.
  std::uint64_t requests_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t spilled_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t all_shed_ = 0;
  std::uint64_t readmit_probes_ = 0;

  // Rollout state (also under mutex_; host reloads happen outside it).
  RolloutState rollout_state_ = RolloutState::Idle;
  RolloutConfig rollout_config_;
  RolloutReport rollout_report_;
  std::string rollout_bundle_path_;
  std::string rollout_snapshot_;  // canary's pre-push bundle, serialized
  std::vector<Outcome> guard_canary_;
  std::vector<Outcome> guard_baseline_;
};

}  // namespace alba
