# Empty compiler generated dependencies file for bench_micro_features.
# This may be replaced when dependencies are built.
