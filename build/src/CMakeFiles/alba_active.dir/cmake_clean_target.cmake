file(REMOVE_RECURSE
  "libalba_active.a"
)
