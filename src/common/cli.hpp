// Tiny declarative CLI flag parser used by the bench and example binaries.
//
//   alba::Cli cli("bench_fig3", "Reproduces Fig. 3 ...");
//   int queries = 250;
//   bool full = false;
//   cli.flag("queries", &queries, "query budget per method");
//   cli.flag("full", &full, "run at paper scale");
//   cli.parse(argc, argv);   // exits with usage on --help / bad flag
//
// Accepted syntaxes: --name value, --name=value, and bare --name for bools.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace alba {

class Cli {
 public:
  Cli(std::string program, std::string description);

  void flag(const std::string& name, int* target, const std::string& help);
  void flag(const std::string& name, double* target, const std::string& help);
  void flag(const std::string& name, bool* target, const std::string& help);
  void flag(const std::string& name, std::string* target, const std::string& help);
  void flag(const std::string& name, std::uint64_t* target, const std::string& help);

  /// Parses argv. On --help prints usage and exits 0; on an unknown flag or
  /// malformed value prints usage to stderr and exits 2.
  void parse(int argc, char** argv);

  std::string usage() const;

 private:
  enum class Kind { Int, Double, Bool, String, U64 };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  const Flag* find(const std::string& name) const;
  static std::string repr(const Flag& f);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
};

}  // namespace alba
