file(REMOVE_RECURSE
  "libalba_anomaly.a"
)
