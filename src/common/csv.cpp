#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace alba {

CsvWriter::CsvWriter(const std::string& path)
    : path_(path), out_(std::make_unique<std::ofstream>(path)) {
  ALBA_CHECK(out_->good()) << "cannot open '" << path << "' for writing";
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) (*out_) << ',';
    (*out_) << csv_escape(fields[i]);
  }
  (*out_) << '\n';
  ALBA_CHECK(out_->good()) << "write to '" << path_ << "' failed";
}

void CsvWriter::write_numeric_row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(strformat("%.10g", v));
  write_row(fields);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {

// Strips a CRLF line ending (files written on Windows or transferred in
// text mode) so the '\r' never leaks into the last field.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

// Parses one logical CSV record (handles quoted fields with embedded
// newlines by pulling more lines from the stream). `line_no` is the 1-based
// physical line the next record starts at; it is advanced past every line
// consumed. Throws alba::Error (naming `path` and the record's first line)
// when a quoted field is still open at end of file.
bool read_record(std::istream& in, const std::string& path,
                 std::vector<std::string>& fields, std::size_t& line_no) {
  fields.clear();
  std::string line;
  if (!std::getline(in, line)) return false;
  const std::size_t record_line = line_no;
  ++line_no;
  strip_cr(line);

  std::string field;
  bool in_quotes = false;
  std::size_t i = 0;
  for (;;) {
    if (i >= line.size()) {
      if (in_quotes) {
        // Quoted field continues on the next physical line.
        field += '\n';
        if (!std::getline(in, line)) {
          throw Error(strformat("%s:%zu: unterminated quoted field",
                                path.c_str(), record_line));
        }
        ++line_no;
        strip_cr(line);
        i = 0;
        continue;
      }
      break;
    }
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
    ++i;
  }
  fields.push_back(std::move(field));
  return true;
}

}  // namespace

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw Error("CSV column not found: " + name);
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path);
  ALBA_CHECK(in.good()) << "cannot open '" << path << "' for reading";
  CsvTable table;
  std::vector<std::string> fields;
  std::size_t line_no = 1;
  if (read_record(in, path, fields, line_no)) table.header = fields;
  for (;;) {
    const std::size_t record_line = line_no;
    if (!read_record(in, path, fields, line_no)) break;
    // Tolerate blank lines (e.g. a trailing newline at end of file).
    if (fields.size() == 1 && fields[0].empty()) continue;
    if (fields.size() != table.header.size()) {
      const bool trailing_delim =
          fields.size() == table.header.size() + 1 && fields.back().empty();
      throw Error(strformat(
          "%s:%zu: ragged row: %zu fields where the header has %zu%s",
          path.c_str(), record_line, fields.size(), table.header.size(),
          trailing_delim ? " (trailing delimiter?)" : ""));
    }
    table.rows.push_back(fields);
  }
  return table;
}

}  // namespace alba
