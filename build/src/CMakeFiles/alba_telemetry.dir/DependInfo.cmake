
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/app_model.cpp" "src/CMakeFiles/alba_telemetry.dir/telemetry/app_model.cpp.o" "gcc" "src/CMakeFiles/alba_telemetry.dir/telemetry/app_model.cpp.o.d"
  "/root/repo/src/telemetry/metric.cpp" "src/CMakeFiles/alba_telemetry.dir/telemetry/metric.cpp.o" "gcc" "src/CMakeFiles/alba_telemetry.dir/telemetry/metric.cpp.o.d"
  "/root/repo/src/telemetry/node_sim.cpp" "src/CMakeFiles/alba_telemetry.dir/telemetry/node_sim.cpp.o" "gcc" "src/CMakeFiles/alba_telemetry.dir/telemetry/node_sim.cpp.o.d"
  "/root/repo/src/telemetry/registry.cpp" "src/CMakeFiles/alba_telemetry.dir/telemetry/registry.cpp.o" "gcc" "src/CMakeFiles/alba_telemetry.dir/telemetry/registry.cpp.o.d"
  "/root/repo/src/telemetry/run_generator.cpp" "src/CMakeFiles/alba_telemetry.dir/telemetry/run_generator.cpp.o" "gcc" "src/CMakeFiles/alba_telemetry.dir/telemetry/run_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alba_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_anomaly.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
