#include "ml/classifier.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace alba {

int argmax_label(std::span<const double> probs) noexcept {
  int best = 0;
  for (std::size_t c = 1; c < probs.size(); ++c) {
    if (probs[c] > probs[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(c);
    }
  }
  return best;
}

void Classifier::predict_proba_rows(const Matrix& x,
                                    std::span<const std::size_t> rows,
                                    Matrix& out) const {
  Matrix gathered;
  x.select_rows_into(rows, gathered);
  out = predict_proba(gathered);
}

std::vector<int> Classifier::predict(const Matrix& x) const {
  std::vector<int> out(x.rows());
  std::vector<std::size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  global_pool().parallel_for_chunked(
      x.rows(), [&](std::size_t begin, std::size_t end) {
        Matrix probs;
        predict_proba_rows(
            x, std::span<const std::size_t>(rows).subspan(begin, end - begin),
            probs);
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = argmax_label(probs.row(i - begin));
        }
      });
  return out;
}

}  // namespace alba
