// Compiled flat-SoA inference for the fitted tree models: a fitted
// DecisionTree / RandomForest / GbmClassifier is lowered once, at fit or
// restore time, into contiguous per-node arrays (feature slot, bin
// threshold, child offset) plus flat leaf payloads, and traversed
// branchlessly against per-block bin codes.
//
// Why it is fast: the object walk chases 48-byte heap Node structs one row
// at a time and compares raw doubles at every level. The compiled form
// instead (1) quantizes each block of rows once — every used feature's
// value is ranked against the model's per-feature threshold table
// ("cuts"), yielding a small integer code — and then (2) every tree of the
// forest/boosting ensemble reuses those codes: a split is `code > bin`, a
// one-byte compare against a 10-byte SoA node that stays cache-resident.
// Children are BFS-renumbered to be adjacent (right = left + 1) so the
// traversal step is `next = child + (code > bin)` with no branch.
//
// Bit-identity contract: the compiled path reaches the same leaf as the
// reference traversal on every input (including non-finite values, which
// take code 0 and ride left — the NaN-left rule of ml/binning.hpp) and
// accumulates leaf payloads in the same floating-point order the reference
// uses, so probabilities are bit-identical, not merely close. The object
// walk stays available as `predict_proba_reference` on each model.
//
// Compilation works for Exact- and Hist-trained models alike: the cut
// table is built from the thresholds actually stored in the trees, so it
// is the per-feature sorted-unique union of split points, not the training
// histogram's edges.
//
// Small batches take a different kernel. Quantizing a block ranks every
// used feature's value against its whole cut table, which amortizes
// beautifully across 64 rows × all trees — and is pure overhead for the
// single-window requests the streaming front end triggers: one traversal
// only touches the ~depth features on its taken path. Below a crossover
// batch size (ALBA_SMALL_BATCH_CUTOFF, default measured) predict takes the
// threshold-SoA kernel instead: each node also carries its raw double
// threshold in the same BFS-adjacent layout, and the walk compares
// `value > threshold` directly on the taken path — no code quantization,
// no scratch buffers, no allocation. Both kernels reproduce the NaN-left
// rule through ml/binning.hpp's split_routes_right and accumulate leaf
// payloads in reference order, so all three paths are bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace alba {

class DecisionTree;
class RandomForest;
class GbmClassifier;

class CompiledTreePredictor {
 public:
  /// Lower a fitted model. Returns nullptr when compilation is not
  /// possible (unfitted model, or a feature with more than 65535 distinct
  /// thresholds); callers fall back to the reference traversal.
  static std::shared_ptr<const CompiledTreePredictor> compile(
      const DecisionTree& tree);
  static std::shared_ptr<const CompiledTreePredictor> compile(
      const RandomForest& forest);
  static std::shared_ptr<const CompiledTreePredictor> compile(
      const GbmClassifier& gbm);

  /// Fills rows [begin, end) of `out` with the probabilities for the same
  /// rows of `x`. `out` must already be x.rows() × num_classes. Serial and
  /// const-thread-safe: disjoint ranges may run on different threads.
  void predict_range(const Matrix& x, std::size_t begin, std::size_t end,
                     Matrix& out) const;

  /// Gathered variant: out row i = probabilities for x.row(rows[i]).
  /// `out` must already be rows.size() × num_classes. Serial (the
  /// active-learning pool scorer calls it per thread-pool chunk).
  void predict_rows(const Matrix& x, std::span<const std::size_t> rows,
                    Matrix& out) const;

  int num_classes() const noexcept { return num_classes_; }
  std::size_t num_trees() const noexcept { return tree_root_.size(); }
  std::size_t num_nodes() const noexcept { return feat_.size(); }
  /// Features the model actually splits on (= code columns per block).
  std::size_t num_used_features() const noexcept {
    return slot_feature_.size();
  }
  /// True when some feature has more than 255 cuts and block codes widen
  /// to uint16 (Hist-trained models always stay on the uint8 path).
  bool wide_codes() const noexcept { return wide_codes_; }
  /// Minimum x.cols() an input matrix must have.
  std::size_t min_features() const noexcept { return min_features_; }

  /// Crossover batch size: predict calls with at most this many rows take
  /// the small-batch threshold kernel, larger ones the binned block path.
  /// Process-wide; initialized once from the ALBA_SMALL_BATCH_CUTOFF
  /// environment variable (unset/unparsable = the measured default).
  static std::size_t small_batch_cutoff() noexcept;
  /// Overrides the crossover at runtime — benches and tests force each
  /// variant with 0 (always block) or SIZE_MAX (always small). Returns
  /// the previous value so callers can restore it.
  static std::size_t set_small_batch_cutoff(std::size_t cutoff) noexcept;
  /// Re-reads ALBA_SMALL_BATCH_CUTOFF (for tests that setenv mid-process).
  static void reload_small_batch_cutoff_from_env();

 private:
  // Leaf payload semantics per model family: Average sums k-wide leaf
  // distributions then scales by 1/T (DT is the T = 1 case); Boosted adds
  // learning_rate × scalar leaf value into the tree's class margin on top
  // of the base scores, then softmaxes each row.
  enum class Kind { Average, Boosted };

  // Uniform pre-lowering form the three model adapters produce.
  struct BuildNode {
    int feature = -1;       // -1 = leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    std::int32_t payload = 0;  // leaf: index into leaf_values_
  };

  static std::shared_ptr<const CompiledTreePredictor> build(
      Kind kind, int num_classes, double scale, std::vector<double> base,
      const std::vector<std::vector<BuildNode>>& trees,
      std::vector<double> leaf_values, std::vector<std::int32_t> tree_class);

  // Shared driver: predicts n rows, x row j = xrow_ids ? xrow_ids[j]
  // : xrow_first + j, writing out row out_first + j.
  void predict_dispatch(const Matrix& x, const std::size_t* xrow_ids,
                        std::size_t xrow_first, std::size_t n, Matrix& out,
                        std::size_t out_first) const;
  template <typename CodeT>
  void run_block(const double* const* rowp, double* const* outp,
                 std::size_t b, CodeT* codes,
                 std::int32_t* leaf_payload) const;
  // Small-batch kernel: row-at-a-time traversal with raw `value >
  // threshold` compares on the taken path only — no binning, no scratch.
  void run_small(const double* const* rowp, double* const* outp,
                 std::size_t b) const;

  Kind kind_ = Kind::Average;
  int num_classes_ = 0;
  double scale_ = 1.0;         // Average: 1/T; Boosted: learning_rate
  std::vector<double> base_;   // Boosted: per-class base scores
  std::size_t min_features_ = 0;
  bool wide_codes_ = false;

  // Per-feature threshold tables ("cuts"), ascending, one contiguous span
  // per used-feature slot. code(v) = #cuts < v, 0 for non-finite v.
  std::vector<std::uint32_t> slot_feature_;  // slot -> matrix column
  std::vector<std::size_t> cut_offset_;      // slot -> cuts_ span, size U+1
  std::vector<double> cuts_;

  // SoA nodes of all trees concatenated, BFS order (children adjacent).
  std::vector<std::size_t> tree_root_;
  std::vector<std::int32_t> feat_;    // used-feature slot, -1 = leaf
  std::vector<std::uint16_t> bin_;    // cut index: go left when code <= bin
  std::vector<double> thresh_;        // raw cut value: cuts[bin]; leaf: 0
  std::vector<std::int32_t> child_;   // internal: left child; leaf: payload
  std::vector<double> leaf_values_;   // Average: k per leaf; Boosted: 1
  std::vector<std::int32_t> tree_class_;  // Boosted: class each tree updates
};

}  // namespace alba
