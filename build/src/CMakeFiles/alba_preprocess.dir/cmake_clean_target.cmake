file(REMOVE_RECURSE
  "libalba_preprocess.a"
)
