// Minimal leveled logger. Experiments and benches narrate progress through
// this instead of raw std::cerr so verbosity is centrally controllable
// (tests run silent, benches run at Info).
#pragma once

#include <sstream>
#include <string>

namespace alba {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace alba

#define ALBA_LOG(level)                                        \
  if (::alba::LogLevel::level < ::alba::log_level()) {         \
  } else                                                       \
    ::alba::detail::LogLine(::alba::LogLevel::level)
