#include "preprocess/select_kbest.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/chi2.hpp"

namespace alba {

void SelectKBestChi2::fit(const Matrix& x, std::span<const int> y) {
  ALBA_CHECK(k_ > 0) << "SelectKBest with k = 0";
  const std::size_t n = x.rows();
  const std::size_t cols = x.cols();

  // A column with any non-finite value or zero variance carries no
  // chi-square signal (and NaNs would poison the scores); exclude it.
  std::vector<char> degenerate(cols, 0);
  bool any_nonfinite = false;
  for (std::size_t j = 0; j < cols; ++j) {
    const double first = n > 0 ? x(0, j) : 0.0;
    bool constant = true;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = x(i, j);
      if (!std::isfinite(v)) {
        degenerate[j] = 1;
        any_nonfinite = true;
        constant = false;
        break;
      }
      if (v != first) constant = false;
    }
    if (constant) degenerate[j] = 1;
  }
  degenerate_ = static_cast<std::size_t>(
      std::count(degenerate.begin(), degenerate.end(), char{1}));

  if (any_nonfinite) {
    // chi2_scores rejects non-finite input; score a copy with the poisoned
    // columns zeroed (they are excluded from selection regardless).
    Matrix clean = x;
    for (std::size_t j = 0; j < cols; ++j) {
      if (!degenerate[j]) continue;
      for (std::size_t i = 0; i < n; ++i) {
        if (!std::isfinite(clean(i, j))) clean(i, j) = 0.0;
      }
    }
    scores_ = stats::chi2_scores(clean, y);
  } else {
    scores_ = stats::chi2_scores(x, y);
  }

  std::vector<std::size_t> order;
  order.reserve(cols - degenerate_);
  for (std::size_t j = 0; j < cols; ++j) {
    if (!degenerate[j]) order.push_back(j);
  }
  ALBA_CHECK(!order.empty())
      << "all " << cols << " columns are degenerate (constant or non-finite)";
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return scores_[a] > scores_[b];
                   });
  order.resize(std::min(k_, order.size()));
  selected_ = std::move(order);
}

Matrix SelectKBestChi2::transform(const Matrix& x) const {
  ALBA_CHECK(fitted()) << "SelectKBest::transform before fit";
  ALBA_CHECK(x.cols() == scores_.size())
      << "selector fitted on " << scores_.size() << " columns, got " << x.cols();
  return x.select_cols(selected_);
}

std::vector<std::string> SelectKBestChi2::transform_names(
    const std::vector<std::string>& names) const {
  ALBA_CHECK(fitted());
  ALBA_CHECK(names.size() == scores_.size());
  std::vector<std::string> out;
  out.reserve(selected_.size());
  for (const std::size_t j : selected_) out.push_back(names[j]);
  return out;
}

}  // namespace alba
