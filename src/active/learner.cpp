#include "active/learner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "active/committee.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "ml/metrics.hpp"

namespace alba {

ActiveLearner::ActiveLearner(std::unique_ptr<Classifier> model,
                             ActiveLearnerConfig config)
    : model_(std::move(model)), config_(config) {
  ALBA_CHECK(model_ != nullptr);
  ALBA_CHECK(config_.max_queries >= 0);
  ALBA_CHECK(config_.batch_size >= 1);
  ALBA_CHECK(config_.committee_size >= 2);
  ALBA_CHECK(config_.density_beta >= 0.0);
  if (config_.strategy == QueryStrategy::EqualApp) {
    ALBA_CHECK(config_.num_apps > 0) << "equal-app baseline needs num_apps";
  }
}

ActiveLearnerResult ActiveLearner::run(const LabeledData& seed,
                                       const Matrix& pool_x,
                                       LabelOracle& oracle,
                                       std::span<const int> pool_app_ids,
                                       const Matrix& test_x,
                                       std::span<const int> test_y) {
  ALBA_CHECK(!seed.empty()) << "the labeled seed set is empty";
  ALBA_CHECK(pool_x.rows() == oracle.pool_size())
      << "pool/oracle size mismatch";
  ALBA_CHECK(pool_app_ids.empty() || pool_app_ids.size() == pool_x.rows());
  ALBA_CHECK(test_x.rows() == test_y.size());
  // Reject degraded pool rows up front: a NaN feature deep in a scoring
  // round would otherwise surface as an inscrutable model error (or worse,
  // a silent mis-ranking). The robust extraction path should have
  // quarantined these — name the sample so the caller can find out why not.
  for (std::size_t i = 0; i < pool_x.rows(); ++i) {
    const auto row = pool_x.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      ALBA_CHECK(std::isfinite(row[j]))
          << "non-finite feature in unlabeled pool sample " << i
          << " (feature column " << j
          << "); quarantine or drop it before ActiveLearner::run";
    }
  }
  const int k = model_->num_classes();
  seed.validate_labels(k);

  Rng rng(config_.seed);
  LabeledData labeled = seed;

  const bool use_committee = strategy_uses_committee(config_.strategy);
  std::unique_ptr<Committee> committee;
  if (use_committee) {
    committee = std::make_unique<Committee>(*model_, config_.committee_size,
                                            config_.seed ^ 0xC0117EE);
  }

  // The draw-based baselines pick by pool *position*, so their RNG streams
  // depend on the candidate order: they keep `remaining` sorted (ordered
  // erase). Score-based strategies rank candidates and break ties by pool
  // index, independent of order, so they get O(1) swap-remove bookkeeping.
  const bool order_sensitive = config_.strategy == QueryStrategy::Random ||
                               config_.strategy == QueryStrategy::EqualApp;

  // Information density over the *original* pool (representativeness does
  // not change as samples get labeled).
  std::vector<double> density;
  if (config_.strategy == QueryStrategy::DensityWeighted) {
    density = information_density(pool_x, config_.density_ref_cap,
                                  config_.seed ^ 0xDE4517);
  }

  // Remaining pool positions (indices into pool_x).
  std::vector<std::size_t> remaining(pool_x.rows());
  std::iota(remaining.begin(), remaining.end(), std::size_t{0});

  auto refit = [&] {
    if (use_committee) {
      committee->fit(labeled.x, labeled.y);
    } else {
      model_->fit(labeled.x, labeled.y);
    }
  };
  auto predictions = [&](const Matrix& x) {
    return use_committee ? committee->predict(x) : model_->predict(x);
  };

  ActiveLearnerResult result;
  auto evaluate_now = [&](int queries) {
    const EvalResult ev = evaluate(test_y, predictions(test_x), k);
    QueryCurvePoint pt;
    pt.queries = queries;
    pt.f1 = ev.macro_f1;
    pt.false_alarm_rate = ev.false_alarm_rate;
    pt.anomaly_miss_rate = ev.anomaly_miss_rate;
    result.curve.push_back(pt);
    return ev.macro_f1;
  };

  Timer phase;
  RoundStats seed_stats;
  seed_stats.pool_size = remaining.size();
  refit();
  seed_stats.refit_seconds = phase.seconds();
  phase.reset();
  double f1 = evaluate_now(0);
  seed_stats.eval_seconds = phase.seconds();
  result.rounds.push_back(seed_stats);

  std::vector<int> remaining_apps;
  int labels_used = 0;
  int round = 0;
  while (labels_used < config_.max_queries && !remaining.empty()) {
    if (config_.target_f1 > 0.0 && f1 >= config_.target_f1 &&
        result.queries_to_target < 0) {
      result.queries_to_target = labels_used;
      break;
    }

    RoundStats stats;
    stats.round = ++round;
    stats.pool_size = remaining.size();

    const std::size_t batch = std::min<std::size_t>(
        {static_cast<std::size_t>(config_.batch_size), remaining.size(),
         static_cast<std::size_t>(config_.max_queries - labels_used)});

    // Positions (into `remaining`) to query this round.
    phase.reset();
    std::vector<std::size_t> picks;
    switch (config_.strategy) {
      case QueryStrategy::VoteEntropy:
      case QueryStrategy::ConsensusKl: {
        const std::vector<double> scores =
            config_.strategy == QueryStrategy::VoteEntropy
                ? committee->vote_entropy(pool_x, remaining)
                : committee->consensus_kl(pool_x, remaining);
        picks = select_query_batch(scores, batch, remaining);
        break;
      }
      case QueryStrategy::DensityWeighted: {
        std::vector<double> scores =
            score_pool_rows(*model_, config_.strategy, pool_x, remaining);
        for (std::size_t i = 0; i < remaining.size(); ++i) {
          scores[i] *= std::pow(density[remaining[i]], config_.density_beta);
        }
        picks = select_query_batch(scores, batch, remaining);
        break;
      }
      case QueryStrategy::Uncertainty:
      case QueryStrategy::Margin:
      case QueryStrategy::Entropy: {
        const std::vector<double> scores =
            score_pool_rows(*model_, config_.strategy, pool_x, remaining);
        picks = select_query_batch(scores, batch, remaining);
        break;
      }
      case QueryStrategy::Random:
      case QueryStrategy::EqualApp: {
        // Sequential draws without re-scoring; the candidate order feeds
        // the RNG stream, so no model probabilities are involved at all.
        remaining_apps.clear();
        if (config_.strategy == QueryStrategy::EqualApp &&
            !pool_app_ids.empty()) {
          for (const std::size_t i : remaining) {
            remaining_apps.push_back(pool_app_ids[i]);
          }
        }
        const Matrix no_probs;
        std::vector<bool> taken(remaining.size(), false);
        for (std::size_t b = 0; b < batch; ++b) {
          std::size_t pos;
          do {
            pos = select_query(config_.strategy, no_probs, remaining_apps,
                               remaining.size(),
                               labels_used + static_cast<int>(b),
                               config_.num_apps, rng);
          } while (taken[pos]);
          taken[pos] = true;
          picks.push_back(pos);
        }
        break;
      }
    }
    stats.score_seconds = phase.seconds();

    // Label the batch in descending pool-index order (fixes the oracle's
    // RNG call order and the labeled-set row order), then retrain once.
    std::vector<std::pair<std::size_t, std::size_t>> chosen;  // (index, pos)
    chosen.reserve(picks.size());
    for (const std::size_t pos : picks) chosen.emplace_back(remaining[pos], pos);
    std::sort(chosen.begin(), chosen.end(), std::greater<>());
    for (const auto& [pool_index, pos] : chosen) {
      QueryRecord record;
      record.pool_index = pool_index;
      record.label = oracle.annotate(pool_index);
      record.app_id = pool_app_ids.empty() ? -1 : pool_app_ids[pool_index];
      result.queried.push_back(record);
      labeled.append(pool_x.row(pool_index), record.label);
    }
    // Drop the queried positions, highest first so pending positions stay
    // valid. Ordered erase preserves the sorted candidate list the draw
    // baselines rely on; everything else takes the O(1) swap-remove.
    std::sort(picks.begin(), picks.end(), std::greater<>());
    for (const std::size_t pos : picks) {
      if (order_sensitive) {
        remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pos));
      } else {
        remaining[pos] = remaining.back();
        remaining.pop_back();
      }
    }
    labels_used += static_cast<int>(picks.size());
    stats.batch = picks.size();
    stats.labels_total = labels_used;

    // Re-train with the newly labeled samples included (Sec. III-D).
    phase.reset();
    refit();
    stats.refit_seconds = phase.seconds();
    phase.reset();
    f1 = evaluate_now(labels_used);
    stats.eval_seconds = phase.seconds();
    result.rounds.push_back(stats);
  }

  result.final_f1 = result.curve.back().f1;
  if (result.queries_to_target < 0 && config_.target_f1 > 0.0) {
    result.queries_to_target =
        queries_to_reach(result.curve, config_.target_f1);
  }
  return result;
}

}  // namespace alba
