// Request deadlines for the serving path. A Deadline is an absolute
// steady-clock point a piece of work must finish by; it travels with the
// request so every layer (admission queue, worker, retry loop) can make the
// same shed-or-proceed decision without re-deriving budgets. `never()` is
// the explicit no-deadline value — callers that don't care never pay for a
// clock read.
#pragma once

#include <chrono>
#include <limits>

namespace alba {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline: never expires, infinite budget.
  static Deadline never() noexcept { return Deadline(Clock::time_point::max()); }

  /// Expires `ms` milliseconds from now; ms <= 0 is already expired.
  static Deadline after_ms(double ms) noexcept {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(ms)));
  }

  static Deadline at(Clock::time_point when) noexcept { return Deadline(when); }

  bool is_never() const noexcept {
    return when_ == Clock::time_point::max();
  }

  bool expired() const noexcept {
    return !is_never() && Clock::now() >= when_;
  }

  /// Remaining budget in milliseconds; +inf when never, <= 0 when expired.
  double remaining_ms() const noexcept {
    if (is_never()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(when_ - Clock::now())
        .count();
  }

  /// The absolute point, for condition-variable wait_until.
  Clock::time_point time_point() const noexcept { return when_; }

 private:
  explicit Deadline(Clock::time_point when) noexcept : when_(when) {}

  Clock::time_point when_;
};

}  // namespace alba
