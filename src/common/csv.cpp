#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace alba {

CsvWriter::CsvWriter(const std::string& path)
    : path_(path), out_(std::make_unique<std::ofstream>(path)) {
  ALBA_CHECK(out_->good()) << "cannot open '" << path << "' for writing";
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) (*out_) << ',';
    (*out_) << csv_escape(fields[i]);
  }
  (*out_) << '\n';
  ALBA_CHECK(out_->good()) << "write to '" << path_ << "' failed";
}

void CsvWriter::write_numeric_row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(strformat("%.10g", v));
  write_row(fields);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {

// Parses one logical CSV record (handles quoted fields with embedded
// newlines by pulling more lines from the stream).
bool read_record(std::istream& in, std::vector<std::string>& fields) {
  fields.clear();
  std::string line;
  if (!std::getline(in, line)) return false;

  std::string field;
  bool in_quotes = false;
  std::size_t i = 0;
  for (;;) {
    if (i >= line.size()) {
      if (in_quotes) {
        // Quoted field continues on the next physical line.
        field += '\n';
        if (!std::getline(in, line)) break;
        i = 0;
        continue;
      }
      break;
    }
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
    ++i;
  }
  fields.push_back(std::move(field));
  return true;
}

}  // namespace

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw Error("CSV column not found: " + name);
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path);
  ALBA_CHECK(in.good()) << "cannot open '" << path << "' for reading";
  CsvTable table;
  std::vector<std::string> fields;
  if (read_record(in, fields)) table.header = fields;
  while (read_record(in, fields)) table.rows.push_back(fields);
  return table;
}

}  // namespace alba
