#include "common/crc32.hpp"

#include <array>

namespace alba {

namespace {

// The standard reflected table, generated once at static-init time.
std::array<std::uint32_t, 256> make_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc,
                           std::span<const std::uint8_t> data) noexcept {
  crc = ~crc;
  for (const std::uint8_t b : data) {
    crc = kTable[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace alba
