// Production triage scenario: the deployment workflow the paper's
// conclusion sketches, now through the serving layer. A model is trained
// once with active learning and frozen into a ModelBundle (classifier +
// scaler + selected features + label names + feature config in one
// archive); later, a DiagnosisService loads the bundle and serves a stream
// of freshly arrived multi-node runs — collected by a degraded production
// telemetry pipeline, so windows carry dropouts, stuck sensors, and NaN
// bursts — producing the kind of triage report a system administrator
// would act on (which node, which anomaly, what confidence).
//
// Build & run:  ./build/examples/production_triage
#include <cstdio>
#include <vector>

#include "alba.hpp"

using namespace alba;

int main() {
  set_log_level(LogLevel::Warn);

  // ---- training phase (identical to quickstart, condensed) --------------
  DatasetConfig config = volta_config();
  config.num_apps = 6;
  std::printf("[train] building dataset and training with active learning...\n");
  const ExperimentData data = build_experiment_data(config);
  const SplitIndices split = make_split(data, 0.3, 11);
  const PreparedSplit prepared = prepare_split(data, split, config.select_k);
  const ALSetup setup = make_al_setup(prepared, 12);

  ActiveLearnerConfig al_config;
  al_config.strategy = QueryStrategy::Uncertainty;
  al_config.max_queries = 100;
  al_config.target_f1 = 0.95;
  ActiveLearner learner(make_model_factory("rf", kNumClasses, 13)(
                            table4_optimum("rf", false)),
                        al_config);
  LabelOracle oracle(setup.pool_y, kNumClasses);
  const auto result = learner.run(setup.seed, setup.pool_x, oracle,
                                  setup.pool_app, setup.test_x, setup.test_y);
  std::printf("[train] F1 %.3f after %zu annotations\n\n", result.final_f1,
              oracle.queries_answered());

  // Freeze everything the serving side needs — the classifier plus the
  // scaler/selector prepare_split fitted — into one versioned archive.
  const std::string bundle_path = "/tmp/albadross_triage_bundle.bin";
  export_model_bundle(bundle_path, data, prepared, learner.model());

  // ---- deployment phase --------------------------------------------------
  std::printf("[deploy] loading %s and serving incoming runs\n\n",
              bundle_path.c_str());
  ServingConfig serving;
  serving.max_batch = 8;
  DiagnosisService service(load_model_bundle_file(bundle_path), serving);

  // The production collector is imperfect: metric dropouts, stuck sensors,
  // and NaN bursts degrade the incoming windows (truncation off so every
  // window stays long enough to trim).
  FaultConfig collector_faults;
  collector_faults.metric_dropout_rate = 0.02;
  collector_faults.stuck_rate = 0.02;
  collector_faults.nan_burst_rate = 0.05;
  collector_faults.row_stall_rate = 0.01;
  RunGenerator generator(config.system, config.registry, config.sim,
                         collector_faults);

  // A morning's worth of incoming runs: mixed healthy and anomalous.
  const std::vector<RunSpec> incoming{
      {.app_id = 0, .input_id = 1, .nodes = 4, .anomaly = AnomalyType::Healthy,
       .intensity = 0.0, .run_id = 900, .seed = 9001},
      {.app_id = 3, .input_id = 0, .nodes = 4, .anomaly = AnomalyType::MemLeak,
       .intensity = 0.5, .run_id = 901, .seed = 9002},
      {.app_id = 1, .input_id = 2, .nodes = 4, .anomaly = AnomalyType::Healthy,
       .intensity = 0.0, .run_id = 902, .seed = 9003},
      {.app_id = 5, .input_id = 1, .nodes = 4, .anomaly = AnomalyType::MemBw,
       .intensity = 1.0, .run_id = 903, .seed = 9004},
      {.app_id = 2, .input_id = 0, .nodes = 4, .anomaly = AnomalyType::Dial,
       .intensity = 0.5, .run_id = 904, .seed = 9005},
  };
  for (const auto& spec : incoming) {
    const auto samples = generator.generate_run(spec);
    std::vector<Matrix> windows;
    windows.reserve(samples.size());
    for (const Sample& s : samples) windows.push_back(s.series);
    const auto diagnoses = service.diagnose_batch(windows);

    const std::string app = generator.apps()[spec.app_id].name;
    std::printf("run %3d  %-10s input %d, %d nodes:\n", spec.run_id,
                app.c_str(), spec.input_id, spec.nodes);
    for (std::size_t node = 0; node < diagnoses.size(); ++node) {
      const Diagnosis& d = diagnoses[node];
      const char* marker = d.label != 0 ? "  <-- ALERT" : "";
      std::printf("    node %zu: %-10s confidence %.2f%s\n", node,
                  std::string(service.label_name(d.label)).c_str(),
                  d.confidence, marker);
    }
  }

  // A dashboard re-checking the last alerting run hits the window cache.
  const auto recheck = generator.generate_run(incoming[3]);
  std::vector<Matrix> recheck_windows;
  for (const Sample& s : recheck) recheck_windows.push_back(s.series);
  service.diagnose_batch(recheck_windows);

  std::printf("\n(ground truth: run 901 memleak@node0, 903 membw@node0, "
              "904 dial@node0; the rest healthy)\n");
  std::printf("[serving] %s\n",
              format_serving_summary(service.stats()).c_str());
  return 0;
}
