#include "ml/autoencoder.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "linalg/ops.hpp"

namespace alba {

Autoencoder::Autoencoder(AutoencoderConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  ALBA_CHECK(config_.code_size >= 1);
  ALBA_CHECK(config_.epochs >= 1);
  ALBA_CHECK(config_.batch_size >= 1);
  for (const int h : config_.encoder_layers) ALBA_CHECK(h >= 1);
}

Matrix Autoencoder::forward(const Matrix& x, std::vector<Matrix>* activations,
                            std::size_t stop_after_layer) const {
  Matrix cur = x;
  if (activations) activations->push_back(cur);
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    Matrix next;
    gemm(cur, weights_[l], next);
    const auto& b = bias_[l];
    // The code layer and the output layer are linear; hidden layers ReLU.
    const bool linear = (l == code_layer_) || (l + 1 == weights_.size());
    for (std::size_t i = 0; i < next.rows(); ++i) {
      auto row = next.row(i);
      for (std::size_t j = 0; j < row.size(); ++j) {
        row[j] += b[j];
        if (!linear && row[j] < 0.0) row[j] = 0.0;
      }
    }
    cur = std::move(next);
    if (l == stop_after_layer) return cur;
    if (activations && l + 1 < weights_.size()) activations->push_back(cur);
  }
  return cur;
}

double Autoencoder::fit(const Matrix& x) {
  ALBA_CHECK(x.rows() > 0 && x.cols() > 0);
  const std::size_t n = x.rows();
  const std::size_t f = x.cols();

  // Symmetric topology: f → enc... → code → ...cne → f.
  std::vector<std::size_t> sizes{f};
  for (const int h : config_.encoder_layers) {
    sizes.push_back(static_cast<std::size_t>(h));
  }
  code_layer_ = sizes.size() - 1;  // weight index producing the code
  sizes.push_back(static_cast<std::size_t>(config_.code_size));
  for (auto it = config_.encoder_layers.rbegin();
       it != config_.encoder_layers.rend(); ++it) {
    sizes.push_back(static_cast<std::size_t>(*it));
  }
  sizes.push_back(f);

  Rng rng(seed_);
  weights_.clear();
  bias_.clear();
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Matrix w(sizes[l], sizes[l + 1]);
    const double bound = std::sqrt(6.0 / static_cast<double>(sizes[l]));
    for (std::size_t i = 0; i < w.rows(); ++i) {
      for (std::size_t j = 0; j < w.cols(); ++j) {
        w(i, j) = rng.uniform(-bound, bound);
      }
    }
    weights_.push_back(std::move(w));
    bias_.emplace_back(sizes[l + 1], 0.0);
  }

  // Adadelta state: accumulated squared gradients and updates.
  std::vector<Matrix> eg_w;
  std::vector<Matrix> ex_w;
  std::vector<std::vector<double>> eg_b;
  std::vector<std::vector<double>> ex_b;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    eg_w.emplace_back(weights_[l].rows(), weights_[l].cols());
    ex_w.emplace_back(weights_[l].rows(), weights_[l].cols());
    eg_b.emplace_back(bias_[l].size(), 0.0);
    ex_b.emplace_back(bias_[l].size(), 0.0);
  }
  const double rho = config_.rho;
  const double eps = config_.eps;

  auto adadelta = [rho, eps](double g, double& eg, double& ex) {
    eg = rho * eg + (1.0 - rho) * g * g;
    const double dx = -std::sqrt(ex + eps) / std::sqrt(eg + eps) * g;
    ex = rho * ex + (1.0 - rho) * dx * dx;
    return dx;
  };

  const std::size_t batch =
      std::min<std::size_t>(static_cast<std::size_t>(config_.batch_size), n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  double epoch_mse = 0.0;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    double mse_acc = 0.0;

    for (std::size_t start = 0; start < n; start += batch) {
      const std::size_t count = std::min(batch, n - start);
      const std::span<const std::size_t> batch_idx(order.data() + start, count);
      const Matrix bx = x.select_rows(batch_idx);

      std::vector<Matrix> activations;
      Matrix out = forward(bx, &activations, weights_.size());

      // MSE gradient on the output: delta = 2 (out - x) / F.
      Matrix delta(out.rows(), out.cols());
      const double scale = 2.0 / static_cast<double>(f);
      for (std::size_t i = 0; i < out.rows(); ++i) {
        const auto orow = out.row(i);
        const auto xrow = bx.row(i);
        auto drow = delta.row(i);
        for (std::size_t j = 0; j < f; ++j) {
          const double diff = orow[j] - xrow[j];
          mse_acc += diff * diff;
          drow[j] = scale * diff;
        }
      }

      const double inv_b = 1.0 / static_cast<double>(count);
      for (std::size_t l = weights_.size(); l-- > 0;) {
        Matrix gw;
        gemm_at(activations[l], delta, gw);
        std::vector<double> gb(bias_[l].size(), 0.0);
        for (std::size_t i = 0; i < delta.rows(); ++i) {
          const auto row = delta.row(i);
          for (std::size_t j = 0; j < gb.size(); ++j) gb[j] += row[j];
        }

        Matrix next_delta;
        if (l > 0) {
          gemm_bt(delta, weights_[l], next_delta);
          const bool upstream_linear = (l - 1 == code_layer_);
          if (!upstream_linear) {
            const Matrix& act = activations[l];
            for (std::size_t i = 0; i < next_delta.rows(); ++i) {
              auto row = next_delta.row(i);
              const auto arow = act.row(i);
              for (std::size_t j = 0; j < row.size(); ++j) {
                if (arow[j] <= 0.0) row[j] = 0.0;
              }
            }
          }
        }

        for (std::size_t i = 0; i < gw.rows(); ++i) {
          for (std::size_t j = 0; j < gw.cols(); ++j) {
            weights_[l](i, j) +=
                adadelta(gw(i, j) * inv_b, eg_w[l](i, j), ex_w[l](i, j));
          }
        }
        for (std::size_t j = 0; j < gb.size(); ++j) {
          bias_[l][j] += adadelta(gb[j] * inv_b, eg_b[l][j], ex_b[l][j]);
        }
        delta = std::move(next_delta);
      }
    }
    epoch_mse = mse_acc / (static_cast<double>(n) * static_cast<double>(f));
  }
  return epoch_mse;
}

Matrix Autoencoder::encode(const Matrix& x) const {
  ALBA_CHECK(fitted()) << "encode before fit";
  return forward(x, nullptr, code_layer_);
}

Matrix Autoencoder::reconstruct(const Matrix& x) const {
  ALBA_CHECK(fitted()) << "reconstruct before fit";
  return forward(x, nullptr, weights_.size());
}

std::vector<double> Autoencoder::reconstruction_error(const Matrix& x) const {
  const Matrix out = reconstruct(x);
  std::vector<double> errors(x.rows(), 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto a = x.row(i);
    const auto b = out.row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < a.size(); ++j) {
      acc += (a[j] - b[j]) * (a[j] - b[j]);
    }
    errors[i] = acc / static_cast<double>(a.size());
  }
  return errors;
}

}  // namespace alba
