// Microbenchmarks for the telemetry + feature-extraction substrates: node
// simulation throughput, preprocessing, and per-series cost of the MVTS and
// TSFRESH-like extractors (including the O(n²) entropy features that
// dominate TSFRESH).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "features/extractor.hpp"
#include "stats/entropy.hpp"
#include "stats/welch.hpp"

namespace {

using namespace alba;

RegistryConfig bench_registry() {
  RegistryConfig cfg;
  cfg.cores = 8;
  return cfg;
}

std::vector<double> random_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(0.0, 100.0);
  return x;
}

void BM_NodeSimulate(benchmark::State& state) {
  const MetricRegistry registry(SystemKind::Volta, bench_registry());
  NodeSimConfig cfg;
  cfg.duration_steps = static_cast<int>(state.range(0));
  const NodeSimulator sim(registry, cfg);
  const auto apps = volta_applications();
  const InputDeck deck = make_input_deck(0, 0);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(apps[0], deck, 0, nullptr, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(registry.size()));
}
BENCHMARK(BM_NodeSimulate)->Arg(96)->Arg(600);

void BM_PreprocessSeries(benchmark::State& state) {
  const MetricRegistry registry(SystemKind::Volta, bench_registry());
  NodeSimConfig cfg;
  cfg.duration_steps = static_cast<int>(state.range(0));
  const NodeSimulator sim(registry, cfg);
  const auto apps = volta_applications();
  Rng rng(1);
  const Matrix raw = sim.simulate(apps[0], make_input_deck(0, 0), 0, nullptr, rng);
  const PreprocessConfig pp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(preprocess_series(raw, registry, pp));
  }
}
BENCHMARK(BM_PreprocessSeries)->Arg(96)->Arg(600);

void BM_MvtsExtract(benchmark::State& state) {
  const MvtsExtractor mvts;
  const auto x = random_series(static_cast<std::size_t>(state.range(0)), 2);
  std::vector<double> out(mvts.num_features());
  for (auto _ : state) {
    mvts.extract(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mvts.num_features()));
}
BENCHMARK(BM_MvtsExtract)->Arg(89)->Arg(589);

void BM_TsfreshExtract(benchmark::State& state) {
  const TsfreshExtractor ts;
  const auto x = random_series(static_cast<std::size_t>(state.range(0)), 3);
  std::vector<double> out(ts.num_features());
  for (auto _ : state) {
    ts.extract(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ts.num_features()));
}
BENCHMARK(BM_TsfreshExtract)->Arg(89)->Arg(589);

void BM_ApproximateEntropy(benchmark::State& state) {
  const auto x = random_series(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::approximate_entropy(x));
  }
}
BENCHMARK(BM_ApproximateEntropy)->Arg(64)->Arg(128)->Arg(256);

void BM_WelchPsd(benchmark::State& state) {
  const auto x = random_series(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::welch_psd(x, 64));
  }
}
BENCHMARK(BM_WelchPsd)->Arg(96)->Arg(600);

}  // namespace
