
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/preprocess/scalers.cpp" "src/CMakeFiles/alba_preprocess.dir/preprocess/scalers.cpp.o" "gcc" "src/CMakeFiles/alba_preprocess.dir/preprocess/scalers.cpp.o.d"
  "/root/repo/src/preprocess/select_kbest.cpp" "src/CMakeFiles/alba_preprocess.dir/preprocess/select_kbest.cpp.o" "gcc" "src/CMakeFiles/alba_preprocess.dir/preprocess/select_kbest.cpp.o.d"
  "/root/repo/src/preprocess/split.cpp" "src/CMakeFiles/alba_preprocess.dir/preprocess/split.cpp.o" "gcc" "src/CMakeFiles/alba_preprocess.dir/preprocess/split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alba_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
