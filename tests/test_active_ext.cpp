// Tests for the active-learning extensions: query-by-committee, density-
// weighted querying, batch-mode annotation, stream-based selective
// sampling, and the annotator-assist explanation module.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>
#include <set>

#include "active/committee.hpp"
#include "common/csv.hpp"
#include "active/explain.hpp"
#include "active/learner.hpp"
#include "active/stream.hpp"
#include "common/rng.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

namespace alba {
namespace {

struct Blobs {
  Matrix x;
  std::vector<int> y;
};

Blobs make_blobs(std::size_t per_class, double spread, std::uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {5.0, 5.0}, {0.0, 5.0}};
  Blobs blobs;
  blobs.x = Matrix(3 * per_class, 2);
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = static_cast<std::size_t>(c) * per_class + i;
      blobs.x(row, 0) = centers[c][0] + spread * rng.normal();
      blobs.x(row, 1) = centers[c][1] + spread * rng.normal();
      blobs.y.push_back(c);
    }
  }
  return blobs;
}

RandomForest make_prototype(std::uint64_t seed = 1) {
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 10;
  cfg.max_depth = 6;
  return RandomForest(cfg, seed);
}

// ------------------------------------------------------------ committee ---

TEST(Committee, MembersDifferAndConsensusIsValid) {
  const Blobs blobs = make_blobs(30, 1.5, 1);
  const RandomForest proto = make_prototype();
  Committee committee(proto, 4, 7);
  EXPECT_EQ(committee.size(), 4u);
  EXPECT_FALSE(committee.fitted());
  committee.fit(blobs.x, blobs.y);
  EXPECT_TRUE(committee.fitted());

  const Matrix consensus = committee.predict_proba(blobs.x);
  for (std::size_t i = 0; i < consensus.rows(); ++i) {
    double sum = 0.0;
    for (const double p : consensus.row(i)) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // Members trained with different seeds: at least one probability differs.
  const Matrix p0 = committee.member(0).predict_proba(blobs.x);
  const Matrix p1 = committee.member(1).predict_proba(blobs.x);
  bool differ = false;
  for (std::size_t i = 0; i < p0.rows() && !differ; ++i) {
    for (std::size_t j = 0; j < p0.cols(); ++j) {
      if (p0(i, j) != p1(i, j)) differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(Committee, DisagreementHigherOnAmbiguousPoints) {
  const Blobs blobs = make_blobs(50, 0.8, 2);
  const RandomForest proto = make_prototype();
  Committee committee(proto, 5, 3);
  committee.fit(blobs.x, blobs.y);

  // A point at a class centroid vs one equidistant between centroids.
  Matrix probe(2, 2);
  probe(0, 0) = 0.0;
  probe(0, 1) = 0.0;   // deep inside class 0
  probe(1, 0) = 2.5;
  probe(1, 1) = 2.5;   // between all three centroids
  const auto ve = committee.vote_entropy(probe);
  const auto kl = committee.consensus_kl(probe);
  EXPECT_LE(ve[0], ve[1]);
  EXPECT_LE(kl[0], kl[1] + 1e-9);
  EXPECT_GE(ve[1], 0.0);
  EXPECT_GE(kl[1], 0.0);
}

TEST(Committee, UnanimousVotesHaveZeroEntropy) {
  const Blobs blobs = make_blobs(40, 0.3, 4);  // trivially separable
  const RandomForest proto = make_prototype();
  Committee committee(proto, 3, 5);
  committee.fit(blobs.x, blobs.y);
  Matrix probe(1, 2);
  probe(0, 0) = 0.0;
  probe(0, 1) = 0.0;
  EXPECT_NEAR(committee.vote_entropy(probe)[0], 0.0, 1e-9);
}

TEST(Committee, RejectsTooSmall) {
  const RandomForest proto = make_prototype();
  EXPECT_THROW(Committee(proto, 1, 1), Error);
}

// --------------------------------------------------- scored / batch picks ---

TEST(ScoredSelection, ArgmaxAndBatch) {
  const std::vector<double> scores{0.3, 0.9, 0.1, 0.9, 0.5};
  EXPECT_EQ(select_query_scored(scores), 1u);  // first of the tied maxima
  const auto batch = select_query_batch(scores, 3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], 1u);
  EXPECT_EQ(batch[1], 3u);
  EXPECT_EQ(batch[2], 4u);
  // k clamped.
  EXPECT_EQ(select_query_batch(scores, 99).size(), 5u);
  EXPECT_THROW(select_query_scored({}), Error);
}

TEST(ScoredSelection, NanScoresRankLast) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // NaN compares false against everything, which used to hand the batch
  // comparator an invalid ordering (UB in std::partial_sort); non-finite
  // scores must deterministically lose instead.
  const std::vector<double> scores{nan, 0.5, nan, 0.1};
  const auto picks = select_query_batch(scores, 2);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], 1u);
  EXPECT_EQ(picks[1], 3u);
  EXPECT_EQ(select_query_scored(scores), 1u);

  // All-NaN pools still pick something valid (lowest tie-break key).
  const std::vector<double> all_nan{nan, nan, nan};
  EXPECT_EQ(select_query_scored(all_nan), 0u);
  const auto nan_picks = select_query_batch(all_nan, 2);
  ASSERT_EQ(nan_picks.size(), 2u);
  EXPECT_EQ(nan_picks[0], 0u);
  EXPECT_EQ(nan_picks[1], 1u);

  // Infinities: +inf wins, -inf loses.
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> with_inf{-inf, 0.0, inf};
  EXPECT_EQ(select_query_scored(with_inf), 2u);
}

TEST(ScoredSelection, TieIdsOverridePositionTieBreak) {
  const std::vector<double> scores{0.7, 0.7, 0.7};
  const std::vector<std::size_t> ids{42, 9, 17};
  const auto picks = select_query_batch(scores, 2, ids);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], 1u);  // id 9
  EXPECT_EQ(picks[1], 2u);  // id 17
}

TEST(InformationDensity, SingleReferenceYieldsUniformDensities) {
  Rng rng(9);
  Matrix pool(20, 2);
  for (std::size_t i = 0; i < pool.rows(); ++i) {
    pool(i, 0) = rng.normal();
    pool(i, 1) = rng.normal();
  }
  // ref_cap = 1: the lone reference pairs with itself, so the bandwidth
  // estimate degenerates; the guard must return uniform densities rather
  // than collapsing every weight to ~0.
  const auto density = information_density(pool, 1, 3);
  ASSERT_EQ(density.size(), pool.rows());
  for (const double d : density) EXPECT_DOUBLE_EQ(d, 1.0);
}

TEST(InformationDensity, DenseRegionScoresHigher) {
  Rng rng(6);
  Matrix pool(101, 2);
  for (std::size_t i = 0; i < 100; ++i) {
    pool(i, 0) = rng.normal(0.0, 0.5);
    pool(i, 1) = rng.normal(0.0, 0.5);
  }
  pool(100, 0) = 50.0;  // extreme outlier
  pool(100, 1) = 50.0;
  const auto density = information_density(pool, 64, 7);
  ASSERT_EQ(density.size(), 101u);
  double mean_dense = 0.0;
  for (std::size_t i = 0; i < 100; ++i) mean_dense += density[i];
  mean_dense /= 100.0;
  EXPECT_LT(density[100], 0.2 * mean_dense);
  for (const double d : density) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0 + 1e-9);
  }
}

// ------------------------------------------------- learner with extensions ---

struct AlTask {
  LabeledData seed;
  Matrix pool_x;
  std::vector<int> pool_y;
  Matrix test_x;
  std::vector<int> test_y;
};

AlTask make_task(std::uint64_t seed_val) {
  Rng rng(seed_val);
  const double centers[3][2] = {{0.0, 0.0}, {5.0, 5.0}, {0.0, 5.0}};
  AlTask task;
  auto fill = [&](Matrix& m, std::size_t row, int c) {
    m(row, 0) = centers[c][0] + 0.9 * rng.normal();
    m(row, 1) = centers[c][1] + 0.9 * rng.normal();
  };
  for (int c = 1; c < 3; ++c) {
    for (int i = 0; i < 2; ++i) {
      Matrix tmp(1, 2);
      fill(tmp, 0, c);
      task.seed.append(tmp.row(0), c);
    }
  }
  task.pool_x = Matrix(150, 2);
  for (std::size_t i = 0; i < 150; ++i) {
    const int c = static_cast<int>(i % 3);
    fill(task.pool_x, i, c);
    task.pool_y.push_back(c);
  }
  task.test_x = Matrix(90, 2);
  for (std::size_t i = 0; i < 90; ++i) {
    const int c = static_cast<int>(i % 3);
    fill(task.test_x, i, c);
    task.test_y.push_back(c);
  }
  return task;
}

std::unique_ptr<Classifier> task_model(std::uint64_t seed_val) {
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 10;
  cfg.max_depth = 6;
  return std::make_unique<RandomForest>(cfg, seed_val);
}

class ExtensionStrategyTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ExtensionStrategyTest, LearnsOnSyntheticTask) {
  AlTask task = make_task(11);
  ActiveLearnerConfig cfg;
  cfg.strategy = strategy_from_name(GetParam());
  cfg.max_queries = 25;
  cfg.committee_size = 3;
  cfg.seed = 5;
  ActiveLearner learner(task_model(1), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                  task.test_x, task.test_y);
  EXPECT_EQ(result.queried.size(), 25u);
  EXPECT_GT(result.final_f1, 0.85) << GetParam();
  EXPECT_GT(result.final_f1, result.curve.front().f1) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Strategies, ExtensionStrategyTest,
                         ::testing::Values("vote_entropy", "consensus_kl",
                                           "density_weighted"));

TEST(BatchMode, SameBudgetFewerRounds) {
  AlTask task = make_task(12);
  ActiveLearnerConfig cfg;
  cfg.strategy = QueryStrategy::Uncertainty;
  cfg.max_queries = 24;
  cfg.batch_size = 6;
  ActiveLearner learner(task_model(2), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                  task.test_x, task.test_y);
  // 24 labels in 4 rounds: curve has the seed point + 4 batch points.
  ASSERT_EQ(result.curve.size(), 5u);
  EXPECT_EQ(result.curve.back().queries, 24);
  EXPECT_EQ(result.queried.size(), 24u);
  std::set<std::size_t> distinct;
  for (const auto& q : result.queried) distinct.insert(q.pool_index);
  EXPECT_EQ(distinct.size(), 24u);
}

TEST(BatchMode, RandomBaselineBatchesToo) {
  AlTask task = make_task(13);
  ActiveLearnerConfig cfg;
  cfg.strategy = QueryStrategy::Random;
  cfg.max_queries = 20;
  cfg.batch_size = 5;
  ActiveLearner learner(task_model(3), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                  task.test_x, task.test_y);
  EXPECT_EQ(result.queried.size(), 20u);
  std::set<std::size_t> distinct;
  for (const auto& q : result.queried) distinct.insert(q.pool_index);
  EXPECT_EQ(distinct.size(), 20u);
}

// ------------------------------------------- parallel/serial equivalence ---

struct RefResult {
  std::vector<std::size_t> queried;  // pool indices, in annotation order
  std::vector<double> f1s;           // per-round macro F1 (seed first)
};

// The learner's original serial algorithm, kept verbatim as a reference:
// copy the remaining rows every round, score the copy, pick with a
// position tie-break over the ascending candidate list, erase in
// descending position order. The production loop now scores index views
// in parallel with swap-remove bookkeeping; its picks and curves must stay
// bit-identical to this.
RefResult reference_run(std::unique_ptr<Classifier> model,
                        const ActiveLearnerConfig& cfg, const AlTask& task) {
  Rng rng(cfg.seed);
  LabeledData labeled = task.seed;
  const bool use_committee = strategy_uses_committee(cfg.strategy);
  std::unique_ptr<Committee> committee;
  if (use_committee) {
    committee = std::make_unique<Committee>(*model, cfg.committee_size,
                                            cfg.seed ^ 0xC0117EE);
  }
  std::vector<double> density;
  if (cfg.strategy == QueryStrategy::DensityWeighted) {
    density = information_density(task.pool_x, cfg.density_ref_cap,
                                  cfg.seed ^ 0xDE4517);
  }
  std::vector<std::size_t> remaining(task.pool_x.rows());
  std::iota(remaining.begin(), remaining.end(), std::size_t{0});

  auto refit = [&] {
    if (use_committee) {
      committee->fit(labeled.x, labeled.y);
    } else {
      model->fit(labeled.x, labeled.y);
    }
  };
  LabelOracle oracle(task.pool_y, 3);
  RefResult result;
  auto eval_now = [&] {
    const auto pred = use_committee ? committee->predict(task.test_x)
                                    : model->predict(task.test_x);
    result.f1s.push_back(evaluate(task.test_y, pred, 3).macro_f1);
  };
  refit();
  eval_now();

  int labels_used = 0;
  while (labels_used < cfg.max_queries && !remaining.empty()) {
    const Matrix remaining_x = task.pool_x.select_rows(remaining);
    const std::size_t batch = std::min<std::size_t>(
        {static_cast<std::size_t>(cfg.batch_size), remaining.size(),
         static_cast<std::size_t>(cfg.max_queries - labels_used)});

    std::vector<std::size_t> picks;
    if (use_committee) {
      const auto scores = cfg.strategy == QueryStrategy::VoteEntropy
                              ? committee->vote_entropy(remaining_x)
                              : committee->consensus_kl(remaining_x);
      picks = select_query_batch(scores, batch);
    } else if (cfg.strategy == QueryStrategy::DensityWeighted) {
      const Matrix probs = model->predict_proba(remaining_x);
      std::vector<double> scores(remaining.size());
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        scores[i] = uncertainty_score(probs.row(i)) *
                    std::pow(density[remaining[i]], cfg.density_beta);
      }
      picks = select_query_batch(scores, batch);
    } else if (strategy_uses_model(cfg.strategy)) {
      const Matrix probs = model->predict_proba(remaining_x);
      if (batch == 1) {
        picks.push_back(select_query(cfg.strategy, probs, {},
                                     remaining.size(), labels_used, 0, rng));
      } else {
        std::vector<double> scores(remaining.size());
        for (std::size_t i = 0; i < remaining.size(); ++i) {
          const auto row = probs.row(i);
          if (cfg.strategy == QueryStrategy::Uncertainty) {
            scores[i] = uncertainty_score(row);
          } else if (cfg.strategy == QueryStrategy::Margin) {
            scores[i] = -margin_score(row);
          } else {
            scores[i] = entropy_score(row);
          }
        }
        picks = select_query_batch(scores, batch);
      }
    } else {  // Random
      std::vector<bool> taken(remaining.size(), false);
      for (std::size_t b = 0; b < batch; ++b) {
        std::size_t pos;
        do {
          pos = select_query(cfg.strategy, Matrix(), {}, remaining.size(),
                             labels_used + static_cast<int>(b), 0, rng);
        } while (taken[pos]);
        taken[pos] = true;
        picks.push_back(pos);
      }
    }

    std::sort(picks.begin(), picks.end(), std::greater<>());
    for (const std::size_t pos : picks) {
      const std::size_t pool_index = remaining[pos];
      const int label = oracle.annotate(pool_index);
      result.queried.push_back(pool_index);
      labeled.append(task.pool_x.row(pool_index), label);
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pos));
    }
    labels_used += static_cast<int>(picks.size());
    refit();
    eval_now();
  }
  return result;
}

struct EquivCase {
  const char* strategy;
  int batch;
};

class LoopEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(LoopEquivalenceTest, MatchesSerialReference) {
  const EquivCase& c = GetParam();
  const AlTask task = make_task(21);
  ActiveLearnerConfig cfg;
  cfg.strategy = strategy_from_name(c.strategy);
  cfg.max_queries = 15;
  cfg.batch_size = c.batch;
  cfg.committee_size = 3;
  cfg.seed = 29;

  const RefResult expected = reference_run(task_model(8), cfg, task);

  ActiveLearner learner(task_model(8), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                  task.test_x, task.test_y);

  ASSERT_EQ(result.queried.size(), expected.queried.size()) << c.strategy;
  for (std::size_t i = 0; i < expected.queried.size(); ++i) {
    EXPECT_EQ(result.queried[i].pool_index, expected.queried[i])
        << c.strategy << " query " << i;
  }
  ASSERT_EQ(result.curve.size(), expected.f1s.size()) << c.strategy;
  for (std::size_t i = 0; i < expected.f1s.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.curve[i].f1, expected.f1s[i])
        << c.strategy << " round " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, LoopEquivalenceTest,
    ::testing::Values(EquivCase{"uncertainty", 1}, EquivCase{"uncertainty", 4},
                      EquivCase{"margin", 1}, EquivCase{"entropy", 1},
                      EquivCase{"density_weighted", 2},
                      EquivCase{"vote_entropy", 2},
                      EquivCase{"consensus_kl", 1}, EquivCase{"random", 3}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      return std::string(info.param.strategy) + "_b" +
             std::to_string(info.param.batch);
    });

// ---------------------------------------------------------- round stats ---

TEST(RoundStats, InstrumentationMatchesTheLoop) {
  const AlTask task = make_task(22);
  ActiveLearnerConfig cfg;
  cfg.strategy = QueryStrategy::Uncertainty;
  cfg.max_queries = 12;
  cfg.batch_size = 4;
  cfg.seed = 3;
  ActiveLearner learner(task_model(9), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result = learner.run(task.seed, task.pool_x, oracle, {},
                                  task.test_x, task.test_y);

  // Seed fit + one entry per query round, aligned with the curve.
  ASSERT_EQ(result.rounds.size(), result.curve.size());
  ASSERT_EQ(result.rounds.size(), 4u);  // seed + 3 rounds of 4
  EXPECT_EQ(result.rounds.front().round, 0);
  EXPECT_EQ(result.rounds.front().batch, 0u);
  EXPECT_EQ(result.rounds.front().labels_total, 0);
  EXPECT_EQ(result.rounds.front().pool_size, task.pool_x.rows());
  EXPECT_DOUBLE_EQ(result.rounds.front().score_seconds, 0.0);

  std::size_t labeled_so_far = 0;
  for (std::size_t i = 1; i < result.rounds.size(); ++i) {
    const RoundStats& r = result.rounds[i];
    EXPECT_EQ(r.round, static_cast<int>(i));
    EXPECT_EQ(r.batch, 4u);
    EXPECT_EQ(r.pool_size, task.pool_x.rows() - labeled_so_far);
    labeled_so_far += r.batch;
    EXPECT_EQ(r.labels_total, static_cast<int>(labeled_so_far));
    EXPECT_EQ(r.labels_total, result.curve[i].queries);
    EXPECT_GE(r.score_seconds, 0.0);
    EXPECT_GE(r.refit_seconds, 0.0);
    EXPECT_GE(r.eval_seconds, 0.0);
  }

  const RoundStatsSummary summary = summarize_rounds(result.rounds);
  EXPECT_EQ(summary.rounds, result.rounds.size());
  EXPECT_GT(summary.refit_seconds, 0.0);
  EXPECT_GE(summary.total_seconds(),
            summary.score_seconds + summary.refit_seconds);

  // CSV round-trips the same number of rows.
  const std::string header = round_stats_csv_header();
  EXPECT_NE(header.find("score_seconds"), std::string::npos);
  const std::string row = round_stats_csv_row("test", result.rounds.back());
  EXPECT_EQ(row.rfind("test,", 0), 0u);
}

// Sweep labels carry free-form configuration text; an embedded comma or
// quote must be RFC-4180-quoted so the file parses back column-true.
TEST(RoundStats, CsvLabelsWithCommasSurviveParseBack) {
  RoundStats r;
  r.round = 2;
  r.labels_total = 8;
  r.pool_size = 90;
  r.batch = 4;
  const std::string tricky = "batch=4,threads=2,\"warm\"";
  const std::vector<RoundStats> rounds{r};

  const std::string path = "/tmp/alba_round_stats_csv_test.csv";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    write_round_stats_csv(out, tricky, rounds);
  }
  const CsvTable table = read_csv(path);  // throws on ragged rows
  std::remove(path.c_str());

  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0].size(), table.header.size());
  EXPECT_EQ(table.rows[0][table.column_index("label")], tricky);
  EXPECT_EQ(table.rows[0][table.column_index("round")], "2");
  EXPECT_EQ(table.rows[0][table.column_index("batch")], "4");
}

// --------------------------------------------------------------- stream ---

TEST(StreamSampler, QueriesOnlyUncertainItems) {
  AlTask task = make_task(14);
  StreamSamplerConfig cfg;
  cfg.uncertainty_threshold = 0.4;
  cfg.max_queries = 100;
  StreamSampler sampler(task_model(4), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result =
      sampler.run(task.seed, task.pool_x, oracle, task.test_x, task.test_y);
  EXPECT_EQ(result.seen, task.pool_x.rows());
  EXPECT_GT(result.queried, 0u);
  EXPECT_LT(result.queried, result.seen);  // selective, not exhaustive
  EXPECT_EQ(result.queried, oracle.queries_answered());
  EXPECT_GT(result.final_f1, result.curve.front().f1);
}

TEST(StreamSampler, BudgetStopsQuerying) {
  AlTask task = make_task(15);
  StreamSamplerConfig cfg;
  cfg.uncertainty_threshold = 0.05;  // nearly everything looks uncertain
  cfg.max_queries = 7;
  StreamSampler sampler(task_model(5), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result =
      sampler.run(task.seed, task.pool_x, oracle, task.test_x, task.test_y);
  EXPECT_EQ(result.queried, 7u);
}

TEST(StreamSampler, AdaptiveThresholdMoves) {
  AlTask task = make_task(16);
  StreamSamplerConfig cfg;
  cfg.uncertainty_threshold = 0.3;
  cfg.adapt_rate = 0.05;
  cfg.max_queries = 50;
  StreamSampler sampler(task_model(6), cfg);
  LabelOracle oracle(task.pool_y, 3);
  const auto result =
      sampler.run(task.seed, task.pool_x, oracle, task.test_x, task.test_y);
  EXPECT_NE(result.final_threshold, cfg.uncertainty_threshold);
}

TEST(StreamSampler, RejectsBadConfig) {
  StreamSamplerConfig bad;
  bad.uncertainty_threshold = 0.0;
  EXPECT_THROW(StreamSampler(task_model(7), bad), Error);
}

// -------------------------------------------------------------- explain ---

TEST(QueryExplainer, FlagsTheDeviantFeature) {
  Rng rng(17);
  LabeledData labeled;
  for (int i = 0; i < 40; ++i) {
    std::vector<double> row{rng.normal(1.0, 0.1), rng.normal(5.0, 0.1),
                            rng.normal(-2.0, 0.1)};
    labeled.append(row, 0);  // healthy
  }
  QueryExplainer explainer(labeled, {"cpu|mean", "net|mean", "mem|slope"});
  EXPECT_EQ(explainer.healthy_samples(), 40u);

  const std::vector<double> sample{1.0, 5.0, 30.0};  // mem|slope exploded
  const auto top = explainer.top_features(sample, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].feature, "mem|slope");
  EXPECT_GT(std::abs(top[0].z), 10.0);
  EXPECT_GT(std::abs(top[0].z), std::abs(top[1].z));
}

TEST(QueryExplainer, MetricAggregation) {
  Rng rng(18);
  LabeledData labeled;
  for (int i = 0; i < 30; ++i) {
    std::vector<double> row{rng.normal(0.0, 0.1), rng.normal(0.0, 0.1),
                            rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)};
    labeled.append(row, 0);
  }
  QueryExplainer explainer(
      labeled, {"cpu|mean", "cpu|std", "net|mean", "net|std"});
  const std::vector<double> sample{9.0, 9.0, 0.0, 0.0};  // cpu features off
  const auto metrics = explainer.top_metrics(sample, 2);
  ASSERT_GE(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].metric, "cpu");
  EXPECT_EQ(metrics[0].features, 2u);
}

TEST(QueryExplainer, NeedsHealthySamples) {
  LabeledData labeled;
  labeled.append(std::vector<double>{1.0}, 2);
  EXPECT_THROW(QueryExplainer(labeled, {"f"}), Error);
}

TEST(QueryExplainer, ConstantFeatureDoesNotExplode) {
  LabeledData labeled;
  for (int i = 0; i < 10; ++i) {
    labeled.append(std::vector<double>{3.0, static_cast<double>(i)}, 0);
  }
  QueryExplainer explainer(labeled, {"const|v", "ramp|v"});
  const std::vector<double> sample{3.0, 100.0};
  const auto top = explainer.top_features(sample, 2);
  EXPECT_EQ(top[0].feature, "ramp|v");
  EXPECT_TRUE(std::isfinite(top[1].z));
}

}  // namespace
}  // namespace alba
