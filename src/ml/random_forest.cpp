#include "ml/random_forest.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "ml/compiled_tree.hpp"

namespace alba {

RandomForest::RandomForest(ForestConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  ALBA_CHECK(config_.n_estimators >= 1);
  ALBA_CHECK(config_.num_classes >= 2);
}

void RandomForest::fit(const Matrix& x, std::span<const int> y) {
  ALBA_CHECK(x.rows() == y.size());
  ALBA_CHECK(x.rows() > 0);

  TreeConfig tree_config;
  tree_config.num_classes = config_.num_classes;
  tree_config.max_depth = config_.max_depth;
  tree_config.min_samples_split = config_.min_samples_split;
  tree_config.min_samples_leaf = config_.min_samples_leaf;
  tree_config.max_features = config_.max_features;
  tree_config.criterion = config_.criterion;
  tree_config.split_algo = config_.split_algo;

  const auto t = static_cast<std::size_t>(config_.n_estimators);
  trees_.clear();
  compiled_.reset();
  trees_.reserve(t);
  // Per-tree seeds derived up front so parallel tree fitting stays
  // deterministic regardless of scheduling.
  Rng seeder(seed_);
  std::vector<std::uint64_t> tree_seeds(t);
  for (auto& s : tree_seeds) s = seeder.next();
  for (std::size_t i = 0; i < t; ++i) {
    trees_.emplace_back(tree_config, tree_seeds[i]);
  }

  // Hist mode: quantize the training matrix once and share the read-only
  // binned view across every tree (each tree's split search stays
  // single-threaded, so per-tree determinism is schedule-independent).
  const BinnedMatrix binned_storage =
      config_.split_algo == SplitAlgo::Hist ? BinnedMatrix(x) : BinnedMatrix();
  const BinnedMatrix* binned =
      config_.split_algo == SplitAlgo::Hist ? &binned_storage : nullptr;

  parallel_for(t, [&](std::size_t i) {
    Rng rng(tree_seeds[i] ^ 0xB0075742ULL);
    std::vector<std::size_t> idx;
    if (config_.bootstrap) {
      idx = rng.bootstrap_indices(x.rows());
    } else {
      idx.resize(x.rows());
      std::iota(idx.begin(), idx.end(), std::size_t{0});
    }
    trees_[i].fit_on(x, y, std::move(idx), binned);
  });
  recompile();
}

void RandomForest::recompile() {
  compiled_ = CompiledTreePredictor::compile(*this);
}

Matrix RandomForest::predict_proba_reference(const Matrix& x) const {
  ALBA_CHECK(fitted()) << "predict before fit";
  const auto k = static_cast<std::size_t>(config_.num_classes);
  Matrix out(x.rows(), k, 0.0);

  parallel_for(x.rows(), [&](std::size_t i) {
    std::vector<double> buf(k);
    auto row_out = out.row(i);
    for (const DecisionTree& tree : trees_) {
      tree.predict_proba_row(x.row(i), buf);
      for (std::size_t c = 0; c < k; ++c) row_out[c] += buf[c];
    }
    const double inv = 1.0 / static_cast<double>(trees_.size());
    for (std::size_t c = 0; c < k; ++c) row_out[c] *= inv;
  });
  return out;
}

Matrix RandomForest::predict_proba(const Matrix& x) const {
  if (compiled_ == nullptr) return predict_proba_reference(x);
  Matrix out(x.rows(), static_cast<std::size_t>(config_.num_classes));
  global_pool().parallel_for_chunked(
      x.rows(), [&](std::size_t begin, std::size_t end) {
        compiled_->predict_range(x, begin, end, out);
      });
  return out;
}

void RandomForest::predict_proba_rows(const Matrix& x,
                                      std::span<const std::size_t> rows,
                                      Matrix& out) const {
  ALBA_CHECK(fitted()) << "predict before fit";
  const auto k = static_cast<std::size_t>(config_.num_classes);
  out.reshape(rows.size(), k);
  if (compiled_ != nullptr) {
    compiled_->predict_rows(x, rows, out);
    return;
  }
  out.fill(0.0);
  const double inv = 1.0 / static_cast<double>(trees_.size());
  std::vector<double> buf(k);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto row_out = out.row(i);
    for (const DecisionTree& tree : trees_) {
      tree.predict_proba_row(x.row(rows[i]), buf);
      for (std::size_t c = 0; c < k; ++c) row_out[c] += buf[c];
    }
    for (std::size_t c = 0; c < k; ++c) row_out[c] *= inv;
  }
}

std::unique_ptr<Classifier> RandomForest::clone() const {
  return std::make_unique<RandomForest>(config_, seed_);
}

std::vector<double> RandomForest::feature_importances(
    std::size_t num_features) const {
  ALBA_CHECK(fitted()) << "importances before fit";
  std::vector<double> importances(num_features, 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto per_tree = tree.feature_importances(num_features);
    for (std::size_t j = 0; j < num_features; ++j) {
      importances[j] += per_tree[j];
    }
  }
  double total = 0.0;
  for (const double v : importances) total += v;
  if (total > 0.0) {
    for (auto& v : importances) v /= total;
  }
  return importances;
}

}  // namespace alba
