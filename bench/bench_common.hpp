// Shared scaffolding for the figure/table benches: a standard flag set
// (dataset scale, query budget, repeats, output directory) and helpers to
// build the experiment datasets with progress logging.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "active/round_stats.hpp"
#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"

namespace alba::bench {

struct BenchFlags {
  bool full = false;       // paper-scale dataset (slow)
  int queries = 150;       // AL query budget per method
  int repeats = 3;         // train/test splits (paper uses 5)
  std::uint64_t seed = 7;
  std::string out_dir = ".";
  bool quiet = false;
};

inline void add_standard_flags(Cli& cli, BenchFlags& flags) {
  cli.flag("full", &flags.full, "paper-scale dataset (much slower)");
  cli.flag("queries", &flags.queries, "active-learning query budget");
  cli.flag("repeats", &flags.repeats, "train/test split repeats");
  cli.flag("seed", &flags.seed, "experiment seed");
  cli.flag("out", &flags.out_dir, "directory for CSV dumps");
  cli.flag("quiet", &flags.quiet, "suppress progress logging");
}

inline void apply_logging(const BenchFlags& flags) {
  set_log_level(flags.quiet ? LogLevel::Warn : LogLevel::Info);
}

inline ExperimentData build_data(SystemKind system, const BenchFlags& flags) {
  DatasetConfig cfg = system == SystemKind::Volta
                          ? volta_config(flags.full)
                          : eclipse_config(flags.full);
  cfg.seed = flags.seed;
  Timer timer;
  ExperimentData data = build_experiment_data(cfg);
  std::printf("dataset: %s, %zu samples, %zu usable features (%s), %.1fs\n",
              std::string(system_name(system)).c_str(),
              data.features.num_samples(), data.features.num_features(),
              std::string(extractor_name(cfg.extractor)).c_str(),
              timer.seconds());
  return data;
}

inline ExperimentOptions make_options(const BenchFlags& flags) {
  ExperimentOptions opt;
  opt.max_queries = flags.queries;
  opt.repeats = flags.repeats;
  opt.seed = flags.seed;
  return opt;
}

/// One standard AL realization (split → scale/select → seed/pool/test) for
/// ablation benches that drive ActiveLearner directly.
inline ALSetup standard_setup(const ExperimentData& data, std::uint64_t seed) {
  const SplitIndices split =
      make_split(data, data.config.test_fraction, seed);
  const PreparedSplit prepared =
      prepare_split(data, split, data.config.select_k);
  return make_al_setup(prepared, seed * 31 + 7);
}

/// One-line phase breakdown of a learner run's query loop.
inline void print_round_summary(std::string_view label,
                                std::span<const RoundStats> rounds) {
  std::printf("  %-16s %s\n", std::string(label).c_str(),
              format_round_summary(rounds).c_str());
}

/// Accumulates per-round stats from several runs into one CSV (one header,
/// a `label` column telling the runs apart).
class RoundStatsCsv {
 public:
  explicit RoundStatsCsv(const std::string& path) : os_(path), path_(path) {
    os_ << round_stats_csv_header() << '\n';
  }

  void add(std::string_view label, std::span<const RoundStats> rounds) {
    for (const RoundStats& r : rounds) {
      os_ << round_stats_csv_row(label, r) << '\n';
    }
  }

  const std::string& path() const noexcept { return path_; }

 private:
  std::ofstream os_;
  std::string path_;
};

}  // namespace alba::bench
