#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "common/error.hpp"
#include "common/log.hpp"

namespace alba {

namespace {
// Set while executing inside a pool worker; nested parallel_for calls run
// inline on the caller to avoid self-deadlock (a waiting worker would
// otherwise hold the only execution slot for its own sub-tasks).
thread_local bool t_in_worker = false;

// Keeps t_in_worker correct even when the task throws.
struct InWorkerScope {
  InWorkerScope() noexcept { t_in_worker = true; }
  ~InWorkerScope() { t_in_worker = false; }
  InWorkerScope(const InWorkerScope&) = delete;
  InWorkerScope& operator=(const InWorkerScope&) = delete;
};
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (joined_) return;
    stop_ = true;
    joined_ = true;  // claimed by this caller; concurrent shutdowns no-op
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stop_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const InWorkerScope scope;
    try {
      task();
    } catch (const std::exception& e) {
      // Fire-and-forget tasks have nowhere to rethrow to; dropping the
      // exception here keeps the worker (and the process) alive.
      ALBA_LOG(Warn) << "thread-pool task threw: " << e.what();
    } catch (...) {
      ALBA_LOG(Warn) << "thread-pool task threw a non-std exception";
    }
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      throw Error("ThreadPool::enqueue after shutdown: the workers are "
                  "joined and the task would never run");
    }
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for_chunked(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (stopped()) {
    throw Error("ThreadPool::parallel_for after shutdown: the workers are "
                "joined and the loop would never run");
  }
  const std::size_t nchunks = std::min(n, workers_.size());
  if (nchunks <= 1 || t_in_worker) {
    body(0, n);
    return;
  }

  // Completion latch + first-exception capture, shared by all chunks.
  struct State {
    std::mutex m;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::exception_ptr error;
  };
  State state;
  state.remaining = nchunks;

  const std::size_t chunk = (n + nchunks - 1) / nchunks;
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    enqueue([&state, &body, begin, end] {
      try {
        if (begin < end) body(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.m);
        if (!state.error) state.error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state.m);
      if (--state.remaining == 0) state.done_cv.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(state.m);
  state.done_cv.wait(lock, [&state] { return state.remaining == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(n, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("ALBA_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  global_pool().parallel_for(n, body);
}

}  // namespace alba
