#include "ml/gbm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <queue>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "linalg/ops.hpp"
#include "ml/compiled_tree.hpp"

namespace alba {

namespace {

// A growable leaf during leaf-wise construction.
struct LeafCandidate {
  int node = -1;               // index in nodes
  std::size_t begin = 0;       // index range into the shared index buffer
  std::size_t end = 0;
  int depth = 0;
  double gain = 0.0;           // best split gain found for this leaf
  std::size_t feature = 0;
  double threshold = 0.0;
  int bin = 0;                 // hist mode: split after this finite bin
  // Hist mode: this leaf's [feature][bin][count,grad,hess] histogram,
  // retained while the candidate waits in the heap so a split can derive
  // the larger child by sibling subtraction (shared_ptr because the
  // priority queue copies candidates).
  std::shared_ptr<std::vector<double>> hist;

  bool operator<(const LeafCandidate& other) const noexcept {
    return gain < other.gain;  // max-heap on gain
  }
};

double leaf_value(double sum_grad, double sum_hess, double lambda) noexcept {
  return -sum_grad / (sum_hess + lambda);
}

double split_score(double g, double h, double lambda) noexcept {
  return g * g / (h + lambda);
}

}  // namespace

double GbmClassifier::RegTree::predict(
    std::span<const double> row) const noexcept {
  int node = 0;
  for (;;) {
    const RegNode& cur = nodes[static_cast<std::size_t>(node)];
    if (cur.feature < 0) return cur.value;
    // Non-finite values route left, matching BinnedMatrix's bin 0 (the
    // leftmost bin) at training time.
    const double v = row[static_cast<std::size_t>(cur.feature)];
    node = split_routes_right(v, cur.threshold) ? cur.right : cur.left;
  }
}

GbmClassifier::GbmClassifier(GbmConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  ALBA_CHECK(config_.num_classes >= 2);
  ALBA_CHECK(config_.n_estimators >= 1);
  ALBA_CHECK(config_.num_leaves >= 2);
  ALBA_CHECK(config_.learning_rate > 0.0);
  ALBA_CHECK(config_.colsample_bytree > 0.0 && config_.colsample_bytree <= 1.0);
  ALBA_CHECK(config_.max_bins >= 2 && config_.max_bins <= BinnedMatrix::kMaxBins);
}

GbmClassifier::RegTree GbmClassifier::fit_tree(
    const Matrix& x, std::span<const double> grad,
    std::span<const double> hess,
    std::span<const std::size_t> feature_pool) const {
  const std::size_t n = x.rows();
  RegTree tree;

  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});

  // Finds the best split of [begin, end) and fills the candidate.
  auto evaluate_leaf = [&](LeafCandidate& cand) {
    cand.gain = 0.0;
    const std::size_t count = cand.end - cand.begin;
    if (count < 2 * static_cast<std::size_t>(config_.min_samples_leaf)) return;
    if (config_.max_depth >= 0 && cand.depth >= config_.max_depth) return;

    double g_total = 0.0;
    double h_total = 0.0;
    for (std::size_t i = cand.begin; i < cand.end; ++i) {
      g_total += grad[indices[i]];
      h_total += hess[indices[i]];
    }
    const double parent = split_score(g_total, h_total, config_.reg_lambda);

    std::vector<std::pair<double, std::size_t>> sorted(count);
    const auto min_leaf = static_cast<std::size_t>(config_.min_samples_leaf);
    for (const std::size_t f : feature_pool) {
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t row = indices[cand.begin + i];
        sorted[i] = {x(row, f), row};
      }
      // Non-finite values sort first as one equivalence class (they all
      // route left at predict time); the row tie-break keeps the order —
      // and thus the gradient scan — deterministic.
      std::sort(sorted.begin(), sorted.end(),
                [](const std::pair<double, std::size_t>& a,
                   const std::pair<double, std::size_t>& b) {
                  if (!exact_value_equal(a.first, b.first)) {
                    return exact_value_less(a.first, b.first);
                  }
                  return a.second < b.second;
                });
      if (exact_value_equal(sorted.front().first, sorted.back().first)) {
        continue;  // constant column
      }

      double g_left = 0.0;
      double h_left = 0.0;
      for (std::size_t i = 0; i + 1 < count; ++i) {
        g_left += grad[sorted[i].second];
        h_left += hess[sorted[i].second];
        const std::size_t n_left = i + 1;
        if (n_left < min_leaf || count - n_left < min_leaf) continue;
        if (exact_value_equal(sorted[i].first, sorted[i + 1].first)) continue;
        const double gain =
            split_score(g_left, h_left, config_.reg_lambda) +
            split_score(g_total - g_left, h_total - h_left,
                        config_.reg_lambda) -
            parent;
        if (gain > cand.gain) {
          cand.gain = gain;
          cand.feature = f;
          cand.threshold =
              exact_cut_threshold(sorted[i].first, sorted[i + 1].first);
        }
      }
    }
  };

  auto set_leaf_value = [&](int node, std::size_t begin, std::size_t end) {
    double g = 0.0;
    double h = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      g += grad[indices[i]];
      h += hess[indices[i]];
    }
    tree.nodes[static_cast<std::size_t>(node)].value =
        leaf_value(g, h, config_.reg_lambda);
  };

  tree.nodes.push_back(RegNode{});
  LeafCandidate root;
  root.node = 0;
  root.begin = 0;
  root.end = n;
  root.depth = 0;
  evaluate_leaf(root);

  std::priority_queue<LeafCandidate> heap;
  heap.push(root);
  int leaves = 1;

  while (!heap.empty() && leaves < config_.num_leaves) {
    LeafCandidate cand = heap.top();
    heap.pop();
    if (cand.gain <= config_.min_gain) {
      // Nothing useful to split: finalize as a leaf.
      set_leaf_value(cand.node, cand.begin, cand.end);
      continue;
    }

    // Partition the index range.
    const auto begin_it =
        indices.begin() + static_cast<std::ptrdiff_t>(cand.begin);
    const auto end_it = indices.begin() + static_cast<std::ptrdiff_t>(cand.end);
    const auto mid_it = std::partition(begin_it, end_it, [&](std::size_t i) {
      const double v = x(i, cand.feature);
      return v <= cand.threshold || !std::isfinite(v);
    });
    const std::size_t mid = static_cast<std::size_t>(mid_it - indices.begin());
    if (mid == cand.begin || mid == cand.end) {
      set_leaf_value(cand.node, cand.begin, cand.end);
      continue;
    }

    RegNode& parent = tree.nodes[static_cast<std::size_t>(cand.node)];
    parent.feature = static_cast<int>(cand.feature);
    parent.threshold = cand.threshold;
    parent.left = static_cast<int>(tree.nodes.size());
    parent.right = static_cast<int>(tree.nodes.size() + 1);
    tree.nodes.push_back(RegNode{});
    tree.nodes.push_back(RegNode{});
    ++leaves;

    LeafCandidate left;
    left.node = tree.nodes[static_cast<std::size_t>(cand.node)].left;
    left.begin = cand.begin;
    left.end = mid;
    left.depth = cand.depth + 1;
    evaluate_leaf(left);
    heap.push(left);

    LeafCandidate right;
    right.node = tree.nodes[static_cast<std::size_t>(cand.node)].right;
    right.begin = mid;
    right.end = cand.end;
    right.depth = cand.depth + 1;
    evaluate_leaf(right);
    heap.push(right);
  }

  // Assign values to every remaining leaf (walk the heap's leftovers plus
  // any node that stayed a leaf).
  // Re-derive leaf ranges: every node without children needs a value; the
  // heap holds exactly the unsplit candidates.
  while (!heap.empty()) {
    const LeafCandidate cand = heap.top();
    heap.pop();
    set_leaf_value(cand.node, cand.begin, cand.end);
  }
  return tree;
}

// Histogram variant of fit_tree: per-leaf split search scans bin
// histograms of (count, grad, hess) instead of sorting raw values, and
// when a leaf splits, the smaller child's histogram is accumulated from
// its rows while the larger child's is derived by sibling subtraction
// (parent − smaller). The feature pool is fixed per tree (colsample),
// so parent and child histograms always cover the same columns.
GbmClassifier::RegTree GbmClassifier::fit_tree_hist(
    const BinnedMatrix& binned, std::span<const double> grad,
    std::span<const double> hess,
    std::span<const std::size_t> feature_pool) const {
  const std::size_t n = binned.rows();
  // Per-feature histogram stride: max_bins bins × (count, grad, hess).
  // Following the configured bin budget (not kMaxBins) matters because a
  // histogram build zeroes pool × stride doubles per node — at the default
  // 256 bins that zeroing, not the fill, dominates training on deep trees.
  const std::size_t hist_stride =
      static_cast<std::size_t>(config_.max_bins) * 3;
  RegTree tree;

  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});

  auto build_hist = [&](std::size_t begin, std::size_t end,
                        std::vector<double>& hist) {
    hist.assign(feature_pool.size() * hist_stride, 0.0);
    for (std::size_t fi = 0; fi < feature_pool.size(); ++fi) {
      const std::uint8_t* codes = binned.column(feature_pool[fi]);
      double* h = hist.data() + fi * hist_stride;
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t row = indices[i];
        double* cell = h + static_cast<std::size_t>(codes[row]) * 3;
        cell[0] += 1.0;
        cell[1] += grad[row];
        cell[2] += hess[row];
      }
    }
  };

  // Scans `cand`'s histogram (building it first when the parent couldn't
  // hand one down) for the best cut point.
  auto evaluate_leaf = [&](LeafCandidate& cand,
                           std::shared_ptr<std::vector<double>> hist) {
    cand.gain = 0.0;
    const std::size_t count = cand.end - cand.begin;
    if (count < 2 * static_cast<std::size_t>(config_.min_samples_leaf)) return;
    if (config_.max_depth >= 0 && cand.depth >= config_.max_depth) return;

    if (!hist) {
      hist = std::make_shared<std::vector<double>>();
      build_hist(cand.begin, cand.end, *hist);
    }
    cand.hist = std::move(hist);

    double g_total = 0.0;
    double h_total = 0.0;
    for (std::size_t i = cand.begin; i < cand.end; ++i) {
      g_total += grad[indices[i]];
      h_total += hess[indices[i]];
    }
    const double parent = split_score(g_total, h_total, config_.reg_lambda);
    const auto min_leaf = static_cast<double>(config_.min_samples_leaf);

    for (std::size_t fi = 0; fi < feature_pool.size(); ++fi) {
      const std::size_t f = feature_pool[fi];
      const int nb = binned.num_bins(f);
      if (nb <= 2) continue;  // constant column
      const double* h = cand.hist->data() + fi * hist_stride;

      double c_left = 0.0;
      double g_left = 0.0;
      double h_left = 0.0;
      // Split after bin b: bins 0..b left, higher bins right — NaN (bin 0,
      // the leftmost) always rides with the left side, the same routing the
      // raw-value predicate `value <= threshold || !isfinite(value)` uses.
      // A cut at b == 0 separates the non-finite rows from every finite one
      // (threshold -inf).
      for (int b = 0; b + 1 < nb; ++b) {
        const double* cell = h + static_cast<std::size_t>(b) * 3;
        c_left += cell[0];
        g_left += cell[1];
        h_left += cell[2];
        if (cell[0] == 0.0) continue;  // same partition as previous cut
        if (c_left < min_leaf ||
            static_cast<double>(count) - c_left < min_leaf) {
          continue;
        }
        const double gain =
            split_score(g_left, h_left, config_.reg_lambda) +
            split_score(g_total - g_left, h_total - h_left,
                        config_.reg_lambda) -
            parent;
        if (gain > cand.gain) {
          cand.gain = gain;
          cand.feature = f;
          cand.bin = b;
          cand.threshold =
              b == 0 ? -std::numeric_limits<double>::infinity()
                     : binned.upper_edge(f, b);
        }
      }
    }
  };

  auto set_leaf_value = [&](int node, std::size_t begin, std::size_t end) {
    double g = 0.0;
    double h = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      g += grad[indices[i]];
      h += hess[indices[i]];
    }
    tree.nodes[static_cast<std::size_t>(node)].value =
        leaf_value(g, h, config_.reg_lambda);
  };

  tree.nodes.push_back(RegNode{});
  LeafCandidate root;
  root.node = 0;
  root.begin = 0;
  root.end = n;
  root.depth = 0;
  evaluate_leaf(root, nullptr);

  std::priority_queue<LeafCandidate> heap;
  heap.push(root);
  root.hist.reset();
  int leaves = 1;

  while (!heap.empty() && leaves < config_.num_leaves) {
    LeafCandidate cand = heap.top();
    heap.pop();
    if (cand.gain <= config_.min_gain) {
      set_leaf_value(cand.node, cand.begin, cand.end);
      continue;
    }

    // Partition the index range by bin code (NaN bin 0 goes left).
    const std::uint8_t* codes = binned.column(cand.feature);
    const auto begin_it =
        indices.begin() + static_cast<std::ptrdiff_t>(cand.begin);
    const auto end_it = indices.begin() + static_cast<std::ptrdiff_t>(cand.end);
    const auto mid_it = std::partition(begin_it, end_it, [&](std::size_t i) {
      return static_cast<int>(codes[i]) <= cand.bin;
    });
    const std::size_t mid = static_cast<std::size_t>(mid_it - indices.begin());
    if (mid == cand.begin || mid == cand.end) {
      set_leaf_value(cand.node, cand.begin, cand.end);
      continue;
    }

    RegNode& parent = tree.nodes[static_cast<std::size_t>(cand.node)];
    parent.feature = static_cast<int>(cand.feature);
    parent.threshold = cand.threshold;
    parent.left = static_cast<int>(tree.nodes.size());
    parent.right = static_cast<int>(tree.nodes.size() + 1);
    tree.nodes.push_back(RegNode{});
    tree.nodes.push_back(RegNode{});
    ++leaves;

    LeafCandidate left;
    left.node = tree.nodes[static_cast<std::size_t>(cand.node)].left;
    left.begin = cand.begin;
    left.end = mid;
    left.depth = cand.depth + 1;
    LeafCandidate right;
    right.node = tree.nodes[static_cast<std::size_t>(cand.node)].right;
    right.begin = mid;
    right.end = cand.end;
    right.depth = cand.depth + 1;

    // Sibling subtraction: accumulate the smaller child from its rows and
    // derive the larger child as parent − smaller, reusing the parent's
    // buffer (ours alone once popped from the heap).
    const bool left_smaller = (mid - cand.begin) * 2 <= (cand.end - cand.begin);
    LeafCandidate& small = left_smaller ? left : right;
    LeafCandidate& large = left_smaller ? right : left;
    std::shared_ptr<std::vector<double>> small_hist;
    std::shared_ptr<std::vector<double>> large_hist;
    if (cand.hist) {
      small_hist = std::make_shared<std::vector<double>>();
      build_hist(small.begin, small.end, *small_hist);
      large_hist = std::move(cand.hist);
      if (large_hist.use_count() > 1) {
        large_hist = std::make_shared<std::vector<double>>(*large_hist);
      }
      for (std::size_t i = 0; i < large_hist->size(); ++i) {
        (*large_hist)[i] -= (*small_hist)[i];
      }
    }
    evaluate_leaf(small, std::move(small_hist));
    evaluate_leaf(large, std::move(large_hist));
    heap.push(left);
    left.hist.reset();
    heap.push(right);
    right.hist.reset();
  }

  while (!heap.empty()) {
    const LeafCandidate cand = heap.top();
    heap.pop();
    set_leaf_value(cand.node, cand.begin, cand.end);
  }
  return tree;
}

void GbmClassifier::fit(const Matrix& x, std::span<const int> y) {
  ALBA_CHECK(x.rows() == y.size());
  ALBA_CHECK(x.rows() > 0);
  const std::size_t n = x.rows();
  const auto k = static_cast<std::size_t>(config_.num_classes);
  for (const int label : y) {
    ALBA_CHECK(label >= 0 && label < config_.num_classes);
  }

  rounds_.clear();
  compiled_.reset();
  // Base score: class-prior log-probabilities (clamped for empty classes).
  std::vector<double> prior(k, 0.0);
  for (const int label : y) prior[static_cast<std::size_t>(label)] += 1.0;
  base_score_.assign(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    const double p =
        std::max(prior[c] / static_cast<double>(n), 1e-6);
    base_score_[c] = std::log(p);
  }

  // raw[i][c] = current margin; updated additively each round.
  Matrix raw(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = raw.row(i);
    for (std::size_t c = 0; c < k; ++c) row[c] = base_score_[c];
  }

  Rng rng(seed_);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  Matrix probs;

  // Hist mode: quantize once, share the read-only view across every
  // boosting round and class tree.
  const BinnedMatrix binned = config_.split_algo == SplitAlgo::Hist
                                  ? BinnedMatrix(x, config_.max_bins)
                                  : BinnedMatrix();

  for (int round = 0; round < config_.n_estimators; ++round) {
    probs = raw;
    softmax_rows(probs);

    // Per-round column subsample, shared across the K class trees (the
    // colsample_bytree knob).
    std::vector<std::size_t> feature_pool;
    const std::size_t f_total = x.cols();
    const std::size_t f_take = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               config_.colsample_bytree * static_cast<double>(f_total))));
    if (f_take >= f_total) {
      feature_pool.resize(f_total);
      std::iota(feature_pool.begin(), feature_pool.end(), std::size_t{0});
    } else {
      feature_pool = rng.sample_without_replacement(f_total, f_take);
    }

    std::vector<RegTree> class_trees;
    class_trees.reserve(k);
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        const double p = probs(i, c);
        const double target =
            (static_cast<std::size_t>(y[i]) == c) ? 1.0 : 0.0;
        grad[i] = p - target;
        hess[i] = std::max(p * (1.0 - p), 1e-9);
      }
      RegTree tree = config_.split_algo == SplitAlgo::Hist
                         ? fit_tree_hist(binned, grad, hess, feature_pool)
                         : fit_tree(x, grad, hess, feature_pool);
      for (std::size_t i = 0; i < n; ++i) {
        raw(i, c) += config_.learning_rate * tree.predict(x.row(i));
      }
      class_trees.push_back(std::move(tree));
    }
    rounds_.push_back(std::move(class_trees));
  }
  compiled_ = CompiledTreePredictor::compile(*this);
}

Matrix GbmClassifier::predict_proba_reference(const Matrix& x) const {
  ALBA_CHECK(fitted()) << "predict before fit";
  const auto k = static_cast<std::size_t>(config_.num_classes);
  Matrix raw(x.rows(), k);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto row = raw.row(i);
    const auto features = x.row(i);
    for (std::size_t c = 0; c < k; ++c) {
      double margin = base_score_[c];
      for (const auto& round : rounds_) {
        margin += config_.learning_rate * round[c].predict(features);
      }
      row[c] = margin;
    }
  }
  softmax_rows(raw);
  return raw;
}

Matrix GbmClassifier::predict_proba(const Matrix& x) const {
  if (compiled_ == nullptr) return predict_proba_reference(x);
  Matrix out(x.rows(), static_cast<std::size_t>(config_.num_classes));
  global_pool().parallel_for_chunked(
      x.rows(), [&](std::size_t begin, std::size_t end) {
        compiled_->predict_range(x, begin, end, out);
      });
  return out;
}

void GbmClassifier::predict_proba_rows(const Matrix& x,
                                       std::span<const std::size_t> rows,
                                       Matrix& out) const {
  ALBA_CHECK(fitted()) << "predict before fit";
  const auto k = static_cast<std::size_t>(config_.num_classes);
  out.reshape(rows.size(), k);
  if (compiled_ != nullptr) {
    compiled_->predict_rows(x, rows, out);
    return;
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto row = out.row(i);
    const auto features = x.row(rows[i]);
    for (std::size_t c = 0; c < k; ++c) {
      double margin = base_score_[c];
      for (const auto& round : rounds_) {
        margin += config_.learning_rate * round[c].predict(features);
      }
      row[c] = margin;
    }
    softmax(row);
  }
}

std::unique_ptr<Classifier> GbmClassifier::clone() const {
  return std::make_unique<GbmClassifier>(config_, seed_);
}

void GbmClassifier::restore(std::vector<std::vector<RegTree>> rounds,
                            std::vector<double> base_score) {
  ALBA_CHECK(!rounds.empty());
  ALBA_CHECK(base_score.size() ==
             static_cast<std::size_t>(config_.num_classes));
  for (const auto& round : rounds) {
    ALBA_CHECK(round.size() == base_score.size())
        << "round has " << round.size() << " trees, expected "
        << base_score.size();
  }
  rounds_ = std::move(rounds);
  base_score_ = std::move(base_score);
  compiled_ = CompiledTreePredictor::compile(*this);
}

}  // namespace alba
