// Frozen model bundles — the deployable artifact the paper's conclusion
// implies but the offline harness never produced. save_classifier alone is
// not a deployable model: diagnosing a raw telemetry window also needs the
// Min-Max scaler parameters, the chi-square-selected column set, the label
// names, and the feature configuration (registry shape, preprocessing,
// extractor) that were in effect at train time. A ModelBundle freezes all
// of that into one versioned archive (ArchiveWriter framing, own magic) so
// the serving layer can reconstruct the exact training-time pipeline.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "ml/classifier.hpp"

namespace alba {

struct ModelBundle {
  // How to turn one raw window into the training-time feature space.
  FeatureConfig features;
  // The usable training columns ("metric|feature"), i.e. the projection
  // target for freshly extracted windows (columns dropped at train time
  // are simply never produced again).
  std::vector<std::string> feature_names;
  // Min-Max parameters over feature_names, fitted on the train partition.
  std::vector<double> scaler_mins;
  std::vector<double> scaler_maxs;
  // Chi-square-selected columns: indices into feature_names in score order
  // (the model's input column order), plus their names for integrity
  // checks and reporting.
  std::vector<int> selected;
  std::vector<std::string> selected_names;
  // Class id -> human-readable anomaly name.
  std::vector<std::string> label_names;
  // The fitted classifier; owned.
  std::unique_ptr<Classifier> model;

  /// Width of the model's input (= selected.size()).
  std::size_t input_columns() const noexcept { return selected.size(); }
};

/// Freezes a trained model together with the transforms `prepare_split`
/// fitted for this split. The classifier is deep-copied (via its archive
/// form), so the bundle outlives the learner. Throws when the model is
/// unfitted or the split's transforms don't match the data's feature space.
ModelBundle make_model_bundle(const ExperimentData& data,
                              const PreparedSplit& split,
                              const Classifier& model);

void save_model_bundle(std::ostream& out, const ModelBundle& bundle);

/// Reads and validates a bundle: magic/version, internal shape consistency
/// (scaler width, selected indices in range, selected names matching), and
/// label count against the embedded model. Throws alba::Error on any
/// mismatch — a loaded bundle is ready to serve.
ModelBundle load_model_bundle(std::istream& in);

/// The one-call training-side export: freeze and write to `path`.
void export_model_bundle(const std::string& path, const ExperimentData& data,
                         const PreparedSplit& split, const Classifier& model);

/// Writes to `path + ".tmp"` and atomically renames into place, so a crash
/// mid-save never leaves a torn archive at `path` (hot-reload loads from
/// it). File-IO failures throw alba::Error carrying strerror(errno).
void save_model_bundle_file(const std::string& path,
                            const ModelBundle& bundle);
ModelBundle load_model_bundle_file(const std::string& path);

}  // namespace alba
