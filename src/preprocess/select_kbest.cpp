#include "preprocess/select_kbest.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "stats/chi2.hpp"

namespace alba {

void SelectKBestChi2::fit(const Matrix& x, std::span<const int> y) {
  ALBA_CHECK(k_ > 0) << "SelectKBest with k = 0";
  scores_ = stats::chi2_scores(x, y);

  std::vector<std::size_t> order(scores_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return scores_[a] > scores_[b];
                   });
  order.resize(std::min(k_, order.size()));
  selected_ = std::move(order);
}

Matrix SelectKBestChi2::transform(const Matrix& x) const {
  ALBA_CHECK(fitted()) << "SelectKBest::transform before fit";
  ALBA_CHECK(x.cols() == scores_.size())
      << "selector fitted on " << scores_.size() << " columns, got " << x.cols();
  return x.select_cols(selected_);
}

std::vector<std::string> SelectKBestChi2::transform_names(
    const std::vector<std::string>& names) const {
  ALBA_CHECK(fitted());
  ALBA_CHECK(names.size() == scores_.size());
  std::vector<std::string> out;
  out.reserve(selected_.size());
  for (const std::size_t j : selected_) out.push_back(names[j]);
  return out;
}

}  // namespace alba
