#include "ml/compiled_tree.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "linalg/ops.hpp"
#include "ml/binning.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbm.hpp"
#include "ml/random_forest.hpp"

namespace alba {

namespace {

// Rows per block: 64 payload slots and one code column per used feature
// keep the whole working set (codes + SoA nodes) L1/L2-resident while
// amortizing the binning pass across every tree of the ensemble.
constexpr std::size_t kBlockRows = 64;

// Crossover between the small-batch threshold kernel and the binned block
// path. The threshold kernel wins while the per-call binning cost (U used
// features × one lower-bound each) dwarfs the traversal work it can
// share. On serving-shaped ensembles (tens of trees — the bench_serving
// latency sweep) that holds through mid-teens batches; very large
// ensembles amortize binning across trees instead and cross by batch ~2
// (the bench_micro_ml batch sweep records both curves), which is what the
// ALBA_SMALL_BATCH_CUTOFF override is for.
constexpr std::size_t kDefaultSmallBatchCutoff = 16;

std::size_t cutoff_from_env() noexcept {
  const char* env = std::getenv("ALBA_SMALL_BATCH_CUTOFF");
  if (env == nullptr || *env == '\0') return kDefaultSmallBatchCutoff;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return kDefaultSmallBatchCutoff;
  return static_cast<std::size_t>(
      std::min<unsigned long long>(v, std::numeric_limits<std::size_t>::max()));
}

std::atomic<std::size_t>& cutoff_atomic() noexcept {
  static std::atomic<std::size_t> cutoff{cutoff_from_env()};
  return cutoff;
}

// Per-thread scratch for the block path's code columns, reused across
// calls so steady-state prediction never allocates — a malloc per serving
// request is latency the small-batch work just removed elsewhere.
struct BlockArena {
  std::vector<std::uint8_t> codes8;
  std::vector<std::uint16_t> codes16;
};

BlockArena& block_arena() noexcept {
  thread_local BlockArena arena;
  return arena;
}

// Rank of `v` against the ascending cut table: the number of cuts strictly
// below v. Non-finite values take rank 0 so they ride left at every split
// (every bin index is >= 0), matching the raw-value rule
// `v <= t || !isfinite(v)`. The lower-bound advance is forced branchless
// with mask arithmetic — a ternary here compiles to a data-dependent
// branch that mispredicts ~50% on quantile cuts and costs 5x the whole
// search. NaN comparisons are quiet and always false, so the scan itself
// needs no guard; the final mask zeroes the rank for +inf (which would
// otherwise outrank every cut).
template <typename CodeT>
inline CodeT code_of(double v, const double* cuts, std::size_t m) noexcept {
  if (m == 0) return 0;
  std::size_t lo = 0, n = m;
  while (n > 1) {
    const std::size_t half = n >> 1;
    lo += half & (0 - static_cast<std::size_t>(cuts[lo + half - 1] < v));
    n -= half;
  }
  const std::size_t code =
      lo + static_cast<std::size_t>(cuts[lo] < v);
  return static_cast<CodeT>(
      code & (0 - static_cast<std::size_t>(std::isfinite(v))));
}

// Eight ranks against one shared cut table in lockstep. All eight
// searches take identical trip counts (they depend only on m), so the
// load-compare chains interleave in the out-of-order window instead of
// serializing — the binning phase is latency-bound, not throughput-bound.
template <typename CodeT>
inline void code_of8(const double* v, const double* cuts, std::size_t m,
                     CodeT* out) noexcept {
  std::size_t l[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t n = m;
  while (n > 1) {
    const std::size_t half = n >> 1;
    for (int j = 0; j < 8; ++j) {
      l[j] +=
          half & (0 - static_cast<std::size_t>(cuts[l[j] + half - 1] < v[j]));
    }
    n -= half;
  }
  for (int j = 0; j < 8; ++j) {
    const std::size_t code =
        l[j] + static_cast<std::size_t>(cuts[l[j]] < v[j]);
    out[j] = static_cast<CodeT>(
        code & (0 - static_cast<std::size_t>(std::isfinite(v[j]))));
  }
}

}  // namespace

std::shared_ptr<const CompiledTreePredictor> CompiledTreePredictor::build(
    Kind kind, int num_classes, double scale, std::vector<double> base,
    const std::vector<std::vector<BuildNode>>& trees,
    std::vector<double> leaf_values, std::vector<std::int32_t> tree_class) {
  if (trees.empty() || num_classes < 2) return nullptr;
  for (const auto& t : trees) {
    if (t.empty()) return nullptr;
  }
  constexpr std::size_t kMaxIndex =
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max());
  if (leaf_values.size() > kMaxIndex) return nullptr;

  // Per-feature sorted-unique threshold tables from the thresholds the
  // trees actually store (works for Exact- and Hist-trained models alike).
  std::vector<std::pair<int, double>> ft;
  std::size_t total_nodes = 0;
  for (const auto& t : trees) {
    total_nodes += t.size();
    for (const BuildNode& n : t) {
      if (n.feature < 0) continue;
      if (std::isnan(n.threshold)) return nullptr;
      ft.emplace_back(n.feature, n.threshold);
    }
  }
  if (total_nodes > kMaxIndex) return nullptr;
  std::sort(ft.begin(), ft.end());
  ft.erase(std::unique(ft.begin(), ft.end()), ft.end());

  auto p = std::make_shared<CompiledTreePredictor>();
  p->kind_ = kind;
  p->num_classes_ = num_classes;
  p->scale_ = scale;
  p->base_ = std::move(base);
  p->leaf_values_ = std::move(leaf_values);
  p->tree_class_ = std::move(tree_class);

  int max_feature = -1;
  for (const auto& [f, t] : ft) {
    if (p->slot_feature_.empty() ||
        p->slot_feature_.back() != static_cast<std::uint32_t>(f)) {
      p->slot_feature_.push_back(static_cast<std::uint32_t>(f));
      p->cut_offset_.push_back(p->cuts_.size());
    }
    p->cuts_.push_back(t);
    max_feature = std::max(max_feature, f);
  }
  p->cut_offset_.push_back(p->cuts_.size());
  p->min_features_ = static_cast<std::size_t>(max_feature + 1);

  // Codes are uint8 unless some feature carries more than 255 distinct
  // thresholds (never the case for Hist-trained models); past 65535 the
  // bin field itself would overflow and the caller falls back.
  for (std::size_t u = 0; u + 1 < p->cut_offset_.size(); ++u) {
    const std::size_t m = p->cut_offset_[u + 1] - p->cut_offset_[u];
    if (m > 65535) return nullptr;
    if (m > 255) p->wide_codes_ = true;
  }

  std::vector<std::int32_t> slot_of(
      static_cast<std::size_t>(max_feature + 1), -1);
  for (std::size_t u = 0; u < p->slot_feature_.size(); ++u) {
    slot_of[p->slot_feature_[u]] = static_cast<std::int32_t>(u);
  }

  // Lower each tree in BFS order so siblings land adjacent (right child =
  // left child + 1) and the traversal step needs no branch.
  p->feat_.reserve(total_nodes);
  p->bin_.reserve(total_nodes);
  p->thresh_.reserve(total_nodes);
  p->child_.reserve(total_nodes);
  std::vector<int> order;
  for (const auto& src : trees) {
    const std::size_t base_idx = p->feat_.size();
    p->tree_root_.push_back(base_idx);
    order.clear();
    order.push_back(0);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const BuildNode& n = src[static_cast<std::size_t>(order[i])];
      if (n.feature < 0) {
        p->feat_.push_back(-1);
        p->bin_.push_back(0);
        p->thresh_.push_back(0.0);
        p->child_.push_back(n.payload);
        continue;
      }
      if (n.left < 0 || n.right < 0) return nullptr;  // malformed
      const std::int32_t slot = slot_of[static_cast<std::size_t>(n.feature)];
      const double* cb = p->cuts_.data() + p->cut_offset_[
          static_cast<std::size_t>(slot)];
      const std::size_t m =
          p->cut_offset_[static_cast<std::size_t>(slot) + 1] -
          p->cut_offset_[static_cast<std::size_t>(slot)];
      const std::size_t bin = static_cast<std::size_t>(
          std::lower_bound(cb, cb + m, n.threshold) - cb);
      ALBA_DCHECK(bin < m && cb[bin] == n.threshold);
      const std::size_t left_new = base_idx + order.size();
      order.push_back(n.left);
      order.push_back(n.right);
      p->feat_.push_back(slot);
      p->bin_.push_back(static_cast<std::uint16_t>(bin));
      p->thresh_.push_back(n.threshold);
      p->child_.push_back(static_cast<std::int32_t>(left_new));
    }
  }
  return p;
}

std::shared_ptr<const CompiledTreePredictor> CompiledTreePredictor::compile(
    const DecisionTree& tree) {
  if (!tree.fitted()) return nullptr;
  std::vector<std::vector<BuildNode>> trees(1);
  trees[0].reserve(tree.nodes().size());
  for (const DecisionTree::Node& n : tree.nodes()) {
    BuildNode b;
    b.feature = n.feature;
    b.threshold = n.threshold;
    b.left = n.left;
    b.right = n.right;
    b.payload = n.leaf_start;
    trees[0].push_back(b);
  }
  return build(Kind::Average, tree.num_classes(), 1.0, {}, trees,
               tree.leaf_probs(), {});
}

std::shared_ptr<const CompiledTreePredictor> CompiledTreePredictor::compile(
    const RandomForest& forest) {
  if (!forest.fitted()) return nullptr;
  const auto& src = forest.trees();
  std::vector<std::vector<BuildNode>> trees(src.size());
  std::vector<double> leaf_values;
  for (std::size_t t = 0; t < src.size(); ++t) {
    if (!src[t].fitted()) return nullptr;
    const auto offset = static_cast<std::size_t>(leaf_values.size());
    if (offset + src[t].leaf_probs().size() >
        static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
      return nullptr;
    }
    leaf_values.insert(leaf_values.end(), src[t].leaf_probs().begin(),
                       src[t].leaf_probs().end());
    trees[t].reserve(src[t].nodes().size());
    for (const DecisionTree::Node& n : src[t].nodes()) {
      BuildNode b;
      b.feature = n.feature;
      b.threshold = n.threshold;
      b.left = n.left;
      b.right = n.right;
      b.payload = n.feature < 0 ? static_cast<std::int32_t>(offset) +
                                      n.leaf_start
                                : 0;
      trees[t].push_back(b);
    }
  }
  // Matches the reference accumulation: sum per-tree leaf distributions in
  // tree order, then scale by 1/T.
  return build(Kind::Average, forest.num_classes(),
               1.0 / static_cast<double>(src.size()), {}, trees,
               std::move(leaf_values), {});
}

std::shared_ptr<const CompiledTreePredictor> CompiledTreePredictor::compile(
    const GbmClassifier& gbm) {
  if (!gbm.fitted()) return nullptr;
  const auto k = static_cast<std::size_t>(gbm.num_classes());
  std::vector<std::vector<BuildNode>> trees;
  std::vector<std::int32_t> tree_class;
  std::vector<double> leaf_values;
  // Round-major, class-inner order: each (row, class) margin accumulates
  // its rounds in exactly the reference's sequence.
  for (const auto& round : gbm.rounds()) {
    if (round.size() != k) return nullptr;
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<BuildNode> out;
      out.reserve(round[c].nodes.size());
      for (const GbmClassifier::RegNode& n : round[c].nodes) {
        BuildNode b;
        b.feature = n.feature;
        b.threshold = n.threshold;
        b.left = n.left;
        b.right = n.right;
        if (n.feature < 0) {
          if (leaf_values.size() >= static_cast<std::size_t>(
                                        std::numeric_limits<std::int32_t>::max())) {
            return nullptr;
          }
          b.payload = static_cast<std::int32_t>(leaf_values.size());
          leaf_values.push_back(n.value);
        }
        out.push_back(b);
      }
      trees.push_back(std::move(out));
      tree_class.push_back(static_cast<std::int32_t>(c));
    }
  }
  return build(Kind::Boosted, gbm.num_classes(), gbm.config().learning_rate,
               gbm.base_score(), trees, std::move(leaf_values),
               std::move(tree_class));
}

std::size_t CompiledTreePredictor::small_batch_cutoff() noexcept {
  return cutoff_atomic().load(std::memory_order_relaxed);
}

std::size_t CompiledTreePredictor::set_small_batch_cutoff(
    std::size_t cutoff) noexcept {
  return cutoff_atomic().exchange(cutoff, std::memory_order_relaxed);
}

void CompiledTreePredictor::reload_small_batch_cutoff_from_env() {
  cutoff_atomic().store(cutoff_from_env(), std::memory_order_relaxed);
}

void CompiledTreePredictor::run_small(const double* const* rowp,
                                      double* const* outp,
                                      std::size_t b) const {
  const auto k = static_cast<std::size_t>(num_classes_);
  const std::int32_t* feat = feat_.data();
  const double* thresh = thresh_.data();
  const std::int32_t* child = child_.data();
  const std::uint32_t* slot_col = slot_feature_.data();

  // One traversal touches only the ~depth features on its taken path, read
  // straight from the caller's row — no binning pass, no scratch. The
  // routing predicate is the shared split_routes_right, so this reaches
  // exactly the leaf the code-based step `child + (code > bin)` reaches.
  //
  // A single walk is a serial dependent-load chain (feat → column → row
  // value → compare → child) the core cannot overlap, so trees are walked
  // in interleaved groups of kLanes: independent chains fill the load
  // ports the way the block path's 8-row lockstep does for large batches.
  // Leaves land in `payload` per tree and are accumulated afterwards in
  // tree order, so probabilities stay bit-identical to the block path and
  // the object walk.
  constexpr std::size_t kLanes = 8;
  const std::size_t num_trees = tree_root_.size();

  for (std::size_t r = 0; r < b; ++r) {
    const double* row = rowp[r];
    double* o = outp[r];
    if (kind_ == Kind::Average) {
      std::fill_n(o, k, 0.0);
    } else {
      std::copy_n(base_.data(), k, o);
    }
    for (std::size_t t0 = 0; t0 < num_trees; t0 += kLanes) {
      const std::size_t g = std::min(kLanes, num_trees - t0);
      std::size_t node[kLanes];
      std::int32_t cur[kLanes];
      for (std::size_t i = 0; i < g; ++i) {
        node[i] = tree_root_[t0 + i];
        cur[i] = feat[node[i]];
      }
      bool active = true;
      while (active) {
        active = false;
        for (std::size_t i = 0; i < g; ++i) {
          if (cur[i] >= 0) {
            const double v = row[slot_col[cur[i]]];
            node[i] =
                static_cast<std::size_t>(child[node[i]]) +
                static_cast<std::size_t>(split_routes_right(v, thresh[node[i]]));
            cur[i] = feat[node[i]];
            active |= cur[i] >= 0;
          }
        }
      }
      // Accumulate in reference order — per-tree adds in tree order — so
      // floating-point summation matches the reference bit for bit.
      if (kind_ == Kind::Average) {
        for (std::size_t i = 0; i < g; ++i) {
          const double* lv =
              leaf_values_.data() + static_cast<std::size_t>(child[node[i]]);
          for (std::size_t c = 0; c < k; ++c) o[c] += lv[c];
        }
      } else {
        for (std::size_t i = 0; i < g; ++i) {
          o[static_cast<std::size_t>(tree_class_[t0 + i])] +=
              scale_ *
              leaf_values_[static_cast<std::size_t>(child[node[i]])];
        }
      }
    }
    if (kind_ == Kind::Average) {
      for (std::size_t c = 0; c < k; ++c) o[c] *= scale_;
    } else {
      softmax(std::span<double>(o, k));
    }
  }
}

template <typename CodeT>
void CompiledTreePredictor::run_block(const double* const* rowp,
                                      double* const* outp, std::size_t b,
                                      CodeT* codes,
                                      std::int32_t* leaf_payload) const {
  const auto k = static_cast<std::size_t>(num_classes_);
  const std::size_t U = slot_feature_.size();

  // Phase 1 — bin the block once, shared by every tree. Feature-outer so
  // each feature's cut table stays L1-resident across all rows of the
  // block (row-outer would re-stream every cut table per row), while the
  // block's x cache lines stay hot across adjacent features. Codes land
  // column-major (one span of b codes per used feature) so the traversal's
  // neighboring rows read from the same cache line.
  double colv[kBlockRows];
  for (std::size_t u = 0; u < U; ++u) {
    const double* cuts = cuts_.data() + cut_offset_[u];
    const std::size_t m = cut_offset_[u + 1] - cut_offset_[u];
    const std::size_t col = slot_feature_[u];
    CodeT* cc = codes + u * b;
    for (std::size_t i = 0; i < b; ++i) colv[i] = rowp[i][col];
    std::size_t i = 0;
    for (; i + 8 <= b; i += 8) code_of8<CodeT>(colv + i, cuts, m, cc + i);
    for (; i < b; ++i) cc[i] = code_of<CodeT>(colv[i], cuts, m);
  }

  // Phase 2 — initialize accumulators.
  if (kind_ == Kind::Average) {
    for (std::size_t i = 0; i < b; ++i) std::fill_n(outp[i], k, 0.0);
  } else {
    for (std::size_t i = 0; i < b; ++i) {
      std::copy_n(base_.data(), k, outp[i]);
    }
  }

  // Phase 3 — traverse every tree over the block, four rows in lockstep.
  const std::int32_t* feat = feat_.data();
  const std::uint16_t* bin = bin_.data();
  const std::int32_t* child = child_.data();
  for (std::size_t t = 0; t < tree_root_.size(); ++t) {
    const std::size_t root = tree_root_[t];
    // Advance one cursor: finished rows (leaf, feat < 0) stay put; live
    // rows jump to child + (code > bin). The clamped feature index keeps
    // the (discarded) code load in bounds for finished rows. Mask
    // arithmetic instead of ternaries: rows finish at unpredictable
    // depths, so a conditional select here would mispredict.
    const auto step = [&](std::size_t n, std::int32_t f,
                          std::size_t i) noexcept {
      const auto done =
          static_cast<std::size_t>(static_cast<std::int64_t>(f) >> 63);
      const auto fi = static_cast<std::size_t>(f) & ~done;
      const std::size_t taken =
          static_cast<std::size_t>(child[n]) +
          static_cast<std::size_t>(codes[fi * b + i] > bin[n]);
      return (n & done) | (taken & ~done);
    };
    std::size_t i = 0;
    for (; i + 8 <= b; i += 8) {
      std::size_t n[8];
      for (int j = 0; j < 8; ++j) n[j] = root;
      for (;;) {
        std::int32_t f[8];
        for (int j = 0; j < 8; ++j) f[j] = feat[n[j]];
        // Sign bits AND together: negative only when all eight hit leaves.
        if ((f[0] & f[1] & f[2] & f[3] & f[4] & f[5] & f[6] & f[7]) < 0) {
          break;
        }
        for (int j = 0; j < 8; ++j) {
          n[j] = step(n[j], f[j], i + static_cast<std::size_t>(j));
        }
      }
      for (int j = 0; j < 8; ++j) {
        leaf_payload[i + static_cast<std::size_t>(j)] = child[n[j]];
      }
    }
    for (; i < b; ++i) {
      std::size_t n = root;
      while (feat[n] >= 0) n = step(n, feat[n], i);
      leaf_payload[i] = child[n];
    }

    if (kind_ == Kind::Average) {
      for (std::size_t r = 0; r < b; ++r) {
        const double* lv =
            leaf_values_.data() + static_cast<std::size_t>(leaf_payload[r]);
        double* o = outp[r];
        for (std::size_t c = 0; c < k; ++c) o[c] += lv[c];
      }
    } else {
      const auto c = static_cast<std::size_t>(tree_class_[t]);
      for (std::size_t r = 0; r < b; ++r) {
        outp[r][c] +=
            scale_ *
            leaf_values_[static_cast<std::size_t>(leaf_payload[r])];
      }
    }
  }

  // Phase 4 — finalize exactly as the reference does: mean for Average
  // (scale_ = 1/T), per-row softmax over margins for Boosted.
  if (kind_ == Kind::Average) {
    for (std::size_t r = 0; r < b; ++r) {
      double* o = outp[r];
      for (std::size_t c = 0; c < k; ++c) o[c] *= scale_;
    }
  } else {
    for (std::size_t r = 0; r < b; ++r) {
      softmax(std::span<double>(outp[r], k));
    }
  }
}

void CompiledTreePredictor::predict_dispatch(const Matrix& x,
                                             const std::size_t* xrow_ids,
                                             std::size_t xrow_first,
                                             std::size_t n, Matrix& out,
                                             std::size_t out_first) const {
  const auto k = static_cast<std::size_t>(num_classes_);
  ALBA_CHECK(out.cols() == k);
  ALBA_CHECK(out_first + n <= out.rows());
  if (n == 0) return;
  ALBA_CHECK(x.cols() >= min_features_)
      << "input has " << x.cols() << " features, model needs "
      << min_features_;

  const std::size_t cols = x.cols();
  const double* rowp[kBlockRows];
  double* outp[kBlockRows];
  const bool small = n <= small_batch_cutoff();

  std::int32_t leaf_payload[kBlockRows];
  std::uint8_t* codes8 = nullptr;
  std::uint16_t* codes16 = nullptr;
  if (!small) {
    // Grow-only per-thread arena: the block path's code columns are
    // reused across calls so steady-state prediction never allocates.
    const std::size_t need =
        std::max<std::size_t>(1, slot_feature_.size()) * kBlockRows;
    BlockArena& arena = block_arena();
    if (wide_codes_) {
      if (arena.codes16.size() < need) arena.codes16.resize(need);
      codes16 = arena.codes16.data();
    } else {
      if (arena.codes8.size() < need) arena.codes8.resize(need);
      codes8 = arena.codes8.data();
    }
  }

  for (std::size_t done = 0; done < n; done += kBlockRows) {
    const std::size_t b = std::min(kBlockRows, n - done);
    for (std::size_t j = 0; j < b; ++j) {
      const std::size_t r =
          xrow_ids != nullptr ? xrow_ids[done + j] : xrow_first + done + j;
      ALBA_DCHECK(r < x.rows());
      rowp[j] = x.data() + r * cols;
      outp[j] = out.data() + (out_first + done + j) * k;
    }
    if (small) {
      run_small(rowp, outp, b);
    } else if (wide_codes_) {
      run_block<std::uint16_t>(rowp, outp, b, codes16, leaf_payload);
    } else {
      run_block<std::uint8_t>(rowp, outp, b, codes8, leaf_payload);
    }
  }
}

void CompiledTreePredictor::predict_range(const Matrix& x, std::size_t begin,
                                          std::size_t end, Matrix& out) const {
  ALBA_CHECK(begin <= end && end <= x.rows());
  ALBA_CHECK(out.rows() == x.rows());
  predict_dispatch(x, nullptr, begin, end - begin, out, begin);
}

void CompiledTreePredictor::predict_rows(const Matrix& x,
                                         std::span<const std::size_t> rows,
                                         Matrix& out) const {
  ALBA_CHECK(out.rows() == rows.size());
  predict_dispatch(x, rows.data(), 0, rows.size(), out, 0);
}

}  // namespace alba
