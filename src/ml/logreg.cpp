#include "ml/logreg.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/ops.hpp"

namespace alba {

LogisticRegression::LogisticRegression(LogRegConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  ALBA_CHECK(config_.num_classes >= 2);
  ALBA_CHECK(config_.c > 0.0);
  ALBA_CHECK(config_.max_iter >= 1);
  ALBA_CHECK(config_.learning_rate > 0.0);
}

void LogisticRegression::fit(const Matrix& x, std::span<const int> y) {
  ALBA_CHECK(x.rows() == y.size());
  ALBA_CHECK(x.rows() > 0);
  const std::size_t n = x.rows();
  const std::size_t f = x.cols();
  const auto k = static_cast<std::size_t>(config_.num_classes);
  for (const int label : y) {
    ALBA_CHECK(label >= 0 && label < config_.num_classes);
  }

  weights_ = Matrix(k, f, 0.0);
  bias_.assign(k, 0.0);

  // Adam state.
  Matrix m_w(k, f, 0.0);
  Matrix v_w(k, f, 0.0);
  std::vector<double> m_b(k, 0.0);
  std::vector<double> v_b(k, 0.0);
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;

  const double reg = 1.0 / (config_.c * static_cast<double>(n));
  Matrix probs;        // n × k
  Matrix grad_w;       // k × f

  for (int step = 1; step <= config_.max_iter; ++step) {
    // probs = softmax(X Wᵀ + b)
    gemm_bt(x, weights_, probs);
    for (std::size_t i = 0; i < n; ++i) {
      auto row = probs.row(i);
      for (std::size_t c = 0; c < k; ++c) row[c] += bias_[c];
    }
    softmax_rows(probs);

    // residual = probs - onehot(y); grad_w = residualᵀ X / n.
    for (std::size_t i = 0; i < n; ++i) {
      probs(i, static_cast<std::size_t>(y[i])) -= 1.0;
    }
    gemm_at(probs, x, grad_w);  // residualᵀ (n×k)ᵀ · X (n×f) → k×f

    const double inv_n = 1.0 / static_cast<double>(n);
    double max_grad = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      double gb = 0.0;
      for (std::size_t i = 0; i < n; ++i) gb += probs(i, c);
      gb *= inv_n;
      auto gw = grad_w.row(c);
      auto w = weights_.row(c);
      for (std::size_t j = 0; j < f; ++j) {
        double g = gw[j] * inv_n;
        if (config_.penalty == Penalty::L2) g += reg * w[j];
        gw[j] = g;
        max_grad = std::max(max_grad, std::abs(g));

        // Adam update.
        m_w(c, j) = kBeta1 * m_w(c, j) + (1.0 - kBeta1) * g;
        v_w(c, j) = kBeta2 * v_w(c, j) + (1.0 - kBeta2) * g * g;
        const double mhat = m_w(c, j) / (1.0 - std::pow(kBeta1, step));
        const double vhat = v_w(c, j) / (1.0 - std::pow(kBeta2, step));
        w[j] -= config_.learning_rate * mhat / (std::sqrt(vhat) + kEps);

        if (config_.penalty == Penalty::L1) {
          // Proximal step: soft-threshold toward zero.
          const double thresh = config_.learning_rate * reg;
          if (w[j] > thresh) {
            w[j] -= thresh;
          } else if (w[j] < -thresh) {
            w[j] += thresh;
          } else {
            w[j] = 0.0;
          }
        }
      }

      m_b[c] = kBeta1 * m_b[c] + (1.0 - kBeta1) * gb;
      v_b[c] = kBeta2 * v_b[c] + (1.0 - kBeta2) * gb * gb;
      const double mhat = m_b[c] / (1.0 - std::pow(kBeta1, step));
      const double vhat = v_b[c] / (1.0 - std::pow(kBeta2, step));
      bias_[c] -= config_.learning_rate * mhat / (std::sqrt(vhat) + kEps);
      max_grad = std::max(max_grad, std::abs(gb));
    }
    if (max_grad < config_.tol) break;
  }
}

Matrix LogisticRegression::predict_proba(const Matrix& x) const {
  ALBA_CHECK(fitted()) << "predict before fit";
  ALBA_CHECK(x.cols() == weights_.cols())
      << "model fitted on " << weights_.cols() << " features, got " << x.cols();
  Matrix raw;
  gemm_bt(x, weights_, raw);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto row = raw.row(i);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += bias_[c];
  }
  softmax_rows(raw);
  return raw;
}

void LogisticRegression::predict_proba_rows(const Matrix& x,
                                            std::span<const std::size_t> rows,
                                            Matrix& out) const {
  ALBA_CHECK(fitted()) << "predict before fit";
  ALBA_CHECK(x.cols() == weights_.cols())
      << "model fitted on " << weights_.cols() << " features, got " << x.cols();
  const auto k = weights_.rows();
  out.reshape(rows.size(), k);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto features = x.row(rows[i]);
    auto row = out.row(i);
    // Same accumulation order as the gemm_bt row kernel, so probabilities
    // are bit-identical to the full-matrix predict_proba path.
    for (std::size_t c = 0; c < k; ++c) {
      row[c] = dot(features, weights_.row(c)) + bias_[c];
    }
    softmax(row);
  }
}

std::unique_ptr<Classifier> LogisticRegression::clone() const {
  return std::make_unique<LogisticRegression>(config_, seed_);
}

std::size_t LogisticRegression::zero_weight_count() const noexcept {
  std::size_t count = 0;
  for (std::size_t c = 0; c < weights_.rows(); ++c) {
    for (const double w : weights_.row(c)) count += (w == 0.0) ? 1 : 0;
  }
  return count;
}

void LogisticRegression::restore(Matrix weights, std::vector<double> bias) {
  ALBA_CHECK(weights.rows() == bias.size());
  weights_ = std::move(weights);
  bias_ = std::move(bias);
}

}  // namespace alba
