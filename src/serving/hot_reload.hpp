// Probe-validated construction of a DiagnosisService from an incoming
// ModelBundle — the validation half of hot reload. ServiceHost owns the
// atomic swap; this unit owns the question "is this bundle safe to swap
// in?": the archive must load, the service must construct (every selected
// feature resolvable against the bundle's own registry/extractor config),
// and every probe window must produce a well-formed diagnosis (finite
// probabilities over the advertised label set, summing to ~1). A bundle
// that fails any step never becomes a service, so the host's rollback is
// simply "keep the pointer it already has".
#pragma once

#include <memory>
#include <span>
#include <string>

#include "linalg/matrix.hpp"
#include "serving/diagnosis_service.hpp"

namespace alba {

/// What one reload attempt did. `ok` is the only success flag; on failure
/// `error` names the failing stage and `rolled_back` reports whether a
/// previous service kept serving (filled by ServiceHost).
struct ReloadReport {
  bool ok = false;
  bool rolled_back = false;
  std::size_t probes_run = 0;
  std::uint64_t generation = 0;  // host's bundle generation after the attempt
  std::string error;

  std::string summary() const;
};

/// Builds a service from `bundle` and validates it against every probe
/// window. Returns the ready-to-swap service, or nullptr with
/// `report.error` set (report.ok mirrors the return). An empty probe set
/// skips the probe stage (construction-time validation still applies).
std::shared_ptr<DiagnosisService> build_validated_service(
    ModelBundle bundle, const ServingConfig& config,
    std::span<const Matrix> probes, ReloadReport& report);

/// Like build_validated_service but starting from a bundle file — the
/// hot-reload entry point. Load failures (missing file, poisoned archive)
/// land in `report.error` instead of throwing.
std::shared_ptr<DiagnosisService> load_validated_service(
    const std::string& path, const ServingConfig& config,
    std::span<const Matrix> probes, ReloadReport& report);

}  // namespace alba
