file(REMOVE_RECURSE
  "CMakeFiles/alba_core.dir/core/config.cpp.o"
  "CMakeFiles/alba_core.dir/core/config.cpp.o.d"
  "CMakeFiles/alba_core.dir/core/dataset_io.cpp.o"
  "CMakeFiles/alba_core.dir/core/dataset_io.cpp.o.d"
  "CMakeFiles/alba_core.dir/core/experiments.cpp.o"
  "CMakeFiles/alba_core.dir/core/experiments.cpp.o.d"
  "CMakeFiles/alba_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/alba_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/alba_core.dir/core/proctor.cpp.o"
  "CMakeFiles/alba_core.dir/core/proctor.cpp.o.d"
  "CMakeFiles/alba_core.dir/core/report.cpp.o"
  "CMakeFiles/alba_core.dir/core/report.cpp.o.d"
  "libalba_core.a"
  "libalba_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alba_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
