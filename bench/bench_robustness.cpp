// Ablation (extension beyond the paper): degraded telemetry. The paper's
// pipeline sees cleanly collected LDMS data; production collectors deliver
// metric dropouts, stuck samplers, NaN bursts, counter resets, stalled rows
// and truncated runs. This bench sweeps the fault-injection intensity
// (multiples of the `production_faults()` base rates) against the
// uncertainty strategy and the random baseline, quantifying how much label
// budget dirty telemetry costs. Optionally compounds a noisy oracle on top
// (--oracle-error). Writes the F1-vs-labels degradation curves and each
// dataset's DataQualityReport as CSV.
#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "ml/grid_search.hpp"

using namespace alba;
using namespace alba::bench;

int main(int argc, char** argv) {
  BenchFlags flags;
  flags.queries = 80;
  flags.repeats = 2;
  double oracle_error = 0.0;
  Cli cli("bench_robustness",
          "Ablation — telemetry fault intensity vs diagnosis quality");
  add_standard_flags(cli, flags);
  cli.flag("oracle-error", &oracle_error,
           "oracle wrong-label probability on top of the telemetry faults");
  cli.parse(argc, argv);
  apply_logging(flags);

  std::printf(
      "=== Ablation: degraded telemetry (Volta, oracle error %.0f%%) ===\n",
      100.0 * oracle_error);

  const std::vector<double> intensities{0.0, 0.5, 1.0, 2.0};
  const std::vector<QueryStrategy> strategies{QueryStrategy::Uncertainty,
                                              QueryStrategy::Random};

  CsvWriter curves(flags.out_dir + "/robustness_degraded_curves.csv");
  curves.write_header(
      {"intensity", "strategy", "queries", "f1_mean", "f1_lo", "f1_hi"});
  std::ofstream quality_os(flags.out_dir + "/robustness_degraded_quality.csv");
  quality_os << data_quality_csv_header() << '\n';

  TextTable table({"fault intensity", "strategy", "labels to F1>=0.90",
                   "final F1", "quarantined metrics", "rows dropped"});

  for (const double intensity : intensities) {
    DatasetConfig cfg = volta_config(flags.full);
    cfg.seed = flags.seed;
    cfg.faults = production_faults().scaled(intensity);
    const ExperimentData data = build_experiment_data(cfg);
    quality_os << data_quality_csv_row(strformat("%.2g", intensity),
                                       data.quality)
               << '\n';

    for (const QueryStrategy strategy : strategies) {
      std::vector<QueryCurve> repeats;
      for (int r = 0; r < flags.repeats; ++r) {
        const ALSetup setup = standard_setup(data, flags.seed + 100u * r);
        ActiveLearnerConfig lcfg;
        lcfg.strategy = strategy;
        lcfg.max_queries = flags.queries;
        lcfg.seed = flags.seed + r;
        ActiveLearner learner(
            make_model_factory("rf", kNumClasses, flags.seed + r)(
                table4_optimum("rf", false)),
            lcfg);
        LabelOracle oracle(setup.pool_y, kNumClasses, oracle_error,
                           flags.seed ^ (0xFA17ED + r));
        repeats.push_back(learner
                              .run(setup.seed, setup.pool_x, oracle,
                                   setup.pool_app, setup.test_x, setup.test_y)
                              .curve);
      }
      const AggregatedCurve agg = aggregate_curves(repeats);
      for (std::size_t i = 0; i < agg.queries.size(); ++i) {
        curves.write_row({strformat("%.2g", intensity),
                          std::string(strategy_name(strategy)),
                          strformat("%d", agg.queries[i]),
                          strformat("%.6f", agg.f1_mean[i]),
                          strformat("%.6f", agg.f1_lo[i]),
                          strformat("%.6f", agg.f1_hi[i])});
      }
      table.add_row({strformat("%.2gx", intensity),
                     std::string(strategy_name(strategy)),
                     strformat("%d", queries_to_reach(agg, 0.90)),
                     strformat("%.3f", agg.f1_mean.back()),
                     strformat("%zu", data.quality.metrics_quarantined),
                     strformat("%zu", data.quality.rows_dropped)});
      std::printf("  intensity %.2gx / %s done\n", intensity,
                  std::string(strategy_name(strategy)).c_str());
    }
  }

  std::printf("\n%s", table.render().c_str());
  std::printf("\ncurves CSV:  %s\nquality CSV: %s\n", curves.path().c_str(),
              (flags.out_dir + "/robustness_degraded_quality.csv").c_str());
  return 0;
}
