#include "stats/regression.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace alba::stats {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

LinearTrend linear_trend(std::span<const double> y) noexcept {
  LinearTrend out;
  const std::size_t n = y.size();
  if (n < 2) {
    out.slope = out.intercept = out.rvalue = out.stderr_ = kNaN;
    return out;
  }

  const double tn = static_cast<double>(n);
  const double t_mean = (tn - 1.0) / 2.0;
  const double y_mean = mean(y);

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dt = static_cast<double>(i) - t_mean;
    const double dy = y[i] - y_mean;
    sxx += dt * dt;
    sxy += dt * dy;
    syy += dy * dy;
  }

  out.slope = sxy / sxx;
  out.intercept = y_mean - out.slope * t_mean;
  if (syy < 1e-300) {
    out.rvalue = 0.0;
    out.stderr_ = 0.0;
    return out;
  }
  out.rvalue = sxy / std::sqrt(sxx * syy);
  if (n > 2) {
    const double sse = syy - out.slope * sxy;
    out.stderr_ = std::sqrt(std::max(0.0, sse / (tn - 2.0)) / sxx);
  } else {
    out.stderr_ = 0.0;
  }
  return out;
}

double pearson(std::span<const double> a, std::span<const double> b) noexcept {
  ALBA_DCHECK(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return kNaN;
  const double ma = mean(a);
  const double mb = mean(b);
  double saa = 0.0;
  double sbb = 0.0;
  double sab = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa < 1e-300 || sbb < 1e-300) return kNaN;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace alba::stats
