// Stratified splitting utilities: stratified train/test split (the paper
// repeats it 5 times so every figure carries a confidence band) and
// stratified k-fold for cross-validated grid search.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"

namespace alba {

struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified shuffle split: each class contributes ~test_fraction of its
/// samples to the test set (at least 1 when the class has >= 2 samples).
SplitIndices stratified_split(std::span<const int> labels, double test_fraction,
                              std::uint64_t seed);

/// Stratified k-fold: returns `folds` (train, test) index pairs whose test
/// sets partition the dataset with per-class balance.
std::vector<SplitIndices> stratified_kfold(std::span<const int> labels,
                                           std::size_t folds,
                                           std::uint64_t seed);

/// Per-class sample counts (index = class label).
std::vector<std::size_t> class_counts(std::span<const int> labels);

}  // namespace alba
