// Tests for the telemetry substrate: metric registry, application models,
// node simulator, and the run generator / collection plan.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "stats/descriptive.hpp"
#include "telemetry/run_generator.hpp"

namespace alba {
namespace {

RegistryConfig small_registry() {
  RegistryConfig cfg;
  cfg.cores = 2;
  cfg.nics = 1;
  cfg.filler_gauges = 1;
  return cfg;
}

NodeSimConfig short_sim() {
  NodeSimConfig cfg;
  cfg.duration_steps = 48;
  cfg.ramp_steps = 4;
  cfg.drain_steps = 4;
  return cfg;
}

// ------------------------------------------------------------- registry ---

TEST(Registry, HasAllSubsystems) {
  const MetricRegistry reg(SystemKind::Volta, small_registry());
  std::set<Subsystem> subsystems;
  for (const auto& m : reg.metrics()) subsystems.insert(m.subsystem);
  EXPECT_EQ(subsystems.size(), 6u);
}

TEST(Registry, MetricNamesUnique) {
  const MetricRegistry reg(SystemKind::Eclipse, RegistryConfig{});
  std::set<std::string> names;
  for (const auto& m : reg.metrics()) names.insert(m.name);
  EXPECT_EQ(names.size(), reg.size());
}

TEST(Registry, CoreCountControlsSize) {
  RegistryConfig a = small_registry();
  RegistryConfig b = small_registry();
  b.cores = 10;
  const MetricRegistry ra(SystemKind::Volta, a);
  const MetricRegistry rb(SystemKind::Volta, b);
  EXPECT_EQ(rb.size() - ra.size(), 8u * 3u);  // 3 metrics per extra core
}

TEST(Registry, IndexOfFindsAndThrows) {
  const MetricRegistry reg(SystemKind::Volta, small_registry());
  const std::size_t idx = reg.index_of("cray.power");
  EXPECT_EQ(reg.metric(idx).name, "cray.power");
  EXPECT_THROW(reg.index_of("does.not.exist"), Error);
}

TEST(Registry, MemCapacityMatchesSystems) {
  EXPECT_DOUBLE_EQ(
      MetricRegistry(SystemKind::Volta, small_registry()).mem_capacity_gb(),
      64.0);
  EXPECT_DOUBLE_EQ(
      MetricRegistry(SystemKind::Eclipse, small_registry()).mem_capacity_gb(),
      128.0);
}

// ------------------------------------------------------------ app model ---

TEST(AppModel, CatalogsMatchPaper) {
  EXPECT_EQ(volta_applications().size(), 11u);   // Table I
  EXPECT_EQ(eclipse_applications().size(), 6u);  // Table II
  std::set<std::string> volta_names;
  for (const auto& app : volta_applications()) volta_names.insert(app.name);
  for (const char* name : {"BT", "CG", "FT", "LU", "MG", "SP", "MiniMD",
                           "CoMD", "MiniGhost", "MiniAMR", "Kripke"}) {
    EXPECT_TRUE(volta_names.count(name)) << name;
  }
  std::set<std::string> eclipse_names;
  for (const auto& app : eclipse_applications()) eclipse_names.insert(app.name);
  for (const char* name :
       {"LAMMPS", "HACC", "sw4", "ExaMiniMD", "SWFFT", "sw4lite"}) {
    EXPECT_TRUE(eclipse_names.count(name)) << name;
  }
}

TEST(AppModel, PhaseDurationsRoughlyNormalized) {
  for (const auto& app : volta_applications()) {
    double total = 0.0;
    for (const auto& p : app.phases) total += p.duration_frac;
    EXPECT_NEAR(total, 1.0, 0.05) << app.name;
  }
}

TEST(AppModel, InputDeckZeroIsBaseline) {
  const InputDeck deck = make_input_deck(3, 0);
  EXPECT_DOUBLE_EQ(deck.period_scale, 1.0);
  EXPECT_DOUBLE_EQ(deck.level_scale, 1.0);
  EXPECT_DOUBLE_EQ(deck.mem_scale, 1.0);
}

TEST(AppModel, InputDecksDeterministicAndDistinct) {
  const InputDeck a1 = make_input_deck(2, 1);
  const InputDeck a2 = make_input_deck(2, 1);
  EXPECT_DOUBLE_EQ(a1.period_scale, a2.period_scale);
  const InputDeck b = make_input_deck(2, 2);
  EXPECT_NE(a1.period_scale, b.period_scale);
  const InputDeck other_app = make_input_deck(3, 1);
  EXPECT_NE(a1.period_scale, other_app.period_scale);
}

TEST(AppModel, SignatureLoadCyclesThroughPhases) {
  const auto apps = volta_applications();
  const AppSignature& ft = apps[2];  // FT: 3 phases with distinct net levels
  const InputDeck deck = make_input_deck(2, 0);
  std::set<long> distinct_net;
  for (double t = 0.0; t < ft.period_seconds; t += 0.5) {
    const PhaseLoad load = signature_load_at(ft, deck, t, 0.0);
    distinct_net.insert(std::lround(load.net / 10.0));
  }
  EXPECT_GE(distinct_net.size(), 2u);
}

TEST(AppModel, LoadsStayInBounds) {
  const auto apps = volta_applications();
  for (const auto& app : apps) {
    for (int input = 0; input < 3; ++input) {
      const InputDeck deck = make_input_deck(0, input);
      for (double t = 0.0; t < 60.0; t += 1.7) {
        const PhaseLoad load = signature_load_at(app, deck, t, 0.3);
        EXPECT_GE(load.cpu_user, 0.0);
        EXPECT_LE(load.cpu_user, 1.0);
        EXPECT_GE(load.cache_miss, 0.0);
        EXPECT_LE(load.cache_miss, 1.0);
        EXPECT_GE(load.net, 0.0);
      }
    }
  }
}

// ------------------------------------------------------------- node sim ---

class NodeSimTest : public ::testing::Test {
 protected:
  NodeSimTest()
      : registry_(SystemKind::Volta, small_registry()),
        sim_(registry_, short_sim()),
        apps_(volta_applications()) {}

  MetricRegistry registry_;
  NodeSimulator sim_;
  std::vector<AppSignature> apps_;
};

TEST_F(NodeSimTest, OutputShape) {
  Rng rng(1);
  const Matrix series =
      sim_.simulate(apps_[0], make_input_deck(0, 0), 0, nullptr, rng);
  EXPECT_EQ(series.rows(), 48u);
  EXPECT_EQ(series.cols(), registry_.size());
}

TEST_F(NodeSimTest, DeterministicForSameSeed) {
  Rng r1(9);
  Rng r2(9);
  const Matrix a = sim_.simulate(apps_[1], make_input_deck(1, 0), 0, nullptr, r1);
  const Matrix b = sim_.simulate(apps_[1], make_input_deck(1, 0), 0, nullptr, r2);
  for (std::size_t t = 0; t < a.rows(); ++t) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (std::isnan(a(t, j))) {
        EXPECT_TRUE(std::isnan(b(t, j)));
      } else {
        EXPECT_DOUBLE_EQ(a(t, j), b(t, j));
      }
    }
  }
}

TEST_F(NodeSimTest, CountersAreMonotone) {
  NodeSimConfig cfg = short_sim();
  cfg.missing_prob = 0.0;  // NaNs would break direct monotonicity checks
  const NodeSimulator sim(registry_, cfg);
  Rng rng(5);
  const Matrix series =
      sim.simulate(apps_[0], make_input_deck(0, 0), 0, nullptr, rng);
  for (std::size_t j = 0; j < registry_.size(); ++j) {
    if (registry_.metric(j).kind != MetricKind::Counter) continue;
    for (std::size_t t = 1; t < series.rows(); ++t) {
      EXPECT_GE(series(t, j), series(t - 1, j))
          << registry_.metric(j).name << " at t=" << t;
    }
  }
}

TEST_F(NodeSimTest, MissingRateNearConfigured) {
  NodeSimConfig cfg = short_sim();
  cfg.missing_prob = 0.05;
  cfg.duration_steps = 200;
  const NodeSimulator sim(registry_, cfg);
  Rng rng(6);
  const Matrix series =
      sim.simulate(apps_[0], make_input_deck(0, 0), 0, nullptr, rng);
  std::size_t missing = 0;
  for (std::size_t t = 0; t < series.rows(); ++t) {
    for (std::size_t j = 0; j < series.cols(); ++j) {
      missing += std::isnan(series(t, j)) ? 1 : 0;
    }
  }
  const double rate =
      static_cast<double>(missing) / static_cast<double>(series.size());
  EXPECT_NEAR(rate, 0.05, 0.01);
}

TEST_F(NodeSimTest, MemLeakRaisesMemoryTrend) {
  Rng r1(7);
  Rng r2(7);
  const auto injector = make_injector(AnomalyType::MemLeak, 1.0);
  const Matrix healthy =
      sim_.simulate(apps_[0], make_input_deck(0, 0), 0, nullptr, r1);
  const Matrix leaky =
      sim_.simulate(apps_[0], make_input_deck(0, 0), 0, injector.get(), r2);
  const std::size_t mem_idx = registry_.index_of("meminfo.Active");
  // Compare second-half means (leak accumulates late).
  auto late_mean = [&](const Matrix& m) {
    double acc = 0.0;
    int n = 0;
    for (std::size_t t = m.rows() / 2; t + 4 < m.rows(); ++t) {
      if (!std::isnan(m(t, mem_idx))) {
        acc += m(t, mem_idx);
        ++n;
      }
    }
    return acc / n;
  };
  EXPECT_GT(late_mean(leaky), late_mean(healthy) * 1.2);
}

TEST_F(NodeSimTest, TransientsRampActivity) {
  NodeSimConfig cfg = short_sim();
  cfg.missing_prob = 0.0;
  const NodeSimulator sim(registry_, cfg);
  Rng rng(8);
  const Matrix series =
      sim.simulate(apps_[0], make_input_deck(0, 0), 0, nullptr, rng);
  const std::size_t power_idx = registry_.index_of("cray.power");
  // First sample (deep in ramp) draws less power than the run interior.
  double interior = 0.0;
  for (std::size_t t = 10; t < 40; ++t) interior += series(t, power_idx);
  interior /= 30.0;
  EXPECT_LT(series(0, power_idx), interior);
}

// -------------------------------------------------------- run generator ---

TEST(RunGenerator, AnomalyOnFirstNodeOnly) {
  RunGenerator gen(SystemKind::Volta, small_registry(), short_sim());
  RunSpec spec;
  spec.app_id = 0;
  spec.nodes = 4;
  spec.anomaly = AnomalyType::CacheCopy;
  spec.intensity = 0.5;
  spec.seed = 77;
  const auto samples = gen.generate_run(spec);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].label, AnomalyType::CacheCopy);
  for (std::size_t n = 1; n < 4; ++n) {
    EXPECT_EQ(samples[n].label, AnomalyType::Healthy);
    EXPECT_EQ(samples[n].node_index, static_cast<int>(n));
  }
}

TEST(RunGenerator, RejectsBadSpecs) {
  RunGenerator gen(SystemKind::Volta, small_registry(), short_sim());
  RunSpec bad_app;
  bad_app.app_id = 99;
  EXPECT_THROW(gen.generate_run(bad_app), Error);
  RunSpec no_intensity;
  no_intensity.anomaly = AnomalyType::MemBw;
  no_intensity.intensity = 0.0;
  EXPECT_THROW(gen.generate_run(no_intensity), Error);
}

TEST(RunGenerator, BatchGenerationDeterministic) {
  RunGenerator gen(SystemKind::Volta, small_registry(), short_sim());
  CollectionPlan plan;
  plan.nodes_per_run = 2;
  plan.intensities_per_type = 1;
  plan.anomaly_ratio = 0.3;
  const auto specs = make_collection_specs(SystemKind::Volta, 2, 1, plan);
  const auto s1 = gen.generate(specs);
  const auto s2 = gen.generate(specs);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].label, s2[i].label);
    EXPECT_DOUBLE_EQ(s1[i].series(10, 3), s2[i].series(10, 3));
  }
}

TEST(CollectionPlan, AnomalyRatioRespected) {
  CollectionPlan plan;
  plan.nodes_per_run = 4;
  plan.intensities_per_type = 2;
  plan.anomaly_ratio = 0.10;
  const auto specs = make_collection_specs(SystemKind::Volta, 11, 3, plan);
  std::size_t anomalous = 0;
  std::size_t total = 0;
  for (const auto& spec : specs) {
    total += static_cast<std::size_t>(spec.nodes);
    anomalous += (spec.anomaly != AnomalyType::Healthy) ? 1 : 0;
  }
  const double ratio = static_cast<double>(anomalous) / static_cast<double>(total);
  EXPECT_NEAR(ratio, 0.10, 0.015);
}

TEST(CollectionPlan, CoversAllTypesAndApps) {
  CollectionPlan plan;
  plan.intensities_per_type = 1;
  const auto specs = make_collection_specs(SystemKind::Eclipse, 6, 3, plan);
  std::set<std::pair<int, int>> app_type;
  for (const auto& spec : specs) {
    if (spec.anomaly != AnomalyType::Healthy) {
      app_type.insert({spec.app_id, static_cast<int>(spec.anomaly)});
    }
  }
  EXPECT_EQ(app_type.size(), 6u * 5u);  // every (app, type) pair present
}


TEST(NodeScaling, DeckShiftsWithNodeCount) {
  const InputDeck base = make_input_deck(0, 0);
  const InputDeck four = scale_deck_for_nodes(base, 4);
  const InputDeck sixteen = scale_deck_for_nodes(base, 16);
  // 4 nodes is the reference scale.
  EXPECT_DOUBLE_EQ(four.net_scale, base.net_scale);
  EXPECT_DOUBLE_EQ(four.mem_scale, base.mem_scale);
  // More nodes: more per-node communication, smaller per-node working set.
  EXPECT_GT(sixteen.net_scale, base.net_scale);
  EXPECT_LT(sixteen.mem_scale, base.mem_scale);
  EXPECT_THROW(scale_deck_for_nodes(base, 0), Error);
}

TEST(CollectionPlan, NodeCountsOverrideFixedSize) {
  CollectionPlan plan;
  plan.intensities_per_type = 1;
  plan.node_counts = {4, 8, 16};
  const auto specs = make_collection_specs(SystemKind::Eclipse, 2, 1, plan);
  std::set<int> seen;
  for (const auto& spec : specs) seen.insert(spec.nodes);
  EXPECT_EQ(seen, (std::set<int>{4, 8, 16}));
  // Every (app, type, node count) combination collected.
  std::set<std::tuple<int, int, int>> cells;
  for (const auto& spec : specs) {
    if (spec.anomaly != AnomalyType::Healthy) {
      cells.insert({spec.app_id, static_cast<int>(spec.anomaly), spec.nodes});
    }
  }
  EXPECT_EQ(cells.size(), 2u * 5u * 3u);
}

TEST(BackgroundInterference, WidensHealthyDistribution) {
  RegistryConfig reg_cfg;
  reg_cfg.cores = 2;
  reg_cfg.nics = 1;
  reg_cfg.filler_gauges = 1;
  NodeSimConfig quiet_cfg;
  quiet_cfg.duration_steps = 120;
  quiet_cfg.missing_prob = 0.0;
  NodeSimConfig noisy_cfg = quiet_cfg;
  noisy_cfg.background_level = 0.8;

  const MetricRegistry registry(SystemKind::Eclipse, reg_cfg);
  const NodeSimulator quiet(registry, quiet_cfg);
  const NodeSimulator noisy(registry, noisy_cfg);
  const auto apps = eclipse_applications();
  const InputDeck deck = make_input_deck(0, 0);
  const std::size_t power_idx = registry.index_of("cray.power");

  // Spread of run-level power means across many healthy runs.
  auto mean_power_spread = [&](const NodeSimulator& sim) {
    std::vector<double> means;
    for (int r = 0; r < 12; ++r) {
      Rng rng(100 + static_cast<std::uint64_t>(r));
      const Matrix series = sim.simulate(apps[0], deck, 0, nullptr, rng);
      double acc = 0.0;
      for (std::size_t t = 0; t < series.rows(); ++t) {
        acc += series(t, power_idx);
      }
      means.push_back(acc / static_cast<double>(series.rows()));
    }
    return stats::stddev(means);
  };
  EXPECT_GT(mean_power_spread(noisy), 2.0 * mean_power_spread(quiet));
}

TEST(CollectionPlan, FullGridWhenZero) {
  CollectionPlan plan;
  plan.intensities_per_type = 0;
  const auto specs = make_collection_specs(SystemKind::Volta, 1, 1, plan);
  std::set<double> intensities;
  for (const auto& spec : specs) {
    if (spec.anomaly == AnomalyType::CpuOccupy) {
      intensities.insert(spec.intensity);
    }
  }
  EXPECT_EQ(intensities.size(), 6u);  // the full Volta grid
}

}  // namespace
}  // namespace alba
