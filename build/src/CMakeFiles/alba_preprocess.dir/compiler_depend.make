# Empty compiler generated dependencies file for alba_preprocess.
# This may be replaced when dependencies are built.
