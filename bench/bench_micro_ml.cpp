// Microbenchmarks for the ML layer: classifier fit/predict cost at the
// shapes the active learning loop actually uses (a few hundred labeled
// samples × a few hundred selected features), chi-square selection, and
// query-strategy scoring over a pool.
#include <benchmark/benchmark.h>

#include "active/strategy.hpp"
#include "common/rng.hpp"
#include "ml/gbm.hpp"
#include "ml/logreg.hpp"
#include "ml/random_forest.hpp"
#include "preprocess/select_kbest.hpp"

namespace {

using namespace alba;

struct Synth {
  Matrix x;
  std::vector<int> y;
};

Synth make_synth(std::size_t n, std::size_t f, int classes,
                 std::uint64_t seed) {
  Rng rng(seed);
  Synth s;
  s.x = Matrix(n, f);
  for (std::size_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(i % static_cast<std::size_t>(classes));
    s.y.push_back(c);
    for (std::size_t j = 0; j < f; ++j) {
      const double signal = (j % static_cast<std::size_t>(classes) ==
                             static_cast<std::size_t>(c))
                                ? 0.6
                                : 0.0;
      s.x(i, j) = std::min(1.0, std::max(0.0, signal + 0.2 * rng.uniform()));
    }
  }
  return s;
}

void BM_RandomForestFit(benchmark::State& state) {
  const Synth s = make_synth(static_cast<std::size_t>(state.range(0)), 500, 6, 1);
  ForestConfig cfg;
  cfg.num_classes = 6;
  cfg.n_estimators = 20;
  cfg.max_depth = 8;
  for (auto _ : state) {
    RandomForest rf(cfg, 1);
    rf.fit(s.x, s.y);
    benchmark::DoNotOptimize(rf.trees().size());
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(60)->Arg(300);

void BM_RandomForestPredictPool(benchmark::State& state) {
  const Synth train = make_synth(300, 500, 6, 2);
  const Synth pool = make_synth(static_cast<std::size_t>(state.range(0)), 500, 6, 3);
  ForestConfig cfg;
  cfg.num_classes = 6;
  cfg.n_estimators = 20;
  cfg.max_depth = 8;
  RandomForest rf(cfg, 1);
  rf.fit(train.x, train.y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf.predict_proba(pool.x));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RandomForestPredictPool)->Arg(500)->Arg(2500);

void BM_GbmFit(benchmark::State& state) {
  const Synth s = make_synth(static_cast<std::size_t>(state.range(0)), 200, 6, 4);
  GbmConfig cfg;
  cfg.num_classes = 6;
  cfg.n_estimators = 20;
  cfg.num_leaves = 31;
  for (auto _ : state) {
    GbmClassifier gbm(cfg, 1);
    gbm.fit(s.x, s.y);
    benchmark::DoNotOptimize(gbm.num_rounds());
  }
}
BENCHMARK(BM_GbmFit)->Arg(60)->Arg(300);

void BM_LogRegFit(benchmark::State& state) {
  const Synth s = make_synth(static_cast<std::size_t>(state.range(0)), 500, 6, 5);
  LogRegConfig cfg;
  cfg.num_classes = 6;
  cfg.max_iter = 100;
  for (auto _ : state) {
    LogisticRegression lr(cfg, 1);
    lr.fit(s.x, s.y);
    benchmark::DoNotOptimize(lr.bias().data());
  }
}
BENCHMARK(BM_LogRegFit)->Arg(60)->Arg(300);

void BM_Chi2SelectKBest(benchmark::State& state) {
  const Synth s =
      make_synth(1000, static_cast<std::size_t>(state.range(0)), 6, 6);
  for (auto _ : state) {
    SelectKBestChi2 selector(500);
    selector.fit(s.x, s.y);
    benchmark::DoNotOptimize(selector.selected_indices().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Chi2SelectKBest)->Arg(2000)->Arg(8000);

void BM_QueryStrategyScan(benchmark::State& state) {
  Rng rng(7);
  Matrix probs(static_cast<std::size_t>(state.range(0)), 6);
  for (std::size_t i = 0; i < probs.rows(); ++i) {
    auto row = probs.row(i);
    double sum = 0.0;
    for (auto& p : row) {
      p = rng.uniform();
      sum += p;
    }
    for (auto& p : row) p /= sum;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(select_query(QueryStrategy::Margin, probs, {},
                                          probs.rows(), 0, 0, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QueryStrategyScan)->Arg(1000)->Arg(10000);

}  // namespace
