#include "core/pipeline.hpp"

#include <algorithm>
#include <map>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "preprocess/scalers.hpp"

namespace alba {

ExperimentData build_experiment_data(const DatasetConfig& config) {
  Timer timer;
  RunGenerator generator(config.system, config.registry, config.sim,
                         config.faults);
  const std::size_t num_apps =
      config.num_apps == 0
          ? generator.apps().size()
          : std::min(config.num_apps, generator.apps().size());

  const auto specs = make_collection_specs(config.system, num_apps,
                                           config.inputs_per_app, config.plan);
  const auto samples = generator.generate(specs);
  ALBA_LOG(Info) << "generated " << samples.size() << " samples from "
                 << specs.size() << " runs on " << system_name(config.system)
                 << " (" << generator.registry().size() << " metrics) in "
                 << static_cast<int>(timer.seconds()) << "s";

  timer.reset();
  const auto extractor = make_extractor(config.extractor);
  ExperimentData data;
  if (config.faults.enabled()) {
    // Degraded telemetry: robust extraction with per-metric quarantine
    // (including the constant-column criterion, which would misfire on
    // clean data's genuinely idle counters).
    for (const Sample& s : samples) data.quality.add(s.faults);
    PreprocessConfig preprocess = config.preprocess;
    preprocess.quarantine_constant = true;
    ExtractionQuality extraction_quality;
    data.features =
        extract_features_robust(samples, generator.registry(), *extractor,
                                preprocess, extraction_quality);
    data.quality.add(extraction_quality);
  } else {
    data.features = extract_features(samples, generator.registry(), *extractor,
                                     config.preprocess);
  }
  const std::size_t dropped = drop_unusable_columns(data.features);
  data.quality.columns_dropped = dropped;
  ALBA_LOG(Info) << extractor->name() << " extraction: "
                 << data.features.num_features() << " usable features ("
                 << dropped << " dropped) in "
                 << static_cast<int>(timer.seconds()) << "s";
  if (config.faults.enabled()) {
    ALBA_LOG(Info) << "data quality: " << format_data_quality(data.quality);
  }

  for (std::size_t a = 0; a < num_apps; ++a) {
    data.app_names.push_back(generator.apps()[a].name);
  }
  data.num_apps = num_apps;
  data.inputs_per_app = config.inputs_per_app;
  data.config = config;
  return data;
}

SplitIndices make_split(const ExperimentData& data, double test_fraction,
                        std::uint64_t seed) {
  return stratified_split(data.features.labels, test_fraction, seed);
}

PreparedSplit prepare_split(const ExperimentData& data,
                            const SplitIndices& split, std::size_t select_k) {
  ALBA_CHECK(!split.train.empty() && !split.test.empty());
  const FeatureMatrix& fm = data.features;

  PreparedSplit out;
  Matrix train_x = fm.x.select_rows(split.train);
  Matrix test_x = fm.x.select_rows(split.test);
  for (const std::size_t i : split.train) {
    out.train_y.push_back(fm.labels[i]);
    out.train_app.push_back(fm.app_ids[i]);
    out.train_input.push_back(fm.input_ids[i]);
  }
  for (const std::size_t i : split.test) {
    out.test_y.push_back(fm.labels[i]);
    out.test_app.push_back(fm.app_ids[i]);
    out.test_input.push_back(fm.input_ids[i]);
  }

  // Min-Max scaling fitted on the training partition (keeps features
  // non-negative for chi-square), then top-k chi-square selection. Both
  // stay fitted in the returned split so export/serving code can freeze
  // them rather than refit.
  out.scaler.fit(train_x);
  out.scaler.transform(train_x);
  out.scaler.transform(test_x);

  out.selector = SelectKBestChi2(std::min(select_k, train_x.cols()));
  out.selector.fit(train_x, out.train_y);
  out.train_x = out.selector.transform(train_x);
  out.test_x = out.selector.transform(test_x);
  out.selected_names = out.selector.transform_names(fm.names);
  out.degenerate_columns = out.selector.degenerate_skipped();
  return out;
}

ALSetup make_al_setup(const PreparedSplit& split, std::uint64_t seed,
                      std::span<const int> seed_apps) {
  Rng rng(seed);
  const std::size_t n = split.train_x.rows();

  auto seed_allowed = [&](int app) {
    if (seed_apps.empty()) return true;
    return std::find(seed_apps.begin(), seed_apps.end(), app) !=
           seed_apps.end();
  };

  // Candidate rows per (app, anomaly-type) pair; healthy is never seeded
  // (Fig. 2: the labeled dataset holds one sample per app × anomaly pair).
  std::map<std::pair<int, int>, std::vector<std::size_t>> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = split.train_y[i];
    if (label == 0) continue;
    if (!seed_allowed(split.train_app[i])) continue;
    candidates[{split.train_app[i], label}].push_back(i);
  }
  ALBA_CHECK(!candidates.empty()) << "no seedable (app, anomaly) pairs";

  ALSetup setup;
  std::vector<bool> used(n, false);
  for (auto& [key, rows] : candidates) {
    const std::size_t pick = rows[rng.uniform_index(rows.size())];
    setup.seed.append(split.train_x.row(pick), split.train_y[pick]);
    setup.seed_rows.push_back(pick);
    used[pick] = true;
  }

  // Everything else in the training partition forms the unlabeled pool.
  std::vector<std::size_t> pool_rows;
  for (std::size_t i = 0; i < n; ++i) {
    if (!used[i]) pool_rows.push_back(i);
  }
  ALBA_CHECK(!pool_rows.empty()) << "empty unlabeled pool";
  setup.pool_x = split.train_x.select_rows(pool_rows);
  for (const std::size_t i : pool_rows) {
    setup.pool_y.push_back(split.train_y[i]);
    setup.pool_app.push_back(split.train_app[i]);
  }

  setup.test_x = split.test_x;
  setup.test_y = split.test_y;
  return setup;
}

}  // namespace alba
