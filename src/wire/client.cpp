#include "wire/client.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace alba {

WireClient::WireClient(Connector connector, WireClientConfig config)
    : connector_(std::move(connector)), config_(config),
      backoff_rng_(config.reconnect.seed ^ (config.node + 1)) {
  ALBA_CHECK(config_.metric_count > 0) << "wire client needs a metric count";
  ALBA_CHECK(config_.max_inflight_rows > 0);
}

bool WireClient::offer(std::uint64_t seq, double timestamp,
                       std::span<const double> values) {
  ALBA_CHECK(values.size() == config_.metric_count)
      << "row has " << values.size() << " values, registry expects "
      << config_.metric_count;
  if (pending_.size() >= config_.max_inflight_rows) return false;
  PendingRow row;
  row.index = next_assign_++;
  row.seq = seq;
  row.timestamp = timestamp;
  row.values.assign(values.begin(), values.end());
  pending_.push_back(std::move(row));
  ++stats_.rows_offered;
  return true;
}

bool WireClient::idle() const noexcept {
  return state_ == State::Streaming && pending_.empty() &&
         outbuf_head_ >= outbuf_.size();
}

void WireClient::disconnect() {
  if (conn_) conn_->close();
  conn_.reset();
  state_ = State::Disconnected;
  decoder_ = FrameDecoder();
  outbuf_.clear();
  outbuf_head_ = 0;
  send_cursor_ = 0;  // everything unacked must be retransmitted
}

void WireClient::lose_connection(double now_ms) {
  ++stats_.disconnects;
  disconnect();
  // First retry is immediate-ish; backoff grows with consecutive failures
  // (backoff_delay_ms counts attempts 1-based).
  ++attempt_;
  next_attempt_ms_ = now_ms + backoff_delay_ms(config_.reconnect, attempt_,
                                               backoff_rng_);
}

void WireClient::try_connect(double now_ms) {
  conn_ = connector_();
  if (!conn_) {
    ++stats_.connect_failures;
    ++attempt_;
    next_attempt_ms_ = now_ms + backoff_delay_ms(config_.reconnect, attempt_,
                                                 backoff_rng_);
    return;
  }
  ++stats_.connects;
  state_ = State::AwaitHelloAck;
  decoder_ = FrameDecoder();
  outbuf_.clear();
  outbuf_head_ = 0;
  last_rx_ms_ = now_ms;
  last_tx_ms_ = now_ms;
  HelloFrame hello;
  hello.protocol = kWireVersion;
  hello.node = config_.node;
  hello.metric_count = config_.metric_count;
  enqueue_frame(hello);
}

void WireClient::enqueue_frame(const Frame& frame) {
  append_frame(outbuf_, frame);
}

void WireClient::flush(double now_ms) {
  if (!conn_ || outbuf_head_ >= outbuf_.size()) return;
  const std::span<const std::uint8_t> chunk{outbuf_.data() + outbuf_head_,
                                            outbuf_.size() - outbuf_head_};
  const IoResult w = conn_->write_some(chunk);
  if (w.n > 0) {
    outbuf_head_ += w.n;
    stats_.bytes_sent += w.n;
    last_tx_ms_ = now_ms;
  }
  if (w.error != 0) {
    lose_connection(now_ms);
    return;
  }
  if (outbuf_head_ >= outbuf_.size()) {
    outbuf_.clear();
    outbuf_head_ = 0;
  } else if (outbuf_head_ > 4096 && outbuf_head_ * 2 > outbuf_.size()) {
    outbuf_.erase(outbuf_.begin(),
                  outbuf_.begin() + static_cast<std::ptrdiff_t>(outbuf_head_));
    outbuf_head_ = 0;
  }
}

void WireClient::drain_reads(double now_ms) {
  if (!conn_) return;
  std::uint8_t buf[4096];
  while (conn_) {
    const IoResult r = conn_->read_some(buf);
    if (r.n > 0) {
      stats_.bytes_received += r.n;
      last_rx_ms_ = now_ms;
      decoder_.feed({buf, r.n});
      Frame frame;
      while (true) {
        const FrameDecoder::State s = decoder_.next(frame);
        if (s == FrameDecoder::State::FrameReady) {
          handle_frame(frame, now_ms);
          if (!conn_) return;
          continue;
        }
        if (s == FrameDecoder::State::Error) {
          // A server speaking garbage is as dead as a closed socket.
          lose_connection(now_ms);
          return;
        }
        break;  // NeedMore
      }
    }
    if (r.eof || r.error != 0) {
      lose_connection(now_ms);
      return;
    }
    if (r.would_block || r.n == 0) return;
  }
}

void WireClient::advance_ack(std::uint64_t next_index) {
  if (next_index <= acked_) return;  // stale/duplicate ack
  acked_ = next_index;
  std::size_t popped = 0;
  while (!pending_.empty() && pending_.front().index < acked_) {
    pending_.pop_front();
    ++popped;
    ++stats_.rows_acked;
  }
  send_cursor_ -= std::min(send_cursor_, popped);
}

void WireClient::handle_frame(const Frame& frame, double now_ms) {
  if (const auto* ack = std::get_if<HelloAckFrame>(&frame)) {
    if (state_ != State::AwaitHelloAck || ack->node != config_.node) {
      lose_connection(now_ms);
      return;
    }
    state_ = State::Streaming;
    attempt_ = 0;
    advance_ack(ack->resume_index);
    send_cursor_ = 0;  // retransmit every surviving unacked row
    return;
  }
  if (const auto* ack = std::get_if<AckFrame>(&frame)) {
    if (ack->node != config_.node) {
      lose_connection(now_ms);
      return;
    }
    ++stats_.acks_received;
    advance_ack(ack->next_index);
    return;
  }
  if (std::holds_alternative<HeartbeatFrame>(frame)) {
    return;  // rx timestamp already refreshed by the read
  }
  // Row/Hello from a server is a protocol violation.
  lose_connection(now_ms);
}

void WireClient::step(double now_ms) {
  if (!started_) {
    started_ = true;
    next_attempt_ms_ = now_ms;
  }
  if (state_ == State::Disconnected) {
    if (now_ms < next_attempt_ms_) return;
    try_connect(now_ms);
    if (state_ == State::Disconnected) return;
  }

  drain_reads(now_ms);
  if (!conn_) return;

  if (now_ms - last_rx_ms_ >= config_.heartbeat_timeout_ms) {
    lose_connection(now_ms);  // peer fell silent
    return;
  }

  if (state_ == State::Streaming) {
    std::size_t sent = 0;
    while (send_cursor_ < pending_.size() &&
           sent < config_.max_rows_per_step) {
      PendingRow& row = pending_[send_cursor_];
      RowFrame wire_row;
      wire_row.node = config_.node;
      wire_row.wire_index = row.index;
      wire_row.seq = row.seq;
      wire_row.timestamp = row.timestamp;
      wire_row.values = row.values;
      enqueue_frame(wire_row);
      ++row.sends;
      ++stats_.row_frames_sent;
      if (row.sends > 1) ++stats_.retransmits;
      ++send_cursor_;
      ++sent;
    }
    if (sent == 0 && outbuf_head_ >= outbuf_.size() &&
        now_ms - last_tx_ms_ >= config_.heartbeat_interval_ms) {
      HeartbeatFrame hb;
      hb.counter = ++heartbeat_counter_;
      enqueue_frame(hb);
      ++stats_.heartbeats_sent;
    }
  }

  flush(now_ms);
}

}  // namespace alba
