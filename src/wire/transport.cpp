#include "wire/transport.hpp"

#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/net_io.hpp"

namespace alba {

namespace {

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) { suppress_sigpipe(); }
  ~TcpConnection() override { close(); }

  IoResult read_some(std::span<std::uint8_t> buf) override {
    IoResult r;
    if (fd_ < 0) {
      r.eof = true;
      return r;
    }
    while (true) {
      const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
      if (n > 0) {
        r.n = static_cast<std::size_t>(n);
        return r;
      }
      if (n == 0) {
        r.eof = true;
        return r;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        r.would_block = true;
        return r;
      }
      r.error = errno;
      return r;
    }
  }

  IoResult write_some(std::span<const std::uint8_t> data) override {
    IoResult r;
    if (fd_ < 0) {
      r.error = EPIPE;
      return r;
    }
    while (r.n < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + r.n, data.size() - r.n,
                               kSendFlags);
      if (n >= 0) {
        r.n += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        r.would_block = true;
        return r;
      }
      r.error = errno;
      return r;
    }
    return r;
  }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool closed() const override { return fd_ < 0; }
  int fd() const override { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace

std::unique_ptr<TcpListener> TcpListener::bind_loopback(std::uint16_t port) {
  suppress_sigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ALBA_CHECK(fd >= 0) << "socket(): " << std::strerror(errno);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    const int err = errno;
    ::close(fd);
    ALBA_CHECK(false) << "bind/listen on 127.0.0.1:" << port << ": "
                      << std::strerror(err);
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<Connection> TcpListener::accept_one() {
  if (fd_ < 0) return nullptr;
  while (true) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      if (!set_nonblocking(client)) {
        ::close(client);
        return nullptr;
      }
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return std::make_unique<TcpConnection>(client);
    }
    if (errno == EINTR) continue;
    return nullptr;  // EAGAIN or a transient accept failure: nothing pending
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<Connection> tcp_connect(const std::string& host,
                                        std::uint16_t port,
                                        double timeout_ms) {
  suppress_sigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return nullptr;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    int err = 0;
    socklen_t len = sizeof err;
    if (rc <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return nullptr;
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<TcpConnection>(fd);
}

// ------------------------------------------------------- loopback pipes ---

namespace detail {

// One direction of a loopback pair: a byte queue plus the two ends'
// liveness. All loopback state hangs off the hub's single mutex — the
// traffic volumes in tests make one lock simpler and plenty fast.
struct LoopbackPipe {
  std::deque<std::uint8_t> bytes;
  bool writer_closed = false;
  bool reader_closed = false;
};

struct LoopbackPair {
  LoopbackPipe client_to_server;
  LoopbackPipe server_to_client;
};

struct LoopbackShared {
  std::mutex mu;
  bool listener_open = false;
  std::uint64_t listener_epoch = 0;  // invalidates stale Listener objects
  std::deque<std::shared_ptr<LoopbackPair>> pending_accepts;
};

}  // namespace detail

namespace {

using detail::LoopbackPair;
using detail::LoopbackPipe;
using detail::LoopbackShared;

class LoopbackConnection : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<LoopbackShared> shared,
                     std::shared_ptr<LoopbackPair> pair, bool is_client)
      : shared_(std::move(shared)), pair_(std::move(pair)),
        is_client_(is_client) {}

  ~LoopbackConnection() override { close(); }

  IoResult read_some(std::span<std::uint8_t> buf) override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    IoResult r;
    LoopbackPipe& in = inbound();
    if (in.reader_closed) {
      r.eof = true;
      return r;
    }
    if (in.bytes.empty()) {
      if (in.writer_closed) {
        r.eof = true;
      } else {
        r.would_block = true;
      }
      return r;
    }
    while (r.n < buf.size() && !in.bytes.empty()) {
      buf[r.n++] = in.bytes.front();
      in.bytes.pop_front();
    }
    return r;
  }

  IoResult write_some(std::span<const std::uint8_t> data) override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    IoResult r;
    LoopbackPipe& out = outbound();
    if (out.writer_closed || out.reader_closed) {
      r.error = EPIPE;
      return r;
    }
    out.bytes.insert(out.bytes.end(), data.begin(), data.end());
    r.n = data.size();
    return r;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    outbound().writer_closed = true;
    inbound().reader_closed = true;
    closed_ = true;
  }

  bool closed() const override { return closed_; }

 private:
  LoopbackPipe& inbound() {
    return is_client_ ? pair_->server_to_client : pair_->client_to_server;
  }
  LoopbackPipe& outbound() {
    return is_client_ ? pair_->client_to_server : pair_->server_to_client;
  }

  std::shared_ptr<LoopbackShared> shared_;
  std::shared_ptr<LoopbackPair> pair_;
  bool is_client_;
  bool closed_ = false;
};

class LoopbackListener : public Listener {
 public:
  LoopbackListener(std::shared_ptr<LoopbackShared> shared,
                   std::uint64_t epoch)
      : shared_(std::move(shared)), epoch_(epoch) {}

  ~LoopbackListener() override { close(); }

  std::unique_ptr<Connection> accept_one() override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (!live() || shared_->pending_accepts.empty()) return nullptr;
    auto pair = std::move(shared_->pending_accepts.front());
    shared_->pending_accepts.pop_front();
    return std::make_unique<LoopbackConnection>(shared_, std::move(pair),
                                                /*is_client=*/false);
  }

  void close() override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (live()) {
      shared_->listener_open = false;
      // Refuse connections queued but never accepted.
      for (auto& pair : shared_->pending_accepts) {
        pair->server_to_client.writer_closed = true;
        pair->client_to_server.reader_closed = true;
      }
      shared_->pending_accepts.clear();
    }
  }

 private:
  bool live() const {
    return shared_->listener_open && shared_->listener_epoch == epoch_;
  }

  std::shared_ptr<LoopbackShared> shared_;
  std::uint64_t epoch_;
};

}  // namespace

LoopbackHub::LoopbackHub() : shared_(std::make_shared<LoopbackShared>()) {}

LoopbackHub::~LoopbackHub() = default;

std::unique_ptr<Listener> LoopbackHub::make_listener() {
  std::lock_guard<std::mutex> lock(shared_->mu);
  shared_->listener_open = true;
  ++shared_->listener_epoch;
  shared_->pending_accepts.clear();
  return std::make_unique<LoopbackListener>(shared_, shared_->listener_epoch);
}

std::unique_ptr<Connection> LoopbackHub::connect() {
  std::lock_guard<std::mutex> lock(shared_->mu);
  if (!shared_->listener_open) return nullptr;
  auto pair = std::make_shared<LoopbackPair>();
  shared_->pending_accepts.push_back(pair);
  return std::make_unique<LoopbackConnection>(shared_, std::move(pair),
                                              /*is_client=*/true);
}

}  // namespace alba
