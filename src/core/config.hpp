// End-to-end experiment configuration: one struct wires the telemetry
// simulator, the collection plan, the feature extractor, and the selection /
// split parameters together. `volta_config()` / `eclipse_config()` return
// the paper's two settings (Volta: TSFRESH features; Eclipse: MVTS — the
// best combination per dataset reported in Sec. IV-E-1), scaled down by
// default for a single-core box; pass full=true for paper-scale runs.
#pragma once

#include <cstdint>

#include "features/extractor.hpp"
#include "telemetry/run_generator.hpp"

namespace alba {

/// The slice of a DatasetConfig a frozen model must remember to turn one
/// raw telemetry window into a feature row at serving time: which system's
/// metric registry the window comes from, how to preprocess it, and which
/// extractor produced the training features. ModelBundle persists exactly
/// this (see serving/model_bundle.hpp).
struct FeatureConfig {
  SystemKind system = SystemKind::Volta;
  RegistryConfig registry;
  PreprocessConfig preprocess;
  ExtractorKind extractor = ExtractorKind::Tsfresh;
};

struct DatasetConfig {
  SystemKind system = SystemKind::Volta;
  RegistryConfig registry;
  NodeSimConfig sim;
  // Post-simulation telemetry degradation (default: disabled). When any
  // rate is positive, build_experiment_data switches to the robust
  // preprocessing/extraction path and fills ExperimentData::quality.
  FaultConfig faults;
  PreprocessConfig preprocess;
  CollectionPlan plan;
  ExtractorKind extractor = ExtractorKind::Tsfresh;
  std::size_t inputs_per_app = 3;
  std::size_t num_apps = 0;      // 0 = the full catalog
  std::size_t select_k = 500;    // chi-square top-k (paper sweeps to 2000)
  double test_fraction = 0.3;    // withheld test share per split
  std::uint64_t seed = 42;
};

/// Volta testbed setting (11 apps, TSFRESH, uncertainty works best).
DatasetConfig volta_config(bool full = false);

/// Eclipse production setting (6 apps, MVTS, margin works best).
DatasetConfig eclipse_config(bool full = false);

/// Tiny configuration for unit tests (2 apps, short runs, few metrics).
DatasetConfig tiny_config(SystemKind system = SystemKind::Volta);

/// Projects the serving-relevant fields out of a full experiment config.
FeatureConfig feature_config(const DatasetConfig& config);

}  // namespace alba
