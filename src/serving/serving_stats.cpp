#include "serving/serving_stats.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <vector>

#include "common/csv.hpp"
#include "common/string_util.hpp"

namespace alba {

double latency_percentile(std::span<const double> latencies_ms, double q) {
  if (latencies_ms.empty()) return 0.0;
  std::vector<double> sorted(latencies_ms.begin(), latencies_ms.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::string format_serving_summary(const ServingStats& s) {
  return strformat(
      "%llu windows in %llu requests: %.1f win/s, p50 %.2fms, p99 %.2fms, "
      "p99.9 %.2fms, min %.2fms, cache %.1f%% (extract %.2fs, "
      "predict %.2fs)",
      static_cast<unsigned long long>(s.windows),
      static_cast<unsigned long long>(s.requests), s.windows_per_second(),
      s.latency_p50_ms, s.latency_p99_ms, s.latency_p999_ms,
      s.latency_min_ms, 100.0 * s.hit_rate(), s.extract_seconds,
      s.predict_seconds);
}

std::string serving_stats_csv_header() {
  return "label,requests,windows,batches,cache_hits,cache_misses,"
         "collision_evictions,extract_seconds,predict_seconds,total_seconds,"
         "wall_seconds,windows_per_second,latency_p50_ms,latency_p99_ms,"
         "latency_p999_ms,latency_min_ms";
}

std::string serving_stats_csv_row(std::string_view label,
                                  const ServingStats& s) {
  // The label is free-form configuration text (e.g. "batch=8,threads=4");
  // RFC-4180 quoting keeps a comma or quote in it from shearing columns.
  return csv_escape(std::string(label)) +
         strformat(
             ",%llu,%llu,%llu,%llu,%llu,%llu,%.6f,%.6f,%.6f,%.6f,%.3f,"
             "%.4f,%.4f,%.4f,%.4f",
             static_cast<unsigned long long>(s.requests),
             static_cast<unsigned long long>(s.windows),
             static_cast<unsigned long long>(s.batches),
             static_cast<unsigned long long>(s.cache_hits),
             static_cast<unsigned long long>(s.cache_misses),
             static_cast<unsigned long long>(s.collision_evictions),
             s.extract_seconds, s.predict_seconds, s.total_seconds,
             s.wall_seconds, s.windows_per_second(), s.latency_p50_ms,
             s.latency_p99_ms, s.latency_p999_ms, s.latency_min_ms);
}

void write_serving_stats_csv(
    std::ostream& os,
    std::span<const std::pair<std::string, ServingStats>> rows) {
  os << serving_stats_csv_header() << "\n";
  for (const auto& [label, stats] : rows) {
    os << serving_stats_csv_row(label, stats) << "\n";
  }
}

ServingStats merge_serving_stats(std::span<const ServingStats> parts) {
  ServingStats merged;
  double weighted_p50 = 0.0;
  double weighted_p99 = 0.0;
  double weighted_p999 = 0.0;
  std::uint64_t weight = 0;
  bool any_min = false;
  for (const ServingStats& s : parts) {
    merged.requests += s.requests;
    merged.windows += s.windows;
    merged.batches += s.batches;
    merged.cache_hits += s.cache_hits;
    merged.cache_misses += s.cache_misses;
    merged.collision_evictions += s.collision_evictions;
    merged.extract_seconds += s.extract_seconds;
    merged.predict_seconds += s.predict_seconds;
    merged.total_seconds += s.total_seconds;
    merged.wall_seconds = std::max(merged.wall_seconds, s.wall_seconds);
    weighted_p50 += static_cast<double>(s.requests) * s.latency_p50_ms;
    weighted_p99 += static_cast<double>(s.requests) * s.latency_p99_ms;
    weighted_p999 += static_cast<double>(s.requests) * s.latency_p999_ms;
    weight += s.requests;
    // The fleet minimum composes exactly (unlike the percentiles): it is
    // the smallest per-replica minimum over replicas that served anything.
    if (s.requests > 0) {
      merged.latency_min_ms = any_min
          ? std::min(merged.latency_min_ms, s.latency_min_ms)
          : s.latency_min_ms;
      any_min = true;
    }
  }
  if (weight > 0) {
    merged.latency_p50_ms = weighted_p50 / static_cast<double>(weight);
    merged.latency_p99_ms = weighted_p99 / static_cast<double>(weight);
    merged.latency_p999_ms = weighted_p999 / static_cast<double>(weight);
  }
  return merged;
}

void write_fleet_serving_csv(
    std::ostream& os,
    std::span<const std::pair<std::string, ServingStats>> replicas) {
  os << serving_stats_csv_header() << "\n";
  std::vector<ServingStats> parts;
  parts.reserve(replicas.size());
  for (const auto& [label, stats] : replicas) {
    os << serving_stats_csv_row(label, stats) << "\n";
    parts.push_back(stats);
  }
  os << serving_stats_csv_row("fleet", merge_serving_stats(parts)) << "\n";
}

}  // namespace alba
