#include "common/net_io.hpp"

#include <cerrno>
#include <csignal>
#include <mutex>

#include <unistd.h>

namespace alba {

IoOutcome read_full(int fd, void* buf, std::size_t n) noexcept {
  IoOutcome out;
  char* p = static_cast<char*>(buf);
  while (out.bytes < n) {
    const ssize_t r = ::read(fd, p + out.bytes, n - out.bytes);
    if (r > 0) {
      out.bytes += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      out.eof = true;
      return out;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      out.would_block = true;
      return out;
    }
    out.error = errno;
    return out;
  }
  return out;
}

IoOutcome write_full(int fd, const void* data, std::size_t n) noexcept {
  IoOutcome out;
  const char* p = static_cast<const char*>(data);
  while (out.bytes < n) {
    const ssize_t r = ::write(fd, p + out.bytes, n - out.bytes);
    if (r >= 0) {
      out.bytes += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      out.would_block = true;
      return out;
    }
    out.error = errno;
    return out;
  }
  return out;
}

void suppress_sigpipe() noexcept {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction current {};
    if (::sigaction(SIGPIPE, nullptr, &current) == 0 &&
        current.sa_handler == SIG_DFL) {
      struct sigaction ignore {};
      ignore.sa_handler = SIG_IGN;
      ::sigaction(SIGPIPE, &ignore, nullptr);
    }
  });
}

}  // namespace alba
