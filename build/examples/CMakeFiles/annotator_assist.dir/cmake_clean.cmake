file(REMOVE_RECURSE
  "CMakeFiles/annotator_assist.dir/annotator_assist.cpp.o"
  "CMakeFiles/annotator_assist.dir/annotator_assist.cpp.o.d"
  "annotator_assist"
  "annotator_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotator_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
