#include "stats/entropy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "stats/descriptive.hpp"

namespace alba::stats {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// phi(m) for ApEn: mean over i of log of the fraction of j whose m-length
// templates are within r (Chebyshev distance), self-matches included.
double apen_phi(std::span<const double> x, std::size_t m, double r) {
  const std::size_t n = x.size();
  const std::size_t count = n - m + 1;
  double acc = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t matches = 0;
    for (std::size_t j = 0; j < count; ++j) {
      bool ok = true;
      for (std::size_t k = 0; k < m; ++k) {
        if (std::abs(x[i + k] - x[j + k]) > r) {
          ok = false;
          break;
        }
      }
      matches += ok ? 1 : 0;
    }
    acc += std::log(static_cast<double>(matches) / static_cast<double>(count));
  }
  return acc / static_cast<double>(count);
}
}  // namespace

double approximate_entropy(std::span<const double> x, std::size_t m,
                           double r_frac) {
  if (x.size() < m + 2) return 0.0;
  const double s = stddev(x);
  if (s < 1e-300) return 0.0;
  const double r = r_frac * s;
  return apen_phi(x, m, r) - apen_phi(x, m + 1, r);
}

double sample_entropy(std::span<const double> x, std::size_t m, double r_frac) {
  const std::size_t n = x.size();
  if (n < m + 2) return kNaN;
  const double s = stddev(x);
  if (s < 1e-300) return kNaN;
  const double r = r_frac * s;

  // Count template matches of length m (B) and m+1 (A), self-matches
  // excluded, in one fused pass.
  std::size_t a = 0;
  std::size_t b = 0;
  const std::size_t count = n - m;
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = i + 1; j < count; ++j) {
      bool match_m = true;
      for (std::size_t k = 0; k < m; ++k) {
        if (std::abs(x[i + k] - x[j + k]) > r) {
          match_m = false;
          break;
        }
      }
      if (!match_m) continue;
      ++b;
      if (std::abs(x[i + m] - x[j + m]) <= r) ++a;
    }
  }
  if (a == 0 || b == 0) return kNaN;
  return -std::log(static_cast<double>(a) / static_cast<double>(b));
}

double binned_entropy(std::span<const double> x, std::size_t bins) {
  if (x.empty() || bins == 0) return kNaN;
  const double lo = minimum(x);
  const double hi = maximum(x);
  if (hi - lo < 1e-300) return 0.0;

  std::vector<double> counts(bins, 0.0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : x) {
    auto bin = static_cast<std::size_t>((v - lo) / width);
    if (bin >= bins) bin = bins - 1;  // v == hi
    counts[bin] += 1.0;
  }
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (auto& c : counts) c *= inv_n;
  return shannon_entropy(counts);
}

double shannon_entropy(std::span<const double> probs) noexcept {
  double h = 0.0;
  for (double p : probs) {
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

}  // namespace alba::stats
