file(REMOVE_RECURSE
  "CMakeFiles/alba_stats.dir/stats/autocorr.cpp.o"
  "CMakeFiles/alba_stats.dir/stats/autocorr.cpp.o.d"
  "CMakeFiles/alba_stats.dir/stats/chi2.cpp.o"
  "CMakeFiles/alba_stats.dir/stats/chi2.cpp.o.d"
  "CMakeFiles/alba_stats.dir/stats/descriptive.cpp.o"
  "CMakeFiles/alba_stats.dir/stats/descriptive.cpp.o.d"
  "CMakeFiles/alba_stats.dir/stats/entropy.cpp.o"
  "CMakeFiles/alba_stats.dir/stats/entropy.cpp.o.d"
  "CMakeFiles/alba_stats.dir/stats/fft.cpp.o"
  "CMakeFiles/alba_stats.dir/stats/fft.cpp.o.d"
  "CMakeFiles/alba_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/alba_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/alba_stats.dir/stats/regression.cpp.o"
  "CMakeFiles/alba_stats.dir/stats/regression.cpp.o.d"
  "CMakeFiles/alba_stats.dir/stats/welch.cpp.o"
  "CMakeFiles/alba_stats.dir/stats/welch.cpp.o.d"
  "libalba_stats.a"
  "libalba_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alba_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
