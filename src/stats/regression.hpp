// Ordinary least squares over (index, value) pairs — the "linear trend"
// features of both extractors (slope, intercept, correlation, stderr).
#pragma once

#include <span>

namespace alba::stats {

struct LinearTrend {
  double slope = 0.0;
  double intercept = 0.0;
  double rvalue = 0.0;   // Pearson correlation between index and value
  double stderr_ = 0.0;  // standard error of the slope estimate
};

/// Fits y = slope·t + intercept with t = 0..n-1. NaN fields for n < 2 or
/// zero variance.
LinearTrend linear_trend(std::span<const double> y) noexcept;

/// Pearson correlation of two equal-length series.
double pearson(std::span<const double> a, std::span<const double> b) noexcept;

}  // namespace alba::stats
