// Column scalers with the fit/transform split sklearn uses: fit on the
// training partition only, then apply the learned parameters everywhere
// (fitting on test data would leak). MinMaxScaler is the paper's choice —
// it also guarantees the non-negativity chi-square selection needs.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace alba {

class MinMaxScaler {
 public:
  /// Learns per-column min/max from `x`.
  void fit(const Matrix& x);

  /// Maps each column to [0, 1] using the fitted range; constant columns
  /// map to 0. Out-of-range values (test data beyond the training range)
  /// are clipped to [0, 1], keeping chi-square inputs non-negative.
  void transform(Matrix& x) const;

  void fit_transform(Matrix& x) {
    fit(x);
    transform(x);
  }

  bool fitted() const noexcept { return !mins_.empty(); }
  const std::vector<double>& mins() const noexcept { return mins_; }
  const std::vector<double>& maxs() const noexcept { return maxs_; }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

class StandardScaler {
 public:
  void fit(const Matrix& x);

  /// Maps each column to zero mean / unit variance; constant columns to 0.
  void transform(Matrix& x) const;

  void fit_transform(Matrix& x) {
    fit(x);
    transform(x);
  }

  bool fitted() const noexcept { return !means_.empty(); }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace alba
