# Empty dependencies file for test_ml_metrics.
# This may be replaced when dependencies are built.
