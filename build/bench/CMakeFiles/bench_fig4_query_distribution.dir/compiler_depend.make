# Empty compiler generated dependencies file for bench_fig4_query_distribution.
# This may be replaced when dependencies are built.
