file(REMOVE_RECURSE
  "libalba_features.a"
)
