
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/autocorr.cpp" "src/CMakeFiles/alba_stats.dir/stats/autocorr.cpp.o" "gcc" "src/CMakeFiles/alba_stats.dir/stats/autocorr.cpp.o.d"
  "/root/repo/src/stats/chi2.cpp" "src/CMakeFiles/alba_stats.dir/stats/chi2.cpp.o" "gcc" "src/CMakeFiles/alba_stats.dir/stats/chi2.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/alba_stats.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/alba_stats.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/entropy.cpp" "src/CMakeFiles/alba_stats.dir/stats/entropy.cpp.o" "gcc" "src/CMakeFiles/alba_stats.dir/stats/entropy.cpp.o.d"
  "/root/repo/src/stats/fft.cpp" "src/CMakeFiles/alba_stats.dir/stats/fft.cpp.o" "gcc" "src/CMakeFiles/alba_stats.dir/stats/fft.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/alba_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/alba_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/CMakeFiles/alba_stats.dir/stats/regression.cpp.o" "gcc" "src/CMakeFiles/alba_stats.dir/stats/regression.cpp.o.d"
  "/root/repo/src/stats/welch.cpp" "src/CMakeFiles/alba_stats.dir/stats/welch.cpp.o" "gcc" "src/CMakeFiles/alba_stats.dir/stats/welch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alba_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
