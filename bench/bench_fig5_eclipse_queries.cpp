// Reproduces Fig. 5: the Eclipse (production system, MVTS features)
// counterpart of Fig. 3. Expected shape: margin is the best strategy; the
// production dataset is harder than Volta, so every method needs more
// labels (the paper: ~200 to reach 0.95 vs 21 on Volta) and the starting
// F1 is lower.
#include "bench_common.hpp"

using namespace alba;
using namespace alba::bench;

int main(int argc, char** argv) {
  BenchFlags flags;
  // Eclipse's Table IV optimum is a 200-tree forest, so each re-training
  // round costs ~10x Volta's; default to 2 splits (use --repeats for more).
  flags.repeats = 2;
  Cli cli("bench_fig5_eclipse_queries",
          "Fig. 5 — query curves of all methods on the Eclipse dataset");
  add_standard_flags(cli, flags);
  cli.parse(argc, argv);
  apply_logging(flags);

  std::printf(
      "=== Fig. 5: anomaly diagnosis with active learning (Eclipse) ===\n");
  const ExperimentData data = build_data(SystemKind::Eclipse, flags);

  ExperimentOptions opt = make_options(flags);
  opt.methods = {"uncertainty", "margin",    "entropy",
                 "random",      "equal_app", "proctor"};
  const Timer timer;
  const QueryCurveResult result = run_query_curve_experiment(data, opt);

  std::printf("\n%s\n", render_query_curves(result.methods, 25).c_str());
  std::printf("starting F1 (seed set of %zu samples): %.3f\n",
              data.num_apps * kNumAnomalyTypes, result.starting_f1);
  std::printf("supervised reference on full AL training set (%zu samples): "
              "F1 %.3f\n",
              result.al_train_size, result.full_train_f1);
  for (const auto& m : result.methods) {
    std::printf("%-12s queries to F1>=0.95: %d (final F1 %.3f)\n",
                m.method.c_str(), queries_to_reach(m.aggregated, 0.95),
                m.aggregated.f1_mean.back());
  }
  std::printf("total experiment time: %.1fs\n", timer.seconds());

  const std::string csv = flags.out_dir + "/fig5_eclipse_curves.csv";
  write_curves_csv(csv, result.methods);
  std::printf("series written to %s\n", csv.c_str());
  return 0;
}
