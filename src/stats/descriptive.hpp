// Descriptive statistics over a time series (span of doubles). These are the
// primitives both feature extractors are built from. All functions treat the
// input as-is (no NaN filtering — the preprocessing layer removes NaNs
// before extraction) and return NaN for undefined cases (e.g. variance of a
// single point) so downstream NaN-column dropping mirrors the paper's
// pipeline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace alba::stats {

double sum(std::span<const double> x) noexcept;
double mean(std::span<const double> x) noexcept;
/// Population variance (ddof = 0), matching numpy's default.
double variance(std::span<const double> x) noexcept;
/// Sample variance (ddof = 1); NaN for n < 2.
double sample_variance(std::span<const double> x) noexcept;
double stddev(std::span<const double> x) noexcept;
double minimum(std::span<const double> x) noexcept;
double maximum(std::span<const double> x) noexcept;
double range(std::span<const double> x) noexcept;
/// Median via partial sort of a copy.
double median(std::span<const double> x);
/// Linear-interpolated quantile, q in [0,1] (numpy 'linear' method).
double quantile(std::span<const double> x, double q);
/// Fisher skewness (g1); NaN when stddev is ~0.
double skewness(std::span<const double> x) noexcept;
/// Excess kurtosis (g2); NaN when stddev is ~0.
double kurtosis(std::span<const double> x) noexcept;
/// Coefficient of variation: stddev / |mean|; NaN when mean ~ 0.
double variation_coefficient(std::span<const double> x) noexcept;
double abs_energy(std::span<const double> x) noexcept;
double root_mean_square(std::span<const double> x) noexcept;
double mean_abs_change(std::span<const double> x) noexcept;
double mean_change(std::span<const double> x) noexcept;
double absolute_sum_of_changes(std::span<const double> x) noexcept;
/// Second derivative central mean: mean of (x[i+1] - 2x[i] + x[i-1]) / 2.
double mean_second_derivative_central(std::span<const double> x) noexcept;
std::size_t count_above_mean(std::span<const double> x) noexcept;
std::size_t count_below_mean(std::span<const double> x) noexcept;
/// Index (0-based) of first/last occurrence of min/max, as a fraction of n.
double first_location_of_maximum(std::span<const double> x) noexcept;
double first_location_of_minimum(std::span<const double> x) noexcept;
double last_location_of_maximum(std::span<const double> x) noexcept;
double last_location_of_minimum(std::span<const double> x) noexcept;
/// Longest run of strictly increasing / decreasing / above-mean values.
std::size_t longest_strictly_increasing_run(std::span<const double> x) noexcept;
std::size_t longest_strictly_decreasing_run(std::span<const double> x) noexcept;
std::size_t longest_run_above_mean(std::span<const double> x) noexcept;
std::size_t longest_run_below_mean(std::span<const double> x) noexcept;
/// Number of local maxima with support window `support` on each side.
std::size_t number_of_peaks(std::span<const double> x, std::size_t support) noexcept;
/// Number of times the series crosses value `t` (sign changes of x - t).
std::size_t number_of_crossings(std::span<const double> x, double t) noexcept;
/// Fraction of values strictly greater than t / smaller than t.
double ratio_beyond_r_sigma(std::span<const double> x, double r) noexcept;
/// Whether there are duplicate values / duplicate of min / duplicate of max.
bool has_duplicate(std::span<const double> x);
bool has_duplicate_max(std::span<const double> x) noexcept;
bool has_duplicate_min(std::span<const double> x) noexcept;
/// Sum of values occurring more than once (tsfresh sum_of_reoccurring_values).
double sum_of_reoccurring_values(std::span<const double> x);
/// Percentage of distinct values appearing more than once.
double percentage_of_reoccurring_datapoints(std::span<const double> x);
/// Nonlinearity measure c3(lag): mean of x[i+2l]*x[i+l]*x[i].
double c3(std::span<const double> x, std::size_t lag) noexcept;
/// Complexity-invariant distance: sqrt(sum of squared diffs); normalized opt.
double cid_ce(std::span<const double> x, bool normalize) noexcept;
/// Time reversal asymmetry statistic with lag.
double time_reversal_asymmetry(std::span<const double> x, std::size_t lag) noexcept;
/// Large standard deviation test: stddev > r * range.
bool large_standard_deviation(std::span<const double> x, double r) noexcept;
/// Symmetry: |mean - median| < r * range.
bool symmetry_looking(std::span<const double> x, double r);

}  // namespace alba::stats
