#include "common/backoff.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace alba {

void validate_backoff(const BackoffConfig& config) {
  ALBA_CHECK(config.max_attempts >= 1)
      << "backoff needs at least one attempt, got " << config.max_attempts;
  ALBA_CHECK(config.initial_delay_ms >= 0.0 && config.max_delay_ms >= 0.0)
      << "backoff delays must be non-negative";
  ALBA_CHECK(config.multiplier >= 1.0)
      << "backoff multiplier must be >= 1, got " << config.multiplier;
  ALBA_CHECK(config.jitter >= 0.0 && config.jitter <= 1.0)
      << "backoff jitter must be in [0, 1], got " << config.jitter;
}

double backoff_delay_ms(const BackoffConfig& config, int attempt, Rng& rng) {
  ALBA_CHECK(attempt >= 1) << "retry attempts are 1-based, got " << attempt;
  const double base =
      config.initial_delay_ms *
      std::pow(config.multiplier, static_cast<double>(attempt - 1));
  const double capped = std::min(base, config.max_delay_ms);
  const double scale =
      rng.uniform(1.0 - config.jitter, 1.0 + config.jitter);
  return capped * scale;
}

bool backoff_sleep(double ms, const Deadline& deadline) {
  // A sleep that cannot end before the deadline is pure waste: skip it and
  // report the veto so the caller returns its deadline-typed status now
  // instead of after burning the whole remaining budget asleep.
  if (ms > deadline.remaining_ms()) return false;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  return true;
}

RetryResult retry_with_backoff(const BackoffConfig& config,
                               const std::function<bool()>& attempt,
                               const Deadline& deadline) {
  validate_backoff(config);
  Rng rng(config.seed);
  for (int tried = 1; tried <= config.max_attempts; ++tried) {
    if (deadline.expired()) return RetryResult::DeadlineExpired;
    if (attempt()) return RetryResult::Ok;
    if (tried == config.max_attempts) return RetryResult::ExhaustedAttempts;
    if (!backoff_sleep(backoff_delay_ms(config, tried, rng), deadline)) {
      return RetryResult::DeadlineExpired;
    }
  }
  return RetryResult::ExhaustedAttempts;
}

}  // namespace alba
