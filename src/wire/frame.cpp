#include "wire/frame.hpp"

#include <bit>
#include <cstring>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace alba {

namespace {

// Little-endian primitives. Byte-by-byte so the format is identical on any
// host endianness; the compiler folds these to plain loads/stores on LE.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double get_f64(const std::uint8_t* p) noexcept {
  return std::bit_cast<double>(get_u64(p));
}

// Bounds-checked payload reader: every get_* advances a cursor and fails
// the parse (returns false through ok_) instead of reading past the span.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> payload) noexcept
      : payload_(payload) {}

  bool read_u32(std::uint32_t& v) noexcept {
    if (!take(4)) return false;
    v = get_u32(payload_.data() + pos_ - 4);
    return true;
  }
  bool read_u64(std::uint64_t& v) noexcept {
    if (!take(8)) return false;
    v = get_u64(payload_.data() + pos_ - 8);
    return true;
  }
  bool read_f64(double& v) noexcept {
    if (!take(8)) return false;
    v = get_f64(payload_.data() + pos_ - 8);
    return true;
  }
  std::size_t remaining() const noexcept { return payload_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  bool take(std::size_t n) noexcept {
    if (payload_.size() - pos_ < n) return false;
    pos_ += n;
    return true;
  }

  std::span<const std::uint8_t> payload_;
  std::size_t pos_ = 0;
};

void append_payload(std::vector<std::uint8_t>& out, const HelloFrame& f) {
  put_u32(out, f.protocol);
  put_u32(out, f.node);
  put_u32(out, f.metric_count);
}

void append_payload(std::vector<std::uint8_t>& out, const HelloAckFrame& f) {
  put_u32(out, f.node);
  put_u64(out, f.resume_index);
}

void append_payload(std::vector<std::uint8_t>& out, const RowFrame& f) {
  put_u32(out, f.node);
  put_u32(out, static_cast<std::uint32_t>(f.values.size()));
  put_u64(out, f.wire_index);
  put_u64(out, f.seq);
  put_f64(out, f.timestamp);
  for (const double v : f.values) put_f64(out, v);
}

void append_payload(std::vector<std::uint8_t>& out, const AckFrame& f) {
  put_u32(out, f.node);
  put_u64(out, f.next_index);
}

void append_payload(std::vector<std::uint8_t>& out, const HeartbeatFrame& f) {
  put_u64(out, f.counter);
}

bool parse_payload(FrameType type, std::span<const std::uint8_t> payload,
                   Frame& out) {
  PayloadReader r(payload);
  switch (type) {
    case FrameType::Hello: {
      HelloFrame f;
      if (!r.read_u32(f.protocol) || !r.read_u32(f.node) ||
          !r.read_u32(f.metric_count) || !r.exhausted()) {
        return false;
      }
      out = f;
      return true;
    }
    case FrameType::HelloAck: {
      HelloAckFrame f;
      if (!r.read_u32(f.node) || !r.read_u64(f.resume_index) ||
          !r.exhausted()) {
        return false;
      }
      out = f;
      return true;
    }
    case FrameType::Row: {
      RowFrame f;
      std::uint32_t count = 0;
      if (!r.read_u32(f.node) || !r.read_u32(count) ||
          !r.read_u64(f.wire_index) || !r.read_u64(f.seq) ||
          !r.read_f64(f.timestamp)) {
        return false;
      }
      if (r.remaining() != static_cast<std::size_t>(count) * 8) return false;
      f.values.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (!r.read_f64(f.values[i])) return false;
      }
      out = std::move(f);
      return true;
    }
    case FrameType::Ack: {
      AckFrame f;
      if (!r.read_u32(f.node) || !r.read_u64(f.next_index) ||
          !r.exhausted()) {
        return false;
      }
      out = f;
      return true;
    }
    case FrameType::Heartbeat: {
      HeartbeatFrame f;
      if (!r.read_u64(f.counter) || !r.exhausted()) return false;
      out = f;
      return true;
    }
  }
  return false;
}

bool valid_type(std::uint8_t raw) noexcept {
  return raw >= static_cast<std::uint8_t>(FrameType::Hello) &&
         raw <= static_cast<std::uint8_t>(FrameType::Heartbeat);
}

}  // namespace

std::string_view to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::Hello: return "hello";
    case FrameType::HelloAck: return "hello-ack";
    case FrameType::Row: return "row";
    case FrameType::Ack: return "ack";
    case FrameType::Heartbeat: return "heartbeat";
  }
  return "unknown";
}

std::string_view to_string(DecodeError error) noexcept {
  switch (error) {
    case DecodeError::None: return "none";
    case DecodeError::BadMagic: return "bad-magic";
    case DecodeError::BadVersion: return "bad-version";
    case DecodeError::Oversized: return "oversized";
    case DecodeError::BadChecksum: return "bad-checksum";
    case DecodeError::BadType: return "bad-type";
    case DecodeError::BadPayload: return "bad-payload";
  }
  return "unknown";
}

FrameType frame_type(const Frame& frame) noexcept {
  struct Visitor {
    FrameType operator()(const HelloFrame&) const { return FrameType::Hello; }
    FrameType operator()(const HelloAckFrame&) const {
      return FrameType::HelloAck;
    }
    FrameType operator()(const RowFrame&) const { return FrameType::Row; }
    FrameType operator()(const AckFrame&) const { return FrameType::Ack; }
    FrameType operator()(const HeartbeatFrame&) const {
      return FrameType::Heartbeat;
    }
  };
  return std::visit(Visitor{}, frame);
}

void append_frame(std::vector<std::uint8_t>& out, const Frame& frame) {
  const std::size_t start = out.size();
  put_u32(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(frame_type(frame)));
  put_u16(out, 0);             // flags
  put_u32(out, 0);             // payload_len, patched below
  put_u32(out, 0);             // crc, patched below
  std::visit([&out](const auto& f) { append_payload(out, f); }, frame);

  const std::size_t payload_len = out.size() - start - kWireHeaderSize;
  ALBA_CHECK(payload_len <= kWireMaxPayload)
      << "frame payload " << payload_len << " exceeds the wire bound";
  std::uint8_t* header = out.data() + start;
  for (int i = 0; i < 4; ++i) {
    header[8 + i] = static_cast<std::uint8_t>(payload_len >> (8 * i));
  }
  // CRC over version/type/flags/length plus the payload (see frame.hpp).
  std::uint32_t crc = crc32_update(0, {header + 4, 8});
  crc = crc32_update(crc, {header + kWireHeaderSize, payload_len});
  for (int i = 0; i < 4; ++i) {
    header[12 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  append_frame(out, frame);
  return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (failed()) return;
  // Compact once the consumed prefix dominates the buffer.
  if (head_ > 4096 && head_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

FrameDecoder::State FrameDecoder::next(Frame& out) {
  if (failed()) return State::Error;
  const std::size_t avail = buffered();
  if (avail < kWireHeaderSize) return State::NeedMore;
  const std::uint8_t* header = buffer_.data() + head_;

  if (get_u32(header) != kWireMagic) return fail(DecodeError::BadMagic);
  if (header[4] != kWireVersion) return fail(DecodeError::BadVersion);
  const std::uint32_t payload_len = get_u32(header + 8);
  if (payload_len > max_payload_) return fail(DecodeError::Oversized);
  if (avail < kWireHeaderSize + payload_len) return State::NeedMore;

  std::uint32_t crc = crc32_update(0, {header + 4, 8});
  crc = crc32_update(crc, {header + kWireHeaderSize, payload_len});
  if (crc != get_u32(header + 12)) return fail(DecodeError::BadChecksum);

  const std::uint8_t raw_type = header[5];
  if (!valid_type(raw_type)) return fail(DecodeError::BadType);
  if (!parse_payload(static_cast<FrameType>(raw_type),
                     {header + kWireHeaderSize, payload_len}, out)) {
    return fail(DecodeError::BadPayload);
  }
  head_ += kWireHeaderSize + payload_len;
  return State::FrameReady;
}

}  // namespace alba
