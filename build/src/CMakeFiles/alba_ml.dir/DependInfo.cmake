
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/autoencoder.cpp" "src/CMakeFiles/alba_ml.dir/ml/autoencoder.cpp.o" "gcc" "src/CMakeFiles/alba_ml.dir/ml/autoencoder.cpp.o.d"
  "/root/repo/src/ml/classifier.cpp" "src/CMakeFiles/alba_ml.dir/ml/classifier.cpp.o" "gcc" "src/CMakeFiles/alba_ml.dir/ml/classifier.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/CMakeFiles/alba_ml.dir/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/alba_ml.dir/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/CMakeFiles/alba_ml.dir/ml/decision_tree.cpp.o" "gcc" "src/CMakeFiles/alba_ml.dir/ml/decision_tree.cpp.o.d"
  "/root/repo/src/ml/gbm.cpp" "src/CMakeFiles/alba_ml.dir/ml/gbm.cpp.o" "gcc" "src/CMakeFiles/alba_ml.dir/ml/gbm.cpp.o.d"
  "/root/repo/src/ml/grid_search.cpp" "src/CMakeFiles/alba_ml.dir/ml/grid_search.cpp.o" "gcc" "src/CMakeFiles/alba_ml.dir/ml/grid_search.cpp.o.d"
  "/root/repo/src/ml/logreg.cpp" "src/CMakeFiles/alba_ml.dir/ml/logreg.cpp.o" "gcc" "src/CMakeFiles/alba_ml.dir/ml/logreg.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/CMakeFiles/alba_ml.dir/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/alba_ml.dir/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/CMakeFiles/alba_ml.dir/ml/mlp.cpp.o" "gcc" "src/CMakeFiles/alba_ml.dir/ml/mlp.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/CMakeFiles/alba_ml.dir/ml/random_forest.cpp.o" "gcc" "src/CMakeFiles/alba_ml.dir/ml/random_forest.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/CMakeFiles/alba_ml.dir/ml/serialize.cpp.o" "gcc" "src/CMakeFiles/alba_ml.dir/ml/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alba_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alba_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
