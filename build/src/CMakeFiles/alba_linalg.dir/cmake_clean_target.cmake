file(REMOVE_RECURSE
  "libalba_linalg.a"
)
