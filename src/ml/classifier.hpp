// Abstract multiclass probabilistic classifier — the contract every model
// (random forest, LGBM-style boosting, logistic regression, MLP) satisfies
// and the only interface the active-learning layer sees.
//
// The class count is fixed at construction rather than inferred from fit():
// ALBADross seeds training with one sample per (application, anomaly) pair
// and *no healthy samples*, so a fitted model must still emit a probability
// column for classes it has not seen yet (zero until the first healthy
// label arrives via a query).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace alba {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on x (samples × features) with labels y in [0, num_classes).
  /// Replaces any previous fit (the active learner re-fits on the grown
  /// labeled set each query, per Sec. III-D).
  virtual void fit(const Matrix& x, std::span<const int> y) = 0;

  /// Per-class probabilities, one row per sample, rows sum to 1.
  virtual Matrix predict_proba(const Matrix& x) const = 0;

  /// Reference (object-traversal) probabilities, bit-identical to
  /// predict_proba by contract. Tree models route predict_proba through a
  /// compiled flat-SoA predictor (ml/compiled_tree.hpp) and keep the
  /// original per-row walk here; everything else answers with
  /// predict_proba itself.
  virtual Matrix predict_proba_reference(const Matrix& x) const {
    return predict_proba(x);
  }

  /// Probabilities for a row subset of `x` without materializing the subset:
  /// `out` is reshaped to rows.size() × num_classes and its row i holds the
  /// prediction for x.row(rows[i]). Results are bit-identical to
  /// predict_proba(x.select_rows(rows)) — the base implementation does
  /// exactly that copy; concrete models override to walk the rows in place.
  /// This is the active-learning pool-scoring entry point: the learner calls
  /// it per thread-pool chunk, so overrides must be const-thread-safe and
  /// should not parallelize internally.
  virtual void predict_proba_rows(const Matrix& x,
                                  std::span<const std::size_t> rows,
                                  Matrix& out) const;

  /// Fresh unfitted copy with identical hyperparameters.
  virtual std::unique_ptr<Classifier> clone() const = 0;

  /// Fresh unfitted copy with identical hyperparameters but a different
  /// training seed — what committee methods use to diversify members.
  virtual std::unique_ptr<Classifier> clone_reseeded(
      std::uint64_t seed) const = 0;

  virtual std::string name() const = 0;
  virtual int num_classes() const noexcept = 0;
  virtual bool fitted() const noexcept = 0;

  /// Argmax of predict_proba.
  std::vector<int> predict(const Matrix& x) const;
};

/// Argmax over one probability row.
int argmax_label(std::span<const double> probs) noexcept;

}  // namespace alba
