// Seeded network fault injection for the wire transport. WireChaos wraps a
// client's Connector; every connection it produces passes the client's
// outbound bytes through a fault pipeline that can
//
//   * corrupt   — flip one random bit anywhere in a frame (header or
//                 payload), which the server must surface as a typed
//                 decode error, never a crash or a silently wrong row;
//   * duplicate — send a frame's bytes twice (the server's wire-index
//                 watermark must drop the duplicate without re-ingesting);
//   * drop      — forward a random prefix of a frame, then cut the
//                 connection (a torn frame plus a mid-stream disconnect —
//                 the client must reconnect and resume from the last ack);
//   * stall     — trickle bytes out in small chunks on a simulated-time
//                 schedule (slow-loris; the server's torn-frame timeout
//                 must shed the peer instead of waiting forever);
//   * chunk     — split writes at arbitrary byte boundaries (exercises
//                 incremental reassembly even when nothing else fires).
//
// All decisions draw from an Rng derived from (seed, connection ordinal),
// so a scenario replays bit-identically. Faults apply to the
// client->server direction; the server->client direction and the
// server restart fault are driven by the harness (close the IngestServer,
// build a new one from its snapshot).
//
// Time is injected: the harness calls set_now() with its simulated clock
// before stepping the client, and stalled bytes release when their
// scheduled time passes. With stall_ms == 0 no clock is needed.
#pragma once

#include <cstdint>
#include <memory>

#include "wire/transport.hpp"

namespace alba {

struct WireChaosConfig {
  std::uint64_t seed = 1;
  // Per-frame fault probabilities in [0, 1].
  double corrupt_rate = 0.0;
  double duplicate_rate = 0.0;
  double drop_rate = 0.0;
  // Split outgoing bytes into 1..16-byte chunks even when not stalling.
  bool partial_writes = false;
  // Simulated milliseconds between successive outgoing chunks (slow-loris
  // when large relative to the server's torn-frame timeout). 0 = immediate.
  double stall_ms = 0.0;
  // Let this many frames through unfaulted after each (re)connect, so a
  // handshake can complete before the storm resumes.
  std::size_t grace_frames = 0;
};

struct WireChaosStats {
  std::uint64_t connections = 0;
  std::uint64_t frames_seen = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t drops_injected = 0;
};

namespace detail {
struct ChaosState;
}

class WireChaos {
 public:
  explicit WireChaos(WireChaosConfig config);
  ~WireChaos();

  /// Wraps `inner` so every connection it yields injects this chaos.
  Connector wrap(Connector inner);

  /// Advances the simulated clock and releases any stalled bytes that are
  /// due on every live wrapped connection.
  void set_now(double now_ms);

  /// Master switch: while disarmed, wrapped connections pass bytes through
  /// untouched (chunking included). Scenarios arm chaos after warm-up.
  void arm(bool on);
  bool armed() const;

  WireChaosStats stats() const;

 private:
  std::shared_ptr<detail::ChaosState> state_;
};

}  // namespace alba
