// Cross-module property suites: invariants that must hold over swept
// parameters and random inputs — feature-extractor transformation
// behaviour, chi-square scoring properties, metric identities, injector
// footprint monotonicity, and serialization robustness against corrupted
// archives.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "anomaly/injector.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/dataset_io.hpp"
#include "features/extractor.hpp"
#include "features/mvts.hpp"
#include "features/tsfresh.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"
#include "stats/chi2.hpp"

namespace alba {
namespace {

std::vector<double> random_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(1.0, 50.0);
  return x;
}

double feature_value(const FeatureExtractor& ex, std::span<const double> x,
                     const std::string& name) {
  std::vector<double> out(ex.num_features());
  ex.extract(x, out);
  const auto& names = ex.feature_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return out[i];
  }
  throw Error("no such feature: " + name);
}

// ---------------------------------------------------- extractor behaviour ---

class ExtractorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtractorProperty, MvtsShiftBehaviour) {
  const MvtsExtractor mvts;
  auto x = random_series(64, GetParam());
  const double std0 = feature_value(mvts, x, "std");
  const double slope0 = feature_value(mvts, x, "trend_slope");
  const double mean0 = feature_value(mvts, x, "mean");
  for (auto& v : x) v += 1000.0;
  EXPECT_NEAR(feature_value(mvts, x, "std"), std0, 1e-6);
  EXPECT_NEAR(feature_value(mvts, x, "trend_slope"), slope0, 1e-6);
  EXPECT_NEAR(feature_value(mvts, x, "mean"), mean0 + 1000.0, 1e-6);
}

TEST_P(ExtractorProperty, MvtsScaleBehaviour) {
  const MvtsExtractor mvts;
  auto x = random_series(64, GetParam() + 100);
  const double range0 = feature_value(mvts, x, "range");
  const double max0 = feature_value(mvts, x, "max");
  for (auto& v : x) v *= 2.0;
  EXPECT_NEAR(feature_value(mvts, x, "range"), 2.0 * range0, 1e-8);
  EXPECT_NEAR(feature_value(mvts, x, "max"), 2.0 * max0, 1e-8);
}

TEST_P(ExtractorProperty, TsfreshReversalFlipsTrend) {
  const TsfreshExtractor ts;
  auto x = random_series(64, GetParam() + 200);
  // Add a clear trend so the slope is non-trivial.
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += 0.5 * i;
  const double slope = feature_value(ts, x, "trend_slope");
  std::vector<double> rev(x.rbegin(), x.rend());
  EXPECT_NEAR(feature_value(ts, rev, "trend_slope"), -slope, 1e-8);
}

TEST_P(ExtractorProperty, TsfreshLocationFeaturesInUnitRange) {
  const TsfreshExtractor ts;
  const auto x = random_series(48, GetParam() + 300);
  for (const char* name : {"first_loc_max", "first_loc_min", "last_loc_max",
                           "last_loc_min", "index_mass_q50"}) {
    const double v = feature_value(ts, x, name);
    EXPECT_GE(v, 0.0) << name;
    EXPECT_LE(v, 1.0) << name;
  }
}

TEST_P(ExtractorProperty, TsfreshEnergyChunksSumToOne) {
  const TsfreshExtractor ts;
  const auto x = random_series(80, GetParam() + 400);
  double total = 0.0;
  for (const char* name :
       {"energy_chunk0", "energy_chunk1", "energy_chunk2", "energy_chunk3"}) {
    total += feature_value(ts, x, name);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractorProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

// --------------------------------------------------------- chi2 properties ---

class Chi2Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Chi2Property, ScoresNonNegativeAndRowPermutationInvariant) {
  Rng rng(GetParam());
  const std::size_t n = 60;
  Matrix x(n, 5);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<int>(i % 3);
    for (std::size_t j = 0; j < 5; ++j) x(i, j) = rng.uniform();
  }
  const auto scores = stats::chi2_scores(x, y);
  for (const double s : scores) EXPECT_GE(s, 0.0);

  // Permuting the rows (keeping labels attached) leaves the scores intact.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  rng.shuffle(perm);
  const Matrix xp = x.select_rows(perm);
  std::vector<int> yp;
  for (const std::size_t i : perm) yp.push_back(y[i]);
  const auto scores_p = stats::chi2_scores(xp, yp);
  for (std::size_t j = 0; j < scores.size(); ++j) {
    EXPECT_NEAR(scores[j], scores_p[j], 1e-9);
  }
}

TEST_P(Chi2Property, ScalingAFeatureScalesItsScore) {
  // chi2 statistics scale linearly with the feature's magnitude (they are
  // count-based), which is why Min-Max scaling precedes selection.
  Rng rng(GetParam() + 50);
  const std::size_t n = 40;
  Matrix x(n, 2);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<int>(i % 2);
    x(i, 0) = y[i] == 1 ? 1.0 + rng.uniform(0.0, 0.1) : rng.uniform(0.0, 0.1);
    x(i, 1) = 3.0 * x(i, 0);
  }
  const auto scores = stats::chi2_scores(x, y);
  EXPECT_NEAR(scores[1], 3.0 * scores[0], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Chi2Property,
                         ::testing::Range<std::uint64_t>(1, 6));

// -------------------------------------------------------- metric identities ---

class MetricsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricsProperty, F1BoundsAndPerfectionIdentity) {
  Rng rng(GetParam());
  const int k = 4;
  std::vector<int> y_true(100);
  std::vector<int> y_pred(100);
  for (std::size_t i = 0; i < 100; ++i) {
    y_true[i] = static_cast<int>(rng.uniform_index(k));
    y_pred[i] = static_cast<int>(rng.uniform_index(k));
  }
  const EvalResult ev = evaluate(y_true, y_pred, k);
  EXPECT_GE(ev.macro_f1, 0.0);
  EXPECT_LE(ev.macro_f1, 1.0);
  EXPECT_GE(ev.false_alarm_rate, 0.0);
  EXPECT_LE(ev.false_alarm_rate, 1.0);
  EXPECT_GE(ev.anomaly_miss_rate, 0.0);
  EXPECT_LE(ev.anomaly_miss_rate, 1.0);
  EXPECT_DOUBLE_EQ(evaluate(y_true, y_true, k).macro_f1, 1.0);
}

TEST_P(MetricsProperty, ConfusionRowSumsMatchClassCounts) {
  Rng rng(GetParam() + 10);
  const int k = 5;
  std::vector<int> y_true(80);
  std::vector<int> y_pred(80);
  std::vector<double> counts(k, 0.0);
  for (std::size_t i = 0; i < 80; ++i) {
    y_true[i] = static_cast<int>(rng.uniform_index(k));
    y_pred[i] = static_cast<int>(rng.uniform_index(k));
    counts[static_cast<std::size_t>(y_true[i])] += 1.0;
  }
  const Matrix cm = confusion_matrix(y_true, y_pred, k);
  for (int c = 0; c < k; ++c) {
    double row = 0.0;
    for (int j = 0; j < k; ++j) {
      row += cm(static_cast<std::size_t>(c), static_cast<std::size_t>(j));
    }
    EXPECT_DOUBLE_EQ(row, counts[static_cast<std::size_t>(c)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty,
                         ::testing::Range<std::uint64_t>(1, 6));

// ------------------------------------------------- injector monotonicity ---

class InjectorIntensityProperty
    : public ::testing::TestWithParam<AnomalyType> {};

TEST_P(InjectorIntensityProperty, FootprintGrowsWithIntensity) {
  // Total absolute channel deviation, averaged over a run, must be
  // monotone (within tolerance) across the Volta intensity grid.
  const AnomalyType type = GetParam();
  auto footprint = [&](double intensity) {
    const auto injector = make_injector(type, intensity);
    Rng rng(7);
    double acc = 0.0;
    for (int t = 0; t < 60; ++t) {
      InjectionContext ctx;
      ctx.t_seconds = static_cast<double>(t);
      ctx.t_frac = t / 59.0;
      ctx.mem_capacity_gb = 64.0;
      NodeLoad base;
      base.cpu_user = 0.6;
      base.cpu_system = 0.05;
      base.cache_miss_rate = 0.1;
      base.mem_used_gb = 12.0;
      base.mem_bw_util = 0.3;
      base.net_tx_rate = 200.0;
      base.net_rx_rate = 190.0;
      base.io_read_rate = 2.0;
      base.io_write_rate = 1.0;
      base.power_watts = 250.0;
      NodeLoad injected = base;
      injector->apply(ctx, injected, rng);
      acc += std::abs(injected.cpu_user - base.cpu_user) +
             std::abs(injected.cache_miss_rate - base.cache_miss_rate) +
             std::abs(injected.mem_bw_util - base.mem_bw_util) +
             std::abs(injected.mem_used_gb - base.mem_used_gb) / 64.0 +
             std::abs(injected.net_tx_rate - base.net_tx_rate) / 200.0 +
             std::abs(injected.power_watts - base.power_watts) / 250.0 +
             std::abs(injected.cpu_freq - base.cpu_freq);
    }
    return acc;
  };
  const auto grid = volta_intensities();
  double prev = footprint(grid.front());
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double cur = footprint(grid[i]);
    EXPECT_GE(cur, prev * 0.95)
        << anomaly_name(type) << " at intensity " << grid[i];
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Types, InjectorIntensityProperty,
                         ::testing::ValuesIn(kAnomalyTypes),
                         [](const auto& info) {
                           return std::string(anomaly_name(info.param));
                         });

// ------------------------------------------------ serialization robustness ---

TEST(SerializationRobustness, TruncationAlwaysThrowsNeverCrashes) {
  Rng rng(1);
  Matrix x(30, 4);
  std::vector<int> y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    y[i] = static_cast<int>(i % 3);
    for (std::size_t j = 0; j < 4; ++j) x(i, j) = rng.uniform();
  }
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 4;
  RandomForest rf(cfg, 1);
  rf.fit(x, y);

  std::stringstream full;
  save_classifier(full, rf);
  const std::string bytes = full.str();

  for (const double frac : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const auto cut = static_cast<std::size_t>(frac * bytes.size());
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW(load_classifier(truncated), Error) << "cut at " << cut;
  }
}

namespace {

// A small but fully populated matrix (all provenance vectors filled) so the
// on-disk layout exercises every section of the format.
FeatureMatrix tiny_feature_matrix() {
  Rng rng(7);
  FeatureMatrix fm;
  fm.x = Matrix(8, 3);
  fm.names = {"m0|mean", "m0|std", "m1|mean"};
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 3; ++j) fm.x(i, j) = rng.uniform();
    fm.labels.push_back(static_cast<int>(i % 4));
    fm.app_ids.push_back(static_cast<int>(i % 2));
    fm.input_ids.push_back(static_cast<int>(i % 3));
    fm.run_ids.push_back(static_cast<int>(i / 4));
    fm.node_ids.push_back(static_cast<int>(i % 4));
  }
  return fm;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(SerializationRobustness, FeatureMatrixRoundtripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "fm_roundtrip.bin";
  const FeatureMatrix fm = tiny_feature_matrix();
  save_feature_matrix(path, fm);
  const FeatureMatrix back = load_feature_matrix(path);
  ASSERT_EQ(back.x.rows(), fm.x.rows());
  ASSERT_EQ(back.x.cols(), fm.x.cols());
  for (std::size_t i = 0; i < fm.x.rows(); ++i) {
    for (std::size_t j = 0; j < fm.x.cols(); ++j) {
      EXPECT_EQ(back.x(i, j), fm.x(i, j));
    }
  }
  EXPECT_EQ(back.names, fm.names);
  EXPECT_EQ(back.labels, fm.labels);
  EXPECT_EQ(back.node_ids, fm.node_ids);
}

TEST(SerializationRobustness, FeatureMatrixTruncationAlwaysThrowsNeverCrashes) {
  const std::string path = ::testing::TempDir() + "fm_full.bin";
  const std::string cut_path = ::testing::TempDir() + "fm_cut.bin";
  save_feature_matrix(path, tiny_feature_matrix());
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 16u);

  for (const double frac : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const auto cut = static_cast<std::size_t>(frac * bytes.size());
    spit(cut_path, bytes.substr(0, cut));
    EXPECT_THROW(load_feature_matrix(cut_path), Error) << "cut at " << cut;
  }
}

TEST(SerializationRobustness, FeatureMatrixBitFlipRejected) {
  const std::string path = ::testing::TempDir() + "fm_flip.bin";
  save_feature_matrix(path, tiny_feature_matrix());
  std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 4u);
  bytes[2] ^= 0x20;  // corrupt the magic/header
  spit(path, bytes);
  EXPECT_THROW(load_feature_matrix(path), Error);
}

TEST(SerializationRobustness, BitFlippedMagicRejected) {
  Rng rng(2);
  Matrix x(12, 2);
  std::vector<int> y(12);
  for (std::size_t i = 0; i < 12; ++i) {
    y[i] = static_cast<int>(i % 2);
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
  }
  ForestConfig cfg;
  cfg.num_classes = 2;
  cfg.n_estimators = 2;
  RandomForest rf(cfg, 1);
  rf.fit(x, y);

  std::stringstream full;
  save_classifier(full, rf);
  std::string bytes = full.str();
  bytes[3] ^= 0x40;  // corrupt the magic
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_classifier(corrupted), Error);
}

}  // namespace
}  // namespace alba
