// Fleet benchmark: a seeded traffic generator driving a replicated
// ServingFleet, sweeping replica count x routing policy x chaos and
// reporting per-replica and aggregate stats (served/spilled/failovers,
// p50/p99, cache hit rate). The sweep is where consistent-hash routing
// earns its keep: the same traffic through RoundRobin scatters repeat
// windows across replicas and the per-replica LRU caches stay cold.
//
// --smoke runs the CI gate instead of the sweep: routing determinism
// under a fixed seed (two same-seed fleets route identically), request
// conservation (every admitted request ends in exactly one typed
// outcome), and the cache-locality claim (consistent-hash hit rate
// strictly beats round-robin on the same stream). Results land in
// BENCH_fleet.json for the workflow artifact.
//
// --chaos-smoke runs the fleet resilience gate: killing a replica under
// load loses no admitted request fleet-wide; slow-extraction on a subset
// degrades latency but not outcomes; a poisoned canary push dies on the
// canary and never reaches a second replica; a live-regressing canary is
// auto-rolled-back by the guard window; a healthy canary promotes
// fleet-wide; and a fleet drain sheds typed.
//
//   ./build/bench/bench_fleet                 # the sweep
//   ./build/bench/bench_fleet --smoke         # CI gate, exit 1 on failure
//   ./build/bench/bench_fleet --chaos-smoke   # CI fleet resilience gate
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "alba.hpp"

using namespace alba;

namespace {

constexpr const char* kBundleA = "/tmp/albadross_bench_fleet_a.bin";
constexpr const char* kBundleB = "/tmp/albadross_bench_fleet_b.bin";

// A stream of per-node windows from fresh runs; every 4th window repeats
// an earlier one (a stalled collector / dashboard re-check) so routing
// locality has cache hits to win.
std::vector<Matrix> make_stream(const RunGenerator& generator,
                                std::size_t count, std::uint64_t seed) {
  std::vector<Matrix> windows;
  const auto num_apps = static_cast<int>(generator.apps().size());
  int run_id = 2000;
  while (windows.size() < count) {
    RunSpec spec;
    spec.app_id = run_id % num_apps;
    spec.input_id = run_id % 2;
    spec.nodes = 2;
    const std::size_t variant = static_cast<std::size_t>(run_id) % 4;
    if (variant != 0) {
      spec.anomaly = kAnomalyTypes[variant - 1];
      spec.intensity = variant == 1 ? 0.5 : 1.0;
    }
    spec.run_id = run_id;
    spec.seed = seed + static_cast<std::uint64_t>(run_id);
    ++run_id;
    for (const Sample& s : generator.generate_run(spec)) {
      if (windows.size() >= count) break;
      if (windows.size() % 4 == 3 && windows.size() > 4) {
        windows.push_back(windows[windows.size() / 2]);
        continue;
      }
      windows.push_back(s.series);
    }
  }
  return windows;
}

std::unique_ptr<ServingFleet> make_fleet(std::size_t replicas,
                                         RoutingPolicy policy,
                                         std::uint64_t seed,
                                         FleetChaos* chaos = nullptr) {
  std::vector<std::shared_ptr<DiagnosisService>> services;
  for (std::size_t r = 0; r < replicas; ++r) {
    ServingConfig serving;
    if (chaos != nullptr) serving.extraction_hook = chaos->hook_for(r);
    services.push_back(std::make_shared<DiagnosisService>(
        load_model_bundle_file(kBundleA), serving));
  }
  FleetConfig config;
  config.routing = policy;
  config.seed = seed;
  config.host.workers = 2;
  config.host.queue_capacity = 32;
  return std::make_unique<ServingFleet>(std::move(services), config);
}

struct TrafficTally {
  std::size_t calls = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t all_shed = 0;
  std::size_t untyped = 0;  // exceptions or unknown statuses: always a bug
};

// `clients` threads interleave over the stream for `rounds` passes; every
// outcome is tallied so the gates can prove conservation.
TrafficTally drive(ServingFleet& fleet, const std::vector<Matrix>& windows,
                   std::size_t clients, int rounds) {
  std::atomic<std::size_t> ok{0}, failed{0}, all_shed{0}, untyped{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int round = 0; round < rounds; ++round) {
        for (std::size_t i = c; i < windows.size(); i += clients) {
          try {
            const FleetResult r = fleet.diagnose(windows[i]);
            switch (r.status) {
              case FleetStatus::Ok: ++ok; break;
              case FleetStatus::Failed: ++failed; break;
              case FleetStatus::AllShed: ++all_shed; break;
              default: ++untyped; break;
            }
          } catch (...) {
            ++untyped;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  TrafficTally tally;
  tally.ok = ok;
  tally.failed = failed;
  tally.all_shed = all_shed;
  tally.untyped = untyped;
  tally.calls = tally.ok + tally.failed + tally.all_shed + tally.untyped;
  return tally;
}

// Aggregate cache hit rate across the fleet's per-replica services.
double fleet_hit_rate(const FleetStats& s) {
  std::vector<ServingStats> parts;
  parts.reserve(s.replicas.size());
  for (const ReplicaStats& r : s.replicas) parts.push_back(r.service);
  return merge_serving_stats(parts).hit_rate();
}

// ------------------------------------------------------------- CI gates ---

int run_smoke(const std::vector<Matrix>& windows, std::uint64_t seed) {
  std::size_t violations = 0;
  const auto check = [&violations](bool ok, const char* what) {
    if (!ok) {
      ++violations;
      std::printf("[smoke] VIOLATION: %s\n", what);
    }
  };
  constexpr std::size_t kReplicas = 3;

  // ---- routing determinism: same seed + replica set => same routes ------
  {
    auto fleet_a = make_fleet(kReplicas, RoutingPolicy::ConsistentHash, seed);
    auto fleet_b = make_fleet(kReplicas, RoutingPolicy::ConsistentHash, seed);
    std::size_t diverged = 0;
    for (const Matrix& w : windows) {
      if (fleet_a->preferred_replica(w) != fleet_b->preferred_replica(w)) {
        ++diverged;
      }
      if (fleet_a->preferred_replica(w) != fleet_a->preferred_replica(w)) {
        ++diverged;  // and stable across repeated asks
      }
    }
    check(diverged == 0, "same-seed fleets routed a window differently");
    std::printf("[smoke] routing: %zu windows routed identically by two "
                "seed-%llu fleets\n",
                windows.size(), static_cast<unsigned long long>(seed));
  }

  // ---- cache locality: consistent-hash must beat round-robin ------------
  // Single client, two passes: the second pass repeats every window, so a
  // router that keeps windows on their replica converts it to cache hits.
  double ch_hit = 0.0, rr_hit = 0.0, ch_p99 = 0.0, rr_p99 = 0.0;
  std::uint64_t ch_served = 0;
  {
    auto ch = make_fleet(kReplicas, RoutingPolicy::ConsistentHash, seed);
    const TrafficTally tally = drive(*ch, windows, 1, 2);
    const FleetStats s = ch->stats();
    check(tally.untyped == 0, "consistent-hash: untyped outcome escaped");
    check(tally.ok == tally.calls, "consistent-hash: healthy fleet shed");
    check(s.requests == tally.calls &&
              s.served + s.failed + s.all_shed == s.requests,
          "consistent-hash: request accounting does not add up");
    check(s.spilled == 0, "healthy fleet spilled");
    ch_hit = fleet_hit_rate(s);
    ch_p99 = s.p99_ms;
    ch_served = s.served;
  }
  {
    auto rr = make_fleet(kReplicas, RoutingPolicy::RoundRobin, seed);
    const TrafficTally tally = drive(*rr, windows, 1, 2);
    const FleetStats s = rr->stats();
    check(tally.untyped == 0 && tally.ok == tally.calls,
          "round-robin: traffic did not serve cleanly");
    rr_hit = fleet_hit_rate(s);
    rr_p99 = s.p99_ms;
  }
  std::printf("[smoke] cache: consistent-hash hit rate %.1f%% vs "
              "round-robin %.1f%% (p99 %.2fms vs %.2fms)\n",
              100.0 * ch_hit, 100.0 * rr_hit, ch_p99, rr_p99);
  check(ch_hit > rr_hit,
        "consistent-hash cache hit rate did not beat round-robin");

  std::ofstream os("BENCH_fleet.json");
  os << "[\n"
     << "  {\"policy\": \"consistent-hash\", \"replicas\": " << kReplicas
     << ", \"windows\": " << windows.size() * 2
     << ", \"served\": " << ch_served << ", \"hit_rate\": " << ch_hit
     << ", \"p99_ms\": " << ch_p99 << "},\n"
     << "  {\"policy\": \"round-robin\", \"replicas\": " << kReplicas
     << ", \"windows\": " << windows.size() * 2
     << ", \"hit_rate\": " << rr_hit << ", \"p99_ms\": " << rr_p99 << "}\n"
     << "]\n";
  std::printf("[smoke] results written to BENCH_fleet.json\n");

  if (violations != 0) {
    std::printf("[smoke] FAILED: %zu violated invariants\n", violations);
    return 1;
  }
  std::printf("[smoke] ok: deterministic routing, exact conservation, "
              "consistent-hash cache locality confirmed\n");
  return 0;
}

int run_chaos_smoke(const std::vector<Matrix>& windows, std::uint64_t seed) {
  std::size_t violations = 0;
  const auto check = [&violations](bool ok, const char* what) {
    if (!ok) {
      ++violations;
      std::printf("[chaos-smoke] VIOLATION: %s\n", what);
    }
  };

  // ---- phase 1: lose a replica under load -------------------------------
  // Every admitted request must fail over or shed with a type — none may
  // vanish, fleet-wide. The victim is the replica owning the first
  // window's arc, so traffic is guaranteed to hit it: its host starts
  // shedding before the fleet knows (drain), the fleet discovers it the
  // hard way (typed shed -> spill -> ejection), and mid-traffic it is
  // killed outright.
  {
    auto fleet = make_fleet(3, RoutingPolicy::ConsistentHash, seed);
    const std::size_t victim = fleet->preferred_replica(windows[0]);
    fleet->host(victim).drain();
    std::atomic<std::size_t> ok{0}, failed{0}, all_shed{0}, untyped{0};
    constexpr std::size_t kClients = 4;
    constexpr int kRounds = 2;
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int round = 0; round < kRounds; ++round) {
          for (std::size_t i = c; i < windows.size(); i += kClients) {
            try {
              const FleetResult r = fleet->diagnose(windows[i]);
              if (r.status == FleetStatus::Ok) ++ok;
              else if (r.status == FleetStatus::Failed) ++failed;
              else if (r.status == FleetStatus::AllShed) ++all_shed;
              else ++untyped;
            } catch (...) {
              ++untyped;
            }
          }
        }
      });
    }
    // Genuinely mid-traffic: let the shed->spill->eject discovery happen
    // on live requests first, then finish the victim off for good.
    const auto total =
        static_cast<std::uint64_t>(kClients * kRounds * windows.size() / 4);
    while (fleet->stats().requests < total) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    fleet->kill(victim);
    for (auto& t : clients) t.join();
    const FleetStats s = fleet->stats();
    std::printf("[chaos-smoke] kill replica %zu: %s\n", victim,
                format_fleet_summary(s).c_str());
    check(untyped == 0, "kill phase: an outcome escaped the typed surface");
    check(ok + failed + all_shed == s.requests,
          "kill phase: an admitted request vanished");
    check(s.served + s.failed + s.all_shed == s.requests,
          "kill phase: fleet accounting does not add up");
    check(ok == s.requests, "kill phase: a request was not failed over");
    check(s.spilled >= 1 && s.failovers >= 1,
          "losing the arc owner never exercised failover");
    check(!fleet->in_ring(victim), "killed replica still in the ring");
    check(s.replicas[victim].dead, "killed replica not marked dead");
    // Traffic after the kill routes around the corpse without probing it
    // (probes while it was merely ejected-but-alive were legitimate).
    const std::uint64_t probes_at_kill = s.replicas[victim].probes;
    for (std::size_t i = 0; i < 16; ++i) {
      const FleetResult r = fleet->diagnose(windows[i % windows.size()]);
      check(r.ok() && r.replica != victim, "post-kill request hit the corpse");
    }
    check(fleet->stats().replicas[victim].probes == probes_at_kill,
          "dead replica was probed for readmission");
  }

  // ---- phase 2: slow extraction on a subset of replicas -----------------
  {
    FleetChaosConfig chaos_config;
    chaos_config.base.slow_extract_rate = 0.5;
    chaos_config.base.slow_extract_ms = 3.0;
    chaos_config.targets = {0};
    chaos_config.seed = seed + 1;
    FleetChaos chaos(chaos_config, 3);
    auto fleet = make_fleet(3, RoutingPolicy::ConsistentHash, seed, &chaos);
    const TrafficTally tally = drive(*fleet, windows, 2, 1);
    const FleetStats s = fleet->stats();
    std::printf("[chaos-smoke] slow-subset: %s (%llu slowdowns on "
                "replica 0)\n",
                format_fleet_summary(s).c_str(),
                static_cast<unsigned long long>(chaos.slowdowns_injected()));
    check(tally.untyped == 0, "slow phase: untyped outcome");
    check(tally.ok == tally.calls,
          "slow extractions must degrade latency, not outcomes");
    check(chaos.slowdowns_injected() > 0, "chaos injected no slowdowns");
    check(chaos.failures_injected() == 0, "slow-only chaos injected failures");
  }

  // ---- phase 3: poisoned canary push ------------------------------------
  // The poison must die on the canary's probe-validated reload; no other
  // replica may ever serve (or even load) the bad bundle.
  const std::string bad_path = std::string(kBundleB) + ".poisoned";
  {
    auto fleet = make_fleet(3, RoutingPolicy::ConsistentHash, seed);
    fleet->set_probe_windows({windows[0], windows[1]});
    write_poisoned_bundle(kBundleB, bad_path, BundlePoison::Truncate,
                          seed + 2);
    RolloutConfig rollout;
    rollout.canary = 1;
    const ReloadReport push = fleet->start_rollout(bad_path, rollout);
    std::printf("[chaos-smoke] poisoned push: %s\n",
                push.summary().c_str());
    check(!push.ok && push.rolled_back, "poisoned canary push was accepted");
    check(fleet->rollout_state() == RolloutState::CanaryRejected,
          "poisoned push did not end CanaryRejected");
    check(fleet->advance_rollout() == RolloutDecision::RolledBack,
          "rejected rollout did not answer RolledBack");
    for (std::size_t r = 0; r < 3; ++r) {
      check(fleet->host(r).generation() == 1,
            "a replica changed generation under a poisoned push");
    }
    const FleetResult after = fleet->diagnose(windows[2]);
    check(after.ok() && after.result.generation == 1,
          "fleet stopped serving generation 1 after the rejected push");
  }

  // ---- phase 4: live-regressing canary is guard-rolled-back -------------
  // The bundle loads and validates, but the canary regresses live p99;
  // the guard window must roll it back without any other replica ever
  // loading it.
  {
    FleetChaosConfig chaos_config;
    chaos_config.base.slow_extract_rate = 1.0;
    chaos_config.base.slow_extract_ms = 25.0;
    chaos_config.targets = {0};
    chaos_config.seed = seed + 3;
    FleetChaos chaos(chaos_config, 3);
    chaos.set_enabled(false);
    auto fleet = make_fleet(3, RoutingPolicy::ConsistentHash, seed, &chaos);
    fleet->set_probe_windows({windows[0]});
    RolloutConfig rollout;
    rollout.canary = 0;
    rollout.guard_min_samples = 4;
    rollout.max_error_rate_delta = 1.0;  // isolate the p99 trigger
    rollout.max_p99_ratio = 2.0;
    const ReloadReport push = fleet->start_rollout(kBundleB, rollout);
    check(push.ok, "healthy bundle failed the canary push");
    chaos.set_enabled(true);  // regression switches on after the push
    RolloutDecision decision = RolloutDecision::NeedMoreTraffic;
    for (int i = 0;
         i < 2000 && decision == RolloutDecision::NeedMoreTraffic; ++i) {
      (void)fleet->diagnose(windows[i % windows.size()]);
      decision = fleet->advance_rollout();
    }
    chaos.set_enabled(false);
    const RolloutReport report = fleet->rollout_report();
    std::printf("[chaos-smoke] guard: %s\n", report.summary().c_str());
    check(decision == RolloutDecision::RolledBack,
          "regressing canary was not rolled back");
    check(report.rollback.ok, "canary restore reload failed");
    check(fleet->host(0).generation() == 3,  // initial + push + restore
          "canary generation inconsistent after rollback");
    check(fleet->host(1).generation() == 1 &&
              fleet->host(2).generation() == 1,
          "a non-canary replica loaded a bundle that never promoted");
  }

  // ---- phase 5: healthy canary promotes fleet-wide ----------------------
  {
    auto fleet = make_fleet(3, RoutingPolicy::ConsistentHash, seed);
    fleet->set_probe_windows({windows[0]});
    RolloutConfig rollout;
    rollout.canary = 2;
    rollout.guard_min_samples = 4;
    const ReloadReport push = fleet->start_rollout(kBundleB, rollout);
    check(push.ok, "promote phase: canary push failed");
    RolloutDecision decision = RolloutDecision::NeedMoreTraffic;
    for (int i = 0;
         i < 2000 && decision == RolloutDecision::NeedMoreTraffic; ++i) {
      (void)fleet->diagnose(windows[i % windows.size()]);
      decision = fleet->advance_rollout();
    }
    std::printf("[chaos-smoke] promote: %s\n",
                fleet->rollout_report().summary().c_str());
    check(decision == RolloutDecision::Promoted,
          "healthy canary never promoted");
    for (std::size_t r = 0; r < 3; ++r) {
      check(fleet->host(r).generation() == 2,
            "promotion left a replica on the old bundle");
    }

    // ---- phase 6: fleet drain is terminal and typed ---------------------
    fleet->drain();
    const FleetResult shed = fleet->diagnose(windows[0]);
    check(shed.status == FleetStatus::AllShed &&
              shed.result.status == RequestStatus::RejectedDraining,
          "post-drain submission was not shed as draining");
    fleet->drain();  // idempotent
  }
  std::remove(bad_path.c_str());

  if (violations != 0) {
    std::printf("[chaos-smoke] FAILED: %zu violated invariants\n",
                violations);
    return 1;
  }
  std::printf("[chaos-smoke] ok: no request lost to a kill, poisoned "
              "canary contained, guard auto-rollback and promotion both "
              "exercised, drain typed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int windows = 160;
  std::uint64_t seed = 7;
  bool smoke = false;
  bool chaos_smoke = false;
  std::string out_csv;
  Cli cli("bench_fleet",
          "Replicated-fleet benchmark: replica count x routing policy x "
          "chaos sweep over a ServingFleet (--smoke for the CI routing/"
          "cache gate, --chaos-smoke for the fleet resilience gate).");
  cli.flag("windows", &windows, "distinct windows in the traffic stream");
  cli.flag("seed", &seed, "stream + ring seed");
  cli.flag("smoke", &smoke,
           "assert deterministic routing, conservation, and consistent-hash "
           "cache locality; writes BENCH_fleet.json");
  cli.flag("chaos-smoke", &chaos_smoke,
           "kill/degrade replicas and push poisoned/regressing canaries, "
           "assert containment and conservation");
  cli.flag("out", &out_csv, "per-replica CSV dump path (empty = none)");
  cli.parse(argc, argv);
  set_log_level(LogLevel::Warn);

  // ---- train a small model, freeze two bundles --------------------------
  DatasetConfig cfg = tiny_config();
  cfg.seed = seed;
  std::printf("[setup] building dataset + training classifiers...\n");
  const ExperimentData data = build_experiment_data(cfg);
  const SplitIndices split = make_split(data, cfg.test_fraction, seed);
  const PreparedSplit prepared = prepare_split(data, split, cfg.select_k);
  auto model_a = make_model_factory("rf", kNumClasses, seed)(
      table4_optimum("rf", false));
  model_a->fit(prepared.train_x, prepared.train_y);
  export_model_bundle(kBundleA, data, prepared, *model_a);
  auto model_b = make_model_factory("lr", kNumClasses, seed)(
      table4_optimum("lr", false));
  model_b->fit(prepared.train_x, prepared.train_y);
  export_model_bundle(kBundleB, data, prepared, *model_b);
  std::printf("[setup] bundles exported to %s / %s\n", kBundleA, kBundleB);

  const RunGenerator generator(cfg.system, cfg.registry, cfg.sim);
  // 95 on purpose: a stream length divisible by the replica count would
  // let round-robin land repeat passes on the same replica by accident,
  // flattering the cache-cold baseline in the smoke comparison.
  const std::size_t n =
      (smoke || chaos_smoke) ? 95 : static_cast<std::size_t>(windows);
  const std::vector<Matrix> stream = make_stream(generator, n, seed + 1);

  if (smoke) return run_smoke(stream, seed);
  if (chaos_smoke) return run_chaos_smoke(stream, seed);

  // ---- the sweep ---------------------------------------------------------
  const std::size_t clients = std::min<std::size_t>(
      4, std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  TextTable table({"replicas", "policy", "chaos", "served", "spilled",
                   "failovers", "p50 ms", "p99 ms", "cache hit %"});
  std::unique_ptr<ServingFleet> last_fleet;
  for (const std::size_t replicas : {2u, 4u}) {
    for (const RoutingPolicy policy :
         {RoutingPolicy::ConsistentHash, RoutingPolicy::RoundRobin}) {
      for (const bool chaotic : {false, true}) {
        std::unique_ptr<FleetChaos> chaos;
        if (chaotic) {
          FleetChaosConfig chaos_config;
          chaos_config.base.slow_extract_rate = 0.3;
          chaos_config.base.slow_extract_ms = 2.0;
          chaos_config.base.extract_fail_rate = 0.05;
          chaos_config.targets = {0};
          chaos_config.seed = seed + replicas;
          chaos = std::make_unique<FleetChaos>(chaos_config, replicas);
        }
        auto fleet = make_fleet(replicas, policy, seed, chaos.get());
        drive(*fleet, stream, clients, 2);
        const FleetStats s = fleet->stats();
        table.add_row({std::to_string(replicas),
                       std::string(to_string(policy)),
                       chaotic ? "slow+fail@0" : "off",
                       std::to_string(s.served), std::to_string(s.spilled),
                       std::to_string(s.failovers),
                       strformat("%.3f", s.p50_ms),
                       strformat("%.3f", s.p99_ms),
                       strformat("%.1f", 100.0 * fleet_hit_rate(s))});
        last_fleet = std::move(fleet);
      }
    }
  }
  std::printf("\nfleet sweep over %zu windows x 2 rounds, %zu clients\n%s\n",
              stream.size(), clients, table.render().c_str());

  if (!out_csv.empty() && last_fleet) {
    // Per-replica breakdown + fleet-aggregate row for the last config.
    const FleetStats s = last_fleet->stats();
    std::vector<std::pair<std::string, ServingStats>> rows;
    for (const ReplicaStats& r : s.replicas) {
      rows.emplace_back(strformat("replica=%zu", r.id), r.service);
    }
    std::ofstream out(out_csv);
    write_fleet_serving_csv(out, rows);
    std::printf("per-replica CSV written to %s\n", out_csv.c_str());
  }
  return 0;
}
