# Empty dependencies file for bench_fig3_volta_queries.
# This may be replaced when dependencies are built.
