// CART decision-tree classifier with two split finders: the exact
// single-threaded splitter (sorts raw values at every node) and a
// histogram-based one (`SplitAlgo::Hist`) that scans quantized bin
// histograms — see ml/binning.hpp. Per-node feature subsampling is the
// randomness source of the forest; gini or entropy impurity (both appear
// in the paper's Table IV grid).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "ml/binning.hpp"
#include "ml/classifier.hpp"

namespace alba {

class CompiledTreePredictor;

enum class SplitCriterion { Gini, Entropy };

struct TreeConfig {
  int num_classes = 2;
  int max_depth = -1;        // -1 = unlimited
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  // Features examined per split: 0 = all, -1 = floor(sqrt(F)), >0 = exactly.
  int max_features = 0;
  SplitCriterion criterion = SplitCriterion::Gini;
  SplitAlgo split_algo = SplitAlgo::Exact;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(TreeConfig config, std::uint64_t seed = 0);

  void fit(const Matrix& x, std::span<const int> y) override;

  /// Fits on a row subset (duplicates allowed — bootstrap sampling).
  void fit_on(const Matrix& x, std::span<const int> y,
              std::vector<std::size_t> indices);

  /// Like fit_on but reuses a caller-built binned view of `x` when the
  /// config selects `SplitAlgo::Hist` — the forest and the boosting loop
  /// quantize once and share the result across all trees. `binned` may be
  /// null (the tree quantizes for itself); it is ignored in Exact mode and
  /// never retained past the call.
  void fit_on(const Matrix& x, std::span<const int> y,
              std::vector<std::size_t> indices, const BinnedMatrix* binned);

  Matrix predict_proba(const Matrix& x) const override;
  Matrix predict_proba_reference(const Matrix& x) const override;
  void predict_proba_rows(const Matrix& x, std::span<const std::size_t> rows,
                          Matrix& out) const override;
  void predict_proba_row(std::span<const double> row,
                         std::span<double> out) const;

  /// Compiled flat-SoA predictor, built by fit()/restore(); null for trees
  /// fitted via fit_on (forest members predict through the forest's own
  /// compiled ensemble) or when compilation fell back.
  const std::shared_ptr<const CompiledTreePredictor>& compiled()
      const noexcept {
    return compiled_;
  }

  std::unique_ptr<Classifier> clone() const override;
  std::unique_ptr<Classifier> clone_reseeded(std::uint64_t seed) const override {
    return std::make_unique<DecisionTree>(config_, seed);
  }
  std::string name() const override { return "decision_tree"; }
  int num_classes() const noexcept override { return config_.num_classes; }
  bool fitted() const noexcept override { return !nodes_.empty(); }

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t leaf_count() const noexcept;
  int depth() const noexcept;
  const TreeConfig& config() const noexcept { return config_; }

  /// Mean-decrease-in-impurity feature importances, normalized to sum 1
  /// (all-zero when the tree is a single leaf). `num_features` must cover
  /// every feature index the tree splits on.
  std::vector<double> feature_importances(std::size_t num_features) const;

  /// Flat node layout, exposed for serialization.
  struct Node {
    int feature = -1;       // -1 for leaves
    double threshold = 0.0; // go left when value <= threshold
    int left = -1;
    int right = -1;
    int leaf_start = -1;    // index into leaf_probs_ for leaves
    // Total impurity decrease this split achieved (gain × node samples);
    // the raw material of mean-decrease-in-impurity importances.
    double importance = 0.0;
  };
  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  const std::vector<double>& leaf_probs() const noexcept { return leaf_probs_; }
  void restore(std::vector<Node> nodes, std::vector<double> leaf_probs);

 private:
  int build_node(const Matrix& x, std::span<const int> y,
                 std::vector<std::size_t>& indices, std::size_t begin,
                 std::size_t end, int depth, Rng& rng);
  int build_node_hist(const BinnedMatrix& binned, std::span<const int> y,
                      std::vector<std::size_t>& indices, std::size_t begin,
                      std::size_t end, int depth, Rng& rng,
                      std::vector<double>&& node_hist);
  int make_leaf(std::span<const int> y,
                std::span<const std::size_t> indices);

  TreeConfig config_;
  std::uint64_t seed_;
  std::vector<Node> nodes_;
  std::vector<double> leaf_probs_;
  std::shared_ptr<const CompiledTreePredictor> compiled_;
};

}  // namespace alba
