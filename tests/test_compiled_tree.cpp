// Tests for the compiled flat-SoA tree predictor (ml/compiled_tree.hpp):
// bit-identity of the compiled path against the reference object traversal
// for every tree model family under both split algorithms (with NaN
// telemetry mixed in), degenerate batch shapes, lifecycle rules (when
// compiled() must and must not exist), serialize/load recompilation, and
// cross-pool-size determinism via process re-execution.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/compiled_tree.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbm.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"

namespace alba {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Labeled synthetic data with NaN and infinite telemetry mixed in — the
// compiled path must agree with the reference on non-finite values too
// (both route left, the NaN-left rule).
struct Synth {
  Matrix x;
  std::vector<int> y;
};

Synth make_synth(std::size_t n, std::size_t f, std::uint64_t seed) {
  Rng rng(seed);
  Synth s;
  s.x = Matrix(n, f);
  for (std::size_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(i % 4);
    s.y.push_back(c);
    for (std::size_t j = 0; j < f; ++j) {
      const double u = rng.uniform();
      if (u < 0.02) {
        s.x(i, j) = kNaN;
        continue;
      }
      if (u < 0.03) {
        s.x(i, j) = (i + j) % 2 == 0 ? kInf : -kInf;
        continue;
      }
      const double signal =
          (j % 4 == static_cast<std::size_t>(c)) ? 0.7 : 0.0;
      s.x(i, j) = signal + 0.3 * rng.uniform();
    }
  }
  return s;
}

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

// Bitwise equality, not EXPECT_DOUBLE_EQ: the contract is that the compiled
// path reproduces the reference traversal exactly, ULP for ULP.
void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(bits_of(a(i, j)), bits_of(b(i, j)))
          << "row " << i << " col " << j << ": " << a(i, j)
          << " != " << b(i, j);
    }
  }
}

// Exercises one fitted model: full-batch, gathered-rows, single-row, and
// empty-batch predictions must all match the reference traversal bit for
// bit, on training data and on unseen rows.
void check_against_reference(const Classifier& model, const Matrix& train_x,
                             const Matrix& test_x) {
  for (const Matrix* x : {&train_x, &test_x}) {
    const Matrix reference = model.predict_proba_reference(*x);
    expect_bit_identical(model.predict_proba(*x), reference);

    // Gathered subset, deliberately out of order and with a repeat.
    std::vector<std::size_t> rows;
    for (std::size_t i = x->rows(); i-- > 0;) {
      if (i % 3 == 0) rows.push_back(i);
    }
    if (!rows.empty()) rows.push_back(rows.front());
    Matrix gathered;
    model.predict_proba_rows(*x, rows, gathered);
    ASSERT_EQ(gathered.rows(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t c = 0; c < gathered.cols(); ++c) {
        ASSERT_EQ(bits_of(gathered(i, c)), bits_of(reference(rows[i], c)))
            << "gathered row " << i << " (x row " << rows[i] << ")";
      }
    }

    // Single-row batch.
    Matrix one(1, x->cols());
    for (std::size_t j = 0; j < x->cols(); ++j) one(0, j) = (*x)(0, j);
    const Matrix one_probs = model.predict_proba(one);
    for (std::size_t c = 0; c < one_probs.cols(); ++c) {
      ASSERT_EQ(bits_of(one_probs(0, c)), bits_of(reference(0, c)));
    }
  }

  // Empty batch: no rows, correct shape, no crash.
  const Matrix empty(0, train_x.cols());
  const Matrix empty_probs = model.predict_proba(empty);
  EXPECT_EQ(empty_probs.rows(), 0u);
  EXPECT_EQ(empty_probs.cols(),
            static_cast<std::size_t>(model.num_classes()));
  Matrix empty_gather;
  model.predict_proba_rows(train_x, {}, empty_gather);
  EXPECT_EQ(empty_gather.rows(), 0u);
}

// ------------------------------------------------- bit-identity matrix ---

TEST(CompiledTree, DecisionTreeMatchesReferenceBothSplitAlgos) {
  const Synth train = make_synth(240, 12, 11);
  const Synth test = make_synth(90, 12, 12);
  for (const auto algo : {SplitAlgo::Exact, SplitAlgo::Hist}) {
    TreeConfig cfg;
    cfg.num_classes = 4;
    cfg.max_depth = 8;
    cfg.split_algo = algo;
    DecisionTree tree(cfg, 5);
    tree.fit(train.x, train.y);
    ASSERT_NE(tree.compiled(), nullptr);
    check_against_reference(tree, train.x, test.x);
  }
}

TEST(CompiledTree, RandomForestMatchesReferenceBothSplitAlgos) {
  const Synth train = make_synth(240, 12, 21);
  const Synth test = make_synth(90, 12, 22);
  for (const auto algo : {SplitAlgo::Exact, SplitAlgo::Hist}) {
    ForestConfig cfg;
    cfg.num_classes = 4;
    cfg.n_estimators = 14;
    cfg.max_depth = 7;
    cfg.split_algo = algo;
    RandomForest rf(cfg, 5);
    rf.fit(train.x, train.y);
    ASSERT_NE(rf.compiled(), nullptr);
    EXPECT_EQ(rf.compiled()->num_trees(), 14u);
    check_against_reference(rf, train.x, test.x);
  }
}

TEST(CompiledTree, GbmMatchesReferenceBothSplitAlgos) {
  const Synth train = make_synth(240, 12, 31);
  const Synth test = make_synth(90, 12, 32);
  for (const auto algo : {SplitAlgo::Exact, SplitAlgo::Hist}) {
    GbmConfig cfg;
    cfg.num_classes = 4;
    cfg.n_estimators = 7;
    cfg.num_leaves = 15;
    cfg.split_algo = algo;
    GbmClassifier gbm(cfg, 5);
    gbm.fit(train.x, train.y);
    ASSERT_NE(gbm.compiled(), nullptr);
    // One tree per class per round.
    EXPECT_EQ(gbm.compiled()->num_trees(), gbm.num_rounds() * 4u);
    check_against_reference(gbm, train.x, test.x);
  }
}

TEST(CompiledTree, AllNaNRowsRideLeftIdentically) {
  const Synth train = make_synth(160, 6, 41);
  ForestConfig cfg;
  cfg.num_classes = 4;
  cfg.n_estimators = 8;
  cfg.split_algo = SplitAlgo::Hist;
  RandomForest rf(cfg, 7);
  rf.fit(train.x, train.y);
  ASSERT_NE(rf.compiled(), nullptr);
  Matrix x(3, 6, kNaN);
  for (std::size_t j = 0; j < 6; ++j) x(1, j) = kInf;
  for (std::size_t j = 0; j < 6; ++j) x(2, j) = -kInf;
  expect_bit_identical(rf.predict_proba(x), rf.predict_proba_reference(x));
}

// An Exact-trained forest grown without depth limits accumulates far more
// than 255 distinct thresholds per feature, forcing the uint16 code path;
// it must stay bit-identical too.
TEST(CompiledTree, WideCodePathStaysBitIdentical) {
  Rng rng(51);
  const std::size_t n = 900;
  Matrix x(n, 2);
  std::vector<int> y;
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y.push_back(static_cast<int>(
        (x(i, 0) + 0.3 * rng.normal() > 0.0 ? 1 : 0) +
        (x(i, 1) > 0.0 ? 2 : 0)));
  }
  ForestConfig cfg;
  cfg.num_classes = 4;
  cfg.n_estimators = 10;
  cfg.max_depth = -1;  // unlimited: each tree memorizes its bootstrap
  cfg.split_algo = SplitAlgo::Exact;
  RandomForest rf(cfg, 9);
  rf.fit(x, y);
  ASSERT_NE(rf.compiled(), nullptr);
  EXPECT_TRUE(rf.compiled()->wide_codes());
  expect_bit_identical(rf.predict_proba(x), rf.predict_proba_reference(x));
}

// ------------------------------------------------------------ lifecycle ---

TEST(CompiledTree, FitOnTreesDoNotCarryACompiledPredictor) {
  const Synth train = make_synth(120, 6, 61);
  TreeConfig cfg;
  cfg.num_classes = 4;
  DecisionTree tree(cfg, 1);
  std::vector<std::size_t> all(train.x.rows());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  tree.fit_on(train.x, train.y, all);
  // Forest members predict through the forest-level ensemble; a per-member
  // compiled predictor would be dead weight (and, if stale, wrong).
  EXPECT_EQ(tree.compiled(), nullptr);
  // A subsequent full fit() builds one.
  tree.fit(train.x, train.y);
  EXPECT_NE(tree.compiled(), nullptr);
}

TEST(CompiledTree, RefitReplacesTheCompiledPredictor) {
  const Synth a = make_synth(150, 8, 71);
  const Synth b = make_synth(150, 8, 72);
  ForestConfig cfg;
  cfg.num_classes = 4;
  cfg.n_estimators = 5;
  RandomForest rf(cfg, 2);
  rf.fit(a.x, a.y);
  const auto first = rf.compiled();
  ASSERT_NE(first, nullptr);
  rf.fit(b.x, b.y);
  ASSERT_NE(rf.compiled(), nullptr);
  EXPECT_NE(rf.compiled(), first);  // not the stale pre-refit predictor
  expect_bit_identical(rf.predict_proba(b.x), rf.predict_proba_reference(b.x));
}

TEST(CompiledTree, LoadedModelsServeOnTheCompiledPath) {
  const Synth train = make_synth(200, 10, 81);
  for (const auto algo : {SplitAlgo::Exact, SplitAlgo::Hist}) {
    ForestConfig fcfg;
    fcfg.num_classes = 4;
    fcfg.n_estimators = 9;
    fcfg.max_depth = 6;
    fcfg.split_algo = algo;
    RandomForest rf(fcfg, 4);
    rf.fit(train.x, train.y);

    GbmConfig gcfg;
    gcfg.num_classes = 4;
    gcfg.n_estimators = 5;
    gcfg.num_leaves = 15;
    gcfg.split_algo = algo;
    GbmClassifier gbm(gcfg, 4);
    gbm.fit(train.x, train.y);

    for (const Classifier* model :
         {static_cast<const Classifier*>(&rf),
          static_cast<const Classifier*>(&gbm)}) {
      std::stringstream buf;
      save_classifier(buf, *model);
      const auto loaded = load_classifier(buf);
      ASSERT_TRUE(loaded->fitted());
      if (const auto* lrf = dynamic_cast<const RandomForest*>(loaded.get())) {
        EXPECT_NE(lrf->compiled(), nullptr);
      } else if (const auto* lgbm =
                     dynamic_cast<const GbmClassifier*>(loaded.get())) {
        EXPECT_NE(lgbm->compiled(), nullptr);
      } else {
        FAIL() << "unexpected loaded type " << loaded->name();
      }
      expect_bit_identical(loaded->predict_proba(train.x),
                           model->predict_proba_reference(train.x));
    }
  }
}

// -------------------------------------------- cross-pool-size identity ---

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Trains Hist models and hashes every probability bit pattern produced by
// the compiled batch path. Run directly it asserts the models work; run
// from the re-exec harness below it also prints the hash for the parent.
TEST(CompiledTreeThreads, ChildPredictAndHash) {
  const Synth train = make_synth(220, 16, 91);
  ForestConfig fcfg;
  fcfg.num_classes = 4;
  fcfg.n_estimators = 10;
  fcfg.max_depth = 6;
  fcfg.split_algo = SplitAlgo::Hist;
  RandomForest rf(fcfg, 6);
  rf.fit(train.x, train.y);

  GbmConfig gcfg;
  gcfg.num_classes = 4;
  gcfg.n_estimators = 5;
  gcfg.num_leaves = 15;
  gcfg.split_algo = SplitAlgo::Hist;
  GbmClassifier gbm(gcfg, 6);
  gbm.fit(train.x, train.y);

  ASSERT_NE(rf.compiled(), nullptr);
  ASSERT_NE(gbm.compiled(), nullptr);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const Classifier* model :
       {static_cast<const Classifier*>(&rf),
        static_cast<const Classifier*>(&gbm)}) {
    const Matrix probs = model->predict_proba(train.x);
    for (std::size_t i = 0; i < probs.rows(); ++i) {
      for (std::size_t c = 0; c < probs.cols(); ++c) {
        h = fnv1a(h, bits_of(probs(i, c)));
      }
    }
  }
  EXPECT_GT(accuracy(train.y, rf.predict(train.x)), 0.9);
  std::printf("COMPILED_HASH=%016llx\n", static_cast<unsigned long long>(h));
}

// predict_proba parallelizes over row chunks, and the pool is sized once
// per process — bit-identity across pool sizes needs fresh processes with
// ALBA_THREADS pinned, exactly like the Hist-training determinism test.
TEST(CompiledTreeThreads, PredictionsIdenticalAcrossPoolSizes) {
  char self[4096];
  const ssize_t len = readlink("/proc/self/exe", self, sizeof self - 1);
  if (len <= 0) GTEST_SKIP() << "/proc/self/exe unavailable";
  self[len] = '\0';

  std::vector<std::string> hashes;
  for (const char* threads : {"1", "2", "8"}) {
    const std::string cmd =
        std::string("ALBA_THREADS=") + threads + " '" + self +
        "' --gtest_filter=CompiledTreeThreads.ChildPredictAndHash 2>/dev/null";
    std::FILE* pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::string hash;
    char line[512];
    while (std::fgets(line, sizeof line, pipe) != nullptr) {
      const std::string s(line);
      const auto pos = s.find("COMPILED_HASH=");
      if (pos != std::string::npos) {
        hash = s.substr(pos + 14, 16);
      }
    }
    const int rc = pclose(pipe);
    ASSERT_EQ(rc, 0) << "child run with ALBA_THREADS=" << threads << " failed";
    ASSERT_EQ(hash.size(), 16u) << "child printed no hash";
    hashes.push_back(hash);
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

}  // namespace
}  // namespace alba
