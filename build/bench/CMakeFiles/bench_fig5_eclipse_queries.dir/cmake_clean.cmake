file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_eclipse_queries.dir/bench_fig5_eclipse_queries.cpp.o"
  "CMakeFiles/bench_fig5_eclipse_queries.dir/bench_fig5_eclipse_queries.cpp.o.d"
  "bench_fig5_eclipse_queries"
  "bench_fig5_eclipse_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_eclipse_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
