#include "core/report.hpp"

#include "anomaly/anomaly.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace alba {

std::string render_query_curves(const std::vector<MethodCurve>& methods,
                                int stride) {
  ALBA_CHECK(!methods.empty());
  ALBA_CHECK(stride >= 1);

  std::vector<std::string> header{"queries"};
  for (const auto& m : methods) {
    header.push_back(m.method + " F1");
    header.push_back(m.method + " FAR");
    header.push_back(m.method + " AMR");
  }
  TextTable table(header);

  const std::size_t len = methods.front().aggregated.queries.size();
  for (std::size_t p = 0; p < len;
       p += static_cast<std::size_t>(stride)) {
    std::vector<std::string> row{
        strformat("%d", methods.front().aggregated.queries[p])};
    for (const auto& m : methods) {
      const auto& agg = m.aggregated;
      if (p < agg.queries.size()) {
        row.push_back(strformat("%.3f", agg.f1_mean[p]));
        row.push_back(strformat("%.3f", agg.far_mean[p]));
        row.push_back(strformat("%.3f", agg.amr_mean[p]));
      } else {
        row.insert(row.end(), {"-", "-", "-"});
      }
    }
    table.add_row(std::move(row));
  }

  std::string out = table.render();
  std::vector<std::vector<double>> f1_series, far_series, amr_series;
  std::vector<std::string> names;
  for (const auto& m : methods) {
    f1_series.push_back(m.aggregated.f1_mean);
    far_series.push_back(m.aggregated.far_mean);
    amr_series.push_back(m.aggregated.amr_mean);
    names.push_back(m.method);
  }
  out += "\nF1-score vs queries:\n" + ascii_chart_multi(f1_series, names);
  out += "\nFalse alarm rate vs queries:\n" +
         ascii_chart_multi(far_series, names);
  out += "\nAnomaly miss rate vs queries:\n" +
         ascii_chart_multi(amr_series, names);
  return out;
}

std::string render_table5(const std::vector<Table5Row>& rows) {
  TextTable table({"Dataset", "Feature Extraction", "Query Strategy",
                   "Initial Samples", "Starting F1", "F1=0.85", "F1=0.90",
                   "F1=0.95", "AL Train F1 (size)", "5-fold CV max (size)"});
  auto fmt_target = [](int q) {
    if (q < 0) return std::string("not reached");
    if (q == 0) return std::string("already passed");
    return strformat("%d samples", q);
  };
  for (const auto& r : rows) {
    table.add_row({r.dataset, r.feature_extraction, r.query_strategy,
                   strformat("%zu", r.initial_samples),
                   strformat("%.2f", r.starting_f1),
                   fmt_target(r.samples_to_085), fmt_target(r.samples_to_090),
                   fmt_target(r.samples_to_095),
                   strformat("%.2f (%zu)", r.full_train_f1, r.al_train_size),
                   strformat("%.2f (%zu)", r.cv_max_f1, r.full_size)});
  }
  return table.render();
}

std::string render_query_distribution(const QueryDistribution& dist) {
  std::vector<std::string> header{"application"};
  for (int c = 0; c < kNumClasses; ++c) {
    header.emplace_back(anomaly_name(anomaly_from_label(c)));
  }
  header.emplace_back("total");
  TextTable table(header);

  for (std::size_t a = 0; a < dist.app_names.size(); ++a) {
    std::vector<std::string> row{dist.app_names[a]};
    for (int c = 0; c < kNumClasses; ++c) {
      row.push_back(strformat(
          "%.1f", dist.app_label_counts[a][static_cast<std::size_t>(c)]));
    }
    row.push_back(strformat("%.1f", dist.app_totals[a]));
    table.add_row(std::move(row));
  }
  std::vector<std::string> totals{"(all apps)"};
  for (int c = 0; c < kNumClasses; ++c) {
    totals.push_back(
        strformat("%.1f", dist.label_totals[static_cast<std::size_t>(c)]));
  }
  double all = 0.0;
  for (const double v : dist.label_totals) all += v;
  totals.push_back(strformat("%.1f", all));
  table.add_row(std::move(totals));

  return strformat("Queried (application, label) counts over the first %d "
                   "queries (mean per split):\n",
                   dist.first_n) +
         table.render();
}

std::string render_robustness(const RobustnessResult& result) {
  TextTable table({"train apps", "F1 (95% CI)", "false alarm (95% CI)",
                   "miss rate (95% CI)"});
  for (const auto& p : result.points) {
    table.add_row({strformat("%d", p.train_apps),
                   strformat("%.3f [%.3f, %.3f]", p.f1_mean, p.f1_lo, p.f1_hi),
                   strformat("%.3f [%.3f, %.3f]", p.far_mean, p.far_lo,
                             p.far_hi),
                   strformat("%.3f [%.3f, %.3f]", p.amr_mean, p.amr_lo,
                             p.amr_hi)});
  }
  std::string out = table.render();
  out += strformat(
      "5-fold CV reference (all apps in train+test): F1 %.3f, "
      "false alarm %.3f, miss rate %.3f\n",
      result.cv_f1, result.cv_far, result.cv_amr);
  return out;
}

void write_curves_csv(const std::string& path,
                      const std::vector<MethodCurve>& methods) {
  CsvWriter csv(path);
  csv.write_header({"method", "queries", "f1_mean", "f1_lo", "f1_hi",
                    "far_mean", "far_lo", "far_hi", "amr_mean", "amr_lo",
                    "amr_hi"});
  for (const auto& m : methods) {
    const auto& a = m.aggregated;
    for (std::size_t p = 0; p < a.queries.size(); ++p) {
      csv.write_row({m.method, strformat("%d", a.queries[p]),
                     strformat("%.6f", a.f1_mean[p]),
                     strformat("%.6f", a.f1_lo[p]),
                     strformat("%.6f", a.f1_hi[p]),
                     strformat("%.6f", a.far_mean[p]),
                     strformat("%.6f", a.far_lo[p]),
                     strformat("%.6f", a.far_hi[p]),
                     strformat("%.6f", a.amr_mean[p]),
                     strformat("%.6f", a.amr_lo[p]),
                     strformat("%.6f", a.amr_hi[p])});
    }
  }
}

void write_distribution_csv(const std::string& path,
                            const QueryDistribution& dist) {
  CsvWriter csv(path);
  csv.write_header({"application", "label", "mean_queries"});
  for (std::size_t a = 0; a < dist.app_names.size(); ++a) {
    for (int c = 0; c < kNumClasses; ++c) {
      csv.write_row({dist.app_names[a],
                     std::string(anomaly_name(anomaly_from_label(c))),
                     strformat("%.4f",
                               dist.app_label_counts[a]
                                                    [static_cast<std::size_t>(c)])});
    }
  }
}

void write_robustness_csv(const std::string& path,
                          const RobustnessResult& result) {
  CsvWriter csv(path);
  csv.write_header({"train_apps", "f1_mean", "f1_lo", "f1_hi", "far_mean",
                    "far_lo", "far_hi", "amr_mean", "amr_lo", "amr_hi"});
  for (const auto& p : result.points) {
    csv.write_numeric_row({static_cast<double>(p.train_apps), p.f1_mean,
                           p.f1_lo, p.f1_hi, p.far_mean, p.far_lo, p.far_hi,
                           p.amr_mean, p.amr_lo, p.amr_hi});
  }
}

}  // namespace alba
