// Tests for the tree-based models: CART decision tree, random forest, and
// the LightGBM-style gradient boosting classifier.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbm.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

namespace alba {
namespace {

// Three well-separated Gaussian blobs in 2D.
struct Blobs {
  Matrix x;
  std::vector<int> y;
};

Blobs make_blobs(std::size_t per_class, double spread, std::uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {5.0, 5.0}, {0.0, 5.0}};
  Blobs blobs;
  blobs.x = Matrix(3 * per_class, 2);
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = static_cast<std::size_t>(c) * per_class + i;
      blobs.x(row, 0) = centers[c][0] + spread * rng.normal();
      blobs.x(row, 1) = centers[c][1] + spread * rng.normal();
      blobs.y.push_back(c);
    }
  }
  return blobs;
}

TreeConfig blob_tree_config() {
  TreeConfig cfg;
  cfg.num_classes = 3;
  return cfg;
}

// ---------------------------------------------------------------- tree ---

TEST(DecisionTree, PerfectlyFitsTrainingData) {
  const Blobs blobs = make_blobs(30, 0.4, 1);
  DecisionTree tree(blob_tree_config(), 1);
  tree.fit(blobs.x, blobs.y);
  EXPECT_DOUBLE_EQ(accuracy(blobs.y, tree.predict(blobs.x)), 1.0);
}

TEST(DecisionTree, GeneralizesOnSeparatedBlobs) {
  const Blobs train = make_blobs(50, 0.5, 2);
  const Blobs test = make_blobs(30, 0.5, 3);
  DecisionTree tree(blob_tree_config(), 1);
  tree.fit(train.x, train.y);
  EXPECT_GT(accuracy(test.y, tree.predict(test.x)), 0.95);
}

TEST(DecisionTree, MaxDepthLimitsDepth) {
  const Blobs blobs = make_blobs(50, 1.5, 4);
  TreeConfig cfg = blob_tree_config();
  cfg.max_depth = 2;
  DecisionTree tree(cfg, 1);
  tree.fit(blobs.x, blobs.y);
  EXPECT_LE(tree.depth(), 2);
  EXPECT_LE(tree.leaf_count(), 4u);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const Blobs blobs = make_blobs(20, 1.0, 5);
  TreeConfig cfg = blob_tree_config();
  cfg.min_samples_leaf = 10;
  DecisionTree tree(cfg, 1);
  tree.fit(blobs.x, blobs.y);
  // Every leaf distribution must be built from >= 10 samples; with 60
  // samples that caps leaves at 6.
  EXPECT_LE(tree.leaf_count(), 6u);
}

TEST(DecisionTree, PureDataYieldsSingleLeaf) {
  Matrix x = Matrix::from_rows({{1.0}, {2.0}, {3.0}});
  const std::vector<int> y{1, 1, 1};
  TreeConfig cfg;
  cfg.num_classes = 2;
  DecisionTree tree(cfg, 1);
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);
  const Matrix probs = tree.predict_proba(x);
  EXPECT_DOUBLE_EQ(probs(0, 1), 1.0);
}

TEST(DecisionTree, ProbabilitiesAreLeafFrequencies) {
  // One feature, mixed leaf when depth = 0 is forced by constant feature.
  Matrix x = Matrix::from_rows({{1.0}, {1.0}, {1.0}, {1.0}});
  const std::vector<int> y{0, 0, 0, 1};
  TreeConfig cfg;
  cfg.num_classes = 2;
  DecisionTree tree(cfg, 1);
  tree.fit(x, y);
  const Matrix probs = tree.predict_proba(x);
  EXPECT_DOUBLE_EQ(probs(0, 0), 0.75);
  EXPECT_DOUBLE_EQ(probs(0, 1), 0.25);
}

TEST(DecisionTree, EntropyAndGiniBothLearn) {
  const Blobs blobs = make_blobs(40, 0.5, 6);
  for (const auto criterion : {SplitCriterion::Gini, SplitCriterion::Entropy}) {
    TreeConfig cfg = blob_tree_config();
    cfg.criterion = criterion;
    DecisionTree tree(cfg, 1);
    tree.fit(blobs.x, blobs.y);
    EXPECT_GT(accuracy(blobs.y, tree.predict(blobs.x)), 0.97);
  }
}

TEST(DecisionTree, DeterministicForSeed) {
  const Blobs blobs = make_blobs(30, 1.0, 7);
  TreeConfig cfg = blob_tree_config();
  cfg.max_features = 1;  // force feature subsampling randomness
  DecisionTree t1(cfg, 42);
  DecisionTree t2(cfg, 42);
  t1.fit(blobs.x, blobs.y);
  t2.fit(blobs.x, blobs.y);
  EXPECT_EQ(t1.predict(blobs.x), t2.predict(blobs.x));
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree tree(blob_tree_config(), 1);
  Matrix x(1, 2, 0.0);
  EXPECT_THROW(tree.predict_proba(x), Error);
}

TEST(DecisionTree, RejectsBadLabels) {
  Matrix x(2, 1, 0.0);
  const std::vector<int> y{0, 5};
  TreeConfig cfg;
  cfg.num_classes = 3;
  DecisionTree tree(cfg, 1);
  EXPECT_THROW(tree.fit(x, y), Error);
}

TEST(DecisionTree, CloneIsUnfittedWithSameConfig) {
  DecisionTree tree(blob_tree_config(), 9);
  auto clone = tree.clone();
  EXPECT_FALSE(clone->fitted());
  EXPECT_EQ(clone->num_classes(), 3);
}

// --------------------------------------------------------------- forest ---

TEST(RandomForest, LearnsBlobs) {
  const Blobs train = make_blobs(60, 0.8, 8);
  const Blobs test = make_blobs(30, 0.8, 9);
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 30;
  RandomForest rf(cfg, 1);
  rf.fit(train.x, train.y);
  EXPECT_GT(accuracy(test.y, rf.predict(test.x)), 0.95);
}

TEST(RandomForest, ProbabilityRowsSumToOne) {
  const Blobs blobs = make_blobs(20, 1.0, 10);
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 10;
  RandomForest rf(cfg, 2);
  rf.fit(blobs.x, blobs.y);
  const Matrix probs = rf.predict_proba(blobs.x);
  for (std::size_t i = 0; i < probs.rows(); ++i) {
    double sum = 0.0;
    for (const double p : probs.row(i)) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RandomForest, DeterministicAcrossRuns) {
  const Blobs blobs = make_blobs(40, 1.2, 11);
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 15;
  RandomForest a(cfg, 7);
  RandomForest b(cfg, 7);
  a.fit(blobs.x, blobs.y);
  b.fit(blobs.x, blobs.y);
  const Matrix pa = a.predict_proba(blobs.x);
  const Matrix pb = b.predict_proba(blobs.x);
  for (std::size_t i = 0; i < pa.rows(); ++i) {
    for (std::size_t j = 0; j < pa.cols(); ++j) {
      EXPECT_DOUBLE_EQ(pa(i, j), pb(i, j));
    }
  }
}

TEST(RandomForest, DifferentSeedsGiveDifferentForests) {
  const Blobs blobs = make_blobs(40, 1.5, 12);
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 5;
  RandomForest a(cfg, 1);
  RandomForest b(cfg, 2);
  a.fit(blobs.x, blobs.y);
  b.fit(blobs.x, blobs.y);
  const Matrix pa = a.predict_proba(blobs.x);
  const Matrix pb = b.predict_proba(blobs.x);
  bool any_diff = false;
  for (std::size_t i = 0; i < pa.rows() && !any_diff; ++i) {
    for (std::size_t j = 0; j < pa.cols(); ++j) {
      if (pa(i, j) != pb(i, j)) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomForest, TreeCountMatchesConfig) {
  const Blobs blobs = make_blobs(10, 1.0, 13);
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 7;
  RandomForest rf(cfg, 1);
  rf.fit(blobs.x, blobs.y);
  EXPECT_EQ(rf.trees().size(), 7u);
}

TEST(RandomForest, UnseenClassGetsZeroProbability) {
  // Training data lacks class 0 (the ALBADross seed-set situation).
  const Blobs blobs = make_blobs(20, 0.5, 14);
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < blobs.y.size(); ++i) {
    if (blobs.y[i] != 0) keep.push_back(i);
  }
  const Matrix x = blobs.x.select_rows(keep);
  std::vector<int> y;
  for (const auto i : keep) y.push_back(blobs.y[i]);

  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 10;
  RandomForest rf(cfg, 1);
  rf.fit(x, y);
  const Matrix probs = rf.predict_proba(x);
  for (std::size_t i = 0; i < probs.rows(); ++i) {
    EXPECT_DOUBLE_EQ(probs(i, 0), 0.0);
  }
}

// ------------------------------------------------------------------ gbm ---

TEST(Gbm, LearnsBlobs) {
  const Blobs train = make_blobs(60, 0.8, 15);
  const Blobs test = make_blobs(30, 0.8, 16);
  GbmConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 30;
  GbmClassifier gbm(cfg, 1);
  gbm.fit(train.x, train.y);
  EXPECT_GT(accuracy(test.y, gbm.predict(test.x)), 0.95);
}

TEST(Gbm, ProbabilitiesSumToOne) {
  const Blobs blobs = make_blobs(20, 1.0, 17);
  GbmConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 10;
  GbmClassifier gbm(cfg, 1);
  gbm.fit(blobs.x, blobs.y);
  const Matrix probs = gbm.predict_proba(blobs.x);
  for (std::size_t i = 0; i < probs.rows(); ++i) {
    double sum = 0.0;
    for (const double p : probs.row(i)) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Gbm, NumLeavesCapsTreeSize) {
  const Blobs blobs = make_blobs(80, 2.5, 18);
  GbmConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 3;
  cfg.num_leaves = 4;
  GbmClassifier gbm(cfg, 1);
  gbm.fit(blobs.x, blobs.y);
  for (const auto& round : gbm.rounds()) {
    for (const auto& tree : round) {
      std::size_t leaves = 0;
      for (const auto& node : tree.nodes) leaves += (node.feature < 0) ? 1 : 0;
      EXPECT_LE(leaves, 4u);
    }
  }
}

TEST(Gbm, MoreRoundsImproveTrainingFit) {
  const Blobs blobs = make_blobs(50, 2.0, 19);
  GbmConfig weak;
  weak.num_classes = 3;
  weak.n_estimators = 1;
  weak.num_leaves = 3;
  GbmConfig strong = weak;
  strong.n_estimators = 40;
  strong.num_leaves = 16;
  GbmClassifier a(weak, 1);
  GbmClassifier b(strong, 1);
  a.fit(blobs.x, blobs.y);
  b.fit(blobs.x, blobs.y);
  EXPECT_GE(accuracy(blobs.y, b.predict(blobs.x)),
            accuracy(blobs.y, a.predict(blobs.x)));
}

TEST(Gbm, ColsampleRestrictsFeatures) {
  // With colsample ~ 0, each tree sees 1 of 2 features; still learns some.
  const Blobs blobs = make_blobs(50, 0.5, 20);
  GbmConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 20;
  cfg.colsample_bytree = 0.5;
  GbmClassifier gbm(cfg, 1);
  gbm.fit(blobs.x, blobs.y);
  EXPECT_GT(accuracy(blobs.y, gbm.predict(blobs.x)), 0.9);
}

TEST(Gbm, MaxDepthRespected) {
  const Blobs blobs = make_blobs(60, 2.0, 21);
  GbmConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 2;
  cfg.max_depth = 2;
  cfg.num_leaves = 64;
  GbmClassifier gbm(cfg, 1);
  gbm.fit(blobs.x, blobs.y);
  // Depth-2 trees have at most 4 leaves / 7 nodes.
  for (const auto& round : gbm.rounds()) {
    for (const auto& tree : round) EXPECT_LE(tree.nodes.size(), 7u);
  }
}

TEST(Gbm, DeterministicForSeed) {
  const Blobs blobs = make_blobs(30, 1.0, 22);
  GbmConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 5;
  cfg.colsample_bytree = 0.5;
  GbmClassifier a(cfg, 3);
  GbmClassifier b(cfg, 3);
  a.fit(blobs.x, blobs.y);
  b.fit(blobs.x, blobs.y);
  const Matrix pa = a.predict_proba(blobs.x);
  const Matrix pb = b.predict_proba(blobs.x);
  for (std::size_t i = 0; i < pa.rows(); ++i) {
    for (std::size_t j = 0; j < pa.cols(); ++j) {
      EXPECT_DOUBLE_EQ(pa(i, j), pb(i, j));
    }
  }
}

// ------------------------------------------------- histogram splitting ---

TEST(HistSplit, DecisionTreeMatchesExactAccuracy) {
  const Blobs train = make_blobs(60, 1.0, 31);
  const Blobs test = make_blobs(40, 1.0, 32);
  TreeConfig cfg = blob_tree_config();
  DecisionTree exact(cfg, 1);
  exact.fit(train.x, train.y);
  cfg.split_algo = SplitAlgo::Hist;
  DecisionTree hist(cfg, 1);
  hist.fit(train.x, train.y);
  const double f1_exact = macro_f1(test.y, exact.predict(test.x), 3);
  const double f1_hist = macro_f1(test.y, hist.predict(test.x), 3);
  EXPECT_NEAR(f1_hist, f1_exact, 0.02);
}

TEST(HistSplit, ForestMatchesExactAccuracy) {
  const Blobs train = make_blobs(60, 1.2, 33);
  const Blobs test = make_blobs(40, 1.2, 34);
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 25;
  cfg.max_depth = 8;
  RandomForest exact(cfg, 7);
  exact.fit(train.x, train.y);
  cfg.split_algo = SplitAlgo::Hist;
  RandomForest hist(cfg, 7);
  hist.fit(train.x, train.y);
  const double f1_exact = macro_f1(test.y, exact.predict(test.x), 3);
  const double f1_hist = macro_f1(test.y, hist.predict(test.x), 3);
  EXPECT_NEAR(f1_hist, f1_exact, 0.02);
}

TEST(HistSplit, GbmMatchesExactAccuracy) {
  const Blobs train = make_blobs(60, 1.2, 35);
  const Blobs test = make_blobs(40, 1.2, 36);
  GbmConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 12;
  cfg.num_leaves = 15;
  GbmClassifier exact(cfg, 7);
  exact.fit(train.x, train.y);
  cfg.split_algo = SplitAlgo::Hist;
  GbmClassifier hist(cfg, 7);
  hist.fit(train.x, train.y);
  const double f1_exact = macro_f1(test.y, exact.predict(test.x), 3);
  const double f1_hist = macro_f1(test.y, hist.predict(test.x), 3);
  EXPECT_NEAR(f1_hist, f1_exact, 0.02);
}

TEST(HistSplit, DeterministicForSeed) {
  const Blobs blobs = make_blobs(40, 1.0, 37);
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 10;
  cfg.split_algo = SplitAlgo::Hist;
  RandomForest a(cfg, 5);
  RandomForest b(cfg, 5);
  a.fit(blobs.x, blobs.y);
  b.fit(blobs.x, blobs.y);
  const Matrix pa = a.predict_proba(blobs.x);
  const Matrix pb = b.predict_proba(blobs.x);
  for (std::size_t i = 0; i < pa.rows(); ++i) {
    for (std::size_t j = 0; j < pa.cols(); ++j) {
      EXPECT_DOUBLE_EQ(pa(i, j), pb(i, j));
    }
  }
}

TEST(NaNRouting, NonFiniteValuesGoLeftAtPredictTime) {
  // Regression test for the NaN-routing fix: BinnedMatrix codes non-finite
  // values as bin 0, the leftmost bin, so raw-value traversal must send
  // them left too. Before the fix `NaN <= threshold` evaluated false and
  // NaN windows were scored by a branch the training histogram never saw.
  std::vector<DecisionTree::Node> nodes(3);
  nodes[0].feature = 0;
  nodes[0].threshold = 0.5;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].leaf_start = 0;  // left leaf: class 0
  nodes[2].leaf_start = 2;  // right leaf: class 1
  TreeConfig cfg;
  cfg.num_classes = 2;
  DecisionTree tree(cfg, 0);
  tree.restore(std::move(nodes), {1.0, 0.0, 0.0, 1.0});

  double probs[2];
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (double v : {nan, -inf, inf}) {
    const double row[1] = {v};
    tree.predict_proba_row(std::span<const double>(row, 1),
                           std::span<double>(probs, 2));
    EXPECT_DOUBLE_EQ(probs[0], 1.0) << "value " << v << " must route left";
  }
  const double row[1] = {0.7};
  tree.predict_proba_row(std::span<const double>(row, 1),
                         std::span<double>(probs, 2));
  EXPECT_DOUBLE_EQ(probs[1], 1.0);
}

TEST(NaNRouting, HistTreesCanIsolateNaNWithMinusInfThreshold) {
  // When missingness itself carries the label, the hist splitter can cut
  // after bin 0 (all non-finite left, all finite right); the stored
  // threshold is -inf so raw traversal reproduces the partition exactly.
  Rng rng(41);
  Matrix x(80, 1);
  std::vector<int> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    y[i] = static_cast<int>(i % 2);
    x(i, 0) = y[i] == 0 ? std::numeric_limits<double>::quiet_NaN()
                        : rng.normal();
  }
  TreeConfig cfg;
  cfg.num_classes = 2;
  cfg.split_algo = SplitAlgo::Hist;
  DecisionTree tree(cfg, 7);
  tree.fit(x, y);
  EXPECT_DOUBLE_EQ(accuracy(y, tree.predict(x)), 1.0);
}

TEST(HistSplit, HandlesNaNFeaturesEndToEnd) {
  // Hist routes NaN (bin 0) left at every split, consistently between
  // training and raw-value prediction.
  Blobs blobs = make_blobs(40, 0.6, 38);
  Rng rng(39);
  for (std::size_t i = 0; i < blobs.x.rows(); ++i) {
    if (rng.uniform() < 0.1) {
      blobs.x(i, rng.uniform_index(2)) =
          std::numeric_limits<double>::quiet_NaN();
    }
  }
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 15;
  cfg.split_algo = SplitAlgo::Hist;
  RandomForest rf(cfg, 11);
  rf.fit(blobs.x, blobs.y);
  EXPECT_GT(accuracy(blobs.y, rf.predict(blobs.x)), 0.9);
}

TEST(FeatureImportances, InformativeFeatureDominates) {
  // Feature 0 carries the class; feature 1 is noise.
  Rng rng(50);
  Matrix x(120, 2);
  std::vector<int> y(120);
  for (std::size_t i = 0; i < 120; ++i) {
    y[i] = static_cast<int>(i % 2);
    x(i, 0) = static_cast<double>(y[i]) + 0.1 * rng.normal();
    x(i, 1) = rng.normal();
  }
  TreeConfig tc;
  tc.num_classes = 2;
  DecisionTree tree(tc, 1);
  tree.fit(x, y);
  const auto tree_imp = tree.feature_importances(2);
  EXPECT_GT(tree_imp[0], 0.9);
  EXPECT_NEAR(tree_imp[0] + tree_imp[1], 1.0, 1e-9);

  ForestConfig fc;
  fc.num_classes = 2;
  fc.n_estimators = 10;
  fc.max_features = 0;  // both features considered at every split
  RandomForest rf(fc, 1);
  rf.fit(x, y);
  const auto rf_imp = rf.feature_importances(2);
  EXPECT_GT(rf_imp[0], 0.8);
  EXPECT_NEAR(rf_imp[0] + rf_imp[1], 1.0, 1e-9);
}

TEST(FeatureImportances, SingleLeafTreeIsAllZero) {
  Matrix x = Matrix::from_rows({{1.0}, {2.0}});
  const std::vector<int> y{1, 1};
  TreeConfig tc;
  tc.num_classes = 2;
  DecisionTree tree(tc, 1);
  tree.fit(x, y);
  const auto imp = tree.feature_importances(1);
  EXPECT_DOUBLE_EQ(imp[0], 0.0);
}

TEST(FeatureImportances, RejectsTooFewFeatures) {
  const Blobs blobs = make_blobs(20, 0.5, 51);
  TreeConfig tc;
  tc.num_classes = 3;
  DecisionTree tree(tc, 1);
  tree.fit(blobs.x, blobs.y);
  EXPECT_THROW(tree.feature_importances(1), Error);
  DecisionTree unfitted(tc, 1);
  EXPECT_THROW(unfitted.feature_importances(2), Error);
}

// Property sweep: every tree model's probabilities are valid distributions
// on random data.
class TreeModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeModelProperty, ForestProbsAreDistributions) {
  const Blobs blobs = make_blobs(15, 3.0, GetParam());
  ForestConfig cfg;
  cfg.num_classes = 3;
  cfg.n_estimators = 5;
  cfg.max_depth = 4;
  RandomForest rf(cfg, GetParam());
  rf.fit(blobs.x, blobs.y);
  const Matrix probs = rf.predict_proba(blobs.x);
  for (std::size_t i = 0; i < probs.rows(); ++i) {
    double sum = 0.0;
    for (const double p : probs.row(i)) {
      EXPECT_GE(p, -1e-12);
      EXPECT_LE(p, 1.0 + 1e-12);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeModelProperty,
                         ::testing::Range<std::uint64_t>(100, 108));

}  // namespace
}  // namespace alba
