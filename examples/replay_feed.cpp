// Replay a recorded telemetry feed over the wire protocol: the collector
// side of a deployment, feeding an IngestServer across a real TCP socket.
//
// Two ways to run it:
//
//   * self-serving (default) — binds a loopback TcpListener on an
//     ephemeral port, hosts an IngestServer in-process, and streams the
//     feed to itself through the kernel's TCP stack. At the end the
//     server-side ingest accounting is printed, the triggered windows are
//     counted, and the windows are checked bit-for-bit against an
//     in-process StreamIngestor::push replay of the same rows (the wire
//     must be invisible to the ingestion pipeline);
//
//   * --connect HOST:PORT — client only: stream the feed at some other
//     process hosting an IngestServer (e.g. a second copy of this example
//     left running, or an operational deployment).
//
// The feed is either synthesized (--nodes/--rows, the same 1 Hz
// counter/gauge shape the benches use) or loaded from a CSV recorded by a
// previous run (--csv; write one with --out). --rate R replays at R times
// real time — a 1 Hz feed at --rate 60 sends one simulated minute per
// second; --rate 0 (the default) replays as fast as the wire accepts.
//
// Build & run:
//   ./build/examples/replay_feed                        # self-serve, flat out
//   ./build/examples/replay_feed --rate 60 --rows 300   # paced replay
//   ./build/examples/replay_feed --out feed.csv         # record the feed
//   ./build/examples/replay_feed --csv feed.csv         # replay a recording
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "alba.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

using namespace alba;

namespace {

using Clock = std::chrono::steady_clock;

// One recorded row: which node said what at which 1 Hz epoch.
struct FeedRow {
  int node = 0;
  std::uint64_t seq = 0;
  double timestamp = 0.0;
  std::vector<double> values;
};

MetricRegistry feed_registry() {
  RegistryConfig rc;
  rc.cores = 2;
  rc.nics = 1;
  rc.filler_gauges = 1;
  return MetricRegistry(SystemKind::Volta, rc);
}

std::vector<FeedRow> synthesize_feed(const MetricRegistry& registry,
                                     std::size_t nodes, std::size_t rows,
                                     std::uint64_t seed) {
  std::vector<FeedRow> feed;
  for (std::size_t n = 0; n < nodes; ++n) {
    Rng rng(seed + n);
    std::vector<double> level(registry.size(), 0.0);
    for (std::size_t t = 0; t < rows; ++t) {
      FeedRow row;
      row.node = static_cast<int>(n);
      row.seq = t;
      row.timestamp = static_cast<double>(t);
      row.values.resize(registry.size());
      for (std::size_t m = 0; m < registry.size(); ++m) {
        if (registry.metric(m).kind == MetricKind::Counter) {
          level[m] += rng.uniform(0.0, 5.0);
          row.values[m] = level[m];
        } else {
          row.values[m] = std::sin(0.3 * static_cast<double>(t) +
                                   static_cast<double>(m)) +
                          0.1 * rng.normal();
        }
        if (rng.uniform() < 0.01) {
          row.values[m] = std::numeric_limits<double>::quiet_NaN();
        }
      }
      feed.push_back(std::move(row));
    }
  }
  return feed;
}

void write_feed_csv(const std::string& path, const MetricRegistry& registry,
                    const std::vector<FeedRow>& feed) {
  CsvWriter writer(path);
  std::vector<std::string> header = {"node", "seq", "timestamp"};
  for (const std::string& name : registry.names()) header.push_back(name);
  writer.write_header(header);
  std::vector<std::string> fields;
  for (const FeedRow& row : feed) {
    fields.clear();
    fields.push_back(std::to_string(row.node));
    fields.push_back(std::to_string(row.seq));
    fields.push_back(strformat("%.17g", row.timestamp));
    for (const double v : row.values) fields.push_back(strformat("%.17g", v));
    writer.write_row(fields);
  }
}

std::vector<FeedRow> load_feed_csv(const std::string& path,
                                   const MetricRegistry& registry) {
  const CsvTable table = read_csv(path);
  ALBA_CHECK(table.header.size() == registry.size() + 3)
      << "feed CSV has " << table.header.size()
      << " columns, expected node,seq,timestamp + " << registry.size()
      << " metrics — was it recorded with a different registry?";
  std::vector<FeedRow> feed;
  feed.reserve(table.rows.size());
  for (const auto& r : table.rows) {
    FeedRow row;
    row.node = std::stoi(r[0]);
    row.seq = std::stoull(r[1]);
    row.timestamp = std::stod(r[2]);
    row.values.resize(registry.size());
    for (std::size_t m = 0; m < registry.size(); ++m) {
      row.values[m] = std::stod(r[m + 3]);
    }
    feed.push_back(std::move(row));
  }
  return feed;
}

bool bits_equal(double a, double b) noexcept {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// The parity reference: the same feed through StreamIngestor::push in
// process. The wire must produce bit-identical windows.
bool check_parity(const MetricRegistry& registry,
                  const StreamIngestConfig& cfg,
                  const std::vector<FeedRow>& feed,
                  const std::vector<ServedWindow>& served) {
  StreamIngestor reference(registry, cfg);
  std::vector<TriggeredWindow> expected;
  for (const FeedRow& row : feed) {
    for (TriggeredWindow& w :
         reference.push(row.node, row.seq, row.values)) {
      expected.push_back(std::move(w));
    }
  }
  // Emission interleaving across nodes depends on poll timing; compare
  // per-node sequences (delivery within a node is ordered).
  const auto node_windows = [](const auto& all, int node) {
    std::vector<const TriggeredWindow*> out;
    for (const auto& w : all) {
      const TriggeredWindow& t = [&]() -> const TriggeredWindow& {
        if constexpr (std::is_same_v<std::decay_t<decltype(w)>,
                                     ServedWindow>) {
          return w.window;
        } else {
          return w;
        }
      }();
      if (t.node == node) out.push_back(&t);
    }
    return out;
  };
  std::vector<int> nodes;
  for (const FeedRow& r : feed) {
    if (nodes.empty() || nodes.back() != r.node) nodes.push_back(r.node);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (const int node : nodes) {
    const auto got = node_windows(served, node);
    const auto want = node_windows(expected, node);
    if (got.size() != want.size()) return false;
    for (std::size_t i = 0; i < got.size(); ++i) {
      const TriggeredWindow& a = *got[i];
      const TriggeredWindow& b = *want[i];
      if (a.start_seq != b.start_seq ||
          a.features.size() != b.features.size()) {
        return false;
      }
      for (std::size_t f = 0; f < a.features.size(); ++f) {
        if (!bits_equal(a.features[f], b.features[f])) return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes = 2;
  std::size_t rows = 240;
  std::uint64_t seed = 29;
  double rate = 0.0;
  std::string csv_path;
  std::string out_path;
  std::string connect_spec;
  std::string stats_out;
  Cli cli("replay_feed",
          "Stream a recorded (or synthesized) telemetry feed over the wire "
          "protocol into an IngestServer, self-hosted over loopback TCP by "
          "default.");
  cli.flag("nodes", &nodes, "nodes to synthesize (ignored with --csv)");
  cli.flag("rows", &rows, "1 Hz rows per node (ignored with --csv)");
  cli.flag("seed", &seed, "feed synthesis seed");
  cli.flag("rate", &rate,
           "replay speed-up vs real time (0 = as fast as possible)");
  cli.flag("csv", &csv_path, "replay this recorded feed CSV");
  cli.flag("out", &out_path, "record the feed to this CSV and exit");
  cli.flag("connect", &connect_spec,
           "HOST:PORT of an external ingest server (default: self-serve)");
  cli.flag("stats-out", &stats_out,
           "write per-node ingest stats CSV here when self-serving");
  cli.parse(argc, argv);
  set_log_level(LogLevel::Warn);

  const MetricRegistry registry = feed_registry();
  const std::vector<FeedRow> feed =
      csv_path.empty() ? synthesize_feed(registry, nodes, rows, seed)
                       : load_feed_csv(csv_path, registry);
  std::printf("[feed] %zu rows, %zu metrics%s\n", feed.size(),
              registry.size(),
              csv_path.empty() ? " (synthesized)" : " (recorded)");
  if (!out_path.empty()) {
    write_feed_csv(out_path, registry, feed);
    std::printf("[feed] recorded to %s\n", out_path.c_str());
    return 0;
  }

  // ---- transport: self-serve over loopback TCP, or client-only ----------
  StreamIngestConfig stream_cfg;
  stream_cfg.window_length = 48;
  stream_cfg.stride = 24;
  stream_cfg.preprocess.trim_head = 4;
  stream_cfg.preprocess.trim_tail = 4;
  std::unique_ptr<StreamIngestor> ingestor;
  std::unique_ptr<IngestServer> server;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (connect_spec.empty()) {
    auto listener = TcpListener::bind_loopback(0);
    port = listener->port();
    std::printf("[serve] ingest server on 127.0.0.1:%u\n", port);
    ingestor = std::make_unique<StreamIngestor>(registry, stream_cfg);
    server = std::make_unique<IngestServer>(std::move(listener), *ingestor);
  } else {
    const auto colon = connect_spec.rfind(':');
    ALBA_CHECK(colon != std::string::npos) << "--connect expects HOST:PORT";
    host = connect_spec.substr(0, colon);
    port = static_cast<std::uint16_t>(
        std::stoi(connect_spec.substr(colon + 1)));
    std::printf("[connect] streaming at %s:%u\n", host.c_str(), port);
  }

  // One wire client per node in the feed, rows offered in recorded order.
  std::vector<int> node_ids;
  for (const FeedRow& r : feed) node_ids.push_back(r.node);
  std::sort(node_ids.begin(), node_ids.end());
  node_ids.erase(std::unique(node_ids.begin(), node_ids.end()),
                 node_ids.end());
  std::vector<std::unique_ptr<WireClient>> clients;
  for (const int n : node_ids) {
    WireClientConfig cc;
    cc.node = static_cast<std::uint32_t>(n);
    cc.metric_count = static_cast<std::uint32_t>(registry.size());
    cc.reconnect.seed = seed + static_cast<std::uint64_t>(n);
    cc.reconnect.max_attempts = 1 << 20;
    clients.push_back(std::make_unique<WireClient>(
        [host, port] { return tcp_connect(host, port); }, cc));
  }
  const auto client_for = [&](int node) -> WireClient& {
    const auto it = std::find(node_ids.begin(), node_ids.end(), node);
    ALBA_CHECK(it != node_ids.end()) << "no client for node " << node;
    return *clients[static_cast<std::size_t>(it - node_ids.begin())];
  };

  // ---- the replay loop ---------------------------------------------------
  // A row with epoch `seq` becomes eligible at seq/rate wall seconds;
  // rate 0 lifts the pacing entirely.
  const Clock::time_point t0 = Clock::now();
  const auto now_ms = [&t0] {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };
  std::vector<ServedWindow> served;
  std::size_t next = 0;
  std::uint64_t offered = 0;
  const double deadline_ms =
      60000.0 + (rate > 0.0 ? 1000.0 * static_cast<double>(feed.size()) /
                                  rate
                            : 0.0);
  while (true) {
    const double t = now_ms();
    while (next < feed.size()) {
      const FeedRow& row = feed[next];
      if (rate > 0.0 &&
          static_cast<double>(row.seq) * 1000.0 / rate > t) {
        break;
      }
      if (!client_for(row.node).offer(row.seq, row.timestamp, row.values)) {
        break;  // inflight budget full; step() below drains acks
      }
      ++next;
      ++offered;
    }
    bool idle = next == feed.size();
    for (auto& c : clients) {
      c->step(t);
      idle = idle && c->idle();
    }
    if (server != nullptr) {
      server->poll_once(t);
      for (ServedWindow& w : server->take_served()) {
        served.push_back(std::move(w));
      }
    }
    for (auto& c : clients) c->step(t);
    if (idle) break;
    if (t > deadline_ms) {
      std::printf("[replay] gave up after %.1fs with %zu/%zu rows acked\n",
                  t / 1000.0, next, feed.size());
      return 1;
    }
    if (rate > 0.0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double elapsed = now_ms() / 1000.0;

  // ---- the accounting ----------------------------------------------------
  std::uint64_t bytes = 0;
  for (const auto& c : clients) bytes += c->stats().bytes_sent;
  std::printf("[replay] %llu rows acked in %.2fs (%.0f rows/s, %.1f KB on "
              "the wire)\n",
              static_cast<unsigned long long>(offered), elapsed,
              elapsed > 0 ? static_cast<double>(offered) / elapsed : 0.0,
              static_cast<double>(bytes) / 1e3);
  if (server == nullptr) return 0;

  std::printf("[serve] %s\n",
              format_ingest_summary(server->total_stats()).c_str());
  std::printf("[serve] %zu windows triggered\n", served.size());
  if (!stats_out.empty()) {
    std::vector<std::pair<std::string, IngestStats>> labelled;
    for (const int n : node_ids) {
      labelled.emplace_back(strformat("node=%d", n), server->stats(n));
    }
    labelled.emplace_back("total", server->total_stats());
    std::ofstream os(stats_out);
    write_ingest_stats_csv(os, labelled);
    std::printf("[serve] ingest stats written to %s\n", stats_out.c_str());
  }

  const bool parity = check_parity(registry, stream_cfg, feed, served);
  std::printf("[parity] wire windows %s the in-process replay\n",
              parity ? "bit-identical to" : "DIFFER from");
  return parity ? 0 : 1;
}
