#include "features/mvts.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"
#include "stats/regression.hpp"

namespace alba {

namespace {
using namespace alba::stats;

// The 11 descriptive statistics whose first-half/second-half absolute
// differences are also emitted.
struct HalfStats {
  double mean_, std_, var_, min_, max_, median_, q25_, q75_, skew_, kurt_, range_;
};

HalfStats half_stats(std::span<const double> x) {
  HalfStats h;
  h.mean_ = mean(x);
  h.std_ = stddev(x);
  h.var_ = variance(x);
  h.min_ = minimum(x);
  h.max_ = maximum(x);
  h.median_ = median(x);
  h.q25_ = quantile(x, 0.25);
  h.q75_ = quantile(x, 0.75);
  h.skew_ = skewness(x);
  h.kurt_ = kurtosis(x);
  h.range_ = range(x);
  return h;
}
}  // namespace

MvtsExtractor::MvtsExtractor() {
  names_ = {
      // 14 whole-series descriptive statistics
      "mean", "std", "var", "min", "max", "range", "median", "q05", "q25",
      "q75", "q95", "skewness", "kurtosis", "iqr",
      // 11 first/second-half absolute differences
      "d_mean", "d_std", "d_var", "d_min", "d_max", "d_median", "d_q25",
      "d_q75", "d_skewness", "d_kurtosis", "d_range",
      // 4 long-run trends
      "longest_inc_run", "longest_dec_run", "longest_above_mean",
      "longest_below_mean",
      // 19 change / location / trend statistics
      "mean_abs_change", "mean_change", "abs_sum_changes",
      "mean_second_derivative", "count_above_mean", "count_below_mean",
      "first_loc_max", "first_loc_min", "last_loc_max", "last_loc_min",
      "crossings_mean", "num_peaks3", "trend_slope", "trend_intercept",
      "trend_rvalue", "trend_stderr", "cid_norm", "variation_coef", "rms"};
  ALBA_CHECK(names_.size() == 48) << "MVTS must emit 48 features, has "
                                  << names_.size();
}

void MvtsExtractor::extract(std::span<const double> x,
                            std::span<double> out) const {
  ALBA_CHECK(out.size() == names_.size());
  ALBA_CHECK(x.size() >= 4) << "series too short for MVTS extraction";
  std::size_t i = 0;

  out[i++] = mean(x);
  out[i++] = stddev(x);
  out[i++] = variance(x);
  out[i++] = minimum(x);
  out[i++] = maximum(x);
  out[i++] = range(x);
  out[i++] = median(x);
  out[i++] = quantile(x, 0.05);
  out[i++] = quantile(x, 0.25);
  out[i++] = quantile(x, 0.75);
  out[i++] = quantile(x, 0.95);
  out[i++] = skewness(x);
  out[i++] = kurtosis(x);
  out[i++] = quantile(x, 0.75) - quantile(x, 0.25);

  const std::size_t half = x.size() / 2;
  const HalfStats a = half_stats(x.subspan(0, half));
  const HalfStats b = half_stats(x.subspan(half));
  out[i++] = std::abs(a.mean_ - b.mean_);
  out[i++] = std::abs(a.std_ - b.std_);
  out[i++] = std::abs(a.var_ - b.var_);
  out[i++] = std::abs(a.min_ - b.min_);
  out[i++] = std::abs(a.max_ - b.max_);
  out[i++] = std::abs(a.median_ - b.median_);
  out[i++] = std::abs(a.q25_ - b.q25_);
  out[i++] = std::abs(a.q75_ - b.q75_);
  out[i++] = std::abs(a.skew_ - b.skew_);
  out[i++] = std::abs(a.kurt_ - b.kurt_);
  out[i++] = std::abs(a.range_ - b.range_);

  out[i++] = static_cast<double>(longest_strictly_increasing_run(x));
  out[i++] = static_cast<double>(longest_strictly_decreasing_run(x));
  out[i++] = static_cast<double>(longest_run_above_mean(x));
  out[i++] = static_cast<double>(longest_run_below_mean(x));

  out[i++] = mean_abs_change(x);
  out[i++] = mean_change(x);
  out[i++] = absolute_sum_of_changes(x);
  out[i++] = mean_second_derivative_central(x);
  out[i++] = static_cast<double>(count_above_mean(x));
  out[i++] = static_cast<double>(count_below_mean(x));
  out[i++] = first_location_of_maximum(x);
  out[i++] = first_location_of_minimum(x);
  out[i++] = last_location_of_maximum(x);
  out[i++] = last_location_of_minimum(x);
  out[i++] = static_cast<double>(number_of_crossings(x, mean(x)));
  out[i++] = static_cast<double>(number_of_peaks(x, 3));
  const LinearTrend trend = linear_trend(x);
  out[i++] = trend.slope;
  out[i++] = trend.intercept;
  out[i++] = trend.rvalue;
  out[i++] = trend.stderr_;
  out[i++] = cid_ce(x, /*normalize=*/true);
  out[i++] = variation_coefficient(x);
  out[i++] = root_mean_square(x);

  ALBA_CHECK(i == names_.size());
}

}  // namespace alba
