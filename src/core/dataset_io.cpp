#include "core/dataset_io.hpp"

#include <fstream>

#include "anomaly/anomaly.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "ml/serialize.hpp"

namespace alba {

namespace {
constexpr std::uint64_t kFeatureMagic = 0x414C4241464D5458ULL;  // "ALBAFMTX"
constexpr std::uint64_t kFeatureVersion = 1;
}  // namespace

void save_feature_matrix(const std::string& path, const FeatureMatrix& fm) {
  ALBA_CHECK(fm.num_samples() > 0) << "refusing to save an empty matrix";
  ALBA_CHECK(fm.names.size() == fm.num_features());
  std::ofstream out(path, std::ios::binary);
  ALBA_CHECK(out.good()) << "cannot open '" << path << "' for writing";

  ArchiveWriter w(out);
  w.write_u64(kFeatureMagic);
  w.write_u64(kFeatureVersion);
  w.write_matrix(fm.x);
  w.write_u64(fm.names.size());
  for (const auto& name : fm.names) w.write_string(name);
  w.write_ints(fm.labels);
  w.write_ints(fm.app_ids);
  w.write_ints(fm.input_ids);
  w.write_ints(fm.run_ids);
  w.write_ints(fm.node_ids);
}

FeatureMatrix load_feature_matrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ALBA_CHECK(in.good()) << "cannot open '" << path << "' for reading";

  ArchiveReader r(in);
  ALBA_CHECK(r.read_u64() == kFeatureMagic)
      << "'" << path << "' is not an ALBADross feature-matrix file";
  const std::uint64_t version = r.read_u64();
  ALBA_CHECK(version == kFeatureVersion)
      << "unsupported feature-matrix version " << version;

  FeatureMatrix fm;
  fm.x = r.read_matrix();
  const std::uint64_t names = r.read_u64();
  fm.names.reserve(names);
  for (std::uint64_t i = 0; i < names; ++i) fm.names.push_back(r.read_string());
  fm.labels = r.read_ints();
  fm.app_ids = r.read_ints();
  fm.input_ids = r.read_ints();
  fm.run_ids = r.read_ints();
  fm.node_ids = r.read_ints();

  ALBA_CHECK(fm.names.size() == fm.num_features())
      << "name/column mismatch in '" << path << "'";
  const std::size_t n = fm.num_samples();
  ALBA_CHECK(fm.labels.size() == n && fm.app_ids.size() == n &&
             fm.input_ids.size() == n && fm.run_ids.size() == n &&
             fm.node_ids.size() == n)
      << "provenance length mismatch in '" << path << "'";
  return fm;
}

void write_feature_matrix_csv(const std::string& path,
                              const FeatureMatrix& fm) {
  CsvWriter csv(path);
  std::vector<std::string> header{"label", "anomaly", "app_id", "input_id",
                                  "run_id", "node_id"};
  header.insert(header.end(), fm.names.begin(), fm.names.end());
  csv.write_row(header);

  std::vector<std::string> row;
  for (std::size_t i = 0; i < fm.num_samples(); ++i) {
    row.clear();
    row.push_back(strformat("%d", fm.labels[i]));
    row.emplace_back(anomaly_name(anomaly_from_label(fm.labels[i])));
    row.push_back(strformat("%d", fm.app_ids[i]));
    row.push_back(strformat("%d", fm.input_ids[i]));
    row.push_back(strformat("%d", fm.run_ids[i]));
    row.push_back(strformat("%d", fm.node_ids[i]));
    for (const double v : fm.x.row(i)) row.push_back(strformat("%.8g", v));
    csv.write_row(row);
  }
}

}  // namespace alba
