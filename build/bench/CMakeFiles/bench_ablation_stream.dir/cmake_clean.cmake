file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stream.dir/bench_ablation_stream.cpp.o"
  "CMakeFiles/bench_ablation_stream.dir/bench_ablation_stream.cpp.o.d"
  "bench_ablation_stream"
  "bench_ablation_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
