file(REMOVE_RECURSE
  "CMakeFiles/alba_anomaly.dir/anomaly/anomaly.cpp.o"
  "CMakeFiles/alba_anomaly.dir/anomaly/anomaly.cpp.o.d"
  "CMakeFiles/alba_anomaly.dir/anomaly/injector.cpp.o"
  "CMakeFiles/alba_anomaly.dir/anomaly/injector.cpp.o.d"
  "libalba_anomaly.a"
  "libalba_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alba_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
