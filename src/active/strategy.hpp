// Pool-based query strategies (Sec. III-D). The three informativeness
// measures from the paper plus its two sampling baselines:
//   uncertainty  U(x) = 1 − P(ŷ|x)            → query the max
//   margin       M(x) = P(y₁|x) − P(y₂|x)     → query the min
//   entropy      H(x) = −Σ p log p            → query the max
//   random       uniform over the pool (the standard AL baseline)
//   equal-app    round-robin over application types, random within the type
//                (the paper's Equal App baseline: "query in increments of
//                [#apps] and guarantee one sample from each application")
#pragma once

#include <span>
#include <string_view>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "ml/classifier.hpp"

namespace alba {

enum class QueryStrategy {
  Uncertainty,
  Margin,
  Entropy,
  Random,
  EqualApp,
  // Extensions beyond the paper (its stated future-work direction of
  // stronger query strategies):
  VoteEntropy,      // query-by-committee, vote-entropy disagreement
  ConsensusKl,      // query-by-committee, mean KL from the consensus
  DensityWeighted,  // information density × uncertainty (Settles)
};

std::string_view strategy_name(QueryStrategy s) noexcept;
QueryStrategy strategy_from_name(std::string_view name);

/// True when the strategy needs model probabilities to pick a sample.
bool strategy_uses_model(QueryStrategy s) noexcept;

/// True for the query-by-committee strategies (the learner then maintains
/// a committee instead of a single model).
bool strategy_uses_committee(QueryStrategy s) noexcept;

/// The three informativeness scores over one probability row.
double uncertainty_score(std::span<const double> probs) noexcept;
double margin_score(std::span<const double> probs) noexcept;
double entropy_score(std::span<const double> probs) noexcept;

/// Selects the pool position to query.
///   pool_probs   per-candidate class probabilities (model strategies only;
///                may be empty for random/equal-app)
///   pool_app_ids application id per candidate (equal-app only)
///   step         0-based query counter (drives equal-app's round robin)
///   num_apps     number of application types (equal-app only)
/// Returns an index into the candidate arrays.
std::size_t select_query(QueryStrategy strategy, const Matrix& pool_probs,
                         std::span<const int> pool_app_ids,
                         std::size_t pool_size, int step, int num_apps,
                         Rng& rng);

/// Argmax over precomputed informativeness scores (committee disagreement,
/// density-weighted uncertainty, ...). Ties go to the lowest index.
/// NaN scores (from degenerate probabilities) rank as -inf.
std::size_t select_query_scored(std::span<const double> scores);

/// Indices of the k highest-scoring candidates (batch-mode querying);
/// k is clamped to the pool size. NaN scores rank as -inf.
/// When `tie_ids` is non-empty it supplies the tie-break key for candidate
/// i (ties go to the lowest id instead of the lowest position) — the learner
/// passes the pool indices so picks stay independent of the bookkeeping
/// order of its remaining-candidate list.
std::vector<std::size_t> select_query_batch(
    std::span<const double> scores, std::size_t k,
    std::span<const std::size_t> tie_ids = {});

/// Informativeness of the selected pool rows, without materializing the
/// subset: probabilities come from model.predict_proba_rows, computed in
/// parallel over contiguous chunks of `rows` on the global pool. Each chunk
/// writes a disjoint range of the result, so scores are bit-identical to the
/// serial path regardless of thread count. Margin scores are negated (the
/// strategy queries the minimum); DensityWeighted yields the uncertainty
/// factor only — the caller multiplies in density^beta.
std::vector<double> score_pool_rows(const Classifier& model,
                                    QueryStrategy strategy, const Matrix& pool,
                                    std::span<const std::size_t> rows);

/// Information density (Settles 2009): each row's mean RBF similarity to a
/// reference subsample of the pool (≤ ref_cap rows; the kernel bandwidth is
/// the mean pairwise distance within the reference). Dense regions score
/// near 1, outliers near 0 — multiplying uncertainty by density^beta stops
/// the learner from querying unrepresentative outliers.
std::vector<double> information_density(const Matrix& pool,
                                        std::size_t ref_cap, std::uint64_t seed);

}  // namespace alba
