# Empty compiler generated dependencies file for alba_active.
# This may be replaced when dependencies are built.
