// Tests for the evaluation metrics the paper reports: macro F1, false
// alarm rate, anomaly miss rate, confusion matrices.
#include <gtest/gtest.h>

#include "ml/classifier.hpp"
#include "ml/dataset.hpp"
#include "ml/metrics.hpp"

namespace alba {
namespace {

TEST(Confusion, CountsPlacement) {
  const std::vector<int> y_true{0, 0, 1, 1, 2};
  const std::vector<int> y_pred{0, 1, 1, 1, 0};
  const Matrix cm = confusion_matrix(y_true, y_pred, 3);
  EXPECT_DOUBLE_EQ(cm(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cm(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(cm(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(cm(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(cm(2, 2), 0.0);
}

TEST(Confusion, RejectsOutOfRangeLabels) {
  const std::vector<int> y_true{0, 3};
  const std::vector<int> y_pred{0, 0};
  EXPECT_THROW(confusion_matrix(y_true, y_pred, 3), Error);
}

TEST(Metrics, PerfectPrediction) {
  const std::vector<int> y{0, 1, 2, 0, 1, 2};
  const EvalResult ev = evaluate(y, y, 3);
  EXPECT_DOUBLE_EQ(ev.macro_f1, 1.0);
  EXPECT_DOUBLE_EQ(ev.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(ev.false_alarm_rate, 0.0);
  EXPECT_DOUBLE_EQ(ev.anomaly_miss_rate, 0.0);
}

TEST(Metrics, KnownF1Value) {
  // Class 1: precision 1/2, recall 1/2 → F1 = 0.5. Class 0: p=2/3, r=2/3.
  const std::vector<int> y_true{0, 0, 0, 1, 1};
  const std::vector<int> y_pred{0, 0, 1, 1, 0};
  const EvalResult ev = evaluate(y_true, y_pred, 2);
  EXPECT_NEAR(ev.per_class_f1[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(ev.per_class_f1[1], 0.5, 1e-12);
  EXPECT_NEAR(ev.macro_f1, (2.0 / 3.0 + 0.5) / 2.0, 1e-12);
}

TEST(Metrics, MacroF1IgnoresAbsentClasses) {
  // Class 2 never appears in y_true: excluded from the macro average.
  const std::vector<int> y_true{0, 0, 1, 1};
  const std::vector<int> y_pred{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(macro_f1(y_true, y_pred, 3), 1.0);
}

TEST(Metrics, FalseAlarmRate) {
  // 4 healthy samples, 1 flagged anomalous → FAR 0.25.
  const std::vector<int> y_true{0, 0, 0, 0, 2};
  const std::vector<int> y_pred{0, 0, 0, 3, 2};
  EXPECT_DOUBLE_EQ(false_alarm_rate(y_true, y_pred), 0.25);
}

TEST(Metrics, AnomalyMissRateCountsAnyAnomalyAsDetected) {
  // Anomalous sample predicted as the *wrong* anomaly is not a miss.
  const std::vector<int> y_true{1, 2, 3, 0};
  const std::vector<int> y_pred{2, 0, 3, 0};
  EXPECT_NEAR(anomaly_miss_rate(y_true, y_pred), 1.0 / 3.0, 1e-12);
}

TEST(Metrics, RatesWithNoRelevantSamples) {
  const std::vector<int> all_anomalous{1, 2};
  const std::vector<int> pred{1, 2};
  EXPECT_DOUBLE_EQ(false_alarm_rate(all_anomalous, pred), 0.0);
  const std::vector<int> all_healthy{0, 0};
  const std::vector<int> pred2{0, 0};
  EXPECT_DOUBLE_EQ(anomaly_miss_rate(all_healthy, pred2), 0.0);
}

TEST(Metrics, Accuracy) {
  const std::vector<int> y_true{0, 1, 2, 2};
  const std::vector<int> y_pred{0, 1, 0, 2};
  EXPECT_DOUBLE_EQ(accuracy(y_true, y_pred), 0.75);
}

TEST(Metrics, PerClassScoresFromConfusion) {
  Matrix cm(2, 2, 0.0);
  cm(0, 0) = 8;
  cm(0, 1) = 2;
  cm(1, 0) = 1;
  cm(1, 1) = 9;
  const ClassScores s = per_class_scores(cm);
  EXPECT_NEAR(s.precision[0], 8.0 / 9.0, 1e-12);
  EXPECT_NEAR(s.recall[0], 0.8, 1e-12);
  EXPECT_NEAR(s.precision[1], 9.0 / 11.0, 1e-12);
  EXPECT_NEAR(s.recall[1], 0.9, 1e-12);
}

TEST(Metrics, UndefinedPrecisionIsZero) {
  // Class 1 never predicted: precision defined as 0 (sklearn convention).
  Matrix cm(2, 2, 0.0);
  cm(0, 0) = 5;
  cm(1, 0) = 5;
  const ClassScores s = per_class_scores(cm);
  EXPECT_DOUBLE_EQ(s.precision[1], 0.0);
  EXPECT_DOUBLE_EQ(s.f1[1], 0.0);
}

TEST(ArgmaxLabel, PicksLargest) {
  const std::vector<double> p{0.1, 0.6, 0.3};
  EXPECT_EQ(argmax_label(p), 1);
  const std::vector<double> tie{0.5, 0.5};
  EXPECT_EQ(argmax_label(tie), 0);  // first wins ties
}

TEST(LabeledData, AppendAndSelect) {
  LabeledData data;
  data.append(std::vector<double>{1.0, 2.0}, 0);
  data.append(std::vector<double>{3.0, 4.0}, 1);
  data.append(std::vector<double>{5.0, 6.0}, 2);
  EXPECT_EQ(data.size(), 3u);

  const std::vector<std::size_t> idx{2, 0};
  const LabeledData sub = data.select(idx);
  EXPECT_EQ(sub.y, (std::vector<int>{2, 0}));
  EXPECT_DOUBLE_EQ(sub.x(0, 0), 5.0);

  LabeledData more;
  more.append(std::vector<double>{7.0, 8.0}, 1);
  data.append_all(more);
  EXPECT_EQ(data.size(), 4u);
}

TEST(LabeledData, ValidateLabels) {
  LabeledData data;
  data.append(std::vector<double>{1.0}, 2);
  EXPECT_NO_THROW(data.validate_labels(3));
  EXPECT_THROW(data.validate_labels(2), Error);
}

}  // namespace
}  // namespace alba
