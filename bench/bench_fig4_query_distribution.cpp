// Reproduces Fig. 4: the distribution of queried (application, label)
// pairs over the first 50 queries of the uncertainty strategy on Volta.
// Expected shape: healthy dominates the early queries (the seed set has no
// healthy samples, so the learner asks for them first), `dial` is the most
// queried anomaly (the hardest type), and high-variability applications
// (Kripke, MiniAMR) attract the most queries.
#include "bench_common.hpp"

using namespace alba;
using namespace alba::bench;

int main(int argc, char** argv) {
  BenchFlags flags;
  int first_n = 50;
  Cli cli("bench_fig4_query_distribution",
          "Fig. 4 — which samples the uncertainty strategy queries first");
  add_standard_flags(cli, flags);
  cli.flag("first", &first_n, "number of initial queries to tally");
  cli.parse(argc, argv);
  apply_logging(flags);

  std::printf("=== Fig. 4: early query distribution (Volta, uncertainty) ===\n");
  const ExperimentData data = build_data(SystemKind::Volta, flags);

  ExperimentOptions opt = make_options(flags);
  opt.methods = {"uncertainty"};
  const QueryDistribution dist = run_query_distribution(data, first_n, opt);

  std::printf("\n%s\n", render_query_distribution(dist).c_str());

  // Headline comparisons from the paper's narrative.
  const double healthy = dist.label_totals[0];
  double top_anomaly = 0.0;
  int top_anomaly_label = 1;
  for (int c = 1; c < kNumClasses; ++c) {
    if (dist.label_totals[static_cast<std::size_t>(c)] > top_anomaly) {
      top_anomaly = dist.label_totals[static_cast<std::size_t>(c)];
      top_anomaly_label = c;
    }
  }
  std::printf("healthy share of first %d queries: %.0f%%\n", first_n,
              100.0 * healthy / first_n);
  std::printf("most-queried anomaly type: %s (%.1f queries on average)\n",
              std::string(anomaly_name(anomaly_from_label(top_anomaly_label)))
                  .c_str(),
              top_anomaly);
  std::size_t top_app = 0;
  for (std::size_t a = 1; a < dist.app_totals.size(); ++a) {
    if (dist.app_totals[a] > dist.app_totals[top_app]) top_app = a;
  }
  std::printf("most-queried application: %s (%.1f queries on average)\n",
              dist.app_names[top_app].c_str(), dist.app_totals[top_app]);

  const std::string csv = flags.out_dir + "/fig4_query_distribution.csv";
  write_distribution_csv(csv, dist);
  std::printf("distribution written to %s\n", csv.c_str());
  return 0;
}
