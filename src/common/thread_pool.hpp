// Work-sharing thread pool with a blocking parallel_for.
//
// All data-parallel loops in the library (feature extraction over samples,
// tree building in the forest, gemm tiles) go through ThreadPool rather than
// spawning ad-hoc threads. The pool is created once per process via
// `global_pool()` and sized to the hardware concurrency (overridable with
// the ALBA_THREADS environment variable — set ALBA_THREADS=1 to force a
// deterministic serial schedule when debugging).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace alba {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Drains the queue and joins the workers. Idempotent; called by the
  /// destructor. After shutdown, enqueue/parallel_for throw alba::Error —
  /// submitting to a dead pool used to dangle on the joined workers'
  /// condition variable, which is exactly the kind of shutdown-ordering
  /// bug a draining ServiceHost would otherwise hit.
  void shutdown();

  /// True once shutdown has begun; submissions are rejected from then on.
  bool stopped() const;

  /// Runs body(i) for every i in [0, n), blocking until all complete.
  /// The range is split into contiguous chunks, one queue entry per worker,
  /// so per-iteration overhead stays negligible even for tiny bodies.
  /// Exceptions from the body are captured and the first one rethrown on
  /// the calling thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Like parallel_for but hands each worker a contiguous [begin, end) range
  /// so the body can amortize per-chunk setup (e.g. scratch buffers).
  void parallel_for_chunked(
      std::size_t n,
      const std::function<void(std::size_t begin, std::size_t end)>& body);

  /// Fire-and-forget task submission. Exceptions escaping the task are
  /// caught in the worker and logged at Warn — they never terminate the
  /// process. Tasks that need error propagation should capture their own
  /// state (as parallel_for does).
  void enqueue(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool joined_ = false;
};

/// Process-wide pool. Lazily constructed; sized from ALBA_THREADS if set.
ThreadPool& global_pool();

/// Convenience wrapper over global_pool().parallel_for.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace alba
