#include "anomaly/anomaly.hpp"

#include <string>

#include "common/error.hpp"

namespace alba {

std::string_view anomaly_name(AnomalyType type) noexcept {
  switch (type) {
    case AnomalyType::Healthy: return "healthy";
    case AnomalyType::CpuOccupy: return "cpuoccupy";
    case AnomalyType::CacheCopy: return "cachecopy";
    case AnomalyType::MemBw: return "membw";
    case AnomalyType::MemLeak: return "memleak";
    case AnomalyType::Dial: return "dial";
  }
  return "unknown";
}

AnomalyType anomaly_from_name(std::string_view name) {
  for (int label = 0; label < kNumClasses; ++label) {
    const auto type = static_cast<AnomalyType>(label);
    if (anomaly_name(type) == name) return type;
  }
  throw Error("unknown anomaly name: " + std::string(name));
}

AnomalyType anomaly_from_label(int label) {
  ALBA_CHECK(label >= 0 && label < kNumClasses)
      << "anomaly label out of range: " << label;
  return static_cast<AnomalyType>(label);
}

}  // namespace alba
