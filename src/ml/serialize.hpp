// Binary model persistence — the C++ analogue of the paper's "final model
// is stored as a pickle object" (Sec. III-E). A small framed binary archive
// with magic + version, plus save/load for every classifier the library
// ships. load_classifier dispatches on the stored type tag.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/classifier.hpp"

namespace alba {

class ArchiveWriter {
 public:
  explicit ArchiveWriter(std::ostream& out);

  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_double(double v);
  void write_string(const std::string& s);
  void write_doubles(const std::vector<double>& v);
  void write_ints(const std::vector<int>& v);
  void write_matrix(const Matrix& m);

 private:
  std::ostream& out_;
};

/// Length-prefixed reads validate the stored length against the bytes
/// actually left in the stream (when it is seekable) before allocating, so
/// a truncated or corrupt archive raises alba::Error with the offending
/// offset instead of attempting an attacker-controlled allocation.
class ArchiveReader {
 public:
  explicit ArchiveReader(std::istream& in);

  std::uint64_t read_u64();
  std::int64_t read_i64();
  double read_double();
  std::string read_string();
  std::vector<double> read_doubles();
  std::vector<int> read_ints();
  Matrix read_matrix();

 private:
  /// Throws when `count` elements of `elem_size` bytes cannot fit in the
  /// remaining stream; no-op when the stream size is unknown.
  void check_count(std::uint64_t count, std::size_t elem_size,
                   const char* what) const;

  std::istream& in_;
  std::streamoff stream_end_ = -1;  // total size when seekable, else -1
};

/// Serializes a fitted classifier (random_forest, logistic_regression,
/// lgbm, or mlp) with a self-describing header. Throws on unfitted models
/// and unsupported types.
void save_classifier(std::ostream& out, const Classifier& model);

/// Reconstructs the classifier saved by save_classifier; the returned model
/// is fitted and ready to predict.
std::unique_ptr<Classifier> load_classifier(std::istream& in);

/// File-path convenience wrappers.
void save_classifier_file(const std::string& path, const Classifier& model);
std::unique_ptr<Classifier> load_classifier_file(const std::string& path);

}  // namespace alba
