#include "active/explain.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace alba {

QueryExplainer::QueryExplainer(const LabeledData& labeled,
                               std::vector<std::string> feature_names,
                               int healthy_label)
    : names_(std::move(feature_names)) {
  ALBA_CHECK(labeled.x.cols() == names_.size())
      << "feature-name count " << names_.size() << " != columns "
      << labeled.x.cols();

  std::vector<std::size_t> healthy_rows;
  for (std::size_t i = 0; i < labeled.size(); ++i) {
    if (labeled.y[i] == healthy_label) healthy_rows.push_back(i);
  }
  n_healthy_ = healthy_rows.size();
  ALBA_CHECK(n_healthy_ >= 2)
      << "need at least 2 labeled healthy samples for a profile, have "
      << n_healthy_;

  const Matrix healthy = labeled.x.select_rows(healthy_rows);
  median_.resize(names_.size());
  mad_.resize(names_.size());
  std::vector<double> col(n_healthy_);
  std::vector<double> deviations(n_healthy_);
  for (std::size_t j = 0; j < names_.size(); ++j) {
    for (std::size_t i = 0; i < n_healthy_; ++i) col[i] = healthy(i, j);
    median_[j] = stats::median(col);
    for (std::size_t i = 0; i < n_healthy_; ++i) {
      deviations[i] = std::abs(col[i] - median_[j]);
    }
    // 1.4826 scales MAD to the stddev of a normal distribution. Floors keep
    // healthy-constant features (e.g. boolean tsfresh features that are
    // always 0 on healthy nodes) from swamping the ranking with unbounded
    // z-scores: a flip of such a feature is strong evidence, but it should
    // compete on the same scale as continuous deviations. The absolute
    // floor assumes features of comparable scale (the pipeline Min-Max
    // scales them to [0, 1]).
    const double healthy_range = stats::range(col);
    mad_[j] = std::max({1.4826 * stats::median(deviations),
                        0.05 * healthy_range, 0.05});
  }
}

std::vector<FeatureDeviation> QueryExplainer::top_features(
    std::span<const double> sample, std::size_t k) const {
  ALBA_CHECK(sample.size() == names_.size());
  std::vector<FeatureDeviation> all(names_.size());
  for (std::size_t j = 0; j < names_.size(); ++j) {
    all[j].feature = names_[j];
    all[j].value = sample[j];
    all[j].healthy_median = median_[j];
    all[j].z = std::clamp((sample[j] - median_[j]) / mad_[j], -100.0, 100.0);
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(),
                    [](const FeatureDeviation& a, const FeatureDeviation& b) {
                      return std::abs(a.z) > std::abs(b.z);
                    });
  all.resize(k);
  return all;
}

std::vector<MetricDeviation> QueryExplainer::top_metrics(
    std::span<const double> sample, std::size_t k) const {
  // Aggregate the strongest feature deviations up to metric granularity.
  const auto features = top_features(sample, std::min<std::size_t>(
                                                 names_.size(), 10 * k));
  std::map<std::string, MetricDeviation> by_metric;
  for (const auto& f : features) {
    const auto sep = f.feature.find('|');
    const std::string metric =
        sep == std::string::npos ? f.feature : f.feature.substr(0, sep);
    auto& entry = by_metric[metric];
    entry.metric = metric;
    entry.max_abs_z = std::max(entry.max_abs_z, std::abs(f.z));
    entry.features += 1;
  }
  std::vector<MetricDeviation> out;
  out.reserve(by_metric.size());
  for (auto& [metric, dev] : by_metric) out.push_back(std::move(dev));
  std::sort(out.begin(), out.end(),
            [](const MetricDeviation& a, const MetricDeviation& b) {
              return a.max_abs_z > b.max_abs_z;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace alba
