// alba.hpp — the single public entry point to the ALBADross library.
//
// This facade is the Tier-1 API surface (see DESIGN.md, "API tiers"):
// everything an application needs to reproduce the paper's workflow or to
// deploy a trained model, with source stability across PRs. The exported
// surface, in pipeline order:
//
//   dataset      DatasetConfig, volta_config/eclipse_config/tiny_config,
//                build_experiment_data, ExperimentData
//   splits       make_split, prepare_split, PreparedSplit, make_al_setup
//   training     ActiveLearner, LabelOracle, QueryStrategy, make_model_factory,
//                table4_optimum, grid_search_cv, evaluation metrics
//   explaining   QueryExplainer (annotator-assist views)
//   persistence  save_classifier / load_classifier (bare models),
//                ModelBundle / export_model_bundle (deployable bundles)
//   streaming    StreamIngestor, StreamIngestConfig, GapPolicy (per-node
//                ring buffers over a 1 Hz feed, sliding-window triggering,
//                incremental O(M) features), TriggeredWindow, IngestStats,
//                stream_feature_names
//   wire         the framed socket transport in front of StreamIngestor:
//                WireClient (buffered exactly-once delivery, reconnect and
//                resume), IngestServer (typed decode errors, per-node
//                backpressure budget, snapshot/restart), TcpListener /
//                tcp_connect / LoopbackHub transports, WireChaos (seeded
//                network fault injection)
//   serving      Diagnoser (the tier-uniform interface: DiagnoseRequest in,
//                DiagnosisResult out, free diagnose_with_retry over any
//                tier); DiagnosisService, ServingConfig, Diagnosis,
//                ServingStats; ServiceHost (admission control, deadlines,
//                health, drain, hot reload with rollback), ServingFleet
//                (consistent-hash routing, failover, canary rollout),
//                ServingChaos / FleetChaos (fault injection)
//   utilities    logging, CLI flags, text tables, string helpers,
//                ThreadPool, Deadline, backoff/retry
//
// Subsystem headers (core/..., ml/..., features/...) remain includable as
// the Tier-2 surface for tools that need more than the facade, but
// examples and downstream applications should start here.
#pragma once

#include "active/explain.hpp"
#include "active/learner.hpp"
#include "anomaly/anomaly.hpp"
#include "common/backoff.hpp"
#include "common/cli.hpp"
#include "common/deadline.hpp"
#include "common/log.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "ml/grid_search.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"
#include "serving/chaos.hpp"
#include "serving/diagnoser.hpp"
#include "serving/diagnosis_service.hpp"
#include "serving/fleet.hpp"
#include "serving/hot_reload.hpp"
#include "serving/model_bundle.hpp"
#include "serving/service_host.hpp"
#include "streaming/ingest.hpp"
#include "streaming/ingest_server.hpp"
#include "wire/chaos.hpp"
#include "wire/client.hpp"
#include "wire/frame.hpp"
#include "wire/transport.hpp"
