// Incremental per-metric window features for the streaming front end.
//
// A triggered window's feature vector is maintained *as samples arrive*:
// each metric carries a Welford mean/variance accumulator, a running
// min/max, and one P² quantile sketch per tracked percentile. Emitting the
// vector at trigger time is then O(M) — read the accumulators — instead of
// the O(T x M) batch recompute (copy column, interpolate, difference, sort
// for every quantile).
//
// Parity contract against the batch path (stream_features_batch, which
// consumes a preprocess_metric_column output):
//   * mean, var, min, max are BIT-IDENTICAL: both paths fold the same
//     resolved value sequence through the same recurrences in the same
//     order (WelfordState / MinMaxState below are the shared code);
//   * quantiles are VALUE-IDENTICAL (== compares true; only a +-0.0 bit
//     pattern could differ) while the window holds at most
//     kQuantileExactCap resolved values: the accumulator keeps a sorted
//     buffer — order statistics are maintained at push time by binary
//     insertion, so emit reads the same sorted-interpolation quantile as
//     the batch path in O(1) without sorting. Production window lengths
//     (48-128 rows) stay entirely on this exact path. Past the cap the
//     buffer is released and the P² sketches (fed
//     from the first sample, 5 markers, O(1) space) answer instead, pinned
//     by the documented delta gate: for a window whose resolved values
//     span `range = max - min`,
//         |sketch - exact| <= kQuantileDeltaGate * range + 1e-9.
//     P² has no worst-case guarantee (tie-heavy fault shapes can push it
//     toward the gate), which is exactly why small windows use the exact
//     buffer. Tests and the CI smoke (bench_stream_ingest --smoke)
//     enforce both halves.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace alba {

/// Percentiles tracked per metric, in emit order after mean/var/min/max.
inline constexpr std::array<double, 5> kStreamQuantiles = {0.05, 0.25, 0.50,
                                                           0.75, 0.95};

/// Features per metric: mean, var, min, max, then kStreamQuantiles.
inline constexpr std::size_t kStreamFeaturesPerMetric =
    4 + kStreamQuantiles.size();

/// Resolved values per window up to which quantiles come from an exact
/// in-order buffer (bit-identical to the batch sort) instead of the P²
/// sketch. 128 covers every production window length; the buffer costs at
/// most 1 KiB per metric per in-flight window and is released the moment
/// a window outgrows it.
inline constexpr std::size_t kQuantileExactCap = 128;

/// Sketch-vs-exact quantile tolerance, as a fraction of the window's value
/// range (see the parity contract above); only reachable for windows past
/// kQuantileExactCap. Empirically P² on smooth telemetry stays well inside
/// 0.15 x range; 0.35 leaves headroom for adversarial fault-injected
/// shapes without ever accepting a quantile that left the window's value
/// range.
inline constexpr double kQuantileDeltaGate = 0.35;

/// "m<metric>_<name>" suffixes in emit order: mean, var, min, max, p05,
/// p25, p50, p75, p95.
const std::array<std::string, kStreamFeaturesPerMetric>&
stream_feature_suffixes();

/// Welford's online mean/variance — the recurrence both the incremental
/// and the batch path fold, so their outputs are bit-identical.
struct WelfordState {
  std::size_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void add(double v) noexcept {
    ++n;
    const double d1 = v - mean;
    mean += d1 / static_cast<double>(n);
    const double d2 = v - mean;
    m2 += d1 * d2;
  }

  /// Population variance (the n divisor), 0 for an empty accumulator.
  double variance() const noexcept {
    return n > 0 ? m2 / static_cast<double>(n) : 0.0;
  }
};

/// Running min/max, shared by both paths for the same reason.
struct MinMaxState {
  bool seen = false;
  double min = 0.0;
  double max = 0.0;

  void add(double v) noexcept {
    if (!seen) {
      seen = true;
      min = v;
      max = v;
      return;
    }
    if (v < min) min = v;
    if (v > max) max = v;
  }
};

/// P² (Jain & Chlamtac 1985) single-quantile estimator: five markers, O(1)
/// per sample, O(1) space. Exact (linear-interpolation quantile, matching
/// stats::quantile) while n <= 5; a parabolic-update estimate afterwards.
/// Pure arithmetic — deterministic for a given sample sequence.
class P2Quantile {
 public:
  explicit P2Quantile(double q) noexcept;

  void add(double v) noexcept;
  double value() const noexcept;
  std::size_t count() const noexcept { return n_; }

 private:
  double q_;
  std::size_t n_ = 0;
  std::array<double, 5> heights_{};    // marker values, ascending
  std::array<double, 5> positions_{};  // actual marker positions (1-based)
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> rates_{};      // desired-position increments
};

/// One metric's per-window accumulator bundle: fold resolved values in
/// arrival order, emit kStreamFeaturesPerMetric features in O(1).
class StreamAccumulator {
 public:
  StreamAccumulator() noexcept;

  void add(double v);
  std::size_t count() const noexcept { return welford_.n; }

  /// Writes mean, var, min, max, then the quantiles (exact while the
  /// buffer holds, sketch-backed past the cap) into
  /// out[0..kStreamFeaturesPerMetric).
  void emit(std::span<double> out) const;

 private:
  WelfordState welford_;
  MinMaxState minmax_;
  std::array<P2Quantile, kStreamQuantiles.size()> sketches_;
  std::vector<double> exact_;  // kept sorted; emptied past the cap
};

/// Batch reference for one preprocessed column (a preprocess_metric_column
/// output): mean/var/min/max via the shared recurrences above —
/// bit-identical to the incremental path by construction — and *exact*
/// quantiles via the sorted-column linear interpolation (stats::quantile
/// semantics). Writes kStreamFeaturesPerMetric values into `out`.
void stream_features_batch(std::span<const double> processed,
                           std::span<double> out);

}  // namespace alba
