// The pool-based active learning loop (Fig. 1 of the paper):
//
//   1. train the supervised model on the labeled seed set
//      (one sample per (application, anomaly) pair — no healthy samples);
//   2. the query strategy selects a pool sample; the oracle labels it;
//   3. the model is re-trained with the grown labeled set;
//   4. measure F1 / false-alarm / miss-rate on a fixed withheld test set;
//   5. repeat until the query budget or the target F1 is reached.
//
// The learner owns nothing about where features came from — any Classifier,
// any pool — so Proctor (autoencoder codes + logistic regression, random
// queries) runs through the same loop.
#pragma once

#include <cstdint>
#include <memory>

#include "active/curves.hpp"
#include "active/oracle.hpp"
#include "active/round_stats.hpp"
#include "active/strategy.hpp"
#include "ml/classifier.hpp"
#include "ml/dataset.hpp"

namespace alba {

struct ActiveLearnerConfig {
  QueryStrategy strategy = QueryStrategy::Uncertainty;
  int max_queries = 250;
  double target_f1 = -1.0;  // stop early when reached; <0 disables
  int num_apps = 0;         // required by the equal-app baseline
  std::uint64_t seed = 0;

  // --- extensions beyond the paper ---
  // Labels requested per re-training round. 1 reproduces the paper's loop;
  // larger batches trade annotation round-trips against informativeness
  // staleness (scores are not refreshed within a batch).
  int batch_size = 1;
  // Members for the query-by-committee strategies.
  int committee_size = 5;
  // Density exponent for the density-weighted strategy (Settles' beta).
  double density_beta = 1.0;
  // Reference subsample for the density estimate.
  std::size_t density_ref_cap = 256;
};

/// One answered query, for drill-down analyses (paper Fig. 4).
struct QueryRecord {
  std::size_t pool_index = 0;  // index into the original pool
  int label = 0;               // oracle's answer
  int app_id = -1;
};

struct ActiveLearnerResult {
  QueryCurve curve;                  // point 0 = seed-only model
  std::vector<QueryRecord> queried;  // in query order
  std::vector<RoundStats> rounds;    // entry 0 = seed fit; aligns with curve
  double final_f1 = 0.0;
  int queries_to_target = -1;        // -1 when target disabled/missed
};

class ActiveLearner {
 public:
  ActiveLearner(std::unique_ptr<Classifier> model, ActiveLearnerConfig config);

  /// Runs the loop. `pool_x` rows align with `oracle` and `pool_app_ids`.
  /// The test set stays fixed across all queries, as in the paper.
  ActiveLearnerResult run(const LabeledData& seed, const Matrix& pool_x,
                          LabelOracle& oracle,
                          std::span<const int> pool_app_ids,
                          const Matrix& test_x, std::span<const int> test_y);

  const Classifier& model() const noexcept { return *model_; }

 private:
  std::unique_ptr<Classifier> model_;
  ActiveLearnerConfig config_;
};

}  // namespace alba
