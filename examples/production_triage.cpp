// Production triage scenario: the deployment workflow the paper's
// conclusion sketches, now through the full serving stack. A model is
// trained once with active learning and frozen into a ModelBundle
// (classifier + scaler + selected features + label names + feature config
// in one archive); later, a ServiceHost wraps the DiagnosisService the
// way a production endpoint would — per-request deadlines, bounded
// admission, typed load shedding — and serves a stream of freshly arrived
// multi-node runs collected by a degraded telemetry pipeline (dropouts,
// stuck sensors, NaN bursts). Mid-morning, operations pushes a model
// update: first a corrupted artifact (rejected and rolled back by probe
// validation), then the real one (atomic swap, next generation). The day
// ends with a graceful drain.
//
// Build & run:  ./build/examples/production_triage
#include <cstdio>
#include <string>
#include <vector>

#include "alba.hpp"

using namespace alba;

int main() {
  set_log_level(LogLevel::Warn);

  // ---- training phase (identical to quickstart, condensed) --------------
  DatasetConfig config = volta_config();
  config.num_apps = 6;
  std::printf("[train] building dataset and training with active learning...\n");
  const ExperimentData data = build_experiment_data(config);
  const SplitIndices split = make_split(data, 0.3, 11);
  const PreparedSplit prepared = prepare_split(data, split, config.select_k);
  const ALSetup setup = make_al_setup(prepared, 12);

  ActiveLearnerConfig al_config;
  al_config.strategy = QueryStrategy::Uncertainty;
  al_config.max_queries = 100;
  al_config.target_f1 = 0.95;
  ActiveLearner learner(make_model_factory("rf", kNumClasses, 13)(
                            table4_optimum("rf", false)),
                        al_config);
  LabelOracle oracle(setup.pool_y, kNumClasses);
  const auto result = learner.run(setup.seed, setup.pool_x, oracle,
                                  setup.pool_app, setup.test_x, setup.test_y);
  std::printf("[train] F1 %.3f after %zu annotations\n\n", result.final_f1,
              oracle.queries_answered());

  // Freeze everything the serving side needs — the classifier plus the
  // scaler/selector prepare_split fitted — into one versioned archive.
  const std::string bundle_path = "/tmp/albadross_triage_bundle.bin";
  export_model_bundle(bundle_path, data, prepared, learner.model());

  // ---- deployment phase --------------------------------------------------
  // The endpoint: bounded queue, two workers, a default deadline so a
  // stuck pipeline pass can never hold a caller forever. diagnose() always
  // returns a typed HostResult — overload and deadline misses are
  // statuses, not exceptions.
  std::printf("[deploy] hosting %s behind admission control\n\n",
              bundle_path.c_str());
  ServingConfig serving;
  serving.max_batch = 8;
  HostConfig host_config;
  host_config.workers = 2;
  host_config.queue_capacity = 16;
  host_config.default_deadline_ms = 250.0;
  ServiceHost host(std::make_shared<DiagnosisService>(
                       load_model_bundle_file(bundle_path), serving),
                   host_config);

  // The production collector is imperfect: metric dropouts, stuck sensors,
  // and NaN bursts degrade the incoming windows (truncation off so every
  // window stays long enough to trim).
  FaultConfig collector_faults;
  collector_faults.metric_dropout_rate = 0.02;
  collector_faults.stuck_rate = 0.02;
  collector_faults.nan_burst_rate = 0.05;
  collector_faults.row_stall_rate = 0.01;
  RunGenerator generator(config.system, config.registry, config.sim,
                         collector_faults);

  // A morning's worth of incoming runs: mixed healthy and anomalous.
  const std::vector<RunSpec> incoming{
      {.app_id = 0, .input_id = 1, .nodes = 4, .anomaly = AnomalyType::Healthy,
       .intensity = 0.0, .run_id = 900, .seed = 9001},
      {.app_id = 3, .input_id = 0, .nodes = 4, .anomaly = AnomalyType::MemLeak,
       .intensity = 0.5, .run_id = 901, .seed = 9002},
      {.app_id = 1, .input_id = 2, .nodes = 4, .anomaly = AnomalyType::Healthy,
       .intensity = 0.0, .run_id = 902, .seed = 9003},
      {.app_id = 5, .input_id = 1, .nodes = 4, .anomaly = AnomalyType::MemBw,
       .intensity = 1.0, .run_id = 903, .seed = 9004},
      {.app_id = 2, .input_id = 0, .nodes = 4, .anomaly = AnomalyType::Dial,
       .intensity = 0.5, .run_id = 904, .seed = 9005},
  };
  std::vector<Matrix> probe_windows;  // held back for reload validation
  for (const auto& spec : incoming) {
    const auto samples = generator.generate_run(spec);
    const std::string app = generator.apps()[spec.app_id].name;
    std::printf("run %3d  %-10s input %d, %d nodes:\n", spec.run_id,
                app.c_str(), spec.input_id, spec.nodes);
    for (std::size_t node = 0; node < samples.size(); ++node) {
      const HostResult r = host.diagnose(samples[node].series);
      if (!r.ok()) {  // shed or failed — typed, never an exception
        std::printf("    node %zu: [%s] %s\n", node,
                    std::string(to_string(r.status)).c_str(),
                    r.error.c_str());
        continue;
      }
      const Diagnosis& d = r.diagnosis;
      const char* marker = d.label != 0 ? "  <-- ALERT" : "";
      std::printf("    node %zu: %-10s confidence %.2f%s\n", node,
                  std::string(host.service()->label_name(d.label)).c_str(),
                  d.confidence, marker);
      if (probe_windows.size() < 4) {
        probe_windows.push_back(samples[node].series);
      }
    }
  }

  // A dashboard re-checking the last alerting run hits the window cache;
  // routed through the retrying wrapper a flaky client would use (any
  // transient Failed / queue-full outcome gets seeded exponential backoff).
  BackoffConfig backoff;
  backoff.max_attempts = 3;
  backoff.initial_delay_ms = 2.0;
  const auto recheck = generator.generate_run(incoming[3]);
  for (const Sample& s : recheck) {
    diagnose_with_retry(host, {&s.series, Deadline::after_ms(500.0)}, backoff);
  }

  std::printf("\n(ground truth: run 901 memleak@node0, 903 membw@node0, "
              "904 dial@node0; the rest healthy)\n");
  std::printf("[serving] %s\n",
              format_serving_summary(host.service()->stats()).c_str());

  // ---- operations interlude: a model push gone wrong --------------------
  // Every reload is validated against held-back probe windows before the
  // swap. The corrupted artifact never reaches serving: the old bundle
  // keeps answering, untouched.
  host.set_probe_windows(probe_windows);
  const std::string bad_path = bundle_path + ".corrupt";
  write_poisoned_bundle(bundle_path, bad_path, BundlePoison::Truncate, 99);
  const ReloadReport bad_push = host.reload_from_file(bad_path);
  std::printf("\n[reload] corrupted push: %s\n", bad_push.summary().c_str());
  std::remove(bad_path.c_str());

  const ReloadReport good_push = host.reload_from_file(bundle_path);
  std::printf("[reload] fixed push:     %s\n", good_push.summary().c_str());
  const HostResult after = host.diagnose(recheck[0].series);
  std::printf("[reload] generation %llu now serving (recheck: %s)\n",
              static_cast<unsigned long long>(host.generation()),
              after.ok()
                  ? std::string(host.service()->label_name(after.diagnosis.label))
                        .c_str()
                  : std::string(to_string(after.status)).c_str());

  // ---- end of day: drain ------------------------------------------------
  // Everything admitted finishes; everything after is shed with a typed
  // status a load balancer can act on.
  host.drain();
  const HostResult post_drain = host.diagnose(recheck[0].series);
  std::printf("\n[drain] host %s; post-drain request -> %s\n",
              std::string(to_string(host.health())).c_str(),
              std::string(to_string(post_drain.status)).c_str());
  std::printf("[host] %s\n", format_host_summary(host.stats()).c_str());
  return 0;
}
