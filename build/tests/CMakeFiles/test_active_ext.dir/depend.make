# Empty dependencies file for test_active_ext.
# This may be replaced when dependencies are built.
