file(REMOVE_RECURSE
  "CMakeFiles/test_ml_linear.dir/test_ml_linear.cpp.o"
  "CMakeFiles/test_ml_linear.dir/test_ml_linear.cpp.o.d"
  "test_ml_linear"
  "test_ml_linear.pdb"
  "test_ml_linear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
