file(REMOVE_RECURSE
  "CMakeFiles/alba_features.dir/features/extractor.cpp.o"
  "CMakeFiles/alba_features.dir/features/extractor.cpp.o.d"
  "CMakeFiles/alba_features.dir/features/mvts.cpp.o"
  "CMakeFiles/alba_features.dir/features/mvts.cpp.o.d"
  "CMakeFiles/alba_features.dir/features/preprocessing.cpp.o"
  "CMakeFiles/alba_features.dir/features/preprocessing.cpp.o.d"
  "CMakeFiles/alba_features.dir/features/tsfresh.cpp.o"
  "CMakeFiles/alba_features.dir/features/tsfresh.cpp.o.d"
  "libalba_features.a"
  "libalba_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alba_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
