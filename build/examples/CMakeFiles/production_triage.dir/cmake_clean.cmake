file(REMOVE_RECURSE
  "CMakeFiles/production_triage.dir/production_triage.cpp.o"
  "CMakeFiles/production_triage.dir/production_triage.cpp.o.d"
  "production_triage"
  "production_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
