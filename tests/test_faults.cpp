// Tests for the telemetry fault-injection subsystem and the graceful
// degradation it forces on the rest of the pipeline: the injector's failure
// modes and accounting, robust preprocessing quarantine, robust feature
// extraction (bit-identical to the strict path on clean data), degenerate
// column handling in chi-square selection, the ActiveLearner's pool
// validation, and the end-to-end degraded pipeline with its
// DataQualityReport.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "active/learner.hpp"
#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "features/extractor.hpp"
#include "ml/random_forest.hpp"
#include "preprocess/select_kbest.hpp"
#include "telemetry/faults.hpp"
#include "telemetry/run_generator.hpp"

namespace alba {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

MetricRegistry small_registry() {
  RegistryConfig cfg;
  cfg.cores = 1;
  cfg.nics = 1;
  cfg.filler_gauges = 1;
  return MetricRegistry(SystemKind::Volta, cfg);
}

// A raw series where every counter climbs and every gauge wiggles, so any
// corruption is visible.
Matrix ramp_series(const MetricRegistry& registry, std::size_t rows) {
  Matrix raw(rows, registry.size());
  for (std::size_t t = 0; t < rows; ++t) {
    for (std::size_t j = 0; j < registry.size(); ++j) {
      const bool counter = registry.metric(j).kind == MetricKind::Counter;
      raw(t, j) = counter
                      ? 100.0 * static_cast<double>(j + 1) +
                            10.0 * static_cast<double>(t)
                      : 5.0 + static_cast<double>(j) +
                            0.25 * static_cast<double>(t % 7);
    }
  }
  return raw;
}

// ------------------------------------------------------------- config ---

TEST(FaultConfig, DefaultIsDisabled) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  EXPECT_TRUE(production_faults().enabled());
}

TEST(FaultConfig, ScaledMultipliesAndClamps) {
  const FaultConfig base = production_faults();
  EXPECT_FALSE(base.scaled(0.0).enabled());
  const FaultConfig doubled = base.scaled(2.0);
  EXPECT_DOUBLE_EQ(doubled.nan_burst_rate, 2.0 * base.nan_burst_rate);
  EXPECT_DOUBLE_EQ(base.scaled(1e9).metric_dropout_rate, 1.0);
  EXPECT_EQ(doubled.nan_burst_len, base.nan_burst_len);
}

TEST(FaultConfig, InjectorRejectsBadConfig) {
  FaultConfig bad;
  bad.metric_dropout_rate = 1.5;
  EXPECT_THROW(TelemetryFaultInjector{bad}, Error);
  bad = FaultConfig{};
  bad.nan_burst_len = 0;
  EXPECT_THROW(TelemetryFaultInjector{bad}, Error);
  bad = FaultConfig{};
  bad.truncate_min_frac = 0.0;
  EXPECT_THROW(TelemetryFaultInjector{bad}, Error);
}

// ----------------------------------------------------------- injector ---

TEST(FaultInjector, DeterministicForSameStream) {
  const MetricRegistry registry = small_registry();
  const TelemetryFaultInjector injector(production_faults().scaled(3.0));
  Matrix a = ramp_series(registry, 50);
  Matrix b = ramp_series(registry, 50);
  Rng rng_a(77), rng_b(77);
  const FaultSummary sa = injector.apply(a, registry, rng_a);
  const FaultSummary sb = injector.apply(b, registry, rng_b);
  EXPECT_EQ(sa.cells_corrupted, sb.cells_corrupted);
  EXPECT_EQ(sa.total_events(), sb.total_events());
  ASSERT_EQ(a.rows(), b.rows());
  for (std::size_t t = 0; t < a.rows(); ++t) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const bool both_nan = std::isnan(a(t, j)) && std::isnan(b(t, j));
      EXPECT_TRUE(both_nan || a(t, j) == b(t, j));
    }
  }
}

TEST(FaultInjector, DisabledConfigIsNoop) {
  const MetricRegistry registry = small_registry();
  const TelemetryFaultInjector injector(FaultConfig{});
  Matrix series = ramp_series(registry, 30);
  const Matrix original = series;
  Rng rng(5);
  const FaultSummary summary = injector.apply(series, registry, rng);
  EXPECT_EQ(summary.total_events(), 0u);
  EXPECT_EQ(summary.cells_corrupted, 0u);
  for (std::size_t t = 0; t < series.rows(); ++t) {
    for (std::size_t j = 0; j < series.cols(); ++j) {
      EXPECT_EQ(series(t, j), original(t, j));
    }
  }
}

TEST(FaultInjector, DropoutErasesWholeColumns) {
  const MetricRegistry registry = small_registry();
  FaultConfig cfg;
  cfg.metric_dropout_rate = 1.0;
  const TelemetryFaultInjector injector(cfg);
  Matrix series = ramp_series(registry, 25);
  Rng rng(3);
  const FaultSummary summary = injector.apply(series, registry, rng);
  EXPECT_EQ(summary.metric_dropouts, registry.size());
  EXPECT_EQ(summary.cells_corrupted, 25u * registry.size());
  for (std::size_t t = 0; t < series.rows(); ++t) {
    for (std::size_t j = 0; j < series.cols(); ++j) {
      EXPECT_TRUE(std::isnan(series(t, j)));
    }
  }
}

TEST(FaultInjector, StuckFreezesEveryColumnFromItsOnset) {
  const MetricRegistry registry = small_registry();
  FaultConfig cfg;
  cfg.stuck_rate = 1.0;
  const TelemetryFaultInjector injector(cfg);
  Matrix series = ramp_series(registry, 40);
  Rng rng(11);
  const FaultSummary summary = injector.apply(series, registry, rng);
  EXPECT_EQ(summary.stuck_metrics, registry.size());
  for (std::size_t j = 0; j < series.cols(); ++j) {
    // Some suffix of the column repeats a single held value.
    const double held = series(series.rows() - 1, j);
    std::size_t frozen = 0;
    for (std::size_t t = series.rows(); t-- > 0;) {
      if (series(t, j) != held) break;
      ++frozen;
    }
    EXPECT_GE(frozen, 1u) << "column " << j << " not frozen";
  }
}

TEST(FaultInjector, NanBurstIsBoundedAndCounted) {
  const MetricRegistry registry = small_registry();
  FaultConfig cfg;
  cfg.nan_burst_rate = 1.0;
  cfg.nan_burst_len = 5;
  const TelemetryFaultInjector injector(cfg);
  Matrix series = ramp_series(registry, 60);
  Rng rng(19);
  const FaultSummary summary = injector.apply(series, registry, rng);
  EXPECT_EQ(summary.nan_bursts, registry.size());
  std::size_t nan_cells = 0;
  for (std::size_t j = 0; j < series.cols(); ++j) {
    std::size_t col_nans = 0;
    for (std::size_t t = 0; t < series.rows(); ++t) {
      if (std::isnan(series(t, j))) ++col_nans;
    }
    EXPECT_GE(col_nans, 1u);
    EXPECT_LE(col_nans, 5u);
    nan_cells += col_nans;
  }
  EXPECT_EQ(summary.cells_corrupted, nan_cells);
}

TEST(FaultInjector, CounterResetMakesANegativeStepThatPreprocessClamps) {
  const MetricRegistry registry = small_registry();
  FaultConfig cfg;
  cfg.counter_reset_rate = 1.0;
  const TelemetryFaultInjector injector(cfg);
  Matrix series = ramp_series(registry, 30);
  Rng rng(23);
  const FaultSummary summary = injector.apply(series, registry, rng);

  std::size_t counters = 0;
  for (std::size_t j = 0; j < registry.size(); ++j) {
    if (registry.metric(j).kind != MetricKind::Counter) continue;
    ++counters;
    // The reset drops the cumulative value mid-run: a raw negative step.
    bool negative_step = false;
    for (std::size_t t = 1; t < series.rows(); ++t) {
      if (series(t, j) < series(t - 1, j)) negative_step = true;
    }
    EXPECT_TRUE(negative_step) << "counter " << j << " kept climbing";
  }
  ASSERT_GT(counters, 0u);
  EXPECT_EQ(summary.counter_resets, counters);

  // The preprocessing clamp turns the negative step into a zero rate, never
  // a negative one.
  PreprocessConfig pp;
  pp.trim_head = 2;
  pp.trim_tail = 2;
  const Matrix clean = preprocess_series(series, registry, pp);
  for (std::size_t j = 0; j < registry.size(); ++j) {
    if (registry.metric(j).kind != MetricKind::Counter) continue;
    for (std::size_t t = 0; t < clean.rows(); ++t) {
      EXPECT_GE(clean(t, j), 0.0);
    }
  }
}

TEST(FaultInjector, TruncationRespectsMinimumFraction) {
  const MetricRegistry registry = small_registry();
  FaultConfig cfg;
  cfg.truncate_prob = 1.0;
  cfg.truncate_min_frac = 0.5;
  const TelemetryFaultInjector injector(cfg);
  Matrix series = ramp_series(registry, 40);
  Rng rng(29);
  const FaultSummary summary = injector.apply(series, registry, rng);
  EXPECT_EQ(summary.truncated_runs, 1u);
  EXPECT_GE(series.rows(), 20u);  // >= min_frac * 40
  EXPECT_LT(series.rows(), 40u);
  EXPECT_EQ(summary.truncated_rows, 40u - series.rows());
}

TEST(FaultInjector, RowStallDuplicatesThePreviousScan) {
  const MetricRegistry registry = small_registry();
  FaultConfig cfg;
  cfg.row_stall_rate = 1.0;
  const TelemetryFaultInjector injector(cfg);
  Matrix series = ramp_series(registry, 15);
  Rng rng(31);
  const FaultSummary summary = injector.apply(series, registry, rng);
  EXPECT_EQ(summary.stalled_rows, 14u);
  // Every row stalled, so the whole series repeats row 0.
  for (std::size_t t = 1; t < series.rows(); ++t) {
    for (std::size_t j = 0; j < series.cols(); ++j) {
      EXPECT_EQ(series(t, j), series(0, j));
    }
  }
}

TEST(FaultInjector, RunGeneratorWiresFaultsIntoSamples) {
  RegistryConfig rcfg;
  rcfg.cores = 1;
  rcfg.nics = 1;
  rcfg.filler_gauges = 1;
  NodeSimConfig sim;
  sim.duration_steps = 40;
  sim.ramp_steps = 3;
  sim.drain_steps = 3;
  FaultConfig faults;
  faults.metric_dropout_rate = 1.0;
  const RunGenerator generator(SystemKind::Volta, rcfg, sim, faults);
  RunSpec spec;
  spec.nodes = 2;
  spec.seed = 9;
  const auto samples = generator.generate_run(spec);
  ASSERT_EQ(samples.size(), 2u);
  for (const Sample& s : samples) {
    EXPECT_EQ(s.faults.metric_dropouts, generator.registry().size());
  }
}

// ------------------------------------------------- robust preprocessing ---

TEST(RobustPreprocess, QuarantinesUnrepairableMetricsAndCountsRepairs) {
  const MetricRegistry registry = small_registry();
  Matrix raw = ramp_series(registry, 20);
  // Column 0: completely missing. Column 1: only two finite samples.
  for (std::size_t t = 0; t < 20; ++t) raw(t, 0) = kNaN;
  for (std::size_t t = 0; t < 20; ++t) raw(t, 1) = kNaN;
  raw(4, 1) = 1.0;
  raw(9, 1) = 2.0;
  // Column 2: three missing cells, repairable.
  raw(5, 2) = kNaN;
  raw(6, 2) = kNaN;
  raw(12, 2) = kNaN;

  PreprocessConfig cfg;
  cfg.trim_head = 2;
  cfg.trim_tail = 2;
  SeriesQuality quality;
  const Matrix clean = preprocess_series_robust(raw, registry, cfg, quality);

  ASSERT_TRUE(quality.usable);
  EXPECT_EQ(clean.rows(), 20u - 2u - 2u - 1u);
  ASSERT_EQ(quality.metric_ok.size(), registry.size());
  EXPECT_EQ(quality.metric_ok[0], 0);
  EXPECT_EQ(quality.metric_ok[1], 0);
  EXPECT_EQ(quality.metric_ok[2], 1);
  EXPECT_EQ(quality.metrics_quarantined, 2u);
  EXPECT_EQ(quality.cells_interpolated, 3u);
  for (std::size_t t = 0; t < clean.rows(); ++t) {
    EXPECT_EQ(clean(t, 0), 0.0);  // quarantined columns zero-filled
    EXPECT_EQ(clean(t, 1), 0.0);
    EXPECT_TRUE(std::isfinite(clean(t, 2)));
  }
}

TEST(RobustPreprocess, TooShortSeriesIsUnusableNotFatal) {
  const MetricRegistry registry = small_registry();
  const Matrix raw = ramp_series(registry, 5);
  PreprocessConfig cfg;  // default trim 6 + 5 > 5 rows
  SeriesQuality quality;
  const Matrix clean = preprocess_series_robust(raw, registry, cfg, quality);
  EXPECT_FALSE(quality.usable);
  EXPECT_EQ(clean.rows(), 0u);
  // The strict path throws on the same input.
  EXPECT_THROW(preprocess_series(raw, registry, cfg), Error);
}

TEST(RobustPreprocess, ConstantQuarantineIsGated) {
  const MetricRegistry registry = small_registry();
  Matrix raw = ramp_series(registry, 20);
  for (std::size_t t = 0; t < 20; ++t) raw(t, 0) = 42.0;  // stuck gauge

  PreprocessConfig cfg;
  cfg.trim_head = 2;
  cfg.trim_tail = 2;
  SeriesQuality quality;
  preprocess_series_robust(raw, registry, cfg, quality);
  EXPECT_EQ(quality.metric_ok[0], 1);  // off by default

  cfg.quarantine_constant = true;
  preprocess_series_robust(raw, registry, cfg, quality);
  EXPECT_EQ(quality.metric_ok[0], 0);
  EXPECT_GE(quality.metrics_quarantined, 1u);
}

TEST(RobustPreprocess, MatchesStrictPathOnCleanData) {
  const MetricRegistry registry = small_registry();
  const Matrix raw = ramp_series(registry, 30);
  PreprocessConfig cfg;
  cfg.trim_head = 3;
  cfg.trim_tail = 3;
  const Matrix strict = preprocess_series(raw, registry, cfg);
  SeriesQuality quality;
  const Matrix robust = preprocess_series_robust(raw, registry, cfg, quality);
  ASSERT_EQ(strict.rows(), robust.rows());
  for (std::size_t t = 0; t < strict.rows(); ++t) {
    for (std::size_t j = 0; j < strict.cols(); ++j) {
      EXPECT_EQ(strict(t, j), robust(t, j));
    }
  }
  EXPECT_EQ(quality.metrics_quarantined, 0u);
}

// --------------------------------------------------- robust extraction ---

class RobustExtractionTest : public ::testing::Test {
 protected:
  RobustExtractionTest() {
    RegistryConfig rcfg;
    rcfg.cores = 1;
    rcfg.nics = 1;
    rcfg.filler_gauges = 1;
    NodeSimConfig sim;
    sim.duration_steps = 40;
    sim.ramp_steps = 3;
    sim.drain_steps = 3;
    generator_ =
        std::make_unique<RunGenerator>(SystemKind::Volta, rcfg, sim);
    RunSpec spec;
    spec.nodes = 3;
    spec.seed = 21;
    samples_ = generator_->generate_run(spec);
    preprocess_.trim_head = 3;
    preprocess_.trim_tail = 3;
  }

  std::unique_ptr<RunGenerator> generator_;
  std::vector<Sample> samples_;
  PreprocessConfig preprocess_;
};

TEST_F(RobustExtractionTest, BitIdenticalToStrictOnCleanData) {
  const MvtsExtractor extractor;
  const FeatureMatrix strict = extract_features(
      samples_, generator_->registry(), extractor, preprocess_);
  ExtractionQuality quality;
  const FeatureMatrix robust = extract_features_robust(
      samples_, generator_->registry(), extractor, preprocess_, quality);

  ASSERT_EQ(strict.x.rows(), robust.x.rows());
  ASSERT_EQ(strict.x.cols(), robust.x.cols());
  for (std::size_t i = 0; i < strict.x.rows(); ++i) {
    for (std::size_t j = 0; j < strict.x.cols(); ++j) {
      const double a = strict.x(i, j);
      const double b = robust.x(i, j);
      EXPECT_TRUE(a == b || (std::isnan(a) && std::isnan(b)))
          << "mismatch at (" << i << ", " << j << ")";
    }
  }
  EXPECT_EQ(strict.names, robust.names);
  EXPECT_EQ(strict.labels, robust.labels);
  EXPECT_EQ(quality.rows_dropped, 0u);
  EXPECT_EQ(quality.metrics_quarantined, 0u);
  EXPECT_EQ(quality.feature_failures, 0u);
}

TEST_F(RobustExtractionTest, DropsUnusableSamplesAndZeroFillsQuarantine) {
  // Sample 1: truncated below the trim window. Sample 2: first metric
  // erased entirely.
  samples_[1].series = Matrix(4, generator_->registry().size(), 1.0);
  for (std::size_t t = 0; t < samples_[2].series.rows(); ++t) {
    samples_[2].series(t, 0) = kNaN;
  }

  const MvtsExtractor extractor;
  ExtractionQuality quality;
  const FeatureMatrix fm = extract_features_robust(
      samples_, generator_->registry(), extractor, preprocess_, quality);

  EXPECT_EQ(quality.rows_dropped, 1u);
  ASSERT_EQ(quality.dropped_samples.size(), 1u);
  EXPECT_EQ(quality.dropped_samples[0], 1u);
  EXPECT_EQ(fm.num_samples(), samples_.size() - 1);
  EXPECT_GE(quality.metrics_quarantined, 1u);

  // The quarantined metric's feature block is neutral zero, not garbage.
  const std::size_t f = extractor.num_features();
  for (std::size_t k = 0; k < f; ++k) {
    EXPECT_EQ(fm.x(1, k), 0.0);  // row 1 is original sample 2
  }
  // Provenance survives the row drop.
  EXPECT_EQ(fm.node_ids[1], samples_[2].node_index);
}

TEST_F(RobustExtractionTest, ThrowsOnlyWhenNoSampleSurvives) {
  for (Sample& s : samples_) {
    s.series = Matrix(2, generator_->registry().size(), 1.0);
  }
  const MvtsExtractor extractor;
  ExtractionQuality quality;
  EXPECT_THROW(extract_features_robust(samples_, generator_->registry(),
                                       extractor, preprocess_, quality),
               Error);
}

// ---------------------------------------------------- degenerate columns ---

TEST(SelectKBestDegenerate, SkipsConstantAndNonFiniteColumns) {
  // 6 samples x 4 features: informative, constant, NaN-poisoned,
  // informative.
  Matrix x(6, 4, 0.0);
  const std::vector<int> y{0, 0, 0, 1, 1, 1};
  for (std::size_t i = 0; i < 6; ++i) {
    x(i, 0) = y[i] == 1 ? 2.0 : 0.25;
    x(i, 1) = 3.0;
    x(i, 2) = static_cast<double>(i);
    x(i, 3) = y[i] == 1 ? 0.1 : 1.5;
  }
  x(2, 2) = kNaN;

  SelectKBestChi2 selector(4);
  selector.fit(x, y);
  EXPECT_EQ(selector.degenerate_skipped(), 2u);
  ASSERT_EQ(selector.selected_indices().size(), 2u);
  for (const std::size_t j : selector.selected_indices()) {
    EXPECT_TRUE(j == 0 || j == 3);
  }
  const Matrix out = selector.transform(x);
  EXPECT_EQ(out.cols(), 2u);
}

TEST(SelectKBestDegenerate, AllDegenerateThrows) {
  Matrix x(4, 2, 1.0);  // both columns constant
  const std::vector<int> y{0, 0, 1, 1};
  SelectKBestChi2 selector(2);
  EXPECT_THROW(selector.fit(x, y), Error);
}

TEST(SelectKBestDegenerate, CleanMatrixUnaffected) {
  Matrix x(6, 3, 0.0);
  const std::vector<int> y{0, 1, 0, 1, 0, 1};
  Rng rng(13);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      x(i, j) = rng.uniform() + (y[i] == 1 ? 0.3 * static_cast<double>(j) : 0.0);
    }
  }
  SelectKBestChi2 selector(2);
  selector.fit(x, y);
  EXPECT_EQ(selector.degenerate_skipped(), 0u);
  EXPECT_EQ(selector.selected_indices().size(), 2u);
}

// ------------------------------------------------------ learner guard ---

TEST(LearnerPoolGuard, RejectsNonFinitePoolRowNamingTheSample) {
  const Matrix seed_x = Matrix::from_rows({{0.1, 0.9}, {0.8, 0.2}});
  LabeledData seed;
  seed.append(seed_x.row(0), 0);
  seed.append(seed_x.row(1), 1);

  Matrix pool = Matrix::from_rows({{0.2, 0.7}, {0.5, 0.5}, {0.9, 0.1}});
  pool(1, 1) = kNaN;
  LabelOracle oracle({0, 1, 1}, 2);
  const Matrix test_x = Matrix::from_rows({{0.3, 0.6}, {0.7, 0.3}});
  const std::vector<int> test_y{0, 1};

  ForestConfig fcfg;
  fcfg.num_classes = 2;
  fcfg.n_estimators = 3;
  ActiveLearnerConfig cfg;
  cfg.strategy = QueryStrategy::Uncertainty;
  cfg.max_queries = 2;
  ActiveLearner learner(std::make_unique<RandomForest>(fcfg, 1), cfg);

  try {
    learner.run(seed, pool, oracle, {}, test_x, test_y);
    FAIL() << "expected alba::Error on the NaN pool row";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("pool sample 1"), std::string::npos) << msg;
  }
}

// ------------------------------------------------- end-to-end pipeline ---

TEST(DegradedPipeline, CompletesAndAccountsForDegradation) {
  // The ISSUE's acceptance scenario: 20% metric dropout + 5% stuck
  // samplers, plus some truncation to exercise row drops.
  DatasetConfig cfg = tiny_config(SystemKind::Volta);
  cfg.faults.metric_dropout_rate = 0.20;
  cfg.faults.stuck_rate = 0.05;
  cfg.faults.truncate_prob = 0.30;
  cfg.faults.truncate_min_frac = 0.05;  // some runs fall below the trim

  const ExperimentData data = build_experiment_data(cfg);

  // Every generated sample is either in the matrix or accounted as dropped.
  const auto specs = make_collection_specs(cfg.system, cfg.num_apps,
                                           cfg.inputs_per_app, cfg.plan);
  std::size_t total_samples = 0;
  for (const RunSpec& spec : specs) {
    total_samples += static_cast<std::size_t>(spec.nodes);
  }
  EXPECT_EQ(data.features.num_samples() + data.quality.rows_dropped,
            total_samples);
  EXPECT_GT(data.quality.rows_dropped, 0u);  // deterministic: cfg.seed fixed

  // With ~20% of all metrics erased per sample, quarantines must at least
  // cover the dropouts that landed in surviving samples.
  EXPECT_GT(data.quality.faults.metric_dropouts, 0u);
  EXPECT_GE(data.quality.metrics_quarantined, 1u);
  for (std::size_t i = 0; i < data.features.x.rows(); ++i) {
    for (std::size_t j = 0; j < data.features.x.cols(); ++j) {
      EXPECT_TRUE(std::isfinite(data.features.x(i, j)));
    }
  }

  // Split, select, and run a short active-learning loop without throwing.
  const SplitIndices split = make_split(data, cfg.test_fraction, 5);
  const PreparedSplit prepared = prepare_split(data, split, cfg.select_k);
  const ALSetup setup = make_al_setup(prepared, 17);

  ForestConfig fcfg;
  fcfg.num_classes = kNumClasses;
  fcfg.n_estimators = 8;
  fcfg.max_depth = 6;
  ActiveLearnerConfig lcfg;
  lcfg.strategy = QueryStrategy::Uncertainty;
  lcfg.max_queries = 5;
  ActiveLearner learner(std::make_unique<RandomForest>(fcfg, 2), lcfg);
  LabelOracle oracle(setup.pool_y, kNumClasses);
  const auto result = learner.run(setup.seed, setup.pool_x, oracle,
                                  setup.pool_app, setup.test_x, setup.test_y);
  EXPECT_EQ(result.curve.size(), 6u);
  EXPECT_GE(result.final_f1, 0.0);
}

TEST(DegradedPipeline, DisabledFaultsReportAllZero) {
  DatasetConfig cfg = tiny_config(SystemKind::Volta);
  const ExperimentData data = build_experiment_data(cfg);
  EXPECT_EQ(data.quality.faults.total_events(), 0u);
  EXPECT_EQ(data.quality.rows_dropped, 0u);
  EXPECT_EQ(data.quality.metrics_quarantined, 0u);
  EXPECT_EQ(data.quality.cells_interpolated, 0u);
  EXPECT_EQ(data.quality.feature_failures, 0u);
}

}  // namespace
}  // namespace alba
