#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace alba {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::flag(const std::string& name, int* target, const std::string& help) {
  flags_.push_back({name, Kind::Int, target, help, strformat("%d", *target)});
}
void Cli::flag(const std::string& name, double* target, const std::string& help) {
  flags_.push_back({name, Kind::Double, target, help, strformat("%g", *target)});
}
void Cli::flag(const std::string& name, bool* target, const std::string& help) {
  flags_.push_back({name, Kind::Bool, target, help, *target ? "true" : "false"});
}
void Cli::flag(const std::string& name, std::string* target,
               const std::string& help) {
  flags_.push_back({name, Kind::String, target, help, *target});
}
void Cli::flag(const std::string& name, std::uint64_t* target,
               const std::string& help) {
  flags_.push_back(
      {name, Kind::U64, target, help, strformat("%llu", (unsigned long long)*target)});
}

const Cli::Flag* Cli::find(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string Cli::usage() const {
  std::string out = program_ + " — " + description_ + "\n\nFlags:\n";
  for (const auto& f : flags_) {
    out += strformat("  --%-18s %s (default: %s)\n", f.name.c_str(),
                     f.help.c_str(), f.default_repr.c_str());
  }
  out += "  --help               print this message\n";
  return out;
}

void Cli::parse(int argc, char** argv) {
  auto fail = [this](const std::string& msg) {
    std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), msg.c_str(),
                 usage().c_str());
    std::exit(2);
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (!starts_with(arg, "--")) fail("unexpected argument '" + arg + "'");
    arg = arg.substr(2);

    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }

    const Flag* f = find(name);
    if (!f) fail("unknown flag '--" + name + "'");

    if (f->kind == Kind::Bool && !has_value) {
      *static_cast<bool*>(f->target) = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) fail("flag '--" + name + "' expects a value");
      value = argv[++i];
    }

    try {
      switch (f->kind) {
        case Kind::Int:
          *static_cast<int*>(f->target) = static_cast<int>(parse_long(value));
          break;
        case Kind::U64:
          *static_cast<std::uint64_t*>(f->target) =
              static_cast<std::uint64_t>(parse_long(value));
          break;
        case Kind::Double:
          *static_cast<double*>(f->target) = parse_double(value);
          break;
        case Kind::Bool: {
          const std::string v = to_lower(value);
          *static_cast<bool*>(f->target) = (v == "1" || v == "true" || v == "yes");
          break;
        }
        case Kind::String:
          *static_cast<std::string*>(f->target) = value;
          break;
      }
    } catch (const Error& e) {
      fail("bad value for '--" + name + "': " + e.what());
    }
  }
}

}  // namespace alba
