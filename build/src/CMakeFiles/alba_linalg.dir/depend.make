# Empty dependencies file for alba_linalg.
# This may be replaced when dependencies are built.
