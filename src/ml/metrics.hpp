// Evaluation metrics exactly as the paper reports them (Sec. V):
//  - macro F1: unweighted mean of per-class F1 over the classes present in
//    the ground truth (sklearn's f1_score(average='macro') convention);
//  - false alarm rate: fraction of healthy samples classified as any
//    anomaly class (false-positive rate of the healthy/anomalous split);
//  - anomaly miss rate: fraction of anomalous samples classified healthy.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace alba {

/// confusion(i, j) = count of samples with true class i predicted as j.
Matrix confusion_matrix(std::span<const int> y_true,
                        std::span<const int> y_pred, int num_classes);

struct ClassScores {
  std::vector<double> precision;  // per class; 0 when undefined
  std::vector<double> recall;
  std::vector<double> f1;
};

ClassScores per_class_scores(const Matrix& confusion);

/// Macro F1 over classes present in y_true.
double macro_f1(std::span<const int> y_true, std::span<const int> y_pred,
                int num_classes);

double accuracy(std::span<const int> y_true, std::span<const int> y_pred);

/// healthy-vs-anomalous rates; `healthy_label` is class 0 in this library.
double false_alarm_rate(std::span<const int> y_true,
                        std::span<const int> y_pred, int healthy_label = 0);
double anomaly_miss_rate(std::span<const int> y_true,
                         std::span<const int> y_pred, int healthy_label = 0);

/// All headline metrics at once (one confusion-matrix pass).
struct EvalResult {
  double macro_f1 = 0.0;
  double accuracy = 0.0;
  double false_alarm_rate = 0.0;
  double anomaly_miss_rate = 0.0;
  std::vector<double> per_class_f1;
};

EvalResult evaluate(std::span<const int> y_true, std::span<const int> y_pred,
                    int num_classes, int healthy_label = 0);

}  // namespace alba
