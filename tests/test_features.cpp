// Tests for preprocessing (trim / difference / interpolate), both feature
// extractors, and feature-matrix assembly.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "features/extractor.hpp"

namespace alba {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// -------------------------------------------------------- interpolation ---

TEST(Interpolate, InteriorGapIsLinear) {
  std::vector<double> x{0.0, kNaN, kNaN, 3.0};
  interpolate_nans(x);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], 2.0);
}

TEST(Interpolate, LeadingTrailingTakeNearest) {
  std::vector<double> x{kNaN, 5.0, 7.0, kNaN, kNaN};
  interpolate_nans(x);
  EXPECT_DOUBLE_EQ(x[0], 5.0);
  EXPECT_DOUBLE_EQ(x[3], 7.0);
  EXPECT_DOUBLE_EQ(x[4], 7.0);
}

TEST(Interpolate, AllNaNBecomesZero) {
  std::vector<double> x{kNaN, kNaN, kNaN};
  interpolate_nans(x);
  for (const double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Interpolate, NoNaNIsNoop) {
  std::vector<double> x{1.0, 2.0, 3.0};
  interpolate_nans(x);
  EXPECT_EQ(x, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Interpolate, SingleElementEdges) {
  std::vector<double> lone_nan{kNaN};
  interpolate_nans(lone_nan);
  EXPECT_DOUBLE_EQ(lone_nan[0], 0.0);

  std::vector<double> lone_value{4.5};
  interpolate_nans(lone_value);
  EXPECT_DOUBLE_EQ(lone_value[0], 4.5);

  std::vector<double> empty;
  interpolate_nans(empty);  // must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(Interpolate, LoneFiniteValueFillsBothSides) {
  std::vector<double> x{kNaN, kNaN, 9.0, kNaN, kNaN};
  interpolate_nans(x);
  for (const double v : x) EXPECT_DOUBLE_EQ(v, 9.0);
}

// ---------------------------------------------------------- differencing ---

TEST(DifferenceCounter, BasicRates) {
  const std::vector<double> x{10.0, 15.0, 18.0, 30.0};
  const auto d = difference_counter(x);
  EXPECT_EQ(d, (std::vector<double>{5.0, 3.0, 12.0}));
}

TEST(DifferenceCounter, ClampsCounterResets) {
  const std::vector<double> x{100.0, 5.0, 10.0};
  const auto d = difference_counter(x);
  EXPECT_DOUBLE_EQ(d[0], 0.0);  // wrap clamped
  EXPECT_DOUBLE_EQ(d[1], 5.0);
}

TEST(DifferenceCounter, TooShortThrows) {
  EXPECT_THROW(difference_counter(std::vector<double>{1.0}), Error);
}

TEST(DifferenceCounter, LengthTwoYieldsOneRate) {
  const auto d = difference_counter(std::vector<double>{7.0, 11.5});
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d[0], 4.5);
}

TEST(DifferenceCounter, EveryResetClampsIndependently) {
  // Two mid-run resets (e.g. repeated injected counter resets): each
  // negative step clamps to zero while the climbs in between survive.
  const std::vector<double> x{50.0, 60.0, 5.0, 15.0, 2.0, 4.0};
  const auto d = difference_counter(x);
  EXPECT_EQ(d, (std::vector<double>{10.0, 0.0, 10.0, 0.0, 2.0}));
}

// ---------------------------------------------------------- preprocess ---

class PreprocessTest : public ::testing::Test {
 protected:
  PreprocessTest() : registry_(SystemKind::Volta, [] {
                       RegistryConfig cfg;
                       cfg.cores = 1;
                       cfg.nics = 1;
                       cfg.filler_gauges = 1;
                       return cfg;
                     }()) {}
  MetricRegistry registry_;
};

TEST_F(PreprocessTest, OutputShape) {
  Matrix raw(30, registry_.size(), 1.0);
  PreprocessConfig cfg;
  cfg.trim_head = 4;
  cfg.trim_tail = 3;
  const Matrix clean = preprocess_series(raw, registry_, cfg);
  EXPECT_EQ(clean.rows(), 30u - 4u - 3u - 1u);
  EXPECT_EQ(clean.cols(), registry_.size());
}

TEST_F(PreprocessTest, CountersBecomeRates) {
  const std::size_t counter_idx = registry_.index_of("cray.energy");
  Matrix raw(20, registry_.size(), 0.0);
  for (std::size_t t = 0; t < 20; ++t) {
    raw(t, counter_idx) = 100.0 + 7.0 * static_cast<double>(t);
  }
  PreprocessConfig cfg;
  cfg.trim_head = 2;
  cfg.trim_tail = 2;
  const Matrix clean = preprocess_series(raw, registry_, cfg);
  for (std::size_t t = 0; t < clean.rows(); ++t) {
    EXPECT_NEAR(clean(t, counter_idx), 7.0, 1e-9);
  }
}

TEST_F(PreprocessTest, GaugesKeepValuesAligned) {
  const std::size_t gauge_idx = registry_.index_of("cray.power");
  Matrix raw(20, registry_.size(), 0.0);
  for (std::size_t t = 0; t < 20; ++t) {
    raw(t, gauge_idx) = static_cast<double>(t);
  }
  PreprocessConfig cfg;
  cfg.trim_head = 2;
  cfg.trim_tail = 2;
  const Matrix clean = preprocess_series(raw, registry_, cfg);
  // Gauge row t corresponds to raw sample trim_head + t + 1.
  EXPECT_DOUBLE_EQ(clean(0, gauge_idx), 3.0);
}

TEST_F(PreprocessTest, NaNsRemoved) {
  Matrix raw(25, registry_.size(), 5.0);
  raw(10, 0) = kNaN;
  raw(11, 0) = kNaN;
  const Matrix clean = preprocess_series(raw, registry_, PreprocessConfig{});
  for (std::size_t t = 0; t < clean.rows(); ++t) {
    for (std::size_t j = 0; j < clean.cols(); ++j) {
      EXPECT_FALSE(std::isnan(clean(t, j)));
    }
  }
}

TEST_F(PreprocessTest, TooShortSeriesThrows) {
  Matrix raw(10, registry_.size(), 1.0);
  PreprocessConfig cfg;
  cfg.trim_head = 6;
  cfg.trim_tail = 5;
  EXPECT_THROW(preprocess_series(raw, registry_, cfg), Error);
}

// --------------------------------------------------------------- mvts ---

TEST(Mvts, Emits48Features) {
  const MvtsExtractor mvts;
  EXPECT_EQ(mvts.num_features(), 48u);
  EXPECT_EQ(mvts.feature_names().size(), 48u);
}

TEST(Mvts, KnownValuesOnSimpleSeries) {
  const MvtsExtractor mvts;
  std::vector<double> x;
  for (int i = 1; i <= 20; ++i) x.push_back(static_cast<double>(i));
  std::vector<double> out(mvts.num_features());
  mvts.extract(x, out);

  const auto& names = mvts.feature_names();
  auto feature = [&](const std::string& name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return out[i];
    }
    throw Error("feature not found: " + name);
  };
  EXPECT_DOUBLE_EQ(feature("mean"), 10.5);
  EXPECT_DOUBLE_EQ(feature("min"), 1.0);
  EXPECT_DOUBLE_EQ(feature("max"), 20.0);
  EXPECT_DOUBLE_EQ(feature("range"), 19.0);
  EXPECT_DOUBLE_EQ(feature("d_mean"), 10.0);  // halves differ by 10
  EXPECT_DOUBLE_EQ(feature("longest_inc_run"), 19.0);
  EXPECT_DOUBLE_EQ(feature("longest_dec_run"), 0.0);
  EXPECT_NEAR(feature("trend_slope"), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(feature("mean_change"), 1.0);
}

TEST(Mvts, RejectsWrongOutputSize) {
  const MvtsExtractor mvts;
  std::vector<double> x(20, 1.0);
  std::vector<double> out(10);
  EXPECT_THROW(mvts.extract(x, out), Error);
}

TEST(Mvts, AllFiniteOnNoisySeries) {
  const MvtsExtractor mvts;
  Rng rng(1);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.uniform(0.0, 100.0);
  std::vector<double> out(mvts.num_features());
  mvts.extract(x, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out[i])) << mvts.feature_names()[i];
  }
}

// -------------------------------------------------------------- tsfresh ---

TEST(Tsfresh, EmitsAdvertisedFeatureCount) {
  const TsfreshExtractor ts;
  EXPECT_EQ(ts.num_features(), ts.feature_names().size());
  EXPECT_GT(ts.num_features(), 90u);  // substantially richer than MVTS
}

TEST(Tsfresh, NamesAreUnique) {
  const TsfreshExtractor ts;
  std::set<std::string> names(ts.feature_names().begin(),
                              ts.feature_names().end());
  EXPECT_EQ(names.size(), ts.num_features());
}

TEST(Tsfresh, MostlyFiniteOnNoisySeries) {
  const TsfreshExtractor ts;
  Rng rng(2);
  std::vector<double> x(96);
  for (auto& v : x) v = rng.uniform(1.0, 100.0);
  std::vector<double> out(ts.num_features());
  ts.extract(x, out);
  std::size_t finite = 0;
  for (const double v : out) finite += std::isfinite(v) ? 1 : 0;
  EXPECT_GE(finite, out.size() - 2);  // the odd NaN (e.g. SampEn) is allowed
}

TEST(Tsfresh, PeriodicSeriesShowsSpectralPeak) {
  const TsfreshExtractor ts;
  std::vector<double> x(96);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 10.0 + std::sin(2.0 * M_PI * static_cast<double>(i) / 8.0);
  }
  std::vector<double> out(ts.num_features());
  ts.extract(x, out);
  const auto& names = ts.feature_names();
  auto feature = [&](const std::string& name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return out[i];
    }
    throw Error("feature not found: " + name);
  };
  EXPECT_NEAR(feature("dominant_freq"), 1.0 / 8.0, 0.02);
  EXPECT_GT(feature("acf_lag8"), 0.8);
  EXPECT_LT(feature("acf_lag4"), -0.8);
}

TEST(Tsfresh, ConfigControlsGrid) {
  TsfreshConfig cfg;
  cfg.acf_lags = 3;
  cfg.pacf_lags = 2;
  cfg.fft_coeffs = 2;
  cfg.psd_bins = 2;
  const TsfreshExtractor small(cfg);
  const TsfreshExtractor big;
  EXPECT_LT(small.num_features(), big.num_features());
}

TEST(Tsfresh, TooShortSeriesThrows) {
  const TsfreshExtractor ts;
  std::vector<double> x(4, 1.0);
  std::vector<double> out(ts.num_features());
  EXPECT_THROW(ts.extract(x, out), Error);
}

// ------------------------------------------------------ feature matrix ---

class ExtractorTest : public ::testing::Test {
 protected:
  ExtractorTest()
      : gen_(SystemKind::Volta,
             [] {
               RegistryConfig cfg;
               cfg.cores = 1;
               cfg.nics = 1;
               cfg.filler_gauges = 1;
               return cfg;
             }(),
             [] {
               NodeSimConfig cfg;
               cfg.duration_steps = 40;
               cfg.ramp_steps = 3;
               cfg.drain_steps = 3;
               return cfg;
             }()) {
    RunSpec healthy;
    healthy.app_id = 0;
    healthy.nodes = 2;
    healthy.seed = 5;
    RunSpec anomalous;
    anomalous.app_id = 1;
    anomalous.nodes = 2;
    anomalous.anomaly = AnomalyType::MemLeak;
    anomalous.intensity = 1.0;
    anomalous.run_id = 1;
    anomalous.seed = 6;
    for (auto& s : gen_.generate_run(healthy)) samples_.push_back(std::move(s));
    for (auto& s : gen_.generate_run(anomalous)) samples_.push_back(std::move(s));
  }

  RunGenerator gen_;
  std::vector<Sample> samples_;
  PreprocessConfig preprocess_{.trim_head = 3, .trim_tail = 3};
};

TEST_F(ExtractorTest, MatrixShapeAndProvenance) {
  const MvtsExtractor mvts;
  const FeatureMatrix fm =
      extract_features(samples_, gen_.registry(), mvts, preprocess_);
  EXPECT_EQ(fm.num_samples(), 4u);
  EXPECT_EQ(fm.num_features(), gen_.registry().size() * 48u);
  EXPECT_EQ(fm.names.size(), fm.num_features());
  EXPECT_EQ(fm.labels, (std::vector<int>{0, 0, 4, 0}));  // memleak = 4
  EXPECT_EQ(fm.app_ids, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(fm.node_ids, (std::vector<int>{0, 1, 0, 1}));
}

TEST_F(ExtractorTest, NamesCombineMetricAndFeature) {
  const MvtsExtractor mvts;
  const FeatureMatrix fm =
      extract_features(samples_, gen_.registry(), mvts, preprocess_);
  EXPECT_EQ(fm.names[0], gen_.registry().metric(0).name + "|mean");
}

TEST_F(ExtractorTest, DropUnusableColumnsRemovesBadOnes) {
  const MvtsExtractor mvts;
  FeatureMatrix fm =
      extract_features(samples_, gen_.registry(), mvts, preprocess_);
  // Poison one column with NaN and make another constant.
  for (std::size_t i = 0; i < fm.num_samples(); ++i) {
    fm.x(i, 3) = kNaN;
    fm.x(i, 7) = 42.0;
  }
  const std::size_t before = fm.num_features();
  const std::size_t dropped = drop_unusable_columns(fm);
  EXPECT_GE(dropped, 2u);
  EXPECT_EQ(fm.num_features(), before - dropped);
  EXPECT_EQ(fm.names.size(), fm.num_features());
  for (std::size_t i = 0; i < fm.num_samples(); ++i) {
    for (std::size_t j = 0; j < fm.num_features(); ++j) {
      EXPECT_TRUE(std::isfinite(fm.x(i, j)));
    }
  }
}

TEST_F(ExtractorTest, SelectRowsPreservesProvenance) {
  const MvtsExtractor mvts;
  const FeatureMatrix fm =
      extract_features(samples_, gen_.registry(), mvts, preprocess_);
  const std::vector<std::size_t> rows{2, 0};
  const FeatureMatrix sub = fm.select_rows(rows);
  EXPECT_EQ(sub.num_samples(), 2u);
  EXPECT_EQ(sub.labels, (std::vector<int>{4, 0}));
  EXPECT_EQ(sub.app_ids, (std::vector<int>{1, 0}));
}

TEST(ExtractorFactory, MakesBothKinds) {
  EXPECT_EQ(make_extractor(ExtractorKind::Mvts)->name(), "mvts");
  EXPECT_EQ(make_extractor(ExtractorKind::Tsfresh)->name(), "tsfresh");
  EXPECT_EQ(extractor_name(ExtractorKind::Mvts), "mvts");
  EXPECT_EQ(extractor_name(ExtractorKind::Tsfresh), "tsfresh");
}

}  // namespace
}  // namespace alba
