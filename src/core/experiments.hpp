// Experiment runners, one per table/figure of the paper's evaluation:
//   run_query_curve_experiment   — Figs. 3 & 5 (+ the data behind Table V)
//   summarize_table5             — Table V rows from the curve result
//   run_query_distribution       — Fig. 4 (what gets queried early)
//   run_unseen_apps_experiment   — Fig. 6
//   run_robustness_experiment    — Fig. 7 (supervised-only motivation)
//   run_unseen_inputs_experiment — Fig. 8
// All runners take prepared ExperimentData (built once per bench) and are
// deterministic for a fixed options.seed.
#pragma once

#include <string>
#include <vector>

#include "active/learner.hpp"
#include "core/pipeline.hpp"

namespace alba {

struct ExperimentOptions {
  int max_queries = 250;
  int repeats = 5;              // train/test splits (paper: 5)
  std::string model = "rf";     // AL base classifier: rf / lr / lgbm / mlp
  std::vector<std::string> methods = {"uncertainty", "margin", "entropy",
                                      "random",      "equal_app", "proctor"};
  int proctor_epochs = 12;      // autoencoder pretraining epochs
  std::uint64_t seed = 7;
};

struct MethodCurve {
  std::string method;
  AggregatedCurve aggregated;
  std::vector<QueryCurve> repeats;
  // Drill-down: (label, app) of each query, concatenated across repeats.
  std::vector<std::pair<int, int>> queried_label_app;
};

/// Figs. 3/5: per-method query curves plus the supervised reference points
/// of Table V.
struct QueryCurveResult {
  std::vector<MethodCurve> methods;
  double starting_f1 = 0.0;       // mean seed-only F1 across repeats
  double full_train_f1 = 0.0;     // model on the full AL training dataset
  std::size_t al_train_size = 0;  // labeled size of that reference
  double cv_max_f1 = 0.0;         // 5-fold CV ceiling on the whole dataset
  std::size_t full_size = 0;
};

QueryCurveResult run_query_curve_experiment(const ExperimentData& data,
                                            const ExperimentOptions& options);

/// Table V row: labels needed to reach each target with the given method.
struct Table5Row {
  std::string dataset;
  std::string feature_extraction;
  std::string query_strategy;
  std::size_t initial_samples = 0;
  double starting_f1 = 0.0;
  int samples_to_085 = -1;
  int samples_to_090 = -1;
  int samples_to_095 = -1;
  double full_train_f1 = 0.0;
  std::size_t al_train_size = 0;
  double cv_max_f1 = 0.0;
  std::size_t full_size = 0;
};

Table5Row summarize_table5(const ExperimentData& data,
                           const QueryCurveResult& result,
                           const std::string& method);

/// Fig. 4: how often each (application, label) is queried in the first N
/// queries, averaged over repeats.
struct QueryDistribution {
  std::vector<std::string> app_names;
  // mean count per repeat: [app][class].
  std::vector<std::vector<double>> app_label_counts;
  std::vector<double> label_totals;  // per class
  std::vector<double> app_totals;    // per app
  int first_n = 0;
};

QueryDistribution run_query_distribution(const ExperimentData& data,
                                         int first_n,
                                         const ExperimentOptions& options);

/// Fig. 6: unseen applications — seed from `train_apps` applications, test
/// on the rest; the unlabeled pool still spans the whole system.
struct UnseenAppsScenario {
  int train_apps = 0;
  std::vector<MethodCurve> methods;
  double starting_f1 = 0.0;
};

std::vector<UnseenAppsScenario> run_unseen_apps_experiment(
    const ExperimentData& data, const std::vector<int>& train_app_counts,
    const ExperimentOptions& options);

/// Fig. 7: supervised robustness motivation — a random forest trained on
/// k applications, tested on a fixed 3-application unseen test set.
struct RobustnessPoint {
  int train_apps = 0;
  double f1_mean = 0.0, f1_lo = 0.0, f1_hi = 0.0;
  double far_mean = 0.0, far_lo = 0.0, far_hi = 0.0;
  double amr_mean = 0.0, amr_lo = 0.0, amr_hi = 0.0;
};

struct RobustnessResult {
  std::vector<RobustnessPoint> points;
  double cv_f1 = 0.0;   // all-apps 5-fold CV reference (dashed lines)
  double cv_far = 0.0;
  double cv_amr = 0.0;
};

RobustnessResult run_robustness_experiment(const ExperimentData& data,
                                           const std::vector<int>& train_counts,
                                           int test_apps,
                                           const ExperimentOptions& options);

/// Fig. 8: unseen input decks — one deck's runs moved wholesale to the test
/// side; seed and pool come from the remaining decks.
struct UnseenInputsResult {
  std::vector<MethodCurve> methods;
  double starting_f1 = 0.0;
  double starting_far = 0.0;
  double full_train_f1 = 0.0;
};

UnseenInputsResult run_unseen_inputs_experiment(
    const ExperimentData& data, const ExperimentOptions& options);

}  // namespace alba
