#include "streaming/ingest.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <ostream>
#include <utility>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"

namespace alba {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) noexcept {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

std::string_view to_string(GapPolicy policy) noexcept {
  switch (policy) {
    case GapPolicy::Repair: return "repair";
    case GapPolicy::Strict: return "strict";
  }
  return "unknown";
}

IngestStats& IngestStats::operator+=(const IngestStats& o) noexcept {
  accepted += o.accepted;
  duplicates += o.duplicates;
  reordered += o.reordered;
  late_dropped += o.late_dropped;
  missing_rows += o.missing_rows;
  resets += o.resets;
  windows_emitted += o.windows_emitted;
  windows_dropped += o.windows_dropped;
  windows_recomputed += o.windows_recomputed;
  windows_flushed += o.windows_flushed;
  rejected_backpressure += o.rejected_backpressure;
  decode_errors += o.decode_errors;
  emit_seconds += o.emit_seconds;
  return *this;
}

std::string format_ingest_summary(const IngestStats& s) {
  std::string line = strformat(
      "rows: %llu accepted (%llu repaired), %llu dup, %llu late, "
      "%llu missing, %llu resets; windows: %llu emitted (%llu recomputed), "
      "%llu dropped, %llu flushed",
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.reordered),
      static_cast<unsigned long long>(s.duplicates),
      static_cast<unsigned long long>(s.late_dropped),
      static_cast<unsigned long long>(s.missing_rows),
      static_cast<unsigned long long>(s.resets),
      static_cast<unsigned long long>(s.windows_emitted),
      static_cast<unsigned long long>(s.windows_recomputed),
      static_cast<unsigned long long>(s.windows_dropped),
      static_cast<unsigned long long>(s.windows_flushed));
  if (s.rejected_backpressure > 0 || s.decode_errors > 0) {
    line += strformat(
        "; wire: %llu shed, %llu decode errors",
        static_cast<unsigned long long>(s.rejected_backpressure),
        static_cast<unsigned long long>(s.decode_errors));
  }
  return line;
}

std::string ingest_stats_csv_header() {
  return "label,accepted,duplicates,reordered,late_dropped,missing_rows,"
         "resets,windows_emitted,windows_dropped,windows_recomputed,"
         "windows_flushed,rejected_backpressure,decode_errors,emit_seconds";
}

std::string ingest_stats_csv_row(std::string_view label,
                                 const IngestStats& s) {
  // The label is free-form source text (e.g. a node name from a recorded
  // feed); RFC-4180 quoting keeps a comma or quote in it from shearing
  // columns.
  return csv_escape(std::string(label)) +
         strformat(
             ",%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
             "%llu,%.6f",
             static_cast<unsigned long long>(s.accepted),
             static_cast<unsigned long long>(s.duplicates),
             static_cast<unsigned long long>(s.reordered),
             static_cast<unsigned long long>(s.late_dropped),
             static_cast<unsigned long long>(s.missing_rows),
             static_cast<unsigned long long>(s.resets),
             static_cast<unsigned long long>(s.windows_emitted),
             static_cast<unsigned long long>(s.windows_dropped),
             static_cast<unsigned long long>(s.windows_recomputed),
             static_cast<unsigned long long>(s.windows_flushed),
             static_cast<unsigned long long>(s.rejected_backpressure),
             static_cast<unsigned long long>(s.decode_errors),
             s.emit_seconds);
}

void write_ingest_stats_csv(
    std::ostream& os,
    std::span<const std::pair<std::string, IngestStats>> rows) {
  os << ingest_stats_csv_header() << "\n";
  for (const auto& [label, stats] : rows) {
    os << ingest_stats_csv_row(label, stats) << "\n";
  }
}

StreamIngestor::StreamIngestor(MetricRegistry registry,
                               StreamIngestConfig config)
    : registry_(std::move(registry)), config_(config) {
  ALBA_CHECK(config_.stride > 0) << "stride must be positive";
  ALBA_CHECK(config_.preprocess.trim_head >= 0 &&
             config_.preprocess.trim_tail >= 0);
  const auto head = static_cast<std::size_t>(config_.preprocess.trim_head);
  const auto tail = static_cast<std::size_t>(config_.preprocess.trim_tail);
  ALBA_CHECK(config_.window_length > head + tail + 1)
      << "window_length " << config_.window_length << " too short for trim "
      << head << "+" << tail;
  kept_head_ = head;
  kept_len_ = config_.window_length - head - tail;
  capacity_ = config_.window_length + config_.stride;
}

void StreamIngestor::push_resolved(MetricFold& fold, std::size_t metric,
                                   double r) {
  if (fold.have_prev) {
    if (registry_.metrics()[metric].kind == MetricKind::Counter) {
      const double d = r - fold.prev;
      fold.acc.add(d < 0.0 ? 0.0 : d);  // counter reset/wrap, like the batch
    } else {
      // Gauges drop their first kept sample to align with counter rates.
      fold.acc.add(r);
    }
  }
  fold.prev = r;
  fold.have_prev = true;
}

void StreamIngestor::resolve_run(MetricFold& fold, std::size_t metric,
                                 std::size_t run, double right) {
  if (run == 0) return;
  if (!fold.have_prev) {
    // Leading NaNs take the nearest (right) finite value.
    for (std::size_t t = 0; t < run; ++t) push_resolved(fold, metric, right);
    return;
  }
  // Interior gap: the interpolate_nans recurrence, bit for bit.
  const double left = fold.prev;
  const double span_len = static_cast<double>(run + 1);
  for (std::size_t t = 1; t <= run; ++t) {
    const double frac = static_cast<double>(t) / span_len;
    push_resolved(fold, metric, left + frac * (right - left));
  }
}

void StreamIngestor::feed_window(WindowState& w, std::uint64_t s,
                                 std::span<const double> values,
                                 bool delivered) {
  if (w.dirty) return;  // fold abandoned; emit will batch-recompute
  if (s < w.start + kept_head_ || s >= w.start + kept_head_ + kept_len_) {
    return;  // trimmed region: raw/missing bookkeeping only
  }
  const std::size_t m_count = registry_.size();
  for (std::size_t m = 0; m < m_count; ++m) {
    MetricFold& fold = w.folds[m];
    const double v = delivered ? values[m] : kNaN;
    if (std::isnan(v)) {
      ++fold.pending;
    } else {
      if (fold.pending > 0) {
        resolve_run(fold, m, fold.pending, v);
        fold.pending = 0;
      }
      push_resolved(fold, m, v);
    }
    ++fold.examined;
  }
}

void StreamIngestor::mark_row(NodeState& ns, int node, std::uint64_t s,
                              std::span<const double> values, bool delivered,
                              std::vector<TriggeredWindow>& out) {
  if (s == ns.next_open) {
    WindowState w;
    w.start = s;
    w.folds.assign(registry_.size(), MetricFold{});
    ns.windows.push_back(std::move(w));
    ns.next_open += config_.stride;
  }

  const std::size_t idx = slot(ns, s);
  if (delivered) {
    double* row = ns.ring.data() + idx * registry_.size();
    for (std::size_t m = 0; m < registry_.size(); ++m) row[m] = values[m];
    ns.present[idx] = 1;
    ++ns.stats.accepted;
  } else {
    ns.present[idx] = 0;
    ++ns.stats.missing_rows;
  }

  for (WindowState& w : ns.windows) {
    if (s < w.start || s >= w.start + config_.window_length) continue;
    if (!delivered) ++w.missing;
    feed_window(w, s, values, delivered);
  }

  // Window ends are strictly increasing by stride, so only the front can
  // complete at this row.
  if (!ns.windows.empty() &&
      s + 1 == ns.windows.front().start + config_.window_length) {
    emit_front(ns, node, out);
  }
}

void StreamIngestor::repair_row(NodeState& ns, std::uint64_t seq,
                                std::span<const double> values) {
  const std::size_t idx = slot(ns, seq);
  double* row = ns.ring.data() + idx * registry_.size();
  for (std::size_t m = 0; m < registry_.size(); ++m) row[m] = values[m];
  ns.present[idx] = 1;
  ++ns.stats.accepted;
  ++ns.stats.reordered;
  --ns.stats.missing_rows;

  for (WindowState& w : ns.windows) {
    if (seq < w.start || seq >= w.start + config_.window_length) continue;
    --w.missing;
    if (w.dirty) continue;
    if (seq < w.start + kept_head_ ||
        seq >= w.start + kept_head_ + kept_len_) {
      continue;  // trimmed region never feeds the fold
    }
    const auto k = static_cast<std::uint32_t>(seq - (w.start + kept_head_));
    for (std::size_t m = 0; m < registry_.size(); ++m) {
      const double v = values[m];
      if (std::isnan(v)) continue;  // NaN cell repairing a NaN slot: no-op
      MetricFold& fold = w.folds[m];
      const std::uint32_t resolved = fold.examined - fold.pending;
      if (k < resolved) {
        // The fold already committed values past this row; its incremental
        // state cannot be rewound exactly, so the window falls back to the
        // batch recompute at emit — correctness over speed.
        w.dirty = true;
        break;
      }
      // The row lands inside the still-unresolved trailing NaN run: the
      // NaNs before it now have their right anchor (this value is the
      // first finite at-or-after `resolved`), exactly as the batch
      // interpolation will see them.
      resolve_run(fold, m, k - resolved, v);
      push_resolved(fold, m, v);
      fold.pending = fold.examined - (k + 1);
    }
  }
}

void StreamIngestor::emit_front(NodeState& ns, int node,
                                std::vector<TriggeredWindow>& out) {
  WindowState w = std::move(ns.windows.front());
  ns.windows.pop_front();
  ns.frontier = ns.windows.empty() ? ns.next_open : ns.windows.front().start;

  const bool drop =
      config_.gap_policy == GapPolicy::Strict
          ? w.missing > 0
          : w.missing > config_.max_missing;
  if (drop) {
    ++ns.stats.windows_dropped;
    return;
  }

  const std::size_t m_count = registry_.size();
  const std::size_t length = config_.window_length;
  Matrix raw(length, m_count);
  for (std::size_t i = 0; i < length; ++i) {
    const std::size_t idx = slot(ns, w.start + i);
    std::span<double> dst = raw.row(i);
    if (ns.present[idx]) {
      const double* src = ns.ring.data() + idx * m_count;
      for (std::size_t m = 0; m < m_count; ++m) dst[m] = src[m];
    } else {
      for (std::size_t m = 0; m < m_count; ++m) dst[m] = kNaN;
    }
  }

  TriggeredWindow t;
  t.node = node;
  t.start_seq = w.start;
  t.missing_rows = w.missing;
  if (w.dirty) {
    t.features = batch_features(raw, registry_, config_.preprocess);
    t.recomputed = true;
    ++ns.stats.windows_recomputed;
  } else {
    // The O(M) emit: resolve each metric's trailing NaN run and read its
    // accumulators. No per-row work happens here.
    const auto t0 = std::chrono::steady_clock::now();
    t.features.resize(m_count * kStreamFeaturesPerMetric);
    for (std::size_t m = 0; m < m_count; ++m) {
      MetricFold& fold = w.folds[m];
      if (fold.pending == fold.examined) {
        // No finite sample in the kept region: the batch path zero-fills.
        fold.pending = 0;
        for (std::size_t k = 0; k < kept_len_; ++k) {
          push_resolved(fold, m, 0.0);
        }
      } else if (fold.pending > 0) {
        // Trailing NaNs take the nearest (left) finite value.
        const std::size_t run = fold.pending;
        fold.pending = 0;
        for (std::size_t k = 0; k < run; ++k) {
          push_resolved(fold, m, fold.prev);
        }
      }
      fold.acc.emit(std::span<double>(t.features)
                        .subspan(m * kStreamFeaturesPerMetric,
                                 kStreamFeaturesPerMetric));
    }
    ns.stats.emit_seconds +=
        seconds_between(t0, std::chrono::steady_clock::now());
  }
  t.raw = std::move(raw);
  ++ns.stats.windows_emitted;
  out.push_back(std::move(t));
}

void StreamIngestor::reset_node(NodeState& ns, std::uint64_t seq) {
  ns.stats.windows_dropped += ns.windows.size();
  ++ns.stats.resets;
  ns.windows.clear();
  ns.base = seq;
  ns.frontier = seq;
  ns.next_open = seq;
  ns.next_mark = seq;
}

std::vector<TriggeredWindow> StreamIngestor::push(
    int node, std::uint64_t seq, std::span<const double> values) {
  ALBA_CHECK(values.size() == registry_.size())
      << "row has " << values.size() << " metrics, registry has "
      << registry_.size();
  std::vector<TriggeredWindow> out;
  NodeState& ns = nodes_[node];
  if (!ns.started) {
    ns.started = true;
    ns.ring.assign(capacity_ * registry_.size(), 0.0);
    ns.present.assign(capacity_, 0);
    ns.base = seq;
    ns.frontier = seq;
    ns.next_open = seq;
    ns.next_mark = seq;
  } else if (seq < ns.next_mark) {
    if (seq < ns.frontier) {
      // The row lands inside an already-emitted (or skipped) span: emitted
      // windows are immutable history, so the ring is NOT overwritten.
      ++ns.stats.late_dropped;
      return out;
    }
    if (ns.present[slot(ns, seq)]) {
      ++ns.stats.duplicates;  // first value wins
      return out;
    }
    repair_row(ns, seq, values);
    return out;
  } else if (seq - ns.next_mark >= capacity_) {
    // Forward jump past everything the ring could still complete (a
    // collector restart): drop the in-flight windows and re-anchor.
    reset_node(ns, seq);
  }

  for (std::uint64_t s = ns.next_mark; s <= seq; ++s) {
    mark_row(ns, node, s, values, /*delivered=*/s == seq, out);
  }
  ns.next_mark = seq + 1;
  return out;
}

void StreamIngestor::flush() {
  for (auto& [node, ns] : nodes_) {
    ns.stats.windows_flushed += ns.windows.size();
    ns.windows.clear();
    ns.frontier = ns.next_open;
  }
}

IngestStats StreamIngestor::stats(int node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? IngestStats{} : it->second.stats;
}

IngestStats StreamIngestor::total_stats() const {
  IngestStats total;
  for (const auto& [node, ns] : nodes_) total += ns.stats;
  return total;
}

std::size_t StreamIngestor::windows_in_flight(int node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.windows.size();
}

std::vector<double> StreamIngestor::batch_features(
    const Matrix& raw, const MetricRegistry& registry,
    const PreprocessConfig& config) {
  std::vector<double> out(registry.size() * kStreamFeaturesPerMetric);
  for (std::size_t m = 0; m < registry.size(); ++m) {
    const std::vector<double> col =
        preprocess_metric_column(raw, m, registry, config);
    stream_features_batch(col, std::span<double>(out).subspan(
                                   m * kStreamFeaturesPerMetric,
                                   kStreamFeaturesPerMetric));
  }
  return out;
}

std::vector<std::string> stream_feature_names(const MetricRegistry& registry) {
  std::vector<std::string> names;
  names.reserve(registry.size() * kStreamFeaturesPerMetric);
  for (std::size_t m = 0; m < registry.size(); ++m) {
    for (const std::string& suffix : stream_feature_suffixes()) {
      names.push_back(registry.metric(m).name + "_" + suffix);
    }
  }
  return names;
}

}  // namespace alba
