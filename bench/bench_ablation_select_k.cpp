// Ablation of the chi-square feature-count sweep the paper runs in
// Sec. IV-E-1 (250 / 500 / 1000 / 2000 / 4000 / 6436 features; best: 2000):
// measures both the supervised ceiling and the active-learning label cost
// as functions of k. Expected shape: the supervised F1 saturates once k
// covers the informative features and slowly degrades as noise columns
// dilute the forest's feature subsampling; the paper saw a decreasing
// trend below 250.
#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "ml/grid_search.hpp"
#include "ml/metrics.hpp"

using namespace alba;
using namespace alba::bench;

int main(int argc, char** argv) {
  BenchFlags flags;
  flags.queries = 80;
  flags.repeats = 2;
  Cli cli("bench_ablation_select_k",
          "Ablation — chi-square top-k sweep (paper Sec. IV-E-1)");
  add_standard_flags(cli, flags);
  cli.parse(argc, argv);
  apply_logging(flags);

  std::printf("=== Ablation: number of chi-square-selected features ===\n");
  ExperimentData data = build_data(SystemKind::Volta, flags);

  TextTable table({"k features", "supervised F1 (full train)",
                   "AL labels to F1>=0.90", "AL final F1"});

  std::vector<std::size_t> ks{64, 125, 250, 500, 1000, 2000};
  for (const std::size_t k : ks) {
    if (k > data.features.num_features()) continue;
    data.config.select_k = k;

    double supervised_f1 = 0.0;
    std::vector<QueryCurve> repeats;
    for (int r = 0; r < flags.repeats; ++r) {
      const ALSetup setup = standard_setup(data, flags.seed + 100u * r);

      // Supervised reference on the full training side.
      LabeledData all = setup.seed;
      for (std::size_t i = 0; i < setup.pool_x.rows(); ++i) {
        all.append(setup.pool_x.row(i), setup.pool_y[i]);
      }
      auto ref = make_model_factory("rf", kNumClasses, flags.seed + r)(
          table4_optimum("rf", false));
      ref->fit(all.x, all.y);
      supervised_f1 +=
          macro_f1(setup.test_y, ref->predict(setup.test_x), kNumClasses) /
          flags.repeats;

      ActiveLearnerConfig cfg;
      cfg.strategy = QueryStrategy::Uncertainty;
      cfg.max_queries = flags.queries;
      cfg.seed = flags.seed + r;
      ActiveLearner learner(
          make_model_factory("rf", kNumClasses, flags.seed + 7u * r)(
              table4_optimum("rf", false)),
          cfg);
      LabelOracle oracle(setup.pool_y, kNumClasses);
      repeats.push_back(learner
                            .run(setup.seed, setup.pool_x, oracle,
                                 setup.pool_app, setup.test_x, setup.test_y)
                            .curve);
    }
    const AggregatedCurve agg = aggregate_curves(repeats);
    table.add_row({strformat("%zu", k), strformat("%.3f", supervised_f1),
                   strformat("%d", queries_to_reach(agg, 0.90)),
                   strformat("%.3f", agg.f1_mean.back())});
    std::printf("  k=%-5zu done\n", k);
  }

  std::printf("\n%s", table.render().c_str());
  std::printf("(the paper's best k on Volta was 2000 of 99169 TSFRESH "
              "features; scaled defaults here have ~%zu features)\n",
              data.features.num_features());
  return 0;
}
