// Online diagnosis serving: the first end-to-end inference path from a raw
// per-node telemetry window (T x M matrix, as collected) to an anomaly
// label, using nothing but a frozen ModelBundle. The service replays the
// training-time pipeline — preprocess, extract, project onto the selected
// training columns, Min-Max scale, predict — with two serving-only
// optimizations that keep results bit-identical to the offline path:
//
//  * only metrics that feed at least one selected feature are preprocessed
//    and extracted (preprocessing and extraction are per-metric, so the
//    skipped work cannot change the kept columns);
//  * scaling and column selection are composed per selected column, so the
//    full feature_names-wide row is never materialized.
//
// Windows are served as micro-batches: feature rows are extracted in
// parallel on the shared ThreadPool and predicted with one classifier
// forward pass per batch. An LRU cache keyed on the window's content hash
// answers repeated windows (a stalled collector re-delivering the same
// scan, a dashboard re-asking about the same incident) without touching
// the pipeline.
//
// Thread-safety contract: diagnose and diagnose_batch may be called
// concurrently from any number of threads. The cache and the statistics
// are mutex-guarded; the pipeline itself only reads the frozen bundle.
// stats()/reset_stats() are safe concurrently with serving.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "features/extractor.hpp"
#include "linalg/matrix.hpp"
#include "serving/diagnoser.hpp"
#include "serving/model_bundle.hpp"
#include "serving/serving_stats.hpp"
#include "telemetry/registry.hpp"

namespace alba {

struct ServingConfig {
  // Windows per classifier forward pass; larger batches amortize the
  // per-call overhead at the cost of per-window latency.
  std::size_t max_batch = 32;
  // LRU entries keyed on window content hash; 0 disables caching.
  std::size_t cache_capacity = 1024;
  // Pool for parallel feature extraction; nullptr = the process-wide
  // global_pool().
  ThreadPool* pool = nullptr;
  // Called once per window at the start of feature extraction; the chaos
  // harness (serving/chaos.hpp) uses it to inject slow or failing
  // extractions. A throw from the hook aborts that window's pipeline pass
  // and propagates out of diagnose — exactly like a real extraction
  // failure. Leave empty in production.
  std::function<void(const Matrix&)> extraction_hook;
};

// Diagnosis itself lives in serving/diagnoser.hpp with the rest of the
// tier-uniform request/response types.

/// Full cache identity of a raw window: the 64-bit FNV-1a content hash
/// plus a cheap verifier (shape and the bit patterns of the first and last
/// cells). The cache indexes by `hash` but only answers when the verifier
/// matches too — a 64-bit hash collision between distinct windows must not
/// silently return another window's diagnosis.
struct WindowKey {
  std::uint64_t hash = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t first_bits = 0;  // bit pattern of cell (0, 0); 0 if empty
  std::uint64_t last_bits = 0;   // bit pattern of the last cell; 0 if empty

  bool matches(const WindowKey& o) const noexcept {
    return hash == o.hash && rows == o.rows && cols == o.cols &&
           first_bits == o.first_bits && last_bits == o.last_bits;
  }
};

/// Computes the full cache key of a window. Exposed for tests.
WindowKey window_key(const Matrix& window) noexcept;

/// Thread-safe LRU keyed on WindowKey — the DiagnosisService's window
/// cache, factored out so hash-collision handling is testable with
/// synthetic keys (crafting real 64-bit FNV collisions is infeasible).
/// A lookup whose hash matches but whose verifier does not is a miss; an
/// insert over such an entry evicts it and counts a collision eviction.
class WindowCache {
 public:
  /// `capacity` of 0 disables the cache (lookup misses, insert drops).
  explicit WindowCache(std::size_t capacity) : capacity_(capacity) {}

  /// On a verified hit, copies the stored diagnosis into `out` with
  /// cache_hit flagged and refreshes recency.
  bool lookup(const WindowKey& key, Diagnosis& out);
  void insert(const WindowKey& key, const Diagnosis& d);

  std::size_t size() const;
  /// Entries replaced because the full key disproved a hash match.
  std::uint64_t collision_evictions() const;

 private:
  struct Entry {
    WindowKey key;
    Diagnosis result;  // stored with cache_hit=false; flagged on lookup
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // most-recent at the front; map points into it
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t collision_evictions_ = 0;
};

class DiagnosisService : public Diagnoser {
 public:
  /// Latency-percentile window: stats() computes p50/p99 over at most this
  /// many most-recent requests.
  static constexpr std::size_t kLatencyWindow = 4096;

  /// Takes ownership of the bundle and precomputes the serving plan
  /// (needed metrics, per-column scaling). Throws when the bundle's
  /// feature names cannot be produced by its own registry/extractor
  /// configuration.
  explicit DiagnosisService(ModelBundle bundle, ServingConfig config = {});

  /// Diagnoses one raw T x M window (M must match the bundle's registry,
  /// T must exceed the configured trim; throws alba::Error otherwise).
  Diagnosis diagnose(const Matrix& window);

  /// Diagnoser interface: the non-throwing, deadline-aware entry point.
  /// Pipeline exceptions become status Failed; a request whose deadline is
  /// already expired (or that finishes past it) comes back RejectedDeadline
  /// with no diagnosis — the Ok-met-its-deadline contract of the hosted
  /// tiers, honored here too. Reports generation 1 (a bare service never
  /// reloads), replica 0, attempts 1.
  DiagnosisResult diagnose(const DiagnoseRequest& request) override;

  /// Diagnoses a stream of windows as micro-batches of at most
  /// config.max_batch, preserving order. Duplicate windows — within the
  /// batch or across requests — are answered once and deduplicated.
  std::vector<Diagnosis> diagnose_batch(std::span<const Matrix> windows);

  const ModelBundle& bundle() const noexcept { return bundle_; }
  const ServingConfig& config() const noexcept { return config_; }
  const MetricRegistry& registry() const noexcept { return registry_; }
  std::string_view label_name(int label) const;

  /// Counter snapshot including latency percentiles; see ServingStats.
  ServingStats stats() const;
  void reset_stats();

 private:
  // Extraction plan for one needed metric: which extractor outputs feed
  // which model-input columns.
  struct MetricPlan {
    std::size_t metric = 0;  // registry column
    // (extractor feature index, model input column) pairs.
    std::vector<std::pair<std::size_t, std::size_t>> outputs;
  };

  void extract_row(const Matrix& window, std::span<double> out) const;
  void serve_micro_batch(std::span<const Matrix> windows,
                         std::span<Diagnosis> out);
  // Single-window fast path: no dedup bookkeeping, no pool dispatch, and
  // the feature row + probability matrices are per-thread scratch reused
  // across requests, so a cached-model request performs no batch-assembly
  // copies or steady-state allocations before the predictor runs. Results
  // are bit-identical to serve_micro_batch on a one-window span.
  void serve_single(const Matrix& window, Diagnosis& out);
  void record_request(std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end,
                      std::size_t windows, double extract_s, double predict_s,
                      std::size_t hits, std::size_t misses,
                      std::size_t batches);

  ModelBundle bundle_;
  ServingConfig config_;
  MetricRegistry registry_;
  std::unique_ptr<FeatureExtractor> extractor_;
  ThreadPool* pool_;

  // Precomputed plan: per-needed-metric extraction targets and, per model
  // input column, the Min-Max parameters of its source feature column.
  std::vector<MetricPlan> plan_;
  std::vector<double> col_min_;
  std::vector<double> col_max_;

  // Window cache with verified (collision-safe) hits.
  WindowCache cache_;

  // Aggregate counters + per-request latency ring (RoundStats idiom).
  // wall-clock span endpoints: first request start, latest request end.
  mutable std::mutex stats_mutex_;
  ServingStats totals_;
  std::vector<double> latency_ring_;
  std::size_t latency_next_ = 0;
  bool span_started_ = false;
  std::chrono::steady_clock::time_point span_first_{};
  std::chrono::steady_clock::time_point span_last_{};
  // Cache collision count at the last reset_stats (the cache itself is
  // not reset, so stats() reports the delta).
  std::uint64_t collisions_at_reset_ = 0;
};

/// Content hash of a raw window (shape + bit pattern of every cell) — the
/// cache key. Exposed for tests.
std::uint64_t hash_window(const Matrix& window) noexcept;

}  // namespace alba
