// TSFRESH-style feature extractor (Christ et al., Neurocomputing 2018):
// a substantially richer per-metric feature set than MVTS, covering the
// characterization-method families the paper highlights — approximate
// entropy, Welch power spectral density, variation coefficient — plus FFT
// coefficients, autocorrelation/PACF, nonlinearity statistics (c3, time
// reversal asymmetry, CID), distribution shape, and recurrence features.
//
// tsfresh's canonical set reaches 794 features per metric by sweeping large
// parameter grids per method; we emit ~100 features from the same ~40
// method families with compact grids, which preserves the extractor's role
// in the pipeline (a wider, more redundant feature space than MVTS that
// chi-square selection then prunes).
//
// Cost note: approximate/sample entropy are O(n²); series longer than
// `entropy_cap` are decimated (stride subsampling) before those two
// features only.
#pragma once

#include "features/mvts.hpp"

namespace alba {

struct TsfreshConfig {
  std::size_t acf_lags = 10;     // autocorrelation lags 1..acf_lags
  std::size_t pacf_lags = 5;     // partial autocorrelation lags 1..pacf_lags
  std::size_t fft_coeffs = 5;    // FFT coefficients 1..fft_coeffs
  std::size_t psd_bins = 5;      // Welch PSD band powers
  std::size_t entropy_cap = 64;  // max points fed to ApEn/SampEn
};

class TsfreshExtractor final : public FeatureExtractor {
 public:
  explicit TsfreshExtractor(TsfreshConfig config = {});

  std::string name() const override { return "tsfresh"; }
  const std::vector<std::string>& feature_names() const override {
    return names_;
  }
  void extract(std::span<const double> series,
               std::span<double> out) const override;

 private:
  TsfreshConfig config_;
  std::vector<std::string> names_;
};

}  // namespace alba
