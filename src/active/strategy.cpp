#include "active/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace alba {

namespace {
// NaN scores (from degenerate probability rows) compare false against
// everything, violating the strict weak ordering std::partial_sort
// requires; rank them as -inf so they sort last deterministically.
// Infinities order consistently and pass through.
double nan_to_lowest(double score) noexcept {
  return std::isnan(score) ? -std::numeric_limits<double>::infinity() : score;
}
}  // namespace

std::string_view strategy_name(QueryStrategy s) noexcept {
  switch (s) {
    case QueryStrategy::Uncertainty: return "uncertainty";
    case QueryStrategy::Margin: return "margin";
    case QueryStrategy::Entropy: return "entropy";
    case QueryStrategy::Random: return "random";
    case QueryStrategy::EqualApp: return "equal_app";
    case QueryStrategy::VoteEntropy: return "vote_entropy";
    case QueryStrategy::ConsensusKl: return "consensus_kl";
    case QueryStrategy::DensityWeighted: return "density_weighted";
  }
  return "unknown";
}

QueryStrategy strategy_from_name(std::string_view name) {
  for (const QueryStrategy s :
       {QueryStrategy::Uncertainty, QueryStrategy::Margin,
        QueryStrategy::Entropy, QueryStrategy::Random, QueryStrategy::EqualApp,
        QueryStrategy::VoteEntropy, QueryStrategy::ConsensusKl,
        QueryStrategy::DensityWeighted}) {
    if (strategy_name(s) == name) return s;
  }
  throw Error("unknown query strategy: " + std::string(name));
}

bool strategy_uses_model(QueryStrategy s) noexcept {
  return s == QueryStrategy::Uncertainty || s == QueryStrategy::Margin ||
         s == QueryStrategy::Entropy || s == QueryStrategy::DensityWeighted;
}

bool strategy_uses_committee(QueryStrategy s) noexcept {
  return s == QueryStrategy::VoteEntropy || s == QueryStrategy::ConsensusKl;
}

double uncertainty_score(std::span<const double> probs) noexcept {
  double best = 0.0;
  for (const double p : probs) best = std::max(best, p);
  return 1.0 - best;
}

double margin_score(std::span<const double> probs) noexcept {
  double first = -1.0;
  double second = -1.0;
  for (const double p : probs) {
    if (p > first) {
      second = first;
      first = p;
    } else if (p > second) {
      second = p;
    }
  }
  if (second < 0.0) second = 0.0;  // single-class edge case
  return first - second;
}

double entropy_score(std::span<const double> probs) noexcept {
  double h = 0.0;
  for (const double p : probs) {
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

std::size_t select_query(QueryStrategy strategy, const Matrix& pool_probs,
                         std::span<const int> pool_app_ids,
                         std::size_t pool_size, int step, int num_apps,
                         Rng& rng) {
  ALBA_CHECK(pool_size > 0) << "query on an empty pool";

  switch (strategy) {
    case QueryStrategy::Random:
      return rng.uniform_index(pool_size);

    case QueryStrategy::EqualApp: {
      ALBA_CHECK(pool_app_ids.size() == pool_size);
      ALBA_CHECK(num_apps > 0);
      const int want_app = step % num_apps;
      // Reservoir-sample uniformly among candidates of the wanted app.
      std::size_t chosen = pool_size;  // sentinel
      std::size_t seen = 0;
      for (std::size_t i = 0; i < pool_size; ++i) {
        if (pool_app_ids[i] == want_app) {
          ++seen;
          if (rng.uniform_index(seen) == 0) chosen = i;
        }
      }
      if (chosen != pool_size) return chosen;
      return rng.uniform_index(pool_size);  // app exhausted: fall back
    }

    case QueryStrategy::Uncertainty:
    case QueryStrategy::Margin:
    case QueryStrategy::Entropy:
      break;

    case QueryStrategy::VoteEntropy:
    case QueryStrategy::ConsensusKl:
    case QueryStrategy::DensityWeighted:
      throw Error(
          "strategy needs precomputed scores — use select_query_scored");
  }

  ALBA_CHECK(pool_probs.rows() == pool_size)
      << "probability matrix has " << pool_probs.rows() << " rows, pool has "
      << pool_size;
  std::size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pool_size; ++i) {
    const auto row = pool_probs.row(i);
    double score = 0.0;
    switch (strategy) {
      case QueryStrategy::Uncertainty: score = uncertainty_score(row); break;
      case QueryStrategy::Margin: score = -margin_score(row); break;  // min
      case QueryStrategy::Entropy: score = entropy_score(row); break;
      default: break;
    }
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

std::size_t select_query_scored(std::span<const double> scores) {
  ALBA_CHECK(!scores.empty()) << "query on an empty pool";
  std::size_t best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (nan_to_lowest(scores[i]) > nan_to_lowest(scores[best])) best = i;
  }
  return best;
}

std::vector<std::size_t> select_query_batch(
    std::span<const double> scores, std::size_t k,
    std::span<const std::size_t> tie_ids) {
  ALBA_CHECK(!scores.empty()) << "query on an empty pool";
  ALBA_CHECK(tie_ids.empty() || tie_ids.size() == scores.size());
  k = std::min(k, scores.size());
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto tie_key = [&tie_ids](std::size_t i) {
    return tie_ids.empty() ? i : tie_ids[i];
  };
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      const double sa = nan_to_lowest(scores[a]);
                      const double sb = nan_to_lowest(scores[b]);
                      if (sa != sb) return sa > sb;
                      return tie_key(a) < tie_key(b);
                    });
  order.resize(k);
  return order;
}

std::vector<double> score_pool_rows(const Classifier& model,
                                    QueryStrategy strategy, const Matrix& pool,
                                    std::span<const std::size_t> rows) {
  ALBA_CHECK(strategy_uses_model(strategy))
      << "strategy " << strategy_name(strategy) << " does not score the pool";
  std::vector<double> scores(rows.size());
  global_pool().parallel_for_chunked(
      rows.size(), [&](std::size_t begin, std::size_t end) {
        Matrix probs;  // per-chunk scratch, reused across its rows
        model.predict_proba_rows(pool, rows.subspan(begin, end - begin),
                                 probs);
        for (std::size_t i = begin; i < end; ++i) {
          const auto row = probs.row(i - begin);
          switch (strategy) {
            case QueryStrategy::Uncertainty:
            case QueryStrategy::DensityWeighted:
              scores[i] = uncertainty_score(row);
              break;
            case QueryStrategy::Margin:
              scores[i] = -margin_score(row);  // strategy queries the min
              break;
            case QueryStrategy::Entropy:
              scores[i] = entropy_score(row);
              break;
            default:
              break;
          }
        }
      });
  return scores;
}

std::vector<double> information_density(const Matrix& pool,
                                        std::size_t ref_cap,
                                        std::uint64_t seed) {
  ALBA_CHECK(pool.rows() > 0 && ref_cap > 0);
  Rng rng(seed);
  const std::size_t n_ref = std::min(ref_cap, pool.rows());
  if (n_ref < 2) {
    // A single reference pairs with itself: distance 0, the clamped 1e-9
    // bandwidth, and every density collapsing to ~0 — which would silently
    // turn DensityWeighted into pure uncertainty with a zeroed score scale.
    // Uniform densities keep the multiplicative weighting a no-op instead.
    return std::vector<double>(pool.rows(), 1.0);
  }
  const std::vector<std::size_t> ref =
      rng.sample_without_replacement(pool.rows(), n_ref);

  // Bandwidth: mean distance among a handful of reference pairs.
  double dist_acc = 0.0;
  std::size_t dist_n = 0;
  for (std::size_t a = 0; a < n_ref; ++a) {
    const std::size_t b = (a + 1) % n_ref;
    const auto ra = pool.row(ref[a]);
    const auto rb = pool.row(ref[b]);
    double d2 = 0.0;
    for (std::size_t j = 0; j < ra.size(); ++j) {
      d2 += (ra[j] - rb[j]) * (ra[j] - rb[j]);
    }
    dist_acc += std::sqrt(d2);
    ++dist_n;
  }
  const double bandwidth =
      std::max(1e-9, dist_acc / static_cast<double>(std::max<std::size_t>(1, dist_n)));
  const double inv_two_sigma2 = 1.0 / (2.0 * bandwidth * bandwidth);

  std::vector<double> density(pool.rows(), 0.0);
  for (std::size_t i = 0; i < pool.rows(); ++i) {
    const auto row = pool.row(i);
    double acc = 0.0;
    for (const std::size_t r : ref) {
      const auto rr = pool.row(r);
      double d2 = 0.0;
      for (std::size_t j = 0; j < row.size(); ++j) {
        d2 += (row[j] - rr[j]) * (row[j] - rr[j]);
      }
      acc += std::exp(-d2 * inv_two_sigma2);
    }
    density[i] = acc / static_cast<double>(n_ref);
  }
  return density;
}

}  // namespace alba
