#include "telemetry/node_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace alba {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double channel_value(const NodeLoad& load, LoadChannel channel,
                     double mem_capacity_gb) noexcept {
  switch (channel) {
    case LoadChannel::CpuUser: return load.cpu_user;
    case LoadChannel::CpuSystem: return load.cpu_system;
    case LoadChannel::CpuIdle: return load.cpu_idle();
    case LoadChannel::CpuFreq: return load.cpu_freq;
    case LoadChannel::CacheMiss: return load.cache_miss_rate;
    case LoadChannel::MemUsed: return load.mem_used_gb;
    case LoadChannel::MemFree:
      return std::max(0.0, mem_capacity_gb - load.mem_used_gb);
    case LoadChannel::MemBw: return load.mem_bw_util;
    case LoadChannel::NetTx: return load.net_tx_rate;
    case LoadChannel::NetRx: return load.net_rx_rate;
    case LoadChannel::IoRead: return load.io_read_rate;
    case LoadChannel::IoWrite: return load.io_write_rate;
    case LoadChannel::Power: return load.power_watts;
    case LoadChannel::Constant: return 1.0;
  }
  return 0.0;
}
}  // namespace

NodeSimulator::NodeSimulator(const MetricRegistry& registry,
                             NodeSimConfig config)
    : registry_(registry), config_(config) {
  ALBA_CHECK(config_.duration_steps > config_.ramp_steps + config_.drain_steps)
      << "run too short for its transients";
  ALBA_CHECK(config_.dt_seconds > 0.0);
  ALBA_CHECK(config_.missing_prob >= 0.0 && config_.missing_prob < 1.0);
}

NodeLoad NodeSimulator::load_at(const AppSignature& app, const InputDeck& deck,
                                double t_seconds, double t_frac,
                                double phase_shift, double level_jitter) const {
  const PhaseLoad p = signature_load_at(app, deck, t_seconds, phase_shift);
  const double cap = registry_.mem_capacity_gb();

  NodeLoad load;
  load.cpu_user = std::clamp(p.cpu_user * level_jitter, 0.0, 1.0);
  load.cpu_system = std::clamp(p.cpu_system * level_jitter, 0.0, 1.0);
  load.cpu_freq = 1.0;
  load.cache_miss_rate = std::clamp(p.cache_miss * level_jitter, 0.0, 1.0);
  load.mem_bw_util = std::clamp(p.mem_bw * level_jitter, 0.0, 1.0);
  load.net_tx_rate = std::max(0.0, p.net * level_jitter);
  load.net_rx_rate = std::max(0.0, p.net * 0.95 * level_jitter);
  load.io_read_rate = std::max(0.0, p.io_read * level_jitter);
  load.io_write_rate = std::max(0.0, p.io_write * level_jitter);

  // Resident memory: base + slow application growth, scaled by the deck.
  const double mem_frac =
      std::min(0.95, (app.mem_base_frac + app.mem_growth_frac * t_frac) *
                         deck.mem_scale);
  load.mem_used_gb = mem_frac * cap;

  // Node power: idle floor + compute + memory-traffic components.
  load.power_watts = 110.0 + 190.0 * (load.cpu_user + 0.5 * load.cpu_system) +
                     45.0 * load.mem_bw_util;
  return load;
}

Matrix NodeSimulator::simulate(const AppSignature& app, const InputDeck& deck,
                               int node_index, const AnomalyInjector* injector,
                               Rng& rng) const {
  const auto& metrics = registry_.metrics();
  const std::size_t m = metrics.size();
  const auto t_steps = static_cast<std::size_t>(config_.duration_steps);
  const double cap = registry_.mem_capacity_gb();

  // Per-run randomness: cycle phase offset, overall level jitter, per-node
  // imbalance, per-core weights, and counter start offsets.
  const double phase_shift = rng.uniform();
  const double run_level =
      std::max(0.3, 1.0 + config_.run_jitter * rng.normal());
  const double node_level =
      std::max(0.3, 1.0 + app.node_imbalance * rng.normal() +
                        0.01 * static_cast<double>(node_index % 4));

  std::vector<double> core_weight;
  int max_core = -1;
  for (const auto& def : metrics) max_core = std::max(max_core, def.core);
  for (int c = 0; c <= max_core; ++c) {
    core_weight.push_back(std::max(0.5, 1.0 + 0.08 * rng.normal()));
  }

  std::vector<double> counter_state(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    if (metrics[j].kind == MetricKind::Counter) {
      counter_state[j] = rng.uniform(0.0, 1.0e6);
    }
  }

  // Background interference (other jobs on shared resources). Production
  // neighbours cause *bursts* of exactly the kinds of pressure the HPAS
  // anomalies exercise — CPU steal, memory-subsystem contention, network/
  // filesystem slowdown — so healthy samples overlap the low-intensity
  // anomaly classes and diagnosis needs many more labels than on an
  // isolated testbed. Each run draws a random set of bursts per kind.
  enum BgKind { kBgCpu = 0, kBgMem = 1, kBgNet = 2 };
  struct Burst {
    double start = 0.0;
    double end = 0.0;
    double magnitude = 0.0;
    int kind = 0;
  };
  std::vector<Burst> bursts;
  if (config_.background_level > 0.0) {
    const double run_seconds =
        static_cast<double>(config_.duration_steps) * config_.dt_seconds;
    const std::size_t n_bursts = 1 + rng.uniform_index(4);  // 1..4
    for (std::size_t b = 0; b < n_bursts; ++b) {
      Burst burst;
      burst.start = rng.uniform(0.0, run_seconds);
      burst.end = burst.start + rng.uniform(0.1, 0.6) * run_seconds;
      burst.magnitude = config_.background_level * rng.uniform(0.3, 1.0);
      burst.kind = static_cast<int>(rng.uniform_index(3));
      bursts.push_back(burst);
    }
  }
  auto background_at = [&bursts](double t, int kind) {
    double acc = 0.0;
    for (const Burst& b : bursts) {
      if (b.kind == kind && t >= b.start && t < b.end) acc += b.magnitude;
    }
    return std::min(acc, 1.2);
  };

  Matrix series(t_steps, m);
  InjectionContext ctx;
  ctx.mem_capacity_gb = cap;

  for (std::size_t t = 0; t < t_steps; ++t) {
    const double t_seconds = static_cast<double>(t) * config_.dt_seconds;
    ctx.t_seconds = t_seconds;
    ctx.t_frac = static_cast<double>(t) / static_cast<double>(t_steps - 1);

    // Init/termination transients: activity ramps in and drains out (the
    // pipeline trims these, but they must exist to be trimmed).
    double transient = 1.0;
    if (t < static_cast<std::size_t>(config_.ramp_steps)) {
      transient = (static_cast<double>(t) + 1.0) /
                  (static_cast<double>(config_.ramp_steps) + 1.0);
    } else if (t + config_.drain_steps >= t_steps) {
      transient = (static_cast<double>(t_steps - t)) /
                  (static_cast<double>(config_.drain_steps) + 1.0);
    }

    NodeLoad load = load_at(app, deck, t_seconds, ctx.t_frac, phase_shift,
                            run_level * node_level * transient);
    if (config_.background_level > 0.0) {
      // Interference overlaps the anomaly footprints on purpose: it is why
      // production diagnosis needs many more labels than the testbed.
      const double cpu_bg = background_at(t_seconds, kBgCpu);
      const double mem_bg = background_at(t_seconds, kBgMem);
      const double net_bg = background_at(t_seconds, kBgNet);
      load.cpu_user = std::clamp(load.cpu_user + 0.50 * cpu_bg, 0.0, 1.0);
      load.cpu_system = std::clamp(load.cpu_system + 0.10 * cpu_bg, 0.0, 1.0);
      load.cache_miss_rate =
          std::clamp(load.cache_miss_rate + 0.40 * mem_bg, 0.0, 1.0);
      load.mem_bw_util = std::clamp(load.mem_bw_util + 0.50 * mem_bg, 0.0, 1.0);
      load.net_tx_rate *= 1.0 / (1.0 + 0.8 * net_bg);
      load.net_rx_rate *= 1.0 / (1.0 + 0.8 * net_bg);
      load.io_read_rate *= 1.0 / (1.0 + 0.6 * net_bg);
      load.io_write_rate *= 1.0 / (1.0 + 0.6 * net_bg);
      load.power_watts += 120.0 * cpu_bg + 40.0 * mem_bg;
    }
    if (injector != nullptr) injector->apply(ctx, load, rng);

    for (std::size_t j = 0; j < m; ++j) {
      const MetricDef& def = metrics[j];
      double ch = channel_value(load, def.channel, cap);
      if (def.core >= 0) ch *= core_weight[static_cast<std::size_t>(def.core)];
      double value = def.offset + def.scale * ch;
      value *= std::max(0.0, 1.0 + def.noise_frac * rng.normal());

      if (def.kind == MetricKind::Counter) {
        counter_state[j] += std::max(0.0, value) * config_.dt_seconds;
        value = counter_state[j];
      }
      series(t, j) =
          rng.bernoulli(config_.missing_prob) ? kNaN : value;
    }
  }
  return series;
}

}  // namespace alba
