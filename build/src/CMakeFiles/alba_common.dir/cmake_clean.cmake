file(REMOVE_RECURSE
  "CMakeFiles/alba_common.dir/common/cli.cpp.o"
  "CMakeFiles/alba_common.dir/common/cli.cpp.o.d"
  "CMakeFiles/alba_common.dir/common/csv.cpp.o"
  "CMakeFiles/alba_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/alba_common.dir/common/log.cpp.o"
  "CMakeFiles/alba_common.dir/common/log.cpp.o.d"
  "CMakeFiles/alba_common.dir/common/string_util.cpp.o"
  "CMakeFiles/alba_common.dir/common/string_util.cpp.o.d"
  "CMakeFiles/alba_common.dir/common/table.cpp.o"
  "CMakeFiles/alba_common.dir/common/table.cpp.o.d"
  "CMakeFiles/alba_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/alba_common.dir/common/thread_pool.cpp.o.d"
  "libalba_common.a"
  "libalba_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alba_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
